// Package motsim is a fault simulator for synchronous sequential circuits
// under the restricted multiple observation time (MOT) approach, using
// state expansion enhanced with backward implications. It reproduces
// I. Pomeranz and S. M. Reddy, "Fault Simulation under the Multiple
// Observation Time Approach using Backward Implications", DAC 1997.
//
// The package is a facade over the implementation packages:
//
//   - circuits are gate-level ISCAS-89-style netlists (ParseBench,
//     LoadBench, BuiltinCircuit);
//   - faults are single stuck-at faults on stems and fanout branches
//     (Faults, CollapsedFaults);
//   - test sequences come from files (ReadVectors), seeded random
//     generation (RandomSequence) or a greedy coverage-directed generator
//     (GreedySequence);
//   - New builds a Simulator that classifies each fault as detected by
//     conventional three-valued simulation, detected by the MOT procedure
//     beyond conventional simulation, or undetected.
//
// A minimal end-to-end run:
//
//	c, _ := motsim.BuiltinCircuit("s27")
//	T := motsim.RandomSequence(c, 32, 1)
//	sim, _ := motsim.New(c, T, motsim.DefaultConfig())
//	res, _ := sim.Run(motsim.CollapsedFaults(c), nil)
//	fmt.Println(res.Conv, "conventional,", res.MOT, "MOT-only")
package motsim

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/cir"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
	"repro/internal/vcd"
	"repro/internal/vectors"
	"repro/internal/xtrace"
)

// Core type aliases; see the respective packages for full documentation.
type (
	// Circuit is a compiled gate-level sequential circuit.
	Circuit = netlist.Circuit
	// NodeID identifies a signal node within a circuit.
	NodeID = netlist.NodeID
	// GateID identifies a gate within a circuit.
	GateID = netlist.GateID
	// Fault is a single stuck-at fault (stem or fanout branch).
	Fault = fault.Fault
	// Pattern is one primary-input vector.
	Pattern = seqsim.Pattern
	// Sequence is a test sequence (one pattern per time frame).
	Sequence = seqsim.Sequence
	// Trace is a simulation history (states, outputs).
	Trace = seqsim.Trace
	// Config controls the MOT procedure.
	Config = core.Config
	// Simulator runs the per-fault MOT pipeline.
	Simulator = core.Simulator
	// Result aggregates a whole fault-list run.
	Result = core.Result
	// Stages holds per-stage counters and timings of a fault-list run
	// (prescreen passes, faults dropped, wall-clock per stage, and — with
	// Config.Metrics on — the per-stage CPU breakdown, pool gauges and
	// serial-simulator frame counters).
	Stages = core.Stages
	// StageNS is the per-stage nanosecond breakdown of the MOT pipeline
	// (step 0, pair collection, implications, expansion, resimulation).
	StageNS = core.StageNS
	// PoolStats aggregates object-pool reuse counters and arena peaks.
	PoolStats = core.PoolStats
	// SimStats counts serial-simulator work (delta vs. full frames).
	SimStats = seqsim.SimStats
	// RunMetrics holds the per-fault distribution histograms of a run
	// (pairs, expansions, sequences at stop, per-fault time).
	RunMetrics = core.RunMetrics
	// TraceEvent is one per-fault record of the JSONL trace stream
	// written to Config.TraceWriter.
	TraceEvent = core.TraceEvent
	// LiveStats is a concurrency-safe view of in-flight runs, published
	// on a coarse cadence when set as Config.Live (see Config.LiveEvery).
	LiveStats = core.LiveStats
	// LiveSnapshot is a point-in-time copy of a LiveStats.
	LiveSnapshot = core.LiveSnapshot
	// TraceDetection locates a conventional detection within a trace
	// event (time frame and primary output).
	TraceDetection = core.TraceDetection
	// FaultOutcome is the classification of one fault.
	FaultOutcome = core.FaultOutcome
	// Outcome is the per-fault classification code.
	Outcome = core.Outcome
	// Val is a three-valued logic value.
	Val = logic.Val
	// GenParams parameterizes the synthetic circuit generator.
	GenParams = circuits.GenParams
	// SuiteEntry describes one benchmark-suite circuit.
	SuiteEntry = circuits.SuiteEntry
	// GreedyConfig controls the coverage-directed sequence generator.
	GreedyConfig = tgen.GreedyConfig
	// Tracer collects hierarchical spans of a run when set as
	// Config.Tracer; export with its WriteChromeTrace / WriteJSONL.
	Tracer = xtrace.Tracer
	// TracerOptions sizes a Tracer (span cap, flight-recorder ring).
	TracerOptions = xtrace.Options
	// Span is one recorded span (deterministic ID, parent link, name,
	// attributes, and scheduling-dependent track/timestamps).
	Span = xtrace.Span
)

// Outcome codes.
const (
	Undetected           = core.Undetected
	DetectedConventional = core.DetectedConventional
	DetectedMOT          = core.DetectedMOT
)

// Logic values.
const (
	Zero = logic.Zero
	One  = logic.One
	X    = logic.X
)

// DefaultConfig returns the paper's experimental configuration:
// N_STATES = 64, backward implications enabled, and the bit-parallel
// conventional prescreen on (set Config.Prescreen to false to force the
// serial per-fault conventional stage; outcomes are identical).
// Instrumentation defaults to on (Config.Metrics); a run then carries
// the per-stage time breakdown and pool gauges in Result.Stages and the
// per-fault histograms in Result.Metrics. Set Config.TraceWriter to
// stream one JSON object per fault (see TraceEvent); the stream is
// byte-identical regardless of worker count unless Config.TraceTimings
// adds wall-clock stage timings to each event.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewTracer builds a span tracer for Config.Tracer. The zero
// TracerOptions selects the defaults (256k-span cap, 4096-span flight
// recorder). Span IDs and parent links are deterministic across worker
// counts; see Config.TraceSampleRate for the per-fault sampling rate.
func NewTracer(opts TracerOptions) *Tracer { return xtrace.New(opts) }

// BaselineConfig returns the configuration of the comparison procedure of
// [4]: state expansion only, no backward implications.
func BaselineConfig() Config { return core.BaselineConfig() }

// New builds a Simulator for the circuit, test sequence and
// configuration, running fault-free simulation up front.
func New(c *Circuit, T Sequence, cfg Config) (*Simulator, error) {
	return core.NewSimulator(c, T, cfg)
}

// ParseBench parses an ISCAS-89 ".bench" netlist.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return bench.Parse(name, r)
}

// LoadBench parses a ".bench" netlist file; the circuit is named after
// the file.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return bench.Parse(name, f)
}

// WriteBench renders a circuit in ".bench" format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// BuiltinCircuit returns a built-in circuit by name: "s27" (the real
// ISCAS-89 circuit), "fig4", "intro", "table1" (the paper's illustrative
// circuits), or a synthetic suite name such as "sg5378" (also reachable
// by the paper name "s5378").
func BuiltinCircuit(name string) (*Circuit, error) { return circuits.ByName(name) }

// BuiltinNames lists every name BuiltinCircuit accepts.
func BuiltinNames() []string { return circuits.Names() }

// Suite returns the synthetic benchmark suite mirroring the paper's
// Table 2 circuits.
func Suite() []SuiteEntry { return circuits.Suite() }

// Generate builds a synthetic ISCAS-like circuit.
func Generate(p GenParams) (*Circuit, error) { return circuits.Generate(p) }

// Faults enumerates the full single stuck-at fault list of the circuit.
func Faults(c *Circuit) []Fault { return fault.List(c) }

// CollapsedFaults returns the equivalence-collapsed fault list.
func CollapsedFaults(c *Circuit) []Fault { return fault.CollapsedList(c) }

// SortFaultsByCone reorders faults in place so faults with identical or
// overlapping active cones become adjacent, improving per-site
// cone-cache and scratch locality in the simulation that follows. The
// ordering is a deterministic pure function of the circuit and the
// list. As a side effect every fault's cone snapshot is computed and
// cached on the compiled circuit.
func SortFaultsByCone(c *Circuit, faults []Fault) { cir.SortFaultsByCone(cir.For(c), faults) }

// RandomSequence returns a seeded random binary test sequence for c.
func RandomSequence(c *Circuit, length int, seed int64) Sequence {
	return tgen.Random(c.NumInputs(), length, seed)
}

// GreedySequence builds a compact deterministic test sequence by greedy
// coverage-directed search (the HITEC stand-in).
func GreedySequence(c *Circuit, faults []Fault, cfg GreedyConfig) (Sequence, error) {
	return tgen.Greedy(c, faults, cfg)
}

// DefaultGreedyConfig returns the default greedy-generator settings.
func DefaultGreedyConfig() GreedyConfig { return tgen.DefaultGreedyConfig() }

// ConventionalResult is the outcome of conventional (single observation
// time) fault simulation of one fault.
type ConventionalResult = seqsim.FaultResult

// Conventional runs conventional three-valued fault simulation for every
// fault, 63 faulty machines at a time using the bit-parallel engine. It
// is the fast path when the multiple observation time analysis is not
// needed.
func Conventional(c *Circuit, T Sequence, faults []Fault) ([]ConventionalResult, error) {
	return bitsim.Run(c, T, faults)
}

// Frame is a single-time-frame value assignment supporting the paper's
// implication machinery: asserting next-state values, backward and
// forward implications, conflict detection.
type Frame = implic.Frame

// EvalFrame computes every node value for one time frame of c: pi are
// the primary-input values, ps the present-state values, f the injected
// fault (nil for fault-free), and vals the output buffer with one entry
// per node (c.NumNodes() long).
func EvalFrame(c *Circuit, pi Pattern, ps []Val, f *Fault, vals []Val) {
	seqsim.EvalFrame(c, pi, ps, f, vals)
}

// NewFrame builds an implication frame from a base assignment as produced
// by EvalFrame with the same fault (nil for fault-free).
func NewFrame(c *Circuit, f *Fault, base []Val) *Frame {
	return implic.New(c, f, base)
}

// ATPG types re-exported from the deterministic test generator.
type (
	// ATPGConfig bounds the PODEM search.
	ATPGConfig = atpg.Config
	// ATPGResult is the outcome of generating a test for one fault.
	ATPGResult = atpg.Result
	// ATPGSummary aggregates a whole-list ATPG run.
	ATPGSummary = atpg.Summary
)

// DefaultATPGConfig returns the default test-generation bounds.
func DefaultATPGConfig() ATPGConfig { return atpg.DefaultConfig() }

// GenerateTests runs deterministic sequential ATPG (PODEM over a bounded
// time-frame expansion) for every fault, with fault dropping between
// targets. It returns per-fault results, the concatenated test sequence,
// and a summary. Every generated test is verified by the conventional
// fault simulator before being reported.
func GenerateTests(c *Circuit, faults []Fault, cfg ATPGConfig) ([]ATPGResult, Sequence, ATPGSummary, error) {
	return atpg.GenerateAll(c, faults, cfg)
}

// Simulate runs three-valued simulation of one machine — fault-free when
// f is nil — and returns its trace. keepNodes retains per-frame node
// values (needed for AllNodes waveform dumps and implication frames).
func Simulate(c *Circuit, T Sequence, f *Fault, keepNodes bool) (*Trace, error) {
	return seqsim.New(c).Run(T, f, keepNodes)
}

// WriteVCD renders a simulation trace as an IEEE 1364 Value Change Dump
// for waveform viewers. With allNodes the trace must retain node values.
func WriteVCD(w io.Writer, c *Circuit, T Sequence, tr *Trace, allNodes bool) error {
	return vcd.Write(w, c, T, tr, vcd.Options{AllNodes: allNodes})
}

// FaultByName finds a fault in the list by its Name(c) rendering.
func FaultByName(c *Circuit, faults []Fault, name string) (Fault, error) {
	for _, f := range faults {
		if f.Name(c) == name {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("motsim: no fault named %q", name)
}

// ReadVectors parses a test-sequence file (one pattern per line).
func ReadVectors(r io.Reader) (Sequence, error) { return vectors.Read(r) }

// ReadVectorsFile parses a test-sequence file from disk.
func ReadVectorsFile(path string) (Sequence, error) { return vectors.ReadFile(path) }

// WriteVectors renders a test sequence, one pattern per line.
func WriteVectors(w io.Writer, T Sequence) error { return vectors.Write(w, T) }
