package motsim_test

import (
	"fmt"
	"log"

	"repro"
)

// Example runs the whole pipeline on the paper's introductory scenario:
// a fault that conventional three-valued simulation cannot detect is
// credited under the restricted multiple observation time approach.
func Example() {
	c, err := motsim.BuiltinCircuit("intro")
	if err != nil {
		log.Fatal(err)
	}
	// Hold the single input at 0: the fault-free output is constant 0.
	T := motsim.Sequence{{motsim.Zero}, {motsim.Zero}, {motsim.Zero}}
	sim, err := motsim.New(c, T, motsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(motsim.CollapsedFaults(c), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional=%d MOT-only=%d\n", res.Conv, res.MOT)
	// Output:
	// conventional=1 MOT-only=1
}

// ExampleConventional grades a sequence with the bit-parallel
// conventional fault simulator.
func ExampleConventional() {
	c, _ := motsim.BuiltinCircuit("s27")
	T := motsim.RandomSequence(c, 32, 1997)
	results, err := motsim.Conventional(c, T, motsim.CollapsedFaults(c))
	if err != nil {
		log.Fatal(err)
	}
	detected := 0
	for _, r := range results {
		if r.Detected {
			detected++
		}
	}
	fmt.Printf("%d of %d faults detected\n", detected, len(results))
	// Output:
	// 10 of 30 faults detected
}

// ExampleNewFrame demonstrates the paper's backward implication on the
// real s27: asserting a next-state variable at time 0 specifies the
// primary output (Figure 3 of the paper).
func ExampleNewFrame() {
	c, _ := motsim.BuiltinCircuit("s27")
	pat := motsim.Pattern{motsim.One, motsim.Zero, motsim.One, motsim.One}
	base := make([]motsim.Val, c.NumNodes())
	motsim.EvalFrame(c, pat, []motsim.Val{motsim.X, motsim.X, motsim.X}, nil, base)

	fr := motsim.NewFrame(c, nil, base)
	fr.AssignNextState(1, motsim.One) // Y of G6 = 1 at time 0
	fr.ImplyTwoPass()
	fmt.Printf("output G17 = %v\n", fr.Output(0))
	// Output:
	// output G17 = 0
}

// ExampleGenerateTests runs deterministic ATPG on s27.
func ExampleGenerateTests() {
	c, _ := motsim.BuiltinCircuit("s27")
	faults := motsim.CollapsedFaults(c)
	cfg := motsim.ATPGConfig{MaxFrames: 10, MaxBacktracks: 300}
	_, T, summary, err := motsim.GenerateTests(c, faults, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated tests for %d faults, %d patterns\n", summary.Generated, len(T))
	// Output:
	// generated tests for 10 faults, 20 patterns
}
