package experiments

import (
	"testing"

	"repro/internal/circuits"
)

// smallEntry is a fast synthetic entry for driver tests.
func smallEntry(scaled bool) circuits.SuiteEntry {
	return circuits.SuiteEntry{
		Name:      "tiny",
		PaperName: "tiny",
		Params: circuits.GenParams{
			Name: "tiny", Inputs: 4, Outputs: 3, FFs: 5, FreeFFs: 1, Gates: 40, Seed: 77,
		},
		SeqLen:  16,
		SeqSeed: 7,
		Paper:   circuits.PaperRow{TotalFaults: 1, ProposedTotal: 1},
		Scaled:  scaled,
	}
}

func TestRunEntryBothProcedures(t *testing.T) {
	run, err := RunEntry(smallEntry(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Proposed == nil || run.Baseline == nil {
		t.Fatal("both procedures should run")
	}
	if run.Proposed.Total != len(run.Faults) {
		t.Error("fault totals inconsistent")
	}
	if run.Proposed.Detected() < run.Baseline.Detected() {
		t.Errorf("proposed %d < baseline %d", run.Proposed.Detected(), run.Baseline.Detected())
	}
	if run.Baseline.Detected() < run.Proposed.Conv {
		t.Error("baseline below conventional")
	}
	if run.Proposed.Conv != run.Baseline.Conv {
		t.Error("conventional counts must agree between procedures")
	}
}

func TestRunEntrySkipsScaledBaseline(t *testing.T) {
	run, err := RunEntry(smallEntry(true), Options{SkipBaselineScaled: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Baseline != nil {
		t.Fatal("scaled baseline should be skipped")
	}
	rows := Table2Rows([]*CircuitRun{run})
	if rows[0].BaseTotal != rows[0].Conv {
		t.Error("NA baseline should floor at conventional")
	}
}

func TestRunEntryProgressAndNStates(t *testing.T) {
	calls := 0
	_, err := RunEntry(smallEntry(false), Options{
		NStates:  4,
		Progress: func(circuit string, done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress never called")
	}
}

func TestTableRows(t *testing.T) {
	run, err := RunEntry(smallEntry(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2 := Table2Rows([]*CircuitRun{run})
	if len(t2) != 1 || t2[0].Circuit != "tiny" || t2[0].Total != run.Proposed.Total {
		t.Errorf("Table 2 row wrong: %+v", t2)
	}
	t3 := Table3Rows([]*CircuitRun{run})
	if len(t3) != 1 || t3[0].Circuit != "tiny" {
		t.Errorf("Table 3 row wrong: %+v", t3)
	}
}

func TestRunSuiteSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	runs, err := RunSuite([]string{"sg208"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Entry.Name != "sg208" {
		t.Fatal("selection failed")
	}
	if _, err := RunSuite([]string{"bogus"}, Options{}); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunHITECStyleSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy generation in -short mode")
	}
	res, err := RunHITECStyle("sg298", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeqLen == 0 {
		t.Fatal("empty sequence")
	}
	if res.Proposed.MOT < res.Baseline.MOT {
		t.Errorf("proposed extras %d < baseline extras %d", res.Proposed.MOT, res.Baseline.MOT)
	}
	if _, err := RunHITECStyle("bogus", Options{}); err == nil {
		t.Error("unknown circuit accepted")
	}
}
