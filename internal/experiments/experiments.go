// Package experiments drives the paper's evaluation: the Table 2 fault
// count comparison (conventional vs. the [4] baseline vs. the proposed
// procedure), the Table 3 backward-implication effectiveness counters,
// and the closing deterministic-sequence (HITEC-style) experiment. It is
// shared by cmd/mottables and the benchmark harness.
package experiments

import (
	"fmt"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/seqsim"
	"repro/internal/tgen"
	"repro/internal/xtrace"
)

// CircuitRun holds the results of running one suite circuit under both
// procedures with the same random test sequence.
type CircuitRun struct {
	Entry    circuits.SuiteEntry
	Circuit  *netlist.Circuit
	Faults   []fault.Fault
	T        seqsim.Sequence
	Proposed *core.Result
	// Baseline is nil when the baseline was skipped (mirroring the "NA"
	// entries of the paper, where [4] could not be applied to the largest
	// circuits).
	Baseline *core.Result
}

// Options controls an experiment run.
type Options struct {
	// NStates overrides the expansion budget (0 keeps the default 64).
	NStates int
	// SkipBaselineScaled skips the [4] baseline on entries marked Scaled,
	// mirroring the paper's NA entries for the largest circuits.
	SkipBaselineScaled bool
	// Workers is the number of goroutines simulating faults; values
	// below 2 run serially. Results are identical either way.
	Workers int
	// DisablePrescreen turns off the bit-parallel conventional prescreen
	// (on by default via core.DefaultConfig). Results are identical
	// either way; disabling it exists for cross-checking and timing.
	DisablePrescreen bool
	// DisableBitParallelResim turns off the bit-parallel Section 3.4
	// resimulation (on by default via core.DefaultConfig), forcing the
	// serial per-sequence path. Results are identical either way;
	// disabling it exists for cross-checking and timing.
	DisableBitParallelResim bool
	// DisableEventSim turns off the event-driven sparse-delta frame
	// evaluator (on by default via core.DefaultConfig), forcing the
	// level-order copy-and-propagate path. Results are identical either
	// way; disabling it exists for cross-checking and timing.
	DisableEventSim bool
	// Progress, when non-nil, receives per-fault progress.
	Progress func(circuit string, done, total int)
	// Live, when non-nil, receives coarse-cadence live snapshots from
	// every run of the experiment (all circuits and procedures publish
	// into the one LiveStats), for -metrics-addr exposition.
	Live *core.LiveStats
	// Tracer, when non-nil, collects hierarchical spans from every run of
	// the experiment at TraceSampleRate (see core.Config.Tracer).
	Tracer          *xtrace.Tracer
	TraceSampleRate float64
}

// configs derives the proposed and baseline configurations.
func (o Options) configs() (core.Config, core.Config) {
	p := core.DefaultConfig()
	b := core.BaselineConfig()
	if o.NStates > 0 {
		p.NStates = o.NStates
		b.NStates = o.NStates
	}
	if o.DisablePrescreen {
		p.Prescreen = false
		b.Prescreen = false
	}
	if o.DisableBitParallelResim {
		p.BitParallelResim = false
		b.BitParallelResim = false
	}
	if o.DisableEventSim {
		p.EventSim = false
		b.EventSim = false
	}
	p.Live = o.Live
	b.Live = o.Live
	p.Tracer = o.Tracer
	b.Tracer = o.Tracer
	p.TraceSampleRate = o.TraceSampleRate
	b.TraceSampleRate = o.TraceSampleRate
	return p, b
}

// RunEntry runs one suite circuit: generate the circuit, generate the
// random sequence, collapse the fault list, then simulate all faults
// under the proposed procedure and (optionally) the [4] baseline.
func RunEntry(e circuits.SuiteEntry, opts Options) (*CircuitRun, error) {
	c, err := circuits.Generate(e.Params)
	if err != nil {
		return nil, err
	}
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	cfgP, cfgB := opts.configs()

	run := &CircuitRun{Entry: e, Circuit: c, Faults: faults, T: T}
	var progress func(done, total int)
	if opts.Progress != nil {
		progress = func(done, total int) { opts.Progress(e.Name, done, total) }
	}
	sp, err := core.NewSimulator(c, T, cfgP)
	if err != nil {
		return nil, err
	}
	if run.Proposed, err = sp.RunParallel(faults, opts.Workers, progress); err != nil {
		return nil, err
	}
	if !(opts.SkipBaselineScaled && e.Scaled) {
		sb, err := core.NewSimulator(c, T, cfgB)
		if err != nil {
			return nil, err
		}
		if run.Baseline, err = sb.RunParallel(faults, opts.Workers, progress); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// RunSuite runs every listed entry (all suite entries when names is
// empty).
func RunSuite(names []string, opts Options) ([]*CircuitRun, error) {
	entries := circuits.Suite()
	if len(names) > 0 {
		var sel []circuits.SuiteEntry
		for _, n := range names {
			e, err := circuits.SuiteEntryByName(n)
			if err != nil {
				return nil, err
			}
			sel = append(sel, e)
		}
		entries = sel
	}
	runs := make([]*CircuitRun, 0, len(entries))
	for _, e := range entries {
		run, err := RunEntry(e, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Table2Rows converts circuit runs into Table 2 rows.
func Table2Rows(runs []*CircuitRun) []report.Table2Row {
	rows := make([]report.Table2Row, 0, len(runs))
	for _, r := range runs {
		paper := r.Entry.Paper
		row := report.Table2Row{
			Circuit:   r.Entry.Name,
			Total:     r.Proposed.Total,
			Conv:      r.Proposed.Conv,
			PropTotal: r.Proposed.Detected(),
			PropExtra: r.Proposed.MOT,
			Paper:     &paper,
		}
		if r.Baseline != nil {
			row.BaseTotal = r.Baseline.Detected()
			row.BaseExtra = r.Baseline.MOT
		} else {
			row.BaseTotal = row.Conv // NA: report conventional as floor
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3Rows converts circuit runs into Table 3 rows (averages of the
// per-fault counters over MOT-detected faults).
func Table3Rows(runs []*CircuitRun) []report.Table3Row {
	rows := make([]report.Table3Row, 0, len(runs))
	for _, r := range runs {
		det, conf, extra := r.Proposed.AvgCounters()
		paper := r.Entry.Paper
		rows = append(rows, report.Table3Row{
			Circuit: r.Entry.Name,
			Det:     det, Conf: conf, Extra: extra,
			Paper: &paper,
		})
	}
	return rows
}

// HITECResult is the closing experiment: MOT simulation of a compact
// deterministic (greedy coverage-directed) sequence on the s5378 stand-in,
// comparing proposed and baseline extras. The paper reports 14 vs. 12
// extra faults with the HITEC sequence.
type HITECResult struct {
	Circuit  string
	SeqLen   int
	Proposed *core.Result
	Baseline *core.Result
}

// RunHITECStyle runs the deterministic-sequence experiment on the named
// suite entry (the paper uses s5378).
func RunHITECStyle(name string, opts Options) (*HITECResult, error) {
	e, err := circuits.SuiteEntryByName(name)
	if err != nil {
		return nil, err
	}
	c, err := circuits.Generate(e.Params)
	if err != nil {
		return nil, err
	}
	faults := fault.CollapsedList(c)
	gcfg := tgen.DefaultGreedyConfig()
	gcfg.MaxLen = e.SeqLen * 2
	gcfg.Seed = e.SeqSeed
	T, err := tgen.Greedy(c, faults, gcfg)
	if err != nil {
		return nil, err
	}
	if len(T) == 0 {
		return nil, fmt.Errorf("experiments: greedy sequence for %s is empty", e.Name)
	}
	cfgP, cfgB := opts.configs()
	res := &HITECResult{Circuit: e.Name, SeqLen: len(T)}
	sp, err := core.NewSimulator(c, T, cfgP)
	if err != nil {
		return nil, err
	}
	if res.Proposed, err = sp.Run(faults, nil); err != nil {
		return nil, err
	}
	sb, err := core.NewSimulator(c, T, cfgB)
	if err != nil {
		return nil, err
	}
	if res.Baseline, err = sb.Run(faults, nil); err != nil {
		return nil, err
	}
	return res, nil
}
