// Package oracle decides fault detectability exactly, by enumerating
// initial states, for circuits with few flip-flops. It is the ground
// truth against which the simulation procedures are validated:
//
//   - Restricted MOT [2,3]: a single fault-free response (three-valued,
//     from the all-X initial state); the fault is detected iff for every
//     binary initial state of the faulty machine, the faulty response
//     conflicts with the fault-free response at some position where the
//     fault-free value is specified.
//
//   - Full MOT [2]: both machines' initial states are enumerated; the
//     fault is detected iff for every pair (fault-free initial state,
//     faulty initial state) the two binary responses differ somewhere.
//
// Conventional single-observation-time detection is included for
// completeness. Cost is O(2^FFs) simulations (O(4^FFs) for full MOT), so
// the oracle enforces a flip-flop limit.
package oracle

import (
	"fmt"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// MaxFFs is the largest flip-flop count the oracle accepts.
const MaxFFs = 16

// Verdict classifies a fault under the three detection criteria.
type Verdict struct {
	Conventional  bool
	RestrictedMOT bool
	FullMOT       bool
}

// Oracle precomputes the fault-free data for a circuit and test sequence.
type Oracle struct {
	c    *netlist.Circuit
	cc   *cir.CC
	ev   *cir.Evaluator
	T    seqsim.Sequence
	good *seqsim.Trace
	// goodResponses holds the binary output responses of every fault-free
	// initial state (for full MOT).
	goodResponses [][][]logic.Val
}

// New builds an oracle. It fails when the circuit has more than MaxFFs
// flip-flops.
func New(c *netlist.Circuit, T seqsim.Sequence) (*Oracle, error) {
	if c.NumFFs() > MaxFFs {
		return nil, fmt.Errorf("oracle: circuit has %d flip-flops, limit is %d", c.NumFFs(), MaxFFs)
	}
	sim := seqsim.New(c)
	good, err := sim.FaultFree(T)
	if err != nil {
		return nil, err
	}
	cc := cir.For(c)
	o := &Oracle{c: c, cc: cc, ev: cc.NewEvaluator(), T: T, good: good}
	n := c.NumFFs()
	o.goodResponses = make([][][]logic.Val, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		resp, err := o.respond(initState(cc, m, nil), nil)
		if err != nil {
			return nil, err
		}
		o.goodResponses = append(o.goodResponses, resp)
	}
	return o, nil
}

// initState builds the effective binary initial state with bit mask m.
func initState(cc *cir.CC, m int, f *fault.Fault) []logic.Val {
	st := make([]logic.Val, cc.NumFFs())
	for i, q := range cc.FFQ {
		v := logic.FromBool(m&(1<<i) != 0)
		if f != nil {
			v = f.Observed(q, v)
		}
		st[i] = v
	}
	return st
}

// respond simulates the machine (fault f, nil for fault-free) from the
// given initial state and returns the per-frame output responses.
func (o *Oracle) respond(st []logic.Val, f *fault.Fault) ([][]logic.Val, error) {
	cc := o.cc
	vals := make([]logic.Val, cc.NumNodes())
	resp := make([][]logic.Val, len(o.T))
	for u, pat := range o.T {
		if len(pat) != cc.NumInputs() {
			return nil, fmt.Errorf("oracle: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		o.ev.EvalFrame(pat, st, f, vals)
		row := make([]logic.Val, cc.NumOutputs())
		for j, id := range cc.Outputs {
			row[j] = vals[id]
		}
		resp[u] = row
		next := make([]logic.Val, cc.NumFFs())
		for i, d := range cc.FFD {
			v := vals[d]
			if f != nil {
				v = f.Observed(cc.FFQ[i], v)
			}
			next[i] = v
		}
		st = next
	}
	return resp, nil
}

// conflicts reports whether responses a and b differ at some position
// where both are specified.
func conflicts(a, b [][]logic.Val) bool {
	for u := range a {
		for j := range a[u] {
			if a[u][j].IsBinary() && b[u][j].IsBinary() && a[u][j] != b[u][j] {
				return true
			}
		}
	}
	return false
}

// Decide classifies fault f under all three criteria.
func (o *Oracle) Decide(f fault.Fault) (Verdict, error) {
	var v Verdict

	// Conventional: three-valued faulty simulation from the all-X state.
	sim := seqsim.New(o.c)
	bad, err := sim.Run(o.T, &f, false)
	if err != nil {
		return v, err
	}
	_, v.Conventional = seqsim.FirstDetection(o.good, bad)

	// Restricted MOT: every binary faulty initial state must conflict
	// with the single three-valued fault-free response.
	n := o.c.NumFFs()
	v.RestrictedMOT = true
	faultyResponses := make([][][]logic.Val, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		resp, err := o.respond(initState(o.cc, m, &f), &f)
		if err != nil {
			return v, err
		}
		faultyResponses = append(faultyResponses, resp)
		if v.RestrictedMOT && !conflicts(o.good.Outputs, resp) {
			v.RestrictedMOT = false
		}
	}

	// Full MOT: every (fault-free state, faulty state) pair must differ.
	v.FullMOT = true
full:
	for _, g := range o.goodResponses {
		for _, b := range faultyResponses {
			if !conflicts(g, b) {
				v.FullMOT = false
				break full
			}
		}
	}
	return v, nil
}

// Counts aggregates verdicts over a fault list.
type Counts struct {
	Total         int
	Conventional  int
	RestrictedMOT int
	FullMOT       int
}

// DecideAll classifies every fault.
func (o *Oracle) DecideAll(faults []fault.Fault) (Counts, []Verdict, error) {
	counts := Counts{Total: len(faults)}
	verdicts := make([]Verdict, len(faults))
	for k, f := range faults {
		v, err := o.Decide(f)
		if err != nil {
			return counts, nil, err
		}
		verdicts[k] = v
		if v.Conventional {
			counts.Conventional++
		}
		if v.RestrictedMOT {
			counts.RestrictedMOT++
		}
		if v.FullMOT {
			counts.FullMOT++
		}
	}
	return counts, verdicts, nil
}
