package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func introOracle(t *testing.T) (*Oracle, *netlist.Circuit, fault.Fault) {
	t.Helper()
	c := circuits.Intro()
	T := seqsim.Sequence{{logic.Zero}, {logic.Zero}, {logic.Zero}}
	o, err := New(c, T)
	if err != nil {
		t.Fatal(err)
	}
	node, gate := circuits.IntroFault(c)
	return o, c, fault.Fault{Node: node, Gate: gate, Pin: 0, Stuck: logic.One}
}

func TestIntroVerdicts(t *testing.T) {
	o, _, f := introOracle(t)
	v, err := o.Decide(f)
	if err != nil {
		t.Fatal(err)
	}
	if v.Conventional {
		t.Error("intro fault must not be conventionally detected")
	}
	if !v.RestrictedMOT {
		t.Error("intro fault must be restricted-MOT detectable")
	}
	if !v.FullMOT {
		t.Error("restricted-MOT detectability implies full-MOT detectability")
	}
}

func TestFFLimit(t *testing.T) {
	b := netlist.NewBuilder("big")
	a := b.Input("a")
	for i := 0; i < MaxFFs+1; i++ {
		q := b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i)))
		b.Gate(logic.And, fmt.Sprintf("d%d", i), a, q)
	}
	b.GateNamed(logic.Buf, "o", "q0")
	b.Output("o")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, seqsim.Sequence{{logic.One}}); err == nil {
		t.Fatal("oracle accepted a circuit over the FF limit")
	}
}

func TestHierarchy(t *testing.T) {
	// Conventional implies restricted MOT implies full MOT, on an
	// assortment of random circuits and faults.
	rng := rand.New(rand.NewSource(13))
	trials := 0
	for trials < 12 {
		c, err := randomCircuit(rng, 2, 3, 8+rng.Intn(10))
		if err != nil {
			continue
		}
		trials++
		T := randomSequence(rng, c.NumInputs(), 5)
		o, err := New(c, T)
		if err != nil {
			t.Fatal(err)
		}
		counts, verdicts, err := o.DecideAll(fault.CollapsedList(c))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range verdicts {
			if v.Conventional && !v.RestrictedMOT {
				t.Fatalf("fault %d: conventional but not restricted-MOT", k)
			}
			if v.RestrictedMOT && !v.FullMOT {
				t.Fatalf("fault %d: restricted-MOT but not full-MOT", k)
			}
		}
		if counts.Conventional > counts.RestrictedMOT || counts.RestrictedMOT > counts.FullMOT {
			t.Fatalf("count hierarchy violated: %+v", counts)
		}
	}
}

// TestSimulatorNeverExceedsOracle is the completeness-side cross-check of
// the whole system: the MOT procedure must never claim a detection the
// restricted-MOT oracle denies (soundness), and conventional counts must
// agree exactly.
func TestSimulatorNeverExceedsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	trials := 0
	for trials < 12 {
		c, err := randomCircuit(rng, 2, 4, 10+rng.Intn(12))
		if err != nil {
			continue
		}
		trials++
		T := randomSequence(rng, c.NumInputs(), 6)
		o, err := New(c, T)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.CollapsedList(c)
		sim, err := core.NewSimulator(c, T, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			v, err := o.Decide(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.SimulateFault(f)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == core.DetectedConventional && !v.Conventional {
				t.Fatalf("fault %s: simulator says conventional, oracle denies", f.Name(c))
			}
			if res.Outcome == core.DetectedMOT && !v.RestrictedMOT {
				t.Fatalf("fault %s: simulator says MOT-detected, oracle denies", f.Name(c))
			}
			if v.Conventional && res.Outcome == core.Undetected {
				t.Fatalf("fault %s: oracle says conventional, simulator missed it", f.Name(c))
			}
		}
	}
}

func TestRespondWidthCheck(t *testing.T) {
	c, err := bench.ParseString("w", "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, seqsim.Sequence{{logic.One}}); err == nil {
		t.Fatal("narrow pattern accepted")
	}
}

// --- helpers shared with other packages' tests ---

func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 2 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

func randomSequence(rng *rand.Rand, width, length int) seqsim.Sequence {
	T := make(seqsim.Sequence, length)
	for u := range T {
		p := make(seqsim.Pattern, width)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	return T
}
