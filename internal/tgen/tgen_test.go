package tgen

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, 20, 7)
	b := Random(5, 20, 7)
	if len(a) != 20 || len(a[0]) != 5 {
		t.Fatal("wrong shape")
	}
	for u := range a {
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatal("Random nondeterministic")
			}
			if !a[u][i].IsBinary() {
				t.Fatal("Random produced X")
			}
		}
	}
	c := Random(5, 20, 8)
	same := true
	for u := range a {
		for i := range a[u] {
			if a[u][i] != c[u][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

func TestGreedyConfigValidate(t *testing.T) {
	if err := DefaultGreedyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GreedyConfig{
		{BlockLen: 0, Candidates: 1, MaxLen: 4, Stall: 1},
		{BlockLen: 2, Candidates: 0, MaxLen: 4, Stall: 1},
		{BlockLen: 8, Candidates: 1, MaxLen: 4, Stall: 1},
		{BlockLen: 2, Candidates: 1, MaxLen: 4, Stall: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Greedy(nil, nil, bad[0]); err == nil {
		t.Error("Greedy accepted invalid config")
	}
}

// coverage counts conventionally detected faults for a sequence.
func coverage(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault) int {
	t.Helper()
	s := seqsim.New(c)
	good, err := s.Run(T, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunFaults(T, good, faults)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range res {
		if r.Detected {
			n++
		}
	}
	return n
}

func TestGreedyDetectsAndIsDeterministic(t *testing.T) {
	c, err := bench.ParseString("g", `
INPUT(r)
INPUT(x)
OUTPUT(o1)
OUTPUT(o2)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
o1 = BUFF(q)
o2 = NOR(t, x)
`)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	cfg := GreedyConfig{BlockLen: 2, Candidates: 6, MaxLen: 40, Stall: 4, Seed: 3}
	T1, err := Greedy(c, faults, cfg)
	if err != nil {
		t.Fatal(err)
	}
	T2, err := Greedy(c, faults, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(T1) == 0 {
		t.Fatal("empty greedy sequence")
	}
	if len(T1) != len(T2) {
		t.Fatal("greedy nondeterministic in length")
	}
	for u := range T1 {
		if logic.FormatVals(T1[u]) != logic.FormatVals(T2[u]) {
			t.Fatal("greedy nondeterministic in content")
		}
	}
	if cov := coverage(t, c, T1, faults); cov == 0 {
		t.Fatal("greedy sequence detects nothing")
	}
}

// TestGreedyBeatsRandomPerPattern checks the HITEC-like property: the
// greedy sequence achieves at least the coverage of an equal-length
// random sequence on a suite circuit.
func TestGreedyBeatsRandomPerPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy generation in -short mode")
	}
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	faults := fault.CollapsedList(c)
	cfg := GreedyConfig{BlockLen: 4, Candidates: 6, MaxLen: 48, Stall: 4, Seed: 5}
	Tg, err := Greedy(c, faults, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Tg) == 0 {
		t.Skip("greedy found nothing to chase on this circuit")
	}
	covG := coverage(t, c, Tg, faults)
	covR := coverage(t, c, Random(c.NumInputs(), len(Tg), 5), faults)
	if covG < covR {
		t.Errorf("greedy coverage %d < random coverage %d at equal length", covG, covR)
	}
}

func TestGreedyRespectsMaxLen(t *testing.T) {
	c, err := bench.ParseString("m", `
INPUT(a)
OUTPUT(o)
o = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GreedyConfig{BlockLen: 3, Candidates: 2, MaxLen: 7, Stall: 100, Seed: 1}
	T, err := Greedy(c, fault.CollapsedList(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(T) > 7 {
		t.Errorf("greedy length %d exceeds MaxLen 7", len(T))
	}
}
