// Package tgen generates test sequences: seeded random sequences (used
// for the paper's Table 2 experiments) and a greedy coverage-directed
// generator standing in for the HITEC deterministic test sequences used
// in the paper's closing experiment (see DESIGN.md §4).
package tgen

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// Random returns a deterministic pseudo-random binary test sequence of
// the given length for a circuit with the given input count.
func Random(inputs, length int, seed int64) seqsim.Sequence {
	rng := rand.New(rand.NewSource(seed))
	T := make(seqsim.Sequence, length)
	for u := range T {
		p := make(seqsim.Pattern, inputs)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	return T
}

// GreedyConfig controls the coverage-directed generator.
type GreedyConfig struct {
	// BlockLen is the number of patterns appended per accepted step.
	BlockLen int
	// Candidates is the number of random candidate blocks scored per step.
	Candidates int
	// MaxLen bounds the total sequence length.
	MaxLen int
	// Stall stops generation after this many consecutive steps with no
	// newly detected fault.
	Stall int
	// Seed drives candidate generation.
	Seed int64
}

// DefaultGreedyConfig returns a reasonable configuration.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{BlockLen: 4, Candidates: 8, MaxLen: 256, Stall: 6, Seed: 1}
}

// Validate checks the configuration.
func (cfg GreedyConfig) Validate() error {
	if cfg.BlockLen < 1 || cfg.Candidates < 1 || cfg.MaxLen < cfg.BlockLen || cfg.Stall < 1 {
		return fmt.Errorf("tgen: invalid greedy config %+v", cfg)
	}
	return nil
}

// machineState tracks one machine's present state during incremental
// block scoring.
type machineState struct {
	flt   fault.Fault
	state []logic.Val
	alive bool
}

// Greedy builds a compact, deterministic, high-coverage test sequence by
// repeated best-of-N selection: each step scores Candidates random blocks
// of BlockLen patterns by the number of additional faults they detect
// under conventional simulation, appends the best block, and drops the
// newly detected faults. Like the deterministic sequences of HITEC it is
// reproducible and yields far higher coverage per pattern than pure
// random sequences; unlike HITEC it is simulation-based rather than
// ATPG-based (DESIGN.md §4 documents the substitution).
func Greedy(c *netlist.Circuit, faults []fault.Fault, cfg GreedyConfig) (seqsim.Sequence, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	goodState := make([]logic.Val, c.NumFFs())
	for i := range goodState {
		goodState[i] = logic.X
	}
	machines := make([]machineState, len(faults))
	for k, f := range faults {
		st := make([]logic.Val, c.NumFFs())
		for i, ff := range c.FFs {
			st[i] = f.Observed(ff.Q, logic.X)
		}
		machines[k] = machineState{flt: f, state: st, alive: true}
	}

	var T seqsim.Sequence
	sim := seqsim.New(c)
	vals := make([]logic.Val, c.NumNodes())
	stall := 0

	// scoreBlock simulates good and faulty machines over the block from
	// the current states; when commit is true it updates the states and
	// drops detected faults, otherwise it only counts detections. Faulty
	// frames are evaluated event-driven against the fault-free frames.
	scoreBlock := func(block seqsim.Sequence, commit bool) int {
		goodSt := cloneState(goodState)
		goodOut := make([][]logic.Val, len(block))
		goodNext := make([][]logic.Val, len(block))
		goodVals := make([][]logic.Val, len(block))
		for u, pat := range block {
			seqsim.EvalFrame(c, pat, goodSt, nil, vals)
			goodVals[u] = append([]logic.Val(nil), vals...)
			goodOut[u] = snapshotOutputs(c, vals)
			goodSt = nextStateOf(c, nil, vals)
			goodNext[u] = goodSt
		}
		detected := 0
		for k := range machines {
			m := &machines[k]
			if !m.alive {
				continue
			}
			st := cloneState(m.state)
			hit := false
			for u, pat := range block {
				fv := sim.FrameDelta(pat, st, goodVals[u], &m.flt)
				for j, id := range c.Outputs {
					g := goodOut[u][j]
					if g.IsBinary() && fv[id].IsBinary() && fv[id] != g {
						hit = true
					}
				}
				if hit {
					break
				}
				st = nextStateOf(c, &m.flt, fv)
			}
			if hit {
				detected++
				if commit {
					m.alive = false
				}
			} else if commit {
				m.state = st
			}
		}
		if commit {
			goodState = goodNext[len(block)-1]
		}
		return detected
	}

	for len(T) < cfg.MaxLen && stall < cfg.Stall {
		remaining := 0
		for k := range machines {
			if machines[k].alive {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		blockLen := cfg.BlockLen
		if len(T)+blockLen > cfg.MaxLen {
			blockLen = cfg.MaxLen - len(T)
		}
		var best seqsim.Sequence
		bestScore := -1
		for cand := 0; cand < cfg.Candidates; cand++ {
			block := make(seqsim.Sequence, blockLen)
			for u := range block {
				p := make(seqsim.Pattern, c.NumInputs())
				for i := range p {
					p[i] = logic.FromBool(rng.Intn(2) == 1)
				}
				block[u] = p
			}
			if score := scoreBlock(block, false); score > bestScore {
				bestScore = score
				best = block
			}
		}
		scoreBlock(best, true)
		T = append(T, best...)
		if bestScore == 0 {
			stall++
		} else {
			stall = 0
		}
	}
	return T, nil
}

func cloneState(st []logic.Val) []logic.Val {
	out := make([]logic.Val, len(st))
	copy(out, st)
	return out
}

func snapshotOutputs(c *netlist.Circuit, vals []logic.Val) []logic.Val {
	out := make([]logic.Val, c.NumOutputs())
	for j, id := range c.Outputs {
		out[j] = vals[id]
	}
	return out
}

func nextStateOf(c *netlist.Circuit, f *fault.Fault, vals []logic.Val) []logic.Val {
	st := make([]logic.Val, c.NumFFs())
	for i, ff := range c.FFs {
		v := vals[ff.D]
		if f != nil {
			v = f.Observed(ff.Q, v)
		}
		st[i] = v
	}
	return st
}
