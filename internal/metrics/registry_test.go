package metrics

import (
	"bufio"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mot_faults_total", "Faults submitted.")
	c.Add(42)
	g := r.Gauge("mot_runs_active", "Runs in flight.")
	g.Set(3)
	g.Add(-1)
	tm := r.Timer("mot_stage_seconds_total", "Stage time.")
	tm.Add(1500 * time.Millisecond)
	r.GaugeFunc("mot_coverage", "Fraction detected.", func() float64 { return 0.5 })
	r.CounterFunc("mot_done_total", "Done.", func() int64 { return 7 })
	h := r.Histogram("mot_pairs", "Pairs per fault.", 1, 2, 4)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP mot_faults_total Faults submitted.",
		"# TYPE mot_faults_total counter",
		"mot_faults_total 42",
		"# TYPE mot_runs_active gauge",
		"mot_runs_active 2",
		"# TYPE mot_stage_seconds_total counter",
		"mot_stage_seconds_total 1.5",
		"mot_coverage 0.5",
		"mot_done_total 7",
		"# TYPE mot_pairs histogram",
		`mot_pairs_bucket{le="1"} 1`,
		`mot_pairs_bucket{le="2"} 1`,
		`mot_pairs_bucket{le="4"} 2`,
		`mot_pairs_bucket{le="+Inf"} 3`,
		"mot_pairs_sum 104",
		"mot_pairs_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(1_000_000_000, 2_000_000_000)
	r.HistogramFunc("mot_fault_seconds", "Per-fault time.", 1e-9, h.Snapshot)
	h.Observe(1_500_000_000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mot_fault_seconds_bucket{le="1"} 0`,
		`mot_fault_seconds_bucket{le="2"} 1`,
		`mot_fault_seconds_bucket{le="+Inf"} 1`,
		"mot_fault_seconds_sum 1.5",
		"mot_fault_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "")
	for name, f := range map[string]func(){
		"duplicate":    func() { r.Counter("ok_name", "") },
		"invalid name": func() { r.Counter("bad name", "") },
		"bad scale":    func() { r.HistogramFunc("h", "", 0, func() Snapshot { return Snapshot{} }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	if !strings.Contains(sb.String(), "one 1\n") {
		t.Errorf("handler output missing counter:\n%s", sb.String())
	}
}

// TestRegistryGoldenExposition pins the exact byte output of the text
// exposition, including the HELP escaping of backslashes and newlines
// the format requires — a scraper-visible contract, so any format drift
// must show up as a diff here.
func TestRegistryGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mot_requests_total", `Requests with a \ backslash
and a newline.`).Add(5)
	r.GaugeFunc("mot_depth", "", func() float64 { return 2 })
	h := r.Histogram("mot_width", "Widths.", 1, 8)
	h.Observe(1)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP mot_requests_total Requests with a \\ backslash\nand a newline.
# TYPE mot_requests_total counter
mot_requests_total 5
# TYPE mot_depth gauge
mot_depth 2
# HELP mot_width Widths.
# TYPE mot_width histogram
mot_width_bucket{le="1"} 1
mot_width_bucket{le="8"} 1
mot_width_bucket{le="+Inf"} 2
mot_width_sum 10
mot_width_count 2
`
	if sb.String() != golden {
		t.Errorf("exposition drifted from golden output:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

// parseExposition is a minimal Prometheus text-format parser used by the
// concurrency tests: it validates line shapes and returns samples by name.
func parseExposition(t *testing.T, out string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank exposition line")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[fields[0]] = v
	}
	return samples
}

// TestRegistryParallelScrapeCrossCheck hammers every metric kind from
// writer goroutines while scraping concurrently, asserting each scrape
// parses and each histogram is internally consistent: cumulative
// buckets are non-decreasing and the _count sample equals the +Inf
// bucket (no torn histograms). Run under -race via the Makefile race
// target (the name matches the Parallel|...|CrossCheck pattern).
func TestRegistryParallelScrapeCrossCheck(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("sizes", "", ExpBounds(1, 2, 8)...)
	tm := r.Timer("busy_seconds_total", "")

	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i%300 + 1))
				tm.Add(time.Nanosecond)
			}
		}(w)
	}
	var scrapes int
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		// Scrape before checking stop so at least one scrape happens
		// even if the writers win every scheduling race.
		for {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			checkHistogramConsistency(t, sb.String(), "sizes")
			scrapes++
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())
	if got := samples["writes_total"]; got != writers*perWriter {
		t.Errorf("writes_total = %v, want %d", got, writers*perWriter)
	}
	if got := samples["sizes_count"]; got != writers*perWriter {
		t.Errorf("sizes_count = %v, want %d", got, writers*perWriter)
	}
	if scrapes == 0 {
		t.Error("scraper never ran concurrently with the writers")
	}
}

// checkHistogramConsistency parses one exposition and asserts the named
// histogram's cumulative buckets never decrease and agree with _count.
func checkHistogramConsistency(t *testing.T, out, name string) {
	t.Helper()
	var last float64
	lastInf := math.NaN()
	var count float64 = math.NaN()
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("cumulative bucket decreased in %q (prev %v)", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				lastInf = v
			}
		case strings.HasPrefix(line, name+"_count "):
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if math.IsNaN(lastInf) || math.IsNaN(count) {
		t.Fatalf("histogram %s missing from exposition", name)
	}
	if lastInf != count {
		t.Fatalf("histogram %s torn: +Inf bucket %v != count %v", name, lastInf, count)
	}
}

// TestHistogramParallelObserveCrossCheck checks Snapshot under
// concurrent Observe: every snapshot's bucket total must never exceed
// the number of started observations and the final snapshot matches
// exactly.
func TestHistogramParallelObserveCrossCheck(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 6)...)
	const writers, perWriter = 4, 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(i%100 + 1))
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, b := range s.Buckets {
				sum += b.Count
			}
			if sum > writers*perWriter {
				t.Errorf("snapshot bucket total %d exceeds observations %d", sum, writers*perWriter)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	s := h.Snapshot()
	var sum int64
	for _, b := range s.Buckets {
		sum += b.Count
	}
	if sum != writers*perWriter || s.Count != writers*perWriter {
		t.Errorf("final snapshot: bucket sum %d count %d, want %d", sum, s.Count, writers*perWriter)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", "")
	r.Counter("a", "")
	names := r.Names()
	if fmt.Sprint(names) != "[a b]" {
		t.Errorf("Names() = %v", names)
	}
}
