package metrics

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples names every runtime/metrics sample the collector
// reads. Scalar samples feed gauges/counters directly; the two
// float64-histogram samples are converted to Snapshot form.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/stacks:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// runtimeCollector batches runtime/metrics reads: one rtm.Read serves
// every registered series of a scrape. Reads within refreshEvery of
// each other reuse the cached samples, so a scrape touching eight
// series costs one runtime read, while successive scrapes always see
// fresh values.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []rtm.Sample
	last    time.Time
	byName  map[string]int
}

// refreshEvery bounds how stale cached runtime samples may be. A scrape
// renders all runtime series well inside this window; separate scrapes
// (even aggressive 1s dashboards) always re-read.
const refreshEvery = 50 * time.Millisecond

func newRuntimeCollector() *runtimeCollector {
	c := &runtimeCollector{
		samples: make([]rtm.Sample, len(runtimeSamples)),
		byName:  make(map[string]int, len(runtimeSamples)),
	}
	for i, name := range runtimeSamples {
		c.samples[i].Name = name
		c.byName[name] = i
	}
	return c
}

// sample returns the current value of one named runtime metric,
// re-reading the whole batch when the cache is stale.
func (c *runtimeCollector) sample(name string) rtm.Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.last) > refreshEvery {
		rtm.Read(c.samples)
		c.last = now
	}
	return c.samples[c.byName[name]].Value
}

// uint64Of reads a scalar sample as uint64, zero when the runtime does
// not export it (KindBad on older/newer toolchains).
func (c *runtimeCollector) uint64Of(name string) uint64 {
	if v := c.sample(name); v.Kind() == rtm.KindUint64 {
		return v.Uint64()
	}
	return 0
}

// snapshotOf converts a runtime float64-histogram sample (bounds in
// seconds) into a Snapshot with nanosecond integer bounds, for
// HistogramFunc exposure at scale 1e-9. Runtime histograms carry no
// sum, so Sum is estimated from bucket midpoints (documented in the
// series help); min/max are taken from the outermost occupied bucket
// edges, which keeps Quantile's clamping sound.
func (c *runtimeCollector) snapshotOf(name string) Snapshot {
	v := c.sample(name)
	if v.Kind() != rtm.KindFloat64Histogram {
		return Snapshot{}
	}
	h := v.Float64Histogram()
	var s Snapshot
	s.Min, s.Max = math.MaxInt64, math.MinInt64
	for i, n := range h.Counts {
		cnt := int64(n)
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		le := int64(math.MaxInt64)
		if !math.IsInf(hi, +1) {
			le = int64(hi * 1e9)
		}
		// Runtime bucket edges are distinct floats but can collapse to
		// the same nanosecond integer; fold such buckets together so the
		// bounds stay strictly increasing.
		if k := len(s.Buckets); k > 0 && s.Buckets[k-1].Le >= le {
			s.Buckets[k-1].Count += cnt
		} else {
			s.Buckets = append(s.Buckets, Bucket{Le: le, Count: cnt})
		}
		if cnt == 0 {
			continue
		}
		s.Count += cnt
		mid := hi
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, +1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		s.Sum += cnt * int64(mid*1e9)
		if loNS := int64(math.Max(lo, 0) * 1e9); loNS < s.Min {
			s.Min = loNS
		}
		if !math.IsInf(hi, +1) {
			if hiNS := int64(hi * 1e9); hiNS > s.Max {
				s.Max = hiNS
			}
		}
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	} else {
		s.Mean = float64(s.Sum) / float64(s.Count)
		if s.Max < s.Min {
			s.Max = s.Min
		}
	}
	return s
}

// RegisterRuntime registers the Go runtime health series on r under
// prefix (e.g. "motserve" yields motserve_go_goroutines): goroutine
// count, heap and stack bytes, cumulative allocated bytes and GC
// cycles, and the GC pause and scheduler latency distributions. Every
// value is read from runtime/metrics at scrape time through a shared
// batched collector, so registration itself costs nothing at runtime.
// The two _seconds histograms estimate their _sum from bucket midpoints
// (the runtime exports no exact sum).
func RegisterRuntime(r *Registry, prefix string) {
	c := newRuntimeCollector()
	p := prefix + "_go_"
	r.GaugeFunc(p+"goroutines", "Live goroutines (runtime.NumGoroutine).",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(p+"heap_bytes", "Bytes of live heap objects (/memory/classes/heap/objects).",
		func() float64 { return float64(c.uint64Of("/memory/classes/heap/objects:bytes")) })
	r.GaugeFunc(p+"stack_bytes", "Bytes of goroutine stacks (/memory/classes/heap/stacks).",
		func() float64 { return float64(c.uint64Of("/memory/classes/heap/stacks:bytes")) })
	r.CounterFunc(p+"alloc_bytes_total", "Cumulative bytes allocated on the heap (/gc/heap/allocs).",
		func() int64 { return int64(c.uint64Of("/gc/heap/allocs:bytes")) })
	r.CounterFunc(p+"gc_cycles_total", "Completed GC cycles (/gc/cycles/total).",
		func() int64 { return int64(c.uint64Of("/gc/cycles/total:gc-cycles")) })
	r.HistogramFunc(p+"gc_pause_seconds",
		"Stop-the-world GC pause distribution (/sched/pauses/total/gc; _sum estimated from bucket midpoints).",
		1e-9, func() Snapshot { return c.snapshotOf("/sched/pauses/total/gc:seconds") })
	r.HistogramFunc(p+"sched_latency_seconds",
		"Time goroutines spend runnable before running (/sched/latencies; _sum estimated from bucket midpoints).",
		1e-9, func() Snapshot { return c.snapshotOf("/sched/latencies:seconds") })
}
