package metrics

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram(10, 100)
	if h.Exemplars() != nil {
		t.Fatal("fresh histogram should have nil exemplars")
	}
	h.Observe(50)
	h.SetExemplar(50, Label{Key: "fault", Val: "g17/saf0"})
	h.Observe(500)
	h.SetExemplar(500, Label{Key: "span", Val: "00000000deadbeef"})
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want 3 (one per bucket incl. overflow)", len(ex))
	}
	if ex[0] != nil {
		t.Errorf("bucket le=10 has exemplar %+v, want none", ex[0])
	}
	if ex[1] == nil || ex[1].Value != 50 || ex[1].Labels[0].Val != "g17/saf0" {
		t.Errorf("bucket le=100 exemplar = %+v, want value 50 fault g17/saf0", ex[1])
	}
	if ex[2] == nil || ex[2].Value != 500 {
		t.Errorf("overflow bucket exemplar = %+v, want value 500", ex[2])
	}
	// A newer observation in the same bucket replaces the exemplar.
	h.SetExemplar(60, Label{Key: "fault", Val: "g9/saf1"})
	if ex := h.Exemplars(); ex[1].Value != 60 {
		t.Errorf("exemplar not replaced: %+v", ex[1])
	}
}

// TestExemplarsLeavePrometheusOutputUnchanged is the byte-identity
// guard: recording exemplars must not alter the default Prometheus
// text exposition in any way.
func TestExemplarsLeavePrometheusOutputUnchanged(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "Latency.", 10, 100)
	h.Observe(50)
	var before strings.Builder
	if err := r.WritePrometheus(&before); err != nil {
		t.Fatal(err)
	}
	h.SetExemplar(50, Label{Key: "fault", Val: "g17/saf0"})
	var after strings.Builder
	if err := r.WritePrometheus(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatalf("Prometheus output changed after SetExemplar:\nbefore:\n%s\nafter:\n%s", before.String(), after.String())
	}
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("reqs_total", "Total requests.")
	reqs.Add(2)
	g := r.Gauge("depth", "Queue depth.")
	g.Set(4)
	h := r.Histogram("lat_ns", "Latency.", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.SetExemplar(50, Label{Key: "fault", Val: "g17/saf0"})
	h.Observe(500)
	h.SetExemplar(500, Label{Key: "span", Val: "00000000deadbeef"})

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP reqs Total requests.
# TYPE reqs counter
reqs_total 2
# HELP depth Queue depth.
# TYPE depth gauge
depth 4
# HELP lat_ns Latency.
# TYPE lat_ns histogram
lat_ns_bucket{le="10"} 1
lat_ns_bucket{le="100"} 2 # {fault="g17/saf0"} 50
lat_ns_bucket{le="+Inf"} 3 # {span="00000000deadbeef"} 500
lat_ns_sum 555
lat_ns_count 3
# EOF
`
	if got := sb.String(); got != want {
		t.Errorf("OpenMetrics exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatExemplarEscaping(t *testing.T) {
	got := formatExemplar(&Exemplar{
		Value:  1500000000,
		Labels: []Label{{Key: "run", Val: `a"b\c` + "\n"}},
	}, 1e-9)
	want := ` # {run="a\"b\\c\n"} 1.5`
	if got != want {
		t.Errorf("formatExemplar = %q, want %q", got, want)
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Total requests.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := get("")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("default Content-Type = %q", ct)
	}
	if strings.Contains(body, "# EOF") {
		t.Errorf("default exposition must not carry the OpenMetrics terminator:\n%s", body)
	}

	// The exact header Prometheus sends when it prefers OpenMetrics.
	ct, body = get("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if ct != openMetricsContentType {
		t.Errorf("negotiated Content-Type = %q, want %q", ct, openMetricsContentType)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics exposition must end with # EOF:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE reqs counter\n") || !strings.Contains(body, "reqs_total 1\n") {
		t.Errorf("OpenMetrics counter family/sample naming wrong:\n%s", body)
	}

	if acceptsOpenMetrics("text/plain, */*") {
		t.Error("wildcard Accept must not switch formats")
	}
}

// TestHistogramParallelExemplarCrossCheck races exemplar writers
// against readers and the lazy slot-set creation; every loaded exemplar
// must be internally consistent (value matches its labels). Runs under
// -race via the Makefile pattern (Exemplar).
func TestHistogramParallelExemplarCrossCheck(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 10)...)
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 5000; i++ {
				v := int64(i % 700)
				h.Observe(v)
				h.SetExemplar(v, Label{Key: "i", Val: itoa(v)})
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			for _, ex := range h.Exemplars() {
				if ex == nil {
					continue
				}
				if len(ex.Labels) != 1 || ex.Labels[0].Val != itoa(ex.Value) {
					t.Errorf("torn exemplar: value %d labels %+v", ex.Value, ex.Labels)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestFormatFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.NaN():     "NaN",
		math.Inf(+1):   "+Inf",
		math.Inf(-1):   "-Inf",
		1.5:            "1.5",
		0:              "0",
		-2:             "-2",
		1e21:           "1e+21",
		0.000001234375: "1.234375e-06",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestDuplicateRegistrationNamesMetric(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("duplicate registration did not panic with a message")
		}
		if !strings.Contains(msg, `"dup_total"`) {
			t.Errorf("duplicate panic %q does not name the colliding metric", msg)
		}
	}()
	r.Counter("dup_total", "second")
}
