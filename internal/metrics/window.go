package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Window is a rolling-window aggregator: a ring of fixed-interval
// buckets, each holding a small fixed-bound histogram, merged at read
// time into rates and quantile estimates over the most recent span
// (typically the last minute and the last five). It answers the
// question cumulative histograms cannot: "did the last minute get
// slow?".
//
// Observation is lock-free — bucket selection, a handful of atomic
// adds, and min/max CAS loops, exactly like Histogram — so Windows are
// safe under concurrent writers and scrapers. Bucket rotation (zeroing
// a slot whose interval has passed) serializes on a mutex taken only
// once per interval per slot. A writer descheduled across a rotation
// can land one observation in the adjacent interval or lose it to the
// reset; the error is bounded by one observation per rotation, the same
// torn-read tolerance the scrape-safe histograms accept.
type Window struct {
	interval int64 // bucket width in nanoseconds
	bounds   []int64
	slots    []windowSlot
	// now is the monotonic-enough clock, injectable for tests.
	now func() int64
	mu  sync.Mutex // serializes slot rotation only
}

// windowSlot is one ring bucket. epoch is the absolute interval number
// (now / interval) the slot currently accumulates; a slot whose epoch
// trails the current interval is stale and rotates before reuse.
type windowSlot struct {
	epoch  atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
	counts []atomic.Int64
}

// NewWindow builds a rolling window of span covered by fixed buckets of
// the given interval, with histogram bounds for quantile estimation
// (same semantics as NewHistogram). One extra slot keeps the full span
// covered by complete buckets even while the current one fills.
func NewWindow(interval, span time.Duration, bounds ...int64) *Window {
	if interval <= 0 || span < interval {
		panic(fmt.Sprintf("metrics: window needs 0 < interval <= span, got %v/%v", interval, span))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: window bounds not increasing: %v", bounds))
		}
	}
	n := int(span/interval) + 1
	w := &Window{
		interval: int64(interval),
		bounds:   append([]int64(nil), bounds...),
		slots:    make([]windowSlot, n),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		w.slots[i].min.Store(maxInt64Bound)
		w.slots[i].max.Store(-maxInt64Bound - 1)
		w.slots[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return w
}

// Observe records one value into the current interval's bucket.
func (w *Window) Observe(v int64) {
	e := w.now() / w.interval
	s := &w.slots[int(e%int64(len(w.slots)))]
	if s.epoch.Load() != e {
		w.rotate(s, e)
	}
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.min.Load()
		if v >= cur || s.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// rotate resets a stale slot for interval e. Double-checked under the
// mutex so concurrent writers reset each slot once per interval.
func (w *Window) rotate(s *windowSlot, e int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s.epoch.Load() == e {
		return
	}
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.count.Store(0)
	s.sum.Store(0)
	s.min.Store(maxInt64Bound)
	s.max.Store(-maxInt64Bound - 1)
	s.epoch.Store(e)
}

// Stats merges every bucket covering the last span into one Snapshot
// (count, sum, quantile-capable buckets). The current partial interval
// is included, so a burst shows up immediately; rates computed against
// the nominal span therefore understate slightly at the start of an
// interval, which is the usual rolling-window tradeoff.
func (w *Window) Stats(span time.Duration) Snapshot {
	need := int64(span) / w.interval
	if need < 1 {
		need = 1
	}
	if need > int64(len(w.slots)) {
		need = int64(len(w.slots))
	}
	cur := w.now() / w.interval
	snap := Snapshot{}
	counts := make([]int64, len(w.bounds)+1)
	first := true
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < 0 || e > cur || e <= cur-need {
			continue
		}
		c := s.count.Load()
		if c == 0 {
			continue
		}
		snap.Count += c
		snap.Sum += s.sum.Load()
		if mn := s.min.Load(); first || mn < snap.Min {
			snap.Min = mn
		}
		if mx := s.max.Load(); first || mx > snap.Max {
			snap.Max = mx
		}
		first = false
		for j := range counts {
			counts[j] += s.counts[j].Load()
		}
	}
	if snap.Count > 0 {
		snap.Mean = float64(snap.Sum) / float64(snap.Count)
	}
	snap.Buckets = make([]Bucket, len(counts))
	for j := range counts {
		le := int64(maxInt64Bound)
		if j < len(w.bounds) {
			le = w.bounds[j]
		}
		snap.Buckets[j] = Bucket{Le: le, Count: counts[j]}
	}
	return snap
}

// maxInt64Bound mirrors the Histogram overflow-bucket sentinel.
const maxInt64Bound = int64(^uint64(0) >> 1)

// Rate returns the per-second observation rate over the last span.
func (w *Window) Rate(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(w.Stats(span).Count) / span.Seconds()
}

// RegisterWindow exposes the standard rolling series for w under name:
// per-second observation rates over the last 1m and 5m, and p50/p95/p99
// quantile estimates over both horizons. scale multiplies the quantile
// values (pass 1e-9 for nanosecond observations exposed as seconds),
// matching HistogramFunc. All series are gauges — rolling-window values
// go down when load does.
func RegisterWindow(r *Registry, name, help string, scale float64, w *Window) {
	if scale <= 0 {
		panic(fmt.Sprintf("metrics: window %q scale must be positive", name))
	}
	quant := func(span time.Duration, q float64) func() float64 {
		return func() float64 { return float64(w.Stats(span).Quantile(q)) * scale }
	}
	r.GaugeFunc(name+"_rate1m", help+" (per-second rate, last 1m).",
		func() float64 { return w.Rate(time.Minute) })
	r.GaugeFunc(name+"_rate5m", help+" (per-second rate, last 5m).",
		func() float64 { return w.Rate(5 * time.Minute) })
	r.GaugeFunc(name+"_p50_1m", help+" (p50, last 1m).", quant(time.Minute, 0.50))
	r.GaugeFunc(name+"_p95_1m", help+" (p95, last 1m).", quant(time.Minute, 0.95))
	r.GaugeFunc(name+"_p99_1m", help+" (p99, last 1m).", quant(time.Minute, 0.99))
	r.GaugeFunc(name+"_p95_5m", help+" (p95, last 5m).", quant(5*time.Minute, 0.95))
	r.GaugeFunc(name+"_p99_5m", help+" (p99, last 5m).", quant(5*time.Minute, 0.99))
}
