// Package metrics provides the lightweight instrumentation primitives
// used by the MOT pipeline: atomic counters, monotonic stage timers,
// high-water-mark gauges, and fixed-bucket histograms. Every primitive
// is safe for concurrent use, costs roughly one atomic add per
// observation, and allocates nothing after construction, so it can sit
// on the zero-allocation per-fault hot path without perturbing it.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonically increasing counter.
// The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// MaxGauge tracks the maximum value observed (a high-water mark).
// The zero value is ready to use and reports 0 until an observation.
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to n if n exceeds the current maximum.
func (g *MaxGauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// Timer accumulates wall-clock durations measured on the monotonic
// clock. The zero value is ready to use.
type Timer struct{ ns atomic.Int64 }

// Add accumulates a measured duration.
func (t *Timer) Add(d time.Duration) { t.ns.Add(int64(d)) }

// Since accumulates the monotonic time elapsed since start.
func (t *Timer) Since(start time.Time) { t.ns.Add(int64(time.Since(start))) }

// Duration returns the accumulated time.
func (t *Timer) Duration() time.Duration { return time.Duration(t.ns.Load()) }

// Histogram is a fixed-bucket histogram of int64 observations. Bucket
// bounds are set at construction and never change; observation is one
// atomic add on the matching bucket plus count/sum/min/max updates.
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
	// ex holds the per-bucket exemplar slots, allocated lazily on the
	// first SetExemplar — a histogram that never records exemplars pays
	// one nil pointer field and nothing on Observe or Snapshot.
	ex atomic.Pointer[exemplarSet]
}

// NewHistogram builds a histogram with the given strictly increasing
// bucket upper bounds. An observation v lands in the first bucket with
// v <= bound, or in the implicit overflow bucket past the last bound.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing: %v", bounds))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// ExpBounds returns n upper bounds starting at start and multiplying by
// factor: start, start*factor, ... — the usual shape for size and
// latency distributions.
func ExpBounds(start, factor int64, n int) []int64 {
	if start < 1 || factor < 2 || n < 1 {
		panic("metrics: ExpBounds needs start >= 1, factor >= 2, n >= 1")
	}
	bounds := make([]int64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		if b > math.MaxInt64/factor {
			// Saturate instead of overflowing; trailing bounds collapse
			// into the overflow bucket.
			bounds = bounds[:i+1]
			break
		}
		b *= factor
	}
	return bounds
}

// batchFlushEvery bounds how stale a HistBatch can leave its shared
// histogram: the batch auto-flushes after this many observations, so
// mid-run scrapes lag by at most one batch.
const batchFlushEvery = 512

// HistBatch is a single-goroutine accumulator feeding a shared
// Histogram. Observe is plain arithmetic — no atomics — which matters
// for per-frame observation sites that fire hundreds of thousands of
// times per run; Flush merges the accumulated buckets into the shared
// histogram in one atomic pass and empties the batch. Observe
// auto-flushes every batchFlushEvery observations. Not safe for
// concurrent use; create one per goroutine over the same Histogram.
type HistBatch struct {
	h      *Histogram
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewBatch returns an empty single-goroutine batch over h.
func (h *Histogram) NewBatch() *HistBatch {
	return &HistBatch{
		h:      h,
		counts: make([]int64, len(h.counts)),
		min:    math.MaxInt64,
		max:    math.MinInt64,
	}
}

// Observe records one value into the batch.
func (b *HistBatch) Observe(v int64) {
	h := b.h
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	b.counts[i]++
	b.count++
	b.sum += v
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	if b.count >= batchFlushEvery {
		b.Flush()
	}
}

// Flush merges the batch into the shared histogram and empties it.
func (b *HistBatch) Flush() {
	if b.count == 0 {
		return
	}
	h := b.h
	for i := range b.counts {
		if b.counts[i] != 0 {
			h.counts[i].Add(b.counts[i])
			b.counts[i] = 0
		}
	}
	h.count.Add(b.count)
	h.sum.Add(b.sum)
	for {
		cur := h.min.Load()
		if b.min >= cur || h.min.CompareAndSwap(cur, b.min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if b.max <= cur || h.max.CompareAndSwap(cur, b.max) {
			break
		}
	}
	b.count, b.sum = 0, 0
	b.min, b.max = math.MaxInt64, math.MinInt64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Label is one exemplar label: a key/value pair linking a recorded
// observation back to its origin (span ID, fault name, run ID).
type Label struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Exemplar is one example observation attached to a histogram bucket:
// the raw observed value plus the labels identifying where it came
// from. Exemplars are overwritten in place — each bucket keeps only the
// most recent one — which is exactly the OpenMetrics exposition model.
type Exemplar struct {
	Value  int64   `json:"value"`
	Labels []Label `json:"labels,omitempty"`
}

// exemplarSet holds one atomic exemplar slot per histogram bucket
// (including the overflow bucket).
type exemplarSet struct {
	slots []atomic.Pointer[Exemplar]
}

// exemplars returns the lazily allocated slot set, creating it on first
// use. Creation races resolve by CAS; the loser's allocation is dropped.
func (h *Histogram) exemplars() *exemplarSet {
	if es := h.ex.Load(); es != nil {
		return es
	}
	es := &exemplarSet{slots: make([]atomic.Pointer[Exemplar], len(h.counts))}
	if h.ex.CompareAndSwap(nil, es) {
		return es
	}
	return h.ex.Load()
}

// SetExemplar records v (which the caller has already Observed, or is
// about to) as the exemplar of the bucket v falls in. Call it only for
// the observations worth linking — e.g. span-sampled faults — so the
// unsampled hot path never pays the allocation.
func (h *Histogram) SetExemplar(v int64, labels ...Label) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exemplars().slots[i].Store(&Exemplar{Value: v, Labels: labels})
}

// Exemplars returns the current per-bucket exemplars, index-aligned
// with Snapshot().Buckets; entries are nil for buckets without one, and
// the slice is nil when the histogram never recorded any.
func (h *Histogram) Exemplars() []*Exemplar {
	es := h.ex.Load()
	if es == nil {
		return nil
	}
	out := make([]*Exemplar, len(es.slots))
	for i := range es.slots {
		out[i] = es.slots[i].Load()
	}
	return out
}

// Bucket is one bucket of a histogram snapshot: Count observations with
// value <= Le (Le is math.MaxInt64 for the overflow bucket).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram, safe to read and
// marshal while the histogram keeps observing.
type Snapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Buckets with zero
// observations are retained so bucket layouts stay comparable across
// snapshots.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.Buckets = make([]Bucket, len(h.counts))
	for i := range h.counts {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	return s
}

// Quantile returns an upper estimate of the q-quantile (0 <= q <= 1)
// from the bucket counts: the upper bound of the bucket holding the
// q-th observation, clamped to the observed min/max.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			v := b.Le
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

// String renders a one-line summary: count, mean, p50/p90, max.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p90<=%d max=%d",
		s.Count, s.Mean, s.Quantile(0.5), s.Quantile(0.9), s.Max)
}

// DurationString renders the summary with nanosecond observations shown
// as durations.
func (s Snapshot) DurationString() string {
	if s.Count == 0 {
		return "n=0"
	}
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf("n=%d mean=%s p50<=%s p90<=%s max=%s",
		s.Count, d(int64(s.Mean)), d(s.Quantile(0.5)), d(s.Quantile(0.9)), d(s.Max))
}

// FormatBounds renders bucket bounds compactly for table headers.
func FormatBounds(bounds []int64) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = fmt.Sprintf("%d", b)
	}
	return strings.Join(parts, ",")
}
