package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g MaxGauge
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g.Observe(3)
	g.Observe(1)
	g.Observe(7)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Add(3 * time.Millisecond)
	tm.Since(time.Now().Add(-time.Millisecond))
	if d := tm.Duration(); d < 4*time.Millisecond || d > time.Second {
		t.Fatalf("timer = %v, want roughly 4ms", d)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 || s.Min != 0 || s.Max != 100 || s.Sum != 120 {
		t.Fatalf("snapshot = %+v", s)
	}
	wantCounts := []int64{2, 1, 1, 1, 2} // <=1, <=2, <=4, <=8, overflow
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d (%+v)", i, b.Count, wantCounts[i], s.Buckets)
		}
	}
	if s.Buckets[len(s.Buckets)-1].Le != math.MaxInt64 {
		t.Fatal("overflow bucket bound not MaxInt64")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.05); q != 10 {
		t.Errorf("p5 = %d, want 10 (first bucket bound)", q)
	}
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %d, want clamped max 100", q)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 12)...)
	var c Counter
	var g MaxGauge
	var tm Timer
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 512))
				c.Inc()
				g.Observe(int64(w*per + i))
				tm.Add(time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if c.Load() != workers*per {
		t.Fatalf("counter = %d", c.Load())
	}
	if g.Load() != workers*per-1 {
		t.Fatalf("gauge = %d, want %d", g.Load(), workers*per-1)
	}
	if tm.Duration() != workers*per {
		t.Fatalf("timer = %d, want %d", tm.Duration(), workers*per)
	}
	var total int64
	for _, b := range h.Snapshot().Buckets {
		total += b.Count
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1, 4, 5)
	want := []int64{1, 4, 16, 64, 256}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", got, want)
		}
	}
	// Saturation: bounds must stay increasing and finite.
	sat := ExpBounds(math.MaxInt64/2, 2, 10)
	for i := 1; i < len(sat); i++ {
		if sat[i] <= sat[i-1] {
			t.Fatalf("saturated bounds not increasing: %v", sat)
		}
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	s := h.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 2 || back.Sum != 55 {
		t.Fatalf("roundtrip = %+v", back)
	}
	if s.String() == "" || s.DurationString() == "" {
		t.Fatal("empty summary strings")
	}
	if (Snapshot{}).String() != "n=0" || (Snapshot{}).DurationString() != "n=0" {
		t.Fatal("empty snapshot summary")
	}
}

func TestObserveAllocsZero(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 16)...)
	var c Counter
	var g MaxGauge
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(37)
		c.Inc()
		g.Observe(37)
	})
	if allocs != 0 {
		t.Fatalf("observation allocates: %v allocs/op", allocs)
	}
}
