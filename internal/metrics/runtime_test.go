package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeSeries(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "mot")
	// Force at least one GC cycle so the pause histogram and cumulative
	// counters are non-trivial.
	runtime.GC()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mot_go_goroutines gauge",
		"# TYPE mot_go_heap_bytes gauge",
		"# TYPE mot_go_stack_bytes gauge",
		"# TYPE mot_go_alloc_bytes_total counter",
		"# TYPE mot_go_gc_cycles_total counter",
		"# TYPE mot_go_gc_pause_seconds histogram",
		"# TYPE mot_go_sched_latency_seconds histogram",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
	series := parseExposition(t, out)
	if v := series["mot_go_goroutines"]; v < 1 {
		t.Errorf("mot_go_goroutines = %v, want >= 1", v)
	}
	if v := series["mot_go_heap_bytes"]; v <= 0 {
		t.Errorf("mot_go_heap_bytes = %v, want > 0", v)
	}
	if v := series["mot_go_gc_cycles_total"]; v < 1 {
		t.Errorf("mot_go_gc_cycles_total = %v, want >= 1 after runtime.GC", v)
	}
	checkHistogramConsistency(t, out, "mot_go_gc_pause_seconds")
	checkHistogramConsistency(t, out, "mot_go_sched_latency_seconds")
}

func TestRuntimeSnapshotBoundsIncrease(t *testing.T) {
	runtime.GC()
	c := newRuntimeCollector()
	for _, name := range []string{"/sched/pauses/total/gc:seconds", "/sched/latencies:seconds"} {
		s := c.snapshotOf(name)
		if len(s.Buckets) == 0 {
			t.Fatalf("%s: empty snapshot", name)
		}
		for i := 1; i < len(s.Buckets); i++ {
			if s.Buckets[i].Le <= s.Buckets[i-1].Le {
				t.Fatalf("%s: bounds not strictly increasing at %d: %d <= %d",
					name, i, s.Buckets[i].Le, s.Buckets[i-1].Le)
			}
		}
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != s.Count {
			t.Errorf("%s: bucket total %d != count %d", name, total, s.Count)
		}
		if s.Count > 0 && s.Min > s.Max {
			t.Errorf("%s: min %d > max %d", name, s.Min, s.Max)
		}
	}
}
