package metrics

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWindow returns a window on a settable fake clock.
func fakeWindow(t *testing.T, interval, span time.Duration, bounds ...int64) (*Window, *atomic.Int64) {
	t.Helper()
	w := NewWindow(interval, span, bounds...)
	var clock atomic.Int64
	w.now = func() int64 { return clock.Load() }
	return w, &clock
}

func TestWindowBucketsAndExpiry(t *testing.T) {
	w, clock := fakeWindow(t, 10*time.Second, 5*time.Minute, 10, 100, 1000)

	clock.Store(int64(5 * time.Second)) // interval 0
	w.Observe(5)
	w.Observe(50)
	clock.Store(int64(15 * time.Second)) // interval 1
	w.Observe(500)

	s := w.Stats(time.Minute)
	if s.Count != 3 || s.Sum != 555 {
		t.Fatalf("1m stats = count %d sum %d, want 3/555", s.Count, s.Sum)
	}
	if s.Min != 5 || s.Max != 500 {
		t.Fatalf("1m min/max = %d/%d, want 5/500", s.Min, s.Max)
	}

	// Advance so interval 0 leaves the 1m horizon while interval 1 is
	// still (just) inside it; everything stays inside 5m.
	clock.Store(int64(65 * time.Second))
	if s := w.Stats(time.Minute); s.Count != 1 || s.Sum != 500 {
		t.Fatalf("1m stats after drift = count %d sum %d, want 1/500", s.Count, s.Sum)
	}
	if s := w.Stats(5 * time.Minute); s.Count != 3 {
		t.Fatalf("5m stats after drift = count %d, want 3", s.Count)
	}

	// Advance past 5m: everything expires (slots with stale epochs are
	// skipped even before they rotate).
	clock.Store(int64(10 * time.Minute))
	if s := w.Stats(5 * time.Minute); s.Count != 0 {
		t.Fatalf("5m stats after expiry = count %d, want 0", s.Count)
	}
}

func TestWindowSlotReuseResets(t *testing.T) {
	w, clock := fakeWindow(t, time.Second, 3*time.Second, 10)
	w.Observe(1) // interval 0, slot 0
	// Exactly len(slots) intervals later the same slot is reused; its
	// old contents must not leak into the new interval.
	clock.Store(int64(len(w.slots)) * int64(time.Second))
	w.Observe(7)
	s := w.Stats(time.Second)
	if s.Count != 1 || s.Sum != 7 {
		t.Fatalf("reused slot stats = count %d sum %d, want 1/7", s.Count, s.Sum)
	}
}

func TestWindowQuantilesAndRate(t *testing.T) {
	w, clock := fakeWindow(t, 10*time.Second, 5*time.Minute, ExpBounds(1, 2, 12)...)
	clock.Store(int64(30 * time.Second))
	for i := 1; i <= 100; i++ {
		w.Observe(int64(i))
	}
	s := w.Stats(time.Minute)
	if q := s.Quantile(0.5); q < 50 || q > 64 {
		t.Errorf("p50 = %d, want within (50, 64]", q)
	}
	if q := s.Quantile(0.99); q < 99 || q > 100 {
		t.Errorf("p99 = %d, want clamped near max (got %d, max %d)", q, q, s.Max)
	}
	if r := w.Rate(time.Minute); r < 1.6 || r > 1.7 {
		t.Errorf("1m rate = %v, want 100/60s", r)
	}
}

func TestWindowRejectsBadConstruction(t *testing.T) {
	for name, f := range map[string]func(){
		"zero interval":     func() { NewWindow(0, time.Minute) },
		"span < interval":   func() { NewWindow(time.Minute, time.Second) },
		"unsorted bounds":   func() { NewWindow(time.Second, time.Minute, 5, 5) },
		"bad RegisterScale": func() { RegisterWindow(NewRegistry(), "w", "", 0, NewWindow(time.Second, time.Minute)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegisterWindowSeries(t *testing.T) {
	r := NewRegistry()
	w, clock := fakeWindow(t, 10*time.Second, 5*time.Minute, ExpBounds(1, 2, 12)...)
	clock.Store(int64(30 * time.Second))
	for i := 0; i < 600; i++ {
		w.Observe(100)
	}
	RegisterWindow(r, "mot_req_seconds", "Request latency", 1, w)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mot_req_seconds_rate1m gauge",
		"mot_req_seconds_rate1m 10",
		"mot_req_seconds_rate5m 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// All observations are 100, so every quantile clamps to the max.
	for _, q := range []string{"p50_1m", "p95_1m", "p99_1m", "p95_5m", "p99_5m"} {
		if !strings.Contains(out, "mot_req_seconds_"+q+" 100\n") {
			t.Errorf("exposition missing clamped quantile %s:\n%s", q, out)
		}
	}
}

// TestWindowParallelObserveScrapeCrossCheck hammers a window from
// concurrent writers while scraping its stats, asserting every merged
// snapshot is internally consistent (bucket total == count, sum within
// observed value range bounds). Runs under -race via the Makefile
// pattern (Window).
func TestWindowParallelObserveScrapeCrossCheck(t *testing.T) {
	w := NewWindow(50*time.Millisecond, 5*time.Second, ExpBounds(1, 2, 10)...)
	const writers, perWriter = 4, 20000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				w.Observe(int64(j%500 + 1))
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			s := w.Stats(5 * time.Second)
			var sum int64
			for _, b := range s.Buckets {
				sum += b.Count
			}
			// Bucket counts and the slot count field are separate
			// atomics, so allow the same one-observation-per-writer skew
			// the torn-scrape histogram tests allow.
			if diff := sum - s.Count; diff > writers || diff < -writers {
				t.Errorf("window snapshot torn: bucket total %d vs count %d", sum, s.Count)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	// The writers finished well inside the 5s horizon, so nothing has
	// expired: the final merged count must equal the observation count.
	s := w.Stats(5 * time.Second)
	if s.Count != writers*perWriter {
		t.Fatalf("final window count = %d, want %d", s.Count, writers*perWriter)
	}
}
