package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is a concurrency-safe settable instantaneous value (unlike
// MaxGauge it can go down). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// validName is the Prometheus metric-name charset.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// entry is one registered metric: a name, a type, and a read function.
// Exactly one of value and hist is set; exemplars is optional and only
// ever set alongside hist.
type entry struct {
	name, help string
	typ        string // "counter", "gauge", or "histogram"
	value      func() float64
	hist       func() Snapshot
	scale      float64 // multiplies histogram bounds/sum (e.g. 1e-9 for ns -> s)
	// exemplars reads the histogram's per-bucket exemplars at scrape
	// time (index-aligned with the snapshot buckets); nil histograms and
	// the Prometheus text format ignore it — only the OpenMetrics
	// exposition renders exemplars.
	exemplars func() []*Exemplar
}

// Registry maps metric names to live read functions and renders them in
// the Prometheus text exposition format. Registration takes the lock;
// exposition reads every metric through its atomic accessors, so
// scraping is safe while writers keep observing. Metric names must
// match [a-zA-Z_:][a-zA-Z0-9_:]* and be unique; violations panic at
// registration time (configuration errors, not runtime conditions).
type Registry struct {
	mu      sync.RWMutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register validates and stores one entry.
func (r *Registry) register(e *entry) {
	if !validName.MatchString(e.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", e.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", e.name))
	}
	r.byName[e.name] = e
	r.entries = append(r.entries, e)
}

// Counter creates, registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, typ: "counter",
		value: func() float64 { return float64(c.Load()) }})
	return c
}

// Gauge creates, registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, typ: "gauge",
		value: func() float64 { return float64(g.Load()) }})
	return g
}

// Timer creates, registers and returns a timer, exposed as a counter of
// accumulated seconds (the Prometheus convention for totals of time).
func (r *Registry) Timer(name, help string) *Timer {
	t := &Timer{}
	r.register(&entry{name: name, help: help, typ: "counter",
		value: func() float64 { return t.Duration().Seconds() }})
	return t
}

// CounterFunc registers a counter whose value is read from f at scrape
// time. The function must be safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	r.register(&entry{name: name, help: help, typ: "counter",
		value: func() float64 { return float64(f()) }})
}

// CounterFloatFunc registers a counter whose float value is read from f
// at scrape time — for monotonic totals in non-integer units, e.g.
// accumulated seconds. The function must be safe for concurrent calls
// and non-decreasing between them.
func (r *Registry) CounterFloatFunc(name, help string, f func() float64) {
	r.register(&entry{name: name, help: help, typ: "counter", value: f})
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time. The function must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&entry{name: name, help: help, typ: "gauge", value: f})
}

// Histogram creates, registers and returns a histogram with the given
// bucket upper bounds, exposed with cumulative Prometheus buckets (and
// its exemplars in the OpenMetrics mode).
func (r *Registry) Histogram(name, help string, bounds ...int64) *Histogram {
	h := NewHistogram(bounds...)
	r.HistogramFuncExemplars(name, help, 1, h.Snapshot, h.Exemplars)
	return h
}

// HistogramFunc registers a histogram read from f at scrape time.
// scale multiplies every bound and the sum in the exposition (pass 1e-9
// to expose nanosecond observations as seconds); f may return a
// zero-value Snapshot while the underlying histogram does not exist
// yet. The function must be safe for concurrent calls.
func (r *Registry) HistogramFunc(name, help string, scale float64, f func() Snapshot) {
	r.HistogramFuncExemplars(name, help, scale, f, nil)
}

// HistogramFuncExemplars is HistogramFunc plus an exemplar reader: ex
// (may be nil) returns the per-bucket exemplars index-aligned with f's
// snapshot buckets, rendered only by the OpenMetrics exposition.
func (r *Registry) HistogramFuncExemplars(name, help string, scale float64, f func() Snapshot, ex func() []*Exemplar) {
	if scale <= 0 {
		panic(fmt.Sprintf("metrics: histogram %q scale must be positive", name))
	}
	r.register(&entry{name: name, help: help, typ: "histogram", hist: f, scale: scale, exemplars: ex})
}

// helpEscaper applies the exposition-format HELP escaping: backslashes
// and line feeds would otherwise corrupt the line-oriented format.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// formatFloat renders a sample value the way Prometheus expects:
// shortest representation, "+Inf"/"-Inf" for infinities, and an
// explicit "NaN" (never a locale- or formatter-dependent spelling) for
// NaN so scrapers always see the exposition-format token.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), in registration order. It is
// safe to call while writers keep updating the metrics: scalar values
// are single atomic loads, and histogram consistency is enforced by
// deriving the _count sample from the cumulative bucket counts, so the
// buckets are always non-decreasing and sum to the count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.RUnlock()
	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, helpEscaper.Replace(e.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ); err != nil {
			return err
		}
		if e.hist == nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.value())); err != nil {
				return err
			}
			continue
		}
		s := e.hist()
		var cum int64
		for _, b := range s.Buckets {
			cum += b.Count
			le := math.Inf(+1)
			if b.Le != math.MaxInt64 {
				le = float64(b.Le) * e.scale
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", e.name, formatFloat(float64(s.Sum)*e.scale)); err != nil {
			return err
		}
		// cum, not s.Count: the bucket counts and the count field are
		// distinct atomics, so under concurrent writes only the bucket
		// sum is guaranteed consistent with the _bucket lines above.
		if _, err := fmt.Fprintf(w, "%s_count %d\n", e.name, cum); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return names
}

// Handler returns an http.Handler serving the exposition, for mounting
// at /metrics. The default output is the Prometheus text format
// (version 0.0.4), byte-for-byte what it always was; a client whose
// Accept header asks for application/openmetrics-text gets the
// OpenMetrics rendering instead, which additionally carries histogram
// exemplars and the # EOF terminator.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// acceptsOpenMetrics reports whether an Accept header opts into the
// OpenMetrics exposition. Plain substring matching over the media
// ranges is enough here: a client that lists the OpenMetrics type at
// all is a scraper that can parse it (Prometheus sends it first, with
// the text format as fallback), and clients that never mention it keep
// the default format untouched.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "application/openmetrics-text" {
			return true
		}
	}
	return false
}
