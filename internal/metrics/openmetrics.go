package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// openMetricsContentType is the negotiated Content-Type of the
// OpenMetrics text exposition.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// labelEscaper applies OpenMetrics label-value escaping: backslash,
// double quote, and line feed.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WriteOpenMetrics renders every registered metric in the OpenMetrics
// 1.0 text format, in registration order, ending with the mandatory
// "# EOF" terminator. It differs from WritePrometheus in three ways:
// counter metadata names the family without the "_total" suffix (the
// sample line keeps it, per the spec), histogram buckets carry their
// exemplars when one was recorded (" # {labels} value" suffixes), and
// the stream is explicitly terminated. Safe to call while writers keep
// observing, with the same torn-scrape guarantees as WritePrometheus.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.RLock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.RUnlock()
	for _, e := range entries {
		family := e.name
		if e.typ == "counter" {
			// OpenMetrics counter families drop the _total suffix in
			// metadata; samples keep the full registered name. Counters
			// registered without the suffix keep their name in both
			// places — renaming a series between negotiated formats
			// would be worse than the spec deviation.
			family = strings.TrimSuffix(e.name, "_total")
		}
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, helpEscaper.Replace(e.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, e.typ); err != nil {
			return err
		}
		if e.hist == nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.value())); err != nil {
				return err
			}
			continue
		}
		if err := writeOpenMetricsHistogram(w, e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "# EOF\n")
	return err
}

// writeOpenMetricsHistogram renders one histogram family: cumulative
// buckets with exemplar suffixes, then _sum and _count (derived from
// the bucket sum, like the Prometheus writer, so concurrent observation
// never tears count against the buckets).
func writeOpenMetricsHistogram(w io.Writer, e *entry) error {
	s := e.hist()
	var ex []*Exemplar
	if e.exemplars != nil {
		ex = e.exemplars()
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b.Count
		le := math.Inf(+1)
		if b.Le != math.MaxInt64 {
			le = float64(b.Le) * e.scale
		}
		suffix := ""
		if i < len(ex) && ex[i] != nil {
			suffix = formatExemplar(ex[i], e.scale)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", e.name, formatFloat(le), cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", e.name, formatFloat(float64(s.Sum)*e.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", e.name, cum)
	return err
}

// formatExemplar renders the OpenMetrics exemplar suffix of a bucket
// line: " # {label="value",...} scaledValue".
func formatExemplar(ex *Exemplar, scale float64) string {
	var sb strings.Builder
	sb.WriteString(" # {")
	for i, l := range ex.Labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=\"%s\"", l.Key, labelEscaper.Replace(l.Val))
	}
	sb.WriteString("} ")
	sb.WriteString(formatFloat(float64(ex.Value) * scale))
	return sb.String()
}
