// Package cache provides the bounded, LRU-evicting, cost-accounted
// store behind the service's cross-run memoization: compiled circuit
// IRs, fault-free traces and other derived artifacts are keyed by a
// content hash of their inputs and reused across runs instead of being
// rebuilt per request. The store is safe for concurrent use; every
// operation is one short critical section (eviction callbacks run
// outside the lock). Unlike the pointer-keyed per-process memo it
// replaces in the service path, the store's footprint is bounded by a
// caller-chosen cost budget, so a long-running server fed a stream of
// distinct inline netlists cannot grow without bound.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Stats is a point-in-time snapshot of a store's counters. Hits, Misses
// and Evictions are monotonic (sound to scrape as Prometheus counters);
// Bytes and Entries are instantaneous gauges.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	Entries   int64 `json:"entries"`
}

// entry is one cached value with its accounted cost.
type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// Store is a bounded LRU cache mapping keys to values, each carrying a
// caller-supplied cost (bytes for memory-bounded stores, 1 for
// count-bounded ones). When the summed cost exceeds the budget the
// least-recently-used entries are evicted. The zero value is not usable;
// construct with New.
type Store[K comparable, V any] struct {
	mu                      sync.Mutex
	budget                  int64
	bytes                   int64
	hits, misses, evictions int64
	ll                      *list.List // front = most recently used
	items                   map[K]*list.Element
	onEvict                 func(K, V)
}

// New returns a store bounded by the given positive cost budget.
// onEvict, when non-nil, is called for every entry removed by eviction
// or Remove (never while the store's lock is held, so it may call back
// into the store).
func New[K comparable, V any](budget int64, onEvict func(K, V)) *Store[K, V] {
	if budget <= 0 {
		panic("cache: budget must be positive")
	}
	return &Store[K, V]{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[K]*list.Element),
		onEvict: onEvict,
	}
}

// Get returns the value cached under key and marks it most recently
// used. Every call counts as a hit or a miss.
func (s *Store[K, V]) Get(key K) (V, bool) {
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	v := el.Value.(*entry[K, V]).val
	s.mu.Unlock()
	return v, true
}

// Add inserts (or replaces) the value under key with the given cost and
// marks it most recently used, evicting least-recently-used entries
// until the budget holds again. A non-positive cost is accounted as 1.
// A value whose cost alone exceeds the budget is refused (the store
// stays unchanged) and Add returns false.
func (s *Store[K, V]) Add(key K, val V, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	if cost > s.budget {
		return false
	}
	var evicted []*entry[K, V]
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry[K, V])
		s.bytes += cost - e.cost
		e.val, e.cost = val, cost
		s.ll.MoveToFront(el)
	} else {
		e := &entry[K, V]{key: key, val: val, cost: cost}
		s.items[key] = s.ll.PushFront(e)
		s.bytes += cost
	}
	for s.bytes > s.budget {
		back := s.ll.Back()
		e := back.Value.(*entry[K, V])
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.cost
		s.evictions++
		evicted = append(evicted, e)
	}
	s.mu.Unlock()
	if s.onEvict != nil {
		for _, e := range evicted {
			s.onEvict(e.key, e.val)
		}
	}
	return true
}

// Remove drops the entry under key, reporting whether it was present.
// onEvict is invoked for a removed entry (removal is an eviction by
// another name — the callback releases whatever the entry pinned).
func (s *Store[K, V]) Remove(key K) bool {
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	e := el.Value.(*entry[K, V])
	s.ll.Remove(el)
	delete(s.items, key)
	s.bytes -= e.cost
	s.mu.Unlock()
	if s.onEvict != nil {
		s.onEvict(e.key, e.val)
	}
	return true
}

// Len returns the number of cached entries.
func (s *Store[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Stats snapshots the store's counters.
func (s *Store[K, V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Bytes:     s.bytes,
		Entries:   int64(len(s.items)),
	}
}

// Key returns the content hash (hex SHA-256) of text — the canonical
// content-addressed key for cached artifacts derived from request
// bodies (inline netlists, vector sets).
func Key(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}
