package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s := New[string, int](10, nil)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store reported a hit")
	}
	if !s.Add("a", 1, 4) || !s.Add("b", 2, 4) {
		t.Fatal("Add refused entries within budget")
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 8 || st.Entries != 2 {
		t.Fatalf("stats after two adds: %+v", st)
	}
	// Replacing a key adjusts the accounted cost, not the entry count.
	s.Add("a", 3, 2)
	if st := s.Stats(); st.Bytes != 6 || st.Entries != 2 {
		t.Fatalf("stats after replace: %+v", st)
	}
}

func TestStoreEvictsLRU(t *testing.T) {
	var evicted []string
	s := New[string, int](3, func(k string, _ int) { evicted = append(evicted, k) })
	s.Add("a", 1, 1)
	s.Add("b", 2, 1)
	s.Add("c", 3, 1)
	s.Get("a") // refresh a: b is now the LRU entry
	s.Add("d", 4, 1)
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s missing after eviction", k)
		}
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestStoreCostEviction(t *testing.T) {
	s := New[string, string](100, nil)
	s.Add("small", "x", 30)
	s.Add("big", "y", 80) // 110 > 100: small (LRU) must go
	if _, ok := s.Get("small"); ok {
		t.Fatal("cost eviction kept the LRU entry past budget")
	}
	if st := s.Stats(); st.Bytes != 80 {
		t.Fatalf("bytes = %d, want 80", st.Bytes)
	}
	// An entry larger than the whole budget is refused outright.
	if s.Add("huge", "z", 101) {
		t.Fatal("Add accepted an entry exceeding the budget")
	}
	if _, ok := s.Get("big"); !ok {
		t.Fatal("refused Add disturbed existing entries")
	}
}

func TestStoreRemove(t *testing.T) {
	var evicted []string
	s := New[string, int](10, func(k string, _ int) { evicted = append(evicted, k) })
	s.Add("a", 1, 5)
	if !s.Remove("a") || s.Remove("a") {
		t.Fatal("Remove did not report presence correctly")
	}
	if st := s.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after remove: %+v", st)
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("onEvict calls = %v, want [a]", evicted)
	}
}

func TestStoreZeroCostClamped(t *testing.T) {
	s := New[string, int](2, nil)
	s.Add("a", 1, 0)
	s.Add("b", 2, -7)
	if st := s.Stats(); st.Bytes != 2 || st.Entries != 2 {
		t.Fatalf("stats with clamped costs: %+v", st)
	}
	s.Add("c", 3, 0)
	if st := s.Stats(); st.Bytes != 2 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after clamped-cost eviction: %+v", st)
	}
}

func TestKeyStable(t *testing.T) {
	if Key("abc") != Key("abc") {
		t.Fatal("Key is not deterministic")
	}
	if Key("abc") == Key("abd") {
		t.Fatal("Key collided on distinct inputs")
	}
	if len(Key("")) != 64 {
		t.Fatalf("Key length = %d, want 64 hex chars", len(Key("")))
	}
}

// TestStoreParallel hammers one store from many goroutines mixing gets,
// adds, removals and stat reads — the warm-hit-under-concurrent-runs
// shape motserve exercises. Run under -race (the Makefile race recipe
// covers this package); correctness here is "no race, no panic, sane
// final accounting".
func TestStoreParallel(t *testing.T) {
	var dropped sync.Map
	s := New[string, int](64, func(k string, _ int) { dropped.Store(k, true) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%96)
				if _, ok := s.Get(k); !ok {
					s.Add(k, i, int64(i%5))
				}
				if i%17 == 0 {
					s.Remove(k)
				}
				if i%29 == 0 {
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Bytes < 0 || st.Bytes > 64 {
		t.Fatalf("final bytes %d outside [0, budget]", st.Bytes)
	}
	if st.Entries != int64(s.Len()) {
		t.Fatalf("stats entries %d != Len %d", st.Entries, s.Len())
	}
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}
