package cir

import (
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
)

// TestSortFaultsByConeDeterministicPermutation checks the ordering is a
// permutation of the input, deterministic, and independent of the input
// order and of cone-cache warmth.
func TestSortFaultsByConeDeterministicPermutation(t *testing.T) {
	c := circuits.S27()
	cc := For(c)
	faults := fault.List(c)

	a := append([]fault.Fault(nil), faults...)
	SortFaultsByCone(cc, a)

	// Same multiset of faults.
	count := func(fs []fault.Fault) map[fault.Fault]int {
		m := make(map[fault.Fault]int)
		for _, f := range fs {
			m[f]++
		}
		return m
	}
	if !reflect.DeepEqual(count(a), count(faults)) {
		t.Fatal("sorted list is not a permutation of the input")
	}

	// Re-sorting a reversed copy (cone cache now fully warm) lands on
	// the identical order: warm and cold submissions agree.
	b := make([]fault.Fault, len(faults))
	for i, f := range faults {
		b[len(faults)-1-i] = f
	}
	SortFaultsByCone(cc, b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ordering depends on input order or cache warmth")
	}
}

// TestSortFaultsByConeGroupsSites checks the locality goal: the two
// polarities of every fault site end up adjacent, so the second one
// always hits the per-site cone cache.
func TestSortFaultsByConeGroupsSites(t *testing.T) {
	c := circuits.S27()
	cc := For(c)
	faults := fault.List(c)
	SortFaultsByCone(cc, faults)

	site := func(f fault.Fault) [3]int32 {
		return [3]int32{int32(f.Node), int32(f.Gate), f.Pin}
	}
	seen := make(map[[3]int32]int)
	for i, f := range faults {
		s := site(f)
		if last, ok := seen[s]; ok && i-last != 1 {
			t.Fatalf("site %v split: positions %d and %d", s, last, i)
		}
		seen[s] = i
	}

	// The sort also filled every site's cone slot, so a fresh lookup is
	// a pure cache read returning the identical snapshot.
	for i := range faults {
		if co := cc.ConeOf(&faults[i]); co != cc.ConeOf(&faults[i]) {
			t.Fatal("ConeOf not cached after SortFaultsByCone")
		}
	}
}

// TestForBoundedCache checks the compile cache's LRU bound and Drop:
// a cached circuit returns the shared CC, Drop forces a recompile, and
// overflowing the capacity evicts rather than growing without bound.
func TestForBoundedCache(t *testing.T) {
	c := circuits.S27()
	cc := For(c)
	if For(c) != cc {
		t.Fatal("For did not return the cached CC")
	}
	Drop(c)
	cc2 := For(c)
	if cc2 == cc {
		t.Fatal("For returned the dropped CC")
	}
	if cc2.NumGates() != cc.NumGates() || cc2.NumNodes() != cc.NumNodes() {
		t.Fatal("recompiled CC differs structurally")
	}

	// Push forCacheCap fresh circuits through the cache; the early ones
	// must be evicted (a later For compiles anew) instead of pinned.
	first := circuits.S27()
	ccFirst := For(first)
	for i := 0; i < forCacheCap; i++ {
		For(circuits.S27())
	}
	if For(first) == ccFirst {
		t.Fatal("compile cache retained an entry past its capacity")
	}
}

func TestCCMemSizePositive(t *testing.T) {
	c := circuits.S27()
	cc := For(c)
	base := cc.MemSize()
	if base <= 0 {
		t.Fatalf("MemSize = %d, want > 0", base)
	}
	// Filling cone snapshots grows the accounted size.
	faults := fault.List(c)
	for i := range faults {
		cc.ConeOf(&faults[i])
	}
	if grown := cc.MemSize(); grown <= base {
		t.Fatalf("MemSize after cone fills = %d, want > %d", grown, base)
	}
}
