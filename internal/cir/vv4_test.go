package cir_test

import (
	"testing"

	"repro/internal/cir"
	"repro/internal/logic"
)

// TestVV4Helpers checks the 256-lane broadcast/lane/set/not helpers on
// lanes in every one of the four words.
func TestVV4Helpers(t *testing.T) {
	for _, k := range []uint{0, 1, 63, 64, 127, 128, 200, 255} {
		for _, v := range []logic.Val{logic.Zero, logic.One, logic.X} {
			if got := cir.Broadcast4(v).Lane(k); got != v {
				t.Fatalf("Broadcast4(%v).Lane(%d) = %v", v, k, got)
			}
			var w cir.VV4
			w.SetLane(k, logic.One) // overwritten below: SetLane must clear first
			w.SetLane(k, v)
			if got := w.Lane(k); got != v {
				t.Fatalf("SetLane(%d, %v) read back %v", k, v, got)
			}
			if got := w.Not().Lane(k); got != cir.EvalOp(logic.Not, []logic.Val{v}) {
				t.Fatalf("Not of %v at lane %d = %v", v, k, got)
			}
		}
	}
	// Lanes not touched by SetLane stay X.
	var w cir.VV4
	w.SetLane(70, logic.One)
	if w.Lane(69) != logic.X || w.Lane(71) != logic.X || w.Lane(6) != logic.X {
		t.Fatal("SetLane leaked into neighbouring lanes")
	}
}

// TestEvalOpVV4MatchesScalar packs every input combination of every
// operator into 256-lane words and checks EvalOpVV4 lane-for-lane
// against the scalar EvalOp — arity 5 fills 243 of the 256 lanes, so
// every word of the fold is exercised.
func TestEvalOpVV4MatchesScalar(t *testing.T) {
	vals := []logic.Val{logic.Zero, logic.One, logic.X}
	arity := func(op logic.Op) []int {
		switch op {
		case logic.Const0, logic.Const1:
			return []int{1} // inputs ignored
		case logic.Buf, logic.Not:
			return []int{1}
		}
		return []int{2, 3, 4, 5}
	}
	for _, op := range []logic.Op{
		logic.Buf, logic.Not, logic.And, logic.Nand, logic.Or, logic.Nor,
		logic.Xor, logic.Xnor, logic.Const0, logic.Const1,
	} {
		for _, n := range arity(op) {
			combos := 1
			for i := 0; i < n; i++ {
				combos *= len(vals)
			}
			if combos > cir.Lanes4 {
				t.Fatalf("arity %d overflows the %d lanes", n, cir.Lanes4)
			}
			in := make([]cir.VV4, n)
			scalar := make([][]logic.Val, combos) // scalar[k] is lane k's input row
			for k := 0; k < combos; k++ {
				row := make([]logic.Val, n)
				rem := k
				for j := 0; j < n; j++ {
					row[j] = vals[rem%len(vals)]
					rem /= len(vals)
					in[j].SetLane(uint(k), row[j])
				}
				scalar[k] = row
			}
			out := cir.EvalOpVV4(op, in)
			for k := 0; k < combos; k++ {
				want := cir.EvalOp(op, scalar[k])
				if got := out.Lane(uint(k)); got != want {
					t.Errorf("%v%v lane %d: vector %v, scalar %v", op, scalar[k], k, got, want)
				}
			}
		}
	}
}
