package cir_test

import (
	"math/rand"
	"testing"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestEventEvalOpLUTMatchesLogicEval pins the packed base-3 lookup
// tables behind EvalOp to the semantics home: every operator over every
// input combination at arities 1-4 (the LUT widths) and 5 (the
// logic.Eval fallback) must agree with logic.Eval — in particular the
// base-3 index arithmetic must match logic.Eval's argument order.
func TestEventEvalOpLUTMatchesLogicEval(t *testing.T) {
	vals := []logic.Val{logic.Zero, logic.One, logic.X}
	for op := logic.Buf; op <= logic.Const1; op++ {
		for n := 1; n <= 5; n++ {
			combos := 1
			for i := 0; i < n; i++ {
				combos *= len(vals)
			}
			in := make([]logic.Val, n)
			for k := 0; k < combos; k++ {
				rem := k
				for j := range in {
					in[j] = vals[rem%len(vals)]
					rem /= len(vals)
				}
				if got, want := cir.EvalOp(op, in), logic.Eval(op, in); got != want {
					t.Fatalf("EvalOp(%v, %v) = %v, logic.Eval = %v", op, in, got, want)
				}
			}
		}
	}
}

// TestEventFullSchedShape checks the whole-circuit schedule built at
// Compile: ascending occupied levels, bucket capacities equal to the
// per-level gate counts, and total capacity equal to the gate count.
func TestEventFullSchedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		c, err := randomCircuit(rng, 3, 4, 10+rng.Intn(30))
		if err != nil {
			continue
		}
		cc := cir.For(c)
		s := cc.FullSched()
		if s.NumGates() != cc.NumGates() {
			t.Fatalf("trial %d: FullSched capacity %d, circuit has %d gates", trial, s.NumGates(), cc.NumGates())
		}
		if len(s.Off) != len(s.Levels)+1 || s.Off[0] != 0 {
			t.Fatalf("trial %d: malformed offsets %v for levels %v", trial, s.Off, s.Levels)
		}
		for k, l := range s.Levels {
			if k > 0 && l <= s.Levels[k-1] {
				t.Fatalf("trial %d: levels not ascending: %v", trial, s.Levels)
			}
			want := cc.LevelStart[l+1] - cc.LevelStart[l]
			if got := s.Off[k+1] - s.Off[k]; got != want {
				t.Fatalf("trial %d: level %d bucket capacity %d, want %d", trial, l, got, want)
			}
		}
	}
}

// TestEventEvalMatchesEvalFrame is the evaluator-level property test:
// seeding an EventEval with the input/state lines that changed between
// two frames and draining must reproduce a dense re-evaluation exactly,
// with Touched listing precisely the divergent nodes. Several frames
// run on one evaluator so the epoch machinery (no per-frame clears) is
// exercised across frames with different seed sets.
func TestEventEvalMatchesEvalFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		c, err := randomCircuit(rng, 3, 4, 10+rng.Intn(30))
		if err != nil {
			continue
		}
		cc := cir.For(c)
		ev := cc.NewEvaluator()
		eev := cc.NewEventEval()

		pi := randomVals(rng, cc.NumInputs())
		ps := randomVals(rng, cc.NumFFs())
		base := make([]logic.Val, cc.NumNodes())
		ev.EvalFrame(pi, ps, &cir.NoFault, base)

		for frame := 0; frame < 6; frame++ {
			pi2 := append([]logic.Val(nil), pi...)
			ps2 := append([]logic.Val(nil), ps...)
			for i := range pi2 {
				if rng.Intn(3) == 0 {
					pi2[i] = logic.Val(rng.Intn(3))
				}
			}
			for i := range ps2 {
				if rng.Intn(3) == 0 {
					ps2[i] = logic.Val(rng.Intn(3))
				}
			}
			want := make([]logic.Val, cc.NumNodes())
			ev.EvalFrame(pi2, ps2, &cir.NoFault, want)

			eev.BeginFrame(base, cc.FullSched())
			for i, id := range cc.Inputs {
				eev.Set(id, pi2[i])
			}
			for i, q := range cc.FFQ {
				eev.Set(q, ps2[i])
			}
			eev.Drain(&cir.NoFault)

			for n := 0; n < cc.NumNodes(); n++ {
				if got := eev.Read(netlist.NodeID(n)); got != want[n] {
					t.Fatalf("trial %d frame %d: node %s event=%v dense=%v",
						trial, frame, c.NodeName(netlist.NodeID(n)), got, want[n])
				}
			}
			got := append([]logic.Val(nil), base...)
			eev.MaterializeInto(got)
			for n := range want {
				if got[n] != want[n] {
					t.Fatalf("trial %d frame %d: materialized node %d = %v, want %v", trial, frame, n, got[n], want[n])
				}
			}
			seen := make(map[netlist.NodeID]bool)
			for _, n := range eev.Touched() {
				if seen[n] {
					t.Fatalf("trial %d frame %d: node %d touched twice", trial, frame, n)
				}
				seen[n] = true
				if want[n] == base[n] {
					t.Fatalf("trial %d frame %d: node %d touched but not divergent", trial, frame, n)
				}
			}
			for n := range want {
				if want[n] != base[n] && !seen[netlist.NodeID(n)] {
					t.Fatalf("trial %d frame %d: divergent node %d missing from Touched", trial, frame, n)
				}
			}
		}
	}
}

// TestEventEvalSchedRebind drains one evaluator alternately against a
// fault cone schedule and the full schedule: bindSched must resize the
// bucket storage and refresh the level map without leaking state from
// the previous schedule.
func TestEventEvalSchedRebind(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		c, err := randomCircuit(rng, 3, 4, 12+rng.Intn(24))
		if err != nil {
			continue
		}
		cc := cir.For(c)
		ev := cc.NewEvaluator()
		eev := cc.NewEventEval()
		faults := fault.List(c)
		f := faults[rng.Intn(len(faults))]
		cone := cc.ConeOf(&f)
		if cone.Sched().NumGates() == 0 {
			continue
		}

		pi := randomVals(rng, cc.NumInputs())
		ps := randomVals(rng, cc.NumFFs())
		base := make([]logic.Val, cc.NumNodes())
		ev.EvalFrame(pi, ps, &cir.NoFault, base)

		for frame := 0; frame < 4; frame++ {
			// Odd frames: full-schedule perturbation of one input.
			// Even frames: cone-schedule faulty frame against the same base.
			if frame%2 == 1 {
				pi2 := append([]logic.Val(nil), pi...)
				k := rng.Intn(len(pi2))
				pi2[k] = logic.Val(rng.Intn(3))
				want := make([]logic.Val, cc.NumNodes())
				ev.EvalFrame(pi2, ps, &cir.NoFault, want)
				eev.BeginFrame(base, cc.FullSched())
				eev.Set(cc.Inputs[k], pi2[k])
				eev.Drain(&cir.NoFault)
				for n := range want {
					if got := eev.Read(netlist.NodeID(n)); got != want[n] {
						t.Fatalf("trial %d frame %d (full): node %d event=%v dense=%v", trial, frame, n, got, want[n])
					}
				}
				continue
			}
			want := make([]logic.Val, cc.NumNodes())
			ev.EvalFrame(pi, ps, &f, want)
			eev.BeginFrame(base, cone.Sched())
			if f.IsStem() {
				if v, ok := f.StuckNode(f.Node); ok {
					eev.Set(f.Node, v)
				}
			} else {
				eev.Enqueue(f.Gate)
			}
			eev.Drain(&f)
			// Only cone nodes can diverge; the drain must reproduce the
			// dense faulty frame on every node.
			for n := range want {
				if got := eev.Read(netlist.NodeID(n)); got != want[n] {
					t.Fatalf("trial %d frame %d (cone, fault %s): node %s event=%v dense=%v",
						trial, frame, f.Name(c), c.NodeName(netlist.NodeID(n)), got, want[n])
				}
			}
		}
	}
}
