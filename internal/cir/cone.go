package cir

// Per-fault active cones: the sequential fanout closure of a fault
// site. Only nodes in this closure can ever differ from the fault-free
// machine, so faulty-frame simulation needs to visit only the cone's
// gates, seed present-state differences only at the cone's flip-flops,
// and check detection only at the cone's outputs.
//
// The closure generalizes netlist.FanoutCone across time frames: the
// combinational fanout of the fault site is closed over flip-flop
// crossings (a next-state (D) node in the cone makes the flip-flop's
// present-state (Q) node differ in the NEXT frame, whose combinational
// fanout then joins the cone), iterated to a fixpoint. For a branch
// fault the cone starts at the reading gate; the stem node itself is
// unaffected.

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Cone is the reusable result of FillCone. The exported slices are
// views into storage recycled by the next FillCone call on the same
// Cone; a Cone is not safe for concurrent use (the CC it is filled
// from is). The cone depends only on the fault site (node, or reading
// gate for a branch fault), never on the stuck polarity.
type Cone struct {
	// Gates lists the cone's gates in discovery order (unordered); use
	// InGate for membership tests.
	Gates []netlist.GateID
	// FFs lists (ascending) the indices of flip-flops whose Q node is in
	// the cone: exactly the state variables whose faulty value can
	// differ from the fault-free value.
	FFs []int32
	// Outs lists (ascending) the positions in CC.Outputs of the primary
	// outputs in the cone: the only outputs where a detection can occur.
	Outs []int32

	nodes  []netlist.NodeID // marked nodes, for sparse clearing
	inNode []bool
	inGate []bool
	stack  []netlist.NodeID

	// sched is the cone's level-bucketed event schedule (see event.go):
	// the region descriptor the event-driven evaluator drains when this
	// cone is active. lvlCount is the zeroed per-level scratch buildSched
	// uses; snapshots carry only sched.
	sched    Sched
	lvlCount []int32
}

// Sched returns the cone's event schedule. The pointer is stable for
// the cone's lifetime, so evaluators can memoize per-schedule state by
// identity.
func (co *Cone) Sched() *Sched { return &co.sched }

// NewCone returns an empty cone sized for the circuit.
func (cc *CC) NewCone() *Cone {
	return &Cone{
		inNode:   make([]bool, cc.NumNodes()),
		inGate:   make([]bool, cc.NumGates()),
		lvlCount: make([]int32, cc.MaxLevel+2),
	}
}

// emptyCone is the shared cone of a fault with no site (NoFault).
var emptyCone = &Cone{}

// snapshot returns a compact immutable copy of the cone: the three
// lists trimmed to exact size, without the membership marker arrays
// (InNode/InGate are not supported on snapshots — they exist for the
// fillable scratch cones tests inspect).
func (co *Cone) snapshot() *Cone {
	return &Cone{
		Gates: append([]netlist.GateID(nil), co.Gates...),
		FFs:   append([]int32(nil), co.FFs...),
		Outs:  append([]int32(nil), co.Outs...),
		sched: Sched{
			Levels: append([]int32(nil), co.sched.Levels...),
			Off:    append([]int32(nil), co.sched.Off...),
		},
	}
}

// memSize estimates a cone snapshot's resident bytes for cache
// accounting; a nil cone (an unfilled slot) costs nothing.
func (co *Cone) memSize() int64 {
	if co == nil {
		return 0
	}
	return int64(len(co.Gates))*int64(unsafe.Sizeof(netlist.GateID(0))) +
		int64(len(co.FFs)+len(co.Outs)+len(co.lvlCount))*4 +
		int64(len(co.nodes)+len(co.stack))*int64(unsafe.Sizeof(netlist.NodeID(0))) +
		int64(len(co.inNode)+len(co.inGate)) +
		co.sched.memSize()
}

// ConeOf returns the active cone of f's site, computed at most once per
// site per compiled circuit and shared (immutably) thereafter. Lookups
// are allocation-free: sites index dense per-node/per-gate slot arrays.
// Fault-list passes repeated per test sequence (fault dropping
// re-simulates every remaining fault against each new sequence) hit the
// cache instead of re-running the closure.
func (cc *CC) ConeOf(f *fault.Fault) *Cone {
	var slot *atomic.Pointer[Cone]
	switch {
	case f.Node == netlist.NoNode:
		return emptyCone
	case f.IsStem():
		slot = &cc.conesNode[f.Node]
	default:
		slot = &cc.conesGate[f.Gate]
	}
	if co := slot.Load(); co != nil {
		return co
	}
	cc.coneMu.Lock()
	defer cc.coneMu.Unlock()
	if co := slot.Load(); co != nil {
		return co
	}
	if cc.coneScratch == nil {
		cc.coneScratch = cc.NewCone()
	}
	cc.FillCone(f, cc.coneScratch)
	co := cc.coneScratch.snapshot()
	slot.Store(co)
	return co
}

// Size returns the number of gates in the cone.
func (co *Cone) Size() int { return len(co.Gates) }

// InNode reports whether node n is in the cone.
func (co *Cone) InNode(n netlist.NodeID) bool { return co.inNode[n] }

// InGate reports whether gate g is in the cone.
func (co *Cone) InGate(g netlist.GateID) bool { return co.inGate[g] }

// FillCone computes the sequential fanout closure of fault f's site
// into co, reusing co's storage. A fault with no site (f.Node ==
// netlist.NoNode, i.e. NoFault) yields an empty cone.
func (cc *CC) FillCone(f *fault.Fault, co *Cone) {
	for _, n := range co.nodes {
		co.inNode[n] = false
	}
	for _, g := range co.Gates {
		co.inGate[g] = false
	}
	co.nodes = co.nodes[:0]
	co.Gates = co.Gates[:0]
	co.FFs = co.FFs[:0]
	co.Outs = co.Outs[:0]
	co.stack = co.stack[:0]
	co.sched.Levels = co.sched.Levels[:0]
	co.sched.Off = co.sched.Off[:0]
	if f.Node == netlist.NoNode {
		return
	}
	if f.IsStem() {
		cc.coneAddNode(co, f.Node)
	} else {
		// Branch fault: only the reading gate sees the stuck value; the
		// stem node and its other readers are unaffected.
		cc.coneAddGate(co, f.Gate)
	}
	for len(co.stack) > 0 {
		n := co.stack[len(co.stack)-1]
		co.stack = co.stack[:len(co.stack)-1]
		for k := cc.FanoutStart[n]; k < cc.FanoutStart[n+1]; k++ {
			cc.coneAddGate(co, cc.FanoutGate[k])
		}
		if i := cc.DOf[n]; i >= 0 {
			// Sequential crossing: a differing D value makes the Q node
			// differ in the next frame.
			cc.coneAddNode(co, cc.FFQ[i])
		}
	}
	// Collect the FF and output lists by filtered scans of the compiled
	// index maps: FFQ and Outputs are in declaration order, so the lists
	// come out ascending with no sort call (and none of sort.Slice's
	// per-call allocations). Gates stays in discovery order — nothing
	// iterates it positionally; evaluation is driven by the level queues.
	for i, q := range cc.FFQ {
		if co.inNode[q] {
			co.FFs = append(co.FFs, int32(i))
		}
	}
	for j, id := range cc.Outputs {
		if co.inNode[id] {
			co.Outs = append(co.Outs, int32(j))
		}
	}
	// Level-bucket the cone's gates into its event schedule.
	if len(co.lvlCount) < int(cc.MaxLevel)+2 {
		co.lvlCount = make([]int32, cc.MaxLevel+2)
	}
	cc.buildSched(co.Gates, co.lvlCount, &co.sched)
}

// coneAddNode marks a node and queues its fanout for traversal; the
// node's flip-flop/output roles are collected by the post-traversal
// scans in FillCone.
func (cc *CC) coneAddNode(co *Cone, n netlist.NodeID) {
	if co.inNode[n] {
		return
	}
	co.inNode[n] = true
	co.nodes = append(co.nodes, n)
	co.stack = append(co.stack, n)
}

// coneAddGate marks a gate and adds its output node.
func (cc *CC) coneAddGate(co *Cone, g netlist.GateID) {
	if co.inGate[g] {
		return
	}
	co.inGate[g] = true
	co.Gates = append(co.Gates, g)
	cc.coneAddNode(co, cc.GOut[g])
}
