package cir_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// randomCircuit builds a random sequential circuit for property tests.
func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not && op != logic.Buf {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 3 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

// randomVals fills a slice with uniform three-valued samples.
func randomVals(rng *rand.Rand, n int) []logic.Val {
	vals := []logic.Val{logic.Zero, logic.One, logic.X}
	out := make([]logic.Val, n)
	for i := range out {
		out[i] = vals[rng.Intn(len(vals))]
	}
	return out
}

// TestCompileMatchesNetlist cross-checks every compiled array against the
// pointer-chasing netlist model it flattens.
func TestCompileMatchesNetlist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		c, err := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(5), 8+rng.Intn(40))
		if err != nil {
			continue
		}
		cc := cir.Compile(c)
		if cc.NumGates() != c.NumGates() || cc.NumNodes() != c.NumNodes() ||
			cc.NumInputs() != c.NumInputs() || cc.NumOutputs() != c.NumOutputs() ||
			cc.NumFFs() != c.NumFFs() {
			t.Fatalf("counts: compiled (%d g, %d n, %d i, %d o, %d ff), netlist (%d g, %d n, %d i, %d o, %d ff)",
				cc.NumGates(), cc.NumNodes(), cc.NumInputs(), cc.NumOutputs(), cc.NumFFs(),
				c.NumGates(), c.NumNodes(), c.NumInputs(), c.NumOutputs(), c.NumFFs())
		}
		maxFanin := 0
		for gi := range c.Gates {
			g := &c.Gates[gi]
			id := netlist.GateID(gi)
			if cc.Ops[gi] != g.Op || cc.GOut[gi] != g.Out || cc.Level[gi] != g.Level {
				t.Fatalf("gate %d: op/out/level mismatch", gi)
			}
			fanin := cc.FaninOf(id)
			if len(fanin) != len(g.In) {
				t.Fatalf("gate %d: fanin width %d, want %d", gi, len(fanin), len(g.In))
			}
			for k := range fanin {
				if fanin[k] != g.In[k] {
					t.Fatalf("gate %d pin %d: fanin %d, want %d", gi, k, fanin[k], g.In[k])
				}
			}
			if len(g.In) > maxFanin {
				maxFanin = len(g.In)
			}
		}
		if cc.MaxFanin != maxFanin {
			t.Fatalf("MaxFanin = %d, want %d", cc.MaxFanin, maxFanin)
		}
		for id := range c.Nodes {
			n := &c.Nodes[id]
			if cc.Driver[id] != n.Driver || cc.FFOf[id] != n.FF || cc.DOf[id] != n.DOf {
				t.Fatalf("node %d: role maps mismatch", id)
			}
			// CSR fanout must list exactly the netlist's reader pins.
			lo, hi := cc.FanoutStart[id], cc.FanoutStart[id+1]
			if int(hi-lo) != len(n.Fanouts) {
				t.Fatalf("node %d: %d fanout pins, want %d", id, hi-lo, len(n.Fanouts))
			}
			for k := lo; k < hi; k++ {
				pin := n.Fanouts[k-lo]
				if cc.FanoutGate[k] != pin.Gate || cc.FanoutPin[k] != pin.Input {
					t.Fatalf("node %d fanout %d: (%d,%d), want (%d,%d)",
						id, k-lo, cc.FanoutGate[k], cc.FanoutPin[k], pin.Gate, pin.Input)
				}
			}
		}
		for j, id := range c.Outputs {
			if cc.OutPos[id] != int32(j) {
				t.Fatalf("output %d: OutPos = %d", j, cc.OutPos[id])
			}
		}
		for i, ff := range c.FFs {
			if cc.FFQ[i] != ff.Q || cc.FFD[i] != ff.D || cc.FFInit[i] != ff.Init {
				t.Fatalf("ff %d: Q/D/Init mismatch", i)
			}
		}
		// Level buckets must partition Order with matching levels.
		if len(cc.Order) != len(c.Order) {
			t.Fatalf("order length %d, want %d", len(cc.Order), len(c.Order))
		}
		seen := 0
		for l := int32(1); l <= cc.MaxLevel; l++ {
			for _, gi := range cc.Order[cc.LevelStart[l]:cc.LevelStart[l+1]] {
				if cc.Level[gi] != l {
					t.Fatalf("level bucket %d holds gate %d of level %d", l, gi, cc.Level[gi])
				}
				seen++
			}
		}
		if seen != len(cc.Order) {
			t.Fatalf("level buckets cover %d gates, order has %d", seen, len(cc.Order))
		}
	}
}

// goldenEvalFrame is an independent copy of the pre-refactor
// pointer-walking frame evaluator, kept here as the cross-check target
// for Evaluator.EvalFrame.
func goldenEvalFrame(c *netlist.Circuit, pi, ps []logic.Val, f *fault.Fault, vals []logic.Val) {
	for i, id := range c.Inputs {
		vals[id] = f.Observed(id, pi[i])
	}
	for i, ff := range c.FFs {
		vals[ff.Q] = f.Observed(ff.Q, ps[i])
	}
	var in []logic.Val
	for _, gi := range c.Order {
		g := &c.Gates[gi]
		if v, ok := f.StuckNode(g.Out); ok {
			vals[g.Out] = v
			continue
		}
		in = in[:0]
		for k, id := range g.In {
			in = append(in, f.SeenBy(gi, int32(k), id, vals[id]))
		}
		vals[g.Out] = logic.Eval(g.Op, in)
	}
}

// TestEvalFrameMatchesGolden checks the compiled evaluator against the
// golden pointer-walking evaluator over random circuits, frames and the
// full fault list (plus the fault-free frame).
func TestEvalFrameMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		c, err := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(5), 8+rng.Intn(40))
		if err != nil {
			continue
		}
		cc := cir.Compile(c)
		ev := cc.NewEvaluator()
		got := make([]logic.Val, c.NumNodes())
		want := make([]logic.Val, c.NumNodes())
		faults := fault.List(c)
		targets := make([]*fault.Fault, 0, len(faults)+1)
		targets = append(targets, nil)
		for i := range faults {
			targets = append(targets, &faults[i])
		}
		for _, f := range targets {
			pi := randomVals(rng, c.NumInputs())
			ps := randomVals(rng, c.NumFFs())
			ev.EvalFrame(pi, ps, f, got)
			gf := f
			if gf == nil {
				gf = &cir.NoFault
			}
			goldenEvalFrame(c, pi, ps, gf, want)
			for id := range got {
				if got[id] != want[id] {
					name := "fault-free"
					if f != nil {
						name = f.Name(c)
					}
					t.Fatalf("trial %d, %s: node %s = %v, golden %v",
						trial, name, c.NodeName(netlist.NodeID(id)), got[id], want[id])
				}
			}
		}
	}
}

// setLane writes value val into lane k of v.
func setLane(v *cir.VV, k uint, val logic.Val) {
	v.Zero &^= 1 << k
	v.One &^= 1 << k
	switch val {
	case logic.Zero:
		v.Zero |= 1 << k
	case logic.One:
		v.One |= 1 << k
	}
}

// TestEvalOpVVMatchesScalar packs every input combination of every
// operator into vector lanes and checks EvalOpVV lane-for-lane against
// the scalar EvalOp.
func TestEvalOpVVMatchesScalar(t *testing.T) {
	vals := []logic.Val{logic.Zero, logic.One, logic.X}
	arity := func(op logic.Op) []int {
		switch op {
		case logic.Const0, logic.Const1:
			return []int{1} // inputs ignored
		case logic.Buf, logic.Not:
			return []int{1}
		}
		return []int{2, 3}
	}
	for _, op := range []logic.Op{
		logic.Buf, logic.Not, logic.And, logic.Nand, logic.Or, logic.Nor,
		logic.Xor, logic.Xnor, logic.Const0, logic.Const1,
	} {
		for _, n := range arity(op) {
			combos := 1
			for i := 0; i < n; i++ {
				combos *= len(vals)
			}
			in := make([]cir.VV, n)
			scalar := make([][]logic.Val, combos) // scalar[k] is lane k's input row
			for k := 0; k < combos; k++ {
				row := make([]logic.Val, n)
				rem := k
				for j := 0; j < n; j++ {
					row[j] = vals[rem%len(vals)]
					rem /= len(vals)
					setLane(&in[j], uint(k), row[j])
				}
				scalar[k] = row
			}
			out := cir.EvalOpVV(op, in)
			for k := 0; k < combos; k++ {
				want := cir.EvalOp(op, scalar[k])
				if got := out.Lane(uint(k)); got != want {
					t.Errorf("%v%v lane %d: vector %v, scalar %v", op, scalar[k], k, got, want)
				}
			}
		}
	}
}

// bruteCone computes the sequential fanout closure of a fault site
// directly on the pointer-chasing netlist, as the reference for FillCone.
func bruteCone(c *netlist.Circuit, f fault.Fault) (gates map[netlist.GateID]bool, nodes map[netlist.NodeID]bool) {
	gates = make(map[netlist.GateID]bool)
	nodes = make(map[netlist.NodeID]bool)
	var stack []netlist.NodeID
	var addNode func(n netlist.NodeID)
	addNode = func(n netlist.NodeID) {
		if !nodes[n] {
			nodes[n] = true
			stack = append(stack, n)
		}
	}
	addGate := func(g netlist.GateID) {
		if !gates[g] {
			gates[g] = true
			addNode(c.Gates[g].Out)
		}
	}
	if f.IsStem() {
		addNode(f.Node)
	} else {
		addGate(f.Gate)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pin := range c.Nodes[n].Fanouts {
			addGate(pin.Gate)
		}
		if i := c.Nodes[n].DOf; i >= 0 {
			addNode(c.FFs[i].Q)
		}
	}
	return gates, nodes
}

// TestConeMatchesBruteForce checks FillCone's gate/FF/output sets and
// ordering invariants against the brute-force closure for every fault of
// random circuits.
func TestConeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		c, err := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(5), 8+rng.Intn(40))
		if err != nil {
			continue
		}
		cc := cir.Compile(c)
		co := cc.NewCone()
		for _, f := range fault.List(c) {
			cc.FillCone(&f, co)
			gates, nodes := bruteCone(c, f)
			if len(co.Gates) != len(gates) {
				t.Fatalf("%s: cone has %d gates, brute force %d", f.Name(c), len(co.Gates), len(gates))
			}
			for _, g := range co.Gates {
				if !gates[g] {
					t.Fatalf("%s: cone gate %d not in brute-force closure", f.Name(c), g)
				}
				if !co.InGate(g) {
					t.Fatalf("%s: InGate(%d) false for listed gate", f.Name(c), g)
				}
			}
			for n := range nodes {
				if !co.InNode(n) {
					t.Fatalf("%s: brute-force node %s not marked in cone", f.Name(c), c.NodeName(n))
				}
			}
			// FFs and Outs must be ascending (detection ordering depends
			// on Outs; Gates carries no order guarantee).
			for k := 1; k < len(co.FFs); k++ {
				if co.FFs[k-1] >= co.FFs[k] {
					t.Fatalf("%s: cone FFs not ascending", f.Name(c))
				}
			}
			for k := 1; k < len(co.Outs); k++ {
				if co.Outs[k-1] >= co.Outs[k] {
					t.Fatalf("%s: cone outputs not ascending", f.Name(c))
				}
			}
			// FF and output membership must match the node set exactly.
			wantFFs := 0
			for i, ff := range c.FFs {
				if nodes[ff.Q] {
					wantFFs++
					found := false
					for _, j := range co.FFs {
						if int(j) == i {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: flip-flop %d missing from cone FFs", f.Name(c), i)
					}
				}
			}
			if wantFFs != len(co.FFs) {
				t.Fatalf("%s: cone has %d FFs, want %d", f.Name(c), len(co.FFs), wantFFs)
			}
			wantOuts := 0
			for j, id := range c.Outputs {
				if nodes[id] {
					wantOuts++
					found := false
					for _, p := range co.Outs {
						if int(p) == j {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: output %d missing from cone outputs", f.Name(c), j)
					}
				}
			}
			if wantOuts != len(co.Outs) {
				t.Fatalf("%s: cone has %d outputs, want %d", f.Name(c), len(co.Outs), wantOuts)
			}
		}
		// NoFault yields an empty cone even after reuse.
		cc.FillCone(&cir.NoFault, co)
		if co.Size() != 0 || len(co.FFs) != 0 || len(co.Outs) != 0 {
			t.Fatalf("NoFault cone not empty: %d gates", co.Size())
		}
	}
}

// TestForCache checks that For compiles once per circuit and returns the
// shared instance thereafter.
func TestForCache(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c, err := randomCircuit(rng, 3, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	cc := cir.For(c)
	if cc2 := cir.For(c); cc2 != cc {
		t.Fatalf("For returned distinct instances %p, %p for one circuit", cc, cc2)
	}
	if cc.Net != c {
		t.Fatalf("compiled IR points at wrong netlist")
	}
}

// TestConeOfCache checks the per-site cone cache: repeated lookups
// return the identical shared snapshot, faults at one site (either
// polarity, any pin of one gate) share it, the lists match a
// FillCone-filled cone, and NoFault maps to the empty cone.
func TestConeOfCache(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		c, err := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(5), 8+rng.Intn(40))
		if err != nil {
			continue
		}
		cc := cir.Compile(c)
		scratch := cc.NewCone()
		bySite := make(map[string]*cir.Cone)
		for _, f := range fault.List(c) {
			co := cc.ConeOf(&f)
			if co2 := cc.ConeOf(&f); co2 != co {
				t.Fatalf("%s: repeated ConeOf returned distinct cones", f.Name(c))
			}
			var site string
			if f.IsStem() {
				site = "n" + c.NodeName(f.Node)
			} else {
				site = fmt.Sprintf("g%d", f.Gate)
			}
			if prev, ok := bySite[site]; ok && prev != co {
				t.Fatalf("%s: site %s got a distinct cone per fault", f.Name(c), site)
			}
			bySite[site] = co
			cc.FillCone(&f, scratch)
			if len(co.Gates) != len(scratch.Gates) ||
				!slices.Equal(co.FFs, scratch.FFs) ||
				!slices.Equal(co.Outs, scratch.Outs) {
				t.Fatalf("%s: cached cone differs from FillCone", f.Name(c))
			}
			for _, g := range co.Gates {
				if !scratch.InGate(g) {
					t.Fatalf("%s: cached cone gate %d not in FillCone set", f.Name(c), g)
				}
			}
		}
		if co := cc.ConeOf(&cir.NoFault); co.Size() != 0 || len(co.FFs) != 0 || len(co.Outs) != 0 {
			t.Fatalf("NoFault ConeOf not empty: %d gates", co.Size())
		}
	}
}
