package cir

// Per-fault resimulation regions: the sequential fanout closure of a
// fault site together with the Q nodes of a set of seed flip-flops.
//
// The bit-parallel resimulation of expanded state sequences (core,
// Section 3.4) confines its vector frame evaluation to this closure.
// The fault's active cone alone is not enough there: state expansion
// pins flip-flops outside the cone, and their values propagate to other
// next-state inputs where they can refine the sequence or expose an
// infeasibility conflict. Seeding the closure with every flip-flop the
// expansion assigned restores exactness — any flip-flop whose next-state
// (D) node lies outside the region reads only fault-free, unexpanded
// values and therefore can never refine or conflict, and any node
// outside the region evaluates to the retained fault-free value.
//
// Like Cone, a Region depends only on the sites, never on the stuck
// polarity, but unlike cones regions are not cached per fault: the seed
// set differs per expansion, so the caller keeps one Region as scratch
// and refills it per resimulation pass.

import (
	"repro/internal/fault"
	"repro/internal/netlist"
)

// Region is the reusable result of FillRegion. The exported slices are
// views into storage recycled by the next FillRegion call on the same
// Region; a Region is not safe for concurrent use (the CC it is filled
// from is).
type Region struct {
	// Gates lists the region's gates in ascending topological level:
	// evaluating them in slice order after the region's source nodes
	// (frontier, flip-flop Q loads, the stem fault node) are set yields
	// every region node value.
	Gates []netlist.GateID
	// QFFs lists (ascending) the indices of flip-flops whose Q node is
	// in the region: exactly the state variables whose lane values must
	// be loaded from the packed sequence state each frame.
	QFFs []int32
	// DFFs lists (ascending) the indices of flip-flops whose D node is
	// in the region: the only flip-flops whose next-state comparison can
	// refine a sequence or expose a conflict.
	DFFs []int32
	// Outs lists (ascending) the positions in CC.Outputs of the primary
	// outputs in the region: the only outputs where a detection can
	// occur (the region contains the fault's active cone).
	Outs []int32
	// Frontier lists the nodes outside the region that region gates
	// read: their values never diverge from the fault-free machine, so
	// one broadcast of the retained fault-free value per frame feeds
	// every region gate that reads them. Primary inputs read by region
	// gates appear here too (a fault-free input value is the pattern
	// value itself).
	Frontier []netlist.NodeID

	nodes   []netlist.NodeID // marked region nodes, for sparse clearing
	inNode  []bool
	inGate  []bool
	inFront []bool
	stack   []netlist.NodeID
	byLevel [][]netlist.GateID // level-bucket scratch for the gate sort
}

// NewRegion returns an empty region sized for the circuit.
func (cc *CC) NewRegion() *Region {
	return &Region{
		inNode:  make([]bool, cc.NumNodes()),
		inGate:  make([]bool, cc.NumGates()),
		inFront: make([]bool, cc.NumNodes()),
		byLevel: make([][]netlist.GateID, cc.MaxLevel+1),
	}
}

// InNode reports whether node n is in the region.
func (r *Region) InNode(n netlist.NodeID) bool { return r.inNode[n] }

// FillRegion computes the sequential fanout closure of fault f's site
// plus the Q nodes of the seed flip-flops into r, reusing r's storage.
// seedFFs lists flip-flop indices (duplicates are fine). A fault with
// no site contributes nothing; the closure of the seeds alone is still
// computed.
func (cc *CC) FillRegion(f *fault.Fault, seedFFs []int32, r *Region) {
	for _, n := range r.nodes {
		r.inNode[n] = false
	}
	for _, g := range r.Gates {
		r.inGate[g] = false
	}
	for _, n := range r.Frontier {
		r.inFront[n] = false
	}
	r.nodes = r.nodes[:0]
	r.Gates = r.Gates[:0]
	r.QFFs = r.QFFs[:0]
	r.DFFs = r.DFFs[:0]
	r.Outs = r.Outs[:0]
	r.Frontier = r.Frontier[:0]
	r.stack = r.stack[:0]
	if f.Node != netlist.NoNode {
		if f.IsStem() {
			cc.regionAddNode(r, f.Node)
		} else {
			// Branch fault: only the reading gate sees the stuck value.
			cc.regionAddGate(r, f.Gate)
		}
	}
	for _, j := range seedFFs {
		cc.regionAddNode(r, cc.FFQ[j])
	}
	for len(r.stack) > 0 {
		n := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for k := cc.FanoutStart[n]; k < cc.FanoutStart[n+1]; k++ {
			cc.regionAddGate(r, cc.FanoutGate[k])
		}
		if i := cc.DOf[n]; i >= 0 {
			// Sequential crossing: a refined D value makes the Q node
			// carry lane-divergent values in the next frame.
			cc.regionAddNode(r, cc.FFQ[i])
		}
	}
	// FF and output lists by filtered scans of the compiled index maps,
	// ascending with no sort (same idiom as FillCone).
	for i := range cc.FFQ {
		if r.inNode[cc.FFQ[i]] {
			r.QFFs = append(r.QFFs, int32(i))
		}
		if r.inNode[cc.FFD[i]] {
			r.DFFs = append(r.DFFs, int32(i))
		}
	}
	for j, id := range cc.Outputs {
		if r.inNode[id] {
			r.Outs = append(r.Outs, int32(j))
		}
	}
	// Frontier: nodes read by region gates that the region never writes.
	for _, g := range r.Gates {
		for k := cc.FaninStart[g]; k < cc.FaninStart[g+1]; k++ {
			n := cc.Fanin[k]
			if !r.inNode[n] && !r.inFront[n] {
				r.inFront[n] = true
				r.Frontier = append(r.Frontier, n)
			}
		}
	}
	// Sort Gates by ascending level with a bucket pass so slice-order
	// evaluation respects combinational dependencies inside the region.
	for _, g := range r.Gates {
		l := cc.Level[g]
		r.byLevel[l] = append(r.byLevel[l], g)
	}
	r.Gates = r.Gates[:0]
	for l := range r.byLevel {
		r.Gates = append(r.Gates, r.byLevel[l]...)
		r.byLevel[l] = r.byLevel[l][:0]
	}
}

// regionAddNode marks a node and queues its fanout for traversal.
func (cc *CC) regionAddNode(r *Region, n netlist.NodeID) {
	if r.inNode[n] {
		return
	}
	r.inNode[n] = true
	r.nodes = append(r.nodes, n)
	r.stack = append(r.stack, n)
}

// regionAddGate marks a gate and adds its output node.
func (cc *CC) regionAddGate(r *Region, g netlist.GateID) {
	if r.inGate[g] {
		return
	}
	r.inGate[g] = true
	r.Gates = append(r.Gates, g)
	cc.regionAddNode(r, cc.GOut[g])
}
