package cir_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
)

// TestConeParallelCrossCheck shares one compiled circuit across many
// goroutines, each with its own Evaluator and Cone, and cross-checks
// their frame values and cone contents against a serial pass. Run under
// -race it also proves a CC is safe for concurrent read-only use.
func TestConeParallelCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c, err := randomCircuit(rng, 4, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	cc := cir.For(c)
	faults := fault.List(c)
	pi := randomVals(rng, c.NumInputs())
	ps := randomVals(rng, c.NumFFs())

	// Serial reference pass.
	type ref struct {
		vals  []logic.Val
		gates int
		ffs   int
		outs  int
	}
	ev := cc.NewEvaluator()
	co := cc.NewCone()
	want := make([]ref, len(faults))
	for i := range faults {
		vals := make([]logic.Val, cc.NumNodes())
		ev.EvalFrame(pi, ps, &faults[i], vals)
		cc.FillCone(&faults[i], co)
		want[i] = ref{vals: vals, gates: len(co.Gates), ffs: len(co.FFs), outs: len(co.Outs)}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := cc.NewEvaluator()
			co := cc.NewCone()
			vals := make([]logic.Val, cc.NumNodes())
			// Stagger start points so workers touch different faults at
			// the same instant.
			for k := 0; k < len(faults); k++ {
				i := (k + w*7) % len(faults)
				ev.EvalFrame(pi, ps, &faults[i], vals)
				for id := range vals {
					if vals[id] != want[i].vals[id] {
						t.Errorf("worker %d, %s: node %d = %v, serial %v",
							w, faults[i].Name(c), id, vals[id], want[i].vals[id])
						return
					}
				}
				cc.FillCone(&faults[i], co)
				if len(co.Gates) != want[i].gates || len(co.FFs) != want[i].ffs || len(co.Outs) != want[i].outs {
					t.Errorf("worker %d, %s: cone (%d,%d,%d), serial (%d,%d,%d)",
						w, faults[i].Name(c), len(co.Gates), len(co.FFs), len(co.Outs),
						want[i].gates, want[i].ffs, want[i].outs)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
