package cir

// 256-lane bit-parallel three-valued values: the wide counterpart of VV,
// backed by [4]uint64 words so a single value carries four VV's worth of
// lanes. Pure Go word-parallel operations — each lane-wise op is four
// independent uint64 ops the compiler keeps in registers; no explicit
// SIMD. bitsim packs 255 faulty machines per word with these, and the
// core resimulation stage packs one fault's expanded state sequences.

import "repro/internal/logic"

// Lanes4 is the lane count of a VV4.
const Lanes4 = 256

// VV4 is a 256-lane three-valued vector: bit k of word k/64 of One set
// means lane k carries 1, the same bit of Zero means lane k carries 0,
// neither set means X. (Both set is invalid.)
type VV4 struct {
	Zero, One [4]uint64
}

// Broadcast4 returns the VV4 carrying v on every lane.
func Broadcast4(v logic.Val) VV4 {
	const all = ^uint64(0)
	switch v {
	case logic.Zero:
		return VV4{Zero: [4]uint64{all, all, all, all}}
	case logic.One:
		return VV4{One: [4]uint64{all, all, all, all}}
	}
	return VV4{}
}

// Lane extracts the value of lane k.
func (v VV4) Lane(k uint) logic.Val {
	w, b := k>>6, k&63
	switch {
	case v.One[w]>>b&1 == 1:
		return logic.One
	case v.Zero[w]>>b&1 == 1:
		return logic.Zero
	}
	return logic.X
}

// SetLane overwrites lane k with val, clearing it first.
func (v *VV4) SetLane(k uint, val logic.Val) {
	w, b := k>>6, uint64(1)<<(k&63)
	v.One[w] &^= b
	v.Zero[w] &^= b
	switch val {
	case logic.One:
		v.One[w] |= b
	case logic.Zero:
		v.Zero[w] |= b
	}
}

// Not complements all lanes.
func (v VV4) Not() VV4 { return VV4{Zero: v.One, One: v.Zero} }

// VV4Fold streams a gate's input vectors through the 256-lane fold,
// mirroring VVFold: the accumulator starts at the fold's identity
// element so Add has no first-input special case.
type VV4Fold struct {
	op   logic.Op
	kind foldKind
	acc  VV4
}

// StartVV4 begins a fold under op.
func StartVV4(op logic.Op) VV4Fold {
	switch op {
	case logic.And, logic.Nand:
		return VV4Fold{op: op, kind: foldAnd, acc: Broadcast4(logic.One)}
	case logic.Xor, logic.Xnor:
		return VV4Fold{op: op, kind: foldXor, acc: Broadcast4(logic.Zero)}
	}
	return VV4Fold{op: op, kind: foldOr, acc: Broadcast4(logic.Zero)}
}

// Add folds the next input vector into the accumulator.
func (f *VV4Fold) Add(v VV4) {
	switch f.kind {
	case foldAnd:
		for w := 0; w < 4; w++ {
			f.acc.One[w] &= v.One[w]
			f.acc.Zero[w] |= v.Zero[w]
		}
	case foldOr:
		for w := 0; w < 4; w++ {
			f.acc.One[w] |= v.One[w]
			f.acc.Zero[w] &= v.Zero[w]
		}
	default:
		a := f.acc
		for w := 0; w < 4; w++ {
			f.acc.One[w] = a.One[w]&v.Zero[w] | a.Zero[w]&v.One[w]
			f.acc.Zero[w] = a.One[w]&v.One[w] | a.Zero[w]&v.Zero[w]
		}
	}
}

// Result completes the fold, applying the operator's output inversion.
func (f *VV4Fold) Result() VV4 {
	switch f.op {
	case logic.Const0:
		return Broadcast4(logic.Zero)
	case logic.Const1:
		return Broadcast4(logic.One)
	}
	if f.op.Inverting() {
		return f.acc.Not()
	}
	return f.acc
}

// EvalOpVV4 folds the gathered input vectors under op — the 256-lane
// counterpart of EvalOp, lane-for-lane equivalent to logic.Eval.
func EvalOpVV4(op logic.Op, in []VV4) VV4 {
	f := StartVV4(op)
	for _, v := range in {
		f.Add(v)
	}
	return f.Result()
}
