package cir

// Cone-locality fault ordering. The per-site cone cache (ConeOf) and
// the delta-simulation scratch both reward temporal locality: when
// consecutive faults share a site, or at least overlapping cones, the
// second fault finds the cone snapshot warm (the most recent lookups
// sit at the front of the path to the atomic slot) and its faulty-frame
// evaluation touches `vals` cache lines the previous fault just wrote.
// SortFaultsByCone reorders a fault list to exploit this: faults on the
// same site become adjacent, and sites are grouped by the shape of
// their cones (first observable output, first state variable, cone
// size) so neighbouring groups overlap where the circuit allows it.
//
// The ordering is a pure, deterministic function of the compiled
// circuit and the input list — it does not depend on cache warmth — so
// a warm rerun of the same request orders its faults identically to the
// cold run and results stay byte-identical.

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// coneOrderKey is the sort key of one fault: the shape of its active
// cone, then the site, then the stuck polarity for total determinism.
type coneOrderKey struct {
	out, ff int32 // first cone output / FF index; MaxInt32 when none
	size    int32 // cone gate count
	node    netlist.NodeID
	gate    netlist.GateID
	pin     int32
	stuck   uint8
}

func (a coneOrderKey) less(b coneOrderKey) bool {
	switch {
	case a.out != b.out:
		return a.out < b.out
	case a.ff != b.ff:
		return a.ff < b.ff
	case a.size != b.size:
		return a.size < b.size
	case a.node != b.node:
		return a.node < b.node
	case a.gate != b.gate:
		return a.gate < b.gate
	case a.pin != b.pin:
		return a.pin < b.pin
	}
	return a.stuck < b.stuck
}

const noCone = int32(1<<31 - 1)

// SortFaultsByCone reorders faults in place so faults with identical or
// overlapping active cones are adjacent (see the package comment
// above). As a side effect every fault's cone snapshot is computed and
// cached on cc, so a subsequent simulation of the list — this run's or
// any later run sharing the compiled circuit — performs no cone
// traversals at all.
func SortFaultsByCone(cc *CC, faults []fault.Fault) {
	keys := make([]coneOrderKey, len(faults))
	for i := range faults {
		co := cc.ConeOf(&faults[i])
		k := coneOrderKey{
			out:   noCone,
			ff:    noCone,
			size:  int32(co.Size()),
			node:  faults[i].Node,
			gate:  faults[i].Gate,
			pin:   faults[i].Pin,
			stuck: uint8(faults[i].Stuck),
		}
		if len(co.Outs) > 0 {
			k.out = co.Outs[0]
		}
		if len(co.FFs) > 0 {
			k.ff = co.FFs[0]
		}
		keys[i] = k
	}
	idx := make([]int, len(faults))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]].less(keys[idx[b]]) })
	sorted := make([]fault.Fault, len(faults))
	for i, j := range idx {
		sorted[i] = faults[j]
	}
	copy(faults, sorted)
}
