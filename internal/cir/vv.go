package cir

// 64-lane bit-parallel three-valued values and the bit-parallel half of
// the gate semantics (EvalOpVV), shared with the scalar half (EvalOp)
// so both evaluation domains live in this package.

import "repro/internal/logic"

// VV is a 64-lane three-valued vector: bit k of One set means lane k
// carries 1, bit k of Zero set means lane k carries 0, neither bit set
// means lane k carries X. (Both set is invalid.)
type VV struct {
	Zero, One uint64
}

// Broadcast returns the VV carrying v on every lane.
func Broadcast(v logic.Val) VV {
	switch v {
	case logic.Zero:
		return VV{Zero: ^uint64(0)}
	case logic.One:
		return VV{One: ^uint64(0)}
	}
	return VV{}
}

// Lane extracts the value of lane k.
func (v VV) Lane(k uint) logic.Val {
	switch {
	case v.One>>k&1 == 1:
		return logic.One
	case v.Zero>>k&1 == 1:
		return logic.Zero
	}
	return logic.X
}

// Not complements all lanes.
func (v VV) Not() VV { return VV{Zero: v.One, One: v.Zero} }

// And2 folds two operands under AND semantics.
func And2(a, b VV) VV {
	return VV{One: a.One & b.One, Zero: a.Zero | b.Zero}
}

// Or2 folds two operands under OR semantics.
func Or2(a, b VV) VV {
	return VV{One: a.One | b.One, Zero: a.Zero & b.Zero}
}

// Xor2 folds two operands under XOR semantics; unknown lanes stay X.
func Xor2(a, b VV) VV {
	return VV{
		One:  a.One&b.Zero | a.Zero&b.One,
		Zero: a.One&b.One | a.Zero&b.Zero,
	}
}

// foldKind selects the two-operand fold an operator reduces under.
type foldKind uint8

const (
	foldAnd foldKind = iota
	foldOr           // also Buf/Not: Or from the identity passes the input through
	foldXor
)

// VVFold streams a gate's input vectors through the lane-wise fold one
// at a time, keeping the accumulator in registers instead of requiring
// callers to materialize a gathered input slice. It is the single home
// of the bit-parallel fold semantics; EvalOpVV is defined on top of it.
//
// The accumulator starts at the fold's identity element (all-1 lanes
// for AND, all-0 lanes for OR and XOR), so Add has no first-input
// special case and inlines into callers' gather loops.
type VVFold struct {
	op   logic.Op
	kind foldKind
	acc  VV
}

// StartVV begins a fold under op.
func StartVV(op logic.Op) VVFold {
	switch op {
	case logic.And, logic.Nand:
		return VVFold{op: op, kind: foldAnd, acc: VV{One: ^uint64(0)}}
	case logic.Xor, logic.Xnor:
		return VVFold{op: op, kind: foldXor, acc: VV{Zero: ^uint64(0)}}
	}
	return VVFold{op: op, kind: foldOr, acc: VV{Zero: ^uint64(0)}}
}

// Add folds the next input vector into the accumulator.
func (f *VVFold) Add(v VV) {
	switch f.kind {
	case foldAnd:
		f.acc.One &= v.One
		f.acc.Zero |= v.Zero
	case foldOr:
		f.acc.One |= v.One
		f.acc.Zero &= v.Zero
	default:
		f.acc = Xor2(f.acc, v)
	}
}

// Result completes the fold, applying the operator's output inversion.
func (f *VVFold) Result() VV {
	switch f.op {
	case logic.Const0:
		return Broadcast(logic.Zero)
	case logic.Const1:
		return Broadcast(logic.One)
	}
	if f.op.Inverting() {
		return f.acc.Not()
	}
	return f.acc
}

// EvalOpVV folds the gathered input vectors under op — the 64-lane
// counterpart of EvalOp, lane-for-lane equivalent to logic.Eval.
func EvalOpVV(op logic.Op, in []VV) VV {
	f := StartVV(op)
	for _, v := range in {
		f.Add(v)
	}
	return f.Result()
}
