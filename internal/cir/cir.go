// Package cir is the compiled circuit intermediate representation every
// evaluation engine runs on: a levelized, struct-of-arrays view of a
// netlist.Circuit built once per circuit and shared read-only by any
// number of goroutines.
//
// The pointer-chasing netlist.Circuit stays the construction and naming
// model; CC flattens it into opcode, fanin and fanout arrays in CSR
// (compressed sparse row) form, level buckets over the evaluation order,
// and dense per-node role maps (driver, flip-flop, output position).
// Gate semantics live in exactly one place: EvalOp (the scalar
// three-valued evaluation, delegating to logic.Eval) and EvalOpVV (the
// 64-lane bit-parallel evaluation, see vv.go). The sequential fanout
// cone of a fault site — the only region a fault can ever influence —
// is computed by FillCone (see cone.go) and drives active-cone faulty
// simulation in seqsim.
package cir

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// CC is the compiled circuit. The compiled arrays are immutable after
// Compile (the per-site cone cache fills lazily and atomically); a
// single CC is safe for concurrent use by any number of evaluators.
type CC struct {
	// Net is the source netlist (names, construction-time structure).
	Net *netlist.Circuit

	// Per-gate arrays, indexed by netlist.GateID.

	// Ops is the gate operator array.
	Ops []logic.Op
	// GOut is the gate output node array.
	GOut []netlist.NodeID
	// Level is the topological level of each gate (1-based).
	Level []int32

	// CSR fanin: gate gi reads Fanin[FaninStart[gi]:FaninStart[gi+1]],
	// pin p of gi being Fanin[FaninStart[gi]+p].
	FaninStart []int32
	Fanin      []netlist.NodeID

	// CSR fanout: node n is read by the gate input pins
	// (FanoutGate[k], FanoutPin[k]) for k in
	// [FanoutStart[n], FanoutStart[n+1]).
	FanoutStart []int32
	FanoutGate  []netlist.GateID
	FanoutPin   []int32

	// Per-node role maps, indexed by netlist.NodeID.

	// Driver is the gate driving each node, or netlist.NoGate.
	Driver []netlist.GateID
	// FFOf is the index of the flip-flop a node is the Q (present-state)
	// node of, or -1.
	FFOf []int32
	// DOf is the index of the flip-flop a node is the D (next-state)
	// node of, or -1.
	DOf []int32
	// OutPos is the node's position in Outputs, or -1.
	OutPos []int32

	// Order lists all gates in ascending level order with a deterministic
	// gate-ID tie-break (identical to Net.Order); evaluating gates in
	// this order computes every node in one pass. Gates of level l
	// occupy Order[LevelStart[l]:LevelStart[l+1]] for l in [1, MaxLevel].
	Order      []netlist.GateID
	LevelStart []int32
	MaxLevel   int32

	// Index maps, in declaration order.

	// Inputs lists the primary input nodes.
	Inputs []netlist.NodeID
	// Outputs lists the primary output nodes.
	Outputs []netlist.NodeID
	// FFQ[i] and FFD[i] are flip-flop i's present-state and next-state
	// nodes; FFInit[i] its power-up value.
	FFQ    []netlist.NodeID
	FFD    []netlist.NodeID
	FFInit []logic.Val

	// MaxFanin is the largest gate input count (0 for a circuit of
	// constants only); Evaluator gather buffers are sized by it.
	MaxFanin int

	// meta packs each gate's hot evaluation metadata (operator, output
	// node, fanin range) into one record so EvalGate touches a single
	// cache line per gate instead of gathering from four arrays. It is
	// derived from Ops/GOut/FaninStart in Compile.
	meta []gateMeta

	// fullSched is the whole-circuit event schedule (see event.go),
	// derived from the level buckets in Compile.
	fullSched Sched

	// Per-site active-cone cache (see ConeOf): one slot per possible stem
	// site (node) and branch site (reading gate), filled lazily under
	// coneMu using the shared scratch cone and read lock-free thereafter.
	conesNode   []atomic.Pointer[Cone]
	conesGate   []atomic.Pointer[Cone]
	coneMu      sync.Mutex
	coneScratch *Cone
}

// gateMeta is the packed per-gate record EvalGate reads.
type gateMeta struct {
	out    netlist.NodeID
	lo, hi int32
	op     logic.Op
}

// NumNodes returns the number of signal nodes.
func (cc *CC) NumNodes() int { return len(cc.Driver) }

// NumGates returns the number of combinational gates.
func (cc *CC) NumGates() int { return len(cc.Ops) }

// NumInputs returns the number of primary inputs.
func (cc *CC) NumInputs() int { return len(cc.Inputs) }

// NumOutputs returns the number of primary outputs.
func (cc *CC) NumOutputs() int { return len(cc.Outputs) }

// NumFFs returns the number of flip-flops.
func (cc *CC) NumFFs() int { return len(cc.FFQ) }

// FaninOf returns gate gi's input nodes as a view into the CSR array.
func (cc *CC) FaninOf(gi netlist.GateID) []netlist.NodeID {
	return cc.Fanin[cc.FaninStart[gi]:cc.FaninStart[gi+1]]
}

// Compile flattens a netlist.Circuit into the struct-of-arrays IR.
func Compile(c *netlist.Circuit) *CC {
	nGates, nNodes := c.NumGates(), c.NumNodes()
	cc := &CC{
		Net:        c,
		Ops:        make([]logic.Op, nGates),
		GOut:       make([]netlist.NodeID, nGates),
		Level:      make([]int32, nGates),
		FaninStart: make([]int32, nGates+1),
		Driver:     make([]netlist.GateID, nNodes),
		FFOf:       make([]int32, nNodes),
		DOf:        make([]int32, nNodes),
		OutPos:     make([]int32, nNodes),
		Order:      c.Order,
		MaxLevel:   c.MaxLevel,
		Inputs:     c.Inputs,
		Outputs:    c.Outputs,
		FFQ:        make([]netlist.NodeID, c.NumFFs()),
		FFD:        make([]netlist.NodeID, c.NumFFs()),
		FFInit:     make([]logic.Val, c.NumFFs()),
		conesNode:  make([]atomic.Pointer[Cone], nNodes),
		conesGate:  make([]atomic.Pointer[Cone], nGates),
	}
	// Gate arrays and CSR fanin.
	total := 0
	for gi := range c.Gates {
		total += len(c.Gates[gi].In)
	}
	cc.Fanin = make([]netlist.NodeID, 0, total)
	for gi := range c.Gates {
		g := &c.Gates[gi]
		cc.Ops[gi] = g.Op
		cc.GOut[gi] = g.Out
		cc.Level[gi] = g.Level
		cc.FaninStart[gi] = int32(len(cc.Fanin))
		cc.Fanin = append(cc.Fanin, g.In...)
		if len(g.In) > cc.MaxFanin {
			cc.MaxFanin = len(g.In)
		}
	}
	cc.FaninStart[nGates] = int32(len(cc.Fanin))
	cc.meta = make([]gateMeta, nGates)
	for gi := range cc.meta {
		cc.meta[gi] = gateMeta{
			out: cc.GOut[gi],
			lo:  cc.FaninStart[gi],
			hi:  cc.FaninStart[gi+1],
			op:  cc.Ops[gi],
		}
	}
	// CSR fanout and node roles.
	cc.FanoutStart = make([]int32, nNodes+1)
	nFan := 0
	for id := range c.Nodes {
		nFan += len(c.Nodes[id].Fanouts)
	}
	cc.FanoutGate = make([]netlist.GateID, 0, nFan)
	cc.FanoutPin = make([]int32, 0, nFan)
	for id := range c.Nodes {
		n := &c.Nodes[id]
		cc.FanoutStart[id] = int32(len(cc.FanoutGate))
		for _, pin := range n.Fanouts {
			cc.FanoutGate = append(cc.FanoutGate, pin.Gate)
			cc.FanoutPin = append(cc.FanoutPin, pin.Input)
		}
		cc.Driver[id] = n.Driver
		cc.FFOf[id] = n.FF
		cc.DOf[id] = n.DOf
		cc.OutPos[id] = -1
	}
	cc.FanoutStart[nNodes] = int32(len(cc.FanoutGate))
	for j, id := range c.Outputs {
		cc.OutPos[id] = int32(j)
	}
	for i, ff := range c.FFs {
		cc.FFQ[i] = ff.Q
		cc.FFD[i] = ff.D
		cc.FFInit[i] = ff.Init
	}
	// Level buckets over Order (Order is sorted by ascending level), by
	// counting: LevelStart[l] is the prefix sum of gate counts below l.
	cc.LevelStart = make([]int32, cc.MaxLevel+2)
	counts := make([]int32, cc.MaxLevel+2)
	for _, gi := range cc.Order {
		counts[cc.Level[gi]]++
	}
	pos := int32(0)
	for l := int32(0); l <= cc.MaxLevel+1; l++ {
		cc.LevelStart[l] = pos
		if l <= cc.MaxLevel {
			pos += counts[l]
		}
	}
	// Whole-circuit event schedule: one bucket per occupied level,
	// derived from the same level buckets.
	off := int32(0)
	cc.fullSched.Off = append(cc.fullSched.Off, 0)
	for l := int32(1); l <= cc.MaxLevel; l++ {
		if n := cc.LevelStart[l+1] - cc.LevelStart[l]; n > 0 {
			cc.fullSched.Levels = append(cc.fullSched.Levels, l)
			off += n
			cc.fullSched.Off = append(cc.fullSched.Off, off)
		}
	}
	return cc
}

// forCacheCap bounds the per-process compile cache by circuit count.
// The cache used to be an unbounded pointer-keyed sync.Map, which grows
// without limit in a long-running service where every inline-netlist
// request parses a fresh *netlist.Circuit; an LRU bound keeps the
// common cases (a CLI run, the 13-circuit suite, a service with its own
// content-addressed layer on top) fully cached while capping the leak.
// An evicted circuit is simply recompiled on the next For call.
const forCacheCap = 64

// compiled caches one CC per *netlist.Circuit, LRU-bounded. Circuits
// are immutable after Build, so a pointer key is sound; the cache makes
// For cheap enough to sit behind every compatibility constructor.
var (
	compiled  = cache.New[*netlist.Circuit, *CC](forCacheCap, nil)
	compileMu sync.Mutex
)

// For returns the compiled IR for c, compiling at most once per cached
// circuit and returning the shared (read-only) CC thereafter. Callers
// that hold the result (every engine constructor does) are unaffected
// by a later eviction; only the next For call recompiles.
func For(c *netlist.Circuit) *CC {
	if cc, ok := compiled.Get(c); ok {
		return cc
	}
	// Double-checked under a compile mutex so concurrent first calls on
	// the same circuit share one CC (and its lazily filled cone cache)
	// instead of racing to install different copies.
	compileMu.Lock()
	defer compileMu.Unlock()
	if cc, ok := compiled.Get(c); ok {
		return cc
	}
	cc := Compile(c)
	compiled.Add(c, cc, 1)
	return cc
}

// Drop removes c's compiled IR from the per-process cache, releasing
// the memory it pins (arrays plus accumulated cone snapshots). Engines
// already holding the CC keep working; a later For call recompiles.
// The service layer calls this when its content-addressed cache evicts
// a circuit, so the two caches cannot disagree about what is resident.
func Drop(c *netlist.Circuit) {
	compiled.Remove(c)
}

// MemSize estimates the compiled circuit's resident bytes: the flat
// arrays plus the cone snapshots cached so far. It is an accounting
// estimate for cache budgeting, not an exact heap measurement.
func (cc *CC) MemSize() int64 {
	n := int64(len(cc.Ops))*int64(unsafe.Sizeof(logic.Op(0))) +
		int64(len(cc.GOut)+len(cc.Fanin))*int64(unsafe.Sizeof(netlist.NodeID(0))) +
		int64(len(cc.Level)+len(cc.FaninStart)+len(cc.FanoutStart)+len(cc.FanoutPin)+
			len(cc.FFOf)+len(cc.DOf)+len(cc.OutPos)+len(cc.LevelStart))*4 +
		int64(len(cc.FanoutGate)+len(cc.Driver)+len(cc.Order))*int64(unsafe.Sizeof(netlist.GateID(0))) +
		int64(len(cc.Inputs)+len(cc.Outputs)+len(cc.FFQ)+len(cc.FFD))*int64(unsafe.Sizeof(netlist.NodeID(0))) +
		int64(len(cc.FFInit)) +
		int64(len(cc.meta))*int64(unsafe.Sizeof(gateMeta{})) +
		cc.fullSched.memSize() +
		int64(len(cc.conesNode)+len(cc.conesGate))*int64(unsafe.Sizeof(atomic.Pointer[Cone]{}))
	for i := range cc.conesNode {
		n += cc.conesNode[i].Load().memSize()
	}
	for i := range cc.conesGate {
		n += cc.conesGate[i].Load().memSize()
	}
	return n
}

// NoFault is the absence of a fault. Evaluation entry points take a
// *fault.Fault and use NoFault instead of nil so hot loops avoid nil
// checks; helpers that accept nil substitute it.
var NoFault = fault.Fault{Node: netlist.NoNode, Gate: netlist.NoGate}

// evalLUT1..evalLUT4 cache logic.Eval over every (operator, input)
// combination for one- to four-input gates — effectively all of a real
// netlist — so the hot paths (the level walk and the event-queue drain)
// are a base-3-indexed table load instead of the controlling-value
// scan, and never reach logic.Eval for common gates. The tables are
// derived from logic.Eval at init: a cache of the single semantics
// home, not a second implementation.
var (
	evalLUT1 [logic.Const1 + 1][3]logic.Val
	evalLUT2 [logic.Const1 + 1][9]logic.Val
	evalLUT3 [logic.Const1 + 1][27]logic.Val
	evalLUT4 [logic.Const1 + 1][81]logic.Val
)

func init() {
	for op := logic.Buf; op <= logic.Const1; op++ {
		for a := logic.Zero; a <= logic.X; a++ {
			evalLUT1[op][a] = logic.Eval(op, []logic.Val{a})
			for b := logic.Zero; b <= logic.X; b++ {
				evalLUT2[op][int(a)*3+int(b)] = logic.Eval(op, []logic.Val{a, b})
				for c := logic.Zero; c <= logic.X; c++ {
					evalLUT3[op][(int(a)*3+int(b))*3+int(c)] =
						logic.Eval(op, []logic.Val{a, b, c})
					for d := logic.Zero; d <= logic.X; d++ {
						evalLUT4[op][((int(a)*3+int(b))*3+int(c))*3+int(d)] =
							logic.Eval(op, []logic.Val{a, b, c, d})
					}
				}
			}
		}
	}
}

// EvalOp is the scalar three-valued gate evaluation — the single home
// of gate semantics (delegating to logic.Eval, through the precomputed
// tables for the common arities) that every engine evaluates through.
func EvalOp(op logic.Op, in []logic.Val) logic.Val {
	switch len(in) {
	case 2:
		return evalLUT2[op][int(in[0])*3+int(in[1])]
	case 1:
		return evalLUT1[op][in[0]]
	case 3:
		return evalLUT3[op][(int(in[0])*3+int(in[1]))*3+int(in[2])]
	case 4:
		return evalLUT4[op][((int(in[0])*3+int(in[1]))*3+int(in[2]))*3+int(in[3])]
	}
	return logic.Eval(op, in)
}

// Evaluator owns the gather scratch for scalar gate evaluation over one
// CC. It is not safe for concurrent use; create one per goroutine (the
// CC behind it is shared).
type Evaluator struct {
	cc *CC
	in []logic.Val
}

// NewEvaluator returns an evaluator for the compiled circuit.
func (cc *CC) NewEvaluator() *Evaluator {
	return &Evaluator{cc: cc, in: make([]logic.Val, cc.MaxFanin)}
}

// CC returns the compiled circuit the evaluator runs on.
func (e *Evaluator) CC() *CC { return e.cc }

// EvalGate computes the effective output value of gate gi under fault f
// (non-nil; use &NoFault) from the node values in vals. "Effective"
// means the value readers observe: a stem-stuck output holds its stuck
// value, and branch faults are applied to the pins that read them.
func (e *Evaluator) EvalGate(gi netlist.GateID, f *fault.Fault, vals []logic.Val) logic.Val {
	cc := e.cc
	m := &cc.meta[gi]
	if v, ok := f.StuckNode(m.out); ok {
		return v
	}
	fanin := cc.Fanin[m.lo:m.hi]
	// Gather through a stack buffer (spilling to the heap scratch only
	// for the rare very-wide gate): the hot path stays allocation-free
	// and bounds-check-free.
	var buf [8]logic.Val
	in := e.in[:len(fanin)]
	if len(fanin) <= len(buf) {
		in = buf[:len(fanin)]
	}
	for p, id := range fanin {
		in[p] = f.SeenBy(gi, int32(p), id, vals[id])
	}
	return EvalOp(m.op, in)
}

// EvalFrame computes the effective value of every node for one time
// frame: pi are the primary-input values, ps the effective
// present-state values, f the injected fault (nil for fault-free), and
// vals the output buffer with one entry per node.
func (e *Evaluator) EvalFrame(pi, ps []logic.Val, f *fault.Fault, vals []logic.Val) {
	if f == nil {
		f = &NoFault
	}
	cc := e.cc
	for i, id := range cc.Inputs {
		vals[id] = f.Observed(id, pi[i])
	}
	for i, q := range cc.FFQ {
		vals[q] = f.Observed(q, ps[i])
	}
	for _, gi := range cc.Order {
		vals[cc.GOut[gi]] = e.EvalGate(gi, f, vals)
	}
}
