package cir

// Event-driven sparse-delta evaluation: a level-bucketed event schedule
// over the compiled fanout CSR plus an epoch-stamped sparse value
// overlay. Instead of copying the whole fault-free frame and walking
// every cone gate level by level, the event evaluator seeds the handful
// of nodes a frame actually perturbs (the fault site and the changed
// present-state lines), then visits only gates whose inputs changed.
// Values equal to the bound baseline are never stored: the overlay
// holds exactly the divergent nodes, stamped with a per-frame epoch so
// starting a new frame is O(1) instead of O(nodes).
//
// The schedule is an array-backed bucket list, not a heap: the region a
// frame can touch (a fault's active cone, or the whole circuit) is
// known up front, so each occupied level gets a pre-sized bucket and
// draining is an ascending scan over the occupied levels only. Because
// a gate's readers always sit at strictly higher levels, every gate is
// evaluated at most once per frame and a bucket can be recycled the
// moment it is drained.

import (
	"math/bits"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Sched is a level-bucketed event schedule over a fixed gate region
// (a fault's active cone, or the whole circuit). Levels lists the
// region's occupied levels in ascending order; the bucket for Levels[k]
// has capacity Off[k+1]-Off[k] — the number of region gates at that
// level, which bounds the gates ever enqueued there because a gate
// enters the queue at most once per frame. A Sched is immutable after
// construction and shared read-only by any number of evaluators.
type Sched struct {
	// Levels lists the distinct gate levels present in the region,
	// ascending.
	Levels []int32
	// Off holds len(Levels)+1 prefix offsets into the evaluator's bucket
	// storage: bucket k spans [Off[k], Off[k+1]).
	Off []int32
}

// NumGates returns the total bucket capacity — the number of gates in
// the scheduled region.
func (s *Sched) NumGates() int {
	if len(s.Off) == 0 {
		return 0
	}
	return int(s.Off[len(s.Off)-1])
}

// memSize estimates the schedule's resident bytes for cache accounting.
func (s *Sched) memSize() int64 {
	return int64(len(s.Levels)+len(s.Off)) * 4
}

// buildSched fills s with the level buckets of the given gate set.
// counts is zeroed scratch with at least MaxLevel+1 entries; it is
// returned zeroed.
func (cc *CC) buildSched(gates []netlist.GateID, counts []int32, s *Sched) {
	s.Levels = s.Levels[:0]
	s.Off = s.Off[:0]
	for _, g := range gates {
		counts[cc.Level[g]]++
	}
	s.Off = append(s.Off, 0)
	off := int32(0)
	for l := int32(1); l <= cc.MaxLevel; l++ {
		if counts[l] == 0 {
			continue
		}
		s.Levels = append(s.Levels, l)
		off += counts[l]
		s.Off = append(s.Off, off)
		counts[l] = 0
	}
}

// FullSched returns the whole-circuit event schedule (every gate, every
// occupied level), built once at Compile. It backs full-seeding entry
// points (FrameDelta, the resimulation clean-frame path) where the
// perturbed region is not confined to a cone.
func (cc *CC) FullSched() *Sched { return &cc.fullSched }

// EventEval is the event-driven sparse-delta frame evaluator: scratch
// for one goroutine evaluating frames of one compiled circuit against a
// caller-bound baseline. It is not safe for concurrent use; create one
// per worker (the CC and Scheds behind it are shared).
//
// A frame runs as BeginFrame (bind baseline + schedule, bump epoch),
// any number of Set/Enqueue seeds, one Drain, then sparse Read /
// Touched / MaterializeInto consumption. Values diverging from the
// baseline live in delta[n] stamped with the current epoch; unstamped
// nodes read through to the baseline, so no per-frame copy or clear of
// the node arrays ever happens.
type EventEval struct {
	cc *CC

	// base is the fault-free frame the overlay diverges from, bound per
	// frame and never written.
	base []logic.Val
	// delta/nodeStamp are the sparse overlay: delta[n] is live iff
	// nodeStamp[n] == epoch.
	delta     []logic.Val
	nodeStamp []uint32
	// touched lists the live overlay nodes in write order — every node
	// whose effective value differs (or was explicitly seeded) this
	// frame. Each node appears at most once.
	touched []netlist.NodeID

	// gateStamp dedups queue insertion: gate g is queued this frame iff
	// gateStamp[g] == epoch. Gates are never re-queued after evaluation
	// because all their writers sit at lower levels.
	gateStamp []uint32
	epoch     uint32

	// Bucket queue over the bound schedule: bucket k of sched spans
	// buf[sched.Off[k]:sched.Off[k+1]] with fill[k] gates pending.
	// Outside Drain every fill entry is zero (Drain recycles each bucket
	// as it passes — pushes only ever target strictly higher levels).
	sched  *Sched
	buf    []netlist.GateID
	fill   []int32
	// occ marks the non-empty buckets (bit k of occ[k>>6] is set iff
	// fill[k] > 0), so Drain scans occupied buckets only instead of
	// every schedule level — most frames carry a handful of events
	// across long schedules. Like fill, all-zero outside Drain.
	occ    []uint64
	slotOf []int32 // level -> bucket index in sched; valid for sched only

	// in is the gather spill for the rare gate wider than the stack
	// buffer.
	in []logic.Val
}

// NewEventEval returns an event evaluator sized for the circuit.
func (cc *CC) NewEventEval() *EventEval {
	return &EventEval{
		cc:        cc,
		delta:     make([]logic.Val, cc.NumNodes()),
		nodeStamp: make([]uint32, cc.NumNodes()),
		gateStamp: make([]uint32, cc.NumGates()),
		slotOf:    make([]int32, cc.MaxLevel+1),
		in:        make([]logic.Val, cc.MaxFanin),
	}
}

// BeginFrame starts a new frame: the overlay empties (epoch bump, no
// clearing), base becomes the read-through baseline, and sched the
// active schedule. base is aliased, not copied — it must stay unchanged
// until the frame's reads are done.
func (e *EventEval) BeginFrame(base []logic.Val, sched *Sched) {
	e.base = base
	e.touched = e.touched[:0]
	e.epoch++
	if e.epoch == 0 {
		// uint32 wrap: stale stamps could alias the new epoch, so pay the
		// one-in-4-billion dense clear and restart at 1.
		clear(e.nodeStamp)
		clear(e.gateStamp)
		e.epoch = 1
	}
	if sched != e.sched {
		e.bindSched(sched)
	}
}

// bindSched points the bucket queue at a new schedule, resizing the
// bucket storage and refreshing the level->bucket map. slotOf entries
// of levels outside the schedule go stale, which is safe: only gates of
// the scheduled region are ever enqueued (a cone is closed under
// fanout, so every reader of a cone node is a cone gate).
func (e *EventEval) bindSched(s *Sched) {
	e.sched = s
	total := s.NumGates()
	if cap(e.buf) < total {
		e.buf = make([]netlist.GateID, total)
	} else {
		e.buf = e.buf[:total]
	}
	if cap(e.fill) < len(s.Levels) {
		e.fill = make([]int32, len(s.Levels))
	} else {
		e.fill = e.fill[:len(s.Levels)]
		clear(e.fill)
	}
	words := (len(s.Levels) + 63) >> 6
	if cap(e.occ) < words {
		e.occ = make([]uint64, words)
	} else {
		e.occ = e.occ[:words]
		clear(e.occ)
	}
	for k, l := range s.Levels {
		e.slotOf[l] = int32(k)
	}
}

// Read returns node id's effective value this frame: the overlay value
// if the node diverged, the baseline otherwise.
func (e *EventEval) Read(id netlist.NodeID) logic.Val {
	if e.nodeStamp[id] == e.epoch {
		return e.delta[id]
	}
	return e.base[id]
}

// Set records node id's effective value. A value equal to the current
// effective value is a no-op; otherwise the overlay absorbs it and
// every reading gate is enqueued. Seeding and gate evaluation both
// funnel through here, so touched ends up as exactly the divergent
// node set.
func (e *EventEval) Set(id netlist.NodeID, v logic.Val) {
	if v == e.Read(id) {
		return
	}
	if e.nodeStamp[id] != e.epoch {
		e.nodeStamp[id] = e.epoch
		e.touched = append(e.touched, id)
	}
	e.delta[id] = v
	cc := e.cc
	for k := cc.FanoutStart[id]; k < cc.FanoutStart[id+1]; k++ {
		e.push(cc.FanoutGate[k])
	}
}

// Enqueue queues gate g for evaluation without a value change — the
// branch-fault seed, where the faulty pin's stem keeps its fault-free
// value but the reading gate must still be re-evaluated.
func (e *EventEval) Enqueue(g netlist.GateID) { e.push(g) }

func (e *EventEval) push(g netlist.GateID) {
	if e.gateStamp[g] == e.epoch {
		return
	}
	e.gateStamp[g] = e.epoch
	k := e.slotOf[e.cc.Level[g]]
	e.buf[e.sched.Off[k]+e.fill[k]] = g
	e.fill[k]++
	e.occ[k>>6] |= 1 << (k & 63)
}

// Drain evaluates every queued gate in ascending level order under
// fault f (non-nil; use &NoFault), feeding output changes back through
// Set, and returns the number of gates evaluated. The occupancy bitmap
// steers the scan straight to non-empty buckets (ascending bit order =
// ascending level order). Each bucket is recycled as soon as it is
// processed: a gate's readers always sit at strictly higher levels, so
// no push can target a drained bucket — pushes land only on higher
// bits of the current word (picked up by the inner re-read) or later
// words (picked up by the outer loop).
func (e *EventEval) Drain(f *fault.Fault) int {
	cc := e.cc
	s := e.sched
	evals := 0
	for w := range e.occ {
		for e.occ[w] != 0 {
			bit := bits.TrailingZeros64(e.occ[w])
			e.occ[w] &^= 1 << bit
			k := w<<6 | bit
			b := e.buf[s.Off[k] : s.Off[k]+e.fill[k]]
			e.fill[k] = 0
			evals += len(b)
			for _, gi := range b {
				e.Set(cc.GOut[gi], e.evalGate(gi, f))
			}
		}
	}
	return evals
}

// evalGate is Evaluator.EvalGate against the sparse overlay: the
// effective output value of gate gi under fault f, gathering inputs
// through Read.
func (e *EventEval) evalGate(gi netlist.GateID, f *fault.Fault) logic.Val {
	cc := e.cc
	m := &cc.meta[gi]
	if v, ok := f.StuckNode(m.out); ok {
		return v
	}
	fanin := cc.Fanin[m.lo:m.hi]
	var buf [8]logic.Val
	in := e.in[:len(fanin)]
	if len(fanin) <= len(buf) {
		in = buf[:len(fanin)]
	}
	for p, id := range fanin {
		in[p] = f.SeenBy(gi, int32(p), id, e.Read(id))
	}
	return EvalOp(m.op, in)
}

// Touched returns the frame's divergent nodes in write order — a view
// into evaluator storage, valid until the next BeginFrame. Its length
// is the frame's event count.
func (e *EventEval) Touched() []netlist.NodeID { return e.touched }

// MaterializeInto patches the overlay into dst, which the caller has
// pre-filled with the baseline (typically one copy of the fault-free
// row): after the call dst holds the dense faulty frame.
func (e *EventEval) MaterializeInto(dst []logic.Val) {
	for _, n := range e.touched {
		dst[n] = e.delta[n]
	}
}
