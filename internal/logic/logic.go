// Package logic implements the three-valued (0, 1, X) logic kernel used
// throughout the simulator: forward gate evaluation, backward (output to
// input) inference, and value merging with conflict detection.
//
// The three-valued algebra is the classic one used in sequential-circuit
// fault simulation [Abramovici et al., Digital Systems Testing]: X denotes
// an unknown binary value, so an operator returns a binary value only when
// every completion of the unknown inputs yields that value.
package logic

import "fmt"

// Val is a three-valued logic value.
type Val uint8

const (
	// Zero is logic 0.
	Zero Val = 0
	// One is logic 1.
	One Val = 1
	// X is the unknown value: the line carries either 0 or 1, but which
	// one is not determined by the information at hand.
	X Val = 2
)

// String returns "0", "1" or "x".
func (v Val) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "x"
	}
	return fmt.Sprintf("Val(%d)", uint8(v))
}

// IsBinary reports whether v is a fully specified (0 or 1) value.
func (v Val) IsBinary() bool { return v == Zero || v == One }

// Not returns the complement of v; the complement of X is X.
func (v Val) Not() Val {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// FromBool converts a Go bool to a binary Val.
func FromBool(b bool) Val {
	if b {
		return One
	}
	return Zero
}

// Merge combines two pieces of information about the same line. X carries
// no information, so merging with X returns the other value. Merging two
// equal binary values returns that value. Merging 0 with 1 is a conflict.
func Merge(a, b Val) (v Val, conflict bool) {
	switch {
	case a == X:
		return b, false
	case b == X:
		return a, false
	case a == b:
		return a, false
	}
	return X, true
}

// Op identifies a combinational gate operator.
type Op uint8

const (
	// Buf is a single-input buffer (identity).
	Buf Op = iota
	// Not is a single-input inverter.
	Not
	// And is a multi-input AND.
	And
	// Nand is a multi-input NAND.
	Nand
	// Or is a multi-input OR.
	Or
	// Nor is a multi-input NOR.
	Nor
	// Xor is a multi-input XOR (odd parity).
	Xor
	// Xnor is a multi-input XNOR (even parity).
	Xnor
	// Const0 is a zero-input constant-0 source.
	Const0
	// Const1 is a zero-input constant-1 source.
	Const1

	numOps
)

var opNames = [numOps]string{
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Const0: "CONST0",
	Const1: "CONST1",
}

// String returns the conventional upper-case name of the operator.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is a defined operator.
func (op Op) Valid() bool { return op < numOps }

// MinInputs returns the smallest legal input count for op.
func (op Op) MinInputs() int {
	switch op {
	case Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return 1
	}
}

// MaxInputs returns the largest legal input count for op, or -1 when the
// operator accepts any number of inputs.
func (op Op) MaxInputs() int {
	switch op {
	case Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Inverting reports whether the operator complements its "base" function
// (NAND vs AND, NOR vs OR, XNOR vs XOR, NOT vs BUF).
func (op Op) Inverting() bool {
	switch op {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// controlling returns the controlling input value for AND/NAND/OR/NOR
// operators and ok=true; for all other operators ok=false.
func (op Op) controlling() (c Val, ok bool) {
	switch op {
	case And, Nand:
		return Zero, true
	case Or, Nor:
		return One, true
	}
	return X, false
}

// Eval computes the three-valued output of a gate with operator op and the
// given input values. It panics if the input count is illegal for op; the
// netlist layer validates arities before simulation.
func Eval(op Op, in []Val) Val {
	switch op {
	case Const0:
		return Zero
	case Const1:
		return One
	case Buf:
		return in[0]
	case Not:
		return in[0].Not()
	case And, Nand, Or, Nor:
		c, _ := op.controlling()
		sawX := false
		for _, v := range in {
			if v == c {
				// A controlling input decides the output regardless of X's.
				return xorVal(c, op.Inverting())
			}
			if v == X {
				sawX = true
			}
		}
		if sawX {
			return X
		}
		return xorVal(c.Not(), op.Inverting())
	case Xor, Xnor:
		parity := false
		for _, v := range in {
			switch v {
			case X:
				return X
			case One:
				parity = !parity
			}
		}
		out := FromBool(parity)
		if op.Inverting() {
			out = out.Not()
		}
		return out
	}
	panic(fmt.Sprintf("logic: Eval of invalid operator %v", op))
}

// xorVal complements v when inv is true.
func xorVal(v Val, inv bool) Val {
	if inv {
		return v.Not()
	}
	return v
}

// InferInputs computes the input values forced by knowing that a gate with
// operator op produces output out, given the currently known input values
// in. The returned slice has len(in) entries; an entry of X means the
// corresponding input is not forced. Inputs that are already binary in
// `in` are never reported (there is nothing new to learn about them).
//
// ok is false when out is impossible for any completion of the unknown
// inputs — a conflict. Forward evaluation would find the same conflict,
// but detecting it here lets a backward sweep stop early.
//
// The rules are the classic backward-implication rules:
//
//   - BUF/NOT: the single input is forced to out (complemented for NOT).
//   - AND/NAND/OR/NOR with a non-controlled output value: every input is
//     forced to the non-controlling value.
//   - AND/NAND/OR/NOR with a controlled output value: if exactly one input
//     is not known to be non-controlling, that input is forced to the
//     controlling value; if all inputs are known non-controlling, conflict.
//   - XOR/XNOR: if all inputs but one are binary, the remaining input is
//     forced to the parity-completing value; if all are binary, the output
//     is checked for consistency.
//   - CONST0/CONST1: conflict when out differs from the constant.
//
// out must be binary; calling with out == X returns all-X, true.
func InferInputs(op Op, out Val, in []Val) (forced []Val, ok bool) {
	forced = make([]Val, len(in))
	ok = InferInputsInto(op, out, in, forced)
	return forced, ok
}

// InferInputsInto is InferInputs writing into a caller-provided buffer of
// len(in), sparing the per-call allocation on hot paths. The buffer is
// fully overwritten.
func InferInputsInto(op Op, out Val, in, forced []Val) (ok bool) {
	for i := range forced {
		forced[i] = X
	}
	if out == X {
		return true
	}
	switch op {
	case Const0:
		return out == Zero
	case Const1:
		return out == One
	case Buf, Not:
		want := out
		if op == Not {
			want = out.Not()
		}
		switch in[0] {
		case X:
			forced[0] = want
			return true
		case want:
			return true
		}
		return false
	case And, Nand, Or, Nor:
		c, _ := op.controlling()
		nc := c.Not()
		// base is the output value the gate produces when some input is
		// controlling.
		controlled := xorVal(c, op.Inverting())
		if out != controlled {
			// Non-controlled output: every input must be non-controlling.
			for i, v := range in {
				switch v {
				case X:
					forced[i] = nc
				case c:
					return false
				}
			}
			return true
		}
		// Controlled output: at least one input is controlling. Forcing is
		// possible only when exactly one candidate remains.
		candidate := -1
		for i, v := range in {
			if v == c {
				// Already satisfied; nothing is forced.
				return true
			}
			if v == X {
				if candidate >= 0 {
					// Two or more unknown inputs: no single input forced.
					return true
				}
				candidate = i
			}
		}
		if candidate < 0 {
			// All inputs known non-controlling but output is controlled.
			return false
		}
		forced[candidate] = c
		return true
	case Xor, Xnor:
		parity := op == Xnor // start from the inversion so `parity` tracks the required remaining parity
		wantOdd := out == One
		unknown := -1
		for i, v := range in {
			switch v {
			case X:
				if unknown >= 0 {
					return true // two or more unknowns: nothing forced
				}
				unknown = i
			case One:
				parity = !parity
			}
		}
		if unknown < 0 {
			return parity == wantOdd
		}
		forced[unknown] = FromBool(parity != wantOdd)
		return true
	}
	panic(fmt.Sprintf("logic: InferInputs of invalid operator %v", op))
}

// ParseVal parses a single pattern character: '0', '1', 'x' or 'X'.
func ParseVal(c byte) (Val, error) {
	switch c {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X':
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value character %q", c)
}

// FormatVals renders a slice of values as a compact pattern string such as
// "10x1".
func FormatVals(vs []Val) string {
	buf := make([]byte, len(vs))
	for i, v := range vs {
		switch v {
		case Zero:
			buf[i] = '0'
		case One:
			buf[i] = '1'
		default:
			buf[i] = 'x'
		}
	}
	return string(buf)
}

// ParseVals parses a pattern string such as "10x1" into values.
func ParseVals(s string) ([]Val, error) {
	vs := make([]Val, len(s))
	for i := 0; i < len(s); i++ {
		v, err := ParseVal(s[i])
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	return vs, nil
}

// CountBinary returns the number of fully specified values in vs.
func CountBinary(vs []Val) int {
	n := 0
	for _, v := range vs {
		if v.IsBinary() {
			n++
		}
	}
	return n
}

// CountX returns the number of unspecified values in vs.
func CountX(vs []Val) int {
	n := 0
	for _, v := range vs {
		if v == X {
			n++
		}
	}
	return n
}
