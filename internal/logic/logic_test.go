package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var allVals = []Val{Zero, One, X}

func TestValString(t *testing.T) {
	cases := map[Val]string{Zero: "0", One: "1", X: "x", Val(7): "Val(7)"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Val(%d).String() = %q, want %q", uint8(v), got, want)
		}
	}
}

func TestNot(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Errorf("Not truth table wrong: 0->%v 1->%v x->%v", Zero.Not(), One.Not(), X.Not())
	}
}

func TestIsBinary(t *testing.T) {
	if !Zero.IsBinary() || !One.IsBinary() || X.IsBinary() {
		t.Error("IsBinary wrong")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Error("FromBool wrong")
	}
}

func TestMerge(t *testing.T) {
	type mc struct {
		a, b, want Val
		conflict   bool
	}
	cases := []mc{
		{X, X, X, false},
		{X, Zero, Zero, false},
		{X, One, One, false},
		{Zero, X, Zero, false},
		{One, X, One, false},
		{Zero, Zero, Zero, false},
		{One, One, One, false},
		{Zero, One, X, true},
		{One, Zero, X, true},
	}
	for _, c := range cases {
		got, conflict := Merge(c.a, c.b)
		if conflict != c.conflict || (!conflict && got != c.want) {
			t.Errorf("Merge(%v,%v) = %v,%v; want %v,%v", c.a, c.b, got, conflict, c.want, c.conflict)
		}
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
		Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
		Const0: "CONST0", Const1: "CONST1",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), s)
		}
	}
	if Op(200).String() != "Op(200)" {
		t.Errorf("invalid op string = %q", Op(200).String())
	}
}

func TestOpValid(t *testing.T) {
	for op := Buf; op < numOps; op++ {
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
	}
	if Op(numOps).Valid() || Op(255).Valid() {
		t.Error("out-of-range op reported valid")
	}
}

func TestOpArity(t *testing.T) {
	if Const0.MinInputs() != 0 || Const0.MaxInputs() != 0 {
		t.Error("Const0 arity wrong")
	}
	if Not.MinInputs() != 1 || Not.MaxInputs() != 1 {
		t.Error("Not arity wrong")
	}
	if And.MinInputs() != 1 || And.MaxInputs() != -1 {
		t.Error("And arity wrong")
	}
}

func TestOpInverting(t *testing.T) {
	inv := map[Op]bool{
		Buf: false, Not: true, And: false, Nand: true,
		Or: false, Nor: true, Xor: false, Xnor: true,
		Const0: false, Const1: false,
	}
	for op, want := range inv {
		if op.Inverting() != want {
			t.Errorf("%v.Inverting() = %v, want %v", op, op.Inverting(), want)
		}
	}
}

// evalRef is a reference three-valued evaluation by enumerating all binary
// completions of the X inputs: the result is binary b iff every completion
// evaluates to b.
func evalRef(op Op, in []Val) Val {
	xs := []int{}
	for i, v := range in {
		if v == X {
			xs = append(xs, i)
		}
	}
	work := make([]Val, len(in))
	copy(work, in)
	var out Val
	first := true
	for m := 0; m < 1<<len(xs); m++ {
		for k, idx := range xs {
			work[idx] = FromBool(m&(1<<k) != 0)
		}
		v := evalBinary(op, work)
		if first {
			out, first = v, false
		} else if v != out {
			return X
		}
	}
	return out
}

// evalBinary evaluates a gate whose inputs are all binary.
func evalBinary(op Op, in []Val) Val {
	switch op {
	case Const0:
		return Zero
	case Const1:
		return One
	case Buf:
		return in[0]
	case Not:
		return in[0].Not()
	case And, Nand:
		out := One
		for _, v := range in {
			if v == Zero {
				out = Zero
				break
			}
		}
		if op == Nand {
			out = out.Not()
		}
		return out
	case Or, Nor:
		out := Zero
		for _, v := range in {
			if v == One {
				out = One
				break
			}
		}
		if op == Nor {
			out = out.Not()
		}
		return out
	case Xor, Xnor:
		parity := false
		for _, v := range in {
			if v == One {
				parity = !parity
			}
		}
		out := FromBool(parity)
		if op == Xnor {
			out = out.Not()
		}
		return out
	}
	panic("unreachable")
}

// enumInputs calls f with every combination of n three-valued inputs.
func enumInputs(n int, f func(in []Val)) {
	in := make([]Val, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			f(in)
			return
		}
		for _, v := range allVals {
			in[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func TestEvalExhaustiveAgainstReference(t *testing.T) {
	ops := []Op{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, op := range ops {
		maxN := 4
		if op == Buf || op == Not {
			maxN = 1
		}
		for n := 1; n <= maxN; n++ {
			enumInputs(n, func(in []Val) {
				got := Eval(op, in)
				want := evalRef(op, in)
				if got != want {
					t.Fatalf("Eval(%v, %v) = %v, want %v", op, in, got, want)
				}
			})
		}
	}
}

func TestEvalConst(t *testing.T) {
	if Eval(Const0, nil) != Zero || Eval(Const1, nil) != One {
		t.Error("constant evaluation wrong")
	}
}

func TestEvalPanicsOnInvalidOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval(invalid op) did not panic")
		}
	}()
	Eval(Op(99), []Val{Zero})
}

func TestInferInputsPanicsOnInvalidOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InferInputs(invalid op) did not panic")
		}
	}()
	InferInputs(Op(99), Zero, []Val{Zero})
}

// inferRef computes the reference forced values for InferInputs by
// enumeration: input i is forced to b iff some completion of the X inputs
// produces output out, and every completion producing out has input i = b.
// ok is false iff no completion produces out.
func inferRef(op Op, out Val, in []Val) (forced []Val, ok bool) {
	forced = make([]Val, len(in))
	for i := range forced {
		forced[i] = X
	}
	if out == X {
		return forced, true
	}
	xs := []int{}
	for i, v := range in {
		if v == X {
			xs = append(xs, i)
		}
	}
	work := make([]Val, len(in))
	seen := false
	value := make([]Val, len(in))
	for m := 0; m < 1<<len(xs); m++ {
		copy(work, in)
		for k, idx := range xs {
			work[idx] = FromBool(m&(1<<k) != 0)
		}
		if evalBinary(op, work) != out {
			continue
		}
		if !seen {
			copy(value, work)
			seen = true
			continue
		}
		for i := range work {
			if work[i] != value[i] {
				value[i] = X
			}
		}
	}
	if !seen {
		return forced, false
	}
	for _, idx := range xs {
		if value[idx].IsBinary() {
			forced[idx] = value[idx]
		}
	}
	return forced, true
}

// TestInferInputsSoundExhaustive checks that InferInputs never forces a
// value the reference does not force (soundness), and that conflicts are
// reported exactly when no completion exists.
func TestInferInputsSoundExhaustive(t *testing.T) {
	ops := []Op{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, op := range ops {
		maxN := 4
		if op == Buf || op == Not {
			maxN = 1
		}
		for n := 1; n <= maxN; n++ {
			enumInputs(n, func(in []Val) {
				for _, out := range []Val{Zero, One} {
					forced, ok := InferInputs(op, out, in)
					refForced, refOK := inferRef(op, out, in)
					if ok != refOK {
						t.Fatalf("InferInputs(%v, out=%v, %v) ok=%v, reference ok=%v",
							op, out, in, ok, refOK)
					}
					if !ok {
						return
					}
					for i := range forced {
						if forced[i] != X && forced[i] != refForced[i] {
							t.Fatalf("InferInputs(%v, out=%v, %v) forces in[%d]=%v; reference says %v",
								op, out, in, i, forced[i], refForced[i])
						}
					}
				}
			})
		}
	}
}

// TestInferInputsCompleteForPrimitive checks the single-pass rules are
// complete for AND/OR families and inverters: whenever the reference
// forces an unknown input, InferInputs forces it too. (For XOR with two or
// more unknowns nothing can be forced, so completeness holds trivially.)
func TestInferInputsCompleteForPrimitive(t *testing.T) {
	ops := []Op{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, op := range ops {
		maxN := 4
		if op == Buf || op == Not {
			maxN = 1
		}
		for n := 1; n <= maxN; n++ {
			enumInputs(n, func(in []Val) {
				for _, out := range []Val{Zero, One} {
					refForced, refOK := inferRef(op, out, in)
					if !refOK {
						return
					}
					forced, _ := InferInputs(op, out, in)
					for i := range refForced {
						if refForced[i] != X && forced[i] != refForced[i] {
							t.Fatalf("InferInputs(%v, out=%v, %v) misses forced in[%d]=%v (got %v)",
								op, out, in, i, refForced[i], forced[i])
						}
					}
				}
			})
		}
	}
}

func TestInferInputsXOutput(t *testing.T) {
	forced, ok := InferInputs(And, X, []Val{X, X})
	if !ok {
		t.Fatal("InferInputs with X output reported conflict")
	}
	for _, v := range forced {
		if v != X {
			t.Fatal("InferInputs with X output forced a value")
		}
	}
}

func TestInferInputsConst(t *testing.T) {
	if _, ok := InferInputs(Const0, Zero, nil); !ok {
		t.Error("Const0 out=0 should be consistent")
	}
	if _, ok := InferInputs(Const0, One, nil); ok {
		t.Error("Const0 out=1 should conflict")
	}
	if _, ok := InferInputs(Const1, One, nil); !ok {
		t.Error("Const1 out=1 should be consistent")
	}
	if _, ok := InferInputs(Const1, Zero, nil); ok {
		t.Error("Const1 out=0 should conflict")
	}
}

// TestEvalMonotone checks the fundamental monotonicity property of
// three-valued simulation: specifying an X input can never change a binary
// output value, only refine X outputs.
func TestEvalMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []Op{And, Nand, Or, Nor, Xor, Xnor}
	for trial := 0; trial < 2000; trial++ {
		op := ops[rng.Intn(len(ops))]
		n := 1 + rng.Intn(5)
		in := make([]Val, n)
		for i := range in {
			in[i] = allVals[rng.Intn(3)]
		}
		base := Eval(op, in)
		// Refine one X input, if any.
		for i, v := range in {
			if v != X {
				continue
			}
			for _, b := range []Val{Zero, One} {
				refined := make([]Val, n)
				copy(refined, in)
				refined[i] = b
				got := Eval(op, refined)
				if base.IsBinary() && got != base {
					t.Fatalf("Eval(%v, %v)=%v but refining in[%d]=%v gives %v",
						op, in, base, i, b, got)
				}
			}
		}
	}
}

func TestParseVal(t *testing.T) {
	for c, want := range map[byte]Val{'0': Zero, '1': One, 'x': X, 'X': X} {
		got, err := ParseVal(c)
		if err != nil || got != want {
			t.Errorf("ParseVal(%q) = %v,%v; want %v", c, got, err, want)
		}
	}
	if _, err := ParseVal('?'); err == nil {
		t.Error("ParseVal('?') should fail")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		vs := make([]Val, len(raw))
		for i, b := range raw {
			vs[i] = Val(b % 3)
		}
		s := FormatVals(vs)
		back, err := ParseVals(s)
		if err != nil || len(back) != len(vs) {
			return false
		}
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValsError(t *testing.T) {
	if _, err := ParseVals("10?1"); err == nil {
		t.Error("ParseVals with bad character should fail")
	}
}

func TestCounts(t *testing.T) {
	vs := []Val{Zero, One, X, X, One}
	if CountBinary(vs) != 3 {
		t.Errorf("CountBinary = %d, want 3", CountBinary(vs))
	}
	if CountX(vs) != 2 {
		t.Errorf("CountX = %d, want 2", CountX(vs))
	}
}

// TestMergeCommutativeAssociative is a property test: Merge is commutative,
// and when no conflicts arise it is associative with identity X.
func TestMergeCommutativeAssociative(t *testing.T) {
	for _, a := range allVals {
		for _, b := range allVals {
			ab, cab := Merge(a, b)
			ba, cba := Merge(b, a)
			if ab != ba || cab != cba {
				t.Fatalf("Merge not commutative for %v,%v", a, b)
			}
			for _, c := range allVals {
				l, cl := Merge(ab, c)
				r0, cr0 := Merge(b, c)
				r, cr := Merge(a, r0)
				if cab || cl || cr0 || cr {
					continue // conflicts collapse the comparison
				}
				if l != r {
					t.Fatalf("Merge not associative for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}
