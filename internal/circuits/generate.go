package circuits

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// GenParams parameterizes the synthetic ISCAS-like circuit generator.
//
// The generator builds a random Huffman machine: a combinational cloud of
// AND/OR family gates (with a sprinkling of inverters and parity gates)
// over the primary inputs and flip-flop outputs, with flip-flop D inputs
// and primary outputs drawn from the cloud.
//
// FreeFFs flip-flops are wired into a pure parity feedback subnet
// (toggle/XOR rings). Three-valued simulation can never resolve such
// state variables from the all-X initial state, while state expansion
// resolves them immediately — the structural source of the pessimism the
// multiple observation time approach removes. The remaining flip-flops
// synchronize with high probability under random input sequences, and
// faults in their synchronizing logic yield faulty machines that fail to
// initialize — the main source of MOT-only detections in the paper's
// benchmarks.
type GenParams struct {
	Name    string
	Inputs  int
	Outputs int
	FFs     int
	// FreeFFs is the number of flip-flops (out of FFs) wired into parity
	// feedback subnets that never initialize under three-valued
	// simulation. Must be less than or equal to FFs.
	FreeFFs int
	Gates   int
	Seed    int64
}

// Validate checks the parameters for consistency.
func (p GenParams) Validate() error {
	switch {
	case p.Inputs < 1:
		return fmt.Errorf("circuits: %s: need at least one input", p.Name)
	case p.Outputs < 1:
		return fmt.Errorf("circuits: %s: need at least one output", p.Name)
	case p.FFs < 0 || p.FreeFFs < 0 || p.FreeFFs > p.FFs:
		return fmt.Errorf("circuits: %s: invalid flip-flop counts %d/%d", p.Name, p.FreeFFs, p.FFs)
	case p.Gates < p.FFs-p.FreeFFs+p.Outputs:
		return fmt.Errorf("circuits: %s: need at least %d gates for flip-flop inputs and outputs",
			p.Name, p.FFs-p.FreeFFs+p.Outputs)
	}
	return nil
}

// opWeights biases gate selection toward the AND/OR family, matching the
// gate mix of the ISCAS-89 benchmarks.
var opWeights = []struct {
	op logic.Op
	w  int
}{
	{logic.And, 22},
	{logic.Nand, 22},
	{logic.Or, 22},
	{logic.Nor, 22},
	{logic.Not, 6},
	{logic.Buf, 2},
	{logic.Xor, 2},
	{logic.Xnor, 2},
}

func pickOp(rng *rand.Rand) logic.Op {
	total := 0
	for _, e := range opWeights {
		total += e.w
	}
	r := rng.Intn(total)
	for _, e := range opWeights {
		if r < e.w {
			return e.op
		}
		r -= e.w
	}
	return logic.And
}

// Generate builds a synthetic circuit from the parameters. Generation is
// fully deterministic in p (including p.Seed).
func Generate(p GenParams) (*netlist.Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := netlist.NewBuilder(p.Name)

	// Primary inputs.
	pool := make([]netlist.NodeID, 0, p.Inputs+p.FFs+p.Gates)
	for i := 0; i < p.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}

	// Flip-flops. Free flip-flops (the first FreeFFs) get parity feedback;
	// their Q nodes are kept out of the general pool so their unknowns
	// poison only a few, deliberately chosen places.
	var freeQ, syncQ []netlist.NodeID
	for k := 0; k < p.FFs; k++ {
		q := b.FlipFlop(fmt.Sprintf("q%d", k), b.Signal(fmt.Sprintf("d%d", k)))
		if k < p.FreeFFs {
			freeQ = append(freeQ, q)
		} else {
			syncQ = append(syncQ, q)
			pool = append(pool, q)
		}
	}
	// Parity feedback for free flip-flops: d_k = NOT(q_k) for a lone free
	// flip-flop, else XOR/XNOR rings.
	for k := 0; k < p.FreeFFs; k++ {
		name := fmt.Sprintf("d%d", k)
		if p.FreeFFs == 1 {
			b.Gate(logic.Not, name, freeQ[0])
			continue
		}
		op := logic.Xor
		if k%2 == 1 {
			op = logic.Xnor
		}
		b.Gate(op, name, freeQ[k], freeQ[(k+1)%p.FreeFFs])
	}

	// Sink-first input selection: tracking unconsumed signals and
	// preferring them as gate inputs keeps nearly every gate on a path to
	// a primary output or flip-flop input. Without it a random DAG leaves
	// large dead regions whose faults are structurally undetectable,
	// which no real benchmark exhibits.
	fanout := map[netlist.NodeID]int{}
	sinks := make([]netlist.NodeID, len(pool))
	copy(sinks, pool)
	pickSink := func() (netlist.NodeID, bool) {
		for len(sinks) > 0 {
			i := rng.Intn(len(sinks))
			n := sinks[i]
			if fanout[n] == 0 {
				return n, true
			}
			sinks[i] = sinks[len(sinks)-1]
			sinks = sinks[:len(sinks)-1]
		}
		return 0, false
	}
	// pick selects a gate input: half the time an unconsumed signal, else
	// a recent node (locality gives the cloud depth), else any node.
	pick := func() netlist.NodeID {
		n := len(pool)
		if n == 1 {
			return pool[0]
		}
		switch r := rng.Intn(10); {
		case r < 5:
			if s, ok := pickSink(); ok {
				return s
			}
			fallthrough
		case r < 8:
			window := 40
			if window > n {
				window = n
			}
			return pool[n-1-rng.Intn(window)]
		default:
			return pool[rng.Intn(n)]
		}
	}

	// Decide which cloud gate positions become flip-flop D inputs and
	// which become primary outputs. D inputs and outputs are drawn from
	// the last 60% of the cloud so they depend on deep logic.
	nSync := p.FFs - p.FreeFFs
	special := map[int]string{}
	lo := p.Gates * 2 / 5
	span := p.Gates - lo
	if span < nSync+p.Outputs {
		lo = 0
		span = p.Gates
	}
	perm := rng.Perm(span)
	for k := 0; k < nSync; k++ {
		special[lo+perm[k]] = fmt.Sprintf("d%d", p.FreeFFs+k)
	}
	outIdx := make([]int, p.Outputs)
	for j := 0; j < p.Outputs; j++ {
		outIdx[j] = lo + perm[nSync+j]
	}

	// Weave each free flip-flop's Q into a couple of cloud gates so its
	// unknown value can reach outputs when (and only when) the masking
	// logic lets it through.
	freeUse := map[int][]netlist.NodeID{}
	for _, q := range freeQ {
		for n := 0; n < 2; n++ {
			freeUse[rng.Intn(p.Gates)] = append(freeUse[rng.Intn(p.Gates)], q)
		}
	}

	isOutput := map[int]bool{}
	for _, idx := range outIdx {
		isOutput[idx] = true
	}
	// taint marks signals structurally downstream of a free flip-flop
	// within the current frame; such signals may carry X forever in the
	// fault-free machine. Output cones avoid them so the fault-free
	// response stays specified — the precondition for MOT detections
	// (N_out counts outputs specified fault-free but unspecified faulty).
	taint := map[netlist.NodeID]bool{}
	for _, q := range freeQ {
		taint[q] = true
	}
	// pickClean samples an untainted pool signal, falling back to any
	// signal after a bounded number of attempts.
	pickClean := func() netlist.NodeID {
		for attempt := 0; attempt < 8; attempt++ {
			n := pool[rng.Intn(len(pool))]
			if !taint[n] {
				return n
			}
		}
		return pool[rng.Intn(len(pool))]
	}
	// pickOutputOp biases primary-output cones toward observable
	// functions (parity and OR mixes), mirroring the designed output
	// logic of real benchmarks; a pure random AND/OR cloud loses
	// observability exponentially with depth.
	pickOutputOp := func() logic.Op {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			return logic.Xor
		case 4, 5:
			return logic.Or
		case 6, 7:
			return logic.Nand
		default:
			return logic.Nor
		}
	}
	names := make([]string, p.Gates)
	for i := 0; i < p.Gates; i++ {
		op := pickOp(rng)
		_, isSyncD := special[i]
		if isOutput[i] {
			op = pickOutputOp()
		}
		if isSyncD {
			// Flip-flop D gates get a controlling-capable function with a
			// direct primary-input operand — the reset/load structure real
			// sequential benchmarks have. Random patterns then initialize
			// the flip-flop within a few frames, while a fault in this
			// logic can block initialization (the main source of MOT-only
			// detections in the paper's benchmarks).
			if rng.Intn(2) == 0 {
				op = logic.And
			} else {
				op = logic.Nor
			}
		}
		extra := freeUse[i]
		if len(extra) > 0 && (op == logic.Not || op == logic.Buf) {
			op = logic.And // give the free-Q value a masking companion
		}
		var fanin int
		switch {
		case op == logic.Not || op == logic.Buf:
			fanin = 1
		case rng.Intn(4) == 0:
			fanin = 3
		default:
			fanin = 2
		}
		ins := make([]netlist.NodeID, 0, fanin+len(extra))
		ins = append(ins, extra...)
		if isSyncD {
			ins = append(ins, pool[rng.Intn(p.Inputs)])
			if fanin < 2 {
				fanin = 2
			}
		}
		for len(ins) < fanin {
			if isOutput[i] {
				// Output cones sample untainted signals from the whole
				// cloud for observability.
				ins = append(ins, pickClean())
			} else {
				ins = append(ins, pick())
			}
		}
		name, ok := special[i]
		if !ok {
			name = fmt.Sprintf("g%d", i)
		}
		names[i] = name
		out := b.Gate(op, name, ins...)
		for _, in := range ins {
			fanout[in]++
			if taint[in] {
				taint[out] = true
			}
		}
		if !ok && !isOutput[i] {
			// Non-special gates start unconsumed; flip-flop D gates and
			// output gates are consumed by their roles.
			sinks = append(sinks, out)
		}
		pool = append(pool, out)
	}
	for _, idx := range outIdx {
		b.Output(names[idx])
	}
	return b.Build()
}

// MustGenerate is Generate for known-good parameters (the built-in suite);
// it panics on error.
func MustGenerate(p GenParams) *netlist.Circuit {
	c, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return c
}
