// Package circuits provides the benchmark circuits used by the
// reproduction: the real ISCAS-89 s27 (given in full in Figure 1 of the
// paper), reconstructions of the paper's illustrative circuits, and a
// seeded generator of ISCAS-like synthetic circuits standing in for the
// benchmark netlists that are not redistributable here (see DESIGN.md §4).
package circuits

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// S27Bench is the ISCAS-89 s27 netlist: 4 primary inputs, 1 primary
// output, 3 flip-flops, 10 gates.
const S27Bench = `
# ISCAS-89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// S27 returns the compiled s27 circuit.
func S27() *netlist.Circuit {
	return mustParse("s27", S27Bench)
}

// S27Figure1Pattern is the input pattern used in the paper's Figures 1-3
// walkthrough, expressed over the standard s27 input order (G0 G1 G2 G3).
//
// The paper writes the pattern as "(1001)" in its own internal line
// numbering of an expanded netlist. On the standard s27 netlist, the
// unique input pattern under which — with a fully unspecified state — the
// primary output and all three next-state variables are unspecified
// (Figure 1's defining property) is G0=1 G1=0 G2=1 G3=1. All Figure 2 and
// Figure 3 specified-value counts are reproduced exactly under this
// pattern; see the circuits package tests.
const S27Figure1Pattern = "1011"

// S27FFIndex maps the paper's figure terminology to flip-flop indices in
// the compiled s27: "state variable 5" is G5 (index 0), "state variable 6"
// is G6 (index 1), and "state variable 7" is G7 (index 2).
func S27FFIndex(paperLine int) (int, error) {
	switch paperLine {
	case 5:
		return 0, nil
	case 6:
		return 1, nil
	case 7:
		return 2, nil
	}
	return 0, fmt.Errorf("circuits: s27 has no state variable named line %d", paperLine)
}

// mustParse compiles an embedded netlist; the sources are compile-time
// constants validated by tests, so failure is a programming error.
func mustParse(name, src string) *netlist.Circuit {
	c, err := bench.ParseString(name, src)
	if err != nil {
		panic(fmt.Sprintf("circuits: embedded netlist %s: %v", name, err))
	}
	return c
}

// Fig4Bench reconstructs the circuit of Figure 4 (the backward-implication
// conflict example). The paper's figure gives line numbers 1 (the primary
// input), 2 (the present-state variable), 3 and 4 (AND gates forced to 0
// by input 0), 5 and 6 (OR gates), and 11 (the next-state variable, with
// an inverter in between); the reconstruction preserves the published
// behaviour exactly:
//
//   - applying input 0 sets only lines 3 and 4 to 0;
//   - asserting line 11 = 1 forces line 5 = 1 and line 6 = 0, which imply
//     the two opposite values on line 2 — a conflict;
//   - asserting line 11 = 0 implies nothing, so after expansion of the
//     present-state variable at time 1 only the single state 0 remains.
const Fig4Bench = `
# Reconstruction of DAC'97 Figure 4
INPUT(L1)
OUTPUT(L9)

L2 = DFF(L11)

L8 = NOT(L2)
L3 = AND(L1, L2)
L4 = AND(L1, L8)
L5 = OR(L3, L2)
L6 = OR(L4, L2)
L9 = NOT(L6)
L11 = AND(L5, L9)
`

// Fig4 returns the compiled Figure 4 circuit.
func Fig4() *netlist.Circuit {
	return mustParse("fig4", Fig4Bench)
}

// IntroBench is a minimal circuit realizing the paper's introductory
// example of the multiple observation time approach: with a held at 0 the
// fault-free output is a constant 0, while under the branch fault
// a->o stuck-at-1 the faulty output equals the free-running toggle q —
// (010...) or (101...) depending on the unknown initial state. Conventional
// three-valued simulation sees only x on the faulty output; the restricted
// MOT approach detects the fault for every initial state.
const IntroBench = `
# MOT introduction example
INPUT(a)
OUTPUT(o)
q = DFF(d)
d = NOT(q)
o = AND(a, q)
`

// Intro returns the compiled introduction-example circuit.
func Intro() *netlist.Circuit {
	return mustParse("intro", IntroBench)
}

// IntroFault returns the branch fault a->o stuck-at-1 used by the
// introduction example.
func IntroFault(c *netlist.Circuit) (netlist.NodeID, netlist.GateID) {
	a, _ := c.NodeByName("a")
	o, _ := c.NodeByName("o")
	return a, c.Nodes[o].Driver
}

// Table1Bench is a two-flip-flop, two-output circuit used to demonstrate
// the state-expansion mechanics of Table 1: under the stem fault a
// stuck-at-1 with a held at 0, both outputs observe the free-running state
// variables, producing an unspecified conventional response that state
// expansion resolves branch by branch.
const Table1Bench = `
# Table 1 style expansion demo
INPUT(a)
OUTPUT(o1)
OUTPUT(o2)
q1 = DFF(d1)
q2 = DFF(d2)
d1 = NOT(q1)
d2 = XOR(q1, q2)
o1 = AND(a, q1)
o2 = AND(a, q2)
`

// Table1 returns the compiled Table-1 demo circuit.
func Table1() *netlist.Circuit {
	return mustParse("table1", Table1Bench)
}
