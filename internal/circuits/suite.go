package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// PaperRow holds the numbers the paper reports for one circuit in
// Table 2 (fault counts) and Table 3 (backward-implication counters), for
// paper-vs-measured reporting. Extra* values of -1 mean "NA" (the [4]
// procedure could not be applied to the circuit).
type PaperRow struct {
	TotalFaults   int
	Conventional  int
	BaselineTotal int // procedure of [4]; -1 for NA
	BaselineExtra int // -1 for NA
	ProposedTotal int
	ProposedExtra int
	// Table 3 averages over faults detected by the proposed method.
	AvgDetect float64
	AvgConf   float64
	AvgExtra  float64
}

// SuiteEntry describes one synthetic stand-in circuit for a benchmark the
// paper evaluates (DESIGN.md §4 documents the substitution).
type SuiteEntry struct {
	// Name is the suite circuit name ("sg" + the paper's circuit name).
	Name string
	// PaperName is the circuit the entry stands in for.
	PaperName string
	Params    GenParams
	// SeqLen is the random test-sequence length used for the Table 2
	// experiment.
	SeqLen int
	// SeqSeed seeds the random test sequence.
	SeqSeed int64
	// Paper holds the published results for the original circuit.
	Paper PaperRow
	// Scaled reports that the synthetic circuit is smaller than the
	// original (the largest benchmarks are scaled to laptop runtime).
	Scaled bool
}

// Suite returns the thirteen-entry synthetic benchmark suite mirroring
// Table 2 of the paper. Entries are ordered as in the paper.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{
			Name: "sg208", PaperName: "s208",
			Params: GenParams{Name: "sg208", Inputs: 10, Outputs: 1, FFs: 8, FreeFFs: 2, Gates: 96, Seed: 115},
			SeqLen: 64, SeqSeed: 1208,
			Paper: PaperRow{215, 73, 86, 13, 86, 13, 19.54, 12.00, 54.54},
		},
		{
			Name: "sg298", PaperName: "s298",
			Params: GenParams{Name: "sg298", Inputs: 3, Outputs: 6, FFs: 14, FreeFFs: 2, Gates: 119, Seed: 2985},
			SeqLen: 64, SeqSeed: 1298,
			Paper: PaperRow{308, 143, 150, 7, 150, 7, 6.71, 36.57, 60.71},
		},
		{
			Name: "sg344", PaperName: "s344",
			Params: GenParams{Name: "sg344", Inputs: 9, Outputs: 11, FFs: 15, FreeFFs: 2, Gates: 160, Seed: 3441},
			SeqLen: 64, SeqSeed: 1344,
			Paper: PaperRow{342, 314, 320, 6, 320, 6, 281.67, 0.00, 304.33},
		},
		{
			Name: "sg420", PaperName: "s420",
			Params: GenParams{Name: "sg420", Inputs: 18, Outputs: 1, FFs: 16, FreeFFs: 3, Gates: 196, Seed: 203},
			SeqLen: 64, SeqSeed: 1420,
			Paper: PaperRow{430, 125, 150, 25, 150, 25, 24.88, 7.60, 57.60},
		},
		{
			Name: "sg641", PaperName: "s641",
			Params: GenParams{Name: "sg641", Inputs: 35, Outputs: 24, FFs: 19, FreeFFs: 2, Gates: 379, Seed: 6413},
			SeqLen: 64, SeqSeed: 1641,
			Paper: PaperRow{467, 343, 347, 4, 347, 4, 234.25, 0.00, 400.75},
		},
		{
			Name: "sg713", PaperName: "s713",
			Params: GenParams{Name: "sg713", Inputs: 35, Outputs: 23, FFs: 19, FreeFFs: 2, Gates: 393, Seed: 7133},
			SeqLen: 64, SeqSeed: 1713,
			Paper: PaperRow{581, 415, 419, 4, 419, 4, 178.75, 0.00, 219.75},
		},
		{
			Name: "sg1423", PaperName: "s1423",
			Params: GenParams{Name: "sg1423", Inputs: 17, Outputs: 5, FFs: 74, FreeFFs: 3, Gates: 657, Seed: 1421},
			SeqLen: 64, SeqSeed: 11423,
			Paper: PaperRow{1515, 331, 338, 7, 338, 7, 10.29, 91.71, 195.71},
		},
		{
			Name: "sg5378", PaperName: "s5378",
			Params: GenParams{Name: "sg5378", Inputs: 35, Outputs: 49, FFs: 164, FreeFFs: 4, Gates: 2779, Seed: 5381},
			SeqLen: 64, SeqSeed: 15378,
			Paper: PaperRow{4603, 2352, 2352, 0, 2363, 11, 616.18, 142.00, 1082.27},
		},
		{
			Name: "sg15850", PaperName: "s15850",
			Params: GenParams{Name: "sg15850", Inputs: 77, Outputs: 150, FFs: 280, FreeFFs: 4, Gates: 4200, Seed: 15850},
			SeqLen: 48, SeqSeed: 115850,
			Paper:  PaperRow{11725, 85, -1, -1, 87, 2, 114.00, 89.00, 264.50},
			Scaled: true,
		},
		{
			Name: "sg35932", PaperName: "s35932",
			Params: GenParams{Name: "sg35932", Inputs: 35, Outputs: 320, FFs: 400, FreeFFs: 4, Gates: 5600, Seed: 35932},
			SeqLen: 48, SeqSeed: 135932,
			Paper:  PaperRow{39094, 22357, -1, -1, 22367, 10, 5958.00, 0.00, 6711.60},
			Scaled: true,
		},
		{
			Name: "sgam2910", PaperName: "am2910",
			Params: GenParams{Name: "sgam2910", Inputs: 20, Outputs: 16, FFs: 87, FreeFFs: 3, Gates: 1200, Seed: 2911},
			SeqLen: 64, SeqSeed: 12910,
			Paper:  PaperRow{2573, 1234, 1259, 25, 1272, 38, 225.79, 8.53, 331.29},
			Scaled: true,
		},
		{
			Name: "sgmp1_16", PaperName: "mp1_16",
			Params: GenParams{Name: "sgmp1_16", Inputs: 18, Outputs: 9, FFs: 32, FreeFFs: 2, Gates: 700, Seed: 116},
			SeqLen: 64, SeqSeed: 1116,
			Paper: PaperRow{1708, 1259, 1278, 19, 1280, 21, 2038.57, 25.38, 2096.05},
		},
		{
			Name: "sgmp2", PaperName: "mp2",
			Params: GenParams{Name: "sgmp2", Inputs: 32, Outputs: 16, FFs: 60, FreeFFs: 3, Gates: 1800, Seed: 1002},
			SeqLen: 64, SeqSeed: 11002,
			Paper:  PaperRow{10477, 666, 670, 4, 676, 10, 2996.50, 50.10, 3449.00},
			Scaled: true,
		},
	}
}

// SuiteEntryByName looks up a suite entry by its name or by the paper
// circuit name it stands in for.
func SuiteEntryByName(name string) (SuiteEntry, error) {
	for _, e := range Suite() {
		if e.Name == name || e.PaperName == name {
			return e, nil
		}
	}
	return SuiteEntry{}, fmt.Errorf("circuits: no suite entry named %q", name)
}

// Build generates the entry's circuit.
func (e SuiteEntry) Build() *netlist.Circuit {
	return MustGenerate(e.Params)
}

// ByName returns any built-in circuit by name: "s27", "fig4", "intro",
// "table1", or a suite entry name.
func ByName(name string) (*netlist.Circuit, error) {
	switch name {
	case "s27":
		return S27(), nil
	case "fig4":
		return Fig4(), nil
	case "intro":
		return Intro(), nil
	case "table1":
		return Table1(), nil
	}
	e, err := SuiteEntryByName(name)
	if err != nil {
		return nil, err
	}
	return e.Build(), nil
}

// Names lists every circuit name accepted by ByName.
func Names() []string {
	names := []string{"s27", "fig4", "intro", "table1"}
	for _, e := range Suite() {
		names = append(names, e.Name)
	}
	return names
}
