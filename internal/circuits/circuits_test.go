package circuits

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// faultOf builds the intro example's branch fault: input pin 0 of the
// output AND gate stuck at 1.
func faultOf(node netlist.NodeID, gate netlist.GateID) fault.Fault {
	return fault.Fault{Node: node, Gate: gate, Pin: 0, Stuck: logic.One}
}

func TestS27Structure(t *testing.T) {
	c := S27()
	st := c.Stats()
	if st.Inputs != 4 || st.Outputs != 1 || st.FFs != 3 || st.Gates != 10 {
		t.Fatalf("s27 stats wrong: %v", st)
	}
}

// figure1Frame evaluates the Figure 1 frame: pattern S27Figure1Pattern
// with a fully unspecified state.
func figure1Frame(t *testing.T, c *netlist.Circuit) []logic.Val {
	t.Helper()
	pat, err := logic.ParseVals(S27Figure1Pattern)
	if err != nil {
		t.Fatal(err)
	}
	ps := []logic.Val{logic.X, logic.X, logic.X}
	vals := make([]logic.Val, c.NumNodes())
	seqsim.EvalFrame(c, pat, ps, nil, vals)
	return vals
}

// TestS27Figure1 checks the defining property of Figure 1: under the
// walkthrough pattern with unspecified state, conventional simulation
// leaves the primary output and all three next-state variables
// unspecified.
func TestS27Figure1(t *testing.T) {
	c := S27()
	vals := figure1Frame(t, c)
	if v := vals[c.Outputs[0]]; v != logic.X {
		t.Errorf("primary output = %v, want x", v)
	}
	for i, ff := range c.FFs {
		if v := vals[ff.D]; v != logic.X {
			t.Errorf("next-state variable %d (%s) = %v, want x", i, c.NodeName(ff.D), v)
		}
	}
}

// TestS27Figure1PatternUnique verifies the input-pattern remapping claim
// in the S27Figure1Pattern documentation: the walkthrough pattern is the
// only input pattern with the Figure 1 property.
func TestS27Figure1PatternUnique(t *testing.T) {
	c := S27()
	ps := []logic.Val{logic.X, logic.X, logic.X}
	vals := make([]logic.Val, c.NumNodes())
	var matches []string
	for m := 0; m < 16; m++ {
		pat := make([]logic.Val, 4)
		for i := range pat {
			pat[i] = logic.FromBool(m&(1<<uint(3-i)) != 0)
		}
		seqsim.EvalFrame(c, pat, ps, nil, vals)
		allX := vals[c.Outputs[0]] == logic.X
		for _, ff := range c.FFs {
			allX = allX && vals[ff.D] == logic.X
		}
		if allX {
			matches = append(matches, logic.FormatVals(pat))
		}
	}
	if len(matches) != 1 || matches[0] != S27Figure1Pattern {
		t.Fatalf("Figure-1 patterns = %v, want exactly [%s]", matches, S27Figure1Pattern)
	}
}

// expansionCount performs state expansion of flip-flop ff at the Figure 1
// frame and returns the total number of specified next-state and output
// values across the two expanded branches (the paper's figure-of-merit in
// Figures 2 and 3).
func expansionCount(t *testing.T, c *netlist.Circuit, ffIdx int) int {
	t.Helper()
	pat, _ := logic.ParseVals(S27Figure1Pattern)
	count := 0
	for _, alpha := range []logic.Val{logic.Zero, logic.One} {
		ps := []logic.Val{logic.X, logic.X, logic.X}
		ps[ffIdx] = alpha
		vals := make([]logic.Val, c.NumNodes())
		seqsim.EvalFrame(c, pat, ps, nil, vals)
		if vals[c.Outputs[0]].IsBinary() {
			count++
		}
		for _, ff := range c.FFs {
			if vals[ff.D].IsBinary() {
				count++
			}
		}
	}
	return count
}

// TestS27Figure2 checks the specified-value counts of Figure 2: expanding
// state variable 7 at time 0 yields five specified next-state/output
// values, state variable 5 yields three, and state variable 6 yields none.
func TestS27Figure2(t *testing.T) {
	c := S27()
	want := map[int]int{7: 5, 5: 3, 6: 0}
	for paperLine, wantCount := range want {
		idx, err := S27FFIndex(paperLine)
		if err != nil {
			t.Fatal(err)
		}
		if got := expansionCount(t, c, idx); got != wantCount {
			t.Errorf("expansion of state variable %d: %d specified values, want %d",
				paperLine, got, wantCount)
		}
	}
	if _, err := S27FFIndex(4); err == nil {
		t.Error("S27FFIndex(4) should fail")
	}
}

// TestS27Figure3 checks Figure 3: backward implication of state variable 6
// at time 1 (assert its next-state variable at time 0) yields a total of
// seven specified next-state/output values at time 0 across the two
// branches, with the primary output and one next-state variable fully
// specified and another partially specified.
func TestS27Figure3(t *testing.T) {
	c := S27()
	idx, _ := S27FFIndex(6)
	base := figure1Frame(t, c)
	perBranch := map[logic.Val][]logic.Val{}
	total := 0
	for _, alpha := range []logic.Val{logic.Zero, logic.One} {
		fr := implic.New(c, nil, base)
		if !fr.AssignNextState(idx, alpha) || !fr.ImplyTwoPass() {
			t.Fatalf("unexpected conflict for alpha=%v", alpha)
		}
		vals := []logic.Val{fr.Output(0)}
		for i := range c.FFs {
			vals = append(vals, fr.NextState(i))
		}
		perBranch[alpha] = vals
		total += logic.CountBinary(vals)
	}
	if total != 7 {
		t.Fatalf("backward implication of state variable 6 at time 1: %d specified values, want 7\n0-branch: %v\n1-branch: %v",
			total, perBranch[logic.Zero], perBranch[logic.One])
	}
	// "The primary output ... become(s) fully specified": binary in both
	// branches.
	if !perBranch[logic.Zero][0].IsBinary() || !perBranch[logic.One][0].IsBinary() {
		t.Error("primary output should be specified in both branches")
	}
	// Exactly one next-state variable fully specified (both branches) and
	// one partially specified (one branch), besides the asserted one.
	full, partial := 0, 0
	for i := 1; i <= 3; i++ {
		z := perBranch[logic.Zero][i].IsBinary()
		o := perBranch[logic.One][i].IsBinary()
		switch {
		case z && o:
			full++
		case z || o:
			partial++
		}
	}
	// The asserted next-state variable itself is fully specified, plus the
	// paper's "next-state variable 25": 2 fully, 1 partially.
	if full != 2 || partial != 1 {
		t.Errorf("next-state specification pattern: %d full, %d partial; want 2 full, 1 partial", full, partial)
	}
}

// TestS27BackwardBeatsForwardExpansion reproduces the paper's headline
// comparison for the walkthrough: backward implication of state variable 6
// at time 1 (7 values) beats the best time-0 expansion (5 values).
func TestS27BackwardBeatsForwardExpansion(t *testing.T) {
	c := S27()
	best := 0
	for _, line := range []int{5, 6, 7} {
		idx, _ := S27FFIndex(line)
		if n := expansionCount(t, c, idx); n > best {
			best = n
		}
	}
	if best != 5 {
		t.Fatalf("best time-0 expansion = %d specified values, want 5", best)
	}
}

// TestFig4Conflict checks the Figure 4 behaviour: with input 0, asserting
// the next-state variable to 1 produces a conflict (so the present-state
// variable at time 1 can only be 0), while asserting 0 is consistent.
func TestFig4Conflict(t *testing.T) {
	c := Fig4()
	pat, _ := logic.ParseVals("0")
	ps := []logic.Val{logic.X}
	base := make([]logic.Val, c.NumNodes())
	seqsim.EvalFrame(c, pat, ps, nil, base)

	// "Setting line 1 to 0 implies only that lines 3 and 4 are set to 0."
	l3, _ := c.NodeByName("L3")
	l4, _ := c.NodeByName("L4")
	if base[l3] != logic.Zero || base[l4] != logic.Zero {
		t.Fatalf("L3=%v L4=%v, want 0 0", base[l3], base[l4])
	}
	specified := 0
	for n, v := range base {
		if c.Nodes[n].Kind == netlist.KindGate && v.IsBinary() {
			specified++
		}
	}
	if specified != 2 {
		t.Errorf("%d specified gate values, want exactly 2 (lines 3 and 4)", specified)
	}

	one := implic.New(c, nil, base)
	if one.AssignNextState(0, logic.One) && one.ImplyTwoPass() {
		t.Fatal("asserting next state 1 should conflict")
	}
	zero := implic.New(c, nil, base)
	if !(zero.AssignNextState(0, logic.Zero) && zero.ImplyTwoPass()) {
		t.Fatal("asserting next state 0 should be consistent")
	}
}

// TestIntroExample checks the introduction scenario: fault-free output is
// the constant 0 under a=0, while the faulty output under the branch
// fault a->o stuck-at-1 is x conventionally but differs from 0 for every
// binary initial state.
func TestIntroExample(t *testing.T) {
	c := Intro()
	s := seqsim.New(c)
	T, err := seqsim.ParseSequence([]string{"0", "0", "0"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.FaultFree(T)
	if err != nil {
		t.Fatal(err)
	}
	for u := range T {
		if good.Outputs[u][0] != logic.Zero {
			t.Fatalf("fault-free output at %d = %v, want 0", u, good.Outputs[u][0])
		}
	}
	// The faulty machine output is x under conventional simulation.
	node, gate := IntroFault(c)
	f := faultOf(node, gate)
	bad, err := s.Run(T, &f, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seqsim.FirstDetection(good, bad); ok {
		t.Fatal("conventional simulation should not detect the intro fault")
	}
	for u := range T {
		if bad.Outputs[u][0] != logic.X {
			t.Fatalf("faulty output at %d = %v, want x", u, bad.Outputs[u][0])
		}
	}
	// Every binary initial state yields a detection at some time unit.
	for _, init := range []logic.Val{logic.Zero, logic.One} {
		st := []logic.Val{init}
		vals := make([]logic.Val, c.NumNodes())
		detected := false
		for u := range T {
			seqsim.EvalFrame(c, T[u], st, &f, vals)
			if vals[c.Outputs[0]].IsBinary() && vals[c.Outputs[0]] != logic.Zero {
				detected = true
			}
			st = []logic.Val{vals[c.FFs[0].D]}
		}
		if !detected {
			t.Errorf("initial state %v does not lead to detection", init)
		}
	}
}

func TestTable1CircuitBuilds(t *testing.T) {
	c := Table1()
	if c.NumFFs() != 2 || c.NumOutputs() != 2 {
		t.Fatal("table1 circuit has wrong shape")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenParams{
		{Name: "noIn", Inputs: 0, Outputs: 1, Gates: 5},
		{Name: "noOut", Inputs: 1, Outputs: 0, Gates: 5},
		{Name: "badFF", Inputs: 1, Outputs: 1, FFs: 2, FreeFFs: 3, Gates: 10},
		{Name: "small", Inputs: 1, Outputs: 4, FFs: 4, FreeFFs: 0, Gates: 5},
	}
	for _, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate(%s) should fail", p.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Name: "det", Inputs: 5, Outputs: 3, FFs: 6, FreeFFs: 1, Gates: 50, Seed: 42}
	a := MustGenerate(p)
	b := MustGenerate(p)
	if a.NumGates() != b.NumGates() || a.NumNodes() != b.NumNodes() {
		t.Fatal("generator nondeterministic in size")
	}
	for gi := range a.Gates {
		if a.Gates[gi].Op != b.Gates[gi].Op || len(a.Gates[gi].In) != len(b.Gates[gi].In) {
			t.Fatal("generator nondeterministic in structure")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	p := GenParams{Name: "shape", Inputs: 7, Outputs: 4, FFs: 9, FreeFFs: 2, Gates: 80, Seed: 9}
	c := MustGenerate(p)
	st := c.Stats()
	if st.Inputs != 7 || st.Outputs != 4 || st.FFs != 9 {
		t.Fatalf("generated shape wrong: %v", st)
	}
	// FreeFFs parity gates are added on top of the cloud gates.
	if st.Gates != 80+2 {
		t.Fatalf("gates = %d, want 82", st.Gates)
	}
	if st.Levels < 3 {
		t.Errorf("levels = %d; cloud should have depth", st.Levels)
	}
}

// TestGenerateFreeFFsStayUnknown checks the defining property of free
// flip-flops: they never initialize under three-valued simulation.
func TestGenerateFreeFFsStayUnknown(t *testing.T) {
	p := GenParams{Name: "free", Inputs: 4, Outputs: 2, FFs: 6, FreeFFs: 3, Gates: 40, Seed: 17}
	c := MustGenerate(p)
	s := seqsim.New(c)
	T := randomSeq(c.NumInputs(), 30, 99)
	tr, err := s.FaultFree(T)
	if err != nil {
		t.Fatal(err)
	}
	for u, st := range tr.States {
		for k := 0; k < p.FreeFFs; k++ {
			if st[k] != logic.X {
				t.Fatalf("free FF %d specified at time %d", k, u)
			}
		}
	}
}

// TestGenerateSyncFFsInitialize checks that most non-free flip-flops do
// initialize under a random sequence (the generator's other promise).
func TestGenerateSyncFFsInitialize(t *testing.T) {
	p := GenParams{Name: "sync", Inputs: 6, Outputs: 3, FFs: 10, FreeFFs: 2, Gates: 90, Seed: 23}
	c := MustGenerate(p)
	s := seqsim.New(c)
	T := randomSeq(c.NumInputs(), 60, 5)
	tr, err := s.FaultFree(T)
	if err != nil {
		t.Fatal(err)
	}
	final := tr.States[len(tr.States)-1]
	specified := 0
	for k := p.FreeFFs; k < p.FFs; k++ {
		if final[k].IsBinary() {
			specified++
		}
	}
	if specified < (p.FFs-p.FreeFFs)/2 {
		t.Errorf("only %d of %d sync FFs initialized", specified, p.FFs-p.FreeFFs)
	}
}

func TestSuiteRegistry(t *testing.T) {
	suite := Suite()
	if len(suite) != 13 {
		t.Fatalf("suite has %d entries, want 13", len(suite))
	}
	for _, e := range suite {
		if err := e.Params.Validate(); err != nil {
			t.Errorf("suite entry %s invalid: %v", e.Name, err)
		}
		if e.Paper.ProposedTotal < e.Paper.Conventional {
			t.Errorf("suite entry %s paper numbers inconsistent", e.Name)
		}
	}
	if _, err := SuiteEntryByName("s5378"); err != nil {
		t.Error("lookup by paper name failed")
	}
	if _, err := SuiteEntryByName("sg208"); err != nil {
		t.Error("lookup by suite name failed")
	}
	if _, err := SuiteEntryByName("nope"); err == nil {
		t.Error("lookup of unknown name should fail")
	}
}

func TestSuiteSmallEntriesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit generation in -short mode")
	}
	for _, e := range Suite()[:6] {
		c := e.Build()
		st := c.Stats()
		if st.FFs != e.Params.FFs || st.Inputs != e.Params.Inputs {
			t.Errorf("%s: built shape %v does not match params", e.Name, st)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"s27", "fig4", "intro", "table1", "sg208"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
	if len(Names()) != 4+13 {
		t.Errorf("Names() = %d entries, want 17", len(Names()))
	}
}

// randomSeq builds a deterministic pseudo-random binary sequence without
// importing math/rand (a tiny LCG keeps the test hermetic).
func randomSeq(width, length int, seed uint32) seqsim.Sequence {
	state := seed*2654435761 + 1
	next := func() uint32 {
		state = state*1664525 + 1013904223
		return state >> 16
	}
	T := make(seqsim.Sequence, length)
	for u := range T {
		p := make(seqsim.Pattern, width)
		for i := range p {
			p[i] = logic.FromBool(next()&1 == 1)
		}
		T[u] = p
	}
	return T
}
