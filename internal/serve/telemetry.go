// Package serve exposes the MOT fault simulator as a long-running HTTP
// service: a run registry (POST /runs, GET /runs/{id}, DELETE
// /runs/{id}), per-run event streams (SSE), Prometheus metric
// exposition backed by the core live-snapshot publisher, health and
// pprof endpoints. The batch CLIs reuse the telemetry half via
// NewRunTelemetry and MetricsMux for their -metrics-addr flag.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

// liveCounters maps every monotonic LiveSnapshot field to a Prometheus
// counter name (without prefix) and help string. Times are exposed in
// seconds; the *_ns fields carry nanoseconds and are scaled at
// registration.
var liveCounters = []struct {
	name, help string
	seconds    bool
	get        func(core.LiveSnapshot) int64
}{
	{"runs_started_total", "Whole-list runs started.", false,
		func(s core.LiveSnapshot) int64 { return s.RunsStarted }},
	{"runs_done_total", "Whole-list runs completed (including failed and canceled).", false,
		func(s core.LiveSnapshot) int64 { return s.RunsDone }},
	{"faults_total", "Faults submitted across all runs.", false,
		func(s core.LiveSnapshot) int64 { return s.FaultsTotal }},
	{"faults_done_total", "Faults classified so far.", false,
		func(s core.LiveSnapshot) int64 { return s.FaultsDone }},
	{"detected_conventional_total", "Faults detected by conventional simulation.", false,
		func(s core.LiveSnapshot) int64 { return s.Conv }},
	{"detected_mot_total", "Faults detected by the MOT procedure beyond conventional.", false,
		func(s core.LiveSnapshot) int64 { return s.MOT }},
	{"pruned_condition_c_total", "Faults pruned by necessary condition (C).", false,
		func(s core.LiveSnapshot) int64 { return s.PrunedConditionC }},
	{"prescreen_passes_total", "Bit-parallel prescreen batches simulated.", false,
		func(s core.LiveSnapshot) int64 { return s.PrescreenPasses }},
	{"prescreen_dropped_total", "Faults classified directly by the prescreen.", false,
		func(s core.LiveSnapshot) int64 { return s.PrescreenDropped }},
	{"prescreen_frames_total", "Time frames simulated by the bit-parallel prescreen.", false,
		func(s core.LiveSnapshot) int64 { return s.PrescreenFrames }},
	{"mot_faults_total", "Faults that entered the per-fault MOT pipeline.", false,
		func(s core.LiveSnapshot) int64 { return s.MOTFaults }},
	{"pairs_total", "Candidate (time unit, state variable) pairs collected.", false,
		func(s core.LiveSnapshot) int64 { return s.Pairs }},
	{"expansions_total", "Sequence-duplicating state expansions applied.", false,
		func(s core.LiveSnapshot) int64 { return s.Expansions }},
	{"sequences_total", "State sequences at expansion stop, summed over faults.", false,
		func(s core.LiveSnapshot) int64 { return s.Sequences }},
	{"imply_calls_total", "In-frame implication runs.", false,
		func(s core.LiveSnapshot) int64 { return s.ImplyCalls }},
	{"resim_vector_passes_total", "Bit-parallel resimulation vector passes.", false,
		func(s core.LiveSnapshot) int64 { return s.ResimVectorPasses }},
	{"resim_vector_frames_total", "Time frames evaluated by bit-parallel resimulation.", false,
		func(s core.LiveSnapshot) int64 { return s.ResimVectorFrames }},
	{"resim_serial_fallbacks_total", "Expansions that exceeded lane capacity and resimulated serially.", false,
		func(s core.LiveSnapshot) int64 { return s.ResimSerialFallbacks }},
	{"delta_frames_total", "Event-driven (delta) frames simulated by the serial engine.", false,
		func(s core.LiveSnapshot) int64 { return s.DeltaFrames }},
	{"delta_gate_evals_total", "Gate evaluations inside delta frames.", false,
		func(s core.LiveSnapshot) int64 { return s.DeltaGateEvals }},
	{"full_frames_total", "Full-pass frames simulated by the serial engine.", false,
		func(s core.LiveSnapshot) int64 { return s.FullFrames }},
	{"event_frames_total", "Sparse frames simulated by the event-driven evaluator.", false,
		func(s core.LiveSnapshot) int64 { return s.EventFrames }},
	{"event_gate_evals_total", "Gate evaluations inside event-driven frames.", false,
		func(s core.LiveSnapshot) int64 { return s.EventGateEvals }},
	{"events_total", "Node value changes propagated by the sparse evaluators.", false,
		func(s core.LiveSnapshot) int64 { return s.Events }},
	{"stage_step0_seconds_total", "CPU time in step 0 (serial resim + condition C).", true,
		func(s core.LiveSnapshot) int64 { return s.Step0NS }},
	{"stage_collect_seconds_total", "CPU time in pair collection (Section 3.1).", true,
		func(s core.LiveSnapshot) int64 { return s.CollectNS }},
	{"stage_imply_seconds_total", "Estimated CPU time in implications (subset of collect).", true,
		func(s core.LiveSnapshot) int64 { return s.ImplyNS }},
	{"stage_expand_seconds_total", "CPU time in state expansion (Procedure 2).", true,
		func(s core.LiveSnapshot) int64 { return s.ExpandNS }},
	{"stage_resim_seconds_total", "CPU time in resimulation (Section 3.4).", true,
		func(s core.LiveSnapshot) int64 { return s.ResimNS }},
	{"stage_mot_seconds_total", "Total CPU time in the per-fault MOT pipeline.", true,
		func(s core.LiveSnapshot) int64 { return s.TotalNS }},
}

// RegisterLiveCounters registers one Prometheus counter per monotonic
// LiveSnapshot field under prefix (e.g. "motserve"). snap is called per
// scrape; it must be safe for concurrent use and each returned field
// must be non-decreasing between calls — core.LiveStats.Snapshot and
// sums of such snapshots over a grow-only run set both qualify.
func RegisterLiveCounters(reg *metrics.Registry, prefix string, snap func() core.LiveSnapshot) {
	for _, m := range liveCounters {
		m := m
		name := prefix + "_" + m.name
		if m.seconds {
			reg.CounterFloatFunc(name, m.help, func() float64 {
				return float64(m.get(snap())) * 1e-9
			})
		} else {
			reg.CounterFunc(name, m.help, func() int64 { return m.get(snap()) })
		}
	}
}

// RegisterLiveHistograms exposes the per-fault distribution histograms
// read from source at scrape time (e.g. a LiveStats' Metrics method, or
// the server's latest-run accessor). The histograms are scraped mid-run
// directly from the concurrency-safe core collectors; while source
// returns nil every series reads zero.
func RegisterLiveHistograms(reg *metrics.Registry, prefix string, source func() *core.RunMetrics) {
	hist := func(name, help string, scale float64, pick func(*core.RunMetrics) *metrics.Histogram) {
		reg.HistogramFuncExemplars(prefix+"_"+name, help, scale,
			func() metrics.Snapshot {
				if m := source(); m != nil {
					return pick(m).Snapshot()
				}
				return metrics.Snapshot{}
			},
			func() []*metrics.Exemplar {
				if m := source(); m != nil {
					return pick(m).Exemplars()
				}
				return nil
			})
	}
	hist("pairs_per_fault", "Candidate pairs collected per fault.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.PairsPerFault })
	hist("expansions_per_fault", "Phase-2 expansions per fault.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.ExpansionsPerFault })
	hist("sequences_at_stop", "State sequences when expansion stopped.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.SequencesAtStop })
	hist("cone_gates_per_fault", "Active-cone sizes of pipeline faults.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.ConeGatesPerFault })
	hist("resim_lanes_per_pass", "Sequences packed per bit-parallel resimulation pass.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.ResimLanesPerPass })
	hist("events_per_frame", "Node value changes per event-driven sparse frame.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.EventsPerFrame })
	hist("gates_visited_per_frame", "Gate evaluations per event-driven sparse frame.", 1,
		func(m *core.RunMetrics) *metrics.Histogram { return m.GatesVisitedPerFrame })
	hist("fault_seconds", "Per-fault wall time.", 1e-9,
		func(m *core.RunMetrics) *metrics.Histogram { return m.FaultTimeNS })
}

// NewRunTelemetry wires a fresh LiveStats into a fresh Registry under
// the given prefix — the one-call setup the batch CLIs use for
// -metrics-addr. Set the returned LiveStats as Config.Live on every
// run whose progress should be scraped.
func NewRunTelemetry(prefix string) (*metrics.Registry, *core.LiveStats) {
	reg := metrics.NewRegistry()
	live := &core.LiveStats{}
	RegisterLiveCounters(reg, prefix, live.Snapshot)
	RegisterLiveHistograms(reg, prefix, live.Metrics)
	metrics.RegisterRuntime(reg, prefix)
	return reg, live
}

// MetricsMux returns an http.Handler serving /metrics from reg plus
// /healthz and the /debug/pprof endpoints — the sidecar surface the
// batch CLIs expose under -metrics-addr.
func MetricsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	profiling.RegisterHTTP(mux)
	return mux
}

// StartMetricsServer serves MetricsMux(reg) on addr in the background —
// the batch CLIs' -metrics-addr sidecar. The listener is bound
// synchronously so address errors surface immediately; the returned
// stop function shuts the server down and blocks until it exits.
func StartMetricsServer(addr string, reg *metrics.Registry) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: MetricsMux(reg)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}, nil
}
