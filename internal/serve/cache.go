package serve

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cir"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// runCache memoizes the expensive artifacts of run submission across
// the server's lifetime: compiled circuits (keyed by content hash of
// the inline netlist text, or by built-in name) and fault-free traces
// (keyed by the circuit identity plus the exact vector identity). Both
// entry kinds share one byte budget; least-recently-used entries are
// evicted when a new one would overflow it. A nil *runCache is the
// disabled cache: every lookup misses and every insert is a no-op, so
// the submission path needs no branching on configuration.
type runCache struct {
	store *cache.Store[string, any]
}

// circuitEntry pins a parsed circuit together with its compiled IR.
// Holding the *netlist.Circuit keeps the process-wide compile memo
// (cir.For, keyed by circuit pointer) hitting for as long as the entry
// lives; eviction calls cir.Drop so the two caches agree on residency.
type circuitEntry struct {
	c  *netlist.Circuit
	cc *cir.CC
}

// CacheInfo reports, per run, which memoized artifacts the submission
// reused. CircuitHit means parsing and compilation were skipped;
// TraceHit means the warm fault-free trace let the run skip its step-0
// good simulation entirely.
type CacheInfo struct {
	CircuitHit bool `json:"circuit_hit"`
	TraceHit   bool `json:"trace_hit"`
}

func newRunCache(budget int64) *runCache {
	rc := &runCache{}
	rc.store = cache.New[string, any](budget, func(_ string, v any) {
		if e, ok := v.(circuitEntry); ok {
			cir.Drop(e.c)
		}
	})
	return rc
}

// srcKey is the content identity of a request's circuit source:
// built-ins by name (the generators are deterministic), inline
// netlists by hash of their text.
func srcKey(req RunRequest) string {
	if req.Circuit != "" {
		return "name:" + req.Circuit
	}
	return cache.Key(req.Bench)
}

// vecKey is the content identity of a request's test sequence: inline
// vector text by hash, seeded random generation by (length, seed)
// after the same defaulting buildRun applies.
func vecKey(req RunRequest) string {
	if req.Vectors != "" {
		return cache.Key(req.Vectors)
	}
	n, seed := req.Random, req.Seed
	if n <= 0 {
		n = 64
	}
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("r:%d:%d", n, seed)
}

// goodKey keys a fault-free trace: it is valid for exactly one
// (circuit text, vector set) pair and for any method/config, since the
// good simulation depends on nothing else.
func goodKey(req RunRequest) string {
	return "good:" + srcKey(req) + "|" + vecKey(req)
}

func (rc *runCache) circuit(src string) (circuitEntry, bool) {
	if rc == nil {
		return circuitEntry{}, false
	}
	v, ok := rc.store.Get("cc:" + src)
	if !ok {
		return circuitEntry{}, false
	}
	e, ok := v.(circuitEntry)
	return e, ok
}

// addCircuit caches a freshly compiled circuit. An entry too large for
// the whole budget is simply not cached — the run already holds its
// own reference, and cir.For's own memo is bounded independently.
func (rc *runCache) addCircuit(src string, e circuitEntry) {
	if rc == nil {
		return
	}
	rc.store.Add("cc:"+src, e, e.cc.MemSize())
}

func (rc *runCache) trace(key string) (*seqsim.Trace, bool) {
	if rc == nil {
		return nil, false
	}
	v, ok := rc.store.Get(key)
	if !ok {
		return nil, false
	}
	tr, ok := v.(*seqsim.Trace)
	return tr, ok
}

func (rc *runCache) addTrace(key string, tr *seqsim.Trace) {
	if rc == nil || tr == nil {
		return
	}
	rc.store.Add(key, tr, tr.MemSize())
}

// stats is nil-safe: a disabled cache reads as all-zero, so the metric
// callbacks register unconditionally.
func (rc *runCache) stats() cache.Stats {
	if rc == nil {
		return cache.Stats{}
	}
	return rc.store.Stats()
}
