package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/xtrace"
)

// chromeDoc is the subset of the Chrome trace-event format the tests
// decode.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// getTrace fetches GET /runs/{id}/trace and decodes it.
func getTrace(t *testing.T, ts *httptest.Server, id string) (chromeDoc, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s/trace = %d", id, resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	return doc, resp
}

// TestServerTraceEndpoint submits a fully sampled run, exports the
// trace both mid-run (must be valid, possibly partial JSON) and after
// completion (must contain the full span tree).
func TestServerTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	rate := 1.0
	st := postRun(t, ts, RunRequest{Circuit: "sg298", Random: 96, Workers: 4, TraceSample: &rate})

	// Mid-run export: the run may or may not still be running when the
	// request lands, but either way the response must parse.
	mid, _ := getTrace(t, ts, st.ID)
	for _, ev := range mid.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}

	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusDone {
		t.Fatalf("status = %q (%s)", fin.Status, fin.Error)
	}
	doc, resp := getTrace(t, ts, st.ID)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, st.ID+".trace.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
	}
	for _, want := range []string{"run sg298", "prescreen", "mot", "batch", "fault", "expand", "resim"} {
		if names[want] == 0 {
			t.Errorf("final trace missing %q spans: %v", want, names)
		}
	}
	// Fault spans wrap the per-fault MOT pipeline, so at full sampling
	// there is one per fault the prescreen did not already resolve.
	if want := fin.Faults - fin.Report.Stages.PrescreenDropped; names["fault"] != want {
		t.Errorf("trace has %d fault spans, want %d (full sampling, faults past prescreen)", names["fault"], want)
	}
}

// TestServerTraceSampleValidation rejects out-of-range trace_sample.
func TestServerTraceSampleValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"circuit":"s27","trace_sample":1.5}`,
		`{"circuit":"s27","trace_sample":-0.1}`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServerTraceparentAndAccessLog checks the telemetry middleware:
// requests carrying a W3C traceparent join that trace (same trace ID in
// the response header, new span ID), bare requests mint one, and every
// request produces a structured access-log line with method, path,
// status, duration and — for run-scoped requests — the run ID.
func TestServerTraceparentAndAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	s := NewServer(Config{
		MaxConcurrent: 2,
		Logger: slog.New(slog.NewTextHandler(lockedWriter{&mu, &logBuf}, &slog.HandlerOptions{
			Level: slog.LevelInfo,
		})),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})

	// A request joining an upstream trace.
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tp := resp.Header.Get("traceparent")
	traceID, span, ok := xtrace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID not propagated: got %s", traceID)
	}
	if fmt.Sprintf("%016x", uint64(span)) == "00f067aa0ba902b7" {
		t.Error("response span ID equals the upstream parent; want a fresh span")
	}

	// A bare request mints a trace of its own.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if _, _, ok := xtrace.ParseTraceparent(resp2.Header.Get("traceparent")); !ok {
		t.Fatalf("bare request got no valid traceparent: %q", resp2.Header.Get("traceparent"))
	}

	// A run submission followed by a status read: both access-log lines
	// must carry the run ID (POST via the X-Run-ID header, GET via the
	// path).
	st := postRun(t, ts, RunRequest{Circuit: "s27", Random: 8})
	waitDone(t, ts, st.ID)

	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	for _, want := range []string{
		"msg=request",
		"method=GET path=/healthz status=200",
		"method=POST path=/runs status=202",
		"run=" + st.ID,
		"trace=4bf92f3577b34da6a3ce929d0e0e4736",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
	if !strings.Contains(logs, "dur=") {
		t.Errorf("access log lines carry no duration:\n%s", logs)
	}

	// The request spans also reach the flight recorder.
	recent := s.ring.Recent(0)
	var reqSpans int
	for _, sp := range recent {
		if strings.HasPrefix(sp.Name, "GET ") || strings.HasPrefix(sp.Name, "POST ") {
			reqSpans++
		}
	}
	if reqSpans < 3 {
		t.Errorf("flight recorder holds %d request spans, want >= 3", reqSpans)
	}
}

// lockedWriter serializes concurrent slog writes into a shared buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestServerDebugEvents checks the flight-recorder dump: JSONL spans,
// ?n= bounding, and 400 on a malformed n.
func TestServerDebugEvents(t *testing.T) {
	_, ts := newTestServer(t)
	rate := 1.0
	st := postRun(t, ts, RunRequest{Circuit: "s27", Random: 8, TraceSample: &rate})
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var span struct {
			Name string `json:"name"`
			ID   string `json:"id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if span.Name == "" || span.ID == "" {
			t.Fatalf("span line missing fields: %q", sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("flight recorder dump is empty after a traced run")
	}

	resp2, err := http.Get(ts.URL + "/debug/events?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	b, _ := io.ReadAll(resp2.Body)
	if got := strings.Count(string(b), "\n"); got != 2 {
		t.Errorf("n=2 dump has %d lines", got)
	}

	resp3, err := http.Get(ts.URL + "/debug/events?n=wat")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status = %d, want 400", resp3.StatusCode)
	}
}

// TestServerSpanMetrics checks the span accounting counters on
// /metrics after a fully sampled run.
func TestServerSpanMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	rate := 1.0
	st := postRun(t, ts, RunRequest{Circuit: "s27", Random: 8, TraceSample: &rate})
	waitDone(t, ts, st.ID)
	samples := scrape(t, ts)
	if samples["motserve_trace_spans_total"] < 10 {
		t.Errorf("trace_spans_total = %v, want a traced run's worth", samples["motserve_trace_spans_total"])
	}
	if samples["motserve_trace_spans_dropped_total"] != 0 {
		t.Errorf("trace_spans_dropped_total = %v, want 0", samples["motserve_trace_spans_dropped_total"])
	}
}

// TestServerEventsClientDisconnect subscribes to a run's SSE stream and
// drops the connection mid-replay; the handler must notice the
// disconnect and return rather than block on the event log forever
// (Close would then time out).
func TestServerEventsClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t)
	// Trace events make the replay long enough that the client is gone
	// before the run completes.
	st := postRun(t, ts, RunRequest{Circuit: "sg641", Random: 256, Workers: 1, Trace: true, LiveEvery: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/runs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream, then vanish.
	buf := make([]byte, 512)
	if _, err := io.ReadAtLeast(resp.Body, buf, 1); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The run still completes and the server still shuts down cleanly
	// (the Cleanup Close would fail if the SSE handler leaked).
	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusDone {
		t.Fatalf("status = %q (%s)", fin.Status, fin.Error)
	}
	_ = s
}
