package serve

import (
	"bytes"
	"strings"
	"sync"
)

// Event is one entry of a run's event stream: an SSE event name plus a
// single-line JSON payload.
type Event struct {
	Name string
	Data string
}

// eventLog is an append-only broadcast log. Appends are cheap; readers
// replay from any index and block on a notification channel that is
// closed (and replaced) on every append, so each subscriber wakes
// exactly when new events or the end of the stream arrive.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	closed bool
	notify chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{notify: make(chan struct{})}
}

// append adds one event and wakes all waiting subscribers. Events
// appended after close are dropped.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	close(l.notify)
	l.notify = make(chan struct{})
}

// close marks the stream complete and wakes all subscribers.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.notify)
	l.notify = make(chan struct{})
}

// next returns the events from index from onward, whether the stream is
// complete, and a channel that is closed on the next append or close.
// Callers consume the returned slice before waiting again; the log is
// append-only so the slice stays valid.
func (l *eventLog) next(from int) (events []Event, done bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.events) {
		events = l.events[from:]
	}
	return events, l.closed, l.notify
}

// len returns the number of events appended so far.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// lineWriter adapts an io.Writer sink for core.Config.TraceWriter: each
// complete JSONL line becomes one event with the given name. The core
// trace writer emits whole lines after the run completes, but partial
// writes are buffered correctly regardless.
type lineWriter struct {
	log  *eventLog
	name string
	buf  bytes.Buffer
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			w.buf.WriteString(line)
			break
		}
		if s := strings.TrimRight(line, "\n"); s != "" {
			w.log.append(Event{Name: w.name, Data: s})
		}
	}
	return len(p), nil
}
