//go:build !unix

package serve

import "time"

// processCPUTime is unavailable off unix; runs report zero CPU seconds
// there while the allocation attribution still works.
func processCPUTime() time.Duration { return 0 }
