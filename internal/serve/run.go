package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cir"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/seqsim"
	"repro/internal/tgen"
	"repro/internal/vectors"
	"repro/internal/xtrace"
)

// RunRequest is the body of POST /runs. Exactly one circuit source is
// required (a built-in name or an inline .bench netlist); the test
// sequence comes from inline vector text or seeded random generation
// (default: 64 random patterns, seed 1). The method names match the
// motfsim -method flag.
type RunRequest struct {
	// Circuit names a built-in circuit (s27, sg298, ...); Bench carries
	// an inline ISCAS-89 .bench netlist instead.
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Vectors is inline test-sequence text (one pattern per line);
	// Random generates a random sequence of that length with Seed.
	Vectors string `json:"vectors,omitempty"`
	Random  int    `json:"random,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Method is proposed (default), baseline, or lowcomplexity.
	Method string `json:"method,omitempty"`
	// NStates overrides the expansion budget (default 64).
	NStates int `json:"nstates,omitempty"`
	// Workers bounds the fault-simulation goroutines (default NumCPU).
	Workers int `json:"workers,omitempty"`
	// Prescreen and Metrics default to on; send false to disable.
	Prescreen *bool `json:"prescreen,omitempty"`
	Metrics   *bool `json:"metrics,omitempty"`
	// FullFaults selects the uncollapsed fault list.
	FullFaults bool `json:"full_faults,omitempty"`
	// Trace streams the per-fault JSONL trace on the run's event feed.
	Trace bool `json:"trace,omitempty"`
	// TraceSample overrides the server's per-fault span sampling rate
	// for this run, in [0, 1]; see GET /runs/{id}/trace.
	TraceSample *float64 `json:"trace_sample,omitempty"`
	// LiveEvery overrides the live-snapshot publication cadence.
	LiveEvery int `json:"live_every,omitempty"`
}

// Run statuses, in lifecycle order.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Run is one registered simulation run. The immutable inputs are built
// at submission time (so request errors surface on POST, not later);
// the mutable lifecycle state lives behind mu.
type Run struct {
	ID      string
	Req     RunRequest
	Created time.Time

	circuit *netlist.Circuit
	seq     seqsim.Sequence
	faults  []fault.Fault
	cfg     core.Config
	method  string
	workers int

	// Warm-start state from the server's cross-run cache: warm carries
	// the compiled IR (always) and the fault-free trace (on a trace
	// hit); goodKey is where execute stores the trace after a cold run.
	warm    core.Warm
	goodKey string
	cache   *runCache
	info    CacheInfo

	live   *core.LiveStats
	events *eventLog
	tracer *xtrace.Tracer
	cancel context.CancelFunc

	mu        sync.Mutex
	status    string
	started   time.Time
	finished  time.Time
	result    *core.Result
	runErr    error
	resources *RunResources
}

// RunStatus is the JSON view of a run returned by GET /runs/{id}.
type RunStatus struct {
	ID       string `json:"id"`
	Circuit  string `json:"circuit"`
	Method   string `json:"method"`
	Status   string `json:"status"`
	Workers  int    `json:"workers"`
	Patterns int    `json:"patterns"`
	Faults   int    `json:"faults"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Cache reports which memoized artifacts this run reused; absent
	// when the server's cache is disabled.
	Cache *CacheInfo `json:"cache,omitempty"`

	// Resources is the run's resource attribution, present once the run
	// has executed; see RunResources for the overlap caveat.
	Resources *RunResources `json:"resources,omitempty"`

	// Live is the current (mid-run) or final snapshot of the run's
	// counters; see core.LiveSnapshot for field semantics.
	Live core.LiveSnapshot `json:"live"`
	// Report is the full run summary, present once the run is done.
	Report *report.RunReport `json:"report,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// buildRun validates a request and assembles everything the run needs,
// reusing the server's cross-run cache where the request's content
// matches a previous submission: a circuit hit skips parsing and
// compilation, a trace hit lets execute skip the fault-free (step-0)
// simulation. The returned run has no ID yet — handleCreate assigns it
// inside the same critical section that reserves the registry slot.
func (s *Server) buildRun(req RunRequest, now time.Time) (*Run, error) {
	var c *netlist.Circuit
	var cc *cir.CC
	var info CacheInfo
	var err error
	switch {
	case req.Circuit != "" && req.Bench != "":
		return nil, fmt.Errorf("request sets both circuit and bench")
	case req.Circuit == "" && req.Bench == "":
		return nil, fmt.Errorf("request needs a circuit name or an inline bench netlist")
	}
	src := srcKey(req)
	if e, ok := s.cache.circuit(src); ok {
		c, cc = e.c, e.cc
		info.CircuitHit = true
	} else {
		if req.Circuit != "" {
			if c, err = circuits.ByName(req.Circuit); err != nil {
				return nil, err
			}
		} else {
			if c, err = bench.ParseString("request.bench", req.Bench); err != nil {
				return nil, err
			}
		}
		cc = cir.For(c)
		s.cache.addCircuit(src, circuitEntry{c: c, cc: cc})
	}

	var T seqsim.Sequence
	switch {
	case req.Vectors != "" && req.Random > 0:
		return nil, fmt.Errorf("request sets both vectors and random")
	case req.Vectors != "":
		if T, err = vectors.Read(strings.NewReader(req.Vectors)); err != nil {
			return nil, err
		}
		if len(T) == 0 {
			return nil, fmt.Errorf("vectors text contains no patterns")
		}
		if len(T[0]) != c.NumInputs() {
			return nil, fmt.Errorf("vectors have %d inputs, circuit %s has %d",
				len(T[0]), c.Name, c.NumInputs())
		}
	default:
		n, seed := req.Random, req.Seed
		if n <= 0 {
			n = 64
		}
		if seed == 0 {
			seed = 1
		}
		T = tgen.Random(c.NumInputs(), n, seed)
	}

	method := req.Method
	if method == "" {
		method = "proposed"
	}
	var cfg core.Config
	switch method {
	case "proposed":
		cfg = core.DefaultConfig()
	case "baseline":
		cfg = core.BaselineConfig()
	case "lowcomplexity":
		cfg = core.DefaultConfig()
		cfg.IdentificationOnly = true
	default:
		return nil, fmt.Errorf("unknown method %q (want proposed, baseline, or lowcomplexity)", method)
	}
	if req.NStates > 0 {
		cfg.NStates = req.NStates
	}
	if req.Prescreen != nil {
		cfg.Prescreen = *req.Prescreen
	}
	if req.Metrics != nil {
		cfg.Metrics = *req.Metrics
	}
	if req.LiveEvery < 0 {
		return nil, fmt.Errorf("live_every must be non-negative")
	}
	cfg.LiveEvery = req.LiveEvery
	cfg.TraceSampleRate = s.cfg.TraceSample
	if req.TraceSample != nil {
		if *req.TraceSample < 0 || *req.TraceSample > 1 {
			return nil, fmt.Errorf("trace_sample must be in [0, 1], got %g", *req.TraceSample)
		}
		cfg.TraceSampleRate = *req.TraceSample
	}

	workers := req.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	faults := fault.CollapsedList(c)
	if req.FullFaults {
		faults = fault.List(c)
	}
	// Cone-locality order: consecutive faults share cone snapshots and
	// scratch cache lines. The ordering is a pure function of the
	// compiled circuit and the list, so warm and cold submissions of
	// the same request simulate faults in the same order and their
	// results stay byte-identical. Side effect: every cone snapshot is
	// now cached on cc, so a warm rerun performs no cone traversals.
	cir.SortFaultsByCone(cc, faults)

	warm := core.Warm{CC: cc}
	gk := goodKey(req)
	if tr, ok := s.cache.trace(gk); ok {
		warm.Good = tr
		info.TraceHit = true
	}

	r := &Run{
		Req:     req,
		Created: now,
		circuit: c,
		seq:     T,
		faults:  faults,
		cfg:     cfg,
		method:  method,
		workers: workers,
		warm:    warm,
		goodKey: gk,
		cache:   s.cache,
		info:    info,
		live:    &core.LiveStats{},
		events:  newEventLog(),
		tracer:  xtrace.New(xtrace.Options{Ring: s.ring}),
		status:  StatusQueued,
	}
	r.cfg.Live = r.live
	r.cfg.Tracer = r.tracer
	if req.Trace {
		r.cfg.TraceWriter = &lineWriter{log: r.events, name: "trace"}
	}
	return r, nil
}

// Status snapshots the run for the API.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:        r.ID,
		Circuit:   r.circuit.Name,
		Method:    r.method,
		Status:    r.status,
		Workers:   r.workers,
		Patterns:  len(r.seq),
		Faults:    len(r.faults),
		CreatedAt: r.Created,
		Live:      r.live.Snapshot(),
	}
	if r.cache != nil {
		info := r.info
		st.Cache = &info
	}
	if r.resources != nil {
		res := *r.resources
		st.Resources = &res
	}
	if !r.started.IsZero() {
		t := r.started
		st.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.FinishedAt = &t
	}
	if r.result != nil {
		rep := report.NewRunReport(r.result, r.method, len(r.seq), r.workers, r.finished.Sub(r.started))
		st.Report = &rep
	}
	if r.runErr != nil {
		st.Error = r.runErr.Error()
	}
	return st
}

// setResources records the run's measured resource usage.
func (r *Run) setResources(cpu time.Duration, allocBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resources = &RunResources{CPUSeconds: cpu.Seconds(), AllocBytes: allocBytes}
}

// progressEvery is the cadence of the progress events on a run's event
// stream while it executes.
const progressEvery = 200 * time.Millisecond

// execute runs the simulation to completion, feeding the event stream.
// It is called on its own goroutine with the slot already acquired.
func (r *Run) execute(ctx context.Context) {
	r.mu.Lock()
	r.status = StatusRunning
	r.started = time.Now()
	r.mu.Unlock()
	r.event("status", map[string]any{"status": StatusRunning})

	// Progress feed: one event per tick while the counters move.
	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tick := time.NewTicker(progressEvery)
		defer tick.Stop()
		var last core.LiveSnapshot
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if s := r.live.Snapshot(); s != last {
					last = s
					r.event("progress", s)
				}
			}
		}
	}()

	sim, err := core.NewSimulatorWarm(r.circuit, r.seq, r.cfg, r.warm)
	var res *core.Result
	if err == nil {
		// A cold run just paid for the fault-free simulation; bank its
		// trace so the next submission of the same (circuit, vectors)
		// pair starts warm.
		if r.warm.Good == nil {
			r.cache.addTrace(r.goodKey, sim.Good())
		}
		res, err = sim.RunParallelContext(ctx, r.faults, r.workers, nil)
	}
	close(stop)
	tickWG.Wait()

	r.mu.Lock()
	r.finished = time.Now()
	switch {
	case err == nil:
		r.status = StatusDone
		r.result = res
	case errors.Is(err, context.Canceled):
		r.status = StatusCanceled
		r.runErr = err
	default:
		r.status = StatusFailed
		r.runErr = err
	}
	status := r.status
	r.mu.Unlock()

	// Final snapshot (equal to the merged result counters), then the
	// terminal status, then end of stream.
	r.event("progress", r.live.Snapshot())
	fin := map[string]any{"status": status}
	if err != nil {
		fin["error"] = err.Error()
	}
	r.event("status", fin)
	r.events.close()
}

// event marshals payload and appends it to the run's stream.
func (r *Run) event(name string, payload any) {
	b, err := json.Marshal(payload)
	if err != nil {
		return
	}
	r.events.append(Event{Name: name, Data: string(b)})
}
