package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/xtrace"
)

// statusWriter captures the response status for the access log and
// request span while passing streaming (http.Flusher) through to the
// SSE handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so wrapping the response
// does not break the SSE event stream.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withTelemetry wraps the mux with the request-level observability
// stack: the request counter, one span per request on the server's
// tracer (joined to the caller's trace when the request carries a W3C
// traceparent header, and always emitting one on the response so
// downstream workers can join ours), and one structured access-log
// line per request — method, path, status, duration, and the run ID
// when the request addressed one.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpRequests.Inc()
		start := s.tracer.Now()
		wall := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}

		name := r.Method + " " + r.URL.Path
		traceID, parent, _ := xtrace.ParseTraceparent(r.Header.Get("traceparent"))
		// Request span IDs need only uniqueness, not determinism — the
		// request sequence number is the hash key.
		id := xtrace.DeriveID(parent, name, uint64(s.reqSeq.Add(1)))
		if traceID == "" {
			traceID = xtrace.NewTraceID(id)
		}
		sw.Header().Set("traceparent", xtrace.FormatTraceparent(traceID, id))

		next.ServeHTTP(sw, r)

		dur := time.Since(wall)
		if win := s.routeWin[routeName(r.Method, r.URL.Path)]; win != nil {
			win.Observe(int64(dur))
		}
		attrs := []xtrace.Attr{
			{Key: "method", Val: r.Method},
			{Key: "path", Val: r.URL.Path},
			{Key: "status", Val: strconv.Itoa(sw.code)},
			{Key: "trace", Val: traceID},
		}
		logAttrs := []any{
			"method", r.Method, "path", r.URL.Path,
			"status", sw.code, "dur", dur.Round(time.Microsecond),
			"trace", traceID,
		}
		if runID := requestRunID(r, sw); runID != "" {
			attrs = append(attrs, xtrace.Attr{Key: "run", Val: runID})
			logAttrs = append(logAttrs, "run", runID)
		}
		s.tracer.Record(xtrace.Span{
			ID: id, Parent: parent, Name: name,
			Track: s.httpTrack, Start: start, Dur: int64(dur),
			Attrs: attrs,
		})
		s.log.Info("request", logAttrs...)
	})
}

// routeNames lists every route label a request can map to; the server
// registers one rolling latency window per label.
var routeNames = []string{
	"run_create", "run_list", "run_get", "run_delete",
	"run_events", "run_trace", "debug", "metrics", "healthz", "other",
}

// routeName maps a request to its telemetry route label. It is a pure
// function of the method and path because withTelemetry wraps outside
// the mux, where the matched pattern is not available; unrecognized
// paths collapse into "other" so the label set stays fixed.
func routeName(method, path string) string {
	switch {
	case path == "/metrics":
		return "metrics"
	case path == "/healthz":
		return "healthz"
	case path == "/runs":
		if method == http.MethodPost {
			return "run_create"
		}
		return "run_list"
	case strings.HasPrefix(path, "/runs/"):
		switch {
		case strings.HasSuffix(path, "/events"):
			return "run_events"
		case strings.HasSuffix(path, "/trace"):
			return "run_trace"
		case method == http.MethodDelete:
			return "run_delete"
		default:
			return "run_get"
		}
	case strings.HasPrefix(path, "/debug/"):
		return "debug"
	}
	return "other"
}

// requestRunID extracts the run a request addressed: the {id} path
// segment of /runs/{id}..., or the X-Run-ID response header a
// successful POST /runs sets for the run it created.
func requestRunID(r *http.Request, sw *statusWriter) string {
	if id := sw.Header().Get("X-Run-ID"); id != "" {
		return id
	}
	rest := strings.TrimPrefix(r.URL.Path, "/runs/")
	if rest == r.URL.Path || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// handleTrace is GET /runs/{id}/trace: the run's span tree as Chrome
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// Safe on a still-running run — the export snapshots the spans merged
// so far (worker buffers flush incrementally), yielding a partial but
// well-formed trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	if run.tracer == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("run %s has no tracer", run.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", run.ID+".trace.json"))
	_ = run.tracer.WriteChromeTrace(w)
}

// handleDebugEvents is GET /debug/events: the shared span flight
// recorder (HTTP request spans plus every run's spans) as JSONL,
// oldest first. ?n= bounds the dump to the most recent n spans.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("n must be a non-negative integer, got %q", v))
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = xtrace.WriteJSONL(w, s.ring.Recent(n))
}
