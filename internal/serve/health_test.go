package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// getHealthz fetches /healthz and returns the status code and body.
func getHealthz(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerHealthzDraining drives the shutdown health transition: a
// healthy server answers 200 "ok"; once shutdown has begun, /healthz
// turns 503 "draining" and reports how many submitted runs are still
// queued or executing.
func TestServerHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t)

	if code, body := getHealthz(t, ts.URL); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q, want 200 ok", code, body)
	}

	// Keep a run in flight (enough patterns that it cannot finish before
	// the draining check below), then flip the shutdown flag the way
	// Close does — without Close's cancellation, so the run stays
	// pending deterministically.
	st := postRun(t, ts, RunRequest{Circuit: "sg298", Random: 512, Workers: 2})
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	code, body := getHealthz(t, ts.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503 (body %q)", code, body)
	}
	if !strings.Contains(body, "draining") {
		t.Errorf("draining /healthz body = %q, want it to say draining", body)
	}
	if !strings.Contains(body, "1 runs pending") {
		t.Errorf("draining /healthz body = %q, want the pending run counted", body)
	}

	// New submissions are refused while draining.
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"circuit":"s27","random":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /runs while draining = %d, want 503", resp.StatusCode)
	}

	// Let the in-flight run finish so cleanup's Close returns promptly.
	waitDone(t, ts, st.ID)
}

func TestRouteName(t *testing.T) {
	for _, tc := range []struct{ method, path, want string }{
		{"POST", "/runs", "run_create"},
		{"GET", "/runs", "run_list"},
		{"GET", "/runs/r0001", "run_get"},
		{"DELETE", "/runs/r0001", "run_delete"},
		{"GET", "/runs/r0001/events", "run_events"},
		{"GET", "/runs/r0001/trace", "run_trace"},
		{"GET", "/debug/events", "debug"},
		{"GET", "/debug/pprof/heap", "debug"},
		{"GET", "/metrics", "metrics"},
		{"GET", "/healthz", "healthz"},
		{"GET", "/nope", "other"},
	} {
		if got := routeName(tc.method, tc.path); got != tc.want {
			t.Errorf("routeName(%s, %s) = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
	// Every label routeName can return has a registered window.
	s := NewServer(Config{})
	for _, name := range routeNames {
		if s.routeWin[name] == nil {
			t.Errorf("route %q has no registered window", name)
		}
	}
}

// TestServerRouteWindowsAndResources exercises the SLO windows and the
// per-run resource attribution end to end: requests move the per-route
// rolling rates, a completed run reports CPU/allocation usage in its
// JSON, and the aggregate run counters and run-duration window move on
// /metrics.
func TestServerRouteWindowsAndResources(t *testing.T) {
	_, ts := newTestServer(t)

	st := postRun(t, ts, RunRequest{Circuit: "sg298", Random: 64, Workers: 2})
	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusDone {
		t.Fatalf("run = %q (%s)", fin.Status, fin.Error)
	}

	if fin.Resources == nil {
		t.Fatal("finished run reports no resources")
	}
	if fin.Resources.AllocBytes <= 0 {
		t.Errorf("run alloc_bytes = %d, want > 0", fin.Resources.AllocBytes)
	}
	if fin.Resources.CPUSeconds < 0 {
		t.Errorf("run cpu_seconds = %v, want >= 0", fin.Resources.CPUSeconds)
	}

	samples := scrape(t, ts)
	// waitDone polled GET /runs/{id} repeatedly, so the run_get window
	// has observations in the current interval; the final scrape itself
	// lands in the metrics window only after it returns, so only assert
	// the routes this test already exercised.
	for _, name := range []string{
		"motserve_http_run_create_seconds_rate1m",
		"motserve_http_run_get_seconds_rate1m",
		"motserve_run_seconds_rate1m",
	} {
		if samples[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, samples[name])
		}
	}
	if samples["motserve_http_run_get_seconds_p95_1m"] <= 0 {
		t.Errorf("run_get p95 = %v, want > 0", samples["motserve_http_run_get_seconds_p95_1m"])
	}
	if samples["motserve_run_alloc_bytes_total"] < float64(fin.Resources.AllocBytes) {
		t.Errorf("aggregate alloc %v < run alloc %d",
			samples["motserve_run_alloc_bytes_total"], fin.Resources.AllocBytes)
	}
	if samples["motserve_run_cpu_seconds_total"] != fin.Resources.CPUSeconds {
		t.Errorf("aggregate cpu %v != single run cpu %v",
			samples["motserve_run_cpu_seconds_total"], fin.Resources.CPUSeconds)
	}
	// Runtime health series ride on the same registry.
	if samples["motserve_go_goroutines"] < 1 {
		t.Errorf("motserve_go_goroutines = %v, want >= 1", samples["motserve_go_goroutines"])
	}
	if samples["motserve_go_heap_bytes"] <= 0 {
		t.Errorf("motserve_go_heap_bytes = %v, want > 0", samples["motserve_go_heap_bytes"])
	}
}
