package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tgen"
	"repro/internal/vectors"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		MaxConcurrent: 2,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// postRun submits a run and returns its initial status.
func postRun(t *testing.T, ts *httptest.Server, req RunRequest) RunStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, b)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus fetches GET /runs/{id}.
func getStatus(t *testing.T, ts *httptest.Server, id string) RunStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s = %d", id, resp.StatusCode)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the run reaches a terminal status.
func waitDone(t *testing.T, ts *httptest.Server, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return RunStatus{}
}

// scrape fetches /metrics and returns the samples by name.
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue // histogram bucket lines carry labels; skip
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			samples[fields[0]] = v
		}
	}
	return samples
}

// TestServerRunLifecycle drives the acceptance path: submit an sg
// circuit run, watch /metrics counters move while it executes, and
// assert the final scrape equals the merged Result.Stages values.
func TestServerRunLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	st := postRun(t, ts, RunRequest{Circuit: "sg298", Random: 96, Seed: 1, Workers: 4})
	if st.Status != StatusQueued && st.Status != StatusRunning {
		t.Fatalf("initial status = %q", st.Status)
	}
	if st.Faults == 0 || st.Patterns != 96 {
		t.Fatalf("initial status faults/patterns: %+v", st)
	}

	// Watch the counters while the run executes: every sampled value
	// must be non-decreasing between scrapes.
	var lastDone, lastFrames float64
	midrunMoves := 0
	for {
		samples := scrape(t, ts)
		done := samples["motserve_faults_done_total"]
		frames := samples["motserve_prescreen_frames_total"] + samples["motserve_delta_frames_total"] +
			samples["motserve_full_frames_total"]
		if done < lastDone || frames < lastFrames {
			t.Fatalf("counters went backward: done %v->%v frames %v->%v", lastDone, done, lastFrames, frames)
		}
		if done > lastDone {
			midrunMoves++
		}
		lastDone, lastFrames = done, frames
		cur := getStatus(t, ts, st.ID)
		if cur.Status != StatusQueued && cur.Status != StatusRunning {
			break
		}
	}
	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusDone {
		t.Fatalf("final status = %q (%s)", fin.Status, fin.Error)
	}
	if fin.Report == nil {
		t.Fatal("finished run has no report")
	}
	if midrunMoves == 0 {
		t.Log("note: run finished before any mid-run scrape observed movement")
	}

	// Final scrape must equal the merged run report exactly.
	samples := scrape(t, ts)
	rep := fin.Report
	for name, want := range map[string]float64{
		"motserve_runs_started_total":          1,
		"motserve_runs_done_total":             1,
		"motserve_faults_total":                float64(fin.Faults),
		"motserve_faults_done_total":           float64(fin.Faults),
		"motserve_detected_conventional_total": float64(rep.Conv),
		"motserve_detected_mot_total":          float64(rep.MOT),
		"motserve_pruned_condition_c_total":    float64(rep.PrunedC),
		"motserve_prescreen_passes_total":      float64(rep.Stages.PrescreenPasses),
		"motserve_prescreen_dropped_total":     float64(rep.Stages.PrescreenDropped),
		"motserve_prescreen_frames_total":      float64(rep.Stages.PrescreenFrames),
		"motserve_mot_faults_total":            float64(rep.Stages.MOTFaults),
		"motserve_pairs_total":                 float64(rep.Pairs),
		"motserve_expansions_total":            float64(rep.Expansions),
		"motserve_sequences_total":             float64(rep.Sequences),
		"motserve_imply_calls_total":           float64(rep.Stages.ImplyCalls),
		"motserve_delta_frames_total":          float64(rep.Stages.Sim.DeltaFrames),
		"motserve_full_frames_total":           float64(rep.Stages.Sim.FullFrames),
	} {
		if got := samples[name]; got != want {
			t.Errorf("final scrape %s = %v, want %v", name, got, want)
		}
	}
	if samples["motserve_fault_seconds_count"] != float64(rep.Stages.MOTFaults) {
		t.Errorf("fault_seconds histogram count = %v, want %v",
			samples["motserve_fault_seconds_count"], rep.Stages.MOTFaults)
	}

	// The run's status snapshot agrees with the scrape too.
	if fin.Live.FaultsDone != int64(fin.Faults) || fin.Live.Conv != int64(rep.Conv) {
		t.Errorf("status live snapshot disagrees: %+v vs report %+v", fin.Live, rep)
	}
}

// TestServerEventsStream subscribes to the SSE feed of a traced run and
// asserts status, progress and trace events all arrive, ending with a
// terminal status.
func TestServerEventsStream(t *testing.T) {
	_, ts := newTestServer(t)
	st := postRun(t, ts, RunRequest{Circuit: "sg298", Random: 96, Workers: 2, Trace: true, LiveEvery: 1})

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	counts := map[string]int{}
	var lastStatus string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			counts[event]++
			if event == "status" {
				var p struct {
					Status string `json:"status"`
				}
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
					t.Fatalf("bad status payload %q: %v", line, err)
				}
				lastStatus = p.Status
			}
			if event == "trace" {
				var p struct {
					Fault string `json:"fault"`
				}
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
					t.Fatalf("bad trace payload %q: %v", line, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["status"] < 2 {
		t.Errorf("got %d status events, want >= 2", counts["status"])
	}
	if counts["progress"] < 1 {
		t.Errorf("got %d progress events, want >= 1", counts["progress"])
	}
	if counts["trace"] != getStatus(t, ts, st.ID).Faults {
		t.Errorf("got %d trace events, want one per fault (%d)", counts["trace"], getStatus(t, ts, st.ID).Faults)
	}
	if lastStatus != StatusDone {
		t.Errorf("stream ended with status %q", lastStatus)
	}
}

// TestServerCancel cancels an in-flight run via DELETE and asserts it
// lands in canceled with the registry retained.
func TestServerCancel(t *testing.T) {
	_, ts := newTestServer(t)
	// A long random sequence keeps the run busy enough to cancel.
	st := postRun(t, ts, RunRequest{Circuit: "sg641", Random: 512, Workers: 1, Prescreen: boolPtr(false)})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusCanceled && fin.Status != StatusDone {
		t.Fatalf("status after cancel = %q (%s)", fin.Status, fin.Error)
	}
	// The run stays listed either way.
	listResp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Runs []RunStatus `json:"runs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != st.ID {
		t.Fatalf("GET /runs after cancel: %+v", list.Runs)
	}
}

// TestServerRequestValidation exercises the 4xx paths.
func TestServerRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"no circuit":      `{}`,
		"both sources":    `{"circuit":"s27","bench":"INPUT(a)"}`,
		"unknown circuit": `{"circuit":"nope"}`,
		"bad method":      `{"circuit":"s27","method":"conventional"}`,
		"unknown field":   `{"circuit":"s27","wat":1}`,
		"bad bench":       `{"bench":"NOT A NETLIST("}`,
		"bad vectors":     `{"circuit":"s27","vectors":"01\n"}`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/runs/r9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: status = %d, want 404", resp.StatusCode)
	}
}

// TestServerHealthAndPprof checks the sidecar endpoints.
func TestServerHealthAndPprof(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestServerInlineBenchAndVectors runs a request carrying the netlist
// and sequence inline, matching a serial core run bit for bit.
func TestServerInlineBenchAndVectors(t *testing.T) {
	c, err := circuits.ByName("s27")
	if err != nil {
		t.Fatal(err)
	}
	T := tgen.Random(c.NumInputs(), 24, 7)
	var vb strings.Builder
	if err := vectors.Write(&vb, T); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t)
	st := postRun(t, ts, RunRequest{Circuit: "s27", Vectors: vb.String(), Workers: 2})
	fin := waitDone(t, ts, st.ID)
	if fin.Status != StatusDone {
		t.Fatalf("status = %q (%s)", fin.Status, fin.Error)
	}

	sim, err := core.NewSimulator(c, T, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(fault.CollapsedList(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Report.Conv != want.Conv || fin.Report.MOT != want.MOT || fin.Faults != want.Total {
		t.Errorf("server run %+v != direct run conv=%d mot=%d total=%d",
			fin.Report, want.Conv, want.MOT, want.Total)
	}
}

// TestRunTelemetryFinalScrape checks the batch-CLI telemetry helper:
// a run publishing into NewRunTelemetry's LiveStats exposes the merged
// counters after the run.
func TestRunTelemetryFinalScrape(t *testing.T) {
	reg, live := NewRunTelemetry("motfsim")
	c, err := circuits.ByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	T := tgen.Random(c.NumInputs(), 48, 1)
	cfg := core.DefaultConfig()
	cfg.Live = live
	sim, err := core.NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunParallel(fault.CollapsedList(c), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		fmt.Sprintf("motfsim_faults_done_total %d\n", res.Total),
		fmt.Sprintf("motfsim_detected_conventional_total %d\n", res.Conv),
		fmt.Sprintf("motfsim_imply_calls_total %d\n", res.Stages.ImplyCalls),
		fmt.Sprintf("motfsim_pairs_per_fault_count %d\n", res.Stages.MOTFaults),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry exposition missing %q", want)
		}
	}
}

func boolPtr(b bool) *bool { return &b }
