package serve

import (
	rtm "runtime/metrics"
	"time"
)

// RunResources is the per-run resource attribution reported in the run
// JSON: CPU time and heap allocation measured across the run's
// execution (slot acquisition to completion). Both are process-wide
// deltas, so when MaxConcurrent > 1 overlapping runs each absorb the
// whole process's usage for their duration — attribution is exact only
// for serialized execution, and an upper bound otherwise.
type RunResources struct {
	// CPUSeconds is user+system CPU time consumed while the run
	// executed (getrusage; zero on platforms without it).
	CPUSeconds float64 `json:"cpu_seconds"`
	// AllocBytes is heap allocation during the run (/gc/heap/allocs
	// delta) — allocated, not resident.
	AllocBytes int64 `json:"alloc_bytes"`
}

// resourceSample is one point-in-time reading of the process-wide
// resource counters a run's usage is computed as the delta of.
type resourceSample struct {
	cpu   time.Duration
	alloc uint64
}

// sampleResources reads the process CPU clock and the cumulative heap
// allocation counter.
func sampleResources() resourceSample {
	s := []rtm.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtm.Read(s)
	var alloc uint64
	if s[0].Value.Kind() == rtm.KindUint64 {
		alloc = s[0].Value.Uint64()
	}
	return resourceSample{cpu: processCPUTime(), alloc: alloc}
}

// delta returns the usage between an earlier sample and this one.
func (s resourceSample) delta(before resourceSample) (cpu time.Duration, allocBytes int64) {
	return s.cpu - before.cpu, int64(s.alloc - before.alloc)
}
