package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/xtrace"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent bounds simultaneously executing runs; further
	// submissions queue. Zero means 1.
	MaxConcurrent int
	// MaxRuns caps the registry size (runs are retained after finishing
	// so their counters stay scrapeable); submissions beyond the cap are
	// rejected with 503. Zero means 64.
	MaxRuns int
	// CacheBytes is the byte budget of the cross-run memoization cache
	// (compiled circuits and fault-free traces, keyed by request
	// content). Zero means the 256 MiB default; negative disables the
	// cache entirely.
	CacheBytes int64
	// Prefix is the metric-name prefix, default "motserve".
	Prefix string
	// Logger receives structured request/run logs; default slog.Default.
	Logger *slog.Logger
	// TraceSample is the default per-fault span sampling rate for run
	// tracers, in [0, 1] (see core.Config.TraceSampleRate); zero selects
	// the core default (0.05). Requests may override it per run.
	TraceSample float64
	// FlightRecorder is the size of the shared span flight recorder
	// behind GET /debug/events (HTTP request spans and all run spans
	// feed it). Zero means 4096.
	FlightRecorder int
}

// Server is the run registry plus its HTTP surface. Create with
// NewServer, mount Handler, and stop with Close.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *metrics.Registry

	// cache memoizes compiled circuits and fault-free traces across
	// runs; nil when disabled (its methods are nil-safe).
	cache *runCache

	sem chan struct{} // execution slots

	// ring is the process-wide span flight recorder: the HTTP tracer and
	// every per-run tracer feed it, so GET /debug/events shows recent
	// activity across the whole server. tracer records one span per HTTP
	// request on the httpTrack track.
	ring      *xtrace.Ring
	tracer    *xtrace.Tracer
	httpTrack int32
	reqSeq    atomic.Int64

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string // creation order, for GET /runs
	nextID int
	closed bool
	wg     sync.WaitGroup

	httpRequests *metrics.Counter

	// routeWin holds one rolling request-latency window per route label
	// (see routeName); runWin rolls run wall times. Both feed the
	// *_rate1m/_p95_1m/... gauge families.
	routeWin map[string]*metrics.Window
	runWin   *metrics.Window

	// runCPUNS/runAllocBytes accumulate per-run resource attribution
	// (see RunResources) across all completed executions.
	runCPUNS      atomic.Int64
	runAllocBytes atomic.Int64
}

// NewServer builds a server and registers its metrics: every core
// live-snapshot counter summed across all registered runs (monotonic —
// runs are never removed, only canceled), the per-fault histograms of
// the most recently started run, and server-level gauges.
func NewServer(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 64
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "motserve"
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.FlightRecorder <= 0 {
		cfg.FlightRecorder = 4096
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		cfg.TraceSample = 0 // core default
	}
	ring := xtrace.NewRing(cfg.FlightRecorder)
	s := &Server{
		cfg:    cfg,
		log:    cfg.Logger,
		reg:    metrics.NewRegistry(),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		runs:   make(map[string]*Run),
		ring:   ring,
		tracer: xtrace.New(xtrace.Options{Ring: ring}),
	}
	s.httpTrack = s.tracer.RegisterTrack("http")
	if cfg.CacheBytes > 0 {
		s.cache = newRunCache(cfg.CacheBytes)
	}
	RegisterLiveCounters(s.reg, cfg.Prefix, s.liveSnapshot)
	RegisterLiveHistograms(s.reg, cfg.Prefix, s.latestMetrics)
	s.reg.GaugeFunc(cfg.Prefix+"_runs_active", "Runs currently executing.", func() float64 {
		return float64(s.countStatus(StatusRunning))
	})
	s.reg.GaugeFunc(cfg.Prefix+"_runs_queued", "Runs waiting for an execution slot.", func() float64 {
		return float64(s.countStatus(StatusQueued))
	})
	s.httpRequests = s.reg.Counter(cfg.Prefix+"_http_requests_total", "HTTP requests served.")
	// The cache series register even when the cache is disabled (they
	// then read zero forever) so dashboards need no conditional panels.
	s.reg.CounterFunc(cfg.Prefix+"_cache_hits_total", "Cross-run cache lookups that hit.",
		func() int64 { return s.cache.stats().Hits })
	s.reg.CounterFunc(cfg.Prefix+"_cache_misses_total", "Cross-run cache lookups that missed.",
		func() int64 { return s.cache.stats().Misses })
	s.reg.CounterFunc(cfg.Prefix+"_cache_evictions_total", "Cross-run cache entries evicted.",
		func() int64 { return s.cache.stats().Evictions })
	s.reg.GaugeFunc(cfg.Prefix+"_cache_bytes_total", "Accounted bytes resident in the cross-run cache.",
		func() float64 { return float64(s.cache.stats().Bytes) })
	s.reg.CounterFunc(cfg.Prefix+"_trace_spans_total",
		"Spans recorded across the HTTP tracer and every run tracer.",
		func() int64 { return s.spanStats().Spans })
	s.reg.CounterFunc(cfg.Prefix+"_trace_spans_dropped_total",
		"Spans discarded because a tracer's merged span store was full.",
		func() int64 { return s.spanStats().Dropped })
	metrics.RegisterRuntime(s.reg, cfg.Prefix)
	s.routeWin = make(map[string]*metrics.Window, len(routeNames))
	for _, route := range routeNames {
		w := metrics.NewWindow(routeWindowInterval, routeWindowSpan, httpLatencyBounds()...)
		s.routeWin[route] = w
		metrics.RegisterWindow(s.reg, cfg.Prefix+"_http_"+route+"_seconds",
			"HTTP request latency, route "+route, 1e-9, w)
	}
	s.runWin = metrics.NewWindow(routeWindowInterval, routeWindowSpan, runLatencyBounds()...)
	metrics.RegisterWindow(s.reg, cfg.Prefix+"_run_seconds", "Run wall time", 1e-9, s.runWin)
	s.reg.CounterFloatFunc(cfg.Prefix+"_run_cpu_seconds_total",
		"CPU time (user+system) attributed to run execution; overlapping runs each absorb the process total.",
		func() float64 { return float64(s.runCPUNS.Load()) * 1e-9 })
	s.reg.CounterFunc(cfg.Prefix+"_run_alloc_bytes_total",
		"Heap bytes allocated during run execution; overlapping runs each absorb the process total.",
		func() int64 { return s.runAllocBytes.Load() })
	return s
}

// Rolling-window geometry shared by the per-route and per-run windows:
// 10-second buckets covering the 5-minute horizon.
const (
	routeWindowInterval = 10 * time.Second
	routeWindowSpan     = 5 * time.Minute
)

// httpLatencyBounds covers ~65 microseconds to ~4.5 minutes in
// nanoseconds, the plausible span of API request durations.
func httpLatencyBounds() []int64 { return metrics.ExpBounds(1<<16, 4, 12) }

// runLatencyBounds covers ~1 millisecond to ~18 hours in nanoseconds,
// the plausible span of whole-run wall times.
func runLatencyBounds() []int64 { return metrics.ExpBounds(1e6, 4, 13) }

// spanStats sums span accounting over the HTTP tracer and every run
// tracer. Runs are never removed from the registry, so both sums are
// monotonic and sound to scrape as counters.
func (s *Server) spanStats() xtrace.Stats {
	sum := s.tracer.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		st := r.tracer.Stats()
		sum.Spans += st.Spans
		sum.Dropped += st.Dropped
	}
	return sum
}

// Registry exposes the server's metric registry (for tests and for
// embedding extra metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// liveSnapshot sums the per-run snapshots. Each run's snapshot is
// monotonic and runs are never removed from the registry, so every
// summed field is monotonic too — sound to scrape as counters.
func (s *Server) liveSnapshot() core.LiveSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum core.LiveSnapshot
	for _, r := range s.runs {
		sum = addSnapshots(sum, r.live.Snapshot())
	}
	return sum
}

// addSnapshots field-wise adds two snapshots.
func addSnapshots(a, b core.LiveSnapshot) core.LiveSnapshot {
	a.RunsStarted += b.RunsStarted
	a.RunsDone += b.RunsDone
	a.FaultsTotal += b.FaultsTotal
	a.FaultsDone += b.FaultsDone
	a.Conv += b.Conv
	a.MOT += b.MOT
	a.PrunedConditionC += b.PrunedConditionC
	a.PrescreenPasses += b.PrescreenPasses
	a.PrescreenDropped += b.PrescreenDropped
	a.PrescreenFrames += b.PrescreenFrames
	a.MOTFaults += b.MOTFaults
	a.Pairs += b.Pairs
	a.Expansions += b.Expansions
	a.Sequences += b.Sequences
	a.ImplyCalls += b.ImplyCalls
	a.ImplyNS += b.ImplyNS
	a.ResimVectorPasses += b.ResimVectorPasses
	a.ResimVectorFrames += b.ResimVectorFrames
	a.ResimSerialFallbacks += b.ResimSerialFallbacks
	a.Step0NS += b.Step0NS
	a.CollectNS += b.CollectNS
	a.ExpandNS += b.ExpandNS
	a.ResimNS += b.ResimNS
	a.TotalNS += b.TotalNS
	a.DeltaFrames += b.DeltaFrames
	a.DeltaGateEvals += b.DeltaGateEvals
	a.FullFrames += b.FullFrames
	a.EventFrames += b.EventFrames
	a.EventGateEvals += b.EventGateEvals
	a.Events += b.Events
	return a
}

// latestMetrics returns the per-fault histograms of the most recently
// created run that has any (nil before the first metrics-enabled run) —
// the histogram source for the exposition. Unlike the counters these
// are per-run distributions, so the newest run wins rather than a sum.
func (s *Server) latestMetrics() *core.RunMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		if m := s.runs[s.order[i]].live.Metrics(); m != nil {
			return m
		}
	}
	return nil
}

// countStatus counts registered runs in the given status.
func (s *Server) countStatus(status string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.runs {
		r.mu.Lock()
		if r.status == status {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// Handler returns the server's full HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleCreate)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /runs/{id}", s.handleDelete)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	profiling.RegisterHTTP(mux)
	return s.withTelemetry(mux)
}

// handleHealthz is GET /healthz: "ok" while serving, and 503 "draining"
// with the pending run count once Close has begun — load balancers stop
// routing to a draining instance while in-flight runs finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if closed {
		pending := s.countStatus(StatusQueued) + s.countStatus(StatusRunning)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "draining (%d runs pending)\n", pending)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleCreate is POST /runs: validate, compile, register, and start
// the run (queued until an execution slot frees up). Responds 202 with
// the initial status.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	run, err := s.buildRun(req, time.Now())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	run.cancel = cancel

	// One critical section checks the shutdown flag, re-checks the
	// registry cap, and reserves the slot (ID + map insert). Splitting
	// the cap check from the insert would let concurrent submissions
	// all pass the check and overfill the registry.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	}
	if len(s.runs) >= s.cfg.MaxRuns {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("run registry full (%d runs)", s.cfg.MaxRuns))
		return
	}
	s.nextID++
	id := fmt.Sprintf("r%04d", s.nextID)
	run.ID = id
	s.runs[id] = run
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	// The access-log middleware and API clients read the assigned ID
	// from this header (the body carries it too, but the middleware
	// never parses bodies).
	w.Header().Set("X-Run-ID", id)

	s.log.Info("run submitted", "run", id,
		"circuit", run.circuit.Name, "method", run.method,
		"faults", len(run.faults), "patterns", len(run.seq), "workers", run.workers)

	go func() {
		defer s.wg.Done()
		defer cancel()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			// Canceled while queued: the run never executed, so mark it
			// started and finished at the same instant — timestamps then
			// always appear in pairs (a finished run without a start time
			// breaks any elapsed computation downstream).
			now := time.Now()
			run.mu.Lock()
			run.status = StatusCanceled
			run.started = now
			run.finished = now
			run.runErr = ctx.Err()
			run.mu.Unlock()
			run.event("status", map[string]any{"status": StatusCanceled})
			run.events.close()
			s.log.Info("run canceled while queued", "run", id)
			return
		}
		before := sampleResources()
		run.execute(ctx)
		cpu, alloc := sampleResources().delta(before)
		run.setResources(cpu, alloc)
		s.runCPUNS.Add(int64(cpu))
		s.runAllocBytes.Add(alloc)
		st := run.Status()
		attrs := []any{"run", id, "status", st.Status}
		if st.StartedAt != nil && st.FinishedAt != nil {
			elapsed := st.FinishedAt.Sub(*st.StartedAt)
			s.runWin.Observe(int64(elapsed))
			attrs = append(attrs, "elapsed", elapsed.Round(time.Millisecond))
		}
		if st.Status == StatusDone {
			attrs = append(attrs, report.ResultAttrs(run.result)...)
			s.log.Info("run finished", attrs...)
		} else {
			attrs = append(attrs, "error", st.Error)
			s.log.Warn("run finished", attrs...)
		}
	}()

	writeJSON(w, http.StatusAccepted, run.Status())
}

// handleList is GET /runs: all runs in creation order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]RunStatus, len(runs))
	for i, run := range runs {
		out[i] = run.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// lookup fetches a run by the {id} path value, or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Run {
	id := r.PathValue("id")
	s.mu.Lock()
	run := s.runs[id]
	s.mu.Unlock()
	if run == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no run %q", id))
	}
	return run
}

// handleGet is GET /runs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if run := s.lookup(w, r); run != nil {
		writeJSON(w, http.StatusOK, run.Status())
	}
}

// handleDelete is DELETE /runs/{id}: cancel the run. The run stays
// registered (status canceled) so the aggregate counters stay
// monotonic; deleting a finished run is a no-op cancel.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	run.cancel()
	s.log.Info("run cancel requested", "run", run.ID)
	writeJSON(w, http.StatusOK, run.Status())
}

// handleEvents is GET /runs/{id}/events: a Server-Sent Events stream
// replaying the run's full event log and following it until the run
// completes or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	idx := 0
	for {
		events, done, wake := run.events.next(idx)
		for _, e := range events {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Name, e.Data)
		}
		idx += len(events)
		fl.Flush()
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// Close cancels every run and waits (bounded by ctx) for the run
// goroutines to drain. Further submissions are rejected.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		if r.cancel != nil {
			r.cancel()
		}
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
