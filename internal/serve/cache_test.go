package serve

import (
	"bufio"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// serverWith builds a test server with a custom config (logger and
// cleanup wired like newTestServer).
func serverWith(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// traceData replays a finished run's event stream and returns the raw
// data payloads of its per-fault trace events, in stream order.
func traceData(t *testing.T, ts *httptest.Server, id string) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	var out []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "trace":
			out = append(out, strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerWarmColdCrossCheck is the end-to-end memoization gate: a
// repeated identical submission must hit the cache for both the
// compiled circuit and the fault-free trace, and still produce results
// byte-identical to the cold run (same report, same per-fault trace
// stream).
func TestServerWarmColdCrossCheck(t *testing.T) {
	_, ts := newTestServer(t)
	req := RunRequest{Circuit: "sg208", Random: 48, Seed: 3, Workers: 2, Trace: true}

	cold := waitDone(t, ts, postRun(t, ts, req).ID)
	if cold.Status != StatusDone {
		t.Fatalf("cold run: %q (%s)", cold.Status, cold.Error)
	}
	if cold.Cache == nil {
		t.Fatal("cold run reports no cache info")
	}
	if cold.Cache.CircuitHit || cold.Cache.TraceHit {
		t.Fatalf("cold run reports cache hits: %+v", cold.Cache)
	}

	warm := waitDone(t, ts, postRun(t, ts, req).ID)
	if warm.Status != StatusDone {
		t.Fatalf("warm run: %q (%s)", warm.Status, warm.Error)
	}
	if warm.Cache == nil || !warm.Cache.CircuitHit || !warm.Cache.TraceHit {
		t.Fatalf("warm run missed the cache: %+v", warm.Cache)
	}

	if cold.Report == nil || warm.Report == nil {
		t.Fatal("missing report")
	}
	if warm.Report.Conv != cold.Report.Conv || warm.Report.MOT != cold.Report.MOT ||
		warm.Faults != cold.Faults {
		t.Fatalf("warm report conv=%d mot=%d faults=%d != cold conv=%d mot=%d faults=%d",
			warm.Report.Conv, warm.Report.MOT, warm.Faults,
			cold.Report.Conv, cold.Report.MOT, cold.Faults)
	}
	// The warm run skipped the good simulation: its step-0 stage starts
	// from a cached trace, so the compile must be absent from the report
	// timing (compile happens at submission, cached thereafter).
	coldTrace, warmTrace := traceData(t, ts, cold.ID), traceData(t, ts, warm.ID)
	if !reflect.DeepEqual(coldTrace, warmTrace) {
		t.Fatalf("trace streams differ: cold %d events, warm %d events", len(coldTrace), len(warmTrace))
	}
	if len(coldTrace) != cold.Faults {
		t.Fatalf("trace stream has %d events, want %d", len(coldTrace), cold.Faults)
	}

	samples := scrape(t, ts)
	if samples["motserve_cache_hits_total"] < 2 {
		t.Errorf("cache hits = %v, want >= 2 (circuit + trace)", samples["motserve_cache_hits_total"])
	}
	if samples["motserve_cache_misses_total"] < 2 {
		t.Errorf("cache misses = %v, want >= 2", samples["motserve_cache_misses_total"])
	}
	if samples["motserve_cache_bytes_total"] <= 0 {
		t.Errorf("cache bytes = %v, want > 0", samples["motserve_cache_bytes_total"])
	}
}

// TestServerInlineBenchCacheHit checks content addressing of inline
// netlists: the same bench text submitted twice compiles once, while a
// disabled cache reports no cache info at all.
func TestServerInlineBenchCacheHit(t *testing.T) {
	const benchText = `
INPUT(r)
INPUT(x)
OUTPUT(obs)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
obs = BUFF(q)
`
	_, ts := newTestServer(t)
	req := RunRequest{Bench: benchText, Random: 16, Workers: 1}

	first := waitDone(t, ts, postRun(t, ts, req).ID)
	if first.Cache == nil || first.Cache.CircuitHit {
		t.Fatalf("first inline run: %+v", first.Cache)
	}
	second := waitDone(t, ts, postRun(t, ts, req).ID)
	if second.Cache == nil || !second.Cache.CircuitHit || !second.Cache.TraceHit {
		t.Fatalf("second inline run missed: %+v", second.Cache)
	}

	// Disabled cache: no cache info on statuses, metrics stay zero.
	_, tsOff := serverWith(t, Config{MaxConcurrent: 2, CacheBytes: -1})
	st := waitDone(t, tsOff, postRun(t, tsOff, req).ID)
	if st.Status != StatusDone {
		t.Fatalf("run with cache disabled: %q (%s)", st.Status, st.Error)
	}
	if st.Cache != nil {
		t.Fatalf("cache disabled but status carries cache info: %+v", st.Cache)
	}
	samples := scrape(t, tsOff)
	if samples["motserve_cache_hits_total"] != 0 || samples["motserve_cache_misses_total"] != 0 {
		t.Errorf("disabled cache counted lookups: hits=%v misses=%v",
			samples["motserve_cache_hits_total"], samples["motserve_cache_misses_total"])
	}
}

// TestServerMaxRunsConcurrentSubmit is the regression test for the
// registry-cap race: the capacity check and the insert used to happen
// under separate lock acquisitions, so a burst of concurrent
// submissions could all pass the check and overfill the registry. With
// the single critical section exactly MaxRuns submissions are accepted.
func TestServerMaxRunsConcurrentSubmit(t *testing.T) {
	const maxRuns = 4
	s, ts := serverWith(t, Config{MaxConcurrent: 1, MaxRuns: maxRuns})

	const submitters = 32
	codes := make([]int, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/runs", "application/json",
				strings.NewReader(`{"circuit":"s27","random":4,"workers":1}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	accepted, rejected := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if accepted != maxRuns || rejected != submitters-maxRuns {
		t.Fatalf("accepted %d rejected %d, want %d/%d", accepted, rejected, maxRuns, submitters-maxRuns)
	}
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	if n != maxRuns {
		t.Fatalf("registry holds %d runs, want %d", n, maxRuns)
	}
}

// TestServerEmptyVectorsRejected is the regression test for inline
// vector text with no patterns (only comments and blank lines), which
// used to build a 0-pattern run instead of failing the request.
func TestServerEmptyVectorsRejected(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"comments only":   `{"circuit":"s27","vectors":"# header\n# more\n"}`,
		"blank lines":     `{"circuit":"s27","vectors":"\n\n\n"}`,
		"empty string ok": `{"circuit":"s27"}`, // no vectors at all falls back to random — accepted
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		want := http.StatusBadRequest
		if name == "empty string ok" {
			want = http.StatusAccepted
		}
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, want)
		}
	}
}

// TestServerQueuedCancelLifecycle is the regression test for the
// queued-cancel lifecycle: a run canceled before it ever acquired an
// execution slot must still expose a start timestamp (equal to its
// finish), so every finished run has a well-formed elapsed time.
func TestServerQueuedCancelLifecycle(t *testing.T) {
	_, ts := serverWith(t, Config{MaxConcurrent: 1})

	// Occupy the single slot with a long run, then queue a second one.
	// Waiting for the first run to actually hold the slot makes the
	// second one's queued state deterministic.
	long := postRun(t, ts, RunRequest{Circuit: "sg641", Random: 512, Workers: 1, Prescreen: boolPtr(false)})
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, long.ID).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("long run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued := postRun(t, ts, RunRequest{Circuit: "s27", Random: 8, Workers: 1})
	if queued.Status != StatusQueued {
		t.Fatalf("second run status = %q, want queued", queued.Status)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fin := waitDone(t, ts, queued.ID)
	if fin.Status != StatusCanceled {
		t.Fatalf("queued run after cancel = %q (%s)", fin.Status, fin.Error)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Fatalf("canceled queued run missing timestamps: started=%v finished=%v",
			fin.StartedAt, fin.FinishedAt)
	}
	if !fin.StartedAt.Equal(*fin.FinishedAt) {
		t.Errorf("queued cancel: started %v != finished %v", fin.StartedAt, fin.FinishedAt)
	}

	// Release the slot promptly.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+long.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitDone(t, ts, long.ID)
}
