package serve

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// sentinelSnapshot builds a LiveSnapshot whose i-th field holds the
// distinct value i+1, so any field a consumer drops or double-counts is
// detectable by value.
func sentinelSnapshot(t *testing.T) core.LiveSnapshot {
	t.Helper()
	var s core.LiveSnapshot
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("LiveSnapshot field %s is %s; the sentinel scheme assumes int64 — extend this test",
				v.Type().Field(i).Name, f.Kind())
		}
		f.SetInt(int64(i + 1))
	}
	return s
}

// TestAddSnapshotsCoversAllFields guards the aggregate /metrics path:
// addSnapshots must sum every LiveSnapshot field, so that adding a
// field to core without extending the adder fails this test instead of
// silently freezing one server-level counter.
func TestAddSnapshotsCoversAllFields(t *testing.T) {
	s := sentinelSnapshot(t)
	sum := addSnapshots(s, s)
	v := reflect.ValueOf(sum)
	for i := 0; i < v.NumField(); i++ {
		want := int64(2 * (i + 1))
		if got := v.Field(i).Int(); got != want {
			t.Errorf("addSnapshots dropped field %s: got %d, want %d",
				v.Type().Field(i).Name, got, want)
		}
	}
}

// TestLiveCountersCoverAllFields guards the exposition table: every
// LiveSnapshot field must be read by exactly one liveCounters entry —
// no field unexposed, no field scraped under two names.
func TestLiveCountersCoverAllFields(t *testing.T) {
	numFields := reflect.TypeOf(core.LiveSnapshot{}).NumField()
	if len(liveCounters) != numFields {
		t.Fatalf("liveCounters has %d entries, LiveSnapshot has %d fields", len(liveCounters), numFields)
	}
	s := sentinelSnapshot(t)
	seen := make(map[int64]string, numFields)
	for _, m := range liveCounters {
		got := m.get(s)
		if got < 1 || got > int64(numFields) {
			t.Errorf("counter %s reads %d, not a sentinel value", m.name, got)
			continue
		}
		field := reflect.TypeOf(s).Field(int(got - 1)).Name
		if prev, dup := seen[got]; dup {
			t.Errorf("field %s read by both %s and %s", field, prev, m.name)
		}
		seen[got] = m.name
	}
	if len(seen) != numFields {
		for i := 0; i < numFields; i++ {
			if _, ok := seen[int64(i+1)]; !ok {
				t.Errorf("field %s has no counter", reflect.TypeOf(s).Field(i).Name)
			}
		}
	}
}
