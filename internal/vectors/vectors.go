// Package vectors reads and writes test-sequence files: one input pattern
// per line ('0', '1', 'x'), '#' comments, blank lines ignored — the plain
// format used by classic sequential test generators.
package vectors

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/logic"
	"repro/internal/seqsim"
)

// Read parses a vector file from r. Every pattern must have the same
// width.
func Read(r io.Reader) (seqsim.Sequence, error) {
	sc := bufio.NewScanner(r)
	var T seqsim.Sequence
	lineNo := 0
	width := -1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := logic.ParseVals(line)
		if err != nil {
			return nil, fmt.Errorf("vectors: line %d: %w", lineNo, err)
		}
		if width < 0 {
			width = len(p)
		} else if len(p) != width {
			return nil, fmt.Errorf("vectors: line %d: pattern width %d, want %d", lineNo, len(p), width)
		}
		T = append(T, seqsim.Pattern(p))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vectors: %w", err)
	}
	return T, nil
}

// ReadFile parses a vector file from disk.
func ReadFile(path string) (seqsim.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write renders a test sequence, one pattern per line.
func Write(w io.Writer, T seqsim.Sequence) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d patterns\n", len(T))
	for _, p := range T {
		fmt.Fprintln(bw, logic.FormatVals(p))
	}
	return bw.Flush()
}

// WriteFile writes a test sequence to disk.
func WriteFile(path string, T seqsim.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, T); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Format renders a test sequence as a string.
func Format(T seqsim.Sequence) string {
	var sb strings.Builder
	_ = Write(&sb, T)
	return sb.String()
}
