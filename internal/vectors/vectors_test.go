package vectors

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/seqsim"
)

func TestReadBasic(t *testing.T) {
	src := `
# header comment
1011
0x10  # trailing comment

1111
`
	T, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(T) != 3 {
		t.Fatalf("len = %d, want 3", len(T))
	}
	if T[1][1] != logic.X {
		t.Error("x value not parsed")
	}
}

func TestReadWidthMismatch(t *testing.T) {
	if _, err := Read(strings.NewReader("101\n10\n")); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestReadBadChar(t *testing.T) {
	_, err := Read(strings.NewReader("101\n1?1\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad char error = %v, want line info", err)
	}
}

func TestRoundTrip(t *testing.T) {
	T := seqsim.Sequence{
		{logic.One, logic.Zero, logic.X},
		{logic.Zero, logic.Zero, logic.One},
	}
	text := Format(T)
	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(T) {
		t.Fatal("round trip changed length")
	}
	for u := range T {
		if logic.FormatVals(back[u]) != logic.FormatVals(T[u]) {
			t.Fatal("round trip changed values")
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.vec")
	T := seqsim.Sequence{{logic.One}, {logic.Zero}}
	if err := WriteFile(path, T); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0][0] != logic.One {
		t.Fatal("file round trip wrong")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.vec")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	T, err := Read(strings.NewReader("# nothing\n"))
	if err != nil || len(T) != 0 {
		t.Fatalf("empty file: %v %d", err, len(T))
	}
}
