// Package profiling wires the standard Go profilers into the CLIs: CPU
// profile, heap profile, and execution trace, each gated by a file-path
// option. It exists so every command shares one tested start/stop
// sequence instead of repeating the pprof boilerplate.
package profiling

import (
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Options names the profile outputs; an empty path disables that
// profiler.
type Options struct {
	// CPUProfile receives a pprof CPU profile covering Start..Stop.
	CPUProfile string
	// MemProfile receives a pprof heap profile taken at Stop.
	MemProfile string
	// ExecTrace receives a runtime execution trace covering Start..Stop.
	ExecTrace string
	// SpanTrace receives the application-level span trace (Chrome
	// trace-event JSON) written by the writer installed with
	// Session.SetSpanWriter. An empty path or a missing writer disables
	// the output.
	SpanTrace string
}

// Enabled reports whether any profiler is requested.
func (o Options) Enabled() bool {
	return o.CPUProfile != "" || o.MemProfile != "" || o.ExecTrace != "" || o.SpanTrace != ""
}

// Session is a running set of profilers; always call Stop (it is a
// no-op for profilers that never started).
type Session struct {
	opts       Options
	cpuFile    *os.File
	traceFile  *os.File
	spanWriter func(io.Writer) error
}

// SetSpanWriter installs the function Stop uses to serialize the span
// trace into Options.SpanTrace — typically a Tracer's WriteChromeTrace
// bound by the caller, which keeps this package decoupled from the
// tracing implementation. Safe to call on a nil session (profiling
// disabled) and before or after Start.
func (s *Session) SetSpanWriter(f func(io.Writer) error) {
	if s != nil {
		s.spanWriter = f
	}
}

// Start opens the requested profile outputs and starts the CPU profiler
// and execution tracer. On any error it stops whatever already started
// and returns the error.
func Start(opts Options) (*Session, error) {
	s := &Session{opts: opts}
	if opts.CPUProfile != "" {
		f, err := os.Create(opts.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	if opts.ExecTrace != "" {
		f, err := os.Create(opts.ExecTrace)
		if err != nil {
			s.stopCPU()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.stopCPU()
			return nil, fmt.Errorf("profiling: start execution trace: %w", err)
		}
		s.traceFile = f
	}
	return s, nil
}

// stopCPU finishes the CPU profile if it is running.
func (s *Session) stopCPU() {
	if s.cpuFile == nil {
		return
	}
	pprof.StopCPUProfile()
	s.cpuFile.Close()
	s.cpuFile = nil
}

// Stop finishes every running profiler and writes the heap profile.
// It returns the first error encountered but always attempts every
// shutdown step.
func (s *Session) Stop() error {
	var first error
	s.stopCPU()
	if s.traceFile != nil {
		trace.Stop()
		if err := s.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("profiling: %w", err)
		}
		s.traceFile = nil
	}
	if s.opts.SpanTrace != "" && s.spanWriter != nil {
		if err := writeFile(s.opts.SpanTrace, s.spanWriter); err != nil && first == nil {
			first = err
		}
		s.opts.SpanTrace = ""
	}
	if s.opts.MemProfile != "" {
		f, err := os.Create(s.opts.MemProfile)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		} else {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		s.opts.MemProfile = ""
	}
	return first
}

// writeFile creates path and streams write into it, joining errors.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("profiling: write span trace: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("profiling: %w", cerr)
	}
	return nil
}

// RegisterHTTP attaches the net/http/pprof handlers to mux under
// /debug/pprof/ without relying on the package's DefaultServeMux side
// effects — the live-profiling counterpart of the file-based Session,
// used by cmd/motserve and the batch CLIs' -metrics-addr sidecar.
func RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}
