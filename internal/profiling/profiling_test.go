package profiling

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabled(t *testing.T) {
	var o Options
	if o.Enabled() {
		t.Fatal("zero Options reports enabled")
	}
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProfiles(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		ExecTrace:  filepath.Join(dir, "trace.out"),
	}
	if !o.Enabled() {
		t.Fatal("options not enabled")
	}
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles have content.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop is idempotent.
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile, o.ExecTrace} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestSpanTrace(t *testing.T) {
	dir := t.TempDir()
	o := Options{SpanTrace: filepath.Join(dir, "spans.trace.json")}
	if !o.Enabled() {
		t.Fatal("span trace alone should enable profiling")
	}
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSpanWriter(func(w io.Writer) error {
		_, err := fmt.Fprint(w, `{"traceEvents":[]}`)
		return err
	})
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.SpanTrace)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"traceEvents":[]}` {
		t.Errorf("span trace content = %q", b)
	}

	// No writer installed: the path is skipped without error.
	s2, err := Start(Options{SpanTrace: filepath.Join(dir, "never.json")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "never.json")); !os.IsNotExist(err) {
		t.Error("span trace written without a writer")
	}

	// Nil session tolerates SetSpanWriter.
	var nilS *Session
	nilS.SetSpanWriter(func(io.Writer) error { return nil })
}

func TestStartErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	// An unwritable path: the directory itself.
	_, err := Start(Options{CPUProfile: dir})
	if err == nil {
		t.Fatal("Start with a directory path did not fail")
	}
	// The CPU profiler must have been released for the next Start.
	s, err := Start(Options{CPUProfile: filepath.Join(dir, "cpu.pprof")})
	if err != nil {
		t.Fatalf("CPU profiler not released after failed Start: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}
