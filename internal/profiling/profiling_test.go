package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabled(t *testing.T) {
	var o Options
	if o.Enabled() {
		t.Fatal("zero Options reports enabled")
	}
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProfiles(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		ExecTrace:  filepath.Join(dir, "trace.out"),
	}
	if !o.Enabled() {
		t.Fatal("options not enabled")
	}
	s, err := Start(o)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles have content.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop is idempotent.
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile, o.ExecTrace} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	// An unwritable path: the directory itself.
	_, err := Start(Options{CPUProfile: dir})
	if err == nil {
		t.Fatal("Start with a directory path did not fail")
	}
	// The CPU profiler must have been released for the next Start.
	s, err := Start(Options{CPUProfile: filepath.Join(dir, "cpu.pprof")})
	if err != nil {
		t.Fatalf("CPU profiler not released after failed Start: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}
