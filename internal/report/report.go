// Package report renders the paper's result tables (Table 2: detected
// fault counts; Table 3: backward-implication effectiveness counters) in
// plain-text and CSV form, with optional paper-reference columns for
// shape comparison.
package report

import (
	"fmt"
	"strings"

	"repro/internal/circuits"
)

// Table2Row is one measured row of Table 2.
type Table2Row struct {
	Circuit string
	Total   int
	Conv    int
	// Baseline is the procedure of [4]; Extra columns count detections
	// beyond conventional simulation.
	BaseTotal int
	BaseExtra int
	PropTotal int
	PropExtra int
	// Paper optionally holds the published numbers for the circuit the
	// row's synthetic stand-in mirrors.
	Paper *circuits.PaperRow
}

// Table3Row is one measured row of Table 3: averages of the per-fault
// counters over faults detected by the proposed method beyond
// conventional simulation.
type Table3Row struct {
	Circuit string
	Det     float64
	Conf    float64
	Extra   float64
	Paper   *circuits.PaperRow
}

// naInt renders n, or "NA" for negative sentinel values.
func naInt(n int) string {
	if n < 0 {
		return "NA"
	}
	return fmt.Sprintf("%d", n)
}

// FormatTable2 renders Table 2. With paper=true, each measured column is
// followed by the published value in brackets.
func FormatTable2(rows []Table2Row, paper bool) string {
	var sb strings.Builder
	if paper {
		fmt.Fprintf(&sb, "%-10s %-14s %-14s %-11s %-11s %-11s %-11s\n",
			"circuit", "total[paper]", "conv[paper]", "[4]tot", "[4]extra", "prop.tot", "prop.extra")
	} else {
		fmt.Fprintf(&sb, "%-10s %8s %8s %8s %9s %9s %10s\n",
			"circuit", "total", "conv", "[4]tot", "[4]extra", "prop.tot", "prop.extra")
	}
	for _, r := range rows {
		if paper && r.Paper != nil {
			p := r.Paper
			fmt.Fprintf(&sb, "%-10s %-14s %-14s %-11s %-11s %-11s %-11s\n",
				r.Circuit,
				fmt.Sprintf("%d[%d]", r.Total, p.TotalFaults),
				fmt.Sprintf("%d[%d]", r.Conv, p.Conventional),
				fmt.Sprintf("%d[%s]", r.BaseTotal, naInt(p.BaselineTotal)),
				fmt.Sprintf("%d[%s]", r.BaseExtra, naInt(p.BaselineExtra)),
				fmt.Sprintf("%d[%d]", r.PropTotal, p.ProposedTotal),
				fmt.Sprintf("%d[%d]", r.PropExtra, p.ProposedExtra))
			continue
		}
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %9d %9d %10d\n",
			r.Circuit, r.Total, r.Conv, r.BaseTotal, r.BaseExtra, r.PropTotal, r.PropExtra)
	}
	return sb.String()
}

// CSVTable2 renders Table 2 as CSV.
func CSVTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("circuit,total,conv,base_total,base_extra,prop_total,prop_extra\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%d,%d,%d,%d,%d\n",
			r.Circuit, r.Total, r.Conv, r.BaseTotal, r.BaseExtra, r.PropTotal, r.PropExtra)
	}
	return sb.String()
}

// FormatTable3 renders Table 3. With paper=true the published averages
// follow in brackets.
func FormatTable3(rows []Table3Row, paper bool) string {
	var sb strings.Builder
	if paper {
		fmt.Fprintf(&sb, "%-10s %-18s %-18s %-18s\n", "circuit", "detect[paper]", "conf[paper]", "extra[paper]")
	} else {
		fmt.Fprintf(&sb, "%-10s %10s %10s %10s\n", "circuit", "detect", "conf", "extra")
	}
	for _, r := range rows {
		if paper && r.Paper != nil {
			p := r.Paper
			fmt.Fprintf(&sb, "%-10s %-18s %-18s %-18s\n",
				r.Circuit,
				fmt.Sprintf("%.2f[%.2f]", r.Det, p.AvgDetect),
				fmt.Sprintf("%.2f[%.2f]", r.Conf, p.AvgConf),
				fmt.Sprintf("%.2f[%.2f]", r.Extra, p.AvgExtra))
			continue
		}
		fmt.Fprintf(&sb, "%-10s %10.2f %10.2f %10.2f\n", r.Circuit, r.Det, r.Conf, r.Extra)
	}
	return sb.String()
}

// CSVTable3 renders Table 3 as CSV.
func CSVTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("circuit,avg_detect,avg_conf,avg_extra\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%.2f,%.2f,%.2f\n", r.Circuit, r.Det, r.Conf, r.Extra)
	}
	return sb.String()
}

// ShapeCheck describes whether the measured rows preserve the paper's
// qualitative shape: proposed >= baseline >= conventional everywhere, and
// the proposed procedure finds extra faults on circuits where the paper
// reports extras.
type ShapeCheck struct {
	OrderingHolds   bool
	CircuitsWithMOT int
	StrictWins      int // circuits where proposed detects more than baseline
	Notes           []string
}

// CheckShape evaluates the qualitative reproduction criteria on Table 2
// rows.
func CheckShape(rows []Table2Row) ShapeCheck {
	chk := ShapeCheck{OrderingHolds: true}
	for _, r := range rows {
		if r.PropTotal < r.BaseTotal || r.BaseTotal < r.Conv {
			chk.OrderingHolds = false
			chk.Notes = append(chk.Notes,
				fmt.Sprintf("%s: ordering violated (conv=%d base=%d prop=%d)", r.Circuit, r.Conv, r.BaseTotal, r.PropTotal))
		}
		if r.PropExtra > 0 {
			chk.CircuitsWithMOT++
		}
		if r.PropTotal > r.BaseTotal {
			chk.StrictWins++
		}
	}
	return chk
}
