package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

const watchExposition = `# HELP motserve_runs_started_total Whole-list runs started.
# TYPE motserve_runs_started_total counter
motserve_runs_started_total 3
motserve_runs_done_total 2
motserve_runs_active 1
motserve_runs_queued 0
motserve_faults_total 2048
motserve_faults_done_total 1024
motserve_detected_conventional_total 800
motserve_detected_mot_total 23
motserve_pruned_condition_c_total 77
motserve_prescreen_dropped_total 100
motserve_stage_step0_seconds_total 1.25
motserve_stage_collect_seconds_total 3.5
motserve_stage_imply_seconds_total 1
motserve_stage_expand_seconds_total 0.75
motserve_stage_resim_seconds_total 0.5
motserve_stage_mot_seconds_total 6
motserve_events_total 1200000
motserve_event_frames_total 300000
motserve_resim_vector_passes_total 12000
motserve_imply_calls_total 450000
motserve_cache_hits_total 12
motserve_cache_misses_total 3
motserve_cache_evictions_total 0
motserve_cache_bytes_total 47841280
motserve_http_run_create_seconds_p95_1m 0.0012
motserve_http_run_get_seconds_p95_1m 0.0003
motserve_http_run_list_seconds_p95_1m 0.0004
motserve_http_metrics_seconds_p95_1m 0.002
motserve_run_seconds_p95_1m 4.5
motserve_run_seconds_rate1m 0.03
motserve_run_cpu_seconds_total 12.25
motserve_run_alloc_bytes_total 1288490188
motserve_go_goroutines 42
motserve_go_heap_bytes 129394688
motserve_go_stack_bytes 2202009
motserve_go_gc_cycles_total 15
motserve_go_alloc_bytes_total 2576980377
motserve_fault_seconds_bucket{le="0.001"} 900 # {fault="g17/saf0"} 0.0004
motserve_fault_seconds_bucket{le="+Inf"} 1024
motserve_fault_seconds_sum 3.5
motserve_fault_seconds_count 1024
# EOF
`

func TestParseMetrics(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(watchExposition))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"motserve_faults_done_total":                1024,
		"motserve_go_goroutines":                    42,
		"motserve_run_seconds_p95_1m":               4.5,
		`motserve_fault_seconds_bucket{le="0.001"}`: 900,
		`motserve_fault_seconds_bucket{le="+Inf"}`:  1024,
		"motserve_fault_seconds_count":              1024,
	} {
		if got := m[key]; got != want {
			t.Errorf("sample %s = %v, want %v", key, got, want)
		}
	}
	if _, err := ParseMetrics(strings.NewReader("lonely_name\n")); err == nil {
		t.Error("sample without a value parsed")
	}
	if _, err := ParseMetrics(strings.NewReader("bad_value x\n")); err == nil {
		t.Error("non-numeric sample parsed")
	}
}

func TestFormatWatchFrame(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(watchExposition))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 8, 7, 12, 0, 10, 0, time.UTC)
	prevMetrics := make(map[string]float64, len(m))
	for k, v := range m {
		prevMetrics[k] = v
	}
	prevMetrics["motserve_faults_done_total"] = 924 // 100 faults in 10s
	prev := WatchSnapshot{At: at.Add(-10 * time.Second), Metrics: prevMetrics}
	cur := WatchSnapshot{At: at, Metrics: m}

	frame := FormatWatch("motserve", prev, cur, nil)
	for _, want := range []string{
		"motserve dashboard  2026-08-07 12:00:10",
		"runs: 3 started, 2 done, 1 active, 0 queued",
		"faults: 1024/2048 done (50.0%), 10.0/s",
		"conv 800  mot 23  pruned-C 77",
		"stage cpu: step0 1.25s  collect 3.5s (imply 1s)  expand 750ms  resim 500ms  mot-total 6s",
		"events 1.2M",
		"imply calls 450.0k",
		"cache: 12 hits, 3 misses, 0 evictions, 45.6 MiB resident",
		"http p95 1m: create 1ms  get 0s  list 0s  metrics 2ms",
		"run p95 1m 4.5s, 0.03 runs/s",
		"run resources: cpu 12.25s  alloc 1.2 GiB",
		"go: 42 goroutines  heap 123.4 MiB  stacks 2.1 MiB  gc 15 cycles",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	// The live section renders only when a run is being followed.
	if strings.Contains(frame, "active run:") {
		t.Error("frame shows an active run without one")
	}
	live := &core.LiveSnapshot{RunsStarted: 1, FaultsTotal: 2048, FaultsDone: 1024, Conv: 800}
	withLive := FormatWatch("motserve", prev, cur, live)
	if !strings.Contains(withLive, "active run:") || !strings.Contains(withLive, "1024/2048 faults") {
		t.Errorf("frame with live snapshot missing the active-run section:\n%s", withLive)
	}

	// A first frame (empty prev) renders with zero rates, not garbage.
	first := FormatWatch("motserve", WatchSnapshot{}, cur, nil)
	if !strings.Contains(first, "faults: 1024/2048 done (50.0%), 0.0/s") {
		t.Errorf("first frame rate not zero:\n%s", first)
	}

	// Sidecar expositions (no cache/http/run-attribution series) skip
	// those lines entirely.
	side := make(map[string]float64)
	for k, v := range m {
		if !strings.Contains(k, "cache") && !strings.Contains(k, "http") && !strings.Contains(k, "_run_") {
			side[k] = v
		}
	}
	sideFrame := FormatWatch("motserve", WatchSnapshot{}, WatchSnapshot{At: at, Metrics: side}, nil)
	for _, banned := range []string{"cache:", "http p95", "run resources:"} {
		if strings.Contains(sideFrame, banned) {
			t.Errorf("sidecar frame renders server-only section %q:\n%s", banned, sideFrame)
		}
	}
}

func TestHumanUnits(t *testing.T) {
	for v, want := range map[float64]string{
		512:           "512 B",
		2048:          "2.0 KiB",
		47841280:      "45.6 MiB",
		1288490188.8:  "1.2 GiB",
		1099511627776: "1.0 TiB",
	} {
		if got := humanBytes(v); got != want {
			t.Errorf("humanBytes(%v) = %q, want %q", v, got, want)
		}
	}
	for v, want := range map[float64]string{
		999:     "999",
		1200:    "1.2k",
		1200000: "1.2M",
		2.5e9:   "2.5G",
	} {
		if got := humanCount(v); got != want {
			t.Errorf("humanCount(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRatePerSec(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	prev := WatchSnapshot{At: at, Metrics: map[string]float64{"x": 100}}
	cur := WatchSnapshot{At: at.Add(4 * time.Second), Metrics: map[string]float64{"x": 140}}
	if r := ratePerSec(prev, cur, "x"); r != 10 {
		t.Errorf("rate = %v, want 10", r)
	}
	// Counter reset (restarted exporter) clamps to zero.
	cur.Metrics["x"] = 50
	if r := ratePerSec(prev, cur, "x"); r != 0 {
		t.Errorf("rate after reset = %v, want 0", r)
	}
	if r := ratePerSec(WatchSnapshot{}, cur, "x"); r != 0 {
		t.Errorf("rate with empty prev = %v, want 0", r)
	}
}
