package report

import (
	"strings"
	"testing"

	"repro/internal/xtrace"
)

func faultSpan(name string, k int64, dur int64, outcome string) xtrace.Span {
	return xtrace.Span{
		Name: "fault", Dur: dur,
		Attrs: []xtrace.Attr{
			{Key: "k", Val: itoa(k)},
			{Key: "fault", Val: name},
			{Key: "outcome", Val: outcome},
			{Key: "pairs", Val: "3"},
			{Key: "seqs", Val: "1"},
		},
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFormatStragglers(t *testing.T) {
	spans := []xtrace.Span{
		{Name: "run s27", Dur: 100000},
		faultSpan("G1/0", 0, 500, "conv"),
		faultSpan("G2/1", 1, 9000, "mot"),
		faultSpan("G3/0", 2, 7000, "undetected"),
		faultSpan("G4/1", 3, 9000, "mot"), // ties with G2 on duration; k breaks it
		{Name: "expand", Dur: 8000},
	}
	out := FormatStragglers(spans, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header x2 + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "top 3 of 4 traced faults") {
		t.Errorf("bad header: %q", lines[0])
	}
	for i, wantFault := range []string{"G2/1", "G4/1", "G3/0"} {
		if !strings.Contains(lines[2+i], wantFault) {
			t.Errorf("rank %d = %q, want fault %s", i+1, lines[2+i], wantFault)
		}
	}
	if !strings.Contains(lines[2], "mot") || !strings.Contains(lines[4], "undetected") {
		t.Errorf("outcome column wrong:\n%s", out)
	}

	// k larger than the population clamps; empty input degrades politely.
	if out := FormatStragglers(spans, 100); !strings.Contains(out, "top 4 of 4") {
		t.Errorf("unclamped k: %s", out)
	}
	if out := FormatStragglers(nil, 5); !strings.Contains(out, "no fault spans") {
		t.Errorf("empty input: %s", out)
	}
}
