package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/xtrace"
)

// FormatStragglers renders the top-k slowest "fault" spans of a traced
// run as a table — the heavy tail of the per-fault cost distribution,
// with each fault's outcome and pair/sequence counts alongside its
// wall time. Spans other than fault spans are ignored; ties break by
// fault index so the table is deterministic.
func FormatStragglers(spans []xtrace.Span, k int) string {
	var faults []xtrace.Span
	for _, s := range spans {
		if s.Name == "fault" && s.Dur >= 0 {
			faults = append(faults, s)
		}
	}
	if len(faults) == 0 {
		return "no fault spans recorded (tracing off or zero sampling rate)\n"
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Dur != faults[j].Dur {
			return faults[i].Dur > faults[j].Dur
		}
		return attrInt(faults[i], "k") < attrInt(faults[j], "k")
	})
	if k <= 0 {
		k = 10
	}
	if k > len(faults) {
		k = len(faults)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "top %d of %d traced faults by wall time:\n", k, len(faults))
	fmt.Fprintf(&sb, "%4s %-24s %8s %-12s %6s %6s %12s\n",
		"rank", "fault", "k", "outcome", "pairs", "seqs", "time")
	for i, s := range faults[:k] {
		fmt.Fprintf(&sb, "%4d %-24s %8s %-12s %6s %6s %12s\n",
			i+1, attr(s, "fault"), attr(s, "k"), attr(s, "outcome"),
			attr(s, "pairs"), attr(s, "seqs"),
			time.Duration(s.Dur).Round(time.Microsecond))
	}
	return sb.String()
}

// attr fetches one span attribute by key, empty when absent.
func attr(s xtrace.Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// attrInt parses an integer attribute, -1 when absent or malformed.
func attrInt(s xtrace.Span, key string) int64 {
	n, err := strconv.ParseInt(attr(s, key), 10, 64)
	if err != nil {
		return -1
	}
	return n
}
