package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/seqsim"
)

// RunReport is the machine-readable summary of one whole-fault-list run,
// emitted by the CLIs under -json. Every duration is in nanoseconds so
// the schema is language-neutral.
type RunReport struct {
	Circuit  string `json:"circuit"`
	Method   string `json:"method"`
	Faults   int    `json:"faults"`
	Patterns int    `json:"patterns"`
	Workers  int    `json:"workers"`

	Conv       int     `json:"detected_conventional"`
	MOT        int     `json:"detected_mot"`
	Detected   int     `json:"detected_total"`
	Coverage   float64 `json:"coverage"`
	Identified int     `json:"identified"`
	PrunedC    int     `json:"pruned_condition_c"`
	Expansions int     `json:"expansions"`
	Pairs      int     `json:"pairs"`
	Sequences  int     `json:"sequences"`

	ElapsedNS int64        `json:"elapsed_ns"`
	Stages    StagesReport `json:"stages"`
	// Histograms is present only when the run collected metrics.
	Histograms *HistogramsReport `json:"histograms,omitempty"`
}

// StagesReport is the JSON view of core.Stages. PrescreenNS and MOTNS
// are wall-clock; the per-stage breakdown is summed across workers (CPU
// time) and present only when the run collected metrics.
type StagesReport struct {
	PrescreenPasses      int   `json:"prescreen_passes"`
	PrescreenDropped     int   `json:"prescreen_dropped"`
	PrescreenFrames      int64 `json:"prescreen_frames"`
	PrescreenSavedFrames int64 `json:"prescreen_saved_frames"`
	PrescreenNS          int64 `json:"prescreen_ns"`
	CompileNS            int64 `json:"compile_ns"`
	MOTNS                int64 `json:"mot_ns"`

	Step0NS   int64 `json:"step0_ns"`
	CollectNS int64 `json:"collect_ns"`
	ImplyNS   int64 `json:"imply_ns"`
	ExpandNS  int64 `json:"expand_ns"`
	ResimNS   int64 `json:"resim_ns"`

	ImplyCalls           int64 `json:"imply_calls"`
	ResimVectorPasses    int64 `json:"resim_vector_passes"`
	ResimVectorFrames    int64 `json:"resim_vector_frames"`
	ResimSerialFallbacks int64 `json:"resim_serial_fallbacks"`

	MOTFaults int             `json:"mot_faults"`
	Pool      core.PoolStats  `json:"pool"`
	Sim       seqsim.SimStats `json:"sim"`
}

// HistogramsReport holds the per-fault distribution snapshots.
type HistogramsReport struct {
	PairsPerFault        metrics.Snapshot `json:"pairs_per_fault"`
	ExpansionsPerFault   metrics.Snapshot `json:"expansions_per_fault"`
	SequencesAtStop      metrics.Snapshot `json:"sequences_at_stop"`
	FaultTimeNS          metrics.Snapshot `json:"fault_time_ns"`
	ConeGatesPerFault    metrics.Snapshot `json:"cone_gates_per_fault"`
	ResimLanesPerPass    metrics.Snapshot `json:"resim_lanes_per_pass"`
	EventsPerFrame       metrics.Snapshot `json:"events_per_frame"`
	GatesVisitedPerFrame metrics.Snapshot `json:"gates_visited_per_frame"`
}

// NewRunReport builds the JSON summary from a run result.
func NewRunReport(res *core.Result, method string, patterns, workers int, elapsed time.Duration) RunReport {
	st := res.Stages
	r := RunReport{
		Circuit:    res.Circuit,
		Method:     method,
		Faults:     res.Total,
		Patterns:   patterns,
		Workers:    workers,
		Conv:       res.Conv,
		MOT:        res.MOT,
		Detected:   res.Detected(),
		Identified: res.Identified,
		PrunedC:    res.PrunedConditionC,
		Expansions: res.Expansions,
		Pairs:      res.Pairs,
		Sequences:  res.Sequences,
		ElapsedNS:  int64(elapsed),
		Stages: StagesReport{
			PrescreenPasses:      st.PrescreenPasses,
			PrescreenDropped:     st.PrescreenDropped,
			PrescreenFrames:      st.PrescreenFrames,
			PrescreenSavedFrames: st.PrescreenSavedFrames,
			PrescreenNS:          int64(st.PrescreenTime),
			CompileNS:            int64(st.CompileTime),
			MOTNS:                int64(st.MOTTime),
			Step0NS:              int64(st.Step0Time),
			CollectNS:            int64(st.CollectTime),
			ImplyNS:              int64(st.ImplyTime),
			ExpandNS:             int64(st.ExpandTime),
			ResimNS:              int64(st.ResimTime),
			ImplyCalls:           st.ImplyCalls,
			ResimVectorPasses:    st.ResimVectorPasses,
			ResimVectorFrames:    st.ResimVectorFrames,
			ResimSerialFallbacks: st.ResimSerialFallbacks,
			MOTFaults:            st.MOTFaults,
			Pool:                 st.Pool,
			Sim:                  st.Sim,
		},
	}
	if res.Total > 0 {
		r.Coverage = float64(res.Detected()) / float64(res.Total)
	}
	if m := res.Metrics; m != nil {
		r.Histograms = &HistogramsReport{
			PairsPerFault:        m.PairsPerFault.Snapshot(),
			ExpansionsPerFault:   m.ExpansionsPerFault.Snapshot(),
			SequencesAtStop:      m.SequencesAtStop.Snapshot(),
			FaultTimeNS:          m.FaultTimeNS.Snapshot(),
			ConeGatesPerFault:    m.ConeGatesPerFault.Snapshot(),
			ResimLanesPerPass:    m.ResimLanesPerPass.Snapshot(),
			EventsPerFrame:       m.EventsPerFrame.Snapshot(),
			GatesVisitedPerFrame: m.GatesVisitedPerFrame.Snapshot(),
		}
	}
	return r
}

// JSON renders the report as indented JSON with a trailing newline.
func (r RunReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// pct renders part as a percentage of whole.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// FormatRunStats renders the per-stage breakdown, pool gauges and
// per-fault histograms of a run as indented text (empty when the run
// collected no metrics beyond the coarse stage split).
func FormatRunStats(res *core.Result) string {
	st := res.Stages
	var sb strings.Builder
	if st.MOTFaults == 0 && res.Metrics == nil {
		return ""
	}
	cpu := st.Step0Time + st.CollectTime + st.ExpandTime + st.ResimTime
	fmt.Fprintf(&sb, "  stage breakdown (%d MOT-pipeline faults, CPU time across workers):\n", st.MOTFaults)
	rows := []struct {
		name string
		d    time.Duration
	}{
		{"step0 resim + cond(C)", st.Step0Time},
		{"pair collection", st.CollectTime},
		{"  implications (est.)", st.ImplyTime},
		{"expansion", st.ExpandTime},
		{"resimulation", st.ResimTime},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "    %-24s %12s  %6s\n", r.name, r.d.Round(time.Microsecond), pct(r.d, cpu))
	}
	fmt.Fprintf(&sb, "    %-24s %12s\n", "total (CPU)", cpu.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  implication calls: %d\n", st.ImplyCalls)
	if st.ResimVectorPasses > 0 || st.ResimSerialFallbacks > 0 {
		fmt.Fprintf(&sb, "  bit-parallel resim: %d vector passes over %d frames, %d serial fallbacks\n",
			st.ResimVectorPasses, st.ResimVectorFrames, st.ResimSerialFallbacks)
	}
	if st.PrescreenFrames > 0 {
		fmt.Fprintf(&sb, "  prescreen frames: %d simulated, %d saved by early exit\n",
			st.PrescreenFrames, st.PrescreenSavedFrames)
	}
	if sim := st.Sim; sim.DeltaFrames+sim.EventFrames+sim.FullFrames > 0 {
		fmt.Fprintf(&sb, "  serial sim frames: %d delta (%d gate evals), %d event (%d gate evals, %d events), %d full\n",
			sim.DeltaFrames, sim.DeltaGateEvals, sim.EventFrames, sim.EventGateEvals, sim.Events, sim.FullFrames)
	}
	if p := st.Pool; p != (core.PoolStats{}) {
		fmt.Fprintf(&sb, "  pools: frames %d reused / %d allocated; seqs %d reused / %d allocated; traces %d reused / %d allocated\n",
			p.FrameReuses, p.FrameAllocs, p.SeqReuses, p.SeqAllocs, p.TraceReuses, p.TraceAllocs)
		fmt.Fprintf(&sb, "  arena peaks: sv=%d svIdx=%d liveSeqs=%d\n",
			p.SVArenaPeak, p.SVIdxArenaPeak, p.SeqLivePeak)
	}
	if m := res.Metrics; m != nil {
		fmt.Fprintf(&sb, "  pairs/fault:      %s\n", m.PairsPerFault.Snapshot())
		fmt.Fprintf(&sb, "  expansions/fault: %s\n", m.ExpansionsPerFault.Snapshot())
		fmt.Fprintf(&sb, "  sequences @stop:  %s\n", m.SequencesAtStop.Snapshot())
		fmt.Fprintf(&sb, "  cone gates/fault: %s\n", m.ConeGatesPerFault.Snapshot())
		if lanes := m.ResimLanesPerPass.Snapshot(); lanes.Count > 0 {
			fmt.Fprintf(&sb, "  resim lanes/pass: %s\n", lanes)
		}
		if ev := m.EventsPerFrame.Snapshot(); ev.Count > 0 {
			fmt.Fprintf(&sb, "  events/frame:     %s\n", ev)
			fmt.Fprintf(&sb, "  gates/frame:      %s\n", m.GatesVisitedPerFrame.Snapshot())
		}
		fmt.Fprintf(&sb, "  fault time:       %s\n", m.FaultTimeNS.Snapshot().DurationString())
	}
	if res.Live != nil {
		fmt.Fprint(&sb, FormatLiveSnapshot(res.Live.Snapshot()))
	}
	return sb.String()
}

// FormatLiveSnapshot renders a live snapshot in the FormatRunStats
// idiom. After a run completes the counter lines render exactly the
// merged Result/Stages values (the stage-seconds line is a wall-clock
// measurement and the implication estimate is computed globally rather
// than per worker, so those may differ from the Stages durations).
func FormatLiveSnapshot(s core.LiveSnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  live snapshot (%d/%d runs, %d/%d faults):\n",
		s.RunsDone, s.RunsStarted, s.FaultsDone, s.FaultsTotal)
	fmt.Fprintf(&sb, "    detected: %d conventional + %d MOT, %d undetected (%d pruned by condition C)\n",
		s.Conv, s.MOT, s.Undetected(), s.PrunedConditionC)
	fmt.Fprintf(&sb, "    prescreen: %d passes dropped %d faults (%d frames)\n",
		s.PrescreenPasses, s.PrescreenDropped, s.PrescreenFrames)
	fmt.Fprintf(&sb, "    pipeline: %d faults, %d pairs, %d expansions, %d sequences, %d implication calls\n",
		s.MOTFaults, s.Pairs, s.Expansions, s.Sequences, s.ImplyCalls)
	fmt.Fprintf(&sb, "    bit-parallel resim: %d vector passes over %d frames, %d serial fallbacks\n",
		s.ResimVectorPasses, s.ResimVectorFrames, s.ResimSerialFallbacks)
	fmt.Fprintf(&sb, "    serial sim frames: %d delta (%d gate evals), %d event (%d gate evals, %d events), %d full\n",
		s.DeltaFrames, s.DeltaGateEvals, s.EventFrames, s.EventGateEvals, s.Events, s.FullFrames)
	fmt.Fprintf(&sb, "    stage seconds: step0=%.3f collect=%.3f (imply~%.3f) expand=%.3f resim=%.3f total=%.3f\n",
		float64(s.Step0NS)/1e9, float64(s.CollectNS)/1e9, float64(s.ImplyNS)/1e9,
		float64(s.ExpandNS)/1e9, float64(s.ResimNS)/1e9, float64(s.TotalNS)/1e9)
	return sb.String()
}

// ResultAttrs returns slog key-value pairs summarizing a run result,
// for structured run-completion logs (cmd/motserve threads these
// through its per-run logger).
func ResultAttrs(res *core.Result) []any {
	coverage := 0.0
	if res.Total > 0 {
		coverage = float64(res.Detected()) / float64(res.Total)
	}
	return []any{
		"circuit", res.Circuit,
		"faults", res.Total,
		"conv", res.Conv,
		"mot", res.MOT,
		"coverage", coverage,
		"pruned_c", res.PrunedConditionC,
		"mot_faults", res.Stages.MOTFaults,
		"imply_calls", res.Stages.ImplyCalls,
	}
}
