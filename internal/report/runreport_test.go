package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tgen"
)

// smallRun executes a metrics-on whole-list run on s27.
func smallRun(t *testing.T, metricsOn bool) *core.Result {
	t.Helper()
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	cfg := core.DefaultConfig()
	cfg.Metrics = metricsOn
	s, err := core.NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fault.CollapsedList(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunReportJSON(t *testing.T) {
	res := smallRun(t, true)
	rep := NewRunReport(res, "proposed", 20, 1, 5*time.Millisecond)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"circuit", "stages", "histograms", "coverage", "elapsed_ns"} {
		if _, ok := back[key]; !ok {
			t.Errorf("report missing %q:\n%s", key, data)
		}
	}
	stages, ok := back["stages"].(map[string]any)
	if !ok {
		t.Fatalf("stages not an object:\n%s", data)
	}
	for _, key := range []string{"step0_ns", "collect_ns", "imply_ns", "expand_ns", "resim_ns", "mot_faults", "pool", "sim"} {
		if _, ok := stages[key]; !ok {
			t.Errorf("stages missing %q:\n%s", key, data)
		}
	}
	if rep.Detected != res.Detected() || rep.Coverage <= 0 {
		t.Errorf("summary fields wrong: %+v", rep)
	}
}

func TestRunReportMetricsOff(t *testing.T) {
	res := smallRun(t, false)
	rep := NewRunReport(res, "proposed", 20, 1, time.Millisecond)
	if rep.Histograms != nil {
		t.Error("metrics-off report carries histograms")
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRunStats(t *testing.T) {
	res := smallRun(t, true)
	out := FormatRunStats(res)
	for _, want := range []string{"stage breakdown", "pair collection", "implication calls", "pairs/fault", "fault time"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRunStats missing %q:\n%s", want, out)
		}
	}
	if off := FormatRunStats(smallRun(t, false)); off != "" {
		t.Errorf("metrics-off stats not empty:\n%s", off)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "faults")
	base := time.Unix(0, 0)
	tick := 0
	p.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 200 * time.Millisecond)
	}
	for i := 1; i <= 10; i++ {
		p.Update(i, 10)
	}
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "10/10 faults") {
		t.Errorf("final update missing:\n%q", out)
	}
	if !strings.Contains(out, "/s") || !strings.Contains(out, "ETA") {
		t.Errorf("rate/ETA missing:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Done did not terminate the line:\n%q", out)
	}
}
