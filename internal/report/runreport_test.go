package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tgen"
)

// smallRun executes a metrics-on whole-list run on s27.
func smallRun(t *testing.T, metricsOn bool) *core.Result {
	t.Helper()
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	cfg := core.DefaultConfig()
	cfg.Metrics = metricsOn
	s, err := core.NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fault.CollapsedList(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunReportJSON(t *testing.T) {
	res := smallRun(t, true)
	rep := NewRunReport(res, "proposed", 20, 1, 5*time.Millisecond)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"circuit", "stages", "histograms", "coverage", "elapsed_ns"} {
		if _, ok := back[key]; !ok {
			t.Errorf("report missing %q:\n%s", key, data)
		}
	}
	stages, ok := back["stages"].(map[string]any)
	if !ok {
		t.Fatalf("stages not an object:\n%s", data)
	}
	for _, key := range []string{"step0_ns", "collect_ns", "imply_ns", "expand_ns", "resim_ns", "mot_faults", "pool", "sim"} {
		if _, ok := stages[key]; !ok {
			t.Errorf("stages missing %q:\n%s", key, data)
		}
	}
	if rep.Detected != res.Detected() || rep.Coverage <= 0 {
		t.Errorf("summary fields wrong: %+v", rep)
	}
}

func TestRunReportMetricsOff(t *testing.T) {
	res := smallRun(t, false)
	rep := NewRunReport(res, "proposed", 20, 1, time.Millisecond)
	if rep.Histograms != nil {
		t.Error("metrics-off report carries histograms")
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRunStats(t *testing.T) {
	res := smallRun(t, true)
	out := FormatRunStats(res)
	for _, want := range []string{"stage breakdown", "pair collection", "implication calls", "pairs/fault", "fault time"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRunStats missing %q:\n%s", want, out)
		}
	}
	if off := FormatRunStats(smallRun(t, false)); off != "" {
		t.Errorf("metrics-off stats not empty:\n%s", off)
	}
}

// liveRun executes one sg208 whole-list run publishing live snapshots.
func liveRun(t *testing.T, workers int) *core.Result {
	t.Helper()
	c, err := circuits.ByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	T := tgen.Random(c.NumInputs(), 24, 1)
	cfg := core.DefaultConfig()
	cfg.Live = &core.LiveStats{}
	s, err := core.NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunParallel(fault.CollapsedList(c), workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stripTimeLines removes the wall-clock "stage seconds" line, leaving
// only the deterministic counter lines.
func stripTimeLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, "stage seconds:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// TestFormatLiveSnapshotMatchesMergedStats asserts the live-snapshot
// section renders the same counters as the final merged result — and
// renders identically between a serial and an 8-worker run.
func TestFormatLiveSnapshotMatchesMergedStats(t *testing.T) {
	resS := liveRun(t, 1)
	resP := liveRun(t, 8)
	outS := FormatLiveSnapshot(resS.Live.Snapshot())
	outP := FormatLiveSnapshot(resP.Live.Snapshot())
	if s, p := stripTimeLines(outS), stripTimeLines(outP); s != p {
		t.Errorf("live section differs between 1 and 8 workers:\n%s\n---\n%s", s, p)
	}
	// The rendered counters are the merged result's values.
	res := resP
	for _, want := range []string{
		fmt.Sprintf("1/1 runs, %d/%d faults", res.Total, res.Total),
		fmt.Sprintf("detected: %d conventional + %d MOT, %d undetected (%d pruned by condition C)",
			res.Conv, res.MOT, res.Total-res.Detected(), res.PrunedConditionC),
		fmt.Sprintf("prescreen: %d passes dropped %d faults (%d frames)",
			res.Stages.PrescreenPasses, res.Stages.PrescreenDropped, res.Stages.PrescreenFrames),
		fmt.Sprintf("pipeline: %d faults, %d pairs, %d expansions, %d sequences, %d implication calls",
			res.Stages.MOTFaults, res.Pairs, res.Expansions, res.Sequences, res.Stages.ImplyCalls),
		fmt.Sprintf("serial sim frames: %d delta (%d gate evals), %d event (%d gate evals, %d events), %d full",
			res.Stages.Sim.DeltaFrames, res.Stages.Sim.DeltaGateEvals,
			res.Stages.Sim.EventFrames, res.Stages.Sim.EventGateEvals, res.Stages.Sim.Events,
			res.Stages.Sim.FullFrames),
	} {
		if !strings.Contains(outP, want) {
			t.Errorf("live section missing %q:\n%s", want, outP)
		}
	}
	// FormatRunStats embeds the section when the run published live.
	if !strings.Contains(FormatRunStats(res), "live snapshot (") {
		t.Error("FormatRunStats omitted the live section")
	}
	if strings.Contains(FormatRunStats(smallRun(t, true)), "live snapshot (") {
		t.Error("FormatRunStats rendered a live section without Config.Live")
	}
}

func TestResultAttrs(t *testing.T) {
	res := smallRun(t, true)
	attrs := ResultAttrs(res)
	if len(attrs)%2 != 0 {
		t.Fatalf("attrs not key-value pairs: %v", attrs)
	}
	got := map[string]any{}
	for i := 0; i < len(attrs); i += 2 {
		got[attrs[i].(string)] = attrs[i+1]
	}
	if got["circuit"] != res.Circuit || got["faults"] != res.Total || got["conv"] != res.Conv {
		t.Errorf("ResultAttrs = %v", got)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "faults")
	base := time.Unix(0, 0)
	tick := 0
	p.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 200 * time.Millisecond)
	}
	for i := 1; i <= 10; i++ {
		p.Update(i, 10)
	}
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "10/10 faults") {
		t.Errorf("final update missing:\n%q", out)
	}
	if !strings.Contains(out, "/s") || !strings.Contains(out, "ETA") {
		t.Errorf("rate/ETA missing:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Done did not terminate the line:\n%q", out)
	}
}
