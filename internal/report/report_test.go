package report

import (
	"strings"
	"testing"

	"repro/internal/circuits"
)

func sampleRows() []Table2Row {
	paper := circuits.PaperRow{
		TotalFaults: 4603, Conventional: 2352,
		BaselineTotal: 2352, BaselineExtra: 0,
		ProposedTotal: 2363, ProposedExtra: 11,
		AvgDetect: 616.18, AvgConf: 142.00, AvgExtra: 1082.27,
	}
	na := circuits.PaperRow{
		TotalFaults: 11725, Conventional: 85,
		BaselineTotal: -1, BaselineExtra: -1,
		ProposedTotal: 87, ProposedExtra: 2,
	}
	return []Table2Row{
		{Circuit: "sg5378", Total: 2000, Conv: 900, BaseTotal: 900, BaseExtra: 0, PropTotal: 908, PropExtra: 8, Paper: &paper},
		{Circuit: "sg15850", Total: 5000, Conv: 100, BaseTotal: 101, BaseExtra: 1, PropTotal: 103, PropExtra: 3, Paper: &na},
	}
}

func TestFormatTable2Plain(t *testing.T) {
	out := FormatTable2(sampleRows(), false)
	for _, frag := range []string{"circuit", "sg5378", "908", "prop.extra"} {
		if !strings.Contains(out, frag) {
			t.Errorf("plain table missing %q:\n%s", frag, out)
		}
	}
}

func TestFormatTable2Paper(t *testing.T) {
	out := FormatTable2(sampleRows(), true)
	for _, frag := range []string{"2363", "908[2363]", "NA", "900[2352]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("paper table missing %q:\n%s", frag, out)
		}
	}
}

func TestCSVTable2(t *testing.T) {
	out := CSVTable2(sampleRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "sg5378,2000,900,900,0,908,8") {
		t.Errorf("CSV row wrong: %s", lines[1])
	}
}

func TestFormatTable3(t *testing.T) {
	p := circuits.PaperRow{AvgDetect: 616.18, AvgConf: 142, AvgExtra: 1082.27}
	rows := []Table3Row{
		{Circuit: "sg5378", Det: 12.5, Conf: 3.25, Extra: 44.75, Paper: &p},
		{Circuit: "sg208", Det: 0, Conf: 1, Extra: 9},
	}
	plain := FormatTable3(rows, false)
	if !strings.Contains(plain, "12.50") || !strings.Contains(plain, "44.75") {
		t.Errorf("plain table 3 wrong:\n%s", plain)
	}
	paper := FormatTable3(rows, true)
	if !strings.Contains(paper, "12.50[616.18]") {
		t.Errorf("paper table 3 wrong:\n%s", paper)
	}
	csv := CSVTable3(rows)
	if !strings.Contains(csv, "sg208,0.00,1.00,9.00") {
		t.Errorf("CSV table 3 wrong:\n%s", csv)
	}
}

func TestCheckShape(t *testing.T) {
	rows := sampleRows()
	chk := CheckShape(rows)
	if !chk.OrderingHolds {
		t.Error("ordering should hold")
	}
	if chk.CircuitsWithMOT != 2 || chk.StrictWins != 2 {
		t.Errorf("shape counts wrong: %+v", chk)
	}
	rows[0].BaseTotal = 800 // below conventional
	chk = CheckShape(rows)
	if chk.OrderingHolds || len(chk.Notes) == 0 {
		t.Error("violated ordering not reported")
	}
}
