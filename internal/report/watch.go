package report

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// WatchSnapshot is one poll of a /metrics endpoint: the parse time and
// the flat sample map (labeled samples are keyed "name{labels}").
type WatchSnapshot struct {
	At      time.Time
	Metrics map[string]float64
}

// ParseMetrics parses a Prometheus text exposition (the OpenMetrics
// variant parses too — its extra "# EOF" line and exemplar suffixes are
// skipped) into a flat sample map. Unlabeled samples are keyed by
// metric name, labeled ones by the full "name{labels}" spelling.
// Malformed lines are an error — a scrape that half-parses would render
// a silently wrong dashboard.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name value" or "name{labels} value [# exemplar]".
		rest := line
		var key string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("parsing metrics: malformed labels in %q", line)
			}
			key, rest = line[:j+1], strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("parsing metrics: malformed sample %q", line)
			}
			key, rest = fields[0], fields[1]
		}
		val := strings.Fields(rest)
		if len(val) == 0 {
			return nil, fmt.Errorf("parsing metrics: sample %q has no value", line)
		}
		v, err := strconv.ParseFloat(val[0], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing metrics: sample %q: %w", line, err)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// humanBytes renders a byte quantity with a binary-prefix unit.
func humanBytes(v float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f %s", v, units[i])
	}
	return fmt.Sprintf("%.1f %s", v, units[i])
}

// humanCount renders a large count with a decimal-prefix unit.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// ratePerSec computes the per-second rate of a (monotonic) sample
// between two snapshots, zero when prev is empty or time stood still.
func ratePerSec(prev, cur WatchSnapshot, name string) float64 {
	dt := cur.At.Sub(prev.At).Seconds()
	if prev.Metrics == nil || dt <= 0 {
		return 0
	}
	d := cur.Metrics[name] - prev.Metrics[name]
	if d < 0 {
		return 0 // restarted exporter
	}
	return d / dt
}

// seconds renders a seconds-valued sample as a rounded duration.
func seconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Millisecond).String()
}

// FormatWatch renders one dashboard frame from the latest two /metrics
// polls of a motserve (or sidecar) exposition under the given metric
// prefix, plus the newest SSE progress snapshot when one is being
// followed. The output is plain text — the caller owns cursor control —
// and the function is pure, so frames are directly assertable in tests.
func FormatWatch(prefix string, prev, cur WatchSnapshot, live *core.LiveSnapshot) string {
	m := func(name string) float64 { return cur.Metrics[prefix+"_"+name] }
	rate := func(name string) float64 { return ratePerSec(prev, cur, prefix+"_"+name) }
	var sb strings.Builder

	fmt.Fprintf(&sb, "%s dashboard  %s\n", prefix, cur.At.Format("2006-01-02 15:04:05"))
	fmt.Fprintf(&sb, "runs: %.0f started, %.0f done, %.0f active, %.0f queued\n",
		m("runs_started_total"), m("runs_done_total"), m("runs_active"), m("runs_queued"))

	done, total := m("faults_done_total"), m("faults_total")
	pctDone := 0.0
	if total > 0 {
		pctDone = 100 * done / total
	}
	fmt.Fprintf(&sb, "faults: %.0f/%.0f done (%.1f%%), %.1f/s | conv %.0f  mot %.0f  pruned-C %.0f  prescreen-dropped %.0f\n",
		done, total, pctDone, rate("faults_done_total"),
		m("detected_conventional_total"), m("detected_mot_total"),
		m("pruned_condition_c_total"), m("prescreen_dropped_total"))

	fmt.Fprintf(&sb, "stage cpu: step0 %s  collect %s (imply %s)  expand %s  resim %s  mot-total %s\n",
		seconds(m("stage_step0_seconds_total")), seconds(m("stage_collect_seconds_total")),
		seconds(m("stage_imply_seconds_total")), seconds(m("stage_expand_seconds_total")),
		seconds(m("stage_resim_seconds_total")), seconds(m("stage_mot_seconds_total")))

	fmt.Fprintf(&sb, "engine: events %s (%s/s)  event frames %s  vector passes %s  imply calls %s (%s/s)\n",
		humanCount(m("events_total")), humanCount(rate("events_total")),
		humanCount(m("event_frames_total")), humanCount(m("resim_vector_passes_total")),
		humanCount(m("imply_calls_total")), humanCount(rate("imply_calls_total")))

	// Server-only series (the sidecar exposition has no cache, HTTP or
	// run-attribution samples); skip the lines entirely when absent so
	// sidecar dashboards stay compact.
	if _, ok := cur.Metrics[prefix+"_cache_hits_total"]; ok {
		fmt.Fprintf(&sb, "cache: %.0f hits, %.0f misses, %.0f evictions, %s resident\n",
			m("cache_hits_total"), m("cache_misses_total"),
			m("cache_evictions_total"), humanBytes(m("cache_bytes_total")))
	}
	if _, ok := cur.Metrics[prefix+"_http_run_get_seconds_p95_1m"]; ok {
		fmt.Fprintf(&sb, "http p95 1m: create %s  get %s  list %s  metrics %s | run p95 1m %s, %.2f runs/s\n",
			seconds(m("http_run_create_seconds_p95_1m")), seconds(m("http_run_get_seconds_p95_1m")),
			seconds(m("http_run_list_seconds_p95_1m")), seconds(m("http_metrics_seconds_p95_1m")),
			seconds(m("run_seconds_p95_1m")), m("run_seconds_rate1m"))
	}
	if _, ok := cur.Metrics[prefix+"_run_cpu_seconds_total"]; ok {
		fmt.Fprintf(&sb, "run resources: cpu %s  alloc %s\n",
			seconds(m("run_cpu_seconds_total")), humanBytes(m("run_alloc_bytes_total")))
	}

	fmt.Fprintf(&sb, "go: %.0f goroutines  heap %s  stacks %s  gc %.0f cycles  alloc %s (%s/s)\n",
		m("go_goroutines"), humanBytes(m("go_heap_bytes")), humanBytes(m("go_stack_bytes")),
		m("go_gc_cycles_total"), humanBytes(m("go_alloc_bytes_total")),
		humanBytes(rate("go_alloc_bytes_total")))

	if live != nil {
		fmt.Fprintf(&sb, "active run:\n%s", FormatLiveSnapshot(*live))
	}
	return sb.String()
}
