package report

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a single updating progress line ("123/1024 faults,
// 512.3/s, ETA 1.8s") suitable for the Run/RunParallel progress
// callback. Updates are throttled and the callback may be invoked from
// the run's internal goroutine, so the printer is mutex-guarded.
type Progress struct {
	w     io.Writer
	label string
	every time.Duration
	now   func() time.Time

	mu    sync.Mutex
	start time.Time
	last  time.Time
	wrote bool
}

// NewProgress builds a progress printer writing to w. label names the
// work units (e.g. "faults").
func NewProgress(w io.Writer, label string) *Progress {
	return &Progress{
		w:     w,
		label: label,
		every: 100 * time.Millisecond,
		now:   time.Now,
	}
}

// Update is the Run/RunParallel progress callback.
func (p *Progress) Update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if p.start.IsZero() {
		p.start = now
	}
	if done < total && now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	eta := "-"
	if rate > 0 && done < total {
		left := time.Duration(float64(total-done) / rate * float64(time.Second))
		eta = left.Round(100 * time.Millisecond).String()
	}
	fmt.Fprintf(p.w, "\r%d/%d %s, %.1f/s, ETA %s    ", done, total, p.label, rate, eta)
	p.wrote = true
}

// Done terminates the progress line (no-op if nothing was printed).
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.w)
		p.wrote = false
	}
}
