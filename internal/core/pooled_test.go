package core

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// crossCheckPooled runs the fault list with the default pooled/trail path
// and with Config.Reference (the retained allocate-per-pair path) and
// asserts every FaultOutcome is byte-identical: outcome, detection site,
// counters, expansions, sequences, pairs, and the classification flags.
// FaultOutcome has no reference-typed fields, so != is an exact
// field-by-field comparison. The pooled path is exercised serially (one
// simulator reusing its pools across the whole list) and in parallel
// (per-worker pools).
func crossCheckPooled(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, cfg Config) {
	t.Helper()
	ref := cfg
	ref.Reference = true
	pooled := cfg
	pooled.Reference = false

	simRef, err := NewSimulator(c, T, ref)
	if err != nil {
		t.Fatal(err)
	}
	simPooled, err := NewSimulator(c, T, pooled)
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := simRef.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resPooled, err := simPooled.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := simPooled.RunParallel(faults, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"serial": resPooled, "parallel": resPar} {
		if len(res.Outcomes) != len(resRef.Outcomes) {
			t.Fatalf("%s: %d pooled outcomes, %d reference", name, len(res.Outcomes), len(resRef.Outcomes))
		}
		for k := range res.Outcomes {
			if res.Outcomes[k] != resRef.Outcomes[k] {
				t.Fatalf("%s: fault %s differs from reference:\n  pooled: %+v\n  ref:    %+v",
					name, faults[k].Name(c), res.Outcomes[k], resRef.Outcomes[k])
			}
		}
		if res.Conv != resRef.Conv || res.MOT != resRef.MOT || res.Sum != resRef.Sum ||
			res.Expansions != resRef.Expansions || res.Pairs != resRef.Pairs ||
			res.Sequences != resRef.Sequences || res.Identified != resRef.Identified ||
			res.PrunedConditionC != resRef.PrunedConditionC {
			t.Fatalf("%s: aggregates differ from reference:\n  pooled: %+v\n  ref:    %+v",
				name, res, resRef)
		}
	}
}

func TestPooledCrossCheckS27(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	crossCheckPooled(t, c, T, fault.CollapsedList(c), DefaultConfig())
}

func TestPooledCrossCheckSynthetic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *netlist.Circuit
	}{
		{"fig4", circuits.Fig4},
		{"intro", circuits.Intro},
		{"table1", circuits.Table1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			T := tgen.Random(c.NumInputs(), 16, 11)
			crossCheckPooled(t, c, T, fault.CollapsedList(c), DefaultConfig())
		})
	}
}

// TestPooledCrossCheckLongList covers a fault list well beyond 64 faults
// (the uncollapsed sg208 list), so one simulator's pools serve hundreds of
// consecutive faults, including the frame-cache reuse across time units
// and the sequence free-list cycling through the portfolio retry.
func TestPooledCrossCheckLongList(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	faults := fault.List(c)
	if len(faults) <= 64 {
		t.Fatalf("fault list too short: %d", len(faults))
	}
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	crossCheckPooled(t, c, T, faults, DefaultConfig())
}

// TestPooledCrossCheckVariants sweeps the configuration axes that steer
// the pooled code down different paths: the [4] baseline (pooled trivial
// pairs only), deep backward implications (the level-indexed frame pool),
// the fixpoint schedule, a tight pair cap, and identification-only mode.
func TestPooledCrossCheckVariants(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	faults := fault.CollapsedList(c)
	variants := map[string]func(*Config){
		"baseline":     func(cfg *Config) { cfg.UseBackwardImplications = false },
		"deep2":        func(cfg *Config) { cfg.BackwardDepth = 2 },
		"deep4":        func(cfg *Config) { cfg.BackwardDepth = 4 },
		"fixpoint":     func(cfg *Config) { cfg.Schedule = Fixpoint },
		"maxpairs4":    func(cfg *Config) { cfg.MaxPairs = 4 },
		"identifyonly": func(cfg *Config) { cfg.IdentificationOnly = true },
		"nstates8":     func(cfg *Config) { cfg.NStates = 8 },
		"no-prescreen": func(cfg *Config) { cfg.Prescreen = false },
	}
	for name, tweak := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			tweak(&cfg)
			crossCheckPooled(t, c, T, faults, cfg)
		})
	}
}

// TestParallelPooledIsolation runs a larger parallel job twice on the same
// simulator and asserts run-to-run determinism — with shared pools a data
// race would corrupt outcomes. Run under -race this is the pooled-path
// race test required by the verify recipe.
func TestParallelPooledIsolation(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	faults := fault.CollapsedList(c)
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.RunParallel(faults, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunParallel(faults, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range first.Outcomes {
		if first.Outcomes[k] != second.Outcomes[k] {
			t.Fatalf("fault %s: run-to-run mismatch:\n  first:  %+v\n  second: %+v",
				faults[k].Name(c), first.Outcomes[k], second.Outcomes[k])
		}
	}
}
