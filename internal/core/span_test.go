package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"repro/internal/xtrace"
)

// detSpanKey reduces a span to its deterministic fields: the ID (a hash
// of parent, name and key), name and attributes. Timestamps, durations
// and track assignments are scheduling-dependent by design; "worker"
// spans exist only in parallel runs and are excluded entirely.
func detSpans(tr *xtrace.Tracer) []string {
	spans, _ := tr.Snapshot()
	var out []string
	for _, s := range spans {
		if s.Name == "worker" {
			continue
		}
		out = append(out, fmt.Sprintf("%016x %016x %s %v", uint64(s.ID), uint64(s.Parent), s.Name, s.Attrs))
	}
	sort.Strings(out)
	return out
}

// spanRun executes the whole-list run with tracing at full sampling and
// returns the tracer.
func spanRun(t *testing.T, workers int, rate float64) *xtrace.Tracer {
	t.Helper()
	c, T, faults := statsSetup(t)
	cfg := DefaultConfig()
	cfg.Tracer = xtrace.New(xtrace.Options{})
	cfg.TraceSampleRate = rate
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunParallel(faults, workers, nil); err != nil {
		t.Fatal(err)
	}
	return cfg.Tracer
}

// TestSpanDeterminismAcrossWorkers asserts the deterministic span
// fields (IDs, parent links, names, attributes) are byte-identical
// between a serial run and an 8-worker run: every span except the
// scheduling-defined "worker" spans must match exactly.
func TestSpanDeterminismAcrossWorkers(t *testing.T) {
	serial := detSpans(spanRun(t, 1, 1))
	parallel := detSpans(spanRun(t, 8, 1))
	if len(serial) == 0 {
		t.Fatal("serial run emitted no spans")
	}
	a := bytes.Join(toBytes(serial), []byte("\n"))
	b := bytes.Join(toBytes(parallel), []byte("\n"))
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic span fields differ between 1 and 8 workers:\nserial   %d spans\nparallel %d spans\n%s",
			len(serial), len(parallel), firstDiff(serial, parallel))
	}
}

func toBytes(lines []string) [][]byte {
	out := make([][]byte, len(lines))
	for i, l := range lines {
		out[i] = []byte(l)
	}
	return out
}

func firstDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first diff at %d:\n  serial:   %s\n  parallel: %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d", len(a), len(b))
}

// TestSpanTreeShape checks the span hierarchy of a traced run: one run
// span at the root, prescreen and mot stages under it, batch spans
// under the prescreen, fault spans under the mot stage, and expand /
// resim sub-spans under sampled faults.
func TestSpanTreeShape(t *testing.T) {
	tr := spanRun(t, 4, 1)
	spans, _ := tr.Snapshot()
	byID := make(map[xtrace.SpanID]xtrace.Span, len(spans))
	count := map[string]int{}
	for _, s := range spans {
		byID[s.ID] = s
		count[s.Name]++
	}
	var runID, preID, motID xtrace.SpanID
	for _, s := range spans {
		switch s.Name {
		case "run sg208":
			runID = s.ID
		case "prescreen":
			preID = s.ID
		case "mot":
			motID = s.ID
		}
	}
	if runID == 0 || preID == 0 || motID == 0 {
		t.Fatalf("missing root spans: run=%x prescreen=%x mot=%x", runID, preID, motID)
	}
	if byID[preID].Parent != runID || byID[motID].Parent != runID {
		t.Fatalf("stage spans not parented under the run span")
	}
	if count["batch"] == 0 || count["fault"] == 0 || count["expand"] == 0 || count["resim"] == 0 {
		t.Fatalf("span census missing kinds: %v", count)
	}
	for _, s := range spans {
		switch s.Name {
		case "batch":
			if s.Parent != preID {
				t.Fatalf("batch span parented to %x, want prescreen %x", s.Parent, preID)
			}
		case "fault":
			if s.Parent != motID {
				t.Fatalf("fault span parented to %x, want mot %x", s.Parent, motID)
			}
		case "expand", "resim":
			if p, ok := byID[s.Parent]; !ok || p.Name != "fault" {
				t.Fatalf("%s span not parented under a fault span", s.Name)
			}
		case "worker":
			if s.Parent != motID {
				t.Fatalf("worker span parented to %x, want mot %x", s.Parent, motID)
			}
		}
		if s.Name != "run sg208" && s.Dur < 0 {
			t.Fatalf("span %s never ended", s.Name)
		}
	}
}

// TestSpanSampling asserts the default rate traces a strict subset of
// faults and that outcomes are unaffected by tracing.
func TestSpanSampling(t *testing.T) {
	full, _ := spanRun(t, 1, 1).Snapshot()
	def, _ := spanRun(t, 1, 0).Snapshot() // 0 → default 0.05
	nFull, nDef := 0, 0
	for _, s := range full {
		if s.Name == "fault" {
			nFull++
		}
	}
	for _, s := range def {
		if s.Name == "fault" {
			nDef++
		}
	}
	if nDef == 0 || nDef >= nFull {
		t.Fatalf("default sampling traced %d of %d faults", nDef, nFull)
	}
}

// TestSpanOutcomesUnchanged cross-checks that a traced run classifies
// faults identically to an untraced one.
func TestSpanOutcomesUnchanged(t *testing.T) {
	c, T, faults := statsSetup(t)
	run := func(tr *xtrace.Tracer) *Result {
		cfg := DefaultConfig()
		cfg.Tracer = tr
		cfg.TraceSampleRate = 1
		s, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunParallel(faults, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(xtrace.New(xtrace.Options{}))
	if plain.Conv != traced.Conv || plain.MOT != traced.MOT || plain.Pairs != traced.Pairs ||
		plain.Sequences != traced.Sequences || plain.Expansions != traced.Expansions {
		t.Fatalf("tracing changed outcomes: plain %d/%d traced %d/%d",
			plain.Conv, plain.MOT, traced.Conv, traced.MOT)
	}
}

// TestSpanChromeExport round-trips a real run's trace through the
// Chrome trace-event exporter.
func TestSpanChromeExport(t *testing.T) {
	tr := spanRun(t, 4, 1)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) < 10 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	if st := tr.Stats(); st.Spans == 0 {
		t.Fatal("tracer recorded no spans")
	}
}

// TestTraceSampleRateValidation rejects out-of-range sampling rates.
func TestTraceSampleRateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceSampleRate = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("TraceSampleRate 1.5 accepted")
	}
	cfg.TraceSampleRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("TraceSampleRate -0.1 accepted")
	}
}
