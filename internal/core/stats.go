package core

import (
	"time"

	"repro/internal/metrics"
)

// StageNS is a per-fault (or per-run delta) stage-time breakdown in
// nanoseconds. Step0 covers the serial conventional resimulation plus
// the condition (C) profile; Collect covers pair collection including
// the implication runs it performs (Imply is the implication share of
// Collect, not an additional stage); Expand and Resim cover Procedure 2
// and the Section 3.4 resimulation including the portfolio retry.
type StageNS struct {
	Step0   int64 `json:"step0_ns"`
	Collect int64 `json:"collect_ns"`
	Imply   int64 `json:"imply_ns"`
	Expand  int64 `json:"expand_ns"`
	Resim   int64 `json:"resim_ns"`
	Total   int64 `json:"total_ns"`
}

// sub returns the component-wise difference s - before.
func (s StageNS) sub(before StageNS) StageNS {
	return StageNS{
		Step0:   s.Step0 - before.Step0,
		Collect: s.Collect - before.Collect,
		Imply:   s.Imply - before.Imply,
		Expand:  s.Expand - before.Expand,
		Resim:   s.Resim - before.Resim,
		Total:   s.Total - before.Total,
	}
}

// PoolStats instruments the PR 2 pooling layer: how often the pooled
// resources were reused versus freshly allocated, and the arena
// high-water marks. Counts are summed across RunParallel workers; peaks
// take the maximum. Reference-mode runs record nothing here (that path
// allocates per pair by design).
type PoolStats struct {
	// FrameReuses/FrameAllocs count implication-frame acquisitions (pair
	// frame and deep-backward frames) served by ResetFault on a pooled
	// frame versus a fresh implic.New.
	FrameReuses int64 `json:"frame_reuses"`
	FrameAllocs int64 `json:"frame_allocs"`
	// SeqReuses/SeqAllocs count expansion sequences recycled from the
	// slab free list versus freshly allocated.
	SeqReuses int64 `json:"seq_reuses"`
	SeqAllocs int64 `json:"seq_allocs"`
	// TraceReuses/TraceAllocs count faulty-trace acquisitions served by
	// the pooled RunFaultInto trace versus a fresh NewTrace.
	TraceReuses int64 `json:"trace_reuses"`
	TraceAllocs int64 `json:"trace_allocs"`
	// SVArenaPeak is the high-water mark of the per-fault sv-assignment
	// arena (entries); SVIdxArenaPeak of the sv-index arena.
	SVArenaPeak    int64 `json:"sv_arena_peak"`
	SVIdxArenaPeak int64 `json:"sv_idx_arena_peak"`
	// SeqLivePeak is the maximum number of expansion sequences alive at
	// once (the N_STATES budget bounds it from above).
	SeqLivePeak int64 `json:"seq_live_peak"`
}

// merge folds other into p: counters add, peaks take the maximum.
func (p *PoolStats) merge(other PoolStats) {
	p.FrameReuses += other.FrameReuses
	p.FrameAllocs += other.FrameAllocs
	p.SeqReuses += other.SeqReuses
	p.SeqAllocs += other.SeqAllocs
	p.TraceReuses += other.TraceReuses
	p.TraceAllocs += other.TraceAllocs
	p.SVArenaPeak = max64(p.SVArenaPeak, other.SVArenaPeak)
	p.SVIdxArenaPeak = max64(p.SVIdxArenaPeak, other.SVIdxArenaPeak)
	p.SeqLivePeak = max64(p.SeqLivePeak, other.SeqLivePeak)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runStats is the per-worker instrumentation accumulator. Each
// Simulator that executes faults owns exactly one (RunParallel gives
// every worker its own), so all fields are plain — no atomics on the
// hot path. Totals merge into Result.Stages once the run completes.
type runStats struct {
	times      StageNS
	implyCalls int64
	// implySampleNS/implySamples hold the timed 1-in-2^implySampleShift
	// sample of implication calls from which ImplyTime is estimated.
	implySampleNS int64
	implySamples  int64
	motFaults     int64
	// resimVectorPasses/resimVectorFrames count the bit-parallel
	// resimulation passes and the frames they evaluated;
	// resimSerialFallbacks the expansions that exceeded lane capacity
	// and ran the serial path (see Stages).
	resimVectorPasses    int64
	resimVectorFrames    int64
	resimSerialFallbacks int64
	pool                 PoolStats
}

// stageField selects the accumulator tick targets.
type stageField uint8

const (
	stageStep0 stageField = iota
	stageCollect
	stageExpand
	stageResim
)

// tick accumulates the monotonic time since *last into the selected
// stage and advances *last. A nil receiver (metrics off) is a no-op and
// performs no clock read.
func (rs *runStats) tick(last *time.Time, f stageField) {
	if rs == nil {
		return
	}
	now := time.Now()
	d := int64(now.Sub(*last))
	switch f {
	case stageStep0:
		rs.times.Step0 += d
	case stageCollect:
		rs.times.Collect += d
	case stageExpand:
		rs.times.Expand += d
	case stageResim:
		rs.times.Resim += d
	}
	*last = now
}

// implySampleShift sets the implication timing sample rate: one in
// 2^implySampleShift implication calls is timed, and ImplyTime is
// scaled back up from the sample. Sampling keeps the two extra clock
// reads off most of the (very hot) implication calls; even small runs
// make thousands of calls, so 1-in-64 still gives a stable estimate.
const implySampleShift = 6

// RunMetrics holds the per-fault distribution histograms of one run.
// The histograms are concurrency-safe (see internal/metrics) and are
// shared by every RunParallel worker; observations cover exactly the
// faults that entered the per-fault MOT pipeline (prescreen-dropped
// faults never reach it).
type RunMetrics struct {
	// PairsPerFault is the distribution of candidate (time unit, state
	// variable) pairs collected per fault.
	PairsPerFault *metrics.Histogram
	// ExpansionsPerFault is the distribution of sequence-duplicating
	// (phase 2) expansions per fault.
	ExpansionsPerFault *metrics.Histogram
	// SequencesAtStop is the distribution of state-sequence counts when
	// each fault's expansion stopped.
	SequencesAtStop *metrics.Histogram
	// FaultTimeNS is the distribution of per-fault wall time
	// (SimulateFault, nanoseconds).
	FaultTimeNS *metrics.Histogram
	// ConeGatesPerFault is the distribution of active-cone sizes (gates
	// in the sequential fanout closure of the fault site) over the faults
	// that entered the per-fault pipeline — the share of the circuit
	// faulty simulation actually visits per fault.
	ConeGatesPerFault *metrics.Histogram
	// ResimLanesPerPass is the distribution of lane occupancy (sequences
	// packed per word) over bit-parallel resimulation passes — how full
	// the 256-lane words run in practice. Empty when
	// Config.BitParallelResim is off.
	ResimLanesPerPass *metrics.Histogram
	// EventsPerFrame is the distribution of node value changes (events)
	// per event-driven sparse frame — how little of the circuit a faulty
	// frame actually perturbs. Empty when Config.EventSim is off (the
	// level-order path does not observe per-frame distributions).
	EventsPerFrame *metrics.Histogram
	// GatesVisitedPerFrame is the distribution of gate evaluations per
	// event-driven sparse frame — the work left after event confinement,
	// versus the cone sizes in ConeGatesPerFault. Empty when
	// Config.EventSim is off.
	GatesVisitedPerFrame *metrics.Histogram
}

// newRunMetrics builds the run histograms with power-of-two bucket
// layouts sized for the suite circuits.
func newRunMetrics() *RunMetrics {
	return &RunMetrics{
		PairsPerFault:        metrics.NewHistogram(metrics.ExpBounds(1, 2, 14)...),
		ExpansionsPerFault:   metrics.NewHistogram(metrics.ExpBounds(1, 2, 10)...),
		SequencesAtStop:      metrics.NewHistogram(metrics.ExpBounds(1, 2, 10)...),
		FaultTimeNS:          metrics.NewHistogram(metrics.ExpBounds(1024, 4, 14)...),
		ConeGatesPerFault:    metrics.NewHistogram(metrics.ExpBounds(1, 2, 14)...),
		ResimLanesPerPass:    metrics.NewHistogram(metrics.ExpBounds(1, 2, 10)...),
		EventsPerFrame:       metrics.NewHistogram(metrics.ExpBounds(1, 2, 14)...),
		GatesVisitedPerFrame: metrics.NewHistogram(metrics.ExpBounds(1, 2, 14)...),
	}
}

// observeFault records one completed per-fault pipeline execution.
func (m *RunMetrics) observeFault(o *FaultOutcome, totalNS, coneGates int64) {
	m.PairsPerFault.Observe(int64(o.Pairs))
	m.ExpansionsPerFault.Observe(int64(o.Expansions))
	m.SequencesAtStop.Observe(int64(o.Sequences))
	m.FaultTimeNS.Observe(totalNS)
	m.ConeGatesPerFault.Observe(coneGates)
}

// exemplarFault attaches a span-sampled fault's observations as the
// exemplars of the buckets they landed in, linking each per-fault
// histogram back to the fault name and its trace span. Called only for
// faults that carry a live span, so the unsampled hot path never
// allocates exemplar labels.
func (m *RunMetrics) exemplarFault(o *FaultOutcome, totalNS, coneGates int64, faultName, spanHex string) {
	fl := metrics.Label{Key: "fault", Val: faultName}
	sl := metrics.Label{Key: "span_id", Val: spanHex}
	m.PairsPerFault.SetExemplar(int64(o.Pairs), fl, sl)
	m.ExpansionsPerFault.SetExemplar(int64(o.Expansions), fl, sl)
	m.SequencesAtStop.SetExemplar(int64(o.Sequences), fl, sl)
	m.FaultTimeNS.SetExemplar(totalNS, fl, sl)
	m.ConeGatesPerFault.SetExemplar(coneGates, fl, sl)
}

// beginRun resets the per-run instrumentation state on s according to
// the configuration and attaches the run histograms to res. Serial Run
// and the RunParallel parent both call it; parallel workers receive
// their own runStats and share the parent's histograms.
func (s *Simulator) beginRun(res *Result) {
	if !s.cfg.Metrics {
		s.stats, s.hist = nil, nil
		s.sim.SetFrameHists(nil, nil)
		return
	}
	s.stats = &runStats{}
	s.hist = newRunMetrics()
	res.Metrics = s.hist
	s.sim.ResetStats()
	s.sim.SetFrameHists(s.hist.EventsPerFrame, s.hist.GatesVisitedPerFrame)
}

// mergeStats folds one worker's accumulator into the run totals.
func (st *Stages) mergeStats(rs *runStats) {
	if rs == nil {
		return
	}
	st.Step0Time += time.Duration(rs.times.Step0)
	st.CollectTime += time.Duration(rs.times.Collect)
	st.ExpandTime += time.Duration(rs.times.Expand)
	st.ResimTime += time.Duration(rs.times.Resim)
	if rs.implySamples > 0 {
		// Scale the timed sample back up to an estimate over all calls.
		st.ImplyTime += time.Duration(rs.implySampleNS * rs.implyCalls / rs.implySamples)
	}
	st.ImplyCalls += rs.implyCalls
	st.ResimVectorPasses += rs.resimVectorPasses
	st.ResimVectorFrames += rs.resimVectorFrames
	st.ResimSerialFallbacks += rs.resimSerialFallbacks
	st.MOTFaults += int(rs.motFaults)
	st.Pool.merge(rs.pool)
}
