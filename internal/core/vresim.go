package core

// Bit-parallel resimulation of expanded state sequences (Section 3.4).
//
// The serial resimulate walks one sequence at a time through full-frame
// evaluations. The expanded sequences of one fault differ only in a
// handful of injected state-variable values, so almost all of that work
// is redundant across sequences. Here every sequence rides one lane of
// a 256-lane cir.VV4 word: lane k carries sequence k's state values,
// and one vector pass over the fault's region evaluates every sequence
// at once. Per-lane bit masks replace the serial per-sequence control
// flow (marked time units, detection, infeasibility conflicts), with
// semantics proved lane-for-lane identical to the serial path and
// asserted so by the cross-check tests.
//
// The pass is confined to the fault's *region* (cir.Region): the
// sequential fanout closure of the fault site plus the Q nodes of every
// state variable the expansion assigned. Values outside the region
// never diverge from the retained fault-free trace — expansion assigns
// only state variables (whose Q nodes seed the closure), dynamic
// refinements land only on flip-flops whose D node is inside the
// region (so their Q is too, by the closure), and the region contains
// the fault's active cone — so frontier nodes are broadcast from
// good.Nodes, detection scans region outputs only, and next-state
// comparison visits region D nodes only. Each confinement is exact,
// not an approximation.

import (
	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/seqsim"
)

// laneMask is a 256-lane membership mask, one bit per packed sequence,
// mirroring the VV4 word layout.
type laneMask [4]uint64

// ResimTrace summarizes the resimulation passes of one fault for the
// JSONL trace: how many expansions resimulated bit-parallel, the frames
// those vector passes evaluated, the lanes they packed (summed over
// passes — the portfolio retry adds a second pass), and how many
// expansions exceeded the 256-lane word and fell back to the serial
// path. All fields are deterministic for a given configuration.
type ResimTrace struct {
	VectorPasses    int `json:"resim_vector_passes,omitempty"`
	VectorFrames    int `json:"resim_vector_frames,omitempty"`
	Lanes           int `json:"resim_lanes,omitempty"`
	SerialFallbacks int `json:"resim_serial_fallbacks,omitempty"`
}

// seedReset starts a new epoch of the expansion-assigned state-variable
// set (the region seeds). expand calls it once per invocation.
func (s *Simulator) seedReset() {
	if len(s.pools.seedStamp) != s.c.NumFFs() {
		s.pools.seedStamp = make([]int32, s.c.NumFFs())
		s.pools.seedGen = 0
	}
	s.pools.seedGen++
	if s.pools.seedGen <= 0 { // generation counter wrapped: restamp from 1
		for i := range s.pools.seedStamp {
			s.pools.seedStamp[i] = 0
		}
		s.pools.seedGen = 1
	}
	s.pools.seedFFs = s.pools.seedFFs[:0]
}

// seedAdd records state variable j as assigned by the current expand.
func (s *Simulator) seedAdd(j int) {
	if s.pools.seedStamp[j] != s.pools.seedGen {
		s.pools.seedStamp[j] = s.pools.seedGen
		s.pools.seedFFs = append(s.pools.seedFFs, int32(j))
	}
}

// resimRegion fills (and in Reference mode allocates) the region for
// the current fault and seed set.
func (s *Simulator) resimRegion(f *fault.Fault) *cir.Region {
	if s.cfg.Reference {
		r := s.cc.NewRegion()
		s.cc.FillRegion(f, s.pools.seedFFs, r)
		return r
	}
	if s.pools.region == nil {
		s.pools.region = s.cc.NewRegion()
	}
	s.cc.FillRegion(f, s.pools.seedFFs, s.pools.region)
	return s.pools.region
}

// vresimScratch returns the node-value vector, the (L+1) packed state
// rows of nq lane words each, and the per-frame lane-mark masks. None
// need clearing: every row and mask is fully initialized by the pack
// stage, and region evaluation writes every node it reads.
func (s *Simulator) vresimScratch(nq int) (vals []cir.VV4, state [][]cir.VV4, markRows []laneMask) {
	nNodes, rows := s.c.NumNodes(), len(s.T)+1
	need := rows * nq
	if s.cfg.Reference {
		vals = make([]cir.VV4, nNodes)
		flat := make([]cir.VV4, need)
		state = make([][]cir.VV4, rows)
		for u := 0; u < rows; u++ {
			state[u] = flat[u*nq : (u+1)*nq : (u+1)*nq]
		}
		return vals, state, make([]laneMask, rows)
	}
	p := &s.pools
	if cap(p.vvVals) < nNodes {
		p.vvVals = make([]cir.VV4, nNodes)
	}
	if cap(p.vvFlat) < need {
		p.vvFlat = make([]cir.VV4, need)
	}
	flat := p.vvFlat[:need]
	if cap(p.vvState) < rows {
		p.vvState = make([][]cir.VV4, rows)
	}
	p.vvState = p.vvState[:rows]
	state = p.vvState
	for u := 0; u < rows; u++ {
		state[u] = flat[u*nq : (u+1)*nq : (u+1)*nq]
	}
	if cap(p.vvMarks) < rows {
		p.vvMarks = make([]laneMask, rows)
	}
	return p.vvVals[:nNodes], state, p.vvMarks[:rows]
}

// qPosScratch returns the FF-index -> region.QFFs-position map. Only
// entries for the current region's QFFs are filled; stale entries are
// never read (every lookup is for a flip-flop whose Q is in the region).
func (s *Simulator) qPosScratch() []int32 {
	if s.cfg.Reference {
		return make([]int32, s.c.NumFFs())
	}
	if len(s.pools.qPos) != s.c.NumFFs() {
		s.pools.qPos = make([]int32, s.c.NumFFs())
	}
	return s.pools.qPos
}

// resimulateVV is the bit-parallel implementation of resimulate: every
// sequence occupies one lane, and each frame evaluates the fault's
// region once for all sequences. Caller guarantees len(seqs) <= 256 and
// that seqs came from the immediately preceding expand call (whose
// assigned state variables, still in pools.seedFFs, seed the region).
func (s *Simulator) resimulateVV(f *fault.Fault, bad *seqsim.Trace, seqs []*sequence, baseMarks []bool) bool {
	cc := s.cc
	L := len(s.T)
	n := len(seqs)
	reg := s.resimRegion(f)
	vals, state, markRows := s.vresimScratch(len(reg.QFFs))
	qPos := s.qPosScratch()
	for qi, j := range reg.QFFs {
		qPos[j] = int32(qi)
	}

	// all marks the occupied lanes. Only the first nw words hold any —
	// the default NStates cap of 64 fills exactly one — so every plane
	// loop below runs to nw, not 4. Words at and above nw hold stale
	// garbage from earlier passes; they are never read, because every
	// mask is a subset of all, which is zero there.
	const allBits = ^uint64(0)
	nw := (n + 63) >> 6
	var all laneMask
	for w := 0; w < 4; w++ {
		switch {
		case n >= (w+1)*64:
			all[w] = allBits
		case n > w*64:
			all[w] = 1<<uint(n-w*64) - 1
		}
	}

	// Pack. Every lane starts as the shared base (bad) trace; sequences
	// diverge from it only at marked time units on expansion-assigned
	// state variables (expand marks every unit it writes), so only those
	// cells are scanned for per-lane diffs. The serial path's
	// per-sequence copy of baseMarks becomes an all-lanes mask per
	// marked unit.
	for u := 0; u <= L; u++ {
		row, badRow := state[u], bad.States[u]
		for qi, j := range reg.QFFs {
			var one, zero uint64
			switch badRow[j] {
			case logic.One:
				one = allBits
			case logic.Zero:
				zero = allBits
			}
			c := &row[qi]
			for w := 0; w < nw; w++ {
				c.One[w], c.Zero[w] = one, zero
			}
		}
		if baseMarks[u] {
			markRows[u] = all
		} else {
			markRows[u] = laneMask{}
		}
	}
	for k, sq := range seqs {
		for u := 0; u < L; u++ {
			if !baseMarks[u] {
				continue
			}
			row, badRow := sq.states[u], bad.States[u]
			for _, j := range s.pools.seedFFs {
				if v := row[j]; v != badRow[j] {
					state[u][qPos[j]].SetLane(uint(k), v)
				}
			}
		}
	}

	stem := f.IsStem()
	stuck := cir.Broadcast4(f.Stuck)
	badNodes := bad.Nodes
	var resolvedM laneMask
	frames := 0
	for u := 0; u < L && resolvedM != all; u++ {
		var active laneMask
		anyActive := uint64(0)
		for w := 0; w < nw; w++ {
			active[w] = markRows[u][w] &^ resolvedM[w]
			anyActive |= active[w]
		}
		if anyActive == 0 {
			continue
		}
		frames++
		row := state[u]

		// Clean-frame fast path: when no still-active lane's packed
		// state differs from the base faulty trace at u, every active
		// lane's frame values equal bad.Nodes[u], so detection and the
		// next-state comparison lift from the retained scalar trace and
		// the dense region evaluation is skipped entirely. This is the
		// common tail of a pass: expansion injections sit at a few
		// frames, and once the lanes that own them detect or conflict,
		// the surviving lanes ride the base trace through the rest of
		// the marked window. (bad.Nodes is retained whenever backward
		// implications are on; without it every frame takes the dense
		// path below.)
		if badNodes != nil {
			badRow := bad.States[u]
			dirty := uint64(0)
			for qi, j := range reg.QFFs {
				var bOne, bZero uint64
				switch badRow[j] {
				case logic.One:
					bOne = allBits
				case logic.Zero:
					bZero = allBits
				}
				c := &row[qi]
				for w := 0; w < nw; w++ {
					dirty |= (c.One[w] ^ bOne | c.Zero[w] ^ bZero) & active[w]
				}
			}
			if dirty == 0 {
				bn := badNodes[u]
				goodOuts := s.good.Outputs[u]
				detected := false
				for _, oj := range reg.Outs {
					g := goodOuts[oj]
					v := bn[cc.Outputs[oj]]
					if g.IsBinary() && v.IsBinary() && v != g {
						detected = true
						break
					}
				}
				if detected {
					// Every active lane detects here, exactly the
					// dense path's det == active case.
					for w := 0; w < nw; w++ {
						resolvedM[w] |= active[w]
					}
					continue
				}
				next := state[u+1]
				nextMarks := &markRows[u+1]
				act := active
				for _, j := range reg.DFFs {
					dv := bn[cc.FFD[j]]
					if stem && cc.FFQ[j] == f.Node {
						dv = f.Stuck
					}
					var vOne, vZero uint64
					switch dv {
					case logic.One:
						vOne = allBits
					case logic.Zero:
						vZero = allBits
					default:
						continue // X next value: no refine, no conflict
					}
					cell := &next[qPos[j]]
					for w := 0; w < nw; w++ {
						a := act[w]
						if a == 0 {
							continue
						}
						nOne, nZero := cell.One[w], cell.Zero[w]
						conflict := (vOne&nZero | vZero&nOne) & a
						refine := (vOne | vZero) &^ (nOne | nZero) & a
						cell.One[w] = nOne | vOne&refine
						cell.Zero[w] = nZero | vZero&refine
						nextMarks[w] |= refine
						resolvedM[w] |= conflict
						act[w] = a &^ conflict
					}
				}
				continue
			}
		}

		// Frame evaluation confined to the region: frontier nodes carry
		// the fault-free value on every lane, region Q nodes load the
		// packed state, a stem fault site is stuck on every lane (its
		// driver, if any, is skipped), and region gates evaluate in
		// level order. The gate fold is inlined over the live words —
		// this loop is the hot core of the pass, and the shared
		// VV4Fold's per-gate constructor and per-fanin call overhead
		// dominate it otherwise. Only the fault's own branch gate (at
		// most one per region) takes the shared fold, to keep the fast
		// path free of the pin-override test.
		goodNodes := s.good.Nodes[u]
		for _, id := range reg.Frontier {
			var one, zero uint64
			switch goodNodes[id] {
			case logic.One:
				one = allBits
			case logic.Zero:
				zero = allBits
			}
			v := &vals[id]
			for w := 0; w < nw; w++ {
				v.One[w], v.Zero[w] = one, zero
			}
		}
		for qi, j := range reg.QFFs {
			v, c := &vals[cc.FFQ[j]], &row[qi]
			for w := 0; w < nw; w++ {
				v.One[w], v.Zero[w] = c.One[w], c.Zero[w]
			}
		}
		if stem {
			vals[f.Node] = stuck
		}
		for _, gi := range reg.Gates {
			out := cc.GOut[gi]
			if stem && out == f.Node {
				continue
			}
			if !stem && gi == f.Gate {
				// Branch fault: the faulty pin observes the stuck value.
				fo := cir.StartVV4(cc.Ops[gi])
				lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
				for k := lo; k < hi; k++ {
					if k-lo == f.Pin {
						fo.Add(stuck)
					} else {
						fo.Add(vals[cc.Fanin[k]])
					}
				}
				vals[out] = fo.Result()
				continue
			}
			op := cc.Ops[gi]
			lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
			var one, zero [4]uint64
			switch op {
			case logic.And, logic.Nand:
				for w := 0; w < nw; w++ {
					one[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &vals[cc.Fanin[k]]
					for w := 0; w < nw; w++ {
						one[w] &= in.One[w]
						zero[w] |= in.Zero[w]
					}
				}
			case logic.Xor, logic.Xnor:
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &vals[cc.Fanin[k]]
					for w := 0; w < nw; w++ {
						o := one[w]&in.Zero[w] | zero[w]&in.One[w]
						zero[w] = one[w]&in.One[w] | zero[w]&in.Zero[w]
						one[w] = o
					}
				}
			case logic.Const0:
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
			case logic.Const1:
				for w := 0; w < nw; w++ {
					one[w] = allBits
				}
			default: // Or, Nor, Buf, Not: the or-fold
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &vals[cc.Fanin[k]]
					for w := 0; w < nw; w++ {
						one[w] |= in.One[w]
						zero[w] &= in.Zero[w]
					}
				}
			}
			v := &vals[out]
			if op != logic.Const0 && op != logic.Const1 && op.Inverting() {
				for w := 0; w < nw; w++ {
					v.One[w], v.Zero[w] = zero[w], one[w]
				}
			} else {
				for w := 0; w < nw; w++ {
					v.One[w], v.Zero[w] = one[w], zero[w]
				}
			}
		}

		// Detections: a lane whose binary output value contradicts a
		// binary fault-free response resolves, exactly the serial scan.
		// Only region outputs can differ (the region contains the cone).
		var det laneMask
		goodOuts := s.good.Outputs[u]
		for _, oj := range reg.Outs {
			g := goodOuts[oj]
			if !g.IsBinary() {
				continue
			}
			v := &vals[cc.Outputs[oj]]
			mism := &v.One
			if g == logic.One {
				mism = &v.Zero
			}
			for w := 0; w < nw; w++ {
				det[w] |= mism[w]
			}
		}
		var act laneMask
		anyAct := uint64(0)
		for w := 0; w < nw; w++ {
			det[w] &= active[w]
			resolvedM[w] |= det[w]
			act[w] = active[w] &^ det[w]
			anyAct |= act[w]
		}
		if anyAct == 0 {
			// Every active lane detected this frame; the serial path
			// breaks out before the next-state step, so do we.
			continue
		}

		// Next-state comparison against the packed state at u+1, lane
		// rules identical to the serial switch: a binary computed value
		// against X refines the lane (and marks u+1 for it), against the
		// opposite binary value conflicts (infeasible sequence, lane
		// resolved, later flip-flops untouched — act drops the lane).
		next := state[u+1]
		nextMarks := &markRows[u+1]
		for _, j := range reg.DFFs {
			v := vals[cc.FFD[j]]
			if stem && cc.FFQ[j] == f.Node {
				// The stem fault holds this flip-flop's observed next
				// state at the stuck value (fault.Observed).
				v = stuck
			}
			cell := &next[qPos[j]]
			for w := 0; w < nw; w++ {
				a := act[w]
				if a == 0 {
					continue
				}
				one, zero := v.One[w], v.Zero[w]
				nOne, nZero := cell.One[w], cell.Zero[w]
				conflict := (one&nZero | zero&nOne) & a
				refine := (one | zero) &^ (nOne | nZero) & a
				cell.One[w] = nOne | one&refine
				cell.Zero[w] = nZero | zero&refine
				nextMarks[w] |= refine
				resolvedM[w] |= conflict
				act[w] = a &^ conflict
			}
		}
	}

	if st := s.stats; st != nil {
		st.resimVectorPasses++
		st.resimVectorFrames += int64(frames)
	}
	if s.hist != nil {
		s.hist.ResimLanesPerPass.Observe(int64(n))
	}
	s.lastResim.VectorPasses++
	s.lastResim.VectorFrames += frames
	s.lastResim.Lanes += n
	return resolvedM == all
}
