package core

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/tgen"
)

// TestRunParallelMatchesRun checks that parallel execution produces
// exactly the serial results, in order.
func TestRunParallelMatchesRun(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 32, e.SeqSeed)
	faults := fault.CollapsedList(c)

	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	parallel, err := s.RunParallel(faults, 4, func(done, total int) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(faults) {
		t.Errorf("progress called %d times, want %d", calls, len(faults))
	}
	if parallel.Conv != serial.Conv || parallel.MOT != serial.MOT || parallel.Sum != serial.Sum {
		t.Fatalf("parallel %+v != serial %+v", parallel.Sum, serial.Sum)
	}
	for k := range faults {
		if parallel.Outcomes[k].Outcome != serial.Outcomes[k].Outcome {
			t.Fatalf("fault %d outcome differs: %v vs %v",
				k, parallel.Outcomes[k].Outcome, serial.Outcomes[k].Outcome)
		}
	}
}

func TestRunParallelSingleWorkerFallsBack(t *testing.T) {
	c := circuits.Intro()
	T := tgen.Random(1, 3, 1)
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	res, err := s.RunParallel(faults, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(faults) {
		t.Fatal("fallback run wrong")
	}
}

// TestIdentificationOnlySubset checks the low-complexity mode detects a
// subset of the full procedure's faults and never expands.
func TestIdentificationOnlySubset(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_ = rng
	e, err := circuits.SuiteEntryByName("sg344")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 48, e.SeqSeed)
	faults := fault.CollapsedList(c)

	full, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IdentificationOnly = true
	ident, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		oi, err := ident.SimulateFault(f)
		if err != nil {
			t.Fatal(err)
		}
		if oi.Expansions != 0 {
			t.Fatalf("identification-only mode expanded fault %s", f.Name(c))
		}
		if oi.Outcome != DetectedMOT {
			continue
		}
		if !oi.ByIdentification {
			t.Fatalf("identification-only detection without identification flag: %s", f.Name(c))
		}
		of, err := full.SimulateFault(f)
		if err != nil {
			t.Fatal(err)
		}
		if !of.Outcome.Detected() {
			t.Fatalf("fault %s detected by identification-only but not by the full procedure", f.Name(c))
		}
	}
}
