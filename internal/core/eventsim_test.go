package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// crossCheckEventSim runs the fault list with the event-driven
// faulty-frame evaluator on and off and asserts every FaultOutcome is
// byte-identical (FaultOutcome has no reference-typed fields, so != is
// an exact field-by-field comparison). The event-driven path is
// exercised serially and through RunParallel (per-worker EventEval
// scratch and schedule binding).
func crossCheckEventSim(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, cfg Config) {
	t.Helper()
	level := cfg
	level.EventSim = false
	event := cfg
	event.EventSim = true

	simLevel, err := NewSimulator(c, T, level)
	if err != nil {
		t.Fatal(err)
	}
	simEvent, err := NewSimulator(c, T, event)
	if err != nil {
		t.Fatal(err)
	}
	resLevel, err := simLevel.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resEvent, err := simEvent.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := simEvent.RunParallel(faults, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"serial": resEvent, "parallel": resPar} {
		if len(res.Outcomes) != len(resLevel.Outcomes) {
			t.Fatalf("%s: %d event-driven outcomes, %d level-order", name, len(res.Outcomes), len(resLevel.Outcomes))
		}
		for k := range res.Outcomes {
			if res.Outcomes[k] != resLevel.Outcomes[k] {
				t.Fatalf("%s: fault %s differs from level-order:\n  event-driven: %+v\n  level-order:  %+v",
					name, faults[k].Name(c), res.Outcomes[k], resLevel.Outcomes[k])
			}
		}
		if res.Conv != resLevel.Conv || res.MOT != resLevel.MOT || res.Sum != resLevel.Sum ||
			res.Expansions != resLevel.Expansions || res.Pairs != resLevel.Pairs ||
			res.Sequences != resLevel.Sequences || res.Identified != resLevel.Identified ||
			res.PrunedConditionC != resLevel.PrunedConditionC {
			t.Fatalf("%s: aggregates differ from level-order:\n  event-driven: %+v\n  level-order:  %+v",
				name, res, resLevel)
		}
	}
}

func TestEventSimCrossCheckS27(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	crossCheckEventSim(t, c, T, fault.CollapsedList(c), DefaultConfig())
}

func TestEventSimCrossCheckSynthetic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *netlist.Circuit
	}{
		{"fig4", circuits.Fig4},
		{"intro", circuits.Intro},
		{"table1", circuits.Table1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			T := tgen.Random(c.NumInputs(), 16, 11)
			crossCheckEventSim(t, c, T, fault.CollapsedList(c), DefaultConfig())
		})
	}
}

// TestEventSimCrossCheckLongList covers the uncollapsed sg208 list: one
// simulator's event scratch, cone schedules and epoch stamps serve
// hundreds of consecutive faults, crossing the uint32 epoch reuse path
// many times over.
func TestEventSimCrossCheckLongList(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	faults := fault.List(c)
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	crossCheckEventSim(t, c, T, faults, DefaultConfig())
}

// TestEventSimCrossCheckVariants sweeps the configuration axes that
// change which frames the evaluator sees: the [4] baseline, deep
// backward implications, the fixpoint schedule, tight pair and sequence
// budgets, the Reference allocation mode, the prescreen off
// (conventionally detected faults run the per-fault pipeline too), and
// the bit-parallel resimulation off — the variant that routes marked
// resimulation frames through the sparse serial path (EvalFrameSparse)
// instead of the 256-lane pass.
func TestEventSimCrossCheckVariants(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	faults := fault.CollapsedList(c)
	variants := map[string]func(*Config){
		"baseline":     func(cfg *Config) { cfg.UseBackwardImplications = false },
		"deep2":        func(cfg *Config) { cfg.BackwardDepth = 2 },
		"deep4":        func(cfg *Config) { cfg.BackwardDepth = 4 },
		"fixpoint":     func(cfg *Config) { cfg.Schedule = Fixpoint },
		"maxpairs4":    func(cfg *Config) { cfg.MaxPairs = 4 },
		"nstates2":     func(cfg *Config) { cfg.NStates = 2 },
		"reference":    func(cfg *Config) { cfg.Reference = true },
		"no-prescreen": func(cfg *Config) { cfg.Prescreen = false },
		"no-bp-resim":  func(cfg *Config) { cfg.BitParallelResim = false },
	}
	for name, tweak := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			tweak(&cfg)
			crossCheckEventSim(t, c, T, faults, cfg)
		})
	}
}

// TestEventSimCrossCheckNoBPResimLongList exercises the sparse serial
// resimulation path (EvalFrameSparse) at scale: the uncollapsed sg208
// list with the bit-parallel resim disabled, so every expansion's
// marked frames re-evaluate through the event queue against the stored
// bad-trace baseline.
func TestEventSimCrossCheckNoBPResimLongList(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	cfg := DefaultConfig()
	cfg.BitParallelResim = false
	crossCheckEventSim(t, c, T, fault.List(c), cfg)
}

// TestEventSimTraceCrossCheck asserts the JSONL trace is byte-identical
// with the event-driven evaluator on and off, for both serial and
// 4-worker runs: the per-fault sim counters in the trace come from the
// step-0 window only, where both evaluators visit exactly the same
// gates (the level-order path is also change-driven), so the evaluator
// choice must be invisible in every traced field.
func TestEventSimTraceCrossCheck(t *testing.T) {
	c, T, faults := statsSetup(t)
	on := DefaultConfig()
	off := DefaultConfig()
	off.EventSim = false
	trOn1, _ := traceRun(t, c, T, faults, on, 1)
	trOff1, _ := traceRun(t, c, T, faults, off, 1)
	if trOn1 != trOff1 {
		t.Fatalf("serial trace differs between event-driven and level-order:\n--- event ---\n%s\n--- level ---\n%s", trOn1, trOff1)
	}
	trOn4, _ := traceRun(t, c, T, faults, on, 4)
	trOff4, _ := traceRun(t, c, T, faults, off, 4)
	if trOn4 != trOn1 {
		t.Fatalf("event-driven trace differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s", trOn1, trOn4)
	}
	if trOff4 != trOff1 {
		t.Fatalf("level-order trace differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s", trOff1, trOff4)
	}
}

// FuzzEventSimCrossCheck drives random short fault lists and pattern
// sequences through whole runs with the event-driven evaluator on and
// off and asserts identical outcomes. The fuzz input picks the pattern
// seed, the sequence length and which collapsed faults to simulate.
func FuzzEventSimCrossCheck(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{7, 0, 255, 16, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		c, err := bench.ParseString("fuzzevent", fuzzResimBench)
		if err != nil {
			t.Fatal(err)
		}
		seed := int64(data[0])
		L := 2 + int(data[0])%6
		T := tgen.Random(c.NumInputs(), L, seed)
		all := fault.CollapsedList(c)
		var faults []fault.Fault
		for i, b := range data[1:] {
			if i >= 8 {
				break
			}
			faults = append(faults, all[int(b)%len(all)])
		}
		if len(faults) == 0 {
			faults = all
		}
		cfg := DefaultConfig()
		if len(data) > 1 && data[1]%2 == 1 {
			cfg.BitParallelResim = false
		}
		level := cfg
		level.EventSim = false
		simLevel, err := NewSimulator(c, T, level)
		if err != nil {
			t.Fatal(err)
		}
		simEvent, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resLevel, err := simLevel.Run(faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		resEvent, err := simEvent.Run(faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k := range resEvent.Outcomes {
			if resEvent.Outcomes[k] != resLevel.Outcomes[k] {
				t.Fatalf("fault %s differs:\n  event-driven: %+v\n  level-order:  %+v",
					faults[k].Name(c), resEvent.Outcomes[k], resLevel.Outcomes[k])
			}
		}
	})
}

// TestEventSimLiveCounters asserts the live snapshot carries the event
// counters when the evaluator is on, agrees between worker counts, and
// zeroes them when it is off.
func TestEventSimLiveCounters(t *testing.T) {
	c, T, faults := statsSetup(t)
	run := func(cfg Config, workers int) *LiveSnapshot {
		live := &LiveStats{}
		cfg.Live = live
		s, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			_, err = s.Run(faults, nil)
		} else {
			_, err = s.RunParallel(faults, workers, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		snap := live.Snapshot()
		return &snap
	}
	on := run(DefaultConfig(), 1)
	if on.EventFrames == 0 || on.EventGateEvals == 0 || on.Events == 0 {
		t.Errorf("event-driven live counters empty: %+v", on)
	}
	par := run(DefaultConfig(), 8)
	if par.EventFrames != on.EventFrames || par.EventGateEvals != on.EventGateEvals || par.Events != on.Events {
		t.Errorf("live event counters differ between 1 and 8 workers:\n  1: %+v\n  8: %+v", on, par)
	}
	off := DefaultConfig()
	off.EventSim = false
	snapOff := run(off, 1)
	if snapOff.EventFrames != 0 || snapOff.EventGateEvals != 0 {
		t.Errorf("level-order run bumped event-frame counters: %+v", snapOff)
	}
	if snapOff.DeltaFrames == 0 || snapOff.Events == 0 {
		// The level-order path is change-driven too: it counts the same
		// Events it would enqueue, which is what the parity tests rely on.
		t.Errorf("level-order run recorded no delta frames/events: %+v", snapOff)
	}
}
