// Reference (allocate-per-pair) implementations of the pair-collection
// path, retained verbatim from before the trail/pooling rework apart from
// the sv-ordering determinism fix (which both paths share). Enabled with
// Config.Reference; the cross-check tests assert byte-identical
// FaultOutcomes against the pooled path, and the benchmarks use it as the
// allocation baseline.
package core

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/seqsim"
)

// collectPairsRef is the allocate-per-pair collectPairs.
func (s *Simulator) collectPairsRef(f *fault.Fault, bad *seqsim.Trace, nout []int) []pairInfo {
	L := len(s.T)
	nFF := s.c.NumFFs()
	var pairs []pairInfo
	capReached := func() bool {
		return s.cfg.MaxPairs > 0 && len(pairs) >= s.cfg.MaxPairs
	}

	if nout[0] > 0 {
		for i := 0; i < nFF; i++ {
			if bad.States[0][i] != logic.X || capReached() {
				continue
			}
			pairs = append(pairs, trivialPair(0, i))
		}
	}
	for u := 1; u < L; u++ {
		if nout[u-1] == 0 || capReached() {
			break // nout is non-increasing: later units are useless too
		}
		for i := 0; i < nFF; i++ {
			if bad.States[u][i] != logic.X || capReached() {
				continue
			}
			if !s.cfg.UseBackwardImplications {
				pairs = append(pairs, trivialPair(u, i))
				continue
			}
			pairs = append(pairs, s.collectOneRef(f, bad, u, i))
		}
	}
	return pairs
}

// collectOneRef performs backward implication of y_i at time u for both
// values with a fresh implication frame per side and a map-backed sv set.
func (s *Simulator) collectOneRef(f *fault.Fault, bad *seqsim.Trace, u, i int) pairInfo {
	p := pairInfo{u: u, i: i}
	svSet := map[int]bool{i: true}
	for a := 0; a < 2; a++ {
		alpha := logic.Val(a)
		fr := implic.New(s.c, f, bad.Nodes[u-1])
		ok := fr.AssignNextState(i, alpha) && s.imply(fr)
		if !ok {
			p.conf[a] = true
			continue
		}
		if s.frameDetects(fr, u-1) {
			p.detect[a] = true
			continue
		}
		if s.cfg.BackwardDepth > 1 {
			switch s.deepBackwardRef(f, bad, fr, u-1, s.cfg.BackwardDepth-1) {
			case deepConflict:
				p.conf[a] = true
				continue
			case deepDetect:
				p.detect[a] = true
				continue
			}
		}
		var extra []svAssign
		for j := 0; j < s.c.NumFFs(); j++ {
			if bad.States[u][j] != logic.X {
				continue
			}
			if v := fr.NextState(j); v.IsBinary() {
				extra = append(extra, svAssign{j: j, v: v})
				svSet[j] = true
			}
		}
		p.extra[a] = extra
	}
	for j := range svSet {
		p.sv = append(p.sv, j)
	}
	// Map iteration order is random; the expansion path depends on sv
	// order, so sort for reproducible outcomes (same order as the pooled
	// path).
	sort.Ints(p.sv)
	return p
}

// deepBackwardRef recursively chases newly specified present-state
// variables into earlier frames, allocating a frame per time unit.
func (s *Simulator) deepBackwardRef(f *fault.Fault, bad *seqsim.Trace, fr *implic.Frame, u, depth int) deepResult {
	if depth <= 0 || u == 0 {
		return deepNothing
	}
	var newly []svAssign
	for j := 0; j < s.c.NumFFs(); j++ {
		if bad.States[u][j] != logic.X {
			continue
		}
		if v := fr.PresentState(j); v.IsBinary() {
			newly = append(newly, svAssign{j: j, v: v})
		}
	}
	if len(newly) == 0 {
		return deepNothing
	}
	prev := implic.New(s.c, f, bad.Nodes[u-1])
	for _, a := range newly {
		if !prev.AssignNextState(a.j, a.v) {
			return deepConflict
		}
	}
	if !s.imply(prev) {
		return deepConflict
	}
	if s.frameDetects(prev, u-1) {
		return deepDetect
	}
	return s.deepBackwardRef(f, bad, prev, u-1, depth-1)
}
