// Package core implements the paper's contribution: fault simulation
// under the restricted multiple observation time (MOT) approach using
// state expansion enhanced with backward implications, together with the
// state-expansion-only baseline procedure of [4] it improves upon.
//
// The per-fault pipeline follows Procedure 1 of the paper:
//
//  1. Conventional serial fault simulation; detected faults are dropped.
//  2. The necessary condition (C) — some time unit has both unspecified
//     faulty state variables and usefully unspecified outputs — prunes
//     faults MOT simulation cannot possibly detect.
//  3. Backward-implication information (conflicts, detections, extra
//     specified state variables) is collected for every candidate
//     (time unit, state variable) pair (Section 3.1).
//  4. Faults whose every next-state assignment leads to conflict or
//     detection are identified as detected outright (Section 3.2).
//  5. Pairs are selected for state expansion by the paper's four criteria
//     and applied — single-sided pairs by forcing the surviving value,
//     double-sided pairs by duplicating all state sequences — until the
//     sequence budget N_STATES is reached (Section 3.3, Procedure 2).
//  6. The expanded sequences are resimulated; the fault is detected when
//     every sequence ends in a detection or an infeasibility conflict
//     (Section 3.4).
package core

import (
	"fmt"
	"io"

	"repro/internal/xtrace"
)

// Schedule selects the implication schedule inside a time frame.
type Schedule uint8

const (
	// TwoPass is the paper's schedule: one backward sweep (outputs to
	// inputs) followed by one forward sweep (inputs to outputs).
	TwoPass Schedule = iota
	// Fixpoint alternates sweeps until no further value is derived — an
	// extension over the paper trading time for implication strength.
	Fixpoint
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case TwoPass:
		return "two-pass"
	case Fixpoint:
		return "fixpoint"
	}
	return fmt.Sprintf("Schedule(%d)", uint8(s))
}

// Config controls the MOT fault simulation procedure.
type Config struct {
	// NStates is the limit on the number of state sequences after
	// expansion (the paper's experiments use 64).
	NStates int
	// UseBackwardImplications enables the paper's contribution. When
	// false the simulator degrades to the state-expansion-only baseline
	// of [4]: no per-pair implication information is collected, each
	// expansion specifies exactly the selected state variable, and
	// selection uses criteria (1) and (2) only.
	UseBackwardImplications bool
	// Schedule selects the in-frame implication schedule.
	Schedule Schedule
	// FixpointRounds bounds the sweep round-trips of the Fixpoint
	// schedule.
	FixpointRounds int
	// BackwardDepth is the number of time units backward implications may
	// traverse. The paper uses 1; larger values chain newly specified
	// present-state variables into earlier frames (Section 2 sketches
	// this extension), detecting additional conflicts and detections.
	BackwardDepth int
	// MaxPairs caps the number of (time unit, state variable) pairs whose
	// backward implications are collected per fault, bounding worst-case
	// work on circuits whose faulty machines never initialize. Zero means
	// no cap. Pairs are collected in ascending time order, which the
	// selection criteria prefer anyway (N_out is non-increasing in time).
	MaxPairs int
	// Prescreen enables the batched bit-parallel conventional stage in
	// Run and RunParallel: the whole fault list is first simulated 255
	// faulty machines per word (internal/bitsim), faults detected
	// conventionally are classified directly from the lane results, and
	// only the survivors enter the per-fault MOT pipeline. Outcomes are
	// identical with the prescreen off (every fault then runs the serial
	// step 0 inside SimulateFault); the off mode exists as a cross-check
	// fallback and is asserted bit-identical by the prescreen tests.
	// SimulateFault itself never prescreens.
	Prescreen bool
	// BitParallelResim enables the bit-parallel Section 3.4
	// resimulation: all expanded sequences of a fault pack into the
	// lanes of one 256-lane word and resimulate in a single
	// region-confined vector pass per expansion (vresim.go), falling
	// back to the serial path only when a sequence set exceeds the lane
	// capacity. Outcomes are identical with it off (every sequence then
	// resimulates serially); the off mode exists as a cross-check
	// fallback and is asserted bit-identical by the resim cross-check
	// tests.
	BitParallelResim bool
	// EventSim enables the event-driven sparse-delta frame evaluator
	// (cir.EventEval): faulty frames seed events at the fault site and
	// the changed present-state lines, visit only gates whose inputs
	// changed, and store only divergent values in an epoch-stamped
	// overlay — eliminating the per-frame whole-circuit copy of the
	// level-order cone walk. Outcomes, JSONL traces and per-fault
	// counters are byte-identical with it off (every frame then takes
	// the retained level-order path); the off mode exists as a
	// cross-check fallback and is asserted bit-identical by the
	// event-sim cross-check and fuzz tests.
	EventSim bool
	// Reference selects the retained allocate-per-pair implementation of
	// the pair-collection and expansion path: a fresh implication frame
	// per pair side, map-backed sv sets, and freshly allocated sequences.
	// Outcomes are byte-identical to the default pooled/trail path; the
	// mode exists for cross-check tests and as the allocation baseline in
	// benchmarks.
	Reference bool
	// IdentificationOnly stops the pipeline after Section 3.2: faults are
	// credited only when the collected implication information alone
	// proves detection, with no state expansion or resimulation. This
	// mirrors the low-complexity implication-based approach of the
	// paper's reference [6], which trades accuracy for speed; it detects
	// a subset of the faults the full procedure detects.
	IdentificationOnly bool
	// Metrics enables the per-stage instrumentation of Run and
	// RunParallel: stage timers, per-fault histograms and pool gauges
	// (Result.Stages breakdown and Result.Metrics). The cost is a handful
	// of monotonic-clock reads per fault; outcomes are identical either
	// way. Off, only the coarse prescreen/MOT stage split is recorded.
	Metrics bool
	// TraceWriter, when non-nil, receives an opt-in per-fault JSONL
	// trace: one event per fault in fault-list order, recording the
	// outcome, detection site, and pipeline counters. The content is
	// deterministic regardless of worker count; events are buffered and
	// emitted after the run completes, never from worker goroutines.
	TraceWriter io.Writer
	// TraceTimings adds the per-fault stage-time breakdown to every
	// trace event. Timings are wall-clock measurements and therefore not
	// deterministic across runs; leave this off when traces are diffed.
	// Requires Metrics.
	TraceTimings bool
	// Tracer, when non-nil, receives hierarchical spans from Run and
	// RunParallel: a run span over the whole fault list, stage spans for
	// the prescreen (with one span per bit-parallel batch) and the
	// per-fault MOT stage, one span per parallel worker, and — for the
	// faults selected by TraceSampleRate — a span per fault with
	// expand/resim sub-spans. Span IDs derive from deterministic keys
	// (fault index, batch index, stage name), so the span set, parent
	// links and attributes are identical across worker counts; only
	// timestamps and worker/track assignments are scheduling-dependent.
	// Export with Tracer.WriteChromeTrace (Perfetto / chrome://tracing)
	// or WriteJSONL. Nil (the default) keeps tracing entirely off the
	// hot path.
	Tracer *xtrace.Tracer
	// TraceSampleRate is the fraction of faults that get per-fault spans,
	// in [0, 1]; sampling is deterministic by fault index (xtrace.SampleAt),
	// never random. Zero selects the default (0.05); 1 traces every
	// fault. Ignored when Tracer is nil.
	TraceSampleRate float64
	// Live, when non-nil, receives coarse-cadence snapshots of the run
	// while it executes: every worker folds its pending per-fault deltas
	// into the shared LiveStats every LiveEvery faults, so an HTTP
	// scraper (cmd/motserve, the batch CLIs' -metrics-addr) can watch an
	// in-flight run without adding atomics to the per-fault hot path.
	// The stage-time and frame-counter fields additionally require
	// Metrics; the detection counters work either way. Multiple runs may
	// share one LiveStats, aggregating their counters.
	Live *LiveStats
	// LiveEvery is the publication cadence in faults (per worker); zero
	// selects the default (32). Smaller values make /metrics fresher at
	// the cost of more shared-counter traffic. Ignored when Live is nil.
	LiveEvery int
}

// DefaultConfig returns the configuration used in the paper's experiments:
// N_STATES = 64, backward implications on, two-pass schedule, one time
// unit of backward implication. The bit-parallel conventional prescreen
// (an engineering speedup the paper sets aside) is on.
func DefaultConfig() Config {
	return Config{
		NStates:                 64,
		UseBackwardImplications: true,
		Schedule:                TwoPass,
		FixpointRounds:          8,
		BackwardDepth:           1,
		MaxPairs:                4096,
		Prescreen:               true,
		BitParallelResim:        true,
		EventSim:                true,
		Metrics:                 true,
	}
}

// BaselineConfig returns the configuration reproducing the procedure of
// [4]: state expansion with the same N_STATES limit, no backward
// implications.
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.UseBackwardImplications = false
	return cfg
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	switch {
	case cfg.NStates < 1:
		return fmt.Errorf("core: NStates must be positive, got %d", cfg.NStates)
	case cfg.BackwardDepth < 1:
		return fmt.Errorf("core: BackwardDepth must be at least 1, got %d", cfg.BackwardDepth)
	case cfg.Schedule == Fixpoint && cfg.FixpointRounds < 1:
		return fmt.Errorf("core: FixpointRounds must be positive with the fixpoint schedule")
	case cfg.MaxPairs < 0:
		return fmt.Errorf("core: MaxPairs must be non-negative, got %d", cfg.MaxPairs)
	case cfg.TraceTimings && !cfg.Metrics:
		return fmt.Errorf("core: TraceTimings requires Metrics")
	case cfg.LiveEvery < 0:
		return fmt.Errorf("core: LiveEvery must be non-negative, got %d", cfg.LiveEvery)
	case cfg.TraceSampleRate < 0 || cfg.TraceSampleRate > 1:
		return fmt.Errorf("core: TraceSampleRate must be in [0, 1], got %v", cfg.TraceSampleRate)
	}
	return nil
}

// Outcome classifies the result of simulating one fault.
type Outcome uint8

const (
	// Undetected: the test sequence does not detect the fault under the
	// restricted MOT approach within the configured budgets.
	Undetected Outcome = iota
	// DetectedConventional: conventional three-valued simulation detects
	// the fault (single observation time).
	DetectedConventional
	// DetectedMOT: the fault is detected by the MOT procedure beyond
	// conventional simulation.
	DetectedMOT
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Undetected:
		return "undetected"
	case DetectedConventional:
		return "detected(conventional)"
	case DetectedMOT:
		return "detected(MOT)"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Detected reports whether the outcome is a detection.
func (o Outcome) Detected() bool { return o != Undetected }

// Counters are the paper's per-fault effectiveness counters (Table 3),
// incremented for every pair selected for expansion:
//
//   - Det counts next-state assignments that led to fault detection;
//   - Conf counts next-state assignments that led to conflicts;
//   - Extra counts state-variable values specified by the expansions.
type Counters struct {
	Det   int
	Conf  int
	Extra int
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.Det += other.Det
	c.Conf += other.Conf
	c.Extra += other.Extra
}
