package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/seqsim"
)

// deepBench embeds the Figure 4 conflict one frame deeper: a second
// flip-flop q3 latches the Figure 4 state variable L2 (d3 = BUFF(L2)).
// Asserting q3's next state to 1 at frame u-1 implies L2 = 1 at u-1 with
// no conflict inside that frame; chasing the newly specified L2 into
// frame u-2 asserts L11 = 1 there, which is the Figure 4 conflict under
// input 0. Depth-1 backward implications (the paper) miss it; depth-2
// finds it.
const deepBench = `
INPUT(L1)
OUTPUT(L9)
OUTPUT(deadbuf)
L2 = DFF(L11)
q3 = DFF(d3)
L8 = NOT(L2)
L3 = AND(L1, L2)
L4 = AND(L1, L8)
L5 = OR(L3, L2)
L6 = OR(L4, L2)
L9 = NOT(L6)
L11 = AND(L5, L9)
d3 = BUFF(L2)
dead = AND(L2, q3)
deadbuf = BUFF(dead)
`

// deepSetup builds a simulator over an all-zero sequence and an
// undetected fault whose trace equals the fault-free trace on the nodes
// that matter (a branch fault on the dead cone).
func deepSetup(t *testing.T, depth int) (*Simulator, fault.Fault, *seqsim.Trace) {
	t.Helper()
	c, err := bench.ParseString("deep", deepBench)
	if err != nil {
		t.Fatal(err)
	}
	T := seqsim.Sequence{{logic.Zero}, {logic.Zero}, {logic.Zero}, {logic.Zero}}
	cfg := DefaultConfig()
	cfg.BackwardDepth = depth
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead, _ := c.NodeByName("dead")
	g := c.Nodes[dead].Driver
	l2, _ := c.NodeByName("L2")
	f := fault.Fault{Node: l2, Gate: g, Pin: 0, Stuck: logic.One}
	bad, _, detected, err := s.sim.RunFault(T, s.good, f, true)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatal("setup fault unexpectedly detected")
	}
	return s, f, bad
}

func TestDeepBackwardFindsDeeperConflict(t *testing.T) {
	// Depth 1 (the paper): asserting Y2 = 1 at frame 1 implies q1 = 1
	// there, with no conflict visible inside frame 1.
	s1, f1, bad1 := deepSetup(t, 1)
	p1 := s1.collectOne(&f1, bad1, 2, 1)
	if p1.conf[1] {
		t.Fatal("depth-1 implications should not find the deep conflict")
	}
	// Depth 2 (extension): chasing q1 = 1 into frame 0 demands d1 = 1,
	// which conflicts with d1 = AND(0, q2) = 0.
	s2, f2, bad2 := deepSetup(t, 2)
	p2 := s2.collectOne(&f2, bad2, 2, 1)
	if !p2.conf[1] {
		t.Fatalf("depth-2 implications missed the deep conflict: %+v", p2)
	}
	// The 0 side is feasible either way.
	if p1.conf[0] || p2.conf[0] {
		t.Fatal("0 side should be conflict-free")
	}
}

func TestDeepBackwardStopsAtFrameZero(t *testing.T) {
	// Asserting at u = 1 puts the backward frame at 0; deeper chasing
	// must stop gracefully at the initial state.
	s, f, bad := deepSetup(t, 4)
	p := s.collectOne(&f, bad, 1, 1)
	// No crash and sane results: (1, FF2) asserting Y2 at frame 0 implies
	// q1(0), whose deeper frame does not exist.
	if p.u != 1 || p.i != 1 {
		t.Fatal("wrong pair coordinates")
	}
}
