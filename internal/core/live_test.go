package core

import (
	"context"
	"errors"
	"testing"
)

// liveRun executes one whole-list run publishing into a fresh LiveStats.
func liveRun(t *testing.T, workers int, mutate func(*Config)) (*Result, *LiveStats) {
	t.Helper()
	c, T, faults := statsSetup(t)
	cfg := DefaultConfig()
	live := &LiveStats{}
	cfg.Live = live
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	if workers == 1 {
		res, err = s.Run(faults, nil)
	} else {
		res, err = s.RunParallel(faults, workers, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res, live
}

// deterministic strips a snapshot down to its scheduling-invariant
// fields (everything except the wall-clock *NS measurements).
func deterministic(s LiveSnapshot) LiveSnapshot {
	s.ImplyNS, s.Step0NS, s.CollectNS, s.ExpandNS, s.ResimNS, s.TotalNS = 0, 0, 0, 0, 0, 0
	return s
}

// TestLiveSnapshotSerialParallelCrossCheck asserts the final live
// snapshot is scheduling-invariant (serial == 8 workers) and equals the
// merged Result/Result.Stages counters, so a /metrics scrape taken
// after the run reports exactly what the batch report does.
func TestLiveSnapshotSerialParallelCrossCheck(t *testing.T) {
	resS, liveS := liveRun(t, 1, nil)
	resP, liveP := liveRun(t, 8, nil)

	ss, sp := deterministic(liveS.Snapshot()), deterministic(liveP.Snapshot())
	if ss != sp {
		t.Errorf("live snapshot differs between 1 and 8 workers:\n  serial:   %+v\n  parallel: %+v", ss, sp)
	}

	for _, res := range []*Result{resS, resP} {
		if res.Live == nil {
			t.Fatal("Result.Live not set")
		}
		s := res.Live.Snapshot()
		st := res.Stages
		checks := []struct {
			name      string
			got, want int64
		}{
			{"RunsStarted", s.RunsStarted, 1},
			{"RunsDone", s.RunsDone, 1},
			{"FaultsTotal", s.FaultsTotal, int64(res.Total)},
			{"FaultsDone", s.FaultsDone, int64(res.Total)},
			{"Conv", s.Conv, int64(res.Conv)},
			{"MOT", s.MOT, int64(res.MOT)},
			{"PrunedConditionC", s.PrunedConditionC, int64(res.PrunedConditionC)},
			{"PrescreenPasses", s.PrescreenPasses, int64(st.PrescreenPasses)},
			{"PrescreenDropped", s.PrescreenDropped, int64(st.PrescreenDropped)},
			{"PrescreenFrames", s.PrescreenFrames, st.PrescreenFrames},
			{"MOTFaults", s.MOTFaults, int64(st.MOTFaults)},
			{"Pairs", s.Pairs, int64(res.Pairs)},
			{"Expansions", s.Expansions, int64(res.Expansions)},
			{"Sequences", s.Sequences, int64(res.Sequences)},
			{"ImplyCalls", s.ImplyCalls, st.ImplyCalls},
			{"DeltaFrames", s.DeltaFrames, st.Sim.DeltaFrames},
			{"DeltaGateEvals", s.DeltaGateEvals, st.Sim.DeltaGateEvals},
			{"FullFrames", s.FullFrames, st.Sim.FullFrames},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("final snapshot %s = %d, want %d (merged result)", c.name, c.got, c.want)
			}
		}
		if s.Undetected() != int64(res.Total-res.Detected()) {
			t.Errorf("Undetected() = %d, want %d", s.Undetected(), res.Total-res.Detected())
		}
	}
	if liveS.Metrics() == nil {
		t.Error("LiveStats.Metrics() nil after a metrics-enabled run")
	}
}

// TestLiveSnapshotMonotonic scrapes the live stats after every fault of
// a serial run (cadence 1) and asserts every counter only ever grows —
// the property Prometheus counters require between scrapes.
func TestLiveSnapshotMonotonic(t *testing.T) {
	c, T, faults := statsSetup(t)
	cfg := DefaultConfig()
	live := &LiveStats{}
	cfg.Live = live
	cfg.LiveEvery = 1
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev LiveSnapshot
	moved := 0
	progress := func(done, total int) {
		cur := live.Snapshot()
		type pair struct {
			name      string
			prev, cur int64
		}
		for _, p := range []pair{
			{"FaultsDone", prev.FaultsDone, cur.FaultsDone},
			{"Conv", prev.Conv, cur.Conv},
			{"MOT", prev.MOT, cur.MOT},
			{"PrunedConditionC", prev.PrunedConditionC, cur.PrunedConditionC},
			{"MOTFaults", prev.MOTFaults, cur.MOTFaults},
			{"ImplyCalls", prev.ImplyCalls, cur.ImplyCalls},
			{"Pairs", prev.Pairs, cur.Pairs},
			{"DeltaFrames", prev.DeltaFrames, cur.DeltaFrames},
			{"Step0NS", prev.Step0NS, cur.Step0NS},
			{"PrescreenFrames", prev.PrescreenFrames, cur.PrescreenFrames},
		} {
			if p.cur < p.prev {
				t.Errorf("fault %d/%d: %s went backward: %d -> %d", done, total, p.name, p.prev, p.cur)
			}
		}
		if cur.FaultsDone > prev.FaultsDone {
			moved++
		}
		prev = cur
	}
	res, err := s.Run(faults, progress)
	if err != nil {
		t.Fatal(err)
	}
	if moved < res.Total/2 {
		t.Errorf("FaultsDone moved on only %d of %d scrapes with cadence 1", moved, res.Total)
	}
	if got := live.Snapshot().FaultsDone; got != int64(res.Total) {
		t.Errorf("final FaultsDone = %d, want %d", got, res.Total)
	}
}

// TestLiveMetricsOffStillCounts asserts the detection counters work
// without Config.Metrics (stage times and frame counters then stay 0).
func TestLiveMetricsOffStillCounts(t *testing.T) {
	res, live := liveRun(t, 4, func(cfg *Config) { cfg.Metrics = false })
	s := live.Snapshot()
	if s.FaultsDone != int64(res.Total) || s.Conv != int64(res.Conv) || s.MOT != int64(res.MOT) {
		t.Errorf("snapshot counters wrong with metrics off: %+v vs result %d/%d/%d",
			s, res.Total, res.Conv, res.MOT)
	}
	if s.ImplyCalls != 0 || s.Step0NS != 0 || s.DeltaFrames != 0 {
		t.Errorf("metrics-off run published pipeline internals: %+v", s)
	}
	if s.MOTFaults == 0 {
		t.Error("MOTFaults not counted with metrics off")
	}
}

// TestRunContextCancel asserts both run modes stop promptly and return
// the context error once the context is canceled mid-run.
func TestRunContextCancel(t *testing.T) {
	c, T, faults := statsSetup(t)
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		// Disable the prescreen so every fault runs the pipeline and the
		// cancellation point is exercised by the fault loop itself.
		cfg.Prescreen = false
		s, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		fired := 0
		progress := func(done, total int) {
			fired++
			if done >= 3 {
				cancel()
			}
		}
		var res *Result
		if workers == 1 {
			res, err = s.RunContext(ctx, faults, progress)
		} else {
			res, err = s.RunParallelContext(ctx, faults, workers, progress)
		}
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Errorf("workers=%d: canceled run returned a result", workers)
		}
		if fired >= len(faults) {
			t.Errorf("workers=%d: run completed all %d faults despite cancellation", workers, fired)
		}
	}
}

// TestRunContextDone asserts an already-done context aborts before any
// fault is simulated.
func TestRunContextDone(t *testing.T) {
	c, T, faults := statsSetup(t)
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, faults, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
