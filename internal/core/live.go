package core

import (
	"sync/atomic"

	"repro/internal/seqsim"
)

// defaultLiveEvery is the publication cadence when Config.LiveEvery is
// zero: each executing worker folds its pending deltas into the shared
// LiveStats after this many faults. The cadence keeps every atomic off
// the per-fault hot path — between publications a worker touches only
// its own plain-field accumulators — while a scrape still sees an
// in-flight run move every few milliseconds on the suite circuits.
const defaultLiveEvery = 32

// LiveStats is a concurrency-safe view of one or more in-flight
// whole-list runs, updated on a coarse per-worker cadence (see
// Config.Live and Config.LiveEvery) and readable at any time with
// Snapshot. Every field is monotonically non-decreasing while runs
// execute, so scraping it as Prometheus counters is sound. After a run
// returns, the final values equal the merged Result/Result.Stages
// counters of all runs published into it (time estimates excepted; see
// Snapshot.ImplyNS).
//
// The zero value is ready to use. Multiple runs may share one LiveStats
// (cmd/mottables publishes the whole suite into one); the counters then
// aggregate across runs.
type LiveStats struct {
	runsStarted atomic.Int64
	runsDone    atomic.Int64

	faultsTotal atomic.Int64
	faultsDone  atomic.Int64
	conv        atomic.Int64
	mot         atomic.Int64
	prunedC     atomic.Int64

	prescreenPasses  atomic.Int64
	prescreenDropped atomic.Int64
	prescreenFrames  atomic.Int64

	motFaults  atomic.Int64
	pairs      atomic.Int64
	expansions atomic.Int64
	sequences  atomic.Int64

	implyCalls    atomic.Int64
	implySampleNS atomic.Int64
	implySamples  atomic.Int64

	resimVectorPasses    atomic.Int64
	resimVectorFrames    atomic.Int64
	resimSerialFallbacks atomic.Int64

	step0NS   atomic.Int64
	collectNS atomic.Int64
	expandNS  atomic.Int64
	resimNS   atomic.Int64
	totalNS   atomic.Int64

	deltaFrames    atomic.Int64
	deltaGateEvals atomic.Int64
	fullFrames     atomic.Int64
	eventFrames    atomic.Int64
	eventGateEvals atomic.Int64
	events         atomic.Int64

	// metrics publishes the current run's shared per-fault histograms
	// (concurrency-safe, observed directly by workers) so a scraper can
	// expose them mid-run. Set by beginRun when Config.Metrics is on.
	metrics atomic.Pointer[RunMetrics]
}

// Metrics returns the per-fault histograms of the most recently started
// run publishing into l, or nil before the first metrics-enabled run.
// The histograms are safe to snapshot while the run keeps observing.
func (l *LiveStats) Metrics() *RunMetrics { return l.metrics.Load() }

// LiveSnapshot is a point-in-time copy of a LiveStats, in plain fields.
// All counter fields are deterministic for a given circuit, sequence,
// configuration and fault list (scheduling-invariant); the *NS fields
// are wall-clock measurements.
type LiveSnapshot struct {
	RunsStarted int64 `json:"runs_started"`
	RunsDone    int64 `json:"runs_done"`

	FaultsTotal      int64 `json:"faults_total"`
	FaultsDone       int64 `json:"faults_done"`
	Conv             int64 `json:"detected_conventional"`
	MOT              int64 `json:"detected_mot"`
	PrunedConditionC int64 `json:"pruned_condition_c"`

	PrescreenPasses  int64 `json:"prescreen_passes"`
	PrescreenDropped int64 `json:"prescreen_dropped"`
	PrescreenFrames  int64 `json:"prescreen_frames"`

	MOTFaults  int64 `json:"mot_faults"`
	Pairs      int64 `json:"pairs"`
	Expansions int64 `json:"expansions"`
	Sequences  int64 `json:"sequences"`

	ImplyCalls int64 `json:"imply_calls"`
	// ImplyNS is estimated from the sampled implication timings exactly
	// like Stages.ImplyTime, but over the global sample pool rather than
	// per worker, so the two estimates may differ slightly.
	ImplyNS int64 `json:"imply_ns"`

	ResimVectorPasses    int64 `json:"resim_vector_passes"`
	ResimVectorFrames    int64 `json:"resim_vector_frames"`
	ResimSerialFallbacks int64 `json:"resim_serial_fallbacks"`

	Step0NS   int64 `json:"step0_ns"`
	CollectNS int64 `json:"collect_ns"`
	ExpandNS  int64 `json:"expand_ns"`
	ResimNS   int64 `json:"resim_ns"`
	TotalNS   int64 `json:"total_ns"`

	DeltaFrames    int64 `json:"delta_frames"`
	DeltaGateEvals int64 `json:"delta_gate_evals"`
	FullFrames     int64 `json:"full_frames"`
	EventFrames    int64 `json:"event_frames"`
	EventGateEvals int64 `json:"event_gate_evals"`
	Events         int64 `json:"events"`
}

// Snapshot copies the current state. Individual fields are read with
// independent atomic loads, so a snapshot taken mid-run may be slightly
// ahead on one counter relative to another; each field on its own never
// goes backward between snapshots.
func (l *LiveStats) Snapshot() LiveSnapshot {
	s := LiveSnapshot{
		RunsStarted:          l.runsStarted.Load(),
		RunsDone:             l.runsDone.Load(),
		FaultsTotal:          l.faultsTotal.Load(),
		FaultsDone:           l.faultsDone.Load(),
		Conv:                 l.conv.Load(),
		MOT:                  l.mot.Load(),
		PrunedConditionC:     l.prunedC.Load(),
		PrescreenPasses:      l.prescreenPasses.Load(),
		PrescreenDropped:     l.prescreenDropped.Load(),
		PrescreenFrames:      l.prescreenFrames.Load(),
		MOTFaults:            l.motFaults.Load(),
		Pairs:                l.pairs.Load(),
		Expansions:           l.expansions.Load(),
		Sequences:            l.sequences.Load(),
		ImplyCalls:           l.implyCalls.Load(),
		ResimVectorPasses:    l.resimVectorPasses.Load(),
		ResimVectorFrames:    l.resimVectorFrames.Load(),
		ResimSerialFallbacks: l.resimSerialFallbacks.Load(),
		Step0NS:              l.step0NS.Load(),
		CollectNS:            l.collectNS.Load(),
		ExpandNS:             l.expandNS.Load(),
		ResimNS:              l.resimNS.Load(),
		TotalNS:              l.totalNS.Load(),
		DeltaFrames:          l.deltaFrames.Load(),
		DeltaGateEvals:       l.deltaGateEvals.Load(),
		FullFrames:           l.fullFrames.Load(),
		EventFrames:          l.eventFrames.Load(),
		EventGateEvals:       l.eventGateEvals.Load(),
		Events:               l.events.Load(),
	}
	if samples := l.implySamples.Load(); samples > 0 {
		s.ImplyNS = l.implySampleNS.Load() * s.ImplyCalls / samples
	}
	return s
}

// Undetected returns the faults classified so far as undetected.
func (s LiveSnapshot) Undetected() int64 { return s.FaultsDone - s.Conv - s.MOT }

// beginLive records a run starting against the shared stats: the run's
// fault-list size and, with metrics on, the run's histogram set.
func (s *Simulator) beginLive(total int) {
	live := s.cfg.Live
	if live == nil {
		return
	}
	live.runsStarted.Add(1)
	live.faultsTotal.Add(int64(total))
	if s.hist != nil {
		live.metrics.Store(s.hist)
	}
}

// publishPrescreen folds the completed prescreen stage into the live
// stats. In RunParallel the prescreen-dropped faults never reach a
// worker, so their classification is published here as well; the serial
// Run loop instead routes dropped faults through its publisher like any
// other outcome (droppedDone false).
func (s *Simulator) publishPrescreen(res *Result, droppedDone bool) {
	live := s.cfg.Live
	if live == nil {
		return
	}
	live.prescreenPasses.Add(int64(res.Stages.PrescreenPasses))
	live.prescreenDropped.Add(int64(res.Stages.PrescreenDropped))
	live.prescreenFrames.Add(res.Stages.PrescreenFrames)
	if droppedDone {
		d := int64(res.Stages.PrescreenDropped)
		live.faultsDone.Add(d)
		live.conv.Add(d)
	}
}

// endLive marks one run's publications complete.
func (l *LiveStats) endLive() {
	if l != nil {
		l.runsDone.Add(1)
	}
}

// livePublisher accumulates one executing goroutine's deltas between
// publications. All fields are plain — the publisher is owned by a
// single worker — and only flush touches the shared atomics, so the
// per-fault cost with live stats enabled is a few plain adds plus one
// branch, and with them disabled a single nil check in the run loop.
type livePublisher struct {
	live  *LiveStats
	every int
	n     int

	done, conv, mot, prunedC     int64
	motFaults                    int64
	pairs, expansions, sequences int64

	// Published baselines for the cumulative per-worker accumulators.
	lastTimes     StageNS
	lastImply     int64
	lastImplyNS   int64
	lastImplySmps int64
	lastResimVP   int64
	lastResimVF   int64
	lastResimSF   int64
	lastSim       seqsim.SimStats
}

// newLivePublisher returns a publisher for this simulator's goroutine,
// or nil when live stats are off.
func (s *Simulator) newLivePublisher() *livePublisher {
	if s.cfg.Live == nil {
		return nil
	}
	every := s.cfg.LiveEvery
	if every <= 0 {
		every = defaultLiveEvery
	}
	return &livePublisher{live: s.cfg.Live, every: every}
}

// observe records one classified fault. entered reports whether the
// fault ran the per-fault MOT pipeline (false for prescreen-dropped
// faults routed through the serial loop).
func (p *livePublisher) observe(s *Simulator, o *FaultOutcome, entered bool) {
	if p == nil {
		return
	}
	p.done++
	switch o.Outcome {
	case DetectedConventional:
		p.conv++
	case DetectedMOT:
		p.mot++
	default:
		if o.FailedConditionC {
			p.prunedC++
		}
	}
	if entered {
		p.motFaults++
	}
	p.pairs += int64(o.Pairs)
	p.expansions += int64(o.Expansions)
	p.sequences += int64(o.Sequences)
	p.n++
	if p.n >= p.every {
		p.flush(s)
	}
}

// flush publishes the pending deltas. Safe to call at any point
// (including with nothing pending); Run and RunParallel call it once
// more after their fault loops so the final snapshot equals the merged
// Result exactly.
func (p *livePublisher) flush(s *Simulator) {
	if p == nil {
		return
	}
	l := p.live
	l.faultsDone.Add(p.done)
	l.conv.Add(p.conv)
	l.mot.Add(p.mot)
	l.prunedC.Add(p.prunedC)
	l.motFaults.Add(p.motFaults)
	l.pairs.Add(p.pairs)
	l.expansions.Add(p.expansions)
	l.sequences.Add(p.sequences)
	p.done, p.conv, p.mot, p.prunedC, p.motFaults = 0, 0, 0, 0, 0
	p.pairs, p.expansions, p.sequences = 0, 0, 0
	p.n = 0
	if st := s.stats; st != nil {
		d := st.times.sub(p.lastTimes)
		p.lastTimes = st.times
		l.step0NS.Add(d.Step0)
		l.collectNS.Add(d.Collect)
		l.expandNS.Add(d.Expand)
		l.resimNS.Add(d.Resim)
		l.totalNS.Add(d.Total)
		l.implyCalls.Add(st.implyCalls - p.lastImply)
		l.implySampleNS.Add(st.implySampleNS - p.lastImplyNS)
		l.implySamples.Add(st.implySamples - p.lastImplySmps)
		p.lastImply, p.lastImplyNS, p.lastImplySmps = st.implyCalls, st.implySampleNS, st.implySamples
		l.resimVectorPasses.Add(st.resimVectorPasses - p.lastResimVP)
		l.resimVectorFrames.Add(st.resimVectorFrames - p.lastResimVF)
		l.resimSerialFallbacks.Add(st.resimSerialFallbacks - p.lastResimSF)
		p.lastResimVP, p.lastResimVF, p.lastResimSF = st.resimVectorPasses, st.resimVectorFrames, st.resimSerialFallbacks

		sim := s.sim.Stats()
		l.deltaFrames.Add(sim.DeltaFrames - p.lastSim.DeltaFrames)
		l.deltaGateEvals.Add(sim.DeltaGateEvals - p.lastSim.DeltaGateEvals)
		l.fullFrames.Add(sim.FullFrames - p.lastSim.FullFrames)
		l.eventFrames.Add(sim.EventFrames - p.lastSim.EventFrames)
		l.eventGateEvals.Add(sim.EventGateEvals - p.lastSim.EventGateEvals)
		l.events.Add(sim.Events - p.lastSim.Events)
		p.lastSim = sim
	}
}
