package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// statsSetup builds the sg208 run inputs shared by the stats tests.
func statsSetup(t *testing.T) (*netlist.Circuit, seqsim.Sequence, []fault.Fault) {
	t.Helper()
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	return c, T, fault.CollapsedList(c)
}

// poolSums reduces PoolStats to its scheduling-invariant view: the
// alloc/reuse split shifts with the worker count (each worker allocates
// its own first frame) but the sums and the per-fault peaks do not.
func poolSums(p PoolStats) [6]int64 {
	return [6]int64{
		p.FrameReuses + p.FrameAllocs,
		p.SeqReuses + p.SeqAllocs,
		p.TraceReuses + p.TraceAllocs,
		p.SVArenaPeak,
		p.SVIdxArenaPeak,
		p.SeqLivePeak,
	}
}

// countSnapshot strips a histogram snapshot down to its deterministic
// part (everything but wall-clock content is scheduling-invariant).
func countSnapshot(h *metrics.Histogram) metrics.Snapshot {
	s := h.Snapshot()
	return s
}

// TestStagesSerialParallelCrossCheck runs the same fault list serially
// and on 8 workers and asserts every scheduling-invariant Stages field
// agrees: the per-fault work counters are deterministic, so their sums
// must not depend on how faults were distributed (and must not be
// double-counted or dropped by the per-worker merge).
func TestStagesSerialParallelCrossCheck(t *testing.T) {
	c, T, faults := statsSetup(t)
	cfg := DefaultConfig()
	run := func(workers int) *Result {
		s, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if workers == 1 {
			res, err = s.Run(faults, nil)
		} else {
			res, err = s.RunParallel(faults, workers, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ser := run(1)
	par := run(8)

	if ser.Stages.MOTFaults != par.Stages.MOTFaults {
		t.Errorf("MOTFaults: serial %d, parallel %d", ser.Stages.MOTFaults, par.Stages.MOTFaults)
	}
	if want := len(faults) - ser.Stages.PrescreenDropped; ser.Stages.MOTFaults != want {
		t.Errorf("MOTFaults = %d, want %d (total - dropped)", ser.Stages.MOTFaults, want)
	}
	if ser.Stages.ImplyCalls != par.Stages.ImplyCalls {
		t.Errorf("ImplyCalls: serial %d, parallel %d", ser.Stages.ImplyCalls, par.Stages.ImplyCalls)
	}
	if ser.Stages.ImplyCalls == 0 {
		t.Error("ImplyCalls = 0; implication instrumentation not reached")
	}
	if poolSums(ser.Stages.Pool) != poolSums(par.Stages.Pool) {
		t.Errorf("pool sums differ:\n  serial:   %+v\n  parallel: %+v", ser.Stages.Pool, par.Stages.Pool)
	}
	if ser.Stages.Sim != par.Stages.Sim {
		t.Errorf("sim stats differ:\n  serial:   %+v\n  parallel: %+v", ser.Stages.Sim, par.Stages.Sim)
	}
	if ser.Stages.Sim.EventFrames == 0 {
		t.Error("EventFrames = 0; step-0 resimulation not counted")
	}
	if ser.Stages.Sim.Events == 0 || ser.Stages.Sim.EventGateEvals == 0 {
		t.Errorf("event counters empty: %+v", ser.Stages.Sim)
	}
	if ser.Stages.PrescreenFrames != par.Stages.PrescreenFrames ||
		ser.Stages.PrescreenSavedFrames != par.Stages.PrescreenSavedFrames {
		t.Errorf("prescreen frames differ: serial %d/%d, parallel %d/%d",
			ser.Stages.PrescreenFrames, ser.Stages.PrescreenSavedFrames,
			par.Stages.PrescreenFrames, par.Stages.PrescreenSavedFrames)
	}
	if ser.Stages.PrescreenFrames == 0 {
		t.Error("PrescreenFrames = 0; prescreen instrumentation not reached")
	}
	if ser.Stages.Step0Time <= 0 || ser.Stages.CollectTime <= 0 {
		t.Errorf("serial stage times not recorded: %+v", ser.Stages)
	}

	// The per-fault histograms observe deterministic values (pairs,
	// expansions, sequences), so their full snapshots agree; only the
	// wall-time histogram is scheduling-dependent beyond its count.
	for _, h := range []struct {
		name     string
		ser, par *metrics.Histogram
	}{
		{"pairs", ser.Metrics.PairsPerFault, par.Metrics.PairsPerFault},
		{"expansions", ser.Metrics.ExpansionsPerFault, par.Metrics.ExpansionsPerFault},
		{"sequences", ser.Metrics.SequencesAtStop, par.Metrics.SequencesAtStop},
	} {
		a, b := countSnapshot(h.ser), countSnapshot(h.par)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if !bytes.Equal(aj, bj) {
			t.Errorf("%s histogram differs:\n  serial:   %s\n  parallel: %s", h.name, aj, bj)
		}
	}
	if sc, pc := ser.Metrics.FaultTimeNS.Count(), par.Metrics.FaultTimeNS.Count(); sc != pc {
		t.Errorf("fault-time histogram count: serial %d, parallel %d", sc, pc)
	}
	if got, want := ser.Metrics.PairsPerFault.Count(), int64(ser.Stages.MOTFaults); got != want {
		t.Errorf("pairs histogram count = %d, want MOTFaults = %d", got, want)
	}
}

// TestStagesMetricsOffCrossCheck asserts that disabling Metrics leaves
// the breakdown empty without changing outcomes.
func TestStagesMetricsOffCrossCheck(t *testing.T) {
	c, T, faults := statsSetup(t)
	on := DefaultConfig()
	off := DefaultConfig()
	off.Metrics = false
	simOn, err := NewSimulator(c, T, on)
	if err != nil {
		t.Fatal(err)
	}
	simOff, err := NewSimulator(c, T, off)
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := simOn.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := simOff.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range resOn.Outcomes {
		if resOn.Outcomes[k] != resOff.Outcomes[k] {
			t.Fatalf("fault %s differs with metrics off:\n  on:  %+v\n  off: %+v",
				faults[k].Name(c), resOn.Outcomes[k], resOff.Outcomes[k])
		}
	}
	if resOff.Metrics != nil {
		t.Error("metrics-off run returned histograms")
	}
	if resOff.Stages.MOTFaults != 0 || resOff.Stages.ImplyCalls != 0 ||
		resOff.Stages.Step0Time != 0 || resOff.Stages.Pool != (PoolStats{}) {
		t.Errorf("metrics-off run recorded a breakdown: %+v", resOff.Stages)
	}
	if resOn.Metrics == nil || resOn.Stages.MOTFaults == 0 {
		t.Errorf("metrics-on run recorded nothing: %+v", resOn.Stages)
	}
}

// traceRun executes one whole-list run capturing the JSONL trace.
func traceRun(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, cfg Config, workers int) (string, *Result) {
	t.Helper()
	var buf bytes.Buffer
	cfg.TraceWriter = &buf
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	if workers == 1 {
		res, err = s.Run(faults, nil)
	} else {
		res, err = s.RunParallel(faults, workers, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// TestTraceWorkersCrossCheck asserts the default trace is byte-identical
// for 1 and 8 workers: events carry only deterministic fields and are
// emitted in fault-list order after the run.
func TestTraceWorkersCrossCheck(t *testing.T) {
	c, T, faults := statsSetup(t)
	tr1, res := traceRun(t, c, T, faults, DefaultConfig(), 1)
	tr8, _ := traceRun(t, c, T, faults, DefaultConfig(), 8)
	if tr1 != tr8 {
		t.Fatalf("trace differs between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", tr1, tr8)
	}
	lines := strings.Split(strings.TrimRight(tr1, "\n"), "\n")
	if len(lines) != len(faults) {
		t.Fatalf("trace has %d lines, want one per fault (%d)", len(lines), len(faults))
	}
	var convs, timings int
	for i, line := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if ev.Fault != faults[i].Name(c) {
			t.Fatalf("line %d names %q, want %q (fault-list order)", i, ev.Fault, faults[i].Name(c))
		}
		if ev.At != nil {
			convs++
		}
		if ev.Timing != nil {
			timings++
		}
	}
	if convs != res.Conv {
		t.Errorf("%d events carry a detection site, want %d (conventional detections)", convs, res.Conv)
	}
	if timings != 0 {
		t.Errorf("%d events carry timings without TraceTimings", timings)
	}
}

// TestTraceReferencePooledCrossCheck asserts the pooled and Reference
// pipelines emit byte-identical traces — the pooling layer must not
// change any traced value.
func TestTraceReferencePooledCrossCheck(t *testing.T) {
	c, T, faults := statsSetup(t)
	pooled, _ := traceRun(t, c, T, faults, DefaultConfig(), 1)
	ref := DefaultConfig()
	ref.Reference = true
	refTr, _ := traceRun(t, c, T, faults, ref, 4)
	if pooled != refTr {
		t.Fatalf("trace differs between pooled and Reference:\n--- pooled ---\n%s\n--- reference ---\n%s", pooled, refTr)
	}
}

// TestTraceTimingsPooled checks the opt-in timing fields: present on
// faults that entered the per-fault pipeline, absent without the flag,
// and rejected without Metrics.
func TestTraceTimingsPooled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceTimings = true
	cfg.Metrics = false
	if err := cfg.Validate(); err == nil {
		t.Error("TraceTimings without Metrics not rejected")
	}
	cfg.Metrics = true

	c, T, faults := statsSetup(t)
	tr, res := traceRun(t, c, T, faults, cfg, 4)
	var withTiming, nonzero int
	for _, line := range strings.Split(strings.TrimRight(tr, "\n"), "\n") {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Timing != nil {
			withTiming++
			if ev.Timing.Total > 0 {
				nonzero++
			}
		}
	}
	if withTiming != len(faults) {
		t.Errorf("%d events carry timings, want all %d", withTiming, len(faults))
	}
	if want := res.Stages.MOTFaults; nonzero != want {
		t.Errorf("%d events have nonzero total time, want %d (MOT-pipeline faults)", nonzero, want)
	}
}
