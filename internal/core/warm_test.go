package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/tgen"
)

// TestWarmStartCrossCheckParallel is the warm-vs-cold equality gate for
// the memoization layer: a simulator warm-started from another
// simulator's compiled IR and fault-free trace must produce
// byte-identical results — same outcomes, same deterministic trace
// stream — under both serial and parallel execution. The name keeps it
// inside the race recipe: the warm good trace is shared read-only by
// every worker of the warm run while the cold run's workers still hold
// it.
func TestWarmStartCrossCheckParallel(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 48, 3)
	faults := fault.CollapsedList(c)

	run := func(w Warm, workers int) (*Result, string) {
		cfg := DefaultConfig()
		var trace bytes.Buffer
		cfg.TraceWriter = &trace
		sim, err := NewSimulatorWarm(c, T, cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunParallel(faults, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, trace.String()
	}

	coldSim, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := Warm{CC: coldSim.CC(), Good: coldSim.Good()}

	coldRes, coldTrace := run(Warm{}, 1)
	for _, workers := range []int{1, 4} {
		warmRes, warmTrace := run(warm, workers)
		if !reflect.DeepEqual(warmRes.Outcomes, coldRes.Outcomes) {
			t.Fatalf("workers=%d: warm outcomes differ from cold", workers)
		}
		if warmTrace != coldTrace {
			t.Fatalf("workers=%d: warm trace differs from cold", workers)
		}
		if warmRes.Conv != coldRes.Conv || warmRes.MOT != coldRes.MOT {
			t.Fatalf("workers=%d: warm tallies %d/%d != cold %d/%d",
				workers, warmRes.Conv, warmRes.MOT, coldRes.Conv, coldRes.MOT)
		}
		// The warm start skipped the compile: the stage timing records a
		// zero compile, unlike the cold run's.
		if warmRes.Stages.CompileTime != 0 {
			t.Fatalf("workers=%d: warm CompileTime = %v, want 0", workers, warmRes.Stages.CompileTime)
		}
	}
}

// TestNewSimulatorWarmValidation exercises the mismatch guards.
func TestNewSimulatorWarmValidation(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 8, 1)
	sim, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	other := circuits.S27() // structurally equal, different pointer
	if _, err := NewSimulatorWarm(other, T, DefaultConfig(), Warm{CC: sim.CC()}); err == nil ||
		!strings.Contains(err.Error(), "different circuit") {
		t.Fatalf("foreign CC accepted: %v", err)
	}

	short := tgen.Random(c.NumInputs(), 4, 1)
	if _, err := NewSimulatorWarm(c, short, DefaultConfig(), Warm{Good: sim.Good()}); err == nil ||
		!strings.Contains(err.Error(), "frames") {
		t.Fatalf("length-mismatched good trace accepted: %v", err)
	}

	noNodes, err := sim.sim.Run(T, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulatorWarm(c, T, DefaultConfig(), Warm{Good: noNodes}); err == nil ||
		!strings.Contains(err.Error(), "node values") {
		t.Fatalf("nodeless good trace accepted: %v", err)
	}
}
