package core

import (
	"fmt"
	"time"

	"repro/internal/bitsim"
	"repro/internal/fault"
	"repro/internal/seqsim"
)

// prescreen runs the batched bit-parallel conventional stage over the
// whole fault list when Config.Prescreen is on, recording the stage
// counters into res. It returns one FaultResult per fault (Detected
// entries carry the conventional detection site, identical to the serial
// simulator's), or nil when the prescreen is disabled or there is
// nothing to screen. Batches are distributed over up to `workers`
// goroutines. With tracing on (sc non-nil) the stage gets a span under
// the run span and every bit-parallel batch a span keyed by its batch
// index.
func (s *Simulator) prescreen(faults []fault.Fault, workers int, res *Result, sc *spanScope) ([]seqsim.FaultResult, error) {
	if !s.cfg.Prescreen || len(faults) == 0 {
		return nil, nil
	}
	start := time.Now()
	preID := sc.beginStage("prescreen")
	pre, st, err := bitsim.RunStatsTraced(s.c, s.T, faults, workers,
		bitsim.Trace{Tracer: s.cfg.Tracer, Parent: preID})
	sc.endStage()
	if err != nil {
		return nil, fmt.Errorf("core: prescreen: %w", err)
	}
	res.Stages.PrescreenPasses = int(st.Batches)
	res.Stages.PrescreenFrames = st.Frames
	res.Stages.PrescreenSavedFrames = st.SavedFrames
	for _, r := range pre {
		if r.Detected {
			res.Stages.PrescreenDropped++
		}
	}
	res.Stages.PrescreenTime = time.Since(start)
	return pre, nil
}
