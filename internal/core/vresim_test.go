package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// crossCheckBPResim runs the fault list with the bit-parallel
// resimulation on and off and asserts every FaultOutcome is
// byte-identical (FaultOutcome has no reference-typed fields, so != is
// an exact field-by-field comparison). The bit-parallel path is
// exercised serially and through RunParallel (per-worker regions and
// lane scratch).
func crossCheckBPResim(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, cfg Config) {
	t.Helper()
	serial := cfg
	serial.BitParallelResim = false
	vector := cfg
	vector.BitParallelResim = true

	simSerial, err := NewSimulator(c, T, serial)
	if err != nil {
		t.Fatal(err)
	}
	simVector, err := NewSimulator(c, T, vector)
	if err != nil {
		t.Fatal(err)
	}
	resSerial, err := simSerial.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resVector, err := simVector.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := simVector.RunParallel(faults, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"serial": resVector, "parallel": resPar} {
		if len(res.Outcomes) != len(resSerial.Outcomes) {
			t.Fatalf("%s: %d bit-parallel outcomes, %d serial", name, len(res.Outcomes), len(resSerial.Outcomes))
		}
		for k := range res.Outcomes {
			if res.Outcomes[k] != resSerial.Outcomes[k] {
				t.Fatalf("%s: fault %s differs from serial resim:\n  bit-parallel: %+v\n  serial:       %+v",
					name, faults[k].Name(c), res.Outcomes[k], resSerial.Outcomes[k])
			}
		}
		if res.Conv != resSerial.Conv || res.MOT != resSerial.MOT || res.Sum != resSerial.Sum ||
			res.Expansions != resSerial.Expansions || res.Pairs != resSerial.Pairs ||
			res.Sequences != resSerial.Sequences || res.Identified != resSerial.Identified ||
			res.PrunedConditionC != resSerial.PrunedConditionC {
			t.Fatalf("%s: aggregates differ from serial resim:\n  bit-parallel: %+v\n  serial:       %+v",
				name, res, resSerial)
		}
	}
}

func TestBPResimCrossCheckS27(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	crossCheckBPResim(t, c, T, fault.CollapsedList(c), DefaultConfig())
}

func TestBPResimCrossCheckSynthetic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *netlist.Circuit
	}{
		{"fig4", circuits.Fig4},
		{"intro", circuits.Intro},
		{"table1", circuits.Table1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			T := tgen.Random(c.NumInputs(), 16, 11)
			crossCheckBPResim(t, c, T, fault.CollapsedList(c), DefaultConfig())
		})
	}
}

// TestBPResimCrossCheckLongList covers the uncollapsed sg208 list: one
// simulator's pooled region, lane scratch and seed sets serve hundreds
// of consecutive faults with widely varying expansion shapes.
func TestBPResimCrossCheckLongList(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	faults := fault.List(c)
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	crossCheckBPResim(t, c, T, faults, DefaultConfig())
}

// TestBPResimCrossCheckVariants sweeps the configuration axes that
// change what reaches resimulation: the [4] baseline (no implication
// pruning, more surviving sequences), deep backward implications, the
// fixpoint schedule, a tight pair cap, a small sequence budget (more
// portfolio retries), the Reference allocation mode (fresh region and
// lane scratch per pass), and the prescreen off (conventionally
// detected faults resimulate too).
func TestBPResimCrossCheckVariants(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	faults := fault.CollapsedList(c)
	variants := map[string]func(*Config){
		"baseline":     func(cfg *Config) { cfg.UseBackwardImplications = false },
		"deep2":        func(cfg *Config) { cfg.BackwardDepth = 2 },
		"deep4":        func(cfg *Config) { cfg.BackwardDepth = 4 },
		"fixpoint":     func(cfg *Config) { cfg.Schedule = Fixpoint },
		"maxpairs4":    func(cfg *Config) { cfg.MaxPairs = 4 },
		"nstates2":     func(cfg *Config) { cfg.NStates = 2 },
		"reference":    func(cfg *Config) { cfg.Reference = true },
		"no-prescreen": func(cfg *Config) { cfg.Prescreen = false },
	}
	for name, tweak := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			tweak(&cfg)
			crossCheckBPResim(t, c, T, faults, cfg)
		})
	}
}

// fuzzResimBench adds a reconvergent output so region frontiers carry
// fault-free values into live gates.
const fuzzResimBench = `
INPUT(a)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
q1 = DFF(d1)
q2 = DFF(d2)
d1 = NOT(q1)
d2 = XOR(q2, a)
o1 = AND(a, q1)
o2 = AND(a, q2)
o3 = OR(q1, q2)
`

// FuzzResimCrossCheck drives hand-built divergent expansion sets
// through both resimulation paths and asserts they agree. The fuzz
// input is decoded as (time unit, state variable, value) triples under
// the expand invariants: assignments are binary, land at time units
// below L, and mark the unit they write.
func FuzzResimCrossCheck(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 0, 1})
	f.Add([]byte{2, 0, 0, 1, 9, 1, 1, 0})
	f.Add([]byte{3, 4, 0, 1, 5, 1, 0, 255, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		c, err := bench.ParseString("fuzzresim", fuzzResimBench)
		if err != nil {
			t.Fatal(err)
		}
		const L = 4
		T := make(seqsim.Sequence, L)
		for u := range T {
			T[u] = seqsim.Pattern{logic.FromBool(u%2 == 0)}
		}
		s, err := NewSimulator(c, T, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, _ := c.NodeByName("a")
		fl := fault.Fault{Node: a, Gate: netlist.NoGate, Stuck: logic.One}
		bad, _, _, err := s.sim.RunFault(T, s.good, fl, true)
		if err != nil {
			t.Fatal(err)
		}
		nFF := c.NumFFs()
		n := 1 + int(data[0])%4
		data = data[1:]
		seqs := make([]*sequence, n)
		for k := range seqs {
			seqs[k] = &sequence{states: cloneStates(bad.States)}
		}
		marks := make([]bool, L+1)
		for i := 0; i+2 < len(data); i += 3 {
			u := int(data[i]) % L
			j := int(data[i+1]) % nFF
			v := logic.FromBool(data[i+2]%2 == 1)
			sq := seqs[(i/3)%n]
			sq.states[u][j] = v
			marks[u] = true
		}
		testResimulate(t, s, &fl, bad, seqs, marks)
	})
}
