package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/xtrace"
)

// exemplarRun executes the whole list with metrics on and tracing as
// given, returning the run histograms.
func exemplarRun(t *testing.T, tracing bool) *RunMetrics {
	t.Helper()
	c, T, faults := statsSetup(t)
	cfg := DefaultConfig()
	cfg.Metrics = true
	if tracing {
		cfg.Tracer = xtrace.New(xtrace.Options{})
		cfg.TraceSampleRate = 1
	}
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("metrics-on run returned no histograms")
	}
	return res.Metrics
}

// TestFaultExemplarsLinkSpans asserts that with full span sampling every
// per-fault histogram carries at least one exemplar whose labels name a
// fault and a span ID, while a run without tracing records none (the
// exemplar path is gated on the live span, keeping the unsampled hot
// path allocation-free).
func TestFaultExemplarsLinkSpans(t *testing.T) {
	m := exemplarRun(t, true)
	for name, h := range map[string]*metrics.Histogram{
		"PairsPerFault":      m.PairsPerFault,
		"ExpansionsPerFault": m.ExpansionsPerFault,
		"SequencesAtStop":    m.SequencesAtStop,
		"FaultTimeNS":        m.FaultTimeNS,
		"ConeGatesPerFault":  m.ConeGatesPerFault,
	} {
		ex := h.Exemplars()
		if ex == nil {
			t.Errorf("%s: no exemplars recorded with TraceSampleRate 1", name)
			continue
		}
		found := false
		for _, e := range ex {
			if e == nil {
				continue
			}
			found = true
			if len(e.Labels) != 2 || e.Labels[0].Key != "fault" || e.Labels[1].Key != "span_id" {
				t.Errorf("%s: exemplar labels = %+v, want fault + span_id", name, e.Labels)
			} else if e.Labels[0].Val == "" || len(e.Labels[1].Val) != 16 {
				t.Errorf("%s: exemplar label values = %+v, want fault name + 16-hex span", name, e.Labels)
			}
		}
		if !found {
			t.Errorf("%s: exemplar slots allocated but all empty", name)
		}
	}

	for name, h := range map[string]*metrics.Histogram{
		"PairsPerFault": exemplarRun(t, false).PairsPerFault,
		"FaultTimeNS":   exemplarRun(t, false).FaultTimeNS,
	} {
		if ex := h.Exemplars(); ex != nil {
			t.Errorf("%s: exemplars recorded without tracing: %+v", name, ex)
		}
	}
}
