package core

import (
	"bufio"
	"encoding/json"

	"repro/internal/seqsim"
)

// SimTrace summarizes the step-0 frame evaluations of one fault for the
// JSONL trace and span attributes: sparse faulty frames evaluated,
// node value changes (events) propagated, and gate evaluations
// performed. The counters are evaluator-invariant — the event-driven
// and level-order paths evaluate the same gate set and change the same
// nodes — so the summary is byte-identical across Config.EventSim
// settings, bit-parallel-resim settings, and worker counts.
type SimTrace struct {
	Frames    int64 `json:"sim_frames,omitempty"`
	Events    int64 `json:"sim_events,omitempty"`
	GateEvals int64 `json:"sim_gate_evals,omitempty"`
}

// simTraceDelta summarizes the sparse-frame work between two readings
// of a simulator's counters, folding the two evaluator modes together
// (exactly one runs per frame, and they do identical work).
func simTraceDelta(before, after seqsim.SimStats) SimTrace {
	return SimTrace{
		Frames:    (after.DeltaFrames + after.EventFrames) - (before.DeltaFrames + before.EventFrames),
		Events:    after.Events - before.Events,
		GateEvals: (after.DeltaGateEvals + after.EventGateEvals) - (before.DeltaGateEvals + before.EventGateEvals),
	}
}

// TraceDetection is a conventional detection site in a trace event.
type TraceDetection struct {
	Time   int `json:"time"`
	Output int `json:"output"`
}

// TraceEvent is one per-fault line of the JSONL trace: the fault, its
// outcome, and the pipeline counters that led there. Every field except
// Timing is fully determined by the circuit, test sequence and
// configuration, so the trace is byte-identical across worker counts and
// across the pooled and Reference implementations. Timing (present only
// with Config.TraceTimings) carries wall-clock stage durations and is
// inherently nondeterministic.
type TraceEvent struct {
	Fault   string          `json:"fault"`
	Outcome string          `json:"outcome"`
	At      *TraceDetection `json:"at,omitempty"`
	Pairs   int             `json:"pairs,omitempty"`
	// Expansions and Sequences describe the expansion that settled the
	// fault (the portfolio retry's when it detected the fault).
	Expansions int `json:"expansions,omitempty"`
	Sequences  int `json:"sequences,omitempty"`
	// CtrDet/CtrConf/CtrExtra are the fault's Table 3 counters.
	CtrDet   int  `json:"ctr_det,omitempty"`
	CtrConf  int  `json:"ctr_conf,omitempty"`
	CtrExtra int  `json:"ctr_extra,omitempty"`
	PrunedC  bool `json:"pruned_condition_c,omitempty"`
	// Identified marks Section 3.2 identifications (detected from the
	// collected implication information alone, no expansion).
	Identified bool `json:"identified,omitempty"`
	// Resim summarizes the fault's resimulation passes (vector passes,
	// lanes packed, serial fallbacks; see ResimTrace). Deterministic for
	// a given configuration; omitted when the fault never resimulated.
	Resim *ResimTrace `json:"resim,omitempty"`
	// Sim summarizes the fault's step-0 frame evaluations (sparse frames,
	// events, gate evaluations; see SimTrace). Deterministic and
	// evaluator-invariant; omitted when step 0 did no sparse work.
	Sim *SimTrace `json:"sim,omitempty"`
	// Timing is the per-fault stage breakdown in nanoseconds; only with
	// Config.TraceTimings, and zero for prescreen-dropped faults (they
	// never enter the per-fault pipeline).
	Timing *StageNS `json:"timing_ns,omitempty"`
}

// traceEvent builds the trace line for one outcome.
func (s *Simulator) traceEvent(o *FaultOutcome, timing *StageNS, resim *ResimTrace, sim *SimTrace) TraceEvent {
	ev := TraceEvent{
		Fault:      o.Fault.Name(s.c),
		Outcome:    o.Outcome.String(),
		Pairs:      o.Pairs,
		Expansions: o.Expansions,
		Sequences:  o.Sequences,
		CtrDet:     o.Counters.Det,
		CtrConf:    o.Counters.Conf,
		CtrExtra:   o.Counters.Extra,
		PrunedC:    o.FailedConditionC,
		Identified: o.ByIdentification,
	}
	if o.Outcome == DetectedConventional {
		ev.At = &TraceDetection{Time: o.At.Time, Output: o.At.Output}
	}
	if resim != nil && *resim != (ResimTrace{}) {
		ev.Resim = resim
	}
	if sim != nil && *sim != (SimTrace{}) {
		ev.Sim = sim
	}
	ev.Timing = timing
	return ev
}

// writeTrace emits one JSONL event per fault to Config.TraceWriter, in
// fault-list order. It runs after the fault loop completes — never from
// worker goroutines — so the output is identical for any worker count.
// traceTimes, traceResims and traceSims are indexed like res.Outcomes
// and may be nil (no timings / no trace at all).
func (s *Simulator) writeTrace(res *Result, traceTimes []StageNS, traceResims []ResimTrace, traceSims []SimTrace) error {
	if s.cfg.TraceWriter == nil {
		return nil
	}
	bw := bufio.NewWriter(s.cfg.TraceWriter)
	for k := range res.Outcomes {
		var timing *StageNS
		if traceTimes != nil {
			timing = &traceTimes[k]
		}
		var resim *ResimTrace
		if traceResims != nil {
			resim = &traceResims[k]
		}
		var sim *SimTrace
		if traceSims != nil {
			sim = &traceSims[k]
		}
		ev := s.traceEvent(&res.Outcomes[k], timing, resim, sim)
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceTimes allocates the per-fault stage-time buffer when the
// configuration asks for timed traces.
func (s *Simulator) traceTimes(n int) []StageNS {
	if s.cfg.TraceWriter == nil || !s.cfg.TraceTimings {
		return nil
	}
	return make([]StageNS, n)
}

// traceResims allocates the per-fault resimulation-summary buffer when
// a trace is requested. Unlike timings the content is deterministic, so
// it rides along on every trace.
func (s *Simulator) traceResims(n int) []ResimTrace {
	if s.cfg.TraceWriter == nil {
		return nil
	}
	return make([]ResimTrace, n)
}

// traceSims allocates the per-fault frame-evaluation-summary buffer
// when a trace is requested. Deterministic and evaluator-invariant, so
// it rides along on every trace.
func (s *Simulator) traceSims(n int) []SimTrace {
	if s.cfg.TraceWriter == nil {
		return nil
	}
	return make([]SimTrace, n)
}
