package core

import (
	"sort"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/seqsim"
)

// simPools is the per-Simulator reusable state that keeps the per-fault
// pipeline allocation-free in steady state. Every pool hangs off one
// Simulator and is touched only by that simulator's (single) goroutine:
// RunParallel gives each worker its own Simulator value, so pools are
// never shared across goroutines. The zero value is ready to use; every
// buffer is grown lazily on first demand.
//
// Lifecycle: the pair-collection arenas (svArena, svIdxArena, pairs) are
// truncated at the start of each fault's collectPairs and stay valid for
// the rest of that fault's pipeline; the implication frames and scratch
// slices are reset at each use; expansion sequences cycle through seqFree
// across faults.
type simPools struct {
	// pairFrame is the shared implication frame for pair collection. It
	// is reset to the frame u-1 base once per time unit and restored by
	// an O(changed) trail undo after each side of each pair.
	pairFrame *implic.Frame
	// deepFrames[d] is the frame reused at chase level d of deepBackward.
	deepFrames []*implic.Frame
	// deepNewly buffers the newly specified present-state variables of
	// the current deepBackward level.
	deepNewly []svAssign
	// extraScratch buffers one side's extra assignments before they are
	// interned into svArena.
	extraScratch []svAssign
	// svStamp/svGen are the epoch-stamped membership set replacing the
	// per-pair map[int]bool: svStamp[j] == svGen means state variable j
	// is in the current pair's sv(u, i). svList collects the members.
	svStamp []int32
	svGen   int32
	svList  []int
	// svArena and svIdxArena are per-fault slabs backing pairInfo.extra
	// and pairInfo.sv.
	svArena    []svAssign
	svIdxArena []int
	// pairs backs the slice returned by collectPairs.
	pairs []pairInfo
	// seqFree recycles expansion sequences (flat value slab plus row
	// headers) across faults.
	seqFree []*sequence
	// expMarks, resimVals and resimMarks are per-call scratch for expand
	// and resimulate.
	expMarks   []bool
	resimVals  []logic.Val
	resimMarks []bool
	// badTrace is the reused faulty-machine trace filled by RunFaultInto.
	// Safe to recycle per fault: SimulateFault consumes it entirely before
	// returning.
	badTrace *seqsim.Trace

	// Bit-parallel resimulation scratch (vresim.go). seedStamp/seedGen/
	// seedFFs are the epoch-stamped set of state variables assigned by
	// the current expand call — the Q-side seeds of the region closure.
	seedStamp []int32
	seedGen   int32
	seedFFs   []int32
	// region is the per-fault evaluation region, refilled per
	// resimulation pass (the seed set differs per expansion).
	region *cir.Region
	// qPos maps an FF index to its position in region.QFFs.
	qPos []int32
	// vvVals, vvFlat/vvState and vvMarks are the vector frame's node
	// values, the packed per-frame lane states ((L+1) rows carved from
	// one slab) and the per-frame marked-lane masks.
	vvVals  []cir.VV4
	vvFlat  []cir.VV4
	vvState [][]cir.VV4
	vvMarks []laneMask
}

// runBad simulates the faulty machine for f, reusing the pooled trace.
// The Reference configuration keeps the allocate-per-fault RunFault path.
func (s *Simulator) runBad(f fault.Fault) (*seqsim.Trace, seqsim.Detection, bool, error) {
	if s.cfg.Reference {
		return s.sim.RunFault(s.T, s.good, f, s.cfg.UseBackwardImplications)
	}
	if s.pools.badTrace == nil {
		s.pools.badTrace = seqsim.NewTrace(s.c, len(s.T), s.cfg.UseBackwardImplications)
		if st := s.stats; st != nil {
			st.pool.TraceAllocs++
		}
	} else if st := s.stats; st != nil {
		st.pool.TraceReuses++
	}
	at, detected, err := s.sim.RunFaultInto(s.pools.badTrace, s.T, s.good, f, s.cfg.UseBackwardImplications)
	return s.pools.badTrace, at, detected, err
}

// resetCollect prepares the pools for a new fault's pair collection,
// releasing the previous fault's pairs and arena contents.
func (s *Simulator) resetCollect() {
	s.pools.pairs = s.pools.pairs[:0]
	s.pools.svArena = s.pools.svArena[:0]
	s.pools.svIdxArena = s.pools.svIdxArena[:0]
}

// pairFrame returns the pooled pair-collection frame reset to the given
// fault and base assignment.
func (s *Simulator) pairFrame(f *fault.Fault, base []logic.Val) *implic.Frame {
	if s.pools.pairFrame == nil {
		s.pools.pairFrame = implic.NewCompiled(s.cc, f, base)
		if st := s.stats; st != nil {
			st.pool.FrameAllocs++
		}
		return s.pools.pairFrame
	}
	s.pools.pairFrame.ResetFault(f, base)
	if st := s.stats; st != nil {
		st.pool.FrameReuses++
	}
	return s.pools.pairFrame
}

// deepFrame returns the pooled frame for chase level d of deepBackward,
// reset to the given fault and base assignment.
func (s *Simulator) deepFrame(d int, f *fault.Fault, base []logic.Val) *implic.Frame {
	for len(s.pools.deepFrames) <= d {
		s.pools.deepFrames = append(s.pools.deepFrames, nil)
	}
	if fr := s.pools.deepFrames[d]; fr != nil {
		fr.ResetFault(f, base)
		if st := s.stats; st != nil {
			st.pool.FrameReuses++
		}
		return fr
	}
	fr := implic.NewCompiled(s.cc, f, base)
	s.pools.deepFrames[d] = fr
	if st := s.stats; st != nil {
		st.pool.FrameAllocs++
	}
	return fr
}

// svReset starts a new membership epoch for the sv(u, i) set.
func (s *Simulator) svReset() {
	if len(s.pools.svStamp) != s.c.NumFFs() {
		s.pools.svStamp = make([]int32, s.c.NumFFs())
		s.pools.svGen = 0
	}
	s.pools.svGen++
	if s.pools.svGen <= 0 { // generation counter wrapped: restamp from 1
		for i := range s.pools.svStamp {
			s.pools.svStamp[i] = 0
		}
		s.pools.svGen = 1
	}
	s.pools.svList = s.pools.svList[:0]
}

// svAdd inserts state variable j into the current epoch's set once.
func (s *Simulator) svAdd(j int) {
	if s.pools.svStamp[j] != s.pools.svGen {
		s.pools.svStamp[j] = s.pools.svGen
		s.pools.svList = append(s.pools.svList, j)
	}
}

// svTake sorts the collected members and interns them into the per-fault
// arena (the expansion path requires a deterministic sv order).
func (s *Simulator) svTake() []int {
	sort.Ints(s.pools.svList)
	start := len(s.pools.svIdxArena)
	s.pools.svIdxArena = append(s.pools.svIdxArena, s.pools.svList...)
	end := len(s.pools.svIdxArena)
	return s.pools.svIdxArena[start:end:end]
}

// internExtra copies one side's extra assignments into the per-fault
// arena. Carved slices stay valid when the slab later grows (append to a
// new array leaves old carvings pointing at live memory) and are capped so
// they can never bleed into a neighbour.
func (s *Simulator) internExtra(list []svAssign) []svAssign {
	if len(list) == 0 {
		return nil
	}
	start := len(s.pools.svArena)
	s.pools.svArena = append(s.pools.svArena, list...)
	end := len(s.pools.svArena)
	return s.pools.svArena[start:end:end]
}

// internExtra1 interns a single assignment without a temporary slice.
func (s *Simulator) internExtra1(a svAssign) []svAssign {
	start := len(s.pools.svArena)
	s.pools.svArena = append(s.pools.svArena, a)
	end := len(s.pools.svArena)
	return s.pools.svArena[start:end:end]
}

// trivialPairPooled is trivialPair with arena-backed slices.
func (s *Simulator) trivialPairPooled(u, i int) pairInfo {
	var p pairInfo
	p.u, p.i = u, i
	p.extra[0] = s.internExtra1(svAssign{j: i, v: logic.Zero})
	p.extra[1] = s.internExtra1(svAssign{j: i, v: logic.One})
	s.svReset()
	s.svAdd(i)
	p.sv = s.svTake()
	return p
}

// newSeq returns a sequence sized for this simulator (L+1 rows of nFF
// values backed by one flat slab), recycling a released one when possible.
// Row contents are unspecified.
func (s *Simulator) newSeq() *sequence {
	rows, nFF := len(s.T)+1, s.c.NumFFs()
	need := rows * nFF
	if n := len(s.pools.seqFree); n > 0 {
		sq := s.pools.seqFree[n-1]
		s.pools.seqFree[n-1] = nil
		s.pools.seqFree = s.pools.seqFree[:n-1]
		if cap(sq.flat) >= need && len(sq.states) == rows {
			sq.flat = sq.flat[:need]
			if st := s.stats; st != nil {
				st.pool.SeqReuses++
			}
			return sq
		}
	}
	if st := s.stats; st != nil {
		st.pool.SeqAllocs++
	}
	sq := &sequence{
		flat:   make([]logic.Val, need),
		states: make([][]logic.Val, rows),
	}
	for u := 0; u < rows; u++ {
		sq.states[u] = sq.flat[u*nFF : (u+1)*nFF : (u+1)*nFF]
	}
	return sq
}

// seqFromStates builds the expansion's base sequence from a state matrix.
func (s *Simulator) seqFromStates(states [][]logic.Val) *sequence {
	if s.cfg.Reference {
		return &sequence{states: cloneStates(states)}
	}
	sq := s.newSeq()
	for u, row := range states {
		copy(sq.states[u], row)
	}
	return sq
}

// cloneSeq duplicates a sequence for a phase-2 expansion.
func (s *Simulator) cloneSeq(src *sequence) *sequence {
	if s.cfg.Reference {
		return &sequence{states: cloneStates(src.states)}
	}
	dst := s.newSeq()
	copy(dst.flat, src.flat)
	return dst
}

// releaseSeqs returns expansion sequences to the pool once resimulation is
// done with them. Only flat-backed (pooled) sequences are recycled.
func (s *Simulator) releaseSeqs(seqs []*sequence) {
	for _, sq := range seqs {
		if sq.flat != nil {
			s.pools.seqFree = append(s.pools.seqFree, sq)
		}
	}
}

// marksScratch returns a zeroed []bool of length L+1 for expand's marked
// time units. The buffer is reused across expand calls within a fault (the
// retry's expansion never reads the first expansion's marks).
func (s *Simulator) marksScratch() []bool {
	n := len(s.T) + 1
	if s.cfg.Reference {
		return make([]bool, n)
	}
	if cap(s.pools.expMarks) < n {
		s.pools.expMarks = make([]bool, n)
		return s.pools.expMarks
	}
	marks := s.pools.expMarks[:n]
	for i := range marks {
		marks[i] = false
	}
	return marks
}

// resimScratch returns the node-value and marks buffers for resimulate.
// Neither needs clearing: EvalFrame writes every node, and resimulate
// copies the base marks over the full marks buffer per sequence.
func (s *Simulator) resimScratch() ([]logic.Val, []bool) {
	nNodes, nMarks := s.c.NumNodes(), len(s.T)+1
	if s.cfg.Reference {
		return make([]logic.Val, nNodes), make([]bool, nMarks)
	}
	if cap(s.pools.resimVals) < nNodes {
		s.pools.resimVals = make([]logic.Val, nNodes)
	}
	if cap(s.pools.resimMarks) < nMarks {
		s.pools.resimMarks = make([]bool, nMarks)
	}
	return s.pools.resimVals[:nNodes], s.pools.resimMarks[:nMarks]
}

// resimMarksScratch returns only the marks buffer, for the sparse
// resimulation path (resimulateSparse): frame values live in the event
// evaluator's overlay, so the dense node-value buffer is never
// allocated there.
func (s *Simulator) resimMarksScratch() []bool {
	nMarks := len(s.T) + 1
	if s.cfg.Reference {
		return make([]bool, nMarks)
	}
	if cap(s.pools.resimMarks) < nMarks {
		s.pools.resimMarks = make([]bool, nMarks)
	}
	return s.pools.resimMarks[:nMarks]
}
