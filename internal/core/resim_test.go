package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// resimCircuit: q1, q2 free-running; o1 = AND(a, q1), o2 = AND(a, q2);
// q1' = NOT(q1), q2' = BUFF(q2). With a=0 the fault-free outputs are 00.
const resimBench = `
INPUT(a)
OUTPUT(o1)
OUTPUT(o2)
q1 = DFF(d1)
q2 = DFF(d2)
d1 = NOT(q1)
d2 = BUFF(q2)
o1 = AND(a, q1)
o2 = AND(a, q2)
`

// resimSetup builds a simulator over the all-zero sequence and returns
// the faulty trace of the stem fault a stuck-at-1 (outputs observe the
// state variables).
func resimSetup(t *testing.T, L int) (*Simulator, fault.Fault, *seqsim.Trace) {
	t.Helper()
	c, err := bench.ParseString("resim", resimBench)
	if err != nil {
		t.Fatal(err)
	}
	T := make(seqsim.Sequence, L)
	for u := range T {
		T[u] = seqsim.Pattern{logic.Zero}
	}
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.NodeByName("a")
	f := fault.Fault{Node: a, Gate: netlist.NoGate, Stuck: logic.One}
	bad, _, detected, err := s.sim.RunFault(T, s.good, f, true)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatal("setup fault should not be conventionally detected")
	}
	return s, f, bad
}

// testResimulate mirrors the expand/resimulate coupling for hand-built
// sequences: it seeds the assigned state variables by diffing each
// sequence against the base trace (as expand records them), then runs
// the bit-parallel pass and the serial path and asserts they agree. The
// vector pass runs first — the serial path refines sequence states in
// place, the vector pass packs a copy.
func testResimulate(t *testing.T, s *Simulator, f *fault.Fault, bad *seqsim.Trace, seqs []*sequence, marks []bool) bool {
	t.Helper()
	s.seedReset()
	for _, sq := range seqs {
		for u := range sq.states {
			for j, v := range sq.states[u] {
				if v != bad.States[u][j] {
					s.seedAdd(j)
				}
			}
		}
	}
	bp := s.resimulateVV(f, bad, seqs, marks)
	s.cfg.BitParallelResim = false
	serial := s.resimulate(f, bad, seqs, marks)
	s.cfg.BitParallelResim = true
	if bp != serial {
		t.Fatalf("bit-parallel resimulate = %v, serial = %v", bp, serial)
	}
	return bp
}

// TestResimulateDetection: pinning q1 = 1 at time 0 must produce o1 = 1,
// conflicting with the fault-free 0 — the sequence resolves by detection.
func TestResimulateDetection(t *testing.T) {
	s, f, bad := resimSetup(t, 3)
	sq := &sequence{states: cloneStates(bad.States)}
	sq.states[0][0] = logic.One
	marks := make([]bool, 4)
	marks[0] = true
	if !testResimulate(t, s, &f, bad, []*sequence{sq}, marks) {
		t.Fatal("detection not found")
	}
}

// TestResimulatePropagatesForward: pinning q1 = 0 at time 0 yields no
// conflict at time 0, but the toggle makes q1 = 1 at time 1, so the
// newly-marked frame 1 detects.
func TestResimulatePropagatesForward(t *testing.T) {
	s, f, bad := resimSetup(t, 3)
	sq := &sequence{states: cloneStates(bad.States)}
	sq.states[0][0] = logic.Zero
	marks := make([]bool, 4)
	marks[0] = true
	if !testResimulate(t, s, &f, bad, []*sequence{sq}, marks) {
		t.Fatal("forward-propagated detection not found")
	}
}

// TestResimulateInfeasible: a state assignment contradicting the next
// state computed from an earlier frame resolves as infeasible.
func TestResimulateInfeasible(t *testing.T) {
	s, f, bad := resimSetup(t, 3)
	sq := &sequence{states: cloneStates(bad.States)}
	// q2 holds its value (d2 = BUFF(q2)); claiming q2 = 0 at time 0 and
	// q2 = 1 at time 1 is infeasible, and the sequence resolves without a
	// detection on o2... but o1 may still detect through q1's toggle. Pin
	// q1 to keep o1 quiet is impossible (toggle always shows), so use a
	// dedicated check on the conflict branch: claim q2 values only and
	// verify resolution.
	sq.states[0][1] = logic.Zero
	sq.states[1][1] = logic.One
	marks := make([]bool, 4)
	marks[0] = true
	// Expansion marks every time unit it writes, so the hand-built
	// assignment at time 1 marks that unit too.
	marks[1] = true
	if !testResimulate(t, s, &f, bad, []*sequence{sq}, marks) {
		t.Fatal("sequence should resolve (infeasible or detected)")
	}
}

// TestResimulateSurvivor: with nothing marked, nothing resolves and the
// fault stays undetected.
func TestResimulateSurvivor(t *testing.T) {
	s, f, bad := resimSetup(t, 3)
	sq := &sequence{states: cloneStates(bad.States)}
	marks := make([]bool, 4)
	if testResimulate(t, s, &f, bad, []*sequence{sq}, marks) {
		t.Fatal("unmarked sequence should not resolve")
	}
}

// TestResimulateAllSequencesRequired: one resolving and one surviving
// sequence must not count as detection.
func TestResimulateAllSequencesRequired(t *testing.T) {
	s, f, bad := resimSetup(t, 3)
	det := &sequence{states: cloneStates(bad.States)}
	det.states[0][0] = logic.One
	surv := &sequence{states: cloneStates(bad.States)}
	marks := make([]bool, 4)
	marks[0] = true
	// The surviving sequence has everything unspecified at its marked
	// frame; simulation specifies nothing that conflicts, so it survives.
	if testResimulate(t, s, &f, bad, []*sequence{det, surv}, marks) {
		t.Fatal("survivor ignored")
	}
}
