package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := BaselineConfig().Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	bad := []Config{
		{NStates: 0, BackwardDepth: 1},
		{NStates: 4, BackwardDepth: 0},
		{NStates: 4, BackwardDepth: 1, Schedule: Fixpoint, FixpointRounds: 0},
		{NStates: 4, BackwardDepth: 1, MaxPairs: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if TwoPass.String() != "two-pass" || Fixpoint.String() != "fixpoint" {
		t.Error("schedule strings wrong")
	}
	if Undetected.String() != "undetected" || !DetectedMOT.Detected() || Undetected.Detected() {
		t.Error("outcome semantics wrong")
	}
	if Schedule(9).String() == "" || Outcome(9).String() == "" {
		t.Error("fallback strings empty")
	}
}

// introSetup builds the introduction example: circuit, its target branch
// fault, an all-zero test sequence, and the simulator.
func introSetup(t *testing.T, cfg Config, seqLen int) (*Simulator, fault.Fault) {
	t.Helper()
	c := circuits.Intro()
	node, gate := circuits.IntroFault(c)
	f := fault.Fault{Node: node, Gate: gate, Pin: 0, Stuck: logic.One}
	T := make(seqsim.Sequence, seqLen)
	for u := range T {
		T[u] = seqsim.Pattern{logic.Zero}
	}
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, f
}

func TestIntroDetectedMOTNotConventional(t *testing.T) {
	s, f := introSetup(t, DefaultConfig(), 3)
	o, err := s.SimulateFault(f)
	if err != nil {
		t.Fatal(err)
	}
	if o.Outcome != DetectedMOT {
		t.Fatalf("intro fault outcome = %v, want DetectedMOT", o.Outcome)
	}
}

func TestIntroDetectedByBaselineToo(t *testing.T) {
	s, f := introSetup(t, BaselineConfig(), 3)
	o, err := s.SimulateFault(f)
	if err != nil {
		t.Fatal(err)
	}
	if o.Outcome != DetectedMOT {
		t.Fatalf("baseline outcome = %v, want DetectedMOT (pure expansion suffices here)", o.Outcome)
	}
	if o.Counters.Det != 0 || o.Counters.Conf != 0 {
		t.Error("baseline must not report implication detections/conflicts")
	}
}

// TestBackwardBeatsBaselineUnderTightBudget reproduces the paper's core
// claim in miniature: with NStates = 1 (no sequence duplication allowed),
// the proposed procedure still detects the intro fault through phase 1
// (a detection on one next-state value forces the other), while the
// baseline cannot expand at all.
func TestBackwardBeatsBaselineUnderTightBudget(t *testing.T) {
	cfgP := DefaultConfig()
	cfgP.NStates = 1
	s, f := introSetup(t, cfgP, 3)
	o, err := s.SimulateFault(f)
	if err != nil {
		t.Fatal(err)
	}
	if o.Outcome != DetectedMOT {
		t.Fatalf("proposed with NStates=1: %v, want DetectedMOT", o.Outcome)
	}
	if o.Expansions != 0 {
		t.Errorf("proposed should need no duplicating expansions, got %d", o.Expansions)
	}
	if o.Counters.Det == 0 {
		t.Error("detection counter should be incremented")
	}

	cfgB := BaselineConfig()
	cfgB.NStates = 1
	sb, fb := introSetup(t, cfgB, 3)
	ob, err := sb.SimulateFault(fb)
	if err != nil {
		t.Fatal(err)
	}
	if ob.Outcome != Undetected {
		t.Fatalf("baseline with NStates=1: %v, want Undetected", ob.Outcome)
	}
}

// TestFig4ConflictDrivesPhase1 checks that the Figure 4 conflict is
// exploited: the pair's 1-side conflicts, so phase 1 forces the 0 value
// without duplicating sequences.
func TestFig4ConflictDrivesPhase1(t *testing.T) {
	c := circuits.Fig4()
	T := seqsim.Sequence{{logic.Zero}, {logic.Zero}}
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Use a fault that keeps the circuit undetected conventionally but
	// passes condition C; the interesting part is the collected pair.
	l9, _ := c.NodeByName("L9")
	f := fault.Fault{Node: l9, Gate: netlist.NoGate, Stuck: logic.One}
	bad, _, detected, err := s.sim.RunFault(T, s.good, f, true)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Skip("fault conventionally detected; pair analysis not reachable")
	}
	nsvArr, noutArr := s.profile(bad)
	_ = nsvArr
	pairs := s.collectPairs(&f, bad, noutArr)
	// Find the pair for the single state variable at u=1.
	found := false
	for _, p := range pairs {
		if p.u == 1 && p.i == 0 {
			found = true
			if !p.conf[1] {
				t.Error("asserting next-state 1 should conflict (Figure 4)")
			}
			if p.conf[0] || p.detect[0] {
				t.Error("0 side should be clean")
			}
		}
	}
	if !found {
		t.Log("no (1,0) pair collected; pairs:", len(pairs))
	}
}

// enumerateMOTDetectable brute-force checks restricted-MOT detectability:
// for every binary initial state of the faulty machine, the (fully
// binary) faulty output sequence must conflict with the fault-free
// response at some position where the fault-free value is specified.
func enumerateMOTDetectable(c *netlist.Circuit, T seqsim.Sequence, good *seqsim.Trace, f fault.Fault) bool {
	nFF := c.NumFFs()
	vals := make([]logic.Val, c.NumNodes())
	for m := 0; m < 1<<nFF; m++ {
		st := make([]logic.Val, nFF)
		for i := range st {
			st[i] = logic.FromBool(m&(1<<i) != 0)
			// A stem fault on the Q node pins the effective value.
			st[i] = f.Observed(c.FFs[i].Q, st[i])
		}
		conflict := false
		for u := range T {
			seqsim.EvalFrame(c, T[u], st, &f, vals)
			for j, id := range c.Outputs {
				g := good.Outputs[u][j]
				if g.IsBinary() && vals[id].IsBinary() && vals[id] != g {
					conflict = true
				}
			}
			next := make([]logic.Val, nFF)
			for i, ff := range c.FFs {
				next[i] = f.Observed(ff.Q, vals[ff.D])
			}
			st = next
		}
		if !conflict {
			return false
		}
	}
	return true
}

// randomCircuit builds a small random sequential circuit for property
// tests (at most 6 FFs so initial states can be enumerated).
func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 2 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

func randomSequence(rng *rand.Rand, width, length int) seqsim.Sequence {
	T := make(seqsim.Sequence, length)
	for u := range T {
		p := make(seqsim.Pattern, width)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	return T
}

// TestMOTSoundnessByEnumeration is the central soundness property test:
// every fault the MOT procedure declares detected must be detectable for
// every binary initial state of the faulty machine (brute-force check).
// Both the proposed procedure and the baseline are checked, plus the
// fixpoint and deep-backward extensions.
func TestMOTSoundnessByEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	configs := map[string]Config{
		"proposed": DefaultConfig(),
		"baseline": BaselineConfig(),
	}
	fx := DefaultConfig()
	fx.Schedule = Fixpoint
	configs["fixpoint"] = fx
	deep := DefaultConfig()
	deep.BackwardDepth = 3
	configs["deep"] = deep

	trials := 0
	for trials < 25 {
		nFF := 3 + rng.Intn(3) // 3..5
		nGates := nFF + 6 + rng.Intn(12)
		c, err := randomCircuit(rng, 2, nFF, nGates)
		if err != nil {
			continue
		}
		trials++
		T := randomSequence(rng, c.NumInputs(), 5)
		faults := fault.CollapsedList(c)
		for name, cfg := range configs {
			s, err := NewSimulator(c, T, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range faults {
				o, err := s.SimulateFault(f)
				if err != nil {
					t.Fatal(err)
				}
				if o.Outcome == DetectedMOT {
					if !enumerateMOTDetectable(c, T, s.Good(), f) {
						t.Fatalf("config %s: fault %s declared MOT-detected but some initial state never conflicts",
							name, f.Name(c))
					}
				}
				if o.Outcome == DetectedConventional {
					// Conventional detections are sound by construction of
					// three-valued simulation; spot-check via enumeration.
					if !enumerateMOTDetectable(c, T, s.Good(), f) {
						t.Fatalf("config %s: fault %s conventional detection unsound", name, f.Name(c))
					}
				}
			}
		}
	}
}

// TestProposedCoversBaseline checks the paper's observation that every
// fault detected by the [4] procedure is also detected by the proposed
// procedure, on random small circuits.
func TestProposedCoversBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	trials := 0
	for trials < 20 {
		nFF := 3 + rng.Intn(3)
		c, err := randomCircuit(rng, 2, nFF, nFF+8+rng.Intn(10))
		if err != nil {
			continue
		}
		trials++
		T := randomSequence(rng, c.NumInputs(), 6)
		faults := fault.CollapsedList(c)
		sp, err := NewSimulator(c, T, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSimulator(c, T, BaselineConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			op, err := sp.SimulateFault(f)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := sb.SimulateFault(f)
			if err != nil {
				t.Fatal(err)
			}
			if ob.Outcome.Detected() && !op.Outcome.Detected() {
				t.Fatalf("fault %s detected by baseline but not by proposed", f.Name(c))
			}
		}
	}
}

func TestRunAggregates(t *testing.T) {
	c := circuits.Intro()
	T := seqsim.Sequence{{logic.Zero}, {logic.Zero}, {logic.One}}
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	calls := 0
	res, err := s.Run(faults, func(done, total int) {
		calls++
		if total != len(faults) {
			t.Error("wrong total in progress callback")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(faults) {
		t.Errorf("progress called %d times, want %d", calls, len(faults))
	}
	if res.Total != len(faults) || res.Detected() != res.Conv+res.MOT {
		t.Error("result totals inconsistent")
	}
	if res.MOT < 1 {
		t.Errorf("expected at least one MOT-detected fault, got %d", res.MOT)
	}
	det, conf, extra := res.AvgCounters()
	if det < 0 || conf < 0 || extra <= 0 {
		t.Errorf("counter averages implausible: %v %v %v", det, conf, extra)
	}
}

func TestAvgCountersNoMOT(t *testing.T) {
	r := &Result{}
	if d, c, e := r.AvgCounters(); d != 0 || c != 0 || e != 0 {
		t.Error("averages over zero MOT faults should be zero")
	}
}

func TestConditionCPrunes(t *testing.T) {
	// A circuit whose single FF initializes immediately: q' = AND(a, 0).
	c, err := bench.ParseString("sync", `
INPUT(a)
OUTPUT(o)
q = DFF(d)
z = CONST0()
d = AND(a, z)
o = OR(q, a)
`)
	if err != nil {
		t.Fatal(err)
	}
	T := seqsim.Sequence{{logic.One}, {logic.One}}
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// o stuck-at-1 is undetected (a=1 keeps o=1 anyway) and has no
	// unspecified faulty outputs, so condition C must prune it.
	o, _ := c.NodeByName("o")
	f := fault.Fault{Node: o, Gate: netlist.NoGate, Stuck: logic.One}
	res, err := s.SimulateFault(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Undetected || !res.FailedConditionC {
		t.Fatalf("outcome=%v failedC=%v, want undetected and pruned", res.Outcome, res.FailedConditionC)
	}
}

func TestMaxPairsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPairs = 1
	s, f := introSetup(t, cfg, 4)
	o, err := s.SimulateFault(f)
	if err != nil {
		t.Fatal(err)
	}
	if o.Pairs > 1 {
		t.Errorf("pairs collected = %d, want <= 1", o.Pairs)
	}
}

func TestS27RunOrdering(t *testing.T) {
	c := circuits.S27()
	rng := rand.New(rand.NewSource(27))
	T := randomSequence(rng, 4, 20)
	faults := fault.CollapsedList(c)

	conv := 0
	sp, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resP, err := sp.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSimulator(c, T, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sb.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	conv = resP.Conv
	if resB.Conv != conv {
		t.Errorf("conventional counts differ: %d vs %d", resP.Conv, resB.Conv)
	}
	if resP.Detected() < resB.Detected() {
		t.Errorf("proposed detected %d < baseline %d", resP.Detected(), resB.Detected())
	}
	// MOT soundness on the real circuit.
	for i, o := range resP.Outcomes {
		if o.Outcome == DetectedMOT {
			if !enumerateMOTDetectable(c, T, sp.Good(), faults[i]) {
				t.Fatalf("s27 fault %s MOT detection unsound", faults[i].Name(c))
			}
		}
	}
}
