package core

import (
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/seqsim"
)

// TestCollectOneMatchesFigure3 pins the collection step (Section 3.1) to
// the paper's Figure 3 values on the real s27. The circuit is s27 plus a
// dead cone carrying an undetectable branch fault, so the faulty trace
// equals the fault-free trace on every original signal. Collecting the
// pair (u=1, y=G6) must find, per the figure:
//
//   - G6 = 0 side: next-state variables G10 = 1 and (the asserted) G11 = 0
//     become specified at time 0;
//   - G6 = 1 side: G10 = 0, G11 = 1 and G13 = 0 become specified;
//   - no conflicts and no detections on either side.
func TestCollectOneMatchesFigure3(t *testing.T) {
	src := circuits.S27Bench + `
dead = AND(G5, G6)
deadbuf = BUFF(dead)
OUTPUT(deadbuf)
`
	c, err := bench.ParseString("s27x", src)
	if err != nil {
		t.Fatal(err)
	}
	// One pattern: the Figure 1 walkthrough pattern.
	pat, err := logic.ParseVals(circuits.S27Figure1Pattern)
	if err != nil {
		t.Fatal(err)
	}
	T := seqsim.Sequence{seqsim.Pattern(pat), seqsim.Pattern(pat)}
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dead, _ := c.NodeByName("dead")
	g5, _ := c.NodeByName("G5")
	f := fault.Fault{Node: g5, Gate: c.Nodes[dead].Driver, Pin: 0, Stuck: logic.One}
	bad, _, detected, err := s.sim.RunFault(T, s.good, f, true)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatal("dead-cone fault should be undetectable")
	}

	// FF order in the parse: G5 (0), G6 (1), G7 (2).
	p := s.collectOne(&f, bad, 1, 1)
	if p.conf[0] || p.conf[1] || p.detect[0] || p.detect[1] {
		t.Fatalf("unexpected conflicts/detections: %+v", p)
	}
	want0 := map[int]logic.Val{0: logic.One, 1: logic.Zero}
	want1 := map[int]logic.Val{0: logic.Zero, 1: logic.One, 2: logic.Zero}
	checkExtra(t, "alpha=0", p.extra[0], want0)
	checkExtra(t, "alpha=1", p.extra[1], want1)

	sv := append([]int(nil), p.sv...)
	sort.Ints(sv)
	if len(sv) != 3 || sv[0] != 0 || sv[1] != 1 || sv[2] != 2 {
		t.Fatalf("sv(u,i) = %v, want [0 1 2]", sv)
	}
}

func checkExtra(t *testing.T, label string, got []svAssign, want map[int]logic.Val) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: extra = %v, want %v", label, got, want)
	}
	for _, a := range got {
		if v, ok := want[a.j]; !ok || v != a.v {
			t.Fatalf("%s: unexpected extra (%d,%v); want %v", label, a.j, a.v, want)
		}
	}
}
