package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/xtrace"
)

// FaultOutcome is the result of simulating one fault.
type FaultOutcome struct {
	Fault   fault.Fault
	Outcome Outcome
	// At is the conventional detection site when Outcome is
	// DetectedConventional.
	At seqsim.Detection
	// Counters holds the Table 3 effectiveness counters (zero unless the
	// expansion procedure ran).
	Counters Counters
	// Expansions is the number of sequence-duplicating (phase 2)
	// expansions performed.
	Expansions int
	// Sequences is the number of state sequences when expansion stopped.
	Sequences int
	// Pairs is the number of candidate (time unit, state variable) pairs
	// whose backward implications were collected.
	Pairs int
	// FailedConditionC reports that the fault was pruned by the necessary
	// condition (C) before any expansion work.
	FailedConditionC bool
	// ByIdentification reports that the fault was identified as detected
	// directly from the collected implication information (Section 3.2),
	// without expansion and resimulation.
	ByIdentification bool
}

// Simulator runs MOT fault simulation for one circuit and test sequence.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c *netlist.Circuit
	// cc is the compiled circuit IR every engine in the pipeline runs on.
	// It is compiled once per circuit (NewSimulator times the compile)
	// and shared read-only by all RunParallel workers.
	cc      *cir.CC
	compile time.Duration
	cfg     Config
	T       seqsim.Sequence
	good    *seqsim.Trace
	sim     *seqsim.Simulator
	// pools holds this simulator's reusable frames, arenas and scratch
	// buffers (see pool.go). RunParallel workers each get a fresh
	// Simulator value, so pools are never shared between goroutines.
	pools simPools
	// stats accumulates this simulator's stage times and pool counters
	// (see stats.go); nil when Config.Metrics is off. Owned by this
	// simulator's goroutine — plain fields, no atomics.
	stats *runStats
	// hist is the run's shared per-fault histogram set (concurrency-safe;
	// RunParallel workers all point at the parent's). Nil when metrics
	// are off.
	hist *RunMetrics
	// lastStages is the stage-time breakdown of the most recent
	// SimulateFault call, consumed by the trace emitter.
	lastStages StageNS
	// lastResim summarizes the resimulation passes of the most recent
	// SimulateFault call (vector passes, lanes packed, serial
	// fallbacks), consumed by the trace emitter. Deterministic, unlike
	// lastStages.
	lastResim ResimTrace
	// lastEvents summarizes the step-0 frame-evaluation work of the most
	// recent SimulateFault call (frames, events, gate evaluations),
	// consumed by the trace emitter and span attributes. The counters are
	// evaluator-invariant: the event-driven and level-order paths visit
	// the same gates and change the same nodes, so the summary is
	// byte-identical across Config.EventSim settings and worker counts.
	lastEvents SimTrace
	// tbuf/span carry the open span of the fault currently in
	// SimulateFault (see span.go); span is 0 — and the sub-span hooks
	// cost one comparison — when the fault is unsampled or tracing is
	// off.
	tbuf *xtrace.Buffer
	span xtrace.SpanID
}

// NewSimulator builds a simulator, running fault-free simulation of the
// test sequence once up front.
func NewSimulator(c *netlist.Circuit, T seqsim.Sequence, cfg Config) (*Simulator, error) {
	return NewSimulatorWarm(c, T, cfg, Warm{})
}

// Warm carries precomputed artifacts NewSimulatorWarm may reuse instead
// of rebuilding them — the cross-run memoization hook the service layer
// fills from its content-addressed cache. Both fields are optional;
// the zero Warm is a fully cold start.
type Warm struct {
	// CC is the compiled IR of the circuit (must have been compiled
	// from the same *netlist.Circuit passed to NewSimulatorWarm).
	CC *cir.CC
	// Good is the fault-free trace of the test sequence on the circuit,
	// with node values retained — exactly what Good() of a previous
	// simulator over the same (circuit, sequence) returns. The trace is
	// read-only to the simulator, so one trace may warm any number of
	// concurrent simulators.
	Good *seqsim.Trace
}

// NewSimulatorWarm is NewSimulator with warm-start reuse: a provided
// compiled IR skips the compile (and the process compile-cache lookup),
// and a provided fault-free trace skips the step-0 good-machine
// simulation entirely. Outcomes are byte-identical to a cold start;
// only Result.Stages.CompileTime and construction latency change.
func NewSimulatorWarm(c *netlist.Circuit, T seqsim.Sequence, cfg Config, w Warm) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cc := w.CC
	var compile time.Duration
	switch {
	case cc == nil:
		compileStart := time.Now()
		cc = cir.For(c)
		compile = time.Since(compileStart)
	case cc.Net != c:
		return nil, fmt.Errorf("core: warm CC was compiled from a different circuit")
	}
	sim := seqsim.NewCompiled(cc)
	sim.SetEventSim(cfg.EventSim)
	good := w.Good
	switch {
	case good == nil:
		var err error
		if good, err = sim.Run(T, nil, true); err != nil {
			return nil, err
		}
	case good.Len() != len(T):
		return nil, fmt.Errorf("core: warm good trace covers %d frames, sequence has %d", good.Len(), len(T))
	case len(T) > 0 && good.Nodes == nil:
		return nil, fmt.Errorf("core: warm good trace has no node values (need keepNodes)")
	}
	s := &Simulator{c: c, cc: cc, compile: compile, cfg: cfg, T: T, good: good, sim: sim}
	if cfg.Metrics {
		s.stats = &runStats{}
	}
	return s, nil
}

// Good returns the fault-free trace. It is read-only to the simulator
// and safe to reuse as Warm.Good for later runs of the same circuit
// and sequence.
func (s *Simulator) Good() *seqsim.Trace { return s.good }

// CC returns the compiled circuit IR the simulator runs on, safe to
// reuse as Warm.CC for later runs of the same circuit.
func (s *Simulator) CC() *cir.CC { return s.cc }

// Config returns the active configuration.
func (s *Simulator) Config() Config { return s.cfg }

// svAssign is one implied state-variable value: flip-flop j takes value v.
type svAssign struct {
	j int
	v logic.Val
}

// pairInfo is the information collected for one candidate pair (u, i):
// expanding present-state variable y_i at time unit u (Section 3.1).
type pairInfo struct {
	u, i   int
	conf   [2]bool
	detect [2]bool
	// extra[a] lists the state variables at time u that become specified
	// when y_i is set to a — including (i, a) itself. Only meaningful
	// when neither conf[a] nor detect[a] holds.
	extra [2][]svAssign
	// sv is the union of state-variable indices appearing in extra[0] and
	// extra[1] — the paper's sv(u, i) used by the expansion constraint.
	sv []int
}

// sideInfo classifies side a of a pair.
func (p *pairInfo) resolved(a int) bool { return p.conf[a] || p.detect[a] }

// counters computes the Table 3 counter increments for selecting p.
func (p *pairInfo) counters() Counters {
	var c Counters
	anyResolved := false
	for a := 0; a < 2; a++ {
		switch {
		case p.detect[a]:
			c.Det++
			c.Extra += len(p.extra[1-a])
			anyResolved = true
		case p.conf[a]:
			c.Conf++
			c.Extra += len(p.extra[1-a])
			anyResolved = true
		}
	}
	if !anyResolved {
		c.Extra += len(p.extra[0]) + len(p.extra[1])
	}
	return c
}

// profile computes N_sv(u) for u in [0, L] and N_out(u) for u in [0, L-1]
// over the faulty trace: N_sv counts unspecified faulty state variables at
// time u; N_out counts pairs (u' >= u, o) where output o is specified in
// the fault-free circuit and unspecified in the faulty circuit.
func (s *Simulator) profile(bad *seqsim.Trace) (nsv, nout []int) {
	L := len(s.T)
	nsv = make([]int, L+1)
	for u := 0; u <= L; u++ {
		nsv[u] = logic.CountX(bad.States[u])
	}
	nout = make([]int, L)
	suffix := 0
	for u := L - 1; u >= 0; u-- {
		g, b := s.good.Outputs[u], bad.Outputs[u]
		for j := range g {
			if g[j].IsBinary() && b[j] == logic.X {
				suffix++
			}
		}
		nout[u] = suffix
	}
	return nsv, nout
}

// conditionC checks the necessary condition (C): some time unit
// 0 <= u < L has N_sv(u) > 0 and N_out(u) > 0.
func conditionC(nsv, nout []int) bool {
	for u := range nout {
		if nsv[u] > 0 && nout[u] > 0 {
			return true
		}
	}
	return false
}

// SimulateFault runs the full per-fault pipeline. With Config.Metrics
// it additionally accumulates the per-stage breakdown and per-fault
// histograms (see Stages and RunMetrics); outcomes are identical either
// way.
func (s *Simulator) SimulateFault(f fault.Fault) (FaultOutcome, error) {
	st := s.stats
	if st == nil {
		return s.simulateFault(f)
	}
	st.motFaults++
	before := *st
	start := time.Now()
	out, err := s.simulateFault(f)
	total := int64(time.Since(start))
	st.times.Total += total
	d := st.times.sub(before.times)
	d.Total = total
	if samples := st.implySamples - before.implySamples; samples > 0 {
		d.Imply = (st.implySampleNS - before.implySampleNS) *
			(st.implyCalls - before.implyCalls) / samples
	}
	s.lastStages = d
	if err == nil && s.hist != nil {
		cone := int64(s.sim.ConeSize())
		s.hist.observeFault(&out, total, cone)
		if s.span != 0 {
			// The fault is span-sampled: link its bucket in each histogram
			// back to the fault and the span via OpenMetrics exemplars.
			s.hist.exemplarFault(&out, total, cone, f.Name(s.c), fmt.Sprintf("%016x", uint64(s.span)))
		}
	}
	return out, err
}

// simulateFault is the pipeline body; stage boundaries tick the stats
// accumulator (a nil accumulator costs only the branch).
func (s *Simulator) simulateFault(f fault.Fault) (FaultOutcome, error) {
	out := FaultOutcome{Fault: f}
	s.lastResim = ResimTrace{}
	st := s.stats
	var last time.Time
	if st != nil {
		last = time.Now()
	}

	// Step 0: conventional fault simulation with fault dropping.
	simBefore := s.sim.Stats()
	bad, at, detected, err := s.runBad(f)
	s.lastEvents = simTraceDelta(simBefore, s.sim.Stats())
	if err != nil {
		return out, err
	}
	if detected {
		st.tick(&last, stageStep0)
		out.Outcome = DetectedConventional
		out.At = at
		return out, nil
	}

	// Necessary condition (C).
	nsv, nout := s.profile(bad)
	if !conditionC(nsv, nout) {
		st.tick(&last, stageStep0)
		out.FailedConditionC = true
		return out, nil
	}
	st.tick(&last, stageStep0)

	// Section 3.1: collect backward-implication information per pair.
	pairs := s.collectPairs(&f, bad, nout)
	out.Pairs = len(pairs)

	// Section 3.2: identify faults detected directly from the collected
	// information.
	if s.cfg.UseBackwardImplications {
		for k := range pairs {
			p := &pairs[k]
			if (p.detect[0] && p.resolved(1)) || (p.detect[1] && p.resolved(0)) {
				st.tick(&last, stageCollect)
				out.Outcome = DetectedMOT
				out.ByIdentification = true
				out.Counters.add(p.counters())
				out.Sequences = 1
				return out, nil
			}
		}
	}
	st.tick(&last, stageCollect)
	if s.cfg.IdentificationOnly {
		// Low-complexity mode (after [6]): no expansion, no resimulation.
		return out, nil
	}

	// Section 3.3: state expansion (Procedure 2).
	ph := s.beginPhase("expand", 0)
	seqs, marks := s.expand(pairs, bad, nsv, nout, &out)
	s.endPhase(ph)
	st.tick(&last, stageExpand)

	// Section 3.4: resimulation after expansion.
	out.Sequences = len(seqs)
	ph = s.beginPhase("resim", 0)
	detected = s.resimulate(&f, bad, seqs, marks)
	s.endPhase(ph)
	s.releaseSeqs(seqs)
	st.tick(&last, stageResim)
	if detected {
		out.Outcome = DetectedMOT
		return out, nil
	}

	// Portfolio retry: the paper observes that every fault detected by
	// the [4] procedure is also detected by the proposed procedure. The
	// selection heuristics do not guarantee this per fault (phase 1
	// forcing and the larger sv(u, i) sets steer phase 2 down a different
	// expansion path), so when the proposed expansion fails we retry with
	// the baseline's trivial expansion under the same budget, making the
	// domination structural.
	if s.cfg.UseBackwardImplications {
		var retry FaultOutcome
		ph = s.beginPhase("expand", 1)
		seqs, marks = s.expand(s.trivialPairs(bad, nout), bad, nsv, nout, &retry)
		s.endPhase(ph)
		st.tick(&last, stageExpand)
		ph = s.beginPhase("resim", 1)
		detected = s.resimulate(&f, bad, seqs, marks)
		s.endPhase(ph)
		nseq := len(seqs)
		s.releaseSeqs(seqs)
		st.tick(&last, stageResim)
		if detected {
			out.Outcome = DetectedMOT
			out.Expansions += retry.Expansions
			out.Counters.add(retry.Counters)
			out.Sequences = nseq
		}
	}
	return out, nil
}

// collectPairs gathers pairInfo for every candidate (u, i): time units
// 0 < u < L with a state variable y_i unspecified at u and usefully
// unspecified outputs at u-1 or later, plus the trivial u = 0 entries
// (no backward implication possible there).
//
// With backward implications disabled (the [4] baseline), every pair is
// trivial: expansion specifies exactly the selected variable.
//
// The returned slice and the slices inside each pairInfo are backed by
// per-simulator arenas truncated at the next collectPairs call; they stay
// valid for the remainder of this fault's pipeline only. Config.Reference
// selects the retained allocate-per-pair implementation instead.
func (s *Simulator) collectPairs(f *fault.Fault, bad *seqsim.Trace, nout []int) []pairInfo {
	if s.cfg.Reference {
		return s.collectPairsRef(f, bad, nout)
	}
	L := len(s.T)
	nFF := s.c.NumFFs()
	s.resetCollect()
	pairs := s.pools.pairs
	capReached := func() bool {
		return s.cfg.MaxPairs > 0 && len(pairs) >= s.cfg.MaxPairs
	}

	// u = 0: expansion of the initial state. conf = detect = 0 and
	// extra(0, i, a) = {(i, a)} by definition (Section 3.1).
	if nout[0] > 0 {
		for i := 0; i < nFF; i++ {
			if bad.States[0][i] != logic.X || capReached() {
				continue
			}
			pairs = append(pairs, s.trivialPairPooled(0, i))
		}
	}
	for u := 1; u < L; u++ {
		if nout[u-1] == 0 || capReached() {
			break // nout is non-increasing: later units are useless too
		}
		// One pooled frame per time unit: it is built from bad.Nodes[u-1]
		// once and restored by a trail undo after each side of each pair.
		var fr *implic.Frame
		for i := 0; i < nFF; i++ {
			if bad.States[u][i] != logic.X || capReached() {
				continue
			}
			if !s.cfg.UseBackwardImplications {
				pairs = append(pairs, s.trivialPairPooled(u, i))
				continue
			}
			if fr == nil {
				fr = s.pairFrame(f, bad.Nodes[u-1])
			}
			pairs = append(pairs, s.collectOneInto(fr, f, bad, u, i))
		}
	}
	s.pools.pairs = pairs
	if st := s.stats; st != nil {
		st.pool.SVArenaPeak = max64(st.pool.SVArenaPeak, int64(len(s.pools.svArena)))
		st.pool.SVIdxArenaPeak = max64(st.pool.SVIdxArenaPeak, int64(len(s.pools.svIdxArena)))
	}
	return pairs
}

// trivialPairs enumerates trivial (single-variable) pairs for every
// candidate (u, i), as the [4] baseline does; used as the phase 2
// fallback when every collected pair is blocked by the expandability
// constraint.
func (s *Simulator) trivialPairs(bad *seqsim.Trace, nout []int) []pairInfo {
	var out []pairInfo
	for u := 0; u < len(s.T); u++ {
		if nout[u] == 0 {
			break // non-increasing
		}
		for i := 0; i < s.c.NumFFs(); i++ {
			if bad.States[u][i] != logic.X {
				continue
			}
			if s.cfg.MaxPairs > 0 && len(out) >= s.cfg.MaxPairs {
				return out
			}
			out = append(out, trivialPair(u, i))
		}
	}
	return out
}

// trivialPair is the pair used at u = 0 and throughout the [4] baseline.
func trivialPair(u, i int) pairInfo {
	return pairInfo{
		u: u, i: i,
		extra: [2][]svAssign{
			{{j: i, v: logic.Zero}},
			{{j: i, v: logic.One}},
		},
		sv: []int{i},
	}
}

// collectOne performs backward implication of y_i at time u for both
// values, recording the first applicable result: conflict, detection, or
// the extra specified state variables (Section 3.1).
func (s *Simulator) collectOne(f *fault.Fault, bad *seqsim.Trace, u, i int) pairInfo {
	if s.cfg.Reference {
		return s.collectOneRef(f, bad, u, i)
	}
	fr := s.pairFrame(f, bad.Nodes[u-1])
	return s.collectOneInto(fr, f, bad, u, i)
}

// collectOneInto is collectOne on a caller-provided frame already reset to
// bad.Nodes[u-1]: each side assigns y_i = alpha, implies, inspects, and
// restores the frame with an O(changed) trail undo, so the same frame
// serves every pair at time u without re-copying the base assignment.
func (s *Simulator) collectOneInto(fr *implic.Frame, f *fault.Fault, bad *seqsim.Trace, u, i int) pairInfo {
	p := pairInfo{u: u, i: i}
	s.svReset()
	s.svAdd(i)
	for a := 0; a < 2; a++ {
		alpha := logic.Val(a)
		mark := fr.Mark()
		ok := fr.AssignNextState(i, alpha) && s.imply(fr)
		if !ok {
			p.conf[a] = true
			fr.UndoTo(mark)
			continue
		}
		if s.frameDetects(fr, u-1) {
			p.detect[a] = true
			fr.UndoTo(mark)
			continue
		}
		// Deeper backward implication (extension; BackwardDepth > 1):
		// chase newly specified present-state variables into earlier
		// frames, looking for conflicts and detections only.
		if s.cfg.BackwardDepth > 1 {
			switch s.deepBackward(f, bad, fr, u-1, s.cfg.BackwardDepth-1) {
			case deepConflict:
				p.conf[a] = true
				fr.UndoTo(mark)
				continue
			case deepDetect:
				p.detect[a] = true
				fr.UndoTo(mark)
				continue
			}
		}
		// Record newly specified state variables at time u.
		extra := s.pools.extraScratch[:0]
		for j := 0; j < s.c.NumFFs(); j++ {
			if bad.States[u][j] != logic.X {
				continue
			}
			if v := fr.NextState(j); v.IsBinary() {
				extra = append(extra, svAssign{j: j, v: v})
				s.svAdd(j)
			}
		}
		s.pools.extraScratch = extra
		p.extra[a] = s.internExtra(extra)
		fr.UndoTo(mark)
	}
	p.sv = s.svTake()
	return p
}

// imply runs the configured implication schedule. With metrics on,
// calls are counted and one in 2^implySampleShift is timed; ImplyTime
// is estimated from that sample so the two clock reads stay off most
// of these very hot calls.
func (s *Simulator) imply(fr *implic.Frame) bool {
	st := s.stats
	if st == nil {
		if s.cfg.Schedule == Fixpoint {
			return fr.ImplyFixpoint(s.cfg.FixpointRounds)
		}
		return fr.ImplyTwoPass()
	}
	st.implyCalls++
	if st.implyCalls&(1<<implySampleShift-1) != 0 {
		if s.cfg.Schedule == Fixpoint {
			return fr.ImplyFixpoint(s.cfg.FixpointRounds)
		}
		return fr.ImplyTwoPass()
	}
	start := time.Now()
	var ok bool
	if s.cfg.Schedule == Fixpoint {
		ok = fr.ImplyFixpoint(s.cfg.FixpointRounds)
	} else {
		ok = fr.ImplyTwoPass()
	}
	st.implySampleNS += int64(time.Since(start))
	st.implySamples++
	return ok
}

// frameDetects reports whether the frame's outputs contradict the
// fault-free outputs at time unit u.
func (s *Simulator) frameDetects(fr *implic.Frame, u int) bool {
	g := s.good.Outputs[u]
	for j := range g {
		if v := fr.Output(j); v.IsBinary() && g[j].IsBinary() && v != g[j] {
			return true
		}
	}
	return false
}

// deepBackward outcome codes.
type deepResult uint8

const (
	deepNothing deepResult = iota
	deepConflict
	deepDetect
)

// deepBackward chases present-state variables newly specified at frame u
// into frame u-1, asserting the corresponding next-state variables there
// and running implications, for up to depth further time units. Frames
// come from a per-simulator pool indexed by chase level; the newly buffer
// is safe to reuse across levels because each level consumes it fully
// before the next level truncates it.
func (s *Simulator) deepBackward(f *fault.Fault, bad *seqsim.Trace, fr *implic.Frame, u, depth int) deepResult {
	if s.cfg.Reference {
		return s.deepBackwardRef(f, bad, fr, u, depth)
	}
	for level := 0; depth > 0 && u > 0; level++ {
		newly := s.pools.deepNewly[:0]
		for j := 0; j < s.c.NumFFs(); j++ {
			if bad.States[u][j] != logic.X {
				continue
			}
			if v := fr.PresentState(j); v.IsBinary() {
				newly = append(newly, svAssign{j: j, v: v})
			}
		}
		s.pools.deepNewly = newly
		if len(newly) == 0 {
			return deepNothing
		}
		prev := s.deepFrame(level, f, bad.Nodes[u-1])
		for _, a := range newly {
			if !prev.AssignNextState(a.j, a.v) {
				return deepConflict
			}
		}
		if !s.imply(prev) {
			return deepConflict
		}
		if s.frameDetects(prev, u-1) {
			return deepDetect
		}
		fr = prev
		u--
		depth--
	}
	return deepNothing
}

// sequence is one expanded state sequence: states[u][j] is the value of
// state variable j at time u, u in [0, L].
//
// Pooled sequences (see Simulator.newSeq) additionally carry the flat
// value slab the rows are carved from, so a clone is a single copy and a
// released sequence can be recycled. Sequences built directly from a
// states matrix (tests, the Reference path) leave flat nil and behave
// identically.
type sequence struct {
	states [][]logic.Val
	flat   []logic.Val
}

// cloneStates deep-copies a state matrix.
func cloneStates(src [][]logic.Val) [][]logic.Val {
	dst := make([][]logic.Val, len(src))
	for u := range src {
		row := make([]logic.Val, len(src[u]))
		copy(row, src[u])
		dst[u] = row
	}
	return dst
}

// expand implements Procedure 2: phase 1 applies every single-sided pair
// (one value conflicted or detected) by forcing the surviving value's
// implications into the base sequence; phase 2 repeatedly selects the
// best remaining pair by the four criteria and duplicates every sequence
// until the N_STATES budget is reached. It returns the sequences and the
// set of marked time units for resimulation.
func (s *Simulator) expand(pairs []pairInfo, bad *seqsim.Trace, nsv, nout []int, out *FaultOutcome) ([]*sequence, []bool) {
	marks := s.marksScratch()
	// Track which state variables this expansion assigns: they seed the
	// bit-parallel resimulation's region closure and bound its lane-diff
	// packing scan (vresim.go).
	s.seedReset()
	s0 := s.seqFromStates(bad.States)
	seqs := []*sequence{s0}

	// Phase 1 (Procedure 2, step 2).
	for k := range pairs {
		p := &pairs[k]
		var survivor int
		switch {
		case p.resolved(0) && p.resolved(1):
			// Both sides resolved: handled by identification (Section
			// 3.2) when a detection is present; two conflicts cannot
			// both arise from a consistent base. Nothing to force.
			continue
		case p.resolved(0):
			survivor = 1
		case p.resolved(1):
			survivor = 0
		default:
			continue
		}
		out.Counters.add(p.counters())
		for _, a := range p.extra[survivor] {
			if s0.states[p.u][a.j] == logic.X {
				s0.states[p.u][a.j] = a.v
			}
			s.seedAdd(a.j)
		}
		marks[p.u] = true
	}

	// Phase 2 (Procedure 2, steps 3-10). When backward implications are
	// enabled and the collected pairs are exhausted (their sv(u, i) sets
	// grow with the implied extras, so the step 3 constraint can starve
	// the budget), expansion falls back to trivial single-variable pairs,
	// exactly as the [4] baseline expands. This engineering completion
	// preserves the paper's observation that every fault detected by [4]
	// is also detected by the proposed procedure.
	var fallback []pairInfo
	for len(seqs) < s.cfg.NStates {
		best := s.selectPair(pairs, seqs, nsv, nout)
		if best < 0 && s.cfg.UseBackwardImplications {
			if fallback == nil {
				fallback = s.trivialPairs(bad, nout)
			}
			pairs = fallback
			best = s.selectPair(pairs, seqs, nsv, nout)
		}
		if best < 0 {
			break
		}
		p := &pairs[best]
		out.Counters.add(p.counters())
		out.Expansions++
		for _, j := range p.sv {
			s.seedAdd(j)
		}
		marks[p.u] = true
		grown := make([]*sequence, 0, 2*len(seqs))
		for _, sq := range seqs {
			dup := s.cloneSeq(sq)
			for _, a := range p.extra[0] {
				sq.states[p.u][a.j] = a.v
			}
			for _, a := range p.extra[1] {
				dup.states[p.u][a.j] = a.v
			}
			grown = append(grown, sq, dup)
		}
		seqs = grown
	}
	if st := s.stats; st != nil {
		st.pool.SeqLivePeak = max64(st.pool.SeqLivePeak, int64(len(seqs)))
	}
	return seqs, marks
}

// selectPair returns the index of the best expandable pair under the
// paper's constraint and criteria, or -1 when none qualifies.
//
// Constraint: every state variable in sv(u, i) is unspecified at time u in
// every sequence. Criteria, in order: (1) maximum N_out(u); (2) minimum
// N_sv(u); (3) maximum over pairs of min(|extra 0|, |extra 1|); (4)
// maximum of max(|extra 0|, |extra 1|). Remaining ties break toward the
// smallest (u, i) for determinism.
func (s *Simulator) selectPair(pairs []pairInfo, seqs []*sequence, nsv, nout []int) int {
	best := -1
	var bNout, bNsv, bMin, bMax int
	for k := range pairs {
		p := &pairs[k]
		if p.resolved(0) || p.resolved(1) {
			continue // applied in phase 1
		}
		if nout[p.u] == 0 || nsv[p.u] == 0 {
			continue
		}
		if !expandable(p, seqs) {
			continue
		}
		e0, e1 := len(p.extra[0]), len(p.extra[1])
		pMin, pMax := e0, e1
		if pMin > pMax {
			pMin, pMax = pMax, pMin
		}
		if best < 0 {
			best, bNout, bNsv, bMin, bMax = k, nout[p.u], nsv[p.u], pMin, pMax
			continue
		}
		switch {
		case nout[p.u] != bNout:
			if nout[p.u] > bNout {
				best, bNout, bNsv, bMin, bMax = k, nout[p.u], nsv[p.u], pMin, pMax
			}
		case nsv[p.u] != bNsv:
			if nsv[p.u] < bNsv {
				best, bNout, bNsv, bMin, bMax = k, nout[p.u], nsv[p.u], pMin, pMax
			}
		case pMin != bMin:
			if pMin > bMin {
				best, bNout, bNsv, bMin, bMax = k, nout[p.u], nsv[p.u], pMin, pMax
			}
		case pMax != bMax:
			if pMax > bMax {
				best, bNout, bNsv, bMin, bMax = k, nout[p.u], nsv[p.u], pMin, pMax
			}
		}
	}
	return best
}

// expandable checks the Procedure 2 step 3 constraint for pair p.
func expandable(p *pairInfo, seqs []*sequence) bool {
	for _, sq := range seqs {
		row := sq.states[p.u]
		for _, j := range p.sv {
			if row[j] != logic.X {
				return false
			}
		}
	}
	return true
}

// resimulate implements Section 3.4: every sequence is resimulated at its
// marked time units (propagating newly specified state variables forward)
// until it is resolved by a detection or an infeasibility conflict, or
// until no marked units remain. The fault is detected when every sequence
// resolves.
//
// With Config.BitParallelResim every sequence rides one lane of a
// 256-lane word and the whole set resimulates in one region-confined
// vector pass (resimulateVV), byte-identical to the serial path below;
// sequence sets beyond the lane capacity fall back to the serial path.
// bad is the faulty-machine trace the sequences expanded from, and seqs
// must come from the immediately preceding expand call (its assigned
// state variables seed the vector pass's region).
func (s *Simulator) resimulate(f *fault.Fault, bad *seqsim.Trace, seqs []*sequence, baseMarks []bool) bool {
	if s.cfg.BitParallelResim {
		if len(seqs) <= cir.Lanes4 {
			return s.resimulateVV(f, bad, seqs, baseMarks)
		}
		if st := s.stats; st != nil {
			st.resimSerialFallbacks++
		}
		s.lastResim.SerialFallbacks++
	}
	if s.cfg.EventSim && bad.Nodes != nil {
		return s.resimulateSparse(f, bad, seqs, baseMarks)
	}
	c := s.c
	L := len(s.T)
	// Pooled scratch: EvalFrame writes every node and the base marks are
	// copied over the full buffer per sequence, so neither needs clearing.
	vals, marks := s.resimScratch()
	for _, sq := range seqs {
		copy(marks, baseMarks)
		resolved := false
		for u := 0; u < L && !resolved; u++ {
			if !marks[u] {
				continue
			}
			s.sim.EvalFrame(s.T[u], sq.states[u], f, vals)
			// Output conflict with the fault-free response: detection.
			g := s.good.Outputs[u]
			for j, id := range c.Outputs {
				v := vals[id]
				if v.IsBinary() && g[j].IsBinary() && v != g[j] {
					resolved = true
					break
				}
			}
			if resolved {
				break
			}
			// Compare the computed next state with the sequence's state at
			// u+1: a conflict means the sequence is infeasible; new values
			// refine it and mark u+1.
			next := sq.states[u+1]
			for j, ff := range c.FFs {
				v := f.Observed(ff.Q, vals[ff.D])
				if !v.IsBinary() {
					continue
				}
				switch next[j] {
				case logic.X:
					next[j] = v
					marks[u+1] = true
				case v:
					// consistent
				default:
					resolved = true // infeasible state sequence
				}
				if resolved {
					break
				}
			}
		}
		if !resolved {
			return false
		}
	}
	return true
}

// resimulateSparse is resimulate's serial loop on the event-driven
// sparse evaluator: each marked frame is evaluated as an
// EvalFrameSparse overlay over the retained step-0 faulty-trace row
// instead of a dense EvalFrame, so per-frame work scales with the
// expansion's divergence from the base trace rather than with circuit
// size. Outcomes are byte-identical to the dense loop (asserted by the
// event-sim cross-check tests). Caller guarantees bad retains node
// values.
func (s *Simulator) resimulateSparse(f *fault.Fault, bad *seqsim.Trace, seqs []*sequence, baseMarks []bool) bool {
	c := s.c
	L := len(s.T)
	marks := s.resimMarksScratch()
	for _, sq := range seqs {
		copy(marks, baseMarks)
		resolved := false
		for u := 0; u < L && !resolved; u++ {
			if !marks[u] {
				continue
			}
			fr := s.sim.EvalFrameSparse(sq.states[u], bad.Nodes[u], f)
			g := s.good.Outputs[u]
			for j, id := range c.Outputs {
				v := fr.Read(id)
				if v.IsBinary() && g[j].IsBinary() && v != g[j] {
					resolved = true
					break
				}
			}
			if resolved {
				break
			}
			next := sq.states[u+1]
			for j, ff := range c.FFs {
				v := f.Observed(ff.Q, fr.Read(ff.D))
				if !v.IsBinary() {
					continue
				}
				switch next[j] {
				case logic.X:
					next[j] = v
					marks[u+1] = true
				case v:
					// consistent
				default:
					resolved = true // infeasible state sequence
				}
				if resolved {
					break
				}
			}
		}
		if !resolved {
			return false
		}
	}
	return true
}

// Result aggregates a whole-fault-list run.
type Result struct {
	Circuit  string
	Total    int
	Conv     int
	MOT      int
	Outcomes []FaultOutcome
	// Sums of the Table 3 counters over MOT-detected faults.
	Sum Counters
	// PrunedConditionC counts undetected faults rejected by the necessary
	// condition (C) before any expansion work.
	PrunedConditionC int
	// Identified counts MOT detections established directly from the
	// collected implication information (Section 3.2), without expansion.
	Identified int
	// Expansions is the total number of sequence-duplicating expansions
	// across all faults.
	Expansions int
	// Pairs is the total number of candidate (time unit, state variable)
	// pairs collected across all faults.
	Pairs int
	// Sequences is the total number of state sequences at the point each
	// fault's expansion stopped, summed over all faults.
	Sequences int
	// Stages instruments the whole-list pipeline stages.
	Stages Stages
	// Metrics holds the run's per-fault histograms (pairs, expansions,
	// sequences at stop, per-fault wall time); nil when Config.Metrics
	// is off.
	Metrics *RunMetrics
	// Live is the shared live-snapshot sink this run published into
	// (Config.Live); nil when live stats were off. After the run
	// returns, its snapshot's scheduling-invariant counters equal the
	// merged Result/Stages values of every run published into it.
	Live *LiveStats
}

// Stages holds per-stage counters and wall-clock timings of a
// whole-fault-list run (Run or RunParallel). PrescreenTime and MOTTime
// are wall-clock; the per-fault breakdown below them is summed across
// RunParallel workers and is therefore CPU time (it can exceed MOTTime
// when workers > 1).
type Stages struct {
	// PrescreenPasses is the number of bit-parallel batches simulated by
	// the conventional prescreen (zero when Config.Prescreen is off).
	PrescreenPasses int
	// PrescreenDropped is the number of faults classified as
	// DetectedConventional directly from the prescreen lane results and
	// therefore never handed to the per-fault MOT pipeline.
	PrescreenDropped int
	// PrescreenFrames is the number of time frames the bit-parallel
	// prescreen actually simulated; PrescreenSavedFrames counts frames
	// skipped by its all-lanes-resolved early exit.
	PrescreenFrames      int64
	PrescreenSavedFrames int64
	// PrescreenTime is the wall-clock duration of the prescreen stage.
	PrescreenTime time.Duration
	// CompileTime is the wall-clock duration of the circuit IR compile
	// (cir.Compile) performed by NewSimulator. The compile is cached
	// process-wide per circuit, so repeat runs on the same circuit report
	// only the cache lookup.
	CompileTime time.Duration
	// MOTTime is the wall-clock duration of the per-fault stage (the
	// serial step 0 for survivors plus the MOT analysis proper).
	MOTTime time.Duration

	// The fields below are populated only with Config.Metrics.

	// Step0Time covers the serial conventional resimulation of prescreen
	// survivors plus the condition (C) profile; CollectTime the pair
	// collection of Section 3.1 including its implication runs;
	// ExpandTime Procedure 2; ResimTime the Section 3.4 resimulation
	// (both including the portfolio retry).
	Step0Time   time.Duration
	CollectTime time.Duration
	// ImplyTime estimates the implication share of CollectTime from a
	// timed 1-in-2^implySampleShift sample of implication calls; it is a
	// subset of CollectTime, not an additional stage.
	ImplyTime  time.Duration
	ExpandTime time.Duration
	ResimTime  time.Duration
	// ImplyCalls counts in-frame implication runs (both sides of every
	// collected pair plus deep-backward chasing).
	ImplyCalls int64
	// ResimVectorPasses counts bit-parallel resimulation passes — one per
	// expansion resimulated under Config.BitParallelResim, portfolio
	// retries included. ResimVectorFrames counts the time frames those
	// passes evaluated (frames with no active lane are skipped and not
	// counted). ResimSerialFallbacks counts expansions whose sequence
	// set exceeded the 256-lane word and ran the serial path instead.
	ResimVectorPasses    int64
	ResimVectorFrames    int64
	ResimSerialFallbacks int64
	// MOTFaults counts the faults that entered the per-fault pipeline
	// (everything the prescreen did not drop).
	MOTFaults int
	// Pool instruments the PR 2 pooling layer (reuse hits, slab
	// recycles, arena high-water marks).
	Pool PoolStats
	// Sim counts the serial simulator's work during step 0 (frames by
	// evaluation mode, delta-propagation gate evaluations).
	Sim seqsim.SimStats
}

// Detected returns the total number of detected faults.
func (r *Result) Detected() int { return r.Conv + r.MOT }

// AvgCounters returns the Table 3 averages over the faults detected by
// the MOT procedure beyond conventional simulation.
func (r *Result) AvgCounters() (det, conf, extra float64) {
	if r.MOT == 0 {
		return 0, 0, 0
	}
	n := float64(r.MOT)
	return float64(r.Sum.Det) / n, float64(r.Sum.Conf) / n, float64(r.Sum.Extra) / n
}

// Run simulates every fault in the list. The optional progress callback
// is invoked after each fault. With Config.Prescreen the whole list is
// first classified by batched bit-parallel conventional simulation and
// only the surviving faults run the per-fault pipeline; outcomes are
// identical either way.
func (s *Simulator) Run(faults []fault.Fault, progress func(done, total int)) (*Result, error) {
	return s.RunContext(context.Background(), faults, progress)
}

// RunContext is Run with cancellation: the fault loop checks ctx before
// each fault and returns ctx.Err() once it is done or canceled. The
// prescreen stage runs to completion before the first check (its
// bit-parallel batches are short relative to the per-fault pipeline).
func (s *Simulator) RunContext(ctx context.Context, faults []fault.Fault, progress func(done, total int)) (*Result, error) {
	res := &Result{Circuit: s.c.Name, Total: len(faults)}
	res.Stages.CompileTime = s.compile
	res.Live = s.cfg.Live
	res.Outcomes = make([]FaultOutcome, 0, len(faults))
	s.beginRun(res)
	s.beginLive(len(faults))
	defer s.cfg.Live.endLive()
	sc := s.beginRunSpans(len(faults))
	pre, err := s.prescreen(faults, 1, res, sc)
	if err != nil {
		return nil, err
	}
	s.publishPrescreen(res, false)
	live := s.newLivePublisher()
	traceTimes := s.traceTimes(len(faults))
	traceResims := s.traceResims(len(faults))
	traceSims := s.traceSims(len(faults))
	motStart := time.Now()
	sc.beginStage("mot")
	ws := sc.worker(-1)
	for k, f := range faults {
		if err := ctx.Err(); err != nil {
			live.flush(s)
			return nil, err
		}
		var o FaultOutcome
		entered := false
		if pre != nil && pre[k].Detected {
			o = FaultOutcome{Fault: f, Outcome: DetectedConventional, At: pre[k].At}
		} else {
			entered = true
			ws.begin(s, k, f)
			if o, err = s.SimulateFault(f); err != nil {
				return nil, fmt.Errorf("core: fault %s: %w", f.Name(s.c), err)
			}
			ws.end(s, &o)
			if traceTimes != nil {
				traceTimes[k] = s.lastStages
			}
			if traceResims != nil {
				traceResims[k] = s.lastResim
			}
			if traceSims != nil {
				traceSims[k] = s.lastEvents
			}
		}
		live.observe(s, &o, entered)
		res.tally(o)
		if progress != nil {
			progress(k+1, len(faults))
		}
	}
	live.flush(s)
	ws.close()
	sc.endStage()
	s.sim.FlushFrameHists()
	res.Stages.MOTTime = time.Since(motStart)
	res.Stages.mergeStats(s.stats)
	if s.cfg.Metrics {
		res.Stages.Sim.Merge(s.sim.Stats())
	}
	sc.finish(res)
	if err := s.writeTrace(res, traceTimes, traceResims, traceSims); err != nil {
		return nil, fmt.Errorf("core: trace: %w", err)
	}
	return res, nil
}

// tally folds one outcome into the aggregate.
func (r *Result) tally(o FaultOutcome) {
	switch o.Outcome {
	case DetectedConventional:
		r.Conv++
	case DetectedMOT:
		r.MOT++
		r.Sum.add(o.Counters)
		if o.ByIdentification {
			r.Identified++
		}
	default:
		if o.FailedConditionC {
			r.PrunedConditionC++
		}
	}
	r.Expansions += o.Expansions
	r.Pairs += o.Pairs
	r.Sequences += o.Sequences
	r.Outcomes = append(r.Outcomes, o)
}

// RunParallel simulates the fault list on `workers` goroutines. Each
// worker clones the simulator (sharing the immutable circuit, test
// sequence and fault-free trace); results are identical to Run and are
// returned in fault-list order. With Config.Prescreen the bit-parallel
// conventional stage runs first (its batches spread over the same
// worker count) and only surviving faults are handed to the pool.
func (s *Simulator) RunParallel(faults []fault.Fault, workers int, progress func(done, total int)) (*Result, error) {
	return s.RunParallelContext(context.Background(), faults, workers, progress)
}

// RunParallelContext is RunParallel with cancellation: workers stop
// claiming faults once ctx is done and the run returns ctx.Err(). The
// prescreen stage runs to completion before the first check.
func (s *Simulator) RunParallelContext(ctx context.Context, faults []fault.Fault, workers int, progress func(done, total int)) (*Result, error) {
	if workers < 2 || len(faults) < 2 {
		return s.RunContext(ctx, faults, progress)
	}
	res := &Result{Circuit: s.c.Name, Total: len(faults)}
	res.Stages.CompileTime = s.compile
	res.Live = s.cfg.Live
	res.Outcomes = make([]FaultOutcome, 0, len(faults))
	s.beginRun(res)
	s.beginLive(len(faults))
	defer s.cfg.Live.endLive()
	sc := s.beginRunSpans(len(faults))
	pre, err := s.prescreen(faults, workers, res, sc)
	if err != nil {
		return nil, err
	}
	s.publishPrescreen(res, true)
	traceTimes := s.traceTimes(len(faults))
	traceResims := s.traceResims(len(faults))
	traceSims := s.traceSims(len(faults))
	motStart := time.Now()
	sc.beginStage("mot")
	outcomes := make([]FaultOutcome, len(faults))
	// todo lists the fault indices that survived the prescreen and need
	// the per-fault pipeline.
	var todo []int
	for k := range faults {
		if pre != nil && pre[k].Detected {
			outcomes[k] = FaultOutcome{Fault: faults[k], Outcome: DetectedConventional, At: pre[k].At}
			continue
		}
		todo = append(todo, k)
	}
	dropped := len(faults) - len(todo)
	if progress != nil {
		for d := 1; d <= dropped; d++ {
			progress(d, len(faults))
		}
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	nw := max(workers, 1)
	errs := make([]error, nw)
	// Workers are built up front so their per-worker instrumentation can
	// be merged into the run totals after the pool drains. Each worker
	// gets its own runStats (plain fields, single goroutine) and shares
	// the parent's concurrency-safe histograms.
	workerSims := make([]*Simulator, nw)
	for w := range workerSims {
		worker := &Simulator{
			c: s.c, cc: s.cc, compile: s.compile, cfg: s.cfg, T: s.T, good: s.good,
			sim:  seqsim.NewCompiled(s.cc),
			hist: s.hist,
		}
		worker.sim.SetEventSim(s.cfg.EventSim)
		if s.hist != nil {
			worker.sim.SetFrameHists(s.hist.EventsPerFrame, s.hist.GatesVisitedPerFrame)
		}
		if s.cfg.Metrics {
			worker.stats = &runStats{}
		}
		workerSims[w] = worker
	}
	var (
		nextIdx int64 = -1
		failed  atomic.Bool
		mu      sync.Mutex
		count   = dropped
		wg      sync.WaitGroup
	)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := workerSims[w]
			live := worker.newLivePublisher()
			defer live.flush(worker)
			defer worker.sim.FlushFrameHists()
			ws := sc.worker(w)
			defer ws.close()
			for {
				t := int(atomic.AddInt64(&nextIdx, 1))
				if t >= len(todo) || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					failed.Store(true)
					atomic.StoreInt64(&nextIdx, int64(len(todo)))
					return
				}
				k := todo[t]
				ws.begin(worker, k, faults[k])
				o, err := worker.SimulateFault(faults[k])
				ws.end(worker, &o)
				if err != nil {
					errs[w] = fmt.Errorf("core: fault %s: %w", faults[k].Name(s.c), err)
					// Drain the pool promptly: flag the failure and push the
					// shared index past the end so no worker claims further
					// faults from the list.
					failed.Store(true)
					atomic.StoreInt64(&nextIdx, int64(len(todo)))
					return
				}
				live.observe(worker, &o, true)
				outcomes[k] = o
				if traceTimes != nil {
					// Distinct index per fault: no write races between workers.
					traceTimes[k] = worker.lastStages
				}
				if traceResims != nil {
					traceResims[k] = worker.lastResim
				}
				if traceSims != nil {
					traceSims[k] = worker.lastEvents
				}
				if progress != nil {
					mu.Lock()
					count++
					progress(count, len(faults))
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	sc.endStage()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, o := range outcomes {
		res.tally(o)
	}
	res.Stages.MOTTime = time.Since(motStart)
	for _, worker := range workerSims {
		res.Stages.mergeStats(worker.stats)
		if s.cfg.Metrics {
			res.Stages.Sim.Merge(worker.sim.Stats())
		}
	}
	sc.finish(res)
	if err := s.writeTrace(res, traceTimes, traceResims, traceSims); err != nil {
		return nil, fmt.Errorf("core: trace: %w", err)
	}
	return res, nil
}
