package core

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// collectSetup builds an sg298 simulator and picks the undetected fault
// with the most candidate pairs, so the benchmark exercises a realistic
// pair-collection workload (many pairs across several time units).
func collectSetup(b *testing.B, cfg Config) (*Simulator, fault.Fault, *seqsim.Trace, []int) {
	b.Helper()
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var (
		bestFault fault.Fault
		bestBad   *seqsim.Trace
		bestNout  []int
		bestPairs = -1
	)
	for _, f := range fault.CollapsedList(c) {
		bad, _, detected, err := s.sim.RunFault(s.T, s.good, f, true)
		if err != nil {
			b.Fatal(err)
		}
		if detected {
			continue
		}
		nsv, nout := s.profile(bad)
		if !conditionC(nsv, nout) {
			continue
		}
		if n := len(s.collectPairs(&f, bad, nout)); n > bestPairs {
			bestFault, bestBad, bestNout, bestPairs = f, bad, nout, n
		}
	}
	if bestPairs < 8 {
		b.Fatalf("no fault with enough pairs found (best %d)", bestPairs)
	}
	return s, bestFault, bestBad, bestNout
}

// BenchmarkCollectPairs measures the pooled/trail pair-collection path:
// one frame per time unit restored by trail undo, arena-backed pair data.
func BenchmarkCollectPairs(b *testing.B) {
	s, f, bad, nout := collectSetup(b, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := s.collectPairs(&f, bad, nout)
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkCollectPairsReference measures the retained allocate-per-pair
// path (a fresh implication frame per pair side) on the same workload.
func BenchmarkCollectPairsReference(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Reference = true
	s, f, bad, nout := collectSetup(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := s.collectPairs(&f, bad, nout)
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// benchSimulateList measures the whole per-fault MOT pipeline (without the
// bit-parallel prescreen) over the collapsed fault list.
func benchSimulateList(b *testing.B, cfg Config) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	cfg.Prescreen = false
	s, err := NewSimulator(c, T, cfg)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(faults, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateList(b *testing.B) { benchSimulateList(b, DefaultConfig()) }

func BenchmarkSimulateListReference(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Reference = true
	benchSimulateList(b, cfg)
}
