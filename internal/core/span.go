package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/xtrace"
)

// defaultTraceSampleRate is the per-fault sampling rate when
// Config.TraceSampleRate is zero: 1 fault in 20 gets a span, enough to
// see the heavy tail of the per-fault cost distribution without paying
// span overhead on every fault.
const defaultTraceSampleRate = 0.05

// spanScope is the span scaffolding of one whole-list run: the run span
// and the prescreen/MOT stage spans, all on one "run" track, plus the
// sampling rate the per-fault spans use. A nil *spanScope (tracing off)
// is valid everywhere.
type spanScope struct {
	tr    *xtrace.Tracer
	main  *xtrace.Buffer
	rate  float64
	run   xtrace.Ref
	runID xtrace.SpanID
	stage xtrace.Ref
	// stageID is the live stage span's ID; fault and batch spans parent
	// here (not under the scheduling-dependent worker spans) so parent
	// links are identical across worker counts.
	stageID xtrace.SpanID
}

// beginRunSpans opens the run span, or returns nil when Config.Tracer
// is unset.
func (s *Simulator) beginRunSpans(faults int) *spanScope {
	tr := s.cfg.Tracer
	if tr == nil {
		return nil
	}
	rate := s.cfg.TraceSampleRate
	if rate == 0 {
		rate = defaultTraceSampleRate
	}
	sc := &spanScope{tr: tr, main: tr.NewTrack("run"), rate: rate}
	sc.run = sc.main.Begin("run "+s.c.Name, 0, 0)
	sc.runID = sc.main.ID(sc.run)
	sc.main.AttrInt(sc.run, "faults", int64(faults))
	return sc
}

// beginStage opens a stage span ("prescreen", "mot") under the run span
// and returns its ID for child spans.
func (sc *spanScope) beginStage(name string) xtrace.SpanID {
	if sc == nil {
		return 0
	}
	sc.stage = sc.main.Begin(name, sc.runID, 0)
	sc.stageID = sc.main.ID(sc.stage)
	return sc.stageID
}

// endStage closes the current stage span.
func (sc *spanScope) endStage() {
	if sc != nil {
		sc.main.End(sc.stage)
	}
}

// finish closes the run span with outcome attributes and flushes the
// run track.
func (sc *spanScope) finish(res *Result) {
	if sc == nil {
		return
	}
	sc.main.AttrInt(sc.run, "conv", int64(res.Conv))
	sc.main.AttrInt(sc.run, "mot", int64(res.MOT))
	sc.main.End(sc.run)
	sc.main.Flush()
}

// workerSpans drives one executing goroutine's per-fault spans on its
// own track. RunParallel workers (w >= 0) additionally record a
// "worker" span covering their whole claim loop — the one span kind
// whose membership depends on scheduling, which is why it is recorded
// at close time via Tracer.Record rather than held open in the buffer
// (an open span would block the buffer's incremental flushes).
type workerSpans struct {
	tr      *xtrace.Tracer
	buf     *xtrace.Buffer
	rate    float64
	stageID xtrace.SpanID
	w       int
	start   int64
	fref    xtrace.Ref
	faults  int64
}

// worker returns the span driver for one executing goroutine: w < 0 for
// the serial loop, a worker index for RunParallel workers. Nil scope →
// nil driver.
func (sc *spanScope) worker(w int) *workerSpans {
	if sc == nil {
		return nil
	}
	label := "faults"
	if w >= 0 {
		label = fmt.Sprintf("worker %02d", w)
	}
	return &workerSpans{
		tr: sc.tr, buf: sc.tr.NewTrack(label),
		rate: sc.rate, stageID: sc.stageID,
		w: w, start: sc.tr.Now(),
	}
}

// close flushes the track and records the worker span.
func (ws *workerSpans) close() {
	if ws == nil {
		return
	}
	ws.buf.Flush()
	if ws.w < 0 {
		return
	}
	ws.tr.Record(xtrace.Span{
		ID:     xtrace.DeriveID(ws.stageID, "worker", uint64(ws.w)),
		Parent: ws.stageID,
		Name:   "worker",
		Track:  ws.buf.Track(),
		Start:  ws.start,
		Dur:    ws.tr.Now() - ws.start,
		Attrs:  []xtrace.Attr{{Key: "faults", Val: fmt.Sprint(ws.faults)}},
	})
}

// begin opens the span for fault k if k is sampled, arming the
// simulator's sub-span hooks (expand/resim) for this fault.
func (ws *workerSpans) begin(s *Simulator, k int, f fault.Fault) {
	if ws == nil {
		return
	}
	ws.faults++
	if !xtrace.SampleAt(ws.rate, k) {
		return
	}
	ws.fref = ws.buf.Begin("fault", ws.stageID, uint64(k))
	ws.buf.AttrInt(ws.fref, "k", int64(k))
	ws.buf.Attr(ws.fref, "fault", f.Name(s.c))
	s.tbuf, s.span = ws.buf, ws.buf.ID(ws.fref)
}

// end closes the current fault span (no-op when fault k was unsampled)
// with the outcome attributes.
func (ws *workerSpans) end(s *Simulator, o *FaultOutcome) {
	if ws == nil || s.span == 0 {
		return
	}
	ws.buf.Attr(ws.fref, "outcome", o.Outcome.String())
	ws.buf.AttrInt(ws.fref, "pairs", int64(o.Pairs))
	ws.buf.AttrInt(ws.fref, "seqs", int64(o.Sequences))
	ws.buf.AttrInt(ws.fref, "sim_frames", s.lastEvents.Frames)
	ws.buf.AttrInt(ws.fref, "sim_events", s.lastEvents.Events)
	ws.buf.AttrInt(ws.fref, "sim_gate_evals", s.lastEvents.GateEvals)
	ws.buf.End(ws.fref)
	s.tbuf, s.span = nil, 0
}

// beginPhase opens an expand/resim sub-span under the active fault span.
// Unsampled faults (span 0, the common case) pay one comparison.
func (s *Simulator) beginPhase(name string, key uint64) xtrace.Ref {
	if s.span == 0 {
		return 0
	}
	return s.tbuf.Begin(name, s.span, key)
}

// endPhase closes a sub-span opened by beginPhase.
func (s *Simulator) endPhase(ref xtrace.Ref) {
	if ref != 0 {
		s.tbuf.End(ref)
	}
}
