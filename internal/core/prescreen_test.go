package core

import (
	"testing"

	"repro/internal/bitsim"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// crossCheck runs the fault list with the prescreen on and off (serially
// and in parallel) and asserts the outcomes are identical element by
// element: order, classification, detection site, and every counter.
func crossCheck(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault) {
	t.Helper()
	on := DefaultConfig()
	off := DefaultConfig()
	off.Prescreen = false

	simOn, err := NewSimulator(c, T, on)
	if err != nil {
		t.Fatal(err)
	}
	simOff, err := NewSimulator(c, T, off)
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := simOn.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := simOff.Run(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := simOn.RunParallel(faults, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"parallel": resPar, "serial": resOn} {
		if len(res.Outcomes) != len(resOff.Outcomes) {
			t.Fatalf("%s: %d outcomes with prescreen, %d without", name, len(res.Outcomes), len(resOff.Outcomes))
		}
		for k := range res.Outcomes {
			if res.Outcomes[k] != resOff.Outcomes[k] {
				t.Fatalf("%s: fault %s differs with prescreen:\n  on:  %+v\n  off: %+v",
					name, faults[k].Name(c), res.Outcomes[k], resOff.Outcomes[k])
			}
		}
		if res.Conv != resOff.Conv || res.MOT != resOff.MOT || res.Sum != resOff.Sum ||
			res.Expansions != resOff.Expansions || res.Pairs != resOff.Pairs ||
			res.Sequences != resOff.Sequences {
			t.Fatalf("%s: aggregates differ with prescreen", name)
		}
	}

	// Stage counters: the prescreen must have run and dropped exactly the
	// conventionally-detected faults; the off run records no passes.
	if want := bitsim.Batches(len(faults)); resOn.Stages.PrescreenPasses != want {
		t.Errorf("prescreen passes = %d, want %d", resOn.Stages.PrescreenPasses, want)
	}
	if resOn.Stages.PrescreenDropped != resOn.Conv {
		t.Errorf("prescreen dropped %d faults, conventional detections = %d",
			resOn.Stages.PrescreenDropped, resOn.Conv)
	}
	if resOff.Stages.PrescreenPasses != 0 || resOff.Stages.PrescreenDropped != 0 {
		t.Errorf("prescreen-off run recorded prescreen work: %+v", resOff.Stages)
	}
}

func TestPrescreenCrossCheckS27(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	crossCheck(t, c, T, fault.CollapsedList(c))
}

func TestPrescreenCrossCheckSuite(t *testing.T) {
	for _, name := range []string{"sg208", "sg298"} {
		e, err := circuits.SuiteEntryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := e.Build()
		T := tgen.Random(c.NumInputs(), 32, e.SeqSeed)
		crossCheck(t, c, T, fault.CollapsedList(c))
	}
}

// TestPrescreenLaneBoundary exercises a fault list longer than one
// 64-lane word, so the prescreen needs multiple batches and faults sit on
// every lane position including the batch boundaries.
func TestPrescreenLaneBoundary(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	faults := fault.List(c) // uncollapsed: well beyond 64 faults
	if len(faults) <= bitsim.Lanes {
		t.Fatalf("fault list too short for a lane-boundary test: %d", len(faults))
	}
	T := tgen.Random(c.NumInputs(), 24, e.SeqSeed)
	crossCheck(t, c, T, faults)
}

// TestRunAggregatesPairsSequences checks that Run sums the per-fault
// Pairs and Sequences counters like Expansions.
func TestRunAggregatesPairsSequences(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(c.NumInputs(), 20, 27)
	s, err := NewSimulator(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fault.CollapsedList(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	var pairs, seqs, exps int
	for _, o := range res.Outcomes {
		pairs += o.Pairs
		seqs += o.Sequences
		exps += o.Expansions
	}
	if res.Pairs != pairs || res.Sequences != seqs || res.Expansions != exps {
		t.Fatalf("aggregates: got pairs=%d seqs=%d exps=%d, want %d %d %d",
			res.Pairs, res.Sequences, res.Expansions, pairs, seqs, exps)
	}
}

// brokenSequence returns a copy of T whose final pattern has the wrong
// width, so conventional simulation of any fault reaching it errors.
func brokenSequence(T seqsim.Sequence) seqsim.Sequence {
	bad := append(seqsim.Sequence{}, T...)
	bad[len(bad)-1] = bad[len(bad)-1][:1]
	return bad
}

// TestRunParallelErrorDrains checks that a worker error is propagated and
// the pool drains instead of simulating the rest of the fault list.
func TestRunParallelErrorDrains(t *testing.T) {
	e, err := circuits.SuiteEntryByName("sg208")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 8, e.SeqSeed)
	faults := fault.List(c)
	for _, prescreen := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Prescreen = prescreen
		s, err := NewSimulator(c, T, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Break the sequence after construction: the fault-free trace is
		// already computed, so the error surfaces inside the workers (or
		// the prescreen), not in NewSimulator.
		s.T = brokenSequence(s.T)
		if _, err := s.RunParallel(faults, 4, nil); err == nil {
			t.Errorf("prescreen=%v: broken sequence not reported", prescreen)
		}
		if _, err := s.Run(faults, nil); err == nil {
			t.Errorf("prescreen=%v: serial run did not report broken sequence", prescreen)
		}
	}
}
