package core

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/seqsim"
)

// vals parses a value string into a slice.
func vals(t *testing.T, s string) []logic.Val {
	t.Helper()
	v, err := logic.ParseVals(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestProfileMatchesPaperExample reproduces the N_out example given for
// Table 1(a): fault-free outputs (xx0, 0x1, 111, 011) and faulty outputs
// (x0x, xxx, 1x1, 011) give N_out(0)=4, N_out(1)=3, N_out(2)=1,
// N_out(3)=0.
func TestProfileMatchesPaperExample(t *testing.T) {
	good := &seqsim.Trace{
		Outputs: [][]logic.Val{
			vals(t, "xx0"), vals(t, "0x1"), vals(t, "111"), vals(t, "011"),
		},
	}
	bad := &seqsim.Trace{
		Outputs: [][]logic.Val{
			vals(t, "x0x"), vals(t, "xxx"), vals(t, "1x1"), vals(t, "011"),
		},
		States: [][]logic.Val{
			vals(t, "xx"), vals(t, "xx"), vals(t, "0x"), vals(t, "x1"), vals(t, "00"),
		},
	}
	s := &Simulator{T: make(seqsim.Sequence, 4), good: good}
	nsv, nout := s.profile(bad)
	wantNout := []int{4, 3, 1, 0}
	for u, want := range wantNout {
		if nout[u] != want {
			t.Errorf("N_out(%d) = %d, want %d", u, nout[u], want)
		}
	}
	wantNsv := []int{2, 2, 1, 1, 0}
	for u, want := range wantNsv {
		if nsv[u] != want {
			t.Errorf("N_sv(%d) = %d, want %d", u, nsv[u], want)
		}
	}
	if !conditionC(nsv, nout) {
		t.Error("condition C should hold for the Table 1 example")
	}
}

func TestConditionCEdges(t *testing.T) {
	// N_sv positive only where N_out is zero: condition fails.
	if conditionC([]int{0, 0, 2}, []int{3, 0}) {
		t.Error("condition C should fail when the positive entries never align")
	}
	if !conditionC([]int{1, 0}, []int{1}) {
		t.Error("condition C should hold at u=0")
	}
	if conditionC([]int{0, 0}, []int{5}) {
		t.Error("condition C needs unspecified state variables")
	}
}

func TestPairCounters(t *testing.T) {
	// Clean pair: extra sizes add up.
	p := pairInfo{
		extra: [2][]svAssign{
			{{0, logic.Zero}, {1, logic.One}},
			{{0, logic.One}},
		},
	}
	c := p.counters()
	if c.Det != 0 || c.Conf != 0 || c.Extra != 3 {
		t.Errorf("clean pair counters = %+v", c)
	}
	// Detection on side 1: N_det++ and extra of side 0.
	p.detect[1] = true
	c = p.counters()
	if c.Det != 1 || c.Conf != 0 || c.Extra != 2 {
		t.Errorf("detect pair counters = %+v", c)
	}
	// Conflict on side 0 as well: both rules fire.
	p.conf[0] = true
	c = p.counters()
	if c.Det != 1 || c.Conf != 1 || c.Extra != 2+1 {
		t.Errorf("conf+detect counters = %+v", c)
	}
}

func TestTrivialPair(t *testing.T) {
	p := trivialPair(3, 2)
	if p.u != 3 || p.i != 2 {
		t.Fatal("wrong coordinates")
	}
	if len(p.extra[0]) != 1 || p.extra[0][0] != (svAssign{j: 2, v: logic.Zero}) {
		t.Error("extra[0] wrong")
	}
	if len(p.extra[1]) != 1 || p.extra[1][0] != (svAssign{j: 2, v: logic.One}) {
		t.Error("extra[1] wrong")
	}
	if len(p.sv) != 1 || p.sv[0] != 2 {
		t.Error("sv wrong")
	}
	if p.resolved(0) || p.resolved(1) {
		t.Error("trivial pair should be unresolved")
	}
}

// seqOf builds a sequence with the given per-time state strings.
func seqOf(t *testing.T, rows ...string) *sequence {
	t.Helper()
	states := make([][]logic.Val, len(rows))
	for u, r := range rows {
		states[u] = vals(t, r)
	}
	return &sequence{states: states}
}

func TestExpandableConstraint(t *testing.T) {
	p := &pairInfo{u: 1, i: 0, sv: []int{0, 1}}
	all := []*sequence{seqOf(t, "xx", "xx", "xx")}
	if !expandable(p, all) {
		t.Error("fully unspecified sequence should be expandable")
	}
	partial := []*sequence{seqOf(t, "xx", "x1", "xx")}
	if expandable(p, partial) {
		t.Error("sv(u,i) includes a specified variable: not expandable")
	}
	otherTime := []*sequence{seqOf(t, "11", "xx", "11")}
	if !expandable(p, otherTime) {
		t.Error("specified values at other time units must not block expansion")
	}
}

// mkPair builds a clean pair with given extras.
func mkPair(u, i, n0, n1 int) pairInfo {
	p := pairInfo{u: u, i: i, sv: []int{i}}
	for k := 0; k < n0; k++ {
		p.extra[0] = append(p.extra[0], svAssign{j: i, v: logic.Zero})
	}
	for k := 0; k < n1; k++ {
		p.extra[1] = append(p.extra[1], svAssign{j: i, v: logic.One})
	}
	return p
}

func TestSelectPairCriteria(t *testing.T) {
	s := &Simulator{}
	seqs := []*sequence{seqOf(t, "xxxx", "xxxx", "xxxx")}

	// Criterion 1: maximum N_out wins.
	pairs := []pairInfo{mkPair(1, 0, 5, 5), mkPair(0, 1, 1, 1)}
	nsv := []int{4, 4, 4}
	nout := []int{9, 3}
	if got := s.selectPair(pairs, seqs, nsv, nout); got != 1 {
		t.Errorf("criterion 1: selected %d, want 1 (max N_out)", got)
	}

	// Criterion 2: minimum N_sv among equal N_out.
	pairs = []pairInfo{mkPair(0, 0, 5, 5), mkPair(1, 1, 1, 1)}
	nsv = []int{4, 2, 4}
	nout = []int{7, 7}
	if got := s.selectPair(pairs, seqs, nsv, nout); got != 1 {
		t.Errorf("criterion 2: selected %d, want 1 (min N_sv)", got)
	}

	// Criterion 3: larger min(extra0, extra1).
	pairs = []pairInfo{mkPair(0, 0, 1, 4), mkPair(0, 1, 2, 2)}
	nsv = []int{4, 4}
	nout = []int{7, 7}
	if got := s.selectPair(pairs, seqs, nsv, nout); got != 1 {
		t.Errorf("criterion 3: selected %d, want 1 (max of min extra)", got)
	}

	// Criterion 4: larger max(extra0, extra1) among equal mins.
	pairs = []pairInfo{mkPair(0, 0, 2, 2), mkPair(0, 1, 2, 3)}
	if got := s.selectPair(pairs, seqs, nsv, nout); got != 1 {
		t.Errorf("criterion 4: selected %d, want 1 (max of max extra)", got)
	}

	// Resolved pairs are never selected.
	pairs[1].conf[0] = true
	if got := s.selectPair(pairs, seqs, nsv, nout); got != 0 {
		t.Errorf("resolved pair selected: got %d, want 0", got)
	}

	// Zero N_out disqualifies.
	pairs = []pairInfo{mkPair(1, 0, 2, 2)}
	nout = []int{3, 0}
	if got := s.selectPair(pairs, seqs, nsv, nout); got != -1 {
		t.Errorf("pair at N_out=0 selected: got %d", got)
	}
}

func TestCloneStatesIndependent(t *testing.T) {
	src := [][]logic.Val{vals(t, "x1"), vals(t, "0x")}
	dst := cloneStates(src)
	dst[0][0] = logic.One
	if src[0][0] != logic.X {
		t.Error("cloneStates shares storage")
	}
}
