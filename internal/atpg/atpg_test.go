package atpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{MaxFrames: 0, MaxBacktracks: 1}).Validate() == nil {
		t.Error("zero frames accepted")
	}
	if (Config{MaxFrames: 1, MaxBacktracks: -1}).Validate() == nil {
		t.Error("negative backtracks accepted")
	}
	if _, err := New(circuits.S27(), Config{}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestStatusString(t *testing.T) {
	if Generated.String() != "generated" || Aborted.String() != "aborted" || Untestable.String() != "untestable" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("fallback status string empty")
	}
}

// verifyDetects grades T against f with the conventional simulator.
func verifyDetects(t *testing.T, c *netlist.Circuit, T seqsim.Sequence, f fault.Fault) bool {
	t.Helper()
	sim := seqsim.New(c)
	good, err := sim.Run(T, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunFaults(T, good, []fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	return res[0].Detected
}

func TestGenerateCombinational(t *testing.T) {
	c, err := bench.ParseString("comb", `
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(s)
OUTPUT(co)
s = XOR(a, b, cin)
t1 = AND(a, b)
t2 = AND(a, cin)
t3 = AND(b, cin)
co = OR(t1, t2, t3)
`)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := New(c, Config{MaxFrames: 1, MaxBacktracks: 50})
	if err != nil {
		t.Fatal(err)
	}
	generated := 0
	for _, f := range fault.CollapsedList(c) {
		res := gen.Generate(f)
		if res.Status == Generated {
			generated++
			if !verifyDetects(t, c, res.Test, f) {
				t.Fatalf("generated test for %s does not detect it", f.Name(c))
			}
		}
	}
	// A full adder's collapsed faults are all combinationally testable.
	if generated < len(fault.CollapsedList(c))*3/4 {
		t.Errorf("only %d faults got tests", generated)
	}
}

func TestGenerateSequential(t *testing.T) {
	// Detection requires driving the fault effect through the flip-flop:
	// at least two frames.
	c, err := bench.ParseString("seq", `
INPUT(r)
INPUT(x)
OUTPUT(obs)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
obs = BUFF(q)
`)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := New(c, Config{MaxFrames: 6, MaxBacktracks: 200})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.NodeByName("d")
	f := fault.Fault{Node: d, Gate: netlist.NoGate, Stuck: logic.One}
	res := gen.Generate(f)
	if res.Status != Generated {
		t.Fatalf("d/SA1 not generated: %v (backtracks %d)", res.Status, res.Backtracks)
	}
	if len(res.Test) < 2 {
		t.Errorf("sequential fault got a %d-frame test", len(res.Test))
	}
	if !verifyDetects(t, c, res.Test, f) {
		t.Fatal("generated sequential test fails verification")
	}
}

func TestGenerateBranchFault(t *testing.T) {
	// The full adder has real fanout branches (a feeds s, t1 and t2);
	// branch faults must be handled by the pair simulation and activation
	// logic.
	c, err := bench.ParseString("comb", `
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(s)
OUTPUT(co)
s = XOR(a, b, cin)
t1 = AND(a, b)
t2 = AND(a, cin)
t3 = AND(b, cin)
co = OR(t1, t2, t3)
`)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := New(c, Config{MaxFrames: 1, MaxBacktracks: 80})
	if err != nil {
		t.Fatal(err)
	}
	tried, generated := 0, 0
	for _, f := range fault.List(c) {
		if f.IsStem() {
			continue
		}
		tried++
		res := gen.Generate(f)
		if res.Status == Generated {
			generated++
			if !verifyDetects(t, c, res.Test, f) {
				t.Fatalf("branch fault %s: generated test fails verification", f.Name(c))
			}
		}
	}
	if tried == 0 {
		t.Fatal("no branch faults in the adder?")
	}
	if generated == 0 {
		t.Error("no branch fault got a test")
	}
}

func TestGenerateS27(t *testing.T) {
	c := circuits.S27()
	gen, err := New(c, Config{MaxFrames: 10, MaxBacktracks: 300})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	generated, aborted, untestable := 0, 0, 0
	for _, f := range faults {
		res := gen.Generate(f)
		switch res.Status {
		case Generated:
			generated++
			if !verifyDetects(t, c, res.Test, f) {
				t.Fatalf("s27 test for %s fails verification", f.Name(c))
			}
		case Aborted:
			aborted++
		case Untestable:
			untestable++
		}
	}
	t.Logf("s27 ATPG: %d generated, %d aborted, %d untestable of %d",
		generated, aborted, untestable, len(faults))
	if generated < len(faults)/3 {
		t.Errorf("implausibly low s27 ATPG coverage: %d/%d", generated, len(faults))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := circuits.S27()
	cfg := Config{MaxFrames: 6, MaxBacktracks: 100}
	f := fault.CollapsedList(c)[4]
	g1, _ := New(c, cfg)
	g2, _ := New(c, cfg)
	r1 := g1.Generate(f)
	r2 := g2.Generate(f)
	if r1.Status != r2.Status || len(r1.Test) != len(r2.Test) {
		t.Fatal("ATPG nondeterministic")
	}
	for u := range r1.Test {
		if logic.FormatVals(r1.Test[u]) != logic.FormatVals(r2.Test[u]) {
			t.Fatal("ATPG test content nondeterministic")
		}
	}
}

func TestGenerateAllS27(t *testing.T) {
	c := circuits.S27()
	faults := fault.CollapsedList(c)
	results, full, summary, err := GenerateAll(c, faults, Config{MaxFrames: 8, MaxBacktracks: 200})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Total != len(faults) {
		t.Error("summary total wrong")
	}
	if summary.Generated == 0 {
		t.Fatal("GenerateAll produced nothing")
	}
	if summary.Generated+summary.Aborted+summary.Untestable > summary.Total {
		t.Errorf("summary inconsistent: %+v", summary)
	}
	if len(full) == 0 {
		t.Fatal("empty concatenated sequence")
	}
	// The concatenated sequence must detect at least the faults counted
	// as generated via their own subsequences... grading from the all-X
	// state of the concatenation covers the directly-generated ones whose
	// tests appear as leading subsequences; check global coverage is
	// positive and consistent instead.
	sim := seqsim.New(c)
	good, err := sim.Run(full, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	graded, err := sim.RunFaults(full, good, faults)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, r := range graded {
		if r.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("concatenated ATPG sequence detects nothing")
	}
	for k, r := range results {
		if r.Status == Generated && r.Test == nil {
			t.Errorf("fault %d generated without a test", k)
		}
	}
}
