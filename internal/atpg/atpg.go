// Package atpg implements deterministic test-sequence generation for
// single stuck-at faults in synchronous sequential circuits: a PODEM
// search over a bounded time-frame expansion of the circuit.
//
// Values are represented as good/faulty pairs of three-valued values —
// equivalent to Muth's nine-valued algebra, which is required for
// sequential ATPG (a five-valued D-algebra is pessimistic across time
// frames). The machine starts in the all-X state and only primary inputs
// may be assigned, so any generated sequence is valid under conventional
// test application; every result is verified by the conventional fault
// simulator before being reported.
//
// This engine plays the role HITEC [9] plays in the paper's closing
// experiment: a deterministic per-fault test generator whose sequences
// the MOT fault simulator can then grade.
package atpg

import (
	"fmt"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/testability"
	"repro/internal/tgen"
)

// Config bounds the search.
type Config struct {
	// MaxFrames is the number of time frames the circuit is unrolled to.
	MaxFrames int
	// MaxBacktracks bounds PODEM decision reversals per fault.
	MaxBacktracks int
	// RandomPhase, when positive, prepends the standard random phase to
	// GenerateAll: that many seeded random patterns are graded first and
	// the faults they detect are dropped before the deterministic search
	// targets the rest. Zero disables the phase.
	RandomPhase int
	// RandomSeed seeds the random phase.
	RandomSeed int64
}

// DefaultConfig returns reasonable bounds for the benchmark circuits.
func DefaultConfig() Config {
	return Config{MaxFrames: 8, MaxBacktracks: 400, RandomPhase: 64, RandomSeed: 1}
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	if cfg.MaxFrames < 1 || cfg.MaxBacktracks < 0 || cfg.RandomPhase < 0 {
		return fmt.Errorf("atpg: invalid config %+v", cfg)
	}
	return nil
}

// Status classifies a per-fault generation attempt.
type Status uint8

const (
	// Generated: a verified detecting sequence was found.
	Generated Status = iota
	// Aborted: the backtrack or frame budget ran out.
	Aborted
	// Untestable: the search space was exhausted without a test within
	// the frame bound (the fault may still be testable with more frames).
	Untestable
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Generated:
		return "generated"
	case Aborted:
		return "aborted"
	case Untestable:
		return "untestable"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Result is the outcome for one fault.
type Result struct {
	Fault  fault.Fault
	Status Status
	// Test is the generated sequence (nil unless Generated).
	Test seqsim.Sequence
	// Backtracks consumed by the search.
	Backtracks int
}

// pair is one signal's good/faulty value pair.
type pair struct {
	g, f logic.Val
}

// isD reports a fault effect: both sides binary and different.
func (p pair) isD() bool {
	return p.g.IsBinary() && p.f.IsBinary() && p.g != p.f
}

// Generator holds per-circuit state.
type Generator struct {
	c   *netlist.Circuit
	cc  *cir.CC
	cfg Config
	m   *testability.Measures

	flt fault.Fault

	// pi[frame][input] is the current PI assignment.
	pi [][]logic.Val
	// vals[frame][node] is the good/faulty pair assignment.
	vals [][]pair
	// frames actually in use.
	frames int
}

// New builds a generator for the circuit.
func New(c *netlist.Circuit, cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{c: c, cc: cir.For(c), cfg: cfg, m: testability.Compute(c)}
	g.pi = make([][]logic.Val, cfg.MaxFrames)
	g.vals = make([][]pair, cfg.MaxFrames)
	for u := 0; u < cfg.MaxFrames; u++ {
		g.pi[u] = make([]logic.Val, c.NumInputs())
		g.vals[u] = make([]pair, c.NumNodes())
	}
	return g, nil
}

// decision is one PODEM decision point.
type decision struct {
	frame, input int
	val          logic.Val
	flipped      bool
}

// Generate attempts to build a detecting sequence for fault f.
func (g *Generator) Generate(f fault.Fault) Result {
	g.flt = f
	res := Result{Fault: f}
	for u := range g.pi {
		for i := range g.pi[u] {
			g.pi[u][i] = logic.X
		}
	}
	g.frames = g.cfg.MaxFrames

	var stack []decision
	for {
		g.simulate()
		if det, ok := g.detected(); ok {
			_ = det
			res.Status = Generated
			res.Test = g.currentTest()
			if g.verify(res.Test) {
				return res
			}
			// A verification miss means the pair algebra was optimistic
			// somewhere; treat as abort rather than report a bad test.
			res.Status = Aborted
			res.Test = nil
			return res
		}
		frame, input, val, ok := g.nextObjective()
		if ok {
			stack = append(stack, decision{frame: frame, input: input, val: val})
			g.pi[frame][input] = val
			continue
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				res.Status = Untestable
				return res
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				res.Backtracks++
				if res.Backtracks > g.cfg.MaxBacktracks {
					res.Status = Aborted
					return res
				}
				d.flipped = true
				d.val = d.val.Not()
				g.pi[d.frame][d.input] = d.val
				break
			}
			g.pi[d.frame][d.input] = logic.X
			stack = stack[:len(stack)-1]
		}
	}
}

// currentTest snapshots the PI assignments, with X inputs set to 0, and
// trims trailing frames after the last detection opportunity (kept
// simple: the full unroll is returned; verification trims nothing).
func (g *Generator) currentTest() seqsim.Sequence {
	T := make(seqsim.Sequence, g.frames)
	for u := 0; u < g.frames; u++ {
		p := make(seqsim.Pattern, len(g.pi[u]))
		for i, v := range g.pi[u] {
			if v == logic.X {
				p[i] = logic.Zero
			} else {
				p[i] = v
			}
		}
		T[u] = p
	}
	return T
}

// verify grades the candidate test with the conventional simulator.
func (g *Generator) verify(T seqsim.Sequence) bool {
	sim := seqsim.New(g.c)
	good, err := sim.Run(T, nil, true)
	if err != nil {
		return false
	}
	res, err := sim.RunFaults(T, good, []fault.Fault{g.flt})
	if err != nil {
		return false
	}
	return res[0].Detected
}

// simulate evaluates all frames under the current PI assignment.
func (g *Generator) simulate() {
	cc := g.cc
	for u := 0; u < g.frames; u++ {
		vals := g.vals[u]
		for i, id := range cc.Inputs {
			v := g.pi[u][i]
			p := pair{g: v, f: v}
			p = g.inject(id, p)
			vals[id] = p
		}
		for i, q := range cc.FFQ {
			var p pair
			if u == 0 {
				p = pair{g: logic.X, f: logic.X}
			} else {
				p = g.vals[u-1][cc.FFD[i]]
			}
			p = g.inject(q, p)
			vals[q] = p
		}
		for _, gi := range cc.Order {
			vals[cc.GOut[gi]] = g.evalGate(u, gi)
		}
	}
}

// inject applies a stem fault to the faulty side of a pair.
func (g *Generator) inject(id netlist.NodeID, p pair) pair {
	if v, ok := g.flt.StuckNode(id); ok {
		p.f = v
	}
	return p
}

// evalGate computes a gate's pair value in frame u: the good and faulty
// sides are gathered from the CSR fanin (branch faults applied to the
// faulty side) and each folded through the shared gate semantics.
func (g *Generator) evalGate(u int, gi netlist.GateID) pair {
	cc := g.cc
	var bufG, bufF [8]logic.Val
	lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
	n := int(hi - lo)
	ing := bufG[:0]
	inf := bufF[:0]
	if n > len(bufG) {
		ing = make([]logic.Val, 0, n)
		inf = make([]logic.Val, 0, n)
	}
	for k := lo; k < hi; k++ {
		id := cc.Fanin[k]
		p := g.vals[u][id]
		fv := p.f
		if g.flt.Node == id && !g.flt.IsStem() && g.flt.Gate == gi && g.flt.Pin == k-lo {
			fv = g.flt.Stuck
		}
		ing = append(ing, p.g)
		inf = append(inf, fv)
	}
	op := cc.Ops[gi]
	out := pair{g: cir.EvalOp(op, ing), f: cir.EvalOp(op, inf)}
	return g.inject(cc.GOut[gi], out)
}

// detected reports whether some primary output in some frame carries a
// fault effect.
func (g *Generator) detected() (int, bool) {
	for u := 0; u < g.frames; u++ {
		for _, id := range g.c.Outputs {
			if g.vals[u][id].isD() {
				return u, true
			}
		}
	}
	return 0, false
}

// nextObjective picks the next (frame, input, value) decision via the
// PODEM objective/backtrace split:
//
//  1. if the fault is not activated in any frame, the objective is to set
//     the fault site's good value to the complement of the stuck value in
//     the earliest frame where it is X;
//  2. otherwise a D-frontier gate is chosen (a gate with a fault effect
//     on an input and X on its output) and the objective is to set one of
//     its X inputs to the non-controlling value.
//
// The objective is backtraced to an unassigned primary input through the
// easiest (SCOAP-cheapest) paths, crossing flip-flops into earlier
// frames; paths that reach the frame-0 initial state are unassignable.
func (g *Generator) nextObjective() (frame, input int, val logic.Val, ok bool) {
	// Activation objective.
	site := g.flt.Node
	activated := false
	for u := 0; u < g.frames; u++ {
		if g.siteActivated(u) {
			activated = true
			break
		}
	}
	if !activated {
		want := g.flt.Stuck.Not()
		for u := 0; u < g.frames; u++ {
			if g.goodValueAt(u, site) == logic.X {
				if fr, in, v, found := g.backtrace(u, site, want); found {
					return fr, in, v, true
				}
			}
		}
		return 0, 0, logic.X, false
	}
	// Propagation objective: scan D-frontier gates frame by frame.
	cc := g.cc
	for u := 0; u < g.frames; u++ {
		for _, gi := range cc.Order {
			out := g.vals[u][cc.GOut[gi]]
			if out.g != logic.X && out.f != logic.X {
				continue
			}
			fanin := cc.FaninOf(gi)
			hasD := false
			for _, id := range fanin {
				if g.vals[u][id].isD() {
					hasD = true
					break
				}
			}
			if !hasD {
				continue
			}
			// Set an X input to the non-controlling value.
			want := nonControlling(cc.Ops[gi])
			for _, id := range fanin {
				p := g.vals[u][id]
				if p.g == logic.X && !p.isD() {
					if fr, in, v, found := g.backtrace(u, id, want); found {
						return fr, in, v, true
					}
				}
			}
		}
	}
	// No frontier progress possible: as a last resort assign any X input
	// anywhere (this lets free-running state settle via good values).
	for u := 0; u < g.frames; u++ {
		for i := range g.pi[u] {
			if g.pi[u][i] == logic.X {
				return u, i, logic.One, true
			}
		}
	}
	return 0, 0, logic.X, false
}

// siteActivated reports a fault effect at the fault site in frame u.
func (g *Generator) siteActivated(u int) bool {
	if g.flt.IsStem() {
		return g.vals[u][g.flt.Node].isD()
	}
	// Branch fault: the effect exists when the stem's good value differs
	// from the stuck value.
	v := g.vals[u][g.flt.Node].g
	return v.IsBinary() && v != g.flt.Stuck
}

// goodValueAt returns the good value of node id in frame u.
func (g *Generator) goodValueAt(u int, id netlist.NodeID) logic.Val {
	return g.vals[u][id].g
}

// nonControlling returns the value that lets a gate pass other inputs
// through (1 for AND/NAND, 0 for OR/NOR, either for XOR — 0 chosen).
func nonControlling(op logic.Op) logic.Val {
	switch op {
	case logic.And, logic.Nand:
		return logic.One
	case logic.Or, logic.Nor:
		return logic.Zero
	}
	return logic.Zero
}

// backtrace walks the objective (node, value) in frame u backward to an
// unassigned primary input, returning the implied PI decision.
func (g *Generator) backtrace(u int, id netlist.NodeID, want logic.Val) (int, int, logic.Val, bool) {
	c := g.c
	for steps := 0; steps < c.NumNodes()*g.cfg.MaxFrames; steps++ {
		n := &c.Nodes[id]
		switch n.Kind {
		case netlist.KindInput:
			for i, in := range c.Inputs {
				if in == id {
					if g.pi[u][i] == logic.X {
						return u, i, want, true
					}
					return 0, 0, logic.X, false // already assigned: dead objective
				}
			}
			return 0, 0, logic.X, false
		case netlist.KindState:
			if u == 0 {
				return 0, 0, logic.X, false // initial state is unassignable
			}
			id = c.FFs[n.FF].D
			u--
			continue
		}
		gate := &c.Gates[n.Driver]
		switch gate.Op {
		case logic.Const0, logic.Const1:
			return 0, 0, logic.X, false
		case logic.Buf:
			id = gate.In[0]
		case logic.Not:
			id = gate.In[0]
			want = want.Not()
		case logic.And, logic.Nand, logic.Or, logic.Nor:
			inv := gate.Op.Inverting()
			w := want
			if inv {
				w = w.Not()
			}
			var ctrl logic.Val
			if gate.Op == logic.And || gate.Op == logic.Nand {
				ctrl = logic.Zero
			} else {
				ctrl = logic.One
			}
			if w == ctrl {
				// One controlling input suffices: pick the cheapest X input.
				id = g.pickInput(u, gate, ctrl, true)
				want = ctrl
			} else {
				// All inputs must be non-controlling: pick the hardest X
				// input first (classic PODEM heuristic).
				id = g.pickInput(u, gate, ctrl.Not(), false)
				want = ctrl.Not()
			}
			if id == netlist.NoNode {
				return 0, 0, logic.X, false
			}
		case logic.Xor, logic.Xnor:
			// Pick any X input and request a value; parity is fixed up by
			// later decisions and simulation.
			id = g.pickInput(u, gate, logic.X, true)
			if id == netlist.NoNode {
				return 0, 0, logic.X, false
			}
			// want stays: the chosen input's needed value is ambiguous for
			// parity gates; request `want` directly as a heuristic.
		default:
			return 0, 0, logic.X, false
		}
	}
	return 0, 0, logic.X, false
}

// pickInput selects an X-valued (good side) input of the gate; easiest
// (cheapest SCOAP controllability for the target value) when easy is
// true, hardest otherwise. Returns netlist.NoNode when no input is X.
func (g *Generator) pickInput(u int, gate *netlist.Gate, target logic.Val, easy bool) netlist.NodeID {
	best := netlist.NoNode
	var bestCost int32
	for _, in := range gate.In {
		if g.vals[u][in].g != logic.X {
			continue
		}
		var cost int32
		switch target {
		case logic.Zero:
			cost = g.m.CC0[in]
		case logic.One:
			cost = g.m.CC1[in]
		default:
			cost = minInt32(g.m.CC0[in], g.m.CC1[in])
		}
		if best == netlist.NoNode || (easy && cost < bestCost) || (!easy && cost > bestCost) {
			best = in
			bestCost = cost
		}
	}
	return best
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Summary aggregates a whole-fault-list ATPG run.
type Summary struct {
	Total int
	// RandomDetected counts faults covered by the random phase.
	RandomDetected int
	// Generated counts faults covered by deterministic tests (including
	// faults dropped by another target's test).
	Generated  int
	Aborted    int
	Untestable int
}

// GenerateAll runs ATPG for every fault, dropping faults detected by
// already-generated sequences (reverse fault simulation), and returns
// the per-fault results, the concatenated test sequence, and a summary.
func GenerateAll(c *netlist.Circuit, faults []fault.Fault, cfg Config) ([]Result, seqsim.Sequence, Summary, error) {
	gen, err := New(c, cfg)
	if err != nil {
		return nil, nil, Summary{}, err
	}
	sim := seqsim.New(c)
	results := make([]Result, len(faults))
	remaining := make([]bool, len(faults))
	for i := range remaining {
		remaining[i] = true
	}
	var full seqsim.Sequence
	summary := Summary{Total: len(faults)}

	// Random phase: grade a seeded random prefix and drop what it covers.
	if cfg.RandomPhase > 0 {
		T := tgen.Random(c.NumInputs(), cfg.RandomPhase, cfg.RandomSeed)
		good, err := sim.Run(T, nil, true)
		if err != nil {
			return nil, nil, summary, err
		}
		graded, err := sim.RunFaults(T, good, faults)
		if err != nil {
			return nil, nil, summary, err
		}
		hit := false
		for k, r := range graded {
			if r.Detected {
				remaining[k] = false
				results[k] = Result{Fault: faults[k], Status: Generated, Test: T}
				summary.RandomDetected++
				hit = true
			}
		}
		if hit {
			full = append(full, T...)
		}
	}

	for k, f := range faults {
		if !remaining[k] {
			continue
		}
		res := gen.Generate(f)
		results[k] = res
		switch res.Status {
		case Generated:
			summary.Generated++
			full = append(full, res.Test...)
			// Drop other faults the new full sequence detects. Grading
			// restarts from the all-X state, which is sound: the device is
			// not reset between subsequences, but detection by a prefix-
			// independent grading is only reported when guaranteed.
			good, err := sim.Run(res.Test, nil, true)
			if err != nil {
				return nil, nil, summary, err
			}
			var pending []fault.Fault
			var pendingIdx []int
			for j := k + 1; j < len(faults); j++ {
				if remaining[j] {
					pending = append(pending, faults[j])
					pendingIdx = append(pendingIdx, j)
				}
			}
			dropped, err := sim.RunFaults(res.Test, good, pending)
			if err != nil {
				return nil, nil, summary, err
			}
			for x, r := range dropped {
				if r.Detected {
					remaining[pendingIdx[x]] = false
					results[pendingIdx[x]] = Result{Fault: pending[x], Status: Generated, Test: res.Test}
					summary.Generated++
				}
			}
		case Aborted:
			summary.Aborted++
		case Untestable:
			summary.Untestable++
		}
		remaining[k] = false
	}
	return results, full, summary, nil
}
