// Package bitsim implements bit-parallel three-valued fault simulation:
// 63 faulty machines plus the fault-free machine are simulated
// simultaneously, one per bit lane, using the classic two-word encoding
// of three-valued values. This is the standard single-fault-propagation
// speed-up the paper sets aside ("we do not consider methods to speed up
// the simulation process"); it accelerates the conventional-simulation
// stage and is validated lane-for-lane against the serial simulator.
//
// The circuit structure and the lane-wise gate semantics come from the
// compiled IR (internal/cir): the frame loop walks the CSR arrays and
// every gate evaluates through cir.EvalOpVV. What stays here is fault
// injection — the dense per-node stem table and per-gate branch table
// are batch-specific (each batch carries a different 63-fault lane
// assignment), not circuit structure.
package bitsim

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// Lanes is the number of machines per batch: lane 0 is fault-free and
// the remaining lanes carry one fault each.
const Lanes = 64

// VV is the 64-lane three-valued vector (see cir.VV for the encoding).
type VV = cir.VV

// stemForce accumulates per-node stem-fault injections.
type stemForce struct {
	maskOne  uint64 // lanes stuck at 1
	maskZero uint64 // lanes stuck at 0
}

// apply injects the stem faults into a node value.
func (s stemForce) apply(v VV) VV {
	mask := s.maskOne | s.maskZero
	if mask == 0 {
		return v
	}
	v.One = v.One&^mask | s.maskOne
	v.Zero = v.Zero&^mask | s.maskZero
	return v
}

// branchForce is one branch-fault injection at a gate input pin.
type branchForce struct {
	pin   int32
	force stemForce
}

// batch simulates one group of at most Lanes-1 faults.
type batch struct {
	cc     *cir.CC
	faults []fault.Fault
	// stems[id] is the accumulated stem-fault injection at node id; a
	// dense table indexed by NodeID keeps the per-gate, per-frame lookup
	// off the map path.
	stems []stemForce
	// branch[gi] lists the branch-fault injections at gate gi's pins.
	branch [][]branchForce
	vals  []VV
	state []VV
}

// newBatch prepares injection tables for a fault group.
func newBatch(c *netlist.Circuit, faults []fault.Fault) (*batch, error) {
	if len(faults) > Lanes-1 {
		return nil, fmt.Errorf("bitsim: batch of %d faults exceeds %d lanes", len(faults), Lanes-1)
	}
	cc := cir.For(c)
	b := &batch{
		cc:     cc,
		faults: faults,
		stems:  make([]stemForce, cc.NumNodes()),
		branch: make([][]branchForce, cc.NumGates()),
		vals:   make([]VV, cc.NumNodes()),
		state:  make([]VV, cc.NumFFs()),
	}
	for k, f := range faults {
		mask := uint64(1) << uint(k+1)
		if f.IsStem() {
			s := &b.stems[f.Node]
			if f.Stuck == logic.One {
				s.maskOne |= mask
			} else {
				s.maskZero |= mask
			}
			continue
		}
		var force stemForce
		if f.Stuck == logic.One {
			force.maskOne = mask
		} else {
			force.maskZero = mask
		}
		b.branch[f.Gate] = append(b.branch[f.Gate], branchForce{pin: f.Pin, force: force})
	}
	return b, nil
}

// read returns the value gate gi sees on pin pi of node id.
func (b *batch) read(gi netlist.GateID, pi int32, id netlist.NodeID) VV {
	v := b.vals[id]
	for _, bf := range b.branch[gi] {
		if bf.pin == pi {
			v = bf.force.apply(v)
		}
	}
	return v
}

// evalGate streams gate gi's observed inputs through the shared
// lane-wise fold, keeping the accumulator in registers rather than
// bouncing the gathered vectors through memory.
func (b *batch) evalGate(gi netlist.GateID) VV {
	cc := b.cc
	fo := cir.StartVV(cc.Ops[gi])
	lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
	for k := lo; k < hi; k++ {
		fo.Add(b.read(gi, k-lo, cc.Fanin[k]))
	}
	return fo.Result()
}

// Batches returns the number of (Lanes-1)-fault batches needed to
// simulate n faults.
func Batches(n int) int {
	return (n + Lanes - 2) / (Lanes - 1)
}

// Stats counts the work of one whole-list bit-parallel run. Counters are
// accumulated atomically so parallel batches share one Stats value.
type Stats struct {
	// Batches is the number of 63-fault batches simulated.
	Batches int64 `json:"batches"`
	// Frames is the number of time frames actually evaluated across all
	// batches; SavedFrames counts frames skipped because every fault lane
	// of a batch was already resolved (the bit-parallel analogue of fault
	// dropping).
	Frames      int64 `json:"frames"`
	SavedFrames int64 `json:"saved_frames"`
}

// add folds one batch's frame counts into s.
func (s *Stats) add(frames, saved int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Batches, 1)
	atomic.AddInt64(&s.Frames, frames)
	atomic.AddInt64(&s.SavedFrames, saved)
}

// Run simulates the test sequence for every fault (in batches of 63),
// returning per-fault first-detection results identical to the serial
// simulator's seqsim.RunFaults.
func Run(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault) ([]seqsim.FaultResult, error) {
	results, _, err := RunStats(c, T, faults, 1)
	return results, err
}

// RunParallel is Run with the independent 63-fault batches distributed
// over up to `workers` goroutines. Results are identical to Run.
func RunParallel(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, workers int) ([]seqsim.FaultResult, error) {
	results, _, err := RunStats(c, T, faults, workers)
	return results, err
}

// RunStats is the instrumented entry point behind Run and RunParallel:
// it simulates the whole list over up to `workers` goroutines and
// additionally reports the work performed.
func RunStats(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, workers int) ([]seqsim.FaultResult, Stats, error) {
	var st Stats
	nBatches := Batches(len(faults))
	if workers > nBatches {
		workers = nBatches
	}
	results := make([]seqsim.FaultResult, len(faults))
	if workers < 2 {
		for start := 0; start < len(faults); start += Lanes - 1 {
			end := min(start+Lanes-1, len(faults))
			if err := runGroup(c, T, faults[start:end], results[start:end], &st); err != nil {
				return nil, st, err
			}
		}
		return results, st, nil
	}
	errs := make([]error, workers)
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				bi := int(atomic.AddInt64(&next, 1))
				if bi >= nBatches {
					return
				}
				start := bi * (Lanes - 1)
				end := min(start+Lanes-1, len(faults))
				if err := runGroup(c, T, faults[start:end], results[start:end], &st); err != nil {
					errs[w] = err
					// Drain the pool: push the shared index past the end so
					// idle workers stop claiming batches.
					atomic.StoreInt64(&next, int64(nBatches))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return results, st, nil
}

// runGroup simulates one batch of at most Lanes-1 faults.
func runGroup(c *netlist.Circuit, T seqsim.Sequence, group []fault.Fault, results []seqsim.FaultResult, st *Stats) error {
	b, err := newBatch(c, group)
	if err != nil {
		return err
	}
	return b.run(T, results, st)
}

// run simulates the batch and fills results (one per fault lane),
// accumulating frame counts into st (nil-safe).
func (b *batch) run(T seqsim.Sequence, results []seqsim.FaultResult, st *Stats) error {
	cc := b.cc
	for k := range results {
		results[k] = seqsim.FaultResult{Fault: b.faults[k]}
	}
	// Initial state: X everywhere, with stem faults on Q nodes injected
	// when the state is loaded each frame.
	for i := range b.state {
		b.state[i] = VV{}
	}
	// allFaults masks the occupied fault lanes; once every one is
	// resolved the remaining frames cannot change any result (the serial
	// simulator drops faults the same way).
	var allFaults uint64
	for k := range results {
		allFaults |= 2 << uint(k)
	}
	resolved := uint64(0)
	for u, pat := range T {
		if len(pat) != cc.NumInputs() {
			return fmt.Errorf("bitsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		for i, id := range cc.Inputs {
			b.vals[id] = b.stems[id].apply(cir.Broadcast(pat[i]))
		}
		for i, q := range cc.FFQ {
			b.vals[q] = b.stems[q].apply(b.state[i])
		}
		for _, gi := range cc.Order {
			out := cc.GOut[gi]
			b.vals[out] = b.stems[out].apply(b.evalGate(gi))
		}
		// Detections: lane 0 is the fault-free machine.
		for j, id := range cc.Outputs {
			v := b.vals[id]
			var detected uint64
			switch v.Lane(0) {
			case logic.One:
				detected = v.Zero
			case logic.Zero:
				detected = v.One
			default:
				continue
			}
			detected &^= resolved | 1
			for detected != 0 {
				k := uint(bits.TrailingZeros64(detected))
				detected &^= 1 << k
				resolved |= 1 << k
				results[k-1].Detected = true
				results[k-1].At = seqsim.Detection{Time: u, Output: j}
			}
		}
		if resolved == allFaults {
			// Early exit: the remaining frames cannot change any result.
			st.add(int64(u+1), int64(len(T)-u-1))
			return nil
		}
		// Latch the next state, observing stem faults on Q nodes.
		for i, q := range cc.FFQ {
			b.state[i] = b.stems[q].apply(b.vals[cc.FFD[i]])
		}
	}
	st.add(int64(len(T)), 0)
	return nil
}
