// Package bitsim implements bit-parallel three-valued fault simulation:
// 255 faulty machines plus the fault-free machine are simulated
// simultaneously, one per bit lane, using the classic two-word encoding
// of three-valued values widened to [4]uint64 words (cir.VV4). This is
// the standard single-fault-propagation speed-up the paper sets aside
// ("we do not consider methods to speed up the simulation process"); it
// accelerates the conventional-simulation stage and is validated
// lane-for-lane against the serial simulator.
//
// The circuit structure and the lane-wise gate semantics come from the
// compiled IR (internal/cir): the frame loop walks the CSR arrays and
// every gate evaluates the cir.VV4 fold semantics, inlined over only
// the words that hold occupied lanes (partial batches narrow to one or
// two words). What stays here is fault injection — the dense per-node
// stem table and per-gate branch table are batch-specific (each batch
// carries a different 255-fault lane assignment), not circuit
// structure.
package bitsim

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/xtrace"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// Lanes is the number of machines per batch: lane 0 is fault-free and
// the remaining lanes carry one fault each.
const Lanes = cir.Lanes4

// VV is the 256-lane three-valued vector (see cir.VV4 for the encoding).
type VV = cir.VV4

// laneWords is the number of uint64 words backing one VV.
const laneWords = 4

// stemForce accumulates per-node stem-fault injections.
type stemForce struct {
	maskOne  [laneWords]uint64 // lanes stuck at 1
	maskZero [laneWords]uint64 // lanes stuck at 0
	any      bool
}

// set marks lane k stuck at v.
func (s *stemForce) set(k uint, v logic.Val) {
	w, bit := k>>6, uint64(1)<<(k&63)
	if v == logic.One {
		s.maskOne[w] |= bit
	} else {
		s.maskZero[w] |= bit
	}
	s.any = true
}

// apply injects the stem faults into a node value.
func (s *stemForce) apply(v VV) VV {
	if !s.any {
		return v
	}
	for w := 0; w < laneWords; w++ {
		mask := s.maskOne[w] | s.maskZero[w]
		v.One[w] = v.One[w]&^mask | s.maskOne[w]
		v.Zero[w] = v.Zero[w]&^mask | s.maskZero[w]
	}
	return v
}

// branchForce is one branch-fault injection at a gate input pin.
type branchForce struct {
	pin   int32
	force stemForce
}

// batch simulates one group of at most Lanes-1 faults.
type batch struct {
	cc     *cir.CC
	faults []fault.Fault
	// stems[id] is the accumulated stem-fault injection at node id; a
	// dense table indexed by NodeID keeps the per-gate, per-frame lookup
	// off the map path.
	stems []stemForce
	// branch[gi] lists the branch-fault injections at gate gi's pins.
	branch [][]branchForce
	vals   []VV
	state  []VV
}

// newBatch prepares injection tables for a fault group.
func newBatch(c *netlist.Circuit, faults []fault.Fault) (*batch, error) {
	if len(faults) > Lanes-1 {
		return nil, fmt.Errorf("bitsim: batch of %d faults exceeds %d lanes", len(faults), Lanes-1)
	}
	cc := cir.For(c)
	b := &batch{
		cc:     cc,
		faults: faults,
		stems:  make([]stemForce, cc.NumNodes()),
		branch: make([][]branchForce, cc.NumGates()),
		vals:   make([]VV, cc.NumNodes()),
		state:  make([]VV, cc.NumFFs()),
	}
	for k, f := range faults {
		if f.IsStem() {
			b.stems[f.Node].set(uint(k+1), f.Stuck)
			continue
		}
		var force stemForce
		force.set(uint(k+1), f.Stuck)
		b.branch[f.Gate] = append(b.branch[f.Gate], branchForce{pin: f.Pin, force: force})
	}
	return b, nil
}

// read returns the value gate gi sees on pin pi of node id.
func (b *batch) read(gi netlist.GateID, pi int32, id netlist.NodeID) VV {
	v := b.vals[id]
	for i := range b.branch[gi] {
		if bf := &b.branch[gi][i]; bf.pin == pi {
			v = bf.force.apply(v)
		}
	}
	return v
}

// readPin is batch.read for the inlined gate fold in run: when any of
// the gate's branch injections sits on pin pi, the patched value is
// built in *tmp and returned; otherwise the unpatched in passes through.
func readPin(brs []branchForce, pi int32, in *VV, tmp *VV) *VV {
	patched := false
	for i := range brs {
		if bf := &brs[i]; bf.pin == pi {
			if !patched {
				*tmp = *in
				patched = true
			}
			*tmp = bf.force.apply(*tmp)
		}
	}
	if !patched {
		return in
	}
	return tmp
}

// evalGate streams gate gi's observed inputs through the shared
// lane-wise fold. run inlines the same semantics over the live words;
// evalGate is retained as the readable reference implementation the
// per-lane gate property test checks against logic.Eval (the inlined
// loop is itself checked lane-for-lane against the serial simulator by
// the whole-run cross-check tests).
func (b *batch) evalGate(gi netlist.GateID) VV {
	cc := b.cc
	fo := cir.StartVV4(cc.Ops[gi])
	lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
	for k := lo; k < hi; k++ {
		fo.Add(b.read(gi, k-lo, cc.Fanin[k]))
	}
	return fo.Result()
}

// Batches returns the number of (Lanes-1)-fault batches needed to
// simulate n faults.
func Batches(n int) int {
	return (n + Lanes - 2) / (Lanes - 1)
}

// laneSet is a 256-bit lane membership mask.
type laneSet [laneWords]uint64

// add marks lane k.
func (m *laneSet) add(k uint) { m[k>>6] |= 1 << (k & 63) }

// Stats counts the work of one whole-list bit-parallel run. Counters are
// accumulated atomically so parallel batches share one Stats value.
type Stats struct {
	// Batches is the number of 255-fault batches simulated.
	Batches int64 `json:"batches"`
	// Frames is the number of time frames actually evaluated across all
	// batches; SavedFrames counts frames skipped because every fault lane
	// of a batch was already resolved (the bit-parallel analogue of fault
	// dropping).
	Frames      int64 `json:"frames"`
	SavedFrames int64 `json:"saved_frames"`
}

// add folds one batch's frame counts into s.
func (s *Stats) add(frames, saved int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Batches, 1)
	atomic.AddInt64(&s.Frames, frames)
	atomic.AddInt64(&s.SavedFrames, saved)
}

// Run simulates the test sequence for every fault (in batches of 255),
// returning per-fault first-detection results identical to the serial
// simulator's seqsim.RunFaults.
func Run(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault) ([]seqsim.FaultResult, error) {
	results, _, err := RunStats(c, T, faults, 1)
	return results, err
}

// RunParallel is Run with the independent 255-fault batches distributed
// over up to `workers` goroutines. Results are identical to Run.
func RunParallel(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, workers int) ([]seqsim.FaultResult, error) {
	results, _, err := RunStats(c, T, faults, workers)
	return results, err
}

// RunStats is the instrumented entry point behind Run and RunParallel:
// it simulates the whole list over up to `workers` goroutines and
// additionally reports the work performed.
func RunStats(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, workers int) ([]seqsim.FaultResult, Stats, error) {
	return RunStatsTraced(c, T, faults, workers, Trace{})
}

// Trace carries the optional span instrumentation of a bit-parallel
// run: each 255-fault batch becomes one span keyed by its batch index
// (deterministic IDs regardless of worker count), parented under the
// caller's prescreen-stage span. The zero Trace disables spans.
type Trace struct {
	Tracer *xtrace.Tracer
	Parent xtrace.SpanID
}

// RunStatsTraced is RunStats with per-batch span instrumentation.
func RunStatsTraced(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault, workers int, tr Trace) ([]seqsim.FaultResult, Stats, error) {
	var st Stats
	nBatches := Batches(len(faults))
	if workers > nBatches {
		workers = nBatches
	}
	results := make([]seqsim.FaultResult, len(faults))
	if workers < 2 {
		buf := tr.Tracer.NewTrack("prescreen")
		defer buf.Flush()
		for start := 0; start < len(faults); start += Lanes - 1 {
			end := min(start+Lanes-1, len(faults))
			sp := buf.Begin("batch", tr.Parent, uint64(start/(Lanes-1)))
			buf.AttrInt(sp, "faults", int64(end-start))
			err := runGroup(c, T, faults[start:end], results[start:end], &st)
			buf.End(sp)
			if err != nil {
				return nil, st, err
			}
		}
		return results, st, nil
	}
	errs := make([]error, workers)
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf *xtrace.Buffer
			if tr.Tracer != nil {
				buf = tr.Tracer.NewTrack(fmt.Sprintf("prescreen %02d", w))
				defer buf.Flush()
			}
			for {
				bi := int(atomic.AddInt64(&next, 1))
				if bi >= nBatches {
					return
				}
				start := bi * (Lanes - 1)
				end := min(start+Lanes-1, len(faults))
				sp := buf.Begin("batch", tr.Parent, uint64(bi))
				buf.AttrInt(sp, "faults", int64(end-start))
				err := runGroup(c, T, faults[start:end], results[start:end], &st)
				buf.End(sp)
				if err != nil {
					errs[w] = err
					// Drain the pool: push the shared index past the end so
					// idle workers stop claiming batches.
					atomic.StoreInt64(&next, int64(nBatches))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return results, st, nil
}

// runGroup simulates one batch of at most Lanes-1 faults.
func runGroup(c *netlist.Circuit, T seqsim.Sequence, group []fault.Fault, results []seqsim.FaultResult, st *Stats) error {
	b, err := newBatch(c, group)
	if err != nil {
		return err
	}
	return b.run(T, results, st)
}

// run simulates the batch and fills results (one per fault lane),
// accumulating frame counts into st (nil-safe).
func (b *batch) run(T seqsim.Sequence, results []seqsim.FaultResult, st *Stats) error {
	cc := b.cc
	for k := range results {
		results[k] = seqsim.FaultResult{Fault: b.faults[k]}
	}
	// Initial state: X everywhere, with stem faults on Q nodes injected
	// when the state is loaded each frame.
	for i := range b.state {
		b.state[i] = VV{}
	}
	// allFaults masks the occupied fault lanes; once every one is
	// resolved the remaining frames cannot change any result (the serial
	// simulator drops faults the same way).
	var allFaults, resolved laneSet
	for k := range results {
		allFaults.add(uint(k + 1))
	}
	// Lanes above len(faults) are never occupied, so a partial batch
	// (the tail of every fault list) evaluates only the words that hold
	// lanes. Words at and above nw keep stale frame values; nothing
	// below reads them — detection and the fold loops stop at nw, and
	// the full-width state latch only carries them back into equally
	// unread words.
	const allBits = ^uint64(0)
	nw := (len(results) + 1 + 63) >> 6
	for u, pat := range T {
		if len(pat) != cc.NumInputs() {
			return fmt.Errorf("bitsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		for i, id := range cc.Inputs {
			b.vals[id] = b.stems[id].apply(cir.Broadcast4(pat[i]))
		}
		for i, q := range cc.FFQ {
			b.vals[q] = b.stems[q].apply(b.state[i])
		}
		// The gate fold is inlined over the live words — this loop is
		// the hot core of the whole prescreen, and the shared VV4Fold's
		// per-gate constructor and per-fanin call overhead dominate it
		// otherwise. Branch-fault pins are patched into a local copy of
		// the read value, mirroring batch.read.
		var tmp VV
		for _, gi := range cc.Order {
			op := cc.Ops[gi]
			lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
			brs := b.branch[gi]
			var one, zero [laneWords]uint64
			switch op {
			case logic.And, logic.Nand:
				for w := 0; w < nw; w++ {
					one[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &b.vals[cc.Fanin[k]]
					if len(brs) != 0 {
						in = readPin(brs, k-lo, in, &tmp)
					}
					for w := 0; w < nw; w++ {
						one[w] &= in.One[w]
						zero[w] |= in.Zero[w]
					}
				}
			case logic.Xor, logic.Xnor:
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &b.vals[cc.Fanin[k]]
					if len(brs) != 0 {
						in = readPin(brs, k-lo, in, &tmp)
					}
					for w := 0; w < nw; w++ {
						o := one[w]&in.Zero[w] | zero[w]&in.One[w]
						zero[w] = one[w]&in.One[w] | zero[w]&in.Zero[w]
						one[w] = o
					}
				}
			case logic.Const0:
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
			case logic.Const1:
				for w := 0; w < nw; w++ {
					one[w] = allBits
				}
			default: // Or, Nor, Buf, Not: the or-fold
				for w := 0; w < nw; w++ {
					zero[w] = allBits
				}
				for k := lo; k < hi; k++ {
					in := &b.vals[cc.Fanin[k]]
					if len(brs) != 0 {
						in = readPin(brs, k-lo, in, &tmp)
					}
					for w := 0; w < nw; w++ {
						one[w] |= in.One[w]
						zero[w] &= in.Zero[w]
					}
				}
			}
			out := cc.GOut[gi]
			v := &b.vals[out]
			if op != logic.Const0 && op != logic.Const1 && op.Inverting() {
				one, zero = zero, one
			}
			if st := &b.stems[out]; st.any {
				for w := 0; w < nw; w++ {
					mask := st.maskOne[w] | st.maskZero[w]
					v.One[w] = one[w]&^mask | st.maskOne[w]
					v.Zero[w] = zero[w]&^mask | st.maskZero[w]
				}
			} else {
				for w := 0; w < nw; w++ {
					v.One[w], v.Zero[w] = one[w], zero[w]
				}
			}
		}
		// Detections: lane 0 is the fault-free machine.
		for j, id := range cc.Outputs {
			v := b.vals[id]
			var mism *[laneWords]uint64
			switch v.Lane(0) {
			case logic.One:
				mism = &v.Zero
			case logic.Zero:
				mism = &v.One
			default:
				continue
			}
			for w := 0; w < nw; w++ {
				detected := mism[w] &^ resolved[w]
				if w == 0 {
					detected &^= 1 // lane 0 is the fault-free machine
				}
				for detected != 0 {
					bit := uint(bits.TrailingZeros64(detected))
					detected &^= 1 << bit
					resolved[w] |= 1 << bit
					k := uint(w)<<6 + bit
					results[k-1].Detected = true
					results[k-1].At = seqsim.Detection{Time: u, Output: j}
				}
			}
		}
		if resolved == allFaults {
			// Early exit: the remaining frames cannot change any result.
			st.add(int64(u+1), int64(len(T)-u-1))
			return nil
		}
		// Latch the next state, observing stem faults on Q nodes.
		for i, q := range cc.FFQ {
			b.state[i] = b.stems[q].apply(b.vals[cc.FFD[i]])
		}
	}
	st.add(int64(len(T)), 0)
	return nil
}
