package bitsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/cir"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func TestVVHelpers(t *testing.T) {
	one := cir.Broadcast(logic.One)
	zero := cir.Broadcast(logic.Zero)
	x := cir.Broadcast(logic.X)
	if one.Lane(0) != logic.One || zero.Lane(63) != logic.Zero || x.Lane(5) != logic.X {
		t.Fatal("broadcast/lane wrong")
	}
	if one.Not().Lane(3) != logic.Zero {
		t.Fatal("not wrong")
	}
	if cir.And2(one, x).Lane(0) != logic.X || cir.And2(zero, x).Lane(0) != logic.Zero {
		t.Fatal("and2 three-valued semantics wrong")
	}
	if cir.Or2(one, x).Lane(0) != logic.One || cir.Or2(zero, x).Lane(0) != logic.X {
		t.Fatal("or2 three-valued semantics wrong")
	}
	if cir.Xor2(one, x).Lane(0) != logic.X || cir.Xor2(one, zero).Lane(0) != logic.One {
		t.Fatal("xor2 three-valued semantics wrong")
	}
}

func TestBatchTooLarge(t *testing.T) {
	c := circuits.S27()
	faults := make([]fault.Fault, Lanes)
	if _, err := newBatch(c, faults); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestPatternWidthChecked(t *testing.T) {
	c := circuits.S27()
	T := seqsim.Sequence{{logic.One}}
	if _, err := Run(c, T, fault.CollapsedList(c)); err == nil {
		t.Fatal("narrow pattern accepted")
	}
}

// gateEvalReference cross-checks evalGate against logic.Eval lane by lane
// for random VV inputs.
func TestGateEvalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for trial := 0; trial < 200; trial++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not && op != logic.Buf {
			n = 2 + rng.Intn(3)
		}
		// Build a tiny circuit with one gate.
		b := netlist.NewBuilder("g1")
		ins := make([]netlist.NodeID, n)
		for i := range ins {
			ins[i] = b.Input(fmt.Sprintf("i%d", i))
		}
		b.Gate(op, "y", ins...)
		b.Output("y")
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		bt, err := newBatch(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Random lane values per input.
		scalar := make([][]logic.Val, n)
		for i := range ins {
			scalar[i] = make([]logic.Val, Lanes)
			var vv VV
			for k := 0; k < Lanes; k++ {
				v := logic.Val(rng.Intn(3))
				scalar[i][k] = v
				vv.SetLane(uint(k), v)
			}
			bt.vals[ins[i]] = vv
		}
		out := bt.evalGate(0)
		in := make([]logic.Val, n)
		for k := 0; k < Lanes; k++ {
			for i := range in {
				in[i] = scalar[i][k]
			}
			want := logic.Eval(op, in)
			if got := out.Lane(uint(k)); got != want {
				t.Fatalf("op %v lane %d: got %v, want %v (inputs %v)", op, k, got, want, in)
			}
		}
	}
}

// randomCircuit mirrors the helper used across packages.
func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 2 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

// TestRunMatchesSerial is the central property: bit-parallel results must
// equal the serial simulator's fault by fault, including detection sites.
func TestRunMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 0
	for trials < 20 {
		c, err := randomCircuit(rng, 3, 4, 10+rng.Intn(25))
		if err != nil {
			continue
		}
		trials++
		T := make(seqsim.Sequence, 8)
		for u := range T {
			p := make(seqsim.Pattern, c.NumInputs())
			for i := range p {
				p[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			T[u] = p
		}
		faults := fault.List(c) // full list: exercises branch faults too
		fast, err := Run(c, T, faults)
		if err != nil {
			t.Fatal(err)
		}
		s := seqsim.New(c)
		good, err := s.Run(T, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := s.RunFaults(T, good, faults)
		if err != nil {
			t.Fatal(err)
		}
		for k := range faults {
			if fast[k].Detected != slow[k].Detected {
				t.Fatalf("trial %d fault %s: bitsim detected=%v serial=%v",
					trials, faults[k].Name(c), fast[k].Detected, slow[k].Detected)
			}
			if fast[k].Detected && fast[k].At != slow[k].At {
				t.Fatalf("trial %d fault %s: bitsim at %+v serial at %+v",
					trials, faults[k].Name(c), fast[k].At, slow[k].At)
			}
		}
	}
}

func TestRunS27AllFaults(t *testing.T) {
	c := circuits.S27()
	T := make(seqsim.Sequence, 40)
	rng := rand.New(rand.NewSource(9))
	for u := range T {
		p := make(seqsim.Pattern, 4)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	faults := fault.List(c)
	fast, err := Run(c, T, faults)
	if err != nil {
		t.Fatal(err)
	}
	s := seqsim.New(c)
	good, _ := s.Run(T, nil, true)
	slow, err := s.RunFaults(T, good, faults)
	if err != nil {
		t.Fatal(err)
	}
	for k := range faults {
		if fast[k].Detected != slow[k].Detected {
			t.Fatalf("fault %s differs", faults[k].Name(c))
		}
	}
}

// TestManyBatches covers the multi-batch path (more than 255 faults).
func TestManyBatches(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
	prev := "a"
	for i := 0; i < 120; i++ {
		src += fmt.Sprintf("n%d = XOR(%s, b)\n", i, prev)
		prev = fmt.Sprintf("n%d", i)
	}
	src += fmt.Sprintf("y = BUFF(%s)\n", prev)
	c, err := bench.ParseString("chain", src)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.List(c)
	if len(faults) <= Lanes {
		t.Fatalf("need more than %d faults, got %d", Lanes, len(faults))
	}
	T := seqsim.Sequence{{logic.One, logic.Zero}, {logic.Zero, logic.One}, {logic.One, logic.One}}
	fast, err := Run(c, T, faults)
	if err != nil {
		t.Fatal(err)
	}
	s := seqsim.New(c)
	good, _ := s.Run(T, nil, true)
	slow, err := s.RunFaults(T, good, faults)
	if err != nil {
		t.Fatal(err)
	}
	for k := range faults {
		if fast[k].Detected != slow[k].Detected || (fast[k].Detected && fast[k].At != slow[k].At) {
			t.Fatalf("fault %s differs across batches", faults[k].Name(c))
		}
	}
}

func TestBatches(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 255: 1, 256: 2, 510: 2, 511: 3}
	for n, want := range cases {
		if got := Batches(n); got != want {
			t.Errorf("Batches(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestRunParallelMatchesRun checks the sharded batch runner against the
// serial batch loop on a multi-batch fault list.
func TestRunParallelMatchesRun(t *testing.T) {
	c := circuits.S27()
	T := make(seqsim.Sequence, 24)
	rng := rand.New(rand.NewSource(41))
	for u := range T {
		p := make(seqsim.Pattern, 4)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	// Repeat the full list so several batches are needed.
	var faults []fault.Fault
	for i := 0; i < 16; i++ {
		faults = append(faults, fault.List(c)...)
	}
	if Batches(len(faults)) < 2 {
		t.Fatalf("need at least 2 batches, got %d", Batches(len(faults)))
	}
	serial, err := Run(c, T, faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		par, err := RunParallel(c, T, faults, workers)
		if err != nil {
			t.Fatal(err)
		}
		for k := range faults {
			if par[k] != serial[k] {
				t.Fatalf("workers=%d fault %d: parallel %+v != serial %+v",
					workers, k, par[k], serial[k])
			}
		}
	}
	// Errors propagate out of the pool.
	bad := append(seqsim.Sequence{}, T...)
	bad[len(bad)-1] = bad[len(bad)-1][:2]
	if _, err := RunParallel(c, bad, faults, 4); err == nil {
		t.Fatal("broken sequence not reported")
	}
}
