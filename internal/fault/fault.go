// Package fault implements the single stuck-at fault model for gate-level
// sequential circuits: fault sites (signal stems and fanout branches),
// fault list generation, and structural equivalence collapsing.
package fault

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Fault is a single stuck-at fault.
//
// A stem fault (Gate == netlist.NoGate) forces the value seen by every
// reader of Node — gate input pins, primary-output observation, and
// flip-flop D inputs — to Stuck.
//
// A branch fault (Gate >= 0) forces only the value seen by input pin Pin
// of Gate to Stuck; all other readers of Node see the true value. Branch
// faults are enumerated only for pins whose driving node has more than
// one reader, since a single-reader branch fault is indistinguishable
// from the stem fault.
type Fault struct {
	// Node is the faulty signal.
	Node netlist.NodeID
	// Gate is the reading gate for a branch fault, or netlist.NoGate.
	Gate netlist.GateID
	// Pin is the input position within Gate for a branch fault.
	Pin int32
	// Stuck is the stuck-at value, logic.Zero or logic.One.
	Stuck logic.Val
}

// IsStem reports whether f is a stem (whole-signal) fault.
func (f Fault) IsStem() bool { return f.Gate == netlist.NoGate }

// String renders the fault without circuit context, using raw IDs.
func (f Fault) String() string {
	if f.IsStem() {
		return fmt.Sprintf("n%d/SA%v", f.Node, f.Stuck)
	}
	return fmt.Sprintf("n%d->g%d.%d/SA%v", f.Node, f.Gate, f.Pin, f.Stuck)
}

// Name renders the fault with signal names from the circuit.
func (f Fault) Name(c *netlist.Circuit) string {
	if f.IsStem() {
		return fmt.Sprintf("%s/SA%v", c.NodeName(f.Node), f.Stuck)
	}
	return fmt.Sprintf("%s->%s.%d/SA%v",
		c.NodeName(f.Node), c.NodeName(c.Gates[f.Gate].Out), f.Pin, f.Stuck)
}

// SeenBy returns the value pin Input of gate g sees on node n when the
// true node value is v under fault f.
func (f Fault) SeenBy(g netlist.GateID, pin int32, n netlist.NodeID, v logic.Val) logic.Val {
	if f.Node == n && (f.IsStem() || (f.Gate == g && f.Pin == pin)) {
		return f.Stuck
	}
	return v
}

// Observed returns the value an observer that is not a gate pin (a primary
// output or a flip-flop D input) sees on node n when the true value is v.
// Only stem faults affect such observers.
func (f Fault) Observed(n netlist.NodeID, v logic.Val) logic.Val {
	if f.IsStem() && f.Node == n {
		return f.Stuck
	}
	return v
}

// StuckNode reports whether node n carries a stem fault under f, returning
// the stuck value.
func (f Fault) StuckNode(n netlist.NodeID) (logic.Val, bool) {
	if f.IsStem() && f.Node == n {
		return f.Stuck, true
	}
	return logic.X, false
}

// List enumerates the full (uncollapsed) single stuck-at fault list of c:
// two stem faults per signal node, and two branch faults per gate input
// pin whose driving node has more than one reader. The order is
// deterministic: stems by node ID, then branches by (gate, pin), each with
// stuck-at-0 before stuck-at-1.
func List(c *netlist.Circuit) []Fault {
	var faults []Fault
	for id := range c.Nodes {
		n := netlist.NodeID(id)
		faults = append(faults,
			Fault{Node: n, Gate: netlist.NoGate, Stuck: logic.Zero},
			Fault{Node: n, Gate: netlist.NoGate, Stuck: logic.One})
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		for pi, in := range g.In {
			if c.FanoutCount(in) > 1 {
				faults = append(faults,
					Fault{Node: in, Gate: netlist.GateID(gi), Pin: int32(pi), Stuck: logic.Zero},
					Fault{Node: in, Gate: netlist.GateID(gi), Pin: int32(pi), Stuck: logic.One})
			}
		}
	}
	return faults
}

// Collapse reduces a fault list by structural equivalence. Two faults are
// equivalent when every test detecting one detects the other; the classic
// single-gate rules are:
//
//   - BUF: input sa-v  ≡ output sa-v
//   - NOT: input sa-v  ≡ output sa-v̄
//   - AND: any input sa-0 ≡ output sa-0   NAND: any input sa-0 ≡ output sa-1
//   - OR:  any input sa-1 ≡ output sa-1   NOR:  any input sa-1 ≡ output sa-0
//
// The "input" fault of a gate pin is the branch fault at that pin when the
// driving node has multiple readers, and the driver's stem fault
// otherwise. Equivalence classes are computed by union-find; the
// representative kept is the fault that appears first in the input list,
// so the output is a deterministic sub-list of the input.
func Collapse(c *netlist.Circuit, faults []Fault) []Fault {
	index := make(map[Fault]int, len(faults))
	for i, f := range faults {
		index[f] = i
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the smaller index as representative.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	// inputFault returns the fault modeling "gate g sees value stuck at v
	// on pin pin", which is the branch fault when one exists in the list
	// and the driver stem fault otherwise.
	inputFault := func(g netlist.GateID, pin int32, n netlist.NodeID, v logic.Val) (int, bool) {
		if i, ok := index[Fault{Node: n, Gate: g, Pin: pin, Stuck: v}]; ok {
			return i, true
		}
		if c.FanoutCount(n) == 1 {
			if i, ok := index[Fault{Node: n, Gate: netlist.NoGate, Stuck: v}]; ok {
				return i, true
			}
		}
		return 0, false
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		var inVal, outVal logic.Val
		switch g.Op {
		case logic.Buf, logic.Not:
			for _, v := range []logic.Val{logic.Zero, logic.One} {
				ov := v
				if g.Op == logic.Not {
					ov = v.Not()
				}
				oi, ok1 := index[Fault{Node: g.Out, Gate: netlist.NoGate, Stuck: ov}]
				ii, ok2 := inputFault(netlist.GateID(gi), 0, g.In[0], v)
				if ok1 && ok2 {
					union(oi, ii)
				}
			}
			continue
		case logic.And:
			inVal, outVal = logic.Zero, logic.Zero
		case logic.Nand:
			inVal, outVal = logic.Zero, logic.One
		case logic.Or:
			inVal, outVal = logic.One, logic.One
		case logic.Nor:
			inVal, outVal = logic.One, logic.Zero
		default:
			continue // XOR/XNOR/constants: no structural equivalence
		}
		oi, ok := index[Fault{Node: g.Out, Gate: netlist.NoGate, Stuck: outVal}]
		if !ok {
			continue
		}
		for pi, in := range g.In {
			if ii, ok := inputFault(netlist.GateID(gi), int32(pi), in, inVal); ok {
				union(oi, ii)
			}
		}
	}
	var out []Fault
	for i, f := range faults {
		if find(i) == i {
			out = append(out, f)
		}
	}
	return out
}

// CollapsedList returns the equivalence-collapsed fault list of c.
func CollapsedList(c *netlist.Circuit) []Fault {
	return Collapse(c, List(c))
}
