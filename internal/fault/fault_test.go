package fault

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// chain: a -> NOT n1 -> NOT n2 -> output. Single fanout everywhere.
func chainCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString("chain", `
INPUT(a)
OUTPUT(n2)
n1 = NOT(a)
n2 = NOT(n1)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fan: a feeds two AND gates; y1 = AND(a,b), y2 = AND(a,c).
func fanCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString("fan", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
y1 = AND(a, b)
y2 = AND(a, c)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestListChain(t *testing.T) {
	c := chainCircuit(t)
	fs := List(c)
	// 3 nodes x 2 stems, no branches (all single fanout).
	if len(fs) != 6 {
		t.Fatalf("len(List) = %d, want 6", len(fs))
	}
	for _, f := range fs {
		if !f.IsStem() {
			t.Errorf("unexpected branch fault %v", f)
		}
	}
}

func TestListFanout(t *testing.T) {
	c := fanCircuit(t)
	fs := List(c)
	// 5 nodes x 2 stems + 2 branch pins on a x 2 = 14.
	if len(fs) != 14 {
		t.Fatalf("len(List) = %d, want 14", len(fs))
	}
	branches := 0
	a, _ := c.NodeByName("a")
	for _, f := range fs {
		if !f.IsStem() {
			branches++
			if f.Node != a {
				t.Errorf("branch fault on %s, want only on a", c.NodeName(f.Node))
			}
		}
	}
	if branches != 4 {
		t.Errorf("branch faults = %d, want 4", branches)
	}
}

func TestListDeterministic(t *testing.T) {
	c := fanCircuit(t)
	a := List(c)
	b := List(c)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs between runs", i)
		}
	}
}

func TestCollapseChain(t *testing.T) {
	c := chainCircuit(t)
	collapsed := Collapse(c, List(c))
	// a/0 = n1/1 = n2/0 and a/1 = n1/0 = n2/1: exactly 2 classes.
	if len(collapsed) != 2 {
		t.Fatalf("collapsed = %d faults, want 2: %v", len(collapsed), collapsed)
	}
}

func TestCollapseAnd(t *testing.T) {
	c, err := bench.ParseString("and2", `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	collapsed := Collapse(c, List(c))
	// Full list: 6. a/0 = b/0 = y/0 collapses 3 into 1: total 4.
	if len(collapsed) != 4 {
		t.Fatalf("collapsed = %d faults, want 4: %v", len(collapsed), collapsed)
	}
}

func TestCollapseNorWithBranches(t *testing.T) {
	c, err := bench.ParseString("norf", `
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
y1 = NOR(a, b)
y2 = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	full := List(c)
	collapsed := Collapse(c, full)
	// a has fanout 2, so branch faults exist at both reading pins.
	// Equivalences: branch(a->y1)/1 = b/1 = y1/0; branch(a->y2)/0 = y2/1;
	// branch(a->y2)/1 = y2/0.
	if len(collapsed) >= len(full) {
		t.Fatal("collapse did not reduce the list")
	}
	// The stem faults on a must survive (no equivalence across branches).
	a, _ := c.NodeByName("a")
	stems := 0
	for _, f := range collapsed {
		if f.IsStem() && f.Node == a {
			stems++
		}
	}
	if stems != 2 {
		t.Errorf("stem faults on a surviving = %d, want 2", stems)
	}
}

func TestCollapseIsSubsetAndDeterministic(t *testing.T) {
	c := fanCircuit(t)
	full := List(c)
	inFull := map[Fault]bool{}
	for _, f := range full {
		inFull[f] = true
	}
	col1 := Collapse(c, full)
	col2 := Collapse(c, full)
	if len(col1) != len(col2) {
		t.Fatal("collapse nondeterministic")
	}
	for i, f := range col1 {
		if !inFull[f] {
			t.Errorf("collapsed fault %v not in full list", f)
		}
		if col2[i] != f {
			t.Error("collapse order nondeterministic")
		}
	}
}

func TestSeenBy(t *testing.T) {
	c := fanCircuit(t)
	a, _ := c.NodeByName("a")
	y1, _ := c.NodeByName("y1")
	g1 := c.Nodes[y1].Driver
	stem := Fault{Node: a, Gate: netlist.NoGate, Stuck: logic.One}
	if stem.SeenBy(g1, 0, a, logic.Zero) != logic.One {
		t.Error("stem fault not seen by gate pin")
	}
	branch := Fault{Node: a, Gate: g1, Pin: 0, Stuck: logic.One}
	if branch.SeenBy(g1, 0, a, logic.Zero) != logic.One {
		t.Error("branch fault not seen at its own pin")
	}
	y2, _ := c.NodeByName("y2")
	g2 := c.Nodes[y2].Driver
	if branch.SeenBy(g2, 0, a, logic.Zero) != logic.Zero {
		t.Error("branch fault leaked to another gate")
	}
	if branch.SeenBy(g1, 1, a, logic.Zero) != logic.Zero {
		t.Error("branch fault leaked to another pin")
	}
}

func TestObserved(t *testing.T) {
	c := fanCircuit(t)
	y1, _ := c.NodeByName("y1")
	stem := Fault{Node: y1, Gate: netlist.NoGate, Stuck: logic.Zero}
	if stem.Observed(y1, logic.One) != logic.Zero {
		t.Error("stem fault not observed at PO")
	}
	g := c.Nodes[y1].Driver
	branch := Fault{Node: y1, Gate: g, Pin: 0, Stuck: logic.Zero}
	if branch.Observed(y1, logic.One) != logic.One {
		t.Error("branch fault wrongly observed at PO")
	}
}

func TestStuckNode(t *testing.T) {
	f := Fault{Node: 3, Gate: netlist.NoGate, Stuck: logic.One}
	if v, ok := f.StuckNode(3); !ok || v != logic.One {
		t.Error("StuckNode missed its own node")
	}
	if _, ok := f.StuckNode(4); ok {
		t.Error("StuckNode matched wrong node")
	}
	b := Fault{Node: 3, Gate: 0, Pin: 0, Stuck: logic.One}
	if _, ok := b.StuckNode(3); ok {
		t.Error("branch fault reported as stuck node")
	}
}

func TestNames(t *testing.T) {
	c := fanCircuit(t)
	a, _ := c.NodeByName("a")
	y1, _ := c.NodeByName("y1")
	g := c.Nodes[y1].Driver
	stem := Fault{Node: a, Gate: netlist.NoGate, Stuck: logic.Zero}
	if got := stem.Name(c); got != "a/SA0" {
		t.Errorf("stem Name = %q", got)
	}
	branch := Fault{Node: a, Gate: g, Pin: 0, Stuck: logic.One}
	if got := branch.Name(c); !strings.Contains(got, "a->y1.0/SA1") {
		t.Errorf("branch Name = %q", got)
	}
	if stem.String() == "" || branch.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestCollapsedListSmallerThanFull(t *testing.T) {
	c := chainCircuit(t)
	if len(CollapsedList(c)) >= len(List(c)) {
		t.Error("CollapsedList did not shrink the chain fault list")
	}
}
