package netlist

import (
	"testing"

	"repro/internal/logic"
)

// coneCircuit:
//
//	a, b inputs; q = DFF(d); n1 = AND(a, b); d = OR(n1, q);
//	n2 = NOT(q); output n2; orphan = AND(a, a) (dead logic).
func coneCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("cone")
	a := b.Input("a")
	bb := b.Input("b")
	q := b.FlipFlop("q", b.Signal("d"))
	n1 := b.Gate(logic.And, "n1", a, bb)
	b.Gate(logic.Or, "d", n1, q)
	b.Gate(logic.Not, "n2", q)
	b.Gate(logic.And, "orphan", a, a)
	b.Output("n2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ids(t *testing.T, c *Circuit, names ...string) []NodeID {
	t.Helper()
	out := make([]NodeID, len(names))
	for i, n := range names {
		id, ok := c.NodeByName(n)
		if !ok {
			t.Fatalf("node %s missing", n)
		}
		out[i] = id
	}
	return out
}

func TestFaninCone(t *testing.T) {
	c := coneCircuit(t)
	d := ids(t, c, "d")[0]
	cone := c.FaninCone(d)
	for _, name := range []string{"d", "n1", "a", "b", "q"} {
		if !cone[ids(t, c, name)[0]] {
			t.Errorf("fan-in cone of d should contain %s", name)
		}
	}
	for _, name := range []string{"n2", "orphan"} {
		if cone[ids(t, c, name)[0]] {
			t.Errorf("fan-in cone of d should not contain %s", name)
		}
	}
}

func TestFanoutCone(t *testing.T) {
	c := coneCircuit(t)
	q := ids(t, c, "q")[0]
	cone := c.FanoutCone(q)
	for _, name := range []string{"q", "d", "n2"} {
		if !cone[ids(t, c, name)[0]] {
			t.Errorf("fan-out cone of q should contain %s", name)
		}
	}
	for _, name := range []string{"a", "n1", "orphan"} {
		if cone[ids(t, c, name)[0]] {
			t.Errorf("fan-out cone of q should not contain %s", name)
		}
	}
}

func TestObservableNodes(t *testing.T) {
	c := coneCircuit(t)
	obs := c.ObservableNodes()
	// n2 observes q directly; q's D cone (d, n1, a, b) is observable
	// through the flip-flop.
	for _, name := range []string{"n2", "q", "d", "n1", "a", "b"} {
		if !obs[ids(t, c, name)[0]] {
			t.Errorf("%s should be observable", name)
		}
	}
	if obs[ids(t, c, "orphan")[0]] {
		t.Error("orphan should be unobservable")
	}
}

func TestControllableNodes(t *testing.T) {
	c := coneCircuit(t)
	ctrl := c.ControllableNodes()
	for _, name := range []string{"a", "b", "n1", "d", "q", "n2", "orphan"} {
		if !ctrl[ids(t, c, name)[0]] {
			t.Errorf("%s should be controllable", name)
		}
	}
}

func TestUncontrollableFeedback(t *testing.T) {
	// A pure feedback toggle has no input influence at all.
	b := NewBuilder("fb")
	b.Input("a")
	q := b.FlipFlop("q", b.Signal("d"))
	b.Gate(logic.Not, "d", q)
	b.GateNamed(logic.And, "o", "a", "q")
	b.Output("o")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctrl := c.ControllableNodes()
	if ctrl[ids(t, c, "q")[0]] || ctrl[ids(t, c, "d")[0]] {
		t.Error("pure feedback loop should be uncontrollable")
	}
	if !ctrl[ids(t, c, "o")[0]] {
		t.Error("o is driven by input a and should be controllable")
	}
	depth := c.SequentialDepth()
	if depth[0] != -1 {
		t.Errorf("uncontrollable flip-flop depth = %d, want -1", depth[0])
	}
}

func TestSequentialDepth(t *testing.T) {
	// q0's D sees inputs directly (depth 0); q1's D sees only q0
	// (depth 1); q2's D sees only q1 (depth 2).
	b := NewBuilder("depth")
	a := b.Input("a")
	q0 := b.FlipFlop("q0", b.Signal("d0"))
	q1 := b.FlipFlop("q1", b.Signal("d1"))
	q2 := b.FlipFlop("q2", b.Signal("d2"))
	b.Gate(logic.Buf, "d0", a)
	b.Gate(logic.Not, "d1", q0)
	b.Gate(logic.Not, "d2", q1)
	b.GateNamed(logic.Xor, "o", "q2", "a")
	b.Output("o")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = q0
	_ = q1
	_ = q2
	depth := c.SequentialDepth()
	if depth[0] != 0 || depth[1] != 1 || depth[2] != 2 {
		t.Errorf("depths = %v, want [0 1 2]", depth)
	}
}
