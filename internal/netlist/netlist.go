// Package netlist defines the gate-level model of a synchronous sequential
// circuit: named signal nodes, combinational gates over those nodes,
// primary inputs and outputs, and D flip-flops connecting a next-state
// node (the D input) to a present-state node (the Q output).
//
// The model follows the ISCAS-89 structural conventions: the circuit is a
// Huffman machine — a combinational network whose inputs are the primary
// inputs plus the flip-flop outputs (present-state variables y_i) and
// whose outputs are the primary outputs plus the flip-flop D inputs
// (next-state variables Y_i).
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// NodeID identifies a signal node within a circuit.
type NodeID int32

// GateID identifies a gate within a circuit.
type GateID int32

// NoGate marks the absence of a driving gate.
const NoGate GateID = -1

// NoNode marks an invalid node reference.
const NoNode NodeID = -1

// NodeKind classifies how a node is driven.
type NodeKind uint8

const (
	// KindInput is a primary input.
	KindInput NodeKind = iota
	// KindState is a flip-flop output (present-state variable).
	KindState
	// KindGate is a combinational gate output.
	KindGate
)

// String returns a short name for the kind.
func (k NodeKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindState:
		return "state"
	case KindGate:
		return "gate"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// Node is a named signal in the circuit.
type Node struct {
	Name string
	Kind NodeKind
	// Driver is the gate driving this node, or NoGate for inputs and
	// state nodes.
	Driver GateID
	// Fanouts lists every gate input pin reading this node.
	Fanouts []Pin
	// IsOutput reports whether the node is a primary output.
	IsOutput bool
	// FF is the index into Circuit.FFs of the flip-flop this node is the
	// present-state (Q) node of, or -1.
	FF int32
	// DOf is the index into Circuit.FFs of the flip-flop this node is the
	// next-state (D input) node of, or -1. A node can simultaneously feed
	// a flip-flop and combinational fanouts.
	DOf int32
}

// Pin identifies one input pin of one gate.
type Pin struct {
	Gate GateID
	// Input is the pin position within the gate's input list.
	Input int32
}

// Gate is a combinational gate.
type Gate struct {
	Op  logic.Op
	Out NodeID
	In  []NodeID
	// Level is the topological level of the gate: 1 + max level of its
	// input nodes, where input and state nodes have level 0.
	Level int32
}

// FF is a D flip-flop: on each clock edge the value at D becomes the value
// at Q (the present-state node) for the next time frame.
type FF struct {
	// Q is the present-state node (y_i).
	Q NodeID
	// D is the next-state node (Y_i).
	D NodeID
	// Init is the power-up value; logic.X for the standard unknown
	// power-up state used throughout the paper.
	Init logic.Val
}

// Circuit is an immutable compiled circuit. Build one with a Builder.
type Circuit struct {
	Name  string
	Nodes []Node
	Gates []Gate
	// Inputs lists the primary input nodes in declaration order.
	Inputs []NodeID
	// Outputs lists the primary output nodes in declaration order.
	Outputs []NodeID
	// FFs lists the flip-flops in declaration order.
	FFs []FF
	// Order lists all gates in ascending level order; simulating gates in
	// this order computes every node value in one pass.
	Order []GateID

	byName map[string]NodeID
	// MaxLevel is the largest gate level.
	MaxLevel int32
}

// NumNodes returns the number of signal nodes.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumFFs returns the number of flip-flops.
func (c *Circuit) NumFFs() int { return len(c.FFs) }

// NodeByName returns the node with the given name.
func (c *Circuit) NodeByName(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// NodeName returns the name of node id.
func (c *Circuit) NodeName(id NodeID) string { return c.Nodes[id].Name }

// FanoutCount returns the total number of readers of a node: gate input
// pins, plus one if the node is a primary output, plus one if it is a
// flip-flop D input. Nodes with FanoutCount > 1 have distinguishable
// fanout branches for fault modeling.
func (c *Circuit) FanoutCount(id NodeID) int {
	n := len(c.Nodes[id].Fanouts)
	if c.Nodes[id].IsOutput {
		n++
	}
	if c.Nodes[id].DOf >= 0 {
		n++
	}
	return n
}

// Stats summarizes circuit size.
type Stats struct {
	Name    string
	Inputs  int
	Outputs int
	FFs     int
	Gates   int
	Nodes   int
	Levels  int
}

// Stats returns size statistics for the circuit.
func (c *Circuit) Stats() Stats {
	return Stats{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		FFs:     len(c.FFs),
		Gates:   len(c.Gates),
		Nodes:   len(c.Nodes),
		Levels:  int(c.MaxLevel),
	}
}

// String renders the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PIs, %d POs, %d FFs, %d gates, %d levels",
		s.Name, s.Inputs, s.Outputs, s.FFs, s.Gates, s.Levels)
}

// Builder incrementally constructs a Circuit. Signals may be referenced
// before they are defined, which the ISCAS-89 textual format requires.
type Builder struct {
	name   string
	nodes  []Node
	gates  []Gate
	inputs []NodeID
	output []NodeID
	ffs    []FF
	byName map[string]NodeID
	// defined tracks which node IDs have received a driver/role.
	defined []bool
	err     error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]NodeID)}
}

// fail records the first construction error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("netlist %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Signal returns the node with the given name, creating an undefined
// placeholder if it does not exist yet.
func (b *Builder) Signal(name string) NodeID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{Name: name, Kind: KindGate, Driver: NoGate, FF: -1, DOf: -1})
	b.defined = append(b.defined, false)
	b.byName[name] = id
	return id
}

// define marks the node as having a role, failing on redefinition.
func (b *Builder) define(id NodeID, what string) {
	if b.defined[id] {
		b.fail("signal %q defined twice (%s)", b.nodes[id].Name, what)
		return
	}
	b.defined[id] = true
}

// Input declares a primary input and returns its node.
func (b *Builder) Input(name string) NodeID {
	id := b.Signal(name)
	b.define(id, "input")
	b.nodes[id].Kind = KindInput
	b.inputs = append(b.inputs, id)
	return id
}

// Output declares the named signal as a primary output. The signal may be
// defined before or after this call.
func (b *Builder) Output(name string) NodeID {
	id := b.Signal(name)
	if b.nodes[id].IsOutput {
		b.fail("signal %q declared OUTPUT twice", name)
	}
	b.nodes[id].IsOutput = true
	b.output = append(b.output, id)
	return id
}

// Gate defines the named signal as the output of a gate with operator op
// and the given input signals, returning the output node.
func (b *Builder) Gate(op logic.Op, name string, in ...NodeID) NodeID {
	out := b.Signal(name)
	b.define(out, op.String())
	if !op.Valid() {
		b.fail("gate %q has invalid operator", name)
		return out
	}
	if n := len(in); n < op.MinInputs() || (op.MaxInputs() >= 0 && n > op.MaxInputs()) {
		b.fail("gate %q: %v cannot take %d inputs", name, op, len(in))
		return out
	}
	g := GateID(len(b.gates))
	ins := make([]NodeID, len(in))
	copy(ins, in)
	b.gates = append(b.gates, Gate{Op: op, Out: out, In: ins})
	b.nodes[out].Kind = KindGate
	b.nodes[out].Driver = g
	return out
}

// GateNamed is a convenience wrapper taking input signal names.
func (b *Builder) GateNamed(op logic.Op, name string, in ...string) NodeID {
	ins := make([]NodeID, len(in))
	for i, s := range in {
		ins[i] = b.Signal(s)
	}
	return b.Gate(op, name, ins...)
}

// FlipFlop declares the named signal as the Q output of a D flip-flop
// whose D input is the signal d. The power-up state is unknown (X).
func (b *Builder) FlipFlop(name string, d NodeID) NodeID {
	q := b.Signal(name)
	b.define(q, "DFF")
	b.nodes[q].Kind = KindState
	idx := int32(len(b.ffs))
	b.ffs = append(b.ffs, FF{Q: q, D: d, Init: logic.X})
	b.nodes[q].FF = idx
	return q
}

// Build validates the circuit, computes fanouts and levels, and returns
// the immutable Circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Late binding of flip-flop D nodes: record DOf role.
	for i := range b.ffs {
		d := b.ffs[i].D
		if b.nodes[d].DOf >= 0 {
			b.fail("signal %q drives two flip-flops", b.nodes[d].Name)
			break
		}
		b.nodes[d].DOf = int32(i)
	}
	if b.err != nil {
		return nil, b.err
	}
	for id := range b.nodes {
		if !b.defined[id] {
			b.fail("signal %q referenced but never defined", b.nodes[id].Name)
			return nil, b.err
		}
	}
	if len(b.inputs) == 0 && len(b.ffs) == 0 {
		b.fail("circuit has neither inputs nor flip-flops")
		return nil, b.err
	}

	c := &Circuit{
		Name:    b.name,
		Nodes:   b.nodes,
		Gates:   b.gates,
		Inputs:  b.inputs,
		Outputs: b.output,
		FFs:     b.ffs,
		byName:  b.byName,
	}
	// Fanouts.
	for gi := range c.Gates {
		for pi, in := range c.Gates[gi].In {
			c.Nodes[in].Fanouts = append(c.Nodes[in].Fanouts, Pin{Gate: GateID(gi), Input: int32(pi)})
		}
	}
	// Levelize with Kahn's algorithm over gates; combinational cycles
	// (cycles not broken by a flip-flop) are an error.
	indeg := make([]int, len(c.Gates))
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].In {
			if c.Nodes[in].Kind == KindGate {
				indeg[gi]++
			}
		}
	}
	queue := make([]GateID, 0, len(c.Gates))
	for gi := range c.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
		}
	}
	order := make([]GateID, 0, len(c.Gates))
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		lvl := int32(0)
		for _, in := range c.Gates[g].In {
			n := &c.Nodes[in]
			if n.Kind == KindGate {
				if l := c.Gates[n.Driver].Level; l > lvl {
					lvl = l
				}
			}
		}
		c.Gates[g].Level = lvl + 1
		if c.Gates[g].Level > c.MaxLevel {
			c.MaxLevel = c.Gates[g].Level
		}
		order = append(order, g)
		for _, pin := range c.Nodes[c.Gates[g].Out].Fanouts {
			indeg[pin.Gate]--
			if indeg[pin.Gate] == 0 {
				queue = append(queue, pin.Gate)
			}
		}
	}
	if len(order) != len(c.Gates) {
		cyc := []string{}
		for gi := range c.Gates {
			if indeg[gi] > 0 {
				cyc = append(cyc, c.Nodes[c.Gates[gi].Out].Name)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("netlist %s: combinational cycle through %s",
			c.Name, strings.Join(cyc, ", "))
	}
	// Stable ascending-level order with deterministic tie-break by gate ID.
	sort.SliceStable(order, func(i, j int) bool {
		gi, gj := order[i], order[j]
		if c.Gates[gi].Level != c.Gates[gj].Level {
			return c.Gates[gi].Level < c.Gates[gj].Level
		}
		return gi < gj
	})
	c.Order = order
	return c, nil
}

// DOT renders the circuit in Graphviz dot format, for documentation and
// debugging.
func (c *Circuit) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", c.Name)
	for _, id := range c.Inputs {
		fmt.Fprintf(&sb, "  %q [shape=triangle,label=%q];\n", c.Nodes[id].Name, c.Nodes[id].Name)
	}
	for i, ff := range c.FFs {
		fmt.Fprintf(&sb, "  ff%d [shape=box,label=\"DFF %s\"];\n", i, c.Nodes[ff.Q].Name)
		fmt.Fprintf(&sb, "  %q -> ff%d [style=dashed];\n", c.Nodes[ff.D].Name, i)
		fmt.Fprintf(&sb, "  ff%d -> %q;\n", i, c.Nodes[ff.Q].Name)
		fmt.Fprintf(&sb, "  %q [shape=point];\n", c.Nodes[ff.Q].Name)
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		out := c.Nodes[g.Out].Name
		fmt.Fprintf(&sb, "  g%d [shape=ellipse,label=\"%v %s\"];\n", gi, g.Op, out)
		for _, in := range g.In {
			fmt.Fprintf(&sb, "  %q -> g%d;\n", c.Nodes[in].Name, gi)
		}
		fmt.Fprintf(&sb, "  g%d -> %q;\n", gi, out)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(&sb, "  out_%s [shape=invtriangle,label=%q];\n", c.Nodes[id].Name, c.Nodes[id].Name)
		fmt.Fprintf(&sb, "  %q -> out_%s;\n", c.Nodes[id].Name, c.Nodes[id].Name)
	}
	sb.WriteString("}\n")
	return sb.String()
}
