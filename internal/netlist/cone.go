package netlist

// Structural cone analysis: fan-in and fan-out cones within one time
// frame, and multi-frame reachability over the sequential (flip-flop)
// edges. Used by the synthetic-circuit generator's diagnostics, the
// testability estimator, and by tests that reason about which faults can
// structurally reach an observation point.

// FaninCone returns the set of nodes (as a boolean slice indexed by
// NodeID) on which the value of each root combinationally depends,
// including the roots themselves. Present-state and primary-input nodes
// terminate the traversal.
func (c *Circuit) FaninCone(roots ...NodeID) []bool {
	seen := make([]bool, c.NumNodes())
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if d := c.Nodes[n].Driver; d != NoGate {
			for _, in := range c.Gates[d].In {
				if !seen[in] {
					stack = append(stack, in)
				}
			}
		}
	}
	return seen
}

// FanoutCone returns the set of nodes whose value combinationally depends
// on any of the roots, including the roots themselves. The traversal
// stops at flip-flop D inputs (they affect the next frame, not this one).
func (c *Circuit) FanoutCone(roots ...NodeID) []bool {
	seen := make([]bool, c.NumNodes())
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, pin := range c.Nodes[n].Fanouts {
			out := c.Gates[pin.Gate].Out
			if !seen[out] {
				stack = append(stack, out)
			}
		}
	}
	return seen
}

// ObservableNodes returns the set of nodes that can structurally reach a
// primary output, possibly through flip-flops (i.e., in some later time
// frame). A fault on a node outside this set is undetectable by any test
// sequence.
func (c *Circuit) ObservableNodes() []bool {
	// Work backward: start from primary outputs, walk fan-in cones, and
	// cross flip-flops from Q back to D until a fixpoint.
	obs := make([]bool, c.NumNodes())
	frontier := append([]NodeID(nil), c.Outputs...)
	for len(frontier) > 0 {
		cone := c.FaninCone(frontier...)
		frontier = frontier[:0]
		for n := range cone {
			if cone[n] && !obs[n] {
				obs[n] = true
				if ff := c.Nodes[n].FF; ff >= 0 {
					d := c.FFs[ff].D
					if !obs[d] {
						frontier = append(frontier, d)
					}
				}
			}
		}
	}
	return obs
}

// ControllableNodes returns the set of nodes structurally reachable from
// the primary inputs or constants, possibly through flip-flops. Nodes
// outside this set depend only on the power-up state.
func (c *Circuit) ControllableNodes() []bool {
	ctrl := make([]bool, c.NumNodes())
	var frontier []NodeID
	frontier = append(frontier, c.Inputs...)
	for gi := range c.Gates {
		if len(c.Gates[gi].In) == 0 { // constants
			frontier = append(frontier, c.Gates[gi].Out)
		}
	}
	for len(frontier) > 0 {
		cone := c.FanoutCone(frontier...)
		frontier = frontier[:0]
		for n := range cone {
			if cone[n] && !ctrl[n] {
				ctrl[n] = true
				if ffIdx := c.Nodes[n].DOf; ffIdx >= 0 {
					q := c.FFs[ffIdx].Q
					if !ctrl[q] {
						frontier = append(frontier, q)
					}
				}
			}
		}
	}
	return ctrl
}

// SequentialDepth returns, for each flip-flop, the minimum number of
// flip-flops on a structural path from any primary input to its D node
// (0 when the D cone touches a primary input directly), or -1 when the
// flip-flop is not controllable from the inputs at all. It measures how
// many time frames are needed before input values can influence the
// flip-flop.
func (c *Circuit) SequentialDepth() []int {
	depth := make([]int, c.NumFFs())
	for i := range depth {
		depth[i] = -1
	}
	// nodeDepth is the best known depth at which a node becomes
	// input-driven.
	const inf = int(^uint(0) >> 1)
	nodeDepth := make([]int, c.NumNodes())
	for i := range nodeDepth {
		nodeDepth[i] = inf
	}
	var frontier []NodeID
	for _, in := range c.Inputs {
		nodeDepth[in] = 0
		frontier = append(frontier, in)
	}
	for round := 0; len(frontier) > 0; round++ {
		// Propagate through combinational logic at the current depth.
		cone := c.FanoutCone(frontier...)
		for n := range cone {
			if cone[n] && nodeDepth[n] > round {
				nodeDepth[n] = round
			}
		}
		// Cross flip-flops into the next frame.
		frontier = frontier[:0]
		for i, ff := range c.FFs {
			if nodeDepth[ff.D] == round && depth[i] < 0 {
				depth[i] = round
				if nodeDepth[ff.Q] > round+1 {
					nodeDepth[ff.Q] = round + 1
					frontier = append(frontier, ff.Q)
				}
			}
		}
	}
	return depth
}
