package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildToy builds a small valid circuit:
//
//	a, b inputs; q = DFF(d); n1 = AND(a, q); d = OR(n1, b); output n1.
func buildToy(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("toy")
	a := b.Input("a")
	bb := b.Input("b")
	q := b.FlipFlop("q", b.Signal("d"))
	n1 := b.Gate(logic.And, "n1", a, q)
	b.Gate(logic.Or, "d", n1, bb)
	b.Output("n1")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuildToy(t *testing.T) {
	c := buildToy(t)
	if c.NumInputs() != 2 || c.NumOutputs() != 1 || c.NumFFs() != 1 || c.NumGates() != 2 {
		t.Fatalf("wrong counts: %+v", c.Stats())
	}
	if c.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", c.NumNodes())
	}
}

func TestNodeByName(t *testing.T) {
	c := buildToy(t)
	id, ok := c.NodeByName("n1")
	if !ok || c.NodeName(id) != "n1" {
		t.Fatal("NodeByName failed for n1")
	}
	if _, ok := c.NodeByName("nope"); ok {
		t.Fatal("NodeByName found nonexistent node")
	}
}

func TestNodeRoles(t *testing.T) {
	c := buildToy(t)
	q, _ := c.NodeByName("q")
	d, _ := c.NodeByName("d")
	a, _ := c.NodeByName("a")
	n1, _ := c.NodeByName("n1")
	if c.Nodes[q].Kind != KindState || c.Nodes[q].FF != 0 {
		t.Error("q should be state node of FF 0")
	}
	if c.Nodes[d].DOf != 0 {
		t.Error("d should be D input of FF 0")
	}
	if c.Nodes[a].Kind != KindInput {
		t.Error("a should be input")
	}
	if c.Nodes[n1].Kind != KindGate || !c.Nodes[n1].IsOutput {
		t.Error("n1 should be a gate-driven primary output")
	}
}

func TestLevels(t *testing.T) {
	c := buildToy(t)
	n1, _ := c.NodeByName("n1")
	d, _ := c.NodeByName("d")
	if got := c.Gates[c.Nodes[n1].Driver].Level; got != 1 {
		t.Errorf("level(n1) = %d, want 1", got)
	}
	if got := c.Gates[c.Nodes[d].Driver].Level; got != 2 {
		t.Errorf("level(d) = %d, want 2", got)
	}
	if c.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", c.MaxLevel)
	}
}

func TestOrderIsTopological(t *testing.T) {
	c := buildToy(t)
	seen := map[NodeID]bool{}
	for _, id := range c.Inputs {
		seen[id] = true
	}
	for _, ff := range c.FFs {
		seen[ff.Q] = true
	}
	for _, g := range c.Order {
		for _, in := range c.Gates[g].In {
			if !seen[in] {
				t.Fatalf("gate %s evaluated before input %s",
					c.NodeName(c.Gates[g].Out), c.NodeName(in))
			}
		}
		seen[c.Gates[g].Out] = true
	}
	if len(c.Order) != len(c.Gates) {
		t.Fatal("Order does not cover all gates")
	}
}

func TestFanouts(t *testing.T) {
	c := buildToy(t)
	n1, _ := c.NodeByName("n1")
	// n1 feeds gate d (one pin) and is a PO.
	if len(c.Nodes[n1].Fanouts) != 1 {
		t.Fatalf("n1 gate fanouts = %d, want 1", len(c.Nodes[n1].Fanouts))
	}
	if c.FanoutCount(n1) != 2 {
		t.Errorf("FanoutCount(n1) = %d, want 2 (gate pin + PO)", c.FanoutCount(n1))
	}
	d, _ := c.NodeByName("d")
	if c.FanoutCount(d) != 1 {
		t.Errorf("FanoutCount(d) = %d, want 1 (FF D)", c.FanoutCount(d))
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder("cyc")
	a := b.Input("a")
	x := b.Signal("x")
	y := b.Gate(logic.And, "y", a, x)
	b.Gate(logic.Or, "x", y, a)
	b.Output("y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A feedback loop broken by a flip-flop is legal.
	b := NewBuilder("seqloop")
	a := b.Input("a")
	q := b.FlipFlop("q", b.Signal("d"))
	b.Gate(logic.Nand, "d", a, q)
	b.Output("d")
	if _, err := b.Build(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestUndefinedSignalRejected(t *testing.T) {
	b := NewBuilder("undef")
	a := b.Input("a")
	b.Gate(logic.And, "y", a, b.Signal("ghost"))
	b.Output("y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never defined") {
		t.Fatalf("expected undefined-signal error, got %v", err)
	}
}

func TestDoubleDefinitionRejected(t *testing.T) {
	b := NewBuilder("dbl")
	a := b.Input("a")
	b.Gate(logic.Buf, "y", a)
	b.Gate(logic.Not, "y", a)
	b.Output("y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("expected double-definition error, got %v", err)
	}
}

func TestDoubleOutputRejected(t *testing.T) {
	b := NewBuilder("dblout")
	a := b.Input("a")
	b.Gate(logic.Buf, "y", a)
	b.Output("y")
	b.Output("y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "OUTPUT twice") {
		t.Fatalf("expected double-output error, got %v", err)
	}
}

func TestBadArityRejected(t *testing.T) {
	b := NewBuilder("arity")
	a := b.Input("a")
	bb := b.Input("b")
	b.Gate(logic.Not, "y", a, bb)
	b.Output("y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "inputs") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestEmptyCircuitRejected(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for empty circuit")
	}
}

func TestSharedDNodeRejected(t *testing.T) {
	b := NewBuilder("sharedD")
	a := b.Input("a")
	d := b.Gate(logic.Buf, "d", a)
	b.FlipFlop("q1", d)
	b.FlipFlop("q2", d)
	b.Output("d")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "two flip-flops") {
		t.Fatalf("expected shared-D error, got %v", err)
	}
}

func TestGateNamed(t *testing.T) {
	b := NewBuilder("named")
	b.Input("a")
	b.Input("b")
	b.GateNamed(logic.And, "y", "a", "b")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	y, _ := c.NodeByName("y")
	g := c.Gates[c.Nodes[y].Driver]
	if len(g.In) != 2 || c.NodeName(g.In[0]) != "a" || c.NodeName(g.In[1]) != "b" {
		t.Fatal("GateNamed wired wrong inputs")
	}
}

func TestStatsString(t *testing.T) {
	c := buildToy(t)
	s := c.Stats().String()
	for _, frag := range []string{"toy", "2 PIs", "1 POs", "1 FFs", "2 gates"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Stats string %q missing %q", s, frag)
		}
	}
}

func TestDOT(t *testing.T) {
	c := buildToy(t)
	dot := c.DOT()
	for _, frag := range []string{"digraph", "DFF q", "AND n1", "rankdir"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if KindInput.String() != "input" || KindState.String() != "state" || KindGate.String() != "gate" {
		t.Error("NodeKind strings wrong")
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Error("invalid NodeKind string")
	}
}

func TestConstGate(t *testing.T) {
	b := NewBuilder("const")
	b.Input("a")
	b.Gate(logic.Const1, "one")
	b.GateNamed(logic.And, "y", "a", "one")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	one, _ := c.NodeByName("one")
	if c.Gates[c.Nodes[one].Driver].Level != 1 {
		t.Error("const gate should have level 1")
	}
}
