package xtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event object. Complete spans use
// phase "X" (duration events); track names are attached with phase "M"
// thread_name metadata so Perfetto shows one named row per track.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceEvents builds the Chrome trace-event list for a span set:
// one metadata event naming each track plus one complete ("X") event
// per span, sorted by (start, ID) so equal span sets serialize
// identically. Span IDs and parent links ride in args as hex strings.
func ChromeTraceEvents(spans []Span, tracks []string) []chromeEvent {
	events := make([]chromeEvent, 0, len(spans)+len(tracks))
	for i, label := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int32(i),
			Args: map[string]any{"name": label},
		})
	}
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, s := range sorted {
		args := map[string]any{"id": fmt.Sprintf("%016x", uint64(s.ID))}
		if s.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", uint64(s.Parent))
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		dur := s.Dur
		if dur < 0 { // span never ended; render as a point
			dur = 0
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", PID: 1, TID: s.Track,
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(dur) / 1e3,
			Args: args,
		})
	}
	return events
}

// WriteChromeTrace serializes spans as Chrome trace-event JSON, the
// format ui.perfetto.dev and chrome://tracing load directly. Timestamps
// and durations are microseconds relative to the tracer epoch; each
// track renders as one named thread under a single process.
func WriteChromeTrace(w io.Writer, spans []Span, tracks []string) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     ChromeTraceEvents(spans, tracks),
		DisplayTimeUnit: "ms",
	})
}

// WriteChromeTrace exports the tracer's merged spans (see Snapshot) as
// Chrome trace-event JSON. Safe to call mid-run: spans still sitting in
// worker buffers are simply absent. Nil-safe (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, tracks := t.Snapshot()
	return WriteChromeTrace(w, spans, tracks)
}

// jsonlSpan is the compact JSONL line form of a span.
type jsonlSpan struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Track  int32  `json:"track"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// WriteJSONL serializes spans one JSON object per line — the compact
// form for ad-hoc tooling (jq) and the /debug/events dump.
func WriteJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		line := jsonlSpan{
			ID:    fmt.Sprintf("%016x", uint64(s.ID)),
			Name:  s.Name,
			Track: s.Track,
			Start: s.Start,
			Dur:   s.Dur,
			Attrs: s.Attrs,
		}
		if s.Parent != 0 {
			line.Parent = fmt.Sprintf("%016x", uint64(s.Parent))
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL exports the tracer's merged spans as JSONL. Nil-safe.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	spans, _ := t.Snapshot()
	return WriteJSONL(w, spans)
}
