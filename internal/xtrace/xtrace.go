// Package xtrace is a low-overhead hierarchical span tracer for the MOT
// pipeline: begin/end spans with attributes and parent links, collected
// into per-worker append-only buffers (no locks on the hot path) and
// merged into one Tracer at flush points. Span IDs are deterministic
// hashes of (parent, name, key), so the spans a run emits are stable
// across worker counts even though their timestamps and track
// assignments are not.
//
// A bounded flight-recorder ring keeps the most recent spans for
// post-hoc inspection (GET /debug/events in motserve); exporters render
// the merged spans as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or as compact JSONL (see export.go). The W3C
// traceparent helpers in traceparent.go let HTTP surfaces join a span
// tree that spans processes — the propagation hook the distributed
// fault-shard workers will use.
package xtrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span. IDs are FNV-1a hashes of the parent ID, the
// span name and a caller-chosen key (see DeriveID), so instrumentation
// sites that pick deterministic keys (fault index, batch index, stage
// name) emit the same IDs regardless of scheduling. IDs are not
// guaranteed unique — they are stable labels for matching spans across
// runs, not database keys.
type SpanID uint64

// Attr is one span attribute. Values are strings; use the AttrInt
// helper on Buffer for integers.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one completed span: a named interval on a track with a parent
// link and optional attributes. Start is in nanoseconds since the
// tracer's epoch (monotonic clock); Track indexes the tracer's track
// table (one track per worker or surface).
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Track  int32
	Start  int64
	Dur    int64
	Attrs  []Attr
}

// fnv-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// DeriveID computes the deterministic span ID for (parent, name, key):
// an FNV-1a hash over the three, so the same logical span gets the same
// ID in every run and under every worker count.
func DeriveID(parent SpanID, name string, key uint64) SpanID {
	h := uint64(fnvOffset)
	for _, v := range [2]uint64{uint64(parent), key} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	if h == 0 {
		h = fnvOffset // 0 is the "no parent" sentinel
	}
	return SpanID(h)
}

// SampleAt reports whether item k of a sequence is sampled at the given
// rate in (0, 1]: samples spread evenly over the index sequence and the
// decision depends only on (rate, k), never on scheduling, so sampled
// span sets are identical across worker counts. Rate 1 samples every
// item; rates <= 0 sample none.
func SampleAt(rate float64, k int) bool {
	switch {
	case rate >= 1:
		return true
	case rate <= 0:
		return false
	}
	return int64(float64(k+1)*rate) > int64(float64(k)*rate)
}

// Ring is a bounded flight recorder of recent spans. It is safe for
// concurrent use and may be shared between tracers (motserve feeds the
// HTTP tracer and every per-run tracer into one ring so /debug/events
// shows recent activity across the whole process).
type Ring struct {
	mu   sync.Mutex
	buf  []Span
	next int
	n    int64 // total puts
}

// NewRing returns a flight recorder retaining the last size spans
// (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]Span, 0, size)}
}

// put appends spans, overwriting the oldest once full.
func (r *Ring) put(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range spans {
		if len(r.buf) < cap(r.buf) {
			r.buf = append(r.buf, s)
		} else {
			r.buf[r.next] = s
		}
		r.next = (r.next + 1) % cap(r.buf)
		r.n++
	}
}

// Recent returns up to max of the most recent spans, oldest first.
// max <= 0 returns everything retained.
func (r *Ring) Recent(max int) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out := make([]Span, 0, n)
	if n == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if len(out) < n { // buffer not yet wrapped
		out = append(out[:0], r.buf[:n]...)
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Options parameterizes a Tracer.
type Options struct {
	// MaxSpans bounds the merged span store; spans flushed beyond the
	// bound are counted as dropped (see Stats). Zero means 1<<18.
	MaxSpans int
	// FlightRecorder is the flight-recorder ring size; zero means 4096.
	// Ignored when Ring is set.
	FlightRecorder int
	// Ring, when non-nil, is a shared flight recorder to feed instead of
	// creating a private one.
	Ring *Ring
}

// Stats is a tracer's span accounting.
type Stats struct {
	// Spans is the number of spans recorded (flight recorder included),
	// monotonic. Dropped counts spans discarded because the merged store
	// was full; they still reach the flight recorder.
	Spans   int64 `json:"spans"`
	Dropped int64 `json:"dropped"`
}

// Tracer collects spans from any number of tracks. The hot path (Begin,
// End, attributes) touches only a per-worker Buffer; the tracer's lock
// is taken at flush, record and export time.
type Tracer struct {
	epoch    time.Time
	maxSpans int
	ring     *Ring

	recorded atomic.Int64
	dropped  atomic.Int64

	mu     sync.Mutex
	spans  []Span
	tracks []string
}

// New builds a tracer. The epoch (span time zero) is the moment of
// construction.
func New(o Options) *Tracer {
	if o.MaxSpans <= 0 {
		o.MaxSpans = 1 << 18
	}
	ring := o.Ring
	if ring == nil {
		size := o.FlightRecorder
		if size <= 0 {
			size = 4096
		}
		ring = NewRing(size)
	}
	return &Tracer{epoch: time.Now(), maxSpans: o.MaxSpans, ring: ring}
}

// now returns nanoseconds since the tracer epoch on the monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// RegisterTrack names a new track and returns its index. Safe for
// concurrent use.
func (t *Tracer) RegisterTrack(label string) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracks = append(t.tracks, label)
	return int32(len(t.tracks) - 1)
}

// NewTrack registers a track and returns a Buffer writing to it. A nil
// tracer returns a nil Buffer, whose methods are all no-ops, so
// instrumented code needs no tracing-enabled branch of its own.
func (t *Tracer) NewTrack(label string) *Buffer {
	if t == nil {
		return nil
	}
	return &Buffer{t: t, track: t.RegisterTrack(label)}
}

// Record appends one completed span directly, taking the tracer lock —
// the path for low-rate spans with no natural buffer, like HTTP request
// spans. Start/Dur must already be set (use Now for Start).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.recorded.Add(1)
	t.ring.put([]Span{s})
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, s)
}

// Now returns the current span timestamp (ns since the tracer epoch),
// for callers assembling spans by hand for Record.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// Stats returns the tracer's span accounting. Nil-safe.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{Spans: t.recorded.Load(), Dropped: t.dropped.Load()}
}

// Ring returns the tracer's flight recorder.
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Snapshot copies the merged spans and the track label table. Safe to
// call while buffers keep flushing; spans not yet flushed are absent.
func (t *Tracer) Snapshot() (spans []Span, tracks []string) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...), append([]string(nil), t.tracks...)
}

// flushBatch is the completed-span count past which a buffer with no
// open spans folds into the tracer on End, bounding both buffer growth
// and the staleness of mid-run exports.
const flushBatch = 64

// Ref locates an open span within its Buffer. The zero Ref is invalid;
// a Ref from a nil Buffer is accepted by every method as a no-op.
type Ref int

// Buffer is one track's append-only span buffer. It is owned by a
// single goroutine: Begin/End/attribute calls touch only the slice (no
// locks); Flush folds completed spans into the tracer. A nil *Buffer is
// valid and records nothing.
type Buffer struct {
	t     *Tracer
	track int32
	spans []Span
	open  int
}

// Tracer returns the tracer this buffer feeds (nil for a nil buffer).
func (b *Buffer) Tracer() *Tracer {
	if b == nil {
		return nil
	}
	return b.t
}

// Track returns the buffer's track index (0 for a nil buffer).
func (b *Buffer) Track() int32 {
	if b == nil {
		return 0
	}
	return b.track
}

// ID returns the span ID behind a Ref (0 for a nil buffer).
func (b *Buffer) ID(ref Ref) SpanID {
	if b == nil {
		return 0
	}
	return b.spans[ref-1].ID
}

// Begin opens a span with the deterministic ID DeriveID(parent, name,
// key) and returns its Ref. End it with End; attach attributes any time
// in between.
func (b *Buffer) Begin(name string, parent SpanID, key uint64) Ref {
	if b == nil {
		return 0
	}
	b.spans = append(b.spans, Span{
		ID:     DeriveID(parent, name, key),
		Parent: parent,
		Name:   name,
		Track:  b.track,
		Start:  b.t.now(),
		Dur:    -1,
	})
	b.open++
	return Ref(len(b.spans))
}

// Attr attaches a string attribute to an open span.
func (b *Buffer) Attr(ref Ref, key, val string) {
	if b == nil {
		return
	}
	s := &b.spans[ref-1]
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// AttrInt attaches an integer attribute to an open span.
func (b *Buffer) AttrInt(ref Ref, key string, v int64) {
	b.Attr(ref, key, itoa(v))
}

// End closes a span. When every span in the buffer is closed and the
// buffer has grown past flushBatch, the completed spans fold into the
// tracer so mid-run exports stay fresh.
func (b *Buffer) End(ref Ref) {
	if b == nil {
		return
	}
	s := &b.spans[ref-1]
	s.Dur = b.t.now() - s.Start
	b.open--
	if b.open == 0 && len(b.spans) >= flushBatch {
		b.Flush()
	}
}

// Flush folds the buffered spans into the tracer (merged store, bounded
// by MaxSpans, plus the flight recorder) and resets the buffer. Call it
// only with no open spans (Refs are invalidated); the owning goroutine
// typically defers one Flush after ending its spans.
func (b *Buffer) Flush() {
	if b == nil || len(b.spans) == 0 {
		return
	}
	t := b.t
	t.recorded.Add(int64(len(b.spans)))
	t.ring.put(b.spans)
	t.mu.Lock()
	room := t.maxSpans - len(t.spans)
	if room > len(b.spans) {
		room = len(b.spans)
	}
	if room > 0 {
		// The buffer's backing array is reused after reset, so the spans
		// must be copied out, not aliased.
		t.spans = append(t.spans, b.spans[:room]...)
	} else {
		room = 0
	}
	t.mu.Unlock()
	t.dropped.Add(int64(len(b.spans) - room))
	b.spans = b.spans[:0]
	b.open = 0
}

// itoa is strconv.AppendInt without the import weight at call sites.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
