package xtrace

import (
	"fmt"
	"strconv"
	"strings"
)

// W3C trace-context (traceparent) support: motserve accepts an incoming
// traceparent header, parents its request span under the caller's span,
// and emits a traceparent response header carrying the request span's
// ID — the propagation hook the future distributed fault-shard workers
// join so one coordinator trace covers every shard.

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). It returns
// the trace ID, the parent span ID, and whether the header was valid.
// Version "ff" and all-zero trace or parent IDs are rejected per spec.
func ParseTraceparent(h string) (traceID string, parent SpanID, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 ||
		len(parts[0]) != 2 || len(parts[1]) != 32 ||
		len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", 0, false
	}
	if !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return "", 0, false
	}
	if strings.EqualFold(parts[0], "ff") || parts[1] == strings.Repeat("0", 32) {
		return "", 0, false
	}
	p, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil || p == 0 {
		return "", 0, false
	}
	return strings.ToLower(parts[1]), SpanID(p), true
}

// FormatTraceparent renders a version-00 traceparent header for a span
// within a trace, with the sampled flag set.
func FormatTraceparent(traceID string, id SpanID) string {
	return fmt.Sprintf("00-%s-%016x-01", traceID, uint64(id))
}

// NewTraceID derives a 32-hex-digit trace ID from a seed span ID, for
// requests that arrive without a traceparent of their own.
func NewTraceID(seed SpanID) string {
	return fmt.Sprintf("%016x%016x", uint64(seed), uint64(DeriveID(seed, "trace", 0)))
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
