package xtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestDeriveIDDeterministic(t *testing.T) {
	a := DeriveID(0, "run sg298", 0)
	b := DeriveID(0, "run sg298", 0)
	if a != b {
		t.Fatalf("DeriveID not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatalf("DeriveID returned the no-parent sentinel 0")
	}
	if DeriveID(0, "run sg298", 1) == a {
		t.Errorf("key change did not change the ID")
	}
	if DeriveID(0, "run sg641", 0) == a {
		t.Errorf("name change did not change the ID")
	}
	if DeriveID(a, "run sg298", 0) == a {
		t.Errorf("parent change did not change the ID")
	}
}

func TestSampleAt(t *testing.T) {
	for _, rate := range []float64{0.05, 0.1, 0.5, 1} {
		n := 0
		for k := 0; k < 10000; k++ {
			if SampleAt(rate, k) {
				n++
			}
		}
		want := int(rate * 10000)
		if n < want-1 || n > want+1 {
			t.Errorf("rate %v sampled %d of 10000, want ~%d", rate, n, want)
		}
	}
	if SampleAt(0, 3) || SampleAt(-1, 3) {
		t.Errorf("non-positive rate sampled an item")
	}
	for k := 0; k < 100; k++ {
		if !SampleAt(1, k) {
			t.Fatalf("rate 1 skipped item %d", k)
		}
	}
}

func TestBufferSpans(t *testing.T) {
	tr := New(Options{})
	buf := tr.NewTrack("main")
	run := buf.Begin("run", 0, 0)
	runID := buf.ID(run)
	child := buf.Begin("stage", runID, 1)
	buf.Attr(child, "kind", "mot")
	buf.AttrInt(child, "faults", 42)
	buf.End(child)
	buf.End(run)
	buf.Flush()

	spans, tracks := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if len(tracks) != 1 || tracks[0] != "main" {
		t.Fatalf("tracks = %v, want [main]", tracks)
	}
	if spans[0].ID != runID || spans[0].Parent != 0 {
		t.Errorf("run span id/parent wrong: %+v", spans[0])
	}
	st := spans[1]
	if st.Parent != runID {
		t.Errorf("stage parent = %x, want %x", st.Parent, runID)
	}
	if st.Dur < 0 {
		t.Errorf("stage span not ended: dur %d", st.Dur)
	}
	want := []Attr{{"kind", "mot"}, {"faults", "42"}}
	if fmt.Sprint(st.Attrs) != fmt.Sprint(want) {
		t.Errorf("attrs = %v, want %v", st.Attrs, want)
	}
	if s := tr.Stats(); s.Spans != 2 || s.Dropped != 0 {
		t.Errorf("stats = %+v, want 2 spans 0 dropped", s)
	}
}

func TestBufferAutoFlush(t *testing.T) {
	tr := New(Options{})
	buf := tr.NewTrack("w")
	for i := 0; i < flushBatch+5; i++ {
		buf.End(buf.Begin("fault", 7, uint64(i)))
	}
	spans, _ := tr.Snapshot()
	if len(spans) < flushBatch {
		t.Fatalf("auto-flush did not run: %d merged spans", len(spans))
	}
}

func TestNilTracerAndBuffer(t *testing.T) {
	var tr *Tracer
	buf := tr.NewTrack("x")
	if buf != nil {
		t.Fatalf("nil tracer returned non-nil buffer")
	}
	ref := buf.Begin("a", 0, 0)
	buf.Attr(ref, "k", "v")
	buf.AttrInt(ref, "k", 1)
	buf.End(ref)
	buf.Flush()
	if buf.ID(ref) != 0 {
		t.Errorf("nil buffer ID != 0")
	}
	tr.Record(Span{})
	if s := tr.Stats(); s != (Stats{}) {
		t.Errorf("nil tracer stats = %+v", s)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer export: %v", err)
	}
}

func TestMaxSpansDrops(t *testing.T) {
	tr := New(Options{MaxSpans: 10})
	buf := tr.NewTrack("w")
	for i := 0; i < 25; i++ {
		buf.End(buf.Begin("s", 0, uint64(i)))
	}
	buf.Flush()
	spans, _ := tr.Snapshot()
	if len(spans) != 10 {
		t.Fatalf("retained %d spans, want 10", len(spans))
	}
	st := tr.Stats()
	if st.Spans != 25 || st.Dropped != 15 {
		t.Fatalf("stats = %+v, want 25 recorded / 15 dropped", st)
	}
	// Dropped spans still reach the flight recorder.
	if got := len(tr.Ring().Recent(0)); got != 25 {
		t.Fatalf("ring holds %d spans, want 25", got)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.put([]Span{{ID: SpanID(i + 1)}})
	}
	got := r.Recent(0)
	if len(got) != 4 {
		t.Fatalf("recent = %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := SpanID(i + 7); s.ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[1].ID != 10 {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestSharedRing(t *testing.T) {
	ring := NewRing(16)
	a := New(Options{Ring: ring})
	b := New(Options{Ring: ring})
	a.Record(Span{ID: 1, Name: "http"})
	buf := b.NewTrack("run")
	buf.End(buf.Begin("fault", 0, 0))
	buf.Flush()
	if got := len(ring.Recent(0)); got != 2 {
		t.Fatalf("shared ring holds %d spans, want 2", got)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New(Options{})
	buf := tr.NewTrack("worker 00")
	run := buf.Begin("run sg298", 0, 0)
	f := buf.Begin("fault", buf.ID(run), 3)
	buf.Attr(f, "fault", "g17 s-a-1")
	buf.End(f)
	buf.End(run)
	buf.Flush()

	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("round trip: %v\n%s", err, out.String())
	}
	if len(doc.TraceEvents) != 3 { // thread_name + 2 spans
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "worker 00" {
		t.Errorf("metadata event wrong: %+v", meta)
	}
	var sawFault bool
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Errorf("span event wrong phase/pid: %+v", ev)
		}
		if ev.Name == "fault" {
			sawFault = true
			if ev.Args["fault"] != "g17 s-a-1" {
				t.Errorf("fault attrs missing: %v", ev.Args)
			}
			if _, ok := ev.Args["parent"]; !ok {
				t.Errorf("fault span lost its parent link: %v", ev.Args)
			}
		}
	}
	if !sawFault {
		t.Errorf("fault span missing from export")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(Options{})
	buf := tr.NewTrack("w")
	buf.End(buf.Begin("fault", 9, 1))
	buf.Flush()
	var out bytes.Buffer
	if err := tr.WriteJSONL(&out); err != nil {
		t.Fatalf("jsonl: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if line["name"] != "fault" || line["parent"] != "0000000000000009" {
		t.Errorf("line = %v", line)
	}
}

func TestTraceparent(t *testing.T) {
	traceID, parent, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok || traceID != "0af7651916cd43dd8448eb211c80319c" || parent != 0xb7ad6b7169203331 {
		t.Fatalf("parse = %q %x %v", traceID, parent, ok)
	}
	hdr := FormatTraceparent(traceID, 0x1234)
	if hdr != "00-0af7651916cd43dd8448eb211c80319c-0000000000001234-01" {
		t.Fatalf("format = %q", hdr)
	}
	if _, _, ok := ParseTraceparent(hdr); !ok {
		t.Fatalf("formatted header does not parse back")
	}
	bad := []string{
		"",
		"junk",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                  // bad version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",                  // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",                  // zero parent
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",                  // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra-extra-ex-x", // wrong shape
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	id := NewTraceID(42)
	if len(id) != 32 || !isHex(id) {
		t.Errorf("NewTraceID = %q", id)
	}
}

// TestSpanMergeRace exercises concurrent worker-buffer flushes against
// Record, Snapshot and both exporters — the pattern motserve hits when
// /runs/{id}/trace is fetched while a run executes. Run under -race via
// the Makefile race target.
func TestSpanMergeRace(t *testing.T) {
	ring := NewRing(128)
	tr := New(Options{Ring: ring})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := tr.NewTrack(fmt.Sprintf("worker %d", w))
			defer buf.Flush()
			for i := 0; i < 500; i++ {
				f := buf.Begin("fault", 1, uint64(i))
				buf.End(buf.Begin("resim", buf.ID(f), 0))
				buf.End(f)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr.Record(Span{ID: SpanID(i + 1), Name: "http"})
			tr.WriteChromeTrace(&bytes.Buffer{})
			tr.WriteJSONL(&bytes.Buffer{})
			tr.Stats()
			ring.Recent(10)
		}
	}()
	wg.Wait()
	if st := tr.Stats(); st.Spans != 4*500*2+200 {
		t.Fatalf("recorded %d spans, want %d", st.Spans, 4*500*2+200)
	}
}
