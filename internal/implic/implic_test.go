package implic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// baseFrame evaluates one frame and returns its values. An optional fault
// may be passed as the final argument.
func baseFrame(t *testing.T, c *netlist.Circuit, pi, ps string, flt ...*fault.Fault) []logic.Val {
	t.Helper()
	pat, err := logic.ParseVals(pi)
	if err != nil {
		t.Fatal(err)
	}
	st, err := logic.ParseVals(ps)
	if err != nil {
		t.Fatal(err)
	}
	var f *fault.Fault
	if len(flt) > 0 {
		f = flt[0]
	}
	vals := make([]logic.Val, c.NumNodes())
	seqsim.EvalFrame(c, pat, st, f, vals)
	return vals
}

// andOrBench: y = AND(a, q); d = OR(y, b). One FF q <- d.
const andOrBench = `
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
y = AND(a, q)
d = OR(y, b)
`

func TestAssignAndValue(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	fr := New(c, nil, baseFrame(t, c, "1x", "x"))
	q, _ := c.NodeByName("q")
	if fr.Value(q) != logic.X {
		t.Fatal("q should start unspecified")
	}
	if !fr.Assign(q, logic.One) {
		t.Fatal("assign failed")
	}
	if fr.Value(q) != logic.One {
		t.Fatal("assign did not stick")
	}
	if !fr.Assign(q, logic.One) {
		t.Fatal("re-assign same value failed")
	}
	if fr.Assign(q, logic.Zero) || !fr.Conflict() {
		t.Fatal("conflicting assign accepted")
	}
	if fr.ConflictNode() != q {
		t.Fatal("wrong conflict node")
	}
}

func TestAssignAfterConflictRejected(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	fr := New(c, nil, baseFrame(t, c, "1x", "x"))
	q, _ := c.NodeByName("q")
	fr.Assign(q, logic.One)
	fr.Assign(q, logic.Zero)
	a, _ := c.NodeByName("a")
	if fr.Assign(a, logic.One) {
		t.Fatal("assign after conflict should fail")
	}
}

func TestForwardSweepPropagates(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	// a=1, q unknown: y = q = X. Assign q=1 and sweep forward.
	fr := New(c, nil, baseFrame(t, c, "10", "x"))
	q, _ := c.NodeByName("q")
	y, _ := c.NodeByName("y")
	d, _ := c.NodeByName("d")
	fr.Assign(q, logic.One)
	if !fr.ForwardSweep() {
		t.Fatal("unexpected conflict")
	}
	if fr.Value(y) != logic.One || fr.Value(d) != logic.One {
		t.Fatalf("y=%v d=%v, want 1 1", fr.Value(y), fr.Value(d))
	}
}

func TestBackwardSweepInfers(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	// a=1, b=0, q unknown. Assert d=1: OR(y,0)=1 => y=1; AND(1,q)=1 => q=1.
	fr := New(c, nil, baseFrame(t, c, "10", "x"))
	q, _ := c.NodeByName("q")
	y, _ := c.NodeByName("y")
	if !fr.AssignNextState(0, logic.One) {
		t.Fatal("assert failed")
	}
	if !fr.BackwardSweep() {
		t.Fatal("unexpected conflict")
	}
	if fr.Value(y) != logic.One {
		t.Fatalf("y = %v, want 1", fr.Value(y))
	}
	if fr.Value(q) != logic.One {
		t.Fatalf("q = %v, want 1", fr.Value(q))
	}
}

func TestBackwardConflict(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	// a=0 forces y=0; b=0 forces d=0. Asserting d=1 must conflict.
	fr := New(c, nil, baseFrame(t, c, "00", "x"))
	if fr.AssignNextState(0, logic.One) && fr.ImplyTwoPass() {
		t.Fatal("expected conflict")
	}
	if !fr.Conflict() {
		t.Fatal("conflict flag not set")
	}
}

// diamondBench exercises reconvergent backward implications:
// n5 = OR(n3, q); n6 = OR(n4, q); d = AND(n5, n9); n9 = NOT(n6);
// n3 = AND(a, q2); n4 = AND(a, q2b)... Simplified version of the paper's
// Figure 4 shape (built properly in the circuits package).
const twoPassBench = `
INPUT(a)
OUTPUT(o)
q = DFF(d)
n3 = BUFF(a)
n5 = OR(n3, w)
w = BUFF(q)
d = AND(n5, n5x)
n5x = BUFF(n5)
o = BUFF(d)
`

func TestImplyTwoPassCombinesDirections(t *testing.T) {
	c := mustParse(t, "tp", twoPassBench)
	// a=0: n3=0, n5=OR(0,w)=w=q=X. Assert d=1: AND=1 => n5=1, n5x=1;
	// backward through n5: OR(0,w)=1 => w=1 => q=1. Forward: o=1.
	fr := New(c, nil, baseFrame(t, c, "0", "x"))
	if !fr.AssignNextState(0, logic.One) || !fr.ImplyTwoPass() {
		t.Fatalf("conflict: node %v", fr.ConflictNode())
	}
	q, _ := c.NodeByName("q")
	o, _ := c.NodeByName("o")
	if fr.Value(q) != logic.One {
		t.Fatalf("q = %v, want 1", fr.Value(q))
	}
	if fr.Value(o) != logic.One {
		t.Fatalf("o = %v, want 1 (forward pass)", fr.Value(o))
	}
}

func TestStemStuckNodeBlocksBackward(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	y, _ := c.NodeByName("y")
	q, _ := c.NodeByName("q")
	f := fault.Fault{Node: y, Gate: netlist.NoGate, Stuck: logic.One}
	// With y stuck at 1, d = OR(1, b) = 1 regardless. Asserting d=1 is
	// consistent and must NOT imply anything about q (the AND's true
	// output is unobservable).
	fr := New(c, &f, baseFrame(t, c, "0x", "x", &f))
	if !fr.AssignNextState(0, logic.One) || !fr.ImplyTwoPass() {
		t.Fatal("unexpected conflict")
	}
	if fr.Value(q) != logic.X {
		t.Fatalf("q = %v, want x (no inference through stuck stem)", fr.Value(q))
	}
}

func TestStemStuckAssertOpposite(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	d, _ := c.NodeByName("d")
	f := fault.Fault{Node: d, Gate: netlist.NoGate, Stuck: logic.One}
	fr := New(c, &f, baseFrame(t, c, "00", "x", &f))
	// d is stuck at 1; asserting the FF latches 0 is impossible.
	if fr.AssignNextState(0, logic.Zero) {
		t.Fatal("assertion against stuck value accepted")
	}
	if !fr.Conflict() {
		t.Fatal("conflict not flagged")
	}
}

func TestBranchStuckPinDemand(t *testing.T) {
	// y1 = AND(a, b); y2 = AND(a, c). Branch a->y1 stuck at 0.
	c := mustParse(t, "fan", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
y1 = AND(a, b)
y2 = AND(a, c)
`)
	a, _ := c.NodeByName("a")
	y1, _ := c.NodeByName("y1")
	g1 := c.Nodes[y1].Driver
	f := fault.Fault{Node: a, Gate: g1, Pin: 0, Stuck: logic.Zero}
	// Inputs unknown. Asserting y1=1 demands pin a->y1 be 1, but it is
	// stuck at 0: conflict.
	fr := New(c, &f, baseFrame(t, c, "xxx", "", &f))
	fr.Assign(y1, logic.One)
	if fr.BackwardSweep() || !fr.Conflict() {
		t.Fatal("expected conflict at stuck branch")
	}
	// Asserting y1=0 is consistent (the stuck pin provides the 0) and
	// must not constrain the stem a.
	fr2 := New(c, &f, baseFrame(t, c, "xxx", "", &f))
	fr2.Assign(y1, logic.Zero)
	if !fr2.BackwardSweep() {
		t.Fatal("unexpected conflict")
	}
	if fr2.Value(a) != logic.X {
		t.Fatalf("a = %v, want x (stuck pin satisfies the demand)", fr2.Value(a))
	}
}

func TestOutputAndStateAccessors(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	fr := New(c, nil, baseFrame(t, c, "11", "1"))
	if fr.Output(0) != logic.One {
		t.Fatalf("Output(0) = %v, want 1", fr.Output(0))
	}
	if fr.NextState(0) != logic.One {
		t.Fatalf("NextState(0) = %v, want 1", fr.NextState(0))
	}
	if fr.PresentState(0) != logic.One {
		t.Fatalf("PresentState(0) = %v, want 1", fr.PresentState(0))
	}
}

func TestReset(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	base := baseFrame(t, c, "10", "x")
	fr := New(c, nil, base)
	q, _ := c.NodeByName("q")
	fr.Assign(q, logic.One)
	fr.Assign(q, logic.Zero) // conflict
	fr.Reset(base)
	if fr.Conflict() || fr.Value(q) != logic.X {
		t.Fatal("Reset did not clear state")
	}
}

// --- soundness property test ---

// randomCircuit builds a random combinational+FF circuit.
func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not && op != logic.Buf {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 2 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

// TestImplicationSoundness is the central property test for the engine.
// For random circuits with unknown present state, after asserting a value
// on a random FF's D node and running implications:
//
//   - if the engine reports a conflict, no binary completion of the
//     present state satisfies the assertion;
//   - every value the engine derives holds in every binary completion of
//     the present state that satisfies the assertion.
//
// Completions are checked by exhaustive enumeration (few FFs).
func TestImplicationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trials := 0
	for trials < 120 {
		nFF := 3
		nGates := 6 + rng.Intn(14)
		if nGates < nFF {
			continue
		}
		c, err := randomCircuit(rng, 2, nFF, nGates)
		if err != nil {
			continue
		}
		trials++
		// Random binary inputs, all-X state.
		pi := make([]logic.Val, c.NumInputs())
		for i := range pi {
			pi[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		ps := make([]logic.Val, nFF)
		for i := range ps {
			ps[i] = logic.X
		}
		base := make([]logic.Val, c.NumNodes())
		seqsim.EvalFrame(c, pi, ps, nil, base)

		ffIdx := rng.Intn(nFF)
		alpha := logic.FromBool(rng.Intn(2) == 1)

		fr := New(c, nil, base)
		ok := fr.AssignNextState(ffIdx, alpha) && fr.ImplyTwoPass()

		// Enumerate all binary present states; keep those where the D node
		// of ffIdx equals alpha.
		full := make([]logic.Val, c.NumNodes())
		st := make([]logic.Val, nFF)
		var satisfying [][]logic.Val
		for m := 0; m < 1<<nFF; m++ {
			for i := range st {
				st[i] = logic.FromBool(m&(1<<i) != 0)
			}
			seqsim.EvalFrame(c, pi, st, nil, full)
			if full[c.FFs[ffIdx].D] == alpha {
				snapshot := make([]logic.Val, len(full))
				copy(snapshot, full)
				satisfying = append(satisfying, snapshot)
			}
		}
		if !ok {
			if len(satisfying) != 0 {
				t.Fatalf("trial %d: engine reported conflict but %d completions satisfy the assertion",
					trials, len(satisfying))
			}
			continue
		}
		// Every derived binary value must hold in every satisfying completion.
		for n := 0; n < c.NumNodes(); n++ {
			v := fr.Value(netlist.NodeID(n))
			if !v.IsBinary() {
				continue
			}
			for _, comp := range satisfying {
				if comp[n] != v {
					t.Fatalf("trial %d: engine derived node %s = %v, but a satisfying completion has %v",
						trials, c.NodeName(netlist.NodeID(n)), v, comp[n])
				}
			}
		}
	}
}

// TestClosureCoversDenseSweeps checks that the event-driven two-phase
// closure used by ImplyTwoPass derives every value the paper's dense
// backward+forward sweeps derive, never flips a value, and agrees on
// conflicts it cannot miss (a dense-sweep conflict implies a closure
// conflict, since the closure derives at least as much).
func TestClosureCoversDenseSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		c, err := randomCircuit(rng, 2, 4, 8+rng.Intn(18))
		if err != nil {
			continue
		}
		pi := make([]logic.Val, c.NumInputs())
		for i := range pi {
			pi[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		ps := []logic.Val{logic.X, logic.X, logic.X, logic.X}
		base := make([]logic.Val, c.NumNodes())
		seqsim.EvalFrame(c, pi, ps, nil, base)
		ffIdx := rng.Intn(4)
		alpha := logic.FromBool(rng.Intn(2) == 1)

		dense := New(c, nil, base)
		okDense := dense.AssignNextState(ffIdx, alpha) && dense.BackwardSweep() && dense.ForwardSweep()
		sparse := New(c, nil, base)
		okSparse := sparse.AssignNextState(ffIdx, alpha) && sparse.ImplyTwoPass()

		if !okDense && okSparse {
			t.Fatalf("trial %d: dense sweeps conflict but closure does not", trial)
		}
		if !okSparse {
			continue
		}
		for n := 0; n < c.NumNodes(); n++ {
			vd := dense.Value(netlist.NodeID(n))
			vs := sparse.Value(netlist.NodeID(n))
			if vd.IsBinary() && vs != vd {
				t.Fatalf("trial %d: closure lost/flipped node %s: dense %v, closure %v",
					trial, c.NodeName(netlist.NodeID(n)), vd, vs)
			}
		}
	}
}

// TestFixpointAtLeastAsStrong checks the fixpoint schedule derives a
// superset of the two-pass schedule's values and never flips a value.
func TestFixpointAtLeastAsStrong(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		c, err := randomCircuit(rng, 2, 3, 8+rng.Intn(10))
		if err != nil {
			continue
		}
		pi := make([]logic.Val, c.NumInputs())
		for i := range pi {
			pi[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		ps := []logic.Val{logic.X, logic.X, logic.X}
		base := make([]logic.Val, c.NumNodes())
		seqsim.EvalFrame(c, pi, ps, nil, base)
		ffIdx := rng.Intn(3)
		alpha := logic.FromBool(rng.Intn(2) == 1)

		two := New(c, nil, base)
		okTwo := two.AssignNextState(ffIdx, alpha) && two.ImplyTwoPass()
		fix := New(c, nil, base)
		okFix := fix.AssignNextState(ffIdx, alpha) && fix.ImplyFixpoint(10)
		if okTwo && !okFix {
			// Fixpoint found a conflict two-pass missed: allowed (stronger).
			continue
		}
		if !okTwo {
			// Two-pass found a conflict; fixpoint runs at least the same
			// sweeps first, so it must conflict too.
			if okFix {
				t.Fatalf("trial %d: two-pass conflicts but fixpoint does not", trial)
			}
			continue
		}
		for n := 0; n < c.NumNodes(); n++ {
			v2 := two.Value(netlist.NodeID(n))
			vf := fix.Value(netlist.NodeID(n))
			if v2.IsBinary() && vf != v2 {
				t.Fatalf("trial %d: fixpoint flipped node %d from %v to %v", trial, n, v2, vf)
			}
		}
	}
}
