package implic

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// implySetup evaluates one sg298 frame with an all-X present state and
// returns the circuit, the base assignment, and the flip-flop indices
// whose D node stays unspecified — the assertions a pair collection would
// try.
func implySetup(b *testing.B) (*netlist.Circuit, []logic.Val, []int) {
	b.Helper()
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	pi := make([]logic.Val, c.NumInputs())
	for i := range pi {
		pi[i] = logic.FromBool(i%2 == 0)
	}
	ps := make([]logic.Val, c.NumFFs())
	for i := range ps {
		ps[i] = logic.X
	}
	base := make([]logic.Val, c.NumNodes())
	seqsim.EvalFrame(c, pi, ps, nil, base)
	var ffs []int
	for i := 0; i < c.NumFFs(); i++ {
		if base[c.FFs[i].D] == logic.X {
			ffs = append(ffs, i)
		}
	}
	if len(ffs) == 0 {
		b.Fatal("no unspecified next-state variables")
	}
	return c, base, ffs
}

// BenchmarkImplyReuse measures the trail path: one frame, and per round an
// assign -> imply -> UndoTo cycle for both values of every candidate
// flip-flop, as collectPairs performs at one time unit.
func BenchmarkImplyReuse(b *testing.B) {
	c, base, ffs := implySetup(b)
	fr := New(c, nil, base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ff := range ffs {
			for a := 0; a < 2; a++ {
				mark := fr.Mark()
				_ = fr.AssignNextState(ff, logic.Val(a)) && fr.ImplyTwoPass()
				fr.UndoTo(mark)
			}
		}
	}
}

// BenchmarkImplyNew measures the same workload with a frame freshly
// allocated per assertion, as the engine was used before the trail.
func BenchmarkImplyNew(b *testing.B) {
	c, base, ffs := implySetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ff := range ffs {
			for a := 0; a < 2; a++ {
				fr := New(c, nil, base)
				_ = fr.AssignNextState(ff, logic.Val(a)) && fr.ImplyTwoPass()
			}
		}
	}
}
