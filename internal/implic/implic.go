// Package implic implements the single-time-frame implication engine that
// powers backward implications (Section 2 of the paper): given the partial
// value assignment of one time frame and an additional asserted value
// (typically a next-state variable set by state expansion at the following
// time unit), it derives further values by sweeping the combinational
// logic backward (outputs to inputs) and forward (inputs to outputs),
// detecting conflicts along the way.
//
// Following the paper's implementation, implications inside a frame use
// exactly two passes — one from outputs to inputs and one from inputs to
// outputs — to keep computation time low. An event-driven fixpoint
// schedule is available as an extension.
//
// All structural walks run on the compiled circuit IR (internal/cir);
// forward gate semantics are cir.EvalOp and backward inference is
// logic.InferInputsInto.
package implic

import (
	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Frame is the mutable value assignment of one time frame of a (possibly
// faulty) machine. Values are "effective": a stem-stuck node permanently
// holds its stuck value, and branch faults are applied when gate pins read
// their inputs.
//
// The frame keeps an assignment trail, SAT-solver style: every value write
// is logged in order, and Mark/UndoTo restore a previous state touching
// only the logged nodes. Under three-valued merging the only possible
// transition is X -> binary (Merge never flips a binary value), so the
// trail needs no explicit old values — undoing a write always restores X.
// The same log seeds the event-driven sweeps.
type Frame struct {
	cc   *cir.CC
	flt  *fault.Fault
	vals []logic.Val

	conflict     bool
	conflictNode netlist.NodeID

	inBuf     []logic.Val
	forcedBuf []logic.Val

	// changed is the assignment trail: nodes whose value became binary
	// since New/Reset, in write order.
	changed []netlist.NodeID
	// inQ marks gates already enqueued in the active worklist.
	inQ   []bool
	queue []netlist.GateID
}

// New creates a frame from a base assignment (one value per node, as
// produced by seqsim.EvalFrame with the same fault). The base is copied.
// flt may be nil for a fault-free frame. The compiled IR is obtained from
// the process-wide cache (cir.For).
func New(c *netlist.Circuit, flt *fault.Fault, base []logic.Val) *Frame {
	return NewCompiled(cir.For(c), flt, base)
}

// NewCompiled is New on an already-compiled circuit, sharing cc read-only
// with any other evaluator.
func NewCompiled(cc *cir.CC, flt *fault.Fault, base []logic.Val) *Frame {
	if flt == nil {
		flt = &cir.NoFault
	}
	vals := make([]logic.Val, len(base))
	copy(vals, base)
	n := cc.MaxFanin
	if n < 1 {
		n = 1
	}
	return &Frame{
		cc: cc, flt: flt, vals: vals,
		conflictNode: netlist.NoNode,
		inBuf:        make([]logic.Val, n),
		forcedBuf:    make([]logic.Val, n),
		inQ:          make([]bool, cc.NumGates()),
	}
}

// Reset reinitializes the frame to a new base assignment, reusing storage.
// The worklist is cleared sparsely from its own log: only gates actually
// enqueued have their inQ flag unset, so the cost is O(queued), not
// O(gates).
func (fr *Frame) Reset(base []logic.Val) {
	copy(fr.vals, base)
	fr.conflict = false
	fr.conflictNode = netlist.NoNode
	fr.changed = fr.changed[:0]
	fr.clearWorklist()
}

// ResetFault is Reset plus rebinding the injected fault, so one pooled
// frame can serve frames of different faulty machines. flt may be nil for
// a fault-free frame.
func (fr *Frame) ResetFault(flt *fault.Fault, base []logic.Val) {
	if flt == nil {
		flt = &cir.NoFault
	}
	fr.flt = flt
	fr.Reset(base)
}

// clearWorklist empties the gate worklist, unsetting only the inQ flags of
// gates still enqueued.
func (fr *Frame) clearWorklist() {
	for _, g := range fr.queue {
		fr.inQ[g] = false
	}
	fr.queue = fr.queue[:0]
}

// Mark returns the current trail position. Passing it to UndoTo rolls the
// frame back to this exact state.
func (fr *Frame) Mark() int { return len(fr.changed) }

// UndoTo rolls back every assignment made since mark was obtained from
// Mark, restoring the affected nodes to X, and clears any conflict, in
// O(assignments undone). The worklist is always empty between sweeps
// (closures drain it on success and clear it sparsely on conflict), so a
// frame can run assign -> imply -> inspect -> UndoTo repeatedly from one
// base assignment without any per-round O(nodes) or O(gates) work.
func (fr *Frame) UndoTo(mark int) {
	for _, n := range fr.changed[mark:] {
		fr.vals[n] = logic.X
	}
	fr.changed = fr.changed[:mark]
	fr.conflict = false
	fr.conflictNode = netlist.NoNode
	fr.clearWorklist()
}

// Value returns the current effective value of node n.
func (fr *Frame) Value(n netlist.NodeID) logic.Val { return fr.vals[n] }

// Values returns the underlying value slice (read-only by convention).
func (fr *Frame) Values() []logic.Val { return fr.vals }

// Conflict reports whether any assignment or sweep found a contradiction.
func (fr *Frame) Conflict() bool { return fr.conflict }

// ConflictNode returns the node at which the first conflict was observed,
// or netlist.NoNode.
func (fr *Frame) ConflictNode() netlist.NodeID { return fr.conflictNode }

// fail records the first conflict.
func (fr *Frame) fail(n netlist.NodeID) {
	if !fr.conflict {
		fr.conflict = true
		fr.conflictNode = n
	}
}

// Assign merges value v into node n, returning false on conflict. A
// binary assignment to a stem-stuck node conflicts unless it equals the
// stuck value.
func (fr *Frame) Assign(n netlist.NodeID, v logic.Val) bool {
	if fr.conflict {
		return false
	}
	merged, conflict := logic.Merge(fr.vals[n], v)
	if conflict {
		fr.fail(n)
		return false
	}
	if merged != fr.vals[n] {
		fr.vals[n] = merged
		fr.changed = append(fr.changed, n)
	}
	return true
}

// seenInputs fills fr.inBuf with the values gate gi's pins observe; lo/hi
// are the gate's CSR fanin bounds.
func (fr *Frame) seenInputs(gi netlist.GateID, lo, hi int32) []logic.Val {
	in := fr.inBuf[:hi-lo]
	for k := lo; k < hi; k++ {
		id := fr.cc.Fanin[k]
		in[k-lo] = fr.flt.SeenBy(gi, k-lo, id, fr.vals[id])
	}
	return in
}

// inferGate applies the backward inference rules at gate gi, assigning
// any forced input values. It returns false on conflict.
func (fr *Frame) inferGate(gi netlist.GateID) bool {
	cc := fr.cc
	gout := cc.GOut[gi]
	if _, stuck := fr.flt.StuckNode(gout); stuck {
		// The driver of a stuck stem is unobservable: the demanded value
		// on the stem says nothing about the driver's inputs.
		return true
	}
	out := fr.vals[gout]
	if out == logic.X {
		return true
	}
	lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
	in := fr.seenInputs(gi, lo, hi)
	forced := fr.forcedBuf[:len(in)]
	if !logic.InferInputsInto(cc.Ops[gi], out, in, forced) {
		fr.fail(gout)
		return false
	}
	for pi, fv := range forced {
		if fv == logic.X {
			continue
		}
		id := cc.Fanin[lo+int32(pi)]
		if fr.flt.Node == id && !fr.flt.IsStem() && fr.flt.Gate == gi && fr.flt.Pin == int32(pi) {
			// The pin is stuck: a demanded value different from the stuck
			// value can never be seen.
			if fv != fr.flt.Stuck {
				fr.fail(id)
				return false
			}
			continue
		}
		if !fr.Assign(id, fv) {
			return false
		}
	}
	return true
}

// evalGateForward evaluates gate gi and merges its output value,
// returning false on conflict.
func (fr *Frame) evalGateForward(gi netlist.GateID) bool {
	cc := fr.cc
	gout := cc.GOut[gi]
	if _, stuck := fr.flt.StuckNode(gout); stuck {
		return true
	}
	v := cir.EvalOp(cc.Ops[gi], fr.seenInputs(gi, cc.FaninStart[gi], cc.FaninStart[gi+1]))
	if v == logic.X {
		return true
	}
	return fr.Assign(gout, v)
}

// BackwardSweep performs one dense pass over every gate from outputs to
// inputs (descending level order), applying the backward inference rules.
// It is the reference implementation of the paper's outputs-to-inputs
// pass; ImplyTwoPass uses the equivalent event-driven closure instead.
func (fr *Frame) BackwardSweep() bool {
	if fr.conflict {
		return false
	}
	order := fr.cc.Order
	for k := len(order) - 1; k >= 0; k-- {
		if !fr.inferGate(order[k]) {
			return false
		}
	}
	return true
}

// ForwardSweep performs one dense pass over every gate from inputs to
// outputs (ascending level order), evaluating each gate and merging its
// output value. It is the reference implementation of the paper's
// inputs-to-outputs pass.
func (fr *Frame) ForwardSweep() bool {
	if fr.conflict {
		return false
	}
	for _, gi := range fr.cc.Order {
		if !fr.evalGateForward(gi) {
			return false
		}
	}
	return true
}

// enq adds a gate to the active worklist once.
func (fr *Frame) enq(g netlist.GateID) {
	if !fr.inQ[g] {
		fr.inQ[g] = true
		fr.queue = append(fr.queue, g)
	}
}

// backwardClosure computes the closure of the backward inference rules
// over the changes logged since cursor: every gate whose output is newly
// binary, or whose output is binary and gained a newly binary input, is
// (re)processed until quiescence. The result contains every value a dense
// backward sweep derives (and possibly more, since the closure does not
// stop after a single pass).
//
// The drain loop is written out rather than shared through function values
// with forwardClosure: closures capturing fr would escape and allocate on
// every imply call, which pooled frames exist to avoid.
func (fr *Frame) backwardClosure(cursor *int) bool {
	if fr.conflict {
		return false
	}
	cc := fr.cc
	for {
		for ; *cursor < len(fr.changed); *cursor++ {
			n := fr.changed[*cursor]
			if d := cc.Driver[n]; d != netlist.NoGate {
				fr.enq(d)
			}
			for k := cc.FanoutStart[n]; k < cc.FanoutStart[n+1]; k++ {
				g := cc.FanoutGate[k]
				if fr.vals[cc.GOut[g]].IsBinary() {
					fr.enq(g)
				}
			}
		}
		if len(fr.queue) == 0 {
			return true
		}
		g := fr.queue[len(fr.queue)-1]
		fr.queue = fr.queue[:len(fr.queue)-1]
		fr.inQ[g] = false
		if !fr.inferGate(g) {
			fr.clearWorklist()
			return false
		}
	}
}

// forwardClosure computes the closure of forward evaluation over the
// changes logged since cursor: every gate reading a newly binary node is
// re-evaluated, cascading until quiescence.
func (fr *Frame) forwardClosure(cursor *int) bool {
	if fr.conflict {
		return false
	}
	cc := fr.cc
	for {
		for ; *cursor < len(fr.changed); *cursor++ {
			n := fr.changed[*cursor]
			for k := cc.FanoutStart[n]; k < cc.FanoutStart[n+1]; k++ {
				fr.enq(cc.FanoutGate[k])
			}
		}
		if len(fr.queue) == 0 {
			return true
		}
		g := fr.queue[len(fr.queue)-1]
		fr.queue = fr.queue[:len(fr.queue)-1]
		fr.inQ[g] = false
		if !fr.evalGateForward(g) {
			fr.clearWorklist()
			return false
		}
	}
}

// ImplyTwoPass runs the paper's implication schedule — implications from
// outputs to inputs, then from inputs to outputs — as two event-driven
// closures over the cone of the asserted values. It derives a superset of
// the values of the paper's dense two-sweep schedule at a cost
// proportional to the affected cone rather than the whole circuit, and
// returns false on conflict.
func (fr *Frame) ImplyTwoPass() bool {
	back, fwd := 0, 0
	return fr.backwardClosure(&back) && fr.forwardClosure(&fwd)
}

// ImplyFixpoint alternates backward and forward closures until no value
// changes or maxRounds round-trips have run (extension over the paper's
// two-pass schedule). It returns false on conflict.
func (fr *Frame) ImplyFixpoint(maxRounds int) bool {
	back, fwd := 0, 0
	for round := 0; round < maxRounds; round++ {
		before := len(fr.changed)
		if !fr.backwardClosure(&back) || !fr.forwardClosure(&fwd) {
			return false
		}
		if len(fr.changed) == before {
			return true
		}
	}
	return !fr.conflict
}

// Output returns the observed value of primary output j.
func (fr *Frame) Output(j int) logic.Val {
	return fr.vals[fr.cc.Outputs[j]]
}

// NextState returns the effective value latched by flip-flop i: the value
// of its D node, observed through any stem fault on its Q node.
func (fr *Frame) NextState(i int) logic.Val {
	return fr.flt.Observed(fr.cc.FFQ[i], fr.vals[fr.cc.FFD[i]])
}

// PresentState returns the effective value of flip-flop i's Q node in this
// frame.
func (fr *Frame) PresentState(i int) logic.Val {
	return fr.vals[fr.cc.FFQ[i]]
}

// AssignNextState asserts that flip-flop i latches value v at the end of
// this frame — the backward-implication entry point: setting present-state
// variable y_i = v at time u+1 sets next-state variable Y_i = v here.
// Asserting against a stem fault on the Q node conflicts unless v equals
// the stuck value (the latched value is unobservable then, so the
// assertion constrains nothing).
func (fr *Frame) AssignNextState(i int, v logic.Val) bool {
	q := fr.cc.FFQ[i]
	if sv, stuck := fr.flt.StuckNode(q); stuck {
		if v.IsBinary() && v != sv {
			fr.fail(q)
			return false
		}
		return true
	}
	return fr.Assign(fr.cc.FFD[i], v)
}
