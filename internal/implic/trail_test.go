package implic

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// framesEqual compares the externally observable state of two frames.
func framesEqual(t *testing.T, got, want *Frame, ctx string) {
	t.Helper()
	if got.Conflict() != want.Conflict() {
		t.Fatalf("%s: conflict = %v, want %v", ctx, got.Conflict(), want.Conflict())
	}
	for n := range want.vals {
		if got.vals[n] != want.vals[n] {
			t.Fatalf("%s: node %s = %v, want %v",
				ctx, got.cc.Net.NodeName(netlist.NodeID(n)), got.vals[n], want.vals[n])
		}
	}
}

// checkPristine asserts the frame's trail and worklist are empty and every
// inQ flag is down — the invariant Mark/UndoTo and Reset rely on.
func checkPristine(t *testing.T, fr *Frame, ctx string) {
	t.Helper()
	if len(fr.changed) != 0 {
		t.Fatalf("%s: trail has %d entries, want 0", ctx, len(fr.changed))
	}
	if len(fr.queue) != 0 {
		t.Fatalf("%s: worklist has %d entries, want 0", ctx, len(fr.queue))
	}
	for g, in := range fr.inQ {
		if in {
			t.Fatalf("%s: inQ[%d] still set", ctx, g)
		}
	}
}

// TestMarkUndoRoundTrip asserts that a single frame driven through many
// assign -> imply -> UndoTo rounds stays indistinguishable from a freshly
// allocated frame performing the same round, on random circuits with
// random assertion mixes (including conflicting ones).
func TestMarkUndoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nFF := 3 + rng.Intn(2)
		c, err := randomCircuit(rng, 2, nFF, 8+rng.Intn(14))
		if err != nil {
			continue
		}
		pi := make([]logic.Val, c.NumInputs())
		for i := range pi {
			pi[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		ps := make([]logic.Val, nFF)
		for i := range ps {
			ps[i] = logic.X
		}
		base := make([]logic.Val, c.NumNodes())
		seqsim.EvalFrame(c, pi, ps, nil, base)

		reused := New(c, nil, base)
		pristine := New(c, nil, base)
		for round := 0; round < 12; round++ {
			ffIdx := rng.Intn(nFF)
			alpha := logic.FromBool(rng.Intn(2) == 1)
			mark := reused.Mark()
			okReused := reused.AssignNextState(ffIdx, alpha) && reused.ImplyTwoPass()
			fresh := New(c, nil, base)
			okFresh := fresh.AssignNextState(ffIdx, alpha) && fresh.ImplyTwoPass()
			if okReused != okFresh {
				t.Fatalf("trial %d round %d: reused ok=%v, fresh ok=%v",
					trial, round, okReused, okFresh)
			}
			framesEqual(t, reused, fresh, "after imply")
			reused.UndoTo(mark)
			framesEqual(t, reused, pristine, "after undo")
			checkPristine(t, reused, "after undo")
		}
	}
}

// TestMarkUndoNested checks nested marks: implications layered on top of
// earlier implications roll back one layer at a time.
func TestMarkUndoNested(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	base := baseFrame(t, c, "1x", "x")
	fr := New(c, nil, base)
	q, _ := c.NodeByName("q")
	b, _ := c.NodeByName("b")

	m0 := fr.Mark()
	if !fr.Assign(q, logic.One) || !fr.ImplyTwoPass() {
		t.Fatal("layer 1 conflicted")
	}
	afterQ := make([]logic.Val, len(fr.vals))
	copy(afterQ, fr.vals)

	m1 := fr.Mark()
	if !fr.Assign(b, logic.Zero) || !fr.ImplyTwoPass() {
		t.Fatal("layer 2 conflicted")
	}
	fr.UndoTo(m1)
	for n := range afterQ {
		if fr.vals[n] != afterQ[n] {
			t.Fatalf("undo to m1: node %d = %v, want %v", n, fr.vals[n], afterQ[n])
		}
	}
	fr.UndoTo(m0)
	framesEqual(t, fr, New(c, nil, base), "undo to m0")
	checkPristine(t, fr, "undo to m0")
}

// TestUndoAfterConflict checks a conflicted frame is fully usable again
// after UndoTo, including the sparse worklist cleanup on the failure path.
func TestUndoAfterConflict(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	// a=0 forces y=0; b=0 forces d=0: asserting d=1 conflicts inside the
	// backward closure (not just at the assignment).
	base := baseFrame(t, c, "00", "x")
	fr := New(c, nil, base)
	mark := fr.Mark()
	if fr.AssignNextState(0, logic.One) && fr.ImplyTwoPass() {
		t.Fatal("expected conflict")
	}
	fr.UndoTo(mark)
	if fr.Conflict() {
		t.Fatal("conflict not cleared by undo")
	}
	framesEqual(t, fr, New(c, nil, base), "after undo")
	checkPristine(t, fr, "after undo")
	// The same frame must now run a consistent assertion cleanly.
	if !fr.AssignNextState(0, logic.Zero) || !fr.ImplyTwoPass() {
		t.Fatal("frame unusable after conflict undo")
	}
	ref := New(c, nil, base)
	ref.AssignNextState(0, logic.Zero)
	ref.ImplyTwoPass()
	framesEqual(t, fr, ref, "reuse after conflict")
}

// TestResetEqualsNew is the regression test for the sparse Reset: after
// arbitrary use — including a conflict, which exercises the failure-path
// worklist cleanup — Reset must leave the frame indistinguishable from a
// freshly allocated one, internals included.
func TestResetEqualsNew(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	baseA := baseFrame(t, c, "00", "x")
	baseB := baseFrame(t, c, "1x", "x")

	fr := New(c, nil, baseA)
	// Dirty the frame: run an implication to a conflict.
	if fr.AssignNextState(0, logic.One) && fr.ImplyTwoPass() {
		t.Fatal("expected conflict")
	}
	fr.Reset(baseB)
	framesEqual(t, fr, New(c, nil, baseB), "reset after conflict")
	checkPristine(t, fr, "reset after conflict")

	// Dirty it again with a successful implication, then reset.
	q, _ := c.NodeByName("q")
	if !fr.Assign(q, logic.One) || !fr.ImplyTwoPass() {
		t.Fatal("unexpected conflict")
	}
	fr.Reset(baseA)
	framesEqual(t, fr, New(c, nil, baseA), "reset after success")
	checkPristine(t, fr, "reset after success")
}

// TestResetFaultRebinds checks one pooled frame can serve different faulty
// machines: after ResetFault the frame behaves exactly like a frame newly
// allocated for that fault.
func TestResetFaultRebinds(t *testing.T) {
	c := mustParse(t, "ao", andOrBench)
	d, _ := c.NodeByName("d")
	f := fault.Fault{Node: d, Gate: netlist.NoGate, Stuck: logic.One}
	baseGood := baseFrame(t, c, "10", "x")
	baseBad := baseFrame(t, c, "00", "x", &f)

	fr := New(c, nil, baseGood)
	if !fr.AssignNextState(0, logic.One) || !fr.ImplyTwoPass() {
		t.Fatal("unexpected conflict on fault-free frame")
	}

	fr.ResetFault(&f, baseBad)
	// d is stuck at 1; asserting the FF latches 0 is impossible.
	if fr.AssignNextState(0, logic.Zero) {
		t.Fatal("assertion against stuck value accepted after ResetFault")
	}
	fr.ResetFault(nil, baseGood)
	ref := New(c, nil, baseGood)
	ref.AssignNextState(0, logic.One)
	ref.ImplyTwoPass()
	if !fr.AssignNextState(0, logic.One) || !fr.ImplyTwoPass() {
		t.Fatal("unexpected conflict after rebinding back")
	}
	framesEqual(t, fr, ref, "rebound to fault-free")
}
