package testability

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func node(t *testing.T, c *netlist.Circuit, name string) netlist.NodeID {
	t.Helper()
	id, ok := c.NodeByName(name)
	if !ok {
		t.Fatalf("node %s missing", name)
	}
	return id
}

func TestAndGateSCOAP(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	m := Compute(c)
	y := node(t, c, "y")
	a := node(t, c, "a")
	// CC1(y) = CC1(a)+CC1(b)+1 = 3; CC0(y) = min(CC0)+1 = 2.
	if m.CC1[y] != 3 || m.CC0[y] != 2 {
		t.Errorf("AND CC = (%d,%d), want (2,3)", m.CC0[y], m.CC1[y])
	}
	// CO(a) = CO(y) + CC1(b) + 1 = 0 + 1 + 1 = 2.
	if m.CO[a] != 2 {
		t.Errorf("CO(a) = %d, want 2", m.CO[a])
	}
	if m.CO[y] != 0 {
		t.Errorf("CO(y) = %d, want 0 (primary output)", m.CO[y])
	}
}

func TestNotAndConstSCOAP(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
k = CONST1()
n = NOT(a)
y = AND(n, k)
`)
	m := Compute(c)
	nID := node(t, c, "n")
	k := node(t, c, "k")
	if m.CC0[nID] != 2 || m.CC1[nID] != 2 {
		t.Errorf("NOT CC = (%d,%d), want (2,2)", m.CC0[nID], m.CC1[nID])
	}
	if m.CC1[k] != 0 || m.CC0[k] < Inf {
		t.Errorf("CONST1 CC = (%d,%d), want (Inf,0)", m.CC0[k], m.CC1[k])
	}
}

func TestXorSCOAP(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`)
	m := Compute(c)
	y := node(t, c, "y")
	// CC1 = min(CC0a+CC1b, CC1a+CC0b)+1 = 3; CC0 = min(0both, 1both)+1 = 3.
	if m.CC0[y] != 3 || m.CC1[y] != 3 {
		t.Errorf("XOR CC = (%d,%d), want (3,3)", m.CC0[y], m.CC1[y])
	}
	a := node(t, c, "a")
	// CO(a) = CO(y) + min(CC0b, CC1b) + 1 = 2.
	if m.CO[a] != 2 {
		t.Errorf("CO(a) = %d, want 2", m.CO[a])
	}
}

func TestFlipFlopAddsTimeFrameCost(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(o)
q = DFF(d)
d = BUFF(a)
o = BUFF(q)
`)
	m := Compute(c)
	q := node(t, c, "q")
	d := node(t, c, "d")
	// CC(q) = CC(d) + 1 = CC(a)+1+1 = 3.
	if m.CC0[q] != 3 || m.CC1[q] != 3 {
		t.Errorf("CC(q) = (%d,%d), want (3,3)", m.CC0[q], m.CC1[q])
	}
	// CO(d) = CO(q) + 1 = CO through o's buffer (1) + 1 = 2.
	if m.CO[d] != 2 {
		t.Errorf("CO(d) = %d, want 2", m.CO[d])
	}
}

func TestFeedbackLoopSaturates(t *testing.T) {
	// d = NOT(q): the loop has no input influence, so controllability of
	// q must saturate; o = AND(a, q) keeps q observable.
	c := mustParse(t, `
INPUT(a)
OUTPUT(o)
q = DFF(d)
d = NOT(q)
o = AND(a, q)
`)
	m := Compute(c)
	q := node(t, c, "q")
	if m.CC0[q] < Inf || m.CC1[q] < Inf {
		t.Errorf("feedback loop controllability should saturate, got (%d,%d)", m.CC0[q], m.CC1[q])
	}
	if m.CO[q] >= Inf {
		t.Error("q should still be observable")
	}
}

func TestUnobservableNode(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(o)
dead = NOT(a)
o = BUFF(a)
`)
	m := Compute(c)
	if m.CO[node(t, c, "dead")] < Inf {
		t.Error("dead node should be unobservable")
	}
}

func TestS27SequentialSCOAP(t *testing.T) {
	// s27 has a genuine cyclic justification dependency: setting G12 = 1
	// requires G7 = 0 in the same frame, which requires G13 = 0 in the
	// previous frame, which requires G12 = 1 there — so from the unknown
	// power-up state several values are not deterministically
	// justifiable. (This is exactly the unknown-state pessimism the MOT
	// approach addresses.) Sequential SCOAP must saturate on them.
	c := circuits.S27()
	m := Compute(c)
	g12 := node(t, c, "G12")
	if m.CC1[g12] < Inf {
		t.Errorf("CC1(G12) = %d, want saturated (cyclic justification)", m.CC1[g12])
	}
	if m.CC0[g12] >= Inf {
		t.Errorf("CC0(G12) = %d, want finite (set G1 = 1)", m.CC0[g12])
	}
	// The primary inputs are trivially controllable; the output is
	// observable by definition.
	for _, in := range []string{"G0", "G1", "G2", "G3"} {
		id := node(t, c, in)
		if m.CC0[id] != 1 || m.CC1[id] != 1 {
			t.Errorf("input %s CC = (%d,%d), want (1,1)", in, m.CC0[id], m.CC1[id])
		}
	}
	if m.CO[node(t, c, "G17")] != 0 {
		t.Error("primary output must have CO = 0")
	}
	// G11 drives both the output inverter and state logic: observable.
	if m.CO[node(t, c, "G11")] >= Inf {
		t.Error("G11 should be observable")
	}
}

func TestSummarizeS27(t *testing.T) {
	c := circuits.S27()
	m := Compute(c)
	s := m.Summarize(c)
	if s.Nodes != c.NumNodes() {
		t.Error("node count wrong")
	}
	// Golden regression for the sequential SCOAP on s27 (values derived
	// in TestS27SequentialSCOAP's comment): 9 nodes lack a deterministic
	// justification for one value, 8 lack deterministic sensitization.
	if s.UncontrollableNodes != 9 || s.UnobservableNodes != 8 {
		t.Errorf("s27 summary changed: %s", s)
	}
	if s.MeanCO <= 0 || s.MaxFiniteCC <= 0 {
		t.Errorf("implausible summary: %s", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

// TestMonotoneUnderObservabilityHelp checks a structural property: adding
// a direct observation point can only improve (reduce) CO values.
func TestMonotoneUnderObservabilityHelp(t *testing.T) {
	base := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
m = AND(a, b)
y = OR(m, b)
`)
	helped := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(m)
m = AND(a, b)
y = OR(m, b)
`)
	mb := Compute(base)
	mh := Compute(helped)
	for _, name := range []string{"a", "b", "m"} {
		nb := node(t, base, name)
		nh := node(t, helped, name)
		if mh.CO[nh] > mb.CO[nb] {
			t.Errorf("observing m worsened CO(%s): %d > %d", name, mh.CO[nh], mb.CO[nb])
		}
	}
}
