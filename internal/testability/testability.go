// Package testability computes SCOAP-style testability measures for
// sequential circuits: CC0/CC1 controllability (the effort to set a node
// to 0/1 from the primary inputs) and CO observability (the effort to
// propagate a node's value to a primary output), with flip-flops handled
// by fixpoint iteration as in sequential SCOAP.
//
// The measures are the classic heuristics [Goldstein, 1979]; in this
// repository they diagnose the synthetic benchmark circuits (uncontrollable
// or unobservable regions depress fault coverage) and rank fault sites.
package testability

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Inf is the saturation value for unreachable measures (for example, the
// controllabilities of a pure feedback loop).
const Inf = int32(1) << 28

// Measures holds the per-node testability values.
type Measures struct {
	// CC0[n] and CC1[n] estimate the number of line assignments needed to
	// set node n to 0 / 1.
	CC0, CC1 []int32
	// CO[n] estimates the number of line assignments needed to propagate
	// node n's value to a primary output.
	CO []int32
}

// sat adds with saturation at Inf.
func sat(a, b int32) int32 {
	s := a + b
	if s >= Inf || s < 0 {
		return Inf
	}
	return s
}

// Compute returns the SCOAP measures for the circuit. Flip-flop
// controllability and observability iterate to a fixpoint (the measures
// are monotonically decreasing from the Inf start, so iteration
// terminates).
func Compute(c *netlist.Circuit) *Measures {
	n := c.NumNodes()
	m := &Measures{
		CC0: make([]int32, n),
		CC1: make([]int32, n),
		CO:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		m.CC0[i], m.CC1[i], m.CO[i] = Inf, Inf, Inf
	}
	for _, id := range c.Inputs {
		m.CC0[id], m.CC1[id] = 1, 1
	}
	// Controllability fixpoint: combinational sweep + flip-flop transfer.
	for changed := true; changed; {
		changed = false
		for _, gi := range c.Order {
			g := &c.Gates[gi]
			cc0, cc1 := gateControllability(m, g)
			if cc0 < m.CC0[g.Out] {
				m.CC0[g.Out] = cc0
				changed = true
			}
			if cc1 < m.CC1[g.Out] {
				m.CC1[g.Out] = cc1
				changed = true
			}
		}
		for _, ff := range c.FFs {
			// Latching through the flip-flop costs one time frame.
			if v := sat(m.CC0[ff.D], 1); v < m.CC0[ff.Q] {
				m.CC0[ff.Q] = v
				changed = true
			}
			if v := sat(m.CC1[ff.D], 1); v < m.CC1[ff.Q] {
				m.CC1[ff.Q] = v
				changed = true
			}
		}
	}
	// Observability fixpoint: primary outputs are free; walk backward.
	for _, id := range c.Outputs {
		m.CO[id] = 0
	}
	for changed := true; changed; {
		changed = false
		for k := len(c.Order) - 1; k >= 0; k-- {
			g := &c.Gates[c.Order[k]]
			for pi := range g.In {
				if v := pinObservability(m, g, pi); v < m.CO[g.In[pi]] {
					m.CO[g.In[pi]] = v
					changed = true
				}
			}
		}
		for _, ff := range c.FFs {
			if v := sat(m.CO[ff.Q], 1); v < m.CO[ff.D] {
				m.CO[ff.D] = v
				changed = true
			}
		}
	}
	return m
}

// gateControllability computes (CC0, CC1) of a gate output from its
// input measures using the classic SCOAP rules.
func gateControllability(m *Measures, g *netlist.Gate) (cc0, cc1 int32) {
	switch g.Op {
	case logic.Const0:
		return 0, Inf
	case logic.Const1:
		return Inf, 0
	case logic.Buf:
		return sat(m.CC0[g.In[0]], 1), sat(m.CC1[g.In[0]], 1)
	case logic.Not:
		return sat(m.CC1[g.In[0]], 1), sat(m.CC0[g.In[0]], 1)
	case logic.And, logic.Nand, logic.Or, logic.Nor:
		// controlled: one input at the controlling value (cheapest);
		// non-controlled: all inputs at the non-controlling value.
		var ctrlCC, nonCC []int32
		if g.Op == logic.And || g.Op == logic.Nand {
			ctrlCC, nonCC = m.CC0, m.CC1
		} else {
			ctrlCC, nonCC = m.CC1, m.CC0
		}
		minCtrl, sumNon := Inf, int32(1)
		for _, in := range g.In {
			if ctrlCC[in] < minCtrl {
				minCtrl = ctrlCC[in]
			}
			sumNon = sat(sumNon, nonCC[in])
		}
		controlled := sat(minCtrl, 1)
		nonControlled := sumNon
		out0, out1 := controlled, nonControlled // AND/OR orientation below
		switch g.Op {
		case logic.And:
			out0, out1 = controlled, nonControlled
		case logic.Nand:
			out0, out1 = nonControlled, controlled
		case logic.Or:
			out0, out1 = nonControlled, controlled
		case logic.Nor:
			out0, out1 = controlled, nonControlled
		}
		return out0, out1
	case logic.Xor, logic.Xnor:
		// Dynamic program over parity: cost[p] is the cheapest way to set
		// the inputs with parity p.
		even, odd := int32(0), Inf
		for _, in := range g.In {
			e2 := minInt32(sat(even, m.CC0[in]), sat(odd, m.CC1[in]))
			o2 := minInt32(sat(even, m.CC1[in]), sat(odd, m.CC0[in]))
			even, odd = e2, o2
		}
		if g.Op == logic.Xor {
			return sat(even, 1), sat(odd, 1)
		}
		return sat(odd, 1), sat(even, 1)
	}
	return Inf, Inf
}

// pinObservability computes the observability of gate input pin pi: the
// cost of propagating that pin through the gate plus the gate output's
// own observability.
func pinObservability(m *Measures, g *netlist.Gate, pi int) int32 {
	co := m.CO[g.Out]
	if co >= Inf {
		return Inf
	}
	cost := sat(co, 1)
	switch g.Op {
	case logic.Buf, logic.Not:
		return cost
	case logic.And, logic.Nand, logic.Or, logic.Nor:
		// The other inputs must hold the non-controlling value.
		nonCC := m.CC1
		if g.Op == logic.Or || g.Op == logic.Nor {
			nonCC = m.CC0
		}
		for pj, in := range g.In {
			if pj != pi {
				cost = sat(cost, nonCC[in])
			}
		}
		return cost
	case logic.Xor, logic.Xnor:
		// The other inputs must merely be set to known values.
		for pj, in := range g.In {
			if pj != pi {
				cost = sat(cost, minInt32(m.CC0[in], m.CC1[in]))
			}
		}
		return cost
	}
	return Inf
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Summary aggregates whole-circuit statistics for diagnostics.
type Summary struct {
	Nodes                        int
	UncontrollableNodes          int // CC0 or CC1 saturated
	UnobservableNodes            int // CO saturated
	MaxFiniteCC                  int32
	MaxFiniteCO                  int32
	MeanCC0, MeanCC1             float64
	MeanCO                       float64
	HardestControllable          netlist.NodeID
	HardestObservable            netlist.NodeID
	finiteCCCount, finiteCOCount int
}

// Summarize computes the summary over all nodes.
func (m *Measures) Summarize(c *netlist.Circuit) Summary {
	s := Summary{Nodes: c.NumNodes(), HardestControllable: netlist.NoNode, HardestObservable: netlist.NoNode}
	var sum0, sum1, sumO float64
	for n := 0; n < c.NumNodes(); n++ {
		cc0, cc1, co := m.CC0[n], m.CC1[n], m.CO[n]
		if cc0 >= Inf || cc1 >= Inf {
			s.UncontrollableNodes++
		} else {
			worst := maxInt32(cc0, cc1)
			if worst > s.MaxFiniteCC {
				s.MaxFiniteCC = worst
				s.HardestControllable = netlist.NodeID(n)
			}
			sum0 += float64(cc0)
			sum1 += float64(cc1)
			s.finiteCCCount++
		}
		if co >= Inf {
			s.UnobservableNodes++
		} else {
			if co > s.MaxFiniteCO {
				s.MaxFiniteCO = co
				s.HardestObservable = netlist.NodeID(n)
			}
			sumO += float64(co)
			s.finiteCOCount++
		}
	}
	if s.finiteCCCount > 0 {
		s.MeanCC0 = sum0 / float64(s.finiteCCCount)
		s.MeanCC1 = sum1 / float64(s.finiteCCCount)
	}
	if s.finiteCOCount > 0 {
		s.MeanCO = sumO / float64(s.finiteCOCount)
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf(
		"nodes=%d uncontrollable=%d unobservable=%d maxCC=%d maxCO=%d meanCC0=%.1f meanCC1=%.1f meanCO=%.1f",
		s.Nodes, s.UncontrollableNodes, s.UnobservableNodes,
		s.MaxFiniteCC, s.MaxFiniteCO, s.MeanCC0, s.MeanCC1, s.MeanCO)
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
