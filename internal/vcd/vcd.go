// Package vcd renders simulation traces in the IEEE 1364 Value Change
// Dump format, the lingua franca of waveform viewers. It lets a user
// inspect fault-free and faulty machine behaviour — including the
// unknown (x) values that are the subject of the MOT approach — in any
// standard viewer.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// idCode builds the short VCD identifier for variable n (printable ASCII
// 33..126, little-endian base-94).
func idCode(n int) string {
	var sb strings.Builder
	for {
		sb.WriteByte(byte(33 + n%94))
		n /= 94
		if n == 0 {
			return sb.String()
		}
	}
}

// valChar renders a three-valued value as a VCD scalar.
func valChar(v logic.Val) byte {
	switch v {
	case logic.Zero:
		return '0'
	case logic.One:
		return '1'
	}
	return 'x'
}

// Options selects what to dump.
type Options struct {
	// Module is the scope name (defaults to the circuit name).
	Module string
	// AllNodes dumps every node; otherwise only primary inputs, primary
	// outputs and state variables are dumped. Dumping all nodes requires
	// a trace that retained node values.
	AllNodes bool
	// Timescale is the VCD timescale directive (default "1ns"); one time
	// frame advances the clock by 10 units with the sequence pattern
	// applied at the frame start.
	Timescale string
}

// Write renders the trace of circuit c under test sequence T as a VCD
// document.
func Write(w io.Writer, c *netlist.Circuit, T seqsim.Sequence, tr *seqsim.Trace, opts Options) error {
	if opts.AllNodes && tr.Nodes == nil {
		return fmt.Errorf("vcd: AllNodes requires a trace with node values")
	}
	if len(tr.Outputs) < len(T) {
		return fmt.Errorf("vcd: trace is shorter than the sequence")
	}
	module := opts.Module
	if module == "" {
		module = c.Name
	}
	timescale := opts.Timescale
	if timescale == "" {
		timescale = "1ns"
	}

	// Select the dumped nodes.
	var nodes []netlist.NodeID
	if opts.AllNodes {
		for n := 0; n < c.NumNodes(); n++ {
			nodes = append(nodes, netlist.NodeID(n))
		}
	} else {
		nodes = append(nodes, c.Inputs...)
		for _, ff := range c.FFs {
			nodes = append(nodes, ff.Q)
		}
		nodes = append(nodes, c.Outputs...)
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date reproduction run $end\n$version motsim $end\n$timescale %s $end\n", timescale)
	fmt.Fprintf(bw, "$scope module %s $end\n", module)
	codes := make(map[netlist.NodeID]string, len(nodes))
	for i, id := range nodes {
		code := idCode(i)
		codes[id] = code
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", code, sanitize(c.NodeName(id)))
	}
	fmt.Fprintln(bw, "$upscope $end\n$enddefinitions $end")

	// valueAt resolves a node's value in frame u.
	valueAt := func(u int, id netlist.NodeID) logic.Val {
		if tr.Nodes != nil {
			return tr.Nodes[u][id]
		}
		n := &c.Nodes[id]
		switch {
		case n.Kind == netlist.KindInput:
			for i, in := range c.Inputs {
				if in == id {
					return T[u][i]
				}
			}
		case n.Kind == netlist.KindState:
			return tr.States[u][n.FF]
		default:
			for j, out := range c.Outputs {
				if out == id {
					return tr.Outputs[u][j]
				}
			}
		}
		return logic.X
	}

	last := make(map[netlist.NodeID]logic.Val, len(nodes))
	fmt.Fprintln(bw, "$dumpvars")
	for _, id := range nodes {
		v := valueAt(0, id)
		last[id] = v
		fmt.Fprintf(bw, "%c%s\n", valChar(v), codes[id])
	}
	fmt.Fprintln(bw, "$end")
	for u := 1; u < len(T); u++ {
		fmt.Fprintf(bw, "#%d\n", u*10)
		for _, id := range nodes {
			v := valueAt(u, id)
			if v != last[id] {
				last[id] = v
				fmt.Fprintf(bw, "%c%s\n", valChar(v), codes[id])
			}
		}
	}
	fmt.Fprintf(bw, "#%d\n", len(T)*10)
	return bw.Flush()
}

// sanitize makes a signal name VCD-safe.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

// Format renders the VCD document as a string.
func Format(c *netlist.Circuit, T seqsim.Sequence, tr *seqsim.Trace, opts Options) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, c, T, tr, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}
