package vcd

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

func traceOf(t *testing.T, keepNodes bool) (*netlist.Circuit, seqsim.Sequence, *seqsim.Trace) {
	t.Helper()
	c, err := bench.ParseString("w", `
INPUT(r)
INPUT(x)
OUTPUT(obs)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
obs = BUFF(q)
`)
	if err != nil {
		t.Fatal(err)
	}
	T, err := seqsim.ParseSequence([]string{"00", "11", "10"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := seqsim.New(c).Run(T, nil, keepNodes)
	if err != nil {
		t.Fatal(err)
	}
	return c, T, tr
}

func TestWriteBasicStructure(t *testing.T) {
	c, T, tr := traceOf(t, false)
	out, err := Format(c, T, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"$timescale 1ns $end",
		"$scope module w $end",
		"$var wire 1 ! r $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#10", "#20", "#30",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("VCD missing %q:\n%s", frag, out)
		}
	}
	// Initial values: r=0, x=0, q=x, obs=x.
	if !strings.Contains(out, "x\"") && !strings.Contains(out, "x#") {
		t.Error("initial unknown values not dumped")
	}
}

func TestWriteOnlyChangesAfterFirstFrame(t *testing.T) {
	c, T, tr := traceOf(t, false)
	out, err := Format(c, T, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// q initializes to 0 at time 1 (r=0 forces d=0); the change must be
	// dumped in the #10 section exactly once.
	sections := strings.Split(out, "#10")
	if len(sections) != 2 {
		t.Fatalf("expected one #10 marker, got %d", len(sections)-1)
	}
}

func TestWriteAllNodes(t *testing.T) {
	c, T, tr := traceOf(t, true)
	out, err := Format(c, T, tr, Options{AllNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	// Internal signals t and d must appear.
	if !strings.Contains(out, " t $end") || !strings.Contains(out, " d $end") {
		t.Errorf("internal nodes missing:\n%s", out)
	}
}

func TestWriteAllNodesRequiresNodeTrace(t *testing.T) {
	c, T, tr := traceOf(t, false)
	if _, err := Format(c, T, tr, Options{AllNodes: true}); err == nil {
		t.Fatal("AllNodes without node values accepted")
	}
}

func TestWriteTraceTooShort(t *testing.T) {
	c, T, tr := traceOf(t, false)
	longer := append(seqsim.Sequence{}, T...)
	longer = append(longer, seqsim.Pattern{logic.Zero, logic.Zero})
	if _, err := Format(c, longer, tr, Options{}); err == nil {
		t.Fatal("short trace accepted")
	}
}

func TestIDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		code := idCode(i)
		if code == "" || seen[code] {
			t.Fatalf("idCode(%d) = %q not unique", i, code)
		}
		seen[code] = true
		for j := 0; j < len(code); j++ {
			if code[j] < 33 || code[j] > 126 {
				t.Fatalf("idCode(%d) contains non-printable byte", i)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("a->b.0/SA1") != "a__b_0_SA1" {
		t.Errorf("sanitize wrong: %q", sanitize("a->b.0/SA1"))
	}
}

func TestModuleOverrideAndTimescale(t *testing.T) {
	c, T, tr := traceOf(t, false)
	out, err := Format(c, T, tr, Options{Module: "dut", Timescale: "10ps"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$scope module dut $end") || !strings.Contains(out, "$timescale 10ps $end") {
		t.Error("options ignored")
	}
}
