// Package diagnosis implements pass/fail fault-dictionary diagnosis on
// top of the fault simulator: each fault's syndrome — the set of (time,
// output) positions where its response definitely or potentially differs
// from the fault-free response — is precomputed, and an observed failure
// set from a tester is matched against the dictionary.
//
// Three-valued simulation gives each fault two position sets:
//
//   - must: the fault-free value and the faulty value are opposite binary
//     values — the position fails on every device with this fault;
//   - may: the fault-free value is binary but the faulty value is X — the
//     position may pass or fail depending on the device's initial state
//     (the same unknown-initial-state effect the MOT approach exploits).
//
// A candidate fault is consistent with an observation iff
// must ⊆ observed ⊆ must ∪ may.
package diagnosis

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
)

// Position identifies one observation point: output j at time frame u.
type Position struct {
	Time   int
	Output int
}

// bitset is a fixed-size bitset over observation positions.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]>>uint(i%64)&1 == 1 }
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// subset reports whether b ⊆ other.
func (b bitset) subset(other bitset) bool {
	for i, w := range b {
		if w&^other[i] != 0 {
			return false
		}
	}
	return true
}

// subsetOfUnion reports whether b ⊆ (x ∪ y).
func (b bitset) subsetOfUnion(x, y bitset) bool {
	for i, w := range b {
		if w&^(x[i]|y[i]) != 0 {
			return false
		}
	}
	return true
}

// Entry is one dictionary row.
type Entry struct {
	Fault fault.Fault
	must  bitset
	may   bitset
}

// MustCount returns the number of definite failing positions.
func (e *Entry) MustCount() int { return e.must.count() }

// MayCount returns the number of potential failing positions.
func (e *Entry) MayCount() int { return e.may.count() }

// Dictionary is a pass/fail fault dictionary for one circuit and test
// sequence.
type Dictionary struct {
	c         *netlist.Circuit
	T         seqsim.Sequence
	positions int
	Entries   []Entry
}

// Build simulates every fault to completion (no fault dropping) and
// records its syndrome.
func Build(c *netlist.Circuit, T seqsim.Sequence, faults []fault.Fault) (*Dictionary, error) {
	sim := seqsim.New(c)
	good, err := sim.Run(T, nil, true)
	if err != nil {
		return nil, err
	}
	d := &Dictionary{c: c, T: T, positions: len(T) * c.NumOutputs()}
	d.Entries = make([]Entry, 0, len(faults))
	for _, f := range faults {
		bad, err := sim.Run(T, &f, false)
		if err != nil {
			return nil, err
		}
		e := Entry{Fault: f, must: newBitset(d.positions), may: newBitset(d.positions)}
		for u := range T {
			for j := range good.Outputs[u] {
				g, b := good.Outputs[u][j], bad.Outputs[u][j]
				if !g.IsBinary() {
					continue
				}
				idx := u*c.NumOutputs() + j
				switch {
				case b.IsBinary() && b != g:
					e.must.set(idx)
				case !b.IsBinary():
					e.may.set(idx)
				}
			}
		}
		d.Entries = append(d.Entries, e)
	}
	return d, nil
}

// index converts a position to a bit index, checking bounds.
func (d *Dictionary) index(p Position) (int, error) {
	if p.Time < 0 || p.Time >= len(d.T) || p.Output < 0 || p.Output >= d.c.NumOutputs() {
		return 0, fmt.Errorf("diagnosis: position %+v out of range", p)
	}
	return p.Time*d.c.NumOutputs() + p.Output, nil
}

// Observation is the failure set reported by a tester.
type Observation struct {
	d   *Dictionary
	set bitset
}

// NewObservation builds an observation from failing positions.
func (d *Dictionary) NewObservation(failures []Position) (*Observation, error) {
	o := &Observation{d: d, set: newBitset(d.positions)}
	for _, p := range failures {
		idx, err := d.index(p)
		if err != nil {
			return nil, err
		}
		o.set.set(idx)
	}
	return o, nil
}

// ObservationOf builds the observation a device with fault f and the
// given binary initial state would produce — useful for experiments and
// for validating the dictionary against itself.
func (d *Dictionary) ObservationOf(f fault.Fault, initialState []int) (*Observation, error) {
	c := d.c
	if len(initialState) != c.NumFFs() {
		return nil, fmt.Errorf("diagnosis: initial state has %d bits, circuit has %d flip-flops",
			len(initialState), c.NumFFs())
	}
	sim := seqsim.New(c)
	good, err := sim.Run(d.T, nil, false)
	if err != nil {
		return nil, err
	}
	vals := make([]logic.Val, c.NumNodes())
	state := make([]logic.Val, c.NumFFs())
	for i := range state {
		state[i] = logic.FromBool(initialState[i] != 0)
		state[i] = f.Observed(c.FFs[i].Q, state[i])
	}
	o := &Observation{d: d, set: newBitset(d.positions)}
	for u := range d.T {
		seqsim.EvalFrame(c, d.T[u], state, &f, vals)
		for j, id := range c.Outputs {
			g := good.Outputs[u][j]
			if g.IsBinary() && vals[id].IsBinary() && vals[id] != g {
				o.set.set(u*c.NumOutputs() + j)
			}
		}
		next := make([]logic.Val, c.NumFFs())
		for i, ff := range c.FFs {
			next[i] = f.Observed(ff.Q, vals[ff.D])
		}
		state = next
	}
	return o, nil
}

// Candidate is one diagnosis result.
type Candidate struct {
	Fault fault.Fault
	// Exact reports full consistency: must ⊆ observed ⊆ must ∪ may.
	Exact bool
	// Matched is the number of observed failures the fault explains.
	Matched int
	// Missed is the number of observed failures the fault cannot produce.
	Missed int
	// Unexplained is the number of definite failures of the fault that
	// were not observed.
	Unexplained int
}

// Diagnose returns the candidate list, consistent candidates first,
// then by descending Matched and ascending Missed+Unexplained. The full
// ranked list supports diagnosis even when no candidate is perfectly
// consistent (e.g., a defect outside the fault model).
func (d *Dictionary) Diagnose(o *Observation) []Candidate {
	out := make([]Candidate, 0, len(d.Entries))
	for k := range d.Entries {
		e := &d.Entries[k]
		cand := Candidate{Fault: e.Fault}
		cand.Exact = e.must.subset(o.set) && o.set.subsetOfUnion(e.must, e.may)
		for i, w := range o.set {
			cand.Matched += bits.OnesCount64(w & (e.must[i] | e.may[i]))
			cand.Missed += bits.OnesCount64(w &^ (e.must[i] | e.may[i]))
			cand.Unexplained += bits.OnesCount64(e.must[i] &^ w)
		}
		out = append(out, cand)
	}
	sort.SliceStable(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// better orders candidates.
func better(a, b Candidate) bool {
	if a.Exact != b.Exact {
		return a.Exact
	}
	if a.Matched != b.Matched {
		return a.Matched > b.Matched
	}
	return a.Missed+a.Unexplained < b.Missed+b.Unexplained
}
