package diagnosis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

func TestBitsetOps(t *testing.T) {
	a := newBitset(130)
	b := newBitset(130)
	a.set(0)
	a.set(129)
	b.set(0)
	b.set(64)
	b.set(129)
	if !a.subset(b) {
		t.Error("a should be subset of b")
	}
	if b.subset(a) {
		t.Error("b should not be subset of a")
	}
	if a.count() != 2 || b.count() != 3 {
		t.Error("count wrong")
	}
	u := newBitset(130)
	u.set(64)
	if !b.subsetOfUnion(a, u) {
		t.Error("b should be subset of a ∪ u")
	}
	if !a.get(129) || a.get(1) {
		t.Error("get wrong")
	}
}

// dictOf builds a dictionary for the reset circuit over a fixed sequence.
func dictOf(t *testing.T) (*Dictionary, *netlist.Circuit, []fault.Fault) {
	t.Helper()
	c, err := bench.ParseString("rst", `
INPUT(r)
INPUT(x)
OUTPUT(o1)
OUTPUT(o2)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
o1 = BUFF(q)
o2 = NOR(t, x)
`)
	if err != nil {
		t.Fatal(err)
	}
	T, err := seqsim.ParseSequence([]string{"00", "11", "10", "01", "11"})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedList(c)
	d, err := Build(c, T, faults)
	if err != nil {
		t.Fatal(err)
	}
	return d, c, faults
}

func TestDictionarySelfDiagnosis(t *testing.T) {
	d, c, faults := dictOf(t)
	// For every fault and every initial state, diagnosing the device's
	// own observation must rank that fault (or an equivalent one) as an
	// exact candidate.
	for k, f := range faults {
		for init := 0; init < 2; init++ {
			obs, err := d.ObservationOf(f, []int{init})
			if err != nil {
				t.Fatal(err)
			}
			cands := d.Diagnose(obs)
			found := false
			for _, cand := range cands {
				if !cand.Exact {
					break // exact candidates sort first
				}
				if cand.Fault == f {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fault %d (%s), init %d: own observation not exactly matched",
					k, f.Name(c), init)
			}
		}
	}
}

func TestDiagnoseEmptyObservation(t *testing.T) {
	d, _, _ := dictOf(t)
	obs, err := d.NewObservation(nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Diagnose(obs)
	// Faults with non-empty must sets cannot be exact for a passing
	// device.
	for _, cand := range cands {
		if cand.Exact && cand.Unexplained > 0 {
			t.Fatal("exact candidate with unexplained definite failures")
		}
	}
}

func TestNewObservationBounds(t *testing.T) {
	d, _, _ := dictOf(t)
	if _, err := d.NewObservation([]Position{{Time: 99, Output: 0}}); err == nil {
		t.Error("out-of-range time accepted")
	}
	if _, err := d.NewObservation([]Position{{Time: 0, Output: 7}}); err == nil {
		t.Error("out-of-range output accepted")
	}
	if _, err := d.ObservationOf(fault.Fault{Node: 0, Gate: netlist.NoGate, Stuck: logic.One}, []int{0, 1}); err == nil {
		t.Error("wrong initial-state width accepted")
	}
}

func TestRankingPrefersExplanatoryFault(t *testing.T) {
	d, c, faults := dictOf(t)
	// Observe the must-set of a fault with definite failures; that fault
	// must outrank faults explaining nothing.
	var target int = -1
	for k := range d.Entries {
		if d.Entries[k].MustCount() > 0 {
			target = k
			break
		}
	}
	if target < 0 {
		t.Skip("no fault with definite failures")
	}
	var failures []Position
	for u := 0; u < len(d.T); u++ {
		for j := 0; j < c.NumOutputs(); j++ {
			if d.Entries[target].must.get(u*c.NumOutputs() + j) {
				failures = append(failures, Position{Time: u, Output: j})
			}
		}
	}
	obs, err := d.NewObservation(failures)
	if err != nil {
		t.Fatal(err)
	}
	cands := d.Diagnose(obs)
	if cands[0].Matched == 0 {
		t.Fatal("top candidate explains nothing")
	}
	found := false
	for _, cand := range cands[:5] {
		if cand.Fault == faults[target] {
			found = true
		}
	}
	if !found {
		t.Fatalf("target fault %s not in top candidates", faults[target].Name(c))
	}
}

// TestSelfDiagnosisRandom extends the self-diagnosis property to random
// circuits and initial states.
func TestSelfDiagnosisRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	trials := 0
	for trials < 8 {
		c, err := randomCircuit(rng, 2, 3, 8+rng.Intn(10))
		if err != nil {
			continue
		}
		trials++
		T := tgen.Random(c.NumInputs(), 6, int64(trials))
		faults := fault.CollapsedList(c)
		d, err := Build(c, T, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			init := make([]int, c.NumFFs())
			for i := range init {
				init[i] = rng.Intn(2)
			}
			obs, err := d.ObservationOf(f, init)
			if err != nil {
				t.Fatal(err)
			}
			cands := d.Diagnose(obs)
			ok := false
			for _, cand := range cands {
				if cand.Exact && cand.Fault == f {
					ok = true
					break
				}
				if !cand.Exact {
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: fault %s own observation inconsistent", trials, f.Name(c))
			}
		}
	}
}

func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 2 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

func TestDictionaryOnS27(t *testing.T) {
	c := circuits.S27()
	T := tgen.Random(4, 16, 42)
	d, err := Build(c, T, fault.CollapsedList(c))
	if err != nil {
		t.Fatal(err)
	}
	withMust := 0
	for k := range d.Entries {
		if d.Entries[k].MustCount() > 0 {
			withMust++
		}
		if d.Entries[k].MayCount() < 0 {
			t.Fatal("negative may count")
		}
	}
	if withMust == 0 {
		t.Fatal("no fault has definite failures on s27")
	}
}
