package seqsim

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// goldenRun is an independent sequential simulator written directly
// against the pointer-chasing netlist model — the shape of the
// pre-compiled-IR evaluators. It is the byte-identical reference the
// cone-restricted, delta-evaluating Simulator is cross-checked against.
func goldenRun(c *netlist.Circuit, T Sequence, f *fault.Fault, keepNodes bool) *Trace {
	tr := &Trace{
		States:  make([][]logic.Val, 0, len(T)+1),
		Outputs: make([][]logic.Val, 0, len(T)),
	}
	if keepNodes {
		tr.Nodes = make([][]logic.Val, 0, len(T))
	}
	state := make([]logic.Val, c.NumFFs())
	for i, ff := range c.FFs {
		state[i] = f.Observed(ff.Q, ff.Init)
	}
	tr.States = append(tr.States, state)
	vals := make([]logic.Val, c.NumNodes())
	var in []logic.Val
	for _, pat := range T {
		for i, id := range c.Inputs {
			vals[id] = f.Observed(id, pat[i])
		}
		for i, ff := range c.FFs {
			vals[ff.Q] = f.Observed(ff.Q, state[i])
		}
		for _, gi := range c.Order {
			g := &c.Gates[gi]
			if v, ok := f.StuckNode(g.Out); ok {
				vals[g.Out] = v
				continue
			}
			in = in[:0]
			for k, id := range g.In {
				in = append(in, f.SeenBy(gi, int32(k), id, vals[id]))
			}
			vals[g.Out] = logic.Eval(g.Op, in)
		}
		out := make([]logic.Val, c.NumOutputs())
		for j, id := range c.Outputs {
			out[j] = vals[id]
		}
		tr.Outputs = append(tr.Outputs, out)
		if keepNodes {
			frame := make([]logic.Val, len(vals))
			copy(frame, vals)
			tr.Nodes = append(tr.Nodes, frame)
		}
		next := make([]logic.Val, c.NumFFs())
		for i, ff := range c.FFs {
			next[i] = f.Observed(ff.Q, vals[ff.D])
		}
		state = next
		tr.States = append(tr.States, state)
	}
	return tr
}

// equalRows compares two [][]logic.Val traces element-wise.
func equalRows(a, b [][]logic.Val) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return false
			}
		}
	}
	return true
}

// TestRunMatchesGolden cross-checks the compiled-IR simulator — both the
// cone-restricted delta path (RunFault against a fault-free baseline)
// and the full-pass Run — against the golden pointer-model simulator:
// states, outputs and node streams must be byte-identical, and RunFault
// must report exactly the golden trace's first detection.
func TestRunMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		c, err := randomCircuit(rng, 2+rng.Intn(3), 1+rng.Intn(4), 8+rng.Intn(32))
		if err != nil {
			continue
		}
		T := randomSequence(rng, c.NumInputs(), 5)
		sim := New(c)
		good, err := sim.Run(T, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if g := goldenRun(c, T, &fault.Fault{Node: netlist.NoNode, Gate: netlist.NoGate}, true); !equalRows(good.Outputs, g.Outputs) ||
			!equalRows(good.States, g.States) || !equalRows(good.Nodes, g.Nodes) {
			t.Fatalf("trial %d: fault-free trace differs from golden", trial)
		}
		faults := fault.List(c)
		for i := range faults {
			f := faults[i]
			want := goldenRun(c, T, &f, true)

			bad, err := sim.Run(T, &f, true)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRows(bad.Outputs, want.Outputs) || !equalRows(bad.States, want.States) ||
				!equalRows(bad.Nodes, want.Nodes) {
				t.Fatalf("trial %d, %s: Run trace differs from golden", trial, f.Name(c))
			}

			tr, at, detected, err := sim.RunFault(T, good, f, true)
			if err != nil {
				t.Fatal(err)
			}
			wantAt, wantDet := FirstDetection(good, want)
			if detected != wantDet || (detected && at != wantAt) {
				t.Fatalf("trial %d, %s: RunFault detection (%v,%+v), golden (%v,%+v)",
					trial, f.Name(c), detected, at, wantDet, wantAt)
			}
			// RunFault drops the fault at first detection; the prefix up to
			// and including the detection frame must match the golden trace.
			n := len(tr.Outputs)
			if !equalRows(tr.Outputs, want.Outputs[:n]) || !equalRows(tr.States, want.States[:n+1]) ||
				!equalRows(tr.Nodes, want.Nodes[:n]) {
				t.Fatalf("trial %d, %s: RunFault trace prefix differs from golden", trial, f.Name(c))
			}
		}
	}
}
