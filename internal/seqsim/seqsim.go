// Package seqsim implements conventional three-valued simulation of
// synchronous sequential circuits: fault-free simulation, serial stuck-at
// fault simulation with fault dropping, and detection checking under the
// single observation time approach.
//
// Simulation starts from the all-unspecified (X) initial state and applies
// one input pattern per time frame, exactly as in the fault simulators the
// paper builds on [1].
package seqsim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Pattern is one input vector: one value per primary input, in the
// circuit's input order.
type Pattern []logic.Val

// Sequence is a test sequence: Sequence[u] is the pattern applied at time
// frame u.
type Sequence []Pattern

// ParseSequence parses one pattern string per element, e.g. {"1011", "0x10"}.
func ParseSequence(lines []string) (Sequence, error) {
	seq := make(Sequence, len(lines))
	for i, s := range lines {
		p, err := logic.ParseVals(s)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		seq[i] = p
	}
	return seq, nil
}

// Trace records the simulation history of one machine (fault-free or
// faulty) over a test sequence of length L.
type Trace struct {
	// States[u] holds the effective present-state values at time u, for
	// u in [0, L]. States[0] is the initial state; States[L] is the state
	// after the final pattern.
	States [][]logic.Val
	// Outputs[u] holds the observed primary-output values at time u, for
	// u in [0, L-1].
	Outputs [][]logic.Val
	// Nodes[u] holds every node's effective value in frame u, for u in
	// [0, L-1]. Nil unless the simulation was asked to keep node values.
	Nodes [][]logic.Val

	// Preallocated row storage for RunFaultInto (nil on traces built by
	// Run/RunFault). States/Outputs/Nodes above are truncated views of
	// these rows; the backing arrays are reused across calls.
	allStates  [][]logic.Val
	allOutputs [][]logic.Val
	allNodes   [][]logic.Val
}

// makeRows carves n rows of width w out of one flat slab.
func makeRows(n, w int) [][]logic.Val {
	flat := make([]logic.Val, n*w)
	rows := make([][]logic.Val, n)
	for i := range rows {
		rows[i] = flat[i*w : (i+1)*w : (i+1)*w]
	}
	return rows
}

// NewTrace preallocates a trace for RunFaultInto: row storage for an
// L-frame simulation of c, reused across calls instead of allocated per
// fault. keepNodes must match the RunFaultInto calls it will serve.
func NewTrace(c *netlist.Circuit, L int, keepNodes bool) *Trace {
	tr := &Trace{
		allStates:  makeRows(L+1, c.NumFFs()),
		allOutputs: makeRows(L, c.NumOutputs()),
	}
	if keepNodes {
		tr.allNodes = makeRows(L, c.NumNodes())
	}
	return tr
}

// Len returns the number of simulated time frames.
func (t *Trace) Len() int { return len(t.Outputs) }

// SimStats counts the work a Simulator performed: time frames by
// evaluation mode and gate evaluations on the event-driven path. The
// counters are plain fields maintained by the simulator's single
// goroutine; merge per-worker copies with Merge.
type SimStats struct {
	// DeltaFrames counts faulty frames evaluated by event-driven delta
	// propagation from the fault-free baseline; FullFrames counts frames
	// where every gate was evaluated (fault-free runs, the full-pass
	// evaluator, and faulty frames without a baseline).
	DeltaFrames int64 `json:"delta_frames"`
	FullFrames  int64 `json:"full_frames"`
	// DeltaGateEvals counts gate evaluations performed by the delta
	// frames — the activity the single-fault-propagation speedup leaves.
	DeltaGateEvals int64 `json:"delta_gate_evals"`
}

// Merge adds other into s.
func (s *SimStats) Merge(other SimStats) {
	s.DeltaFrames += other.DeltaFrames
	s.FullFrames += other.FullFrames
	s.DeltaGateEvals += other.DeltaGateEvals
}

// Simulator runs three-valued simulation on one circuit. It is not safe
// for concurrent use; create one per goroutine.
type Simulator struct {
	c *netlist.Circuit

	// scratch buffers reused across frames
	vals []logic.Val
	good []logic.Val // fault-free frame values for delta evaluation

	// delta-evaluation worklist state
	dirty   []bool
	levelQ  [][]netlist.GateID
	useFull bool

	stats SimStats
}

// Stats returns the work counters accumulated since construction or the
// last ResetStats.
func (s *Simulator) Stats() SimStats { return s.stats }

// ResetStats zeroes the work counters.
func (s *Simulator) ResetStats() { s.stats = SimStats{} }

// New returns a Simulator for the circuit using event-driven (delta) frame
// evaluation for faulty frames.
func New(c *netlist.Circuit) *Simulator {
	return &Simulator{
		c:      c,
		vals:   make([]logic.Val, c.NumNodes()),
		good:   make([]logic.Val, c.NumNodes()),
		dirty:  make([]bool, c.NumGates()),
		levelQ: make([][]netlist.GateID, c.MaxLevel+1),
	}
}

// NewFullPass returns a Simulator that evaluates every gate in every
// faulty frame (the straightforward reference evaluator). Results are
// identical to New; only performance differs.
func NewFullPass(c *netlist.Circuit) *Simulator {
	s := New(c)
	s.useFull = true
	return s
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// noFault is the absence of a fault; a nil *fault.Fault is not used so the
// hot path avoids nil checks on methods.
var noFault = fault.Fault{Node: netlist.NoNode, Gate: netlist.NoGate}

// EvalFrame computes the effective value of every node for one time frame
// of circuit c: pi are the primary-input values, ps the effective
// present-state values, f the injected fault (use nil for fault-free), and
// vals the output buffer with one entry per node.
//
// "Effective" means the value readers observe: a node with a stem fault
// holds its stuck value and the value its driver would compute is
// discarded, since no reader can observe it.
func EvalFrame(c *netlist.Circuit, pi Pattern, ps []logic.Val, f *fault.Fault, vals []logic.Val) {
	if f == nil {
		f = &noFault
	}
	for i, id := range c.Inputs {
		vals[id] = f.Observed(id, pi[i])
	}
	for i, ff := range c.FFs {
		// ps is already effective (stem faults on Q applied by the caller
		// that produced the state), but applying Observed again is
		// harmless and protects direct callers.
		vals[ff.Q] = f.Observed(ff.Q, ps[i])
	}
	for _, gi := range c.Order {
		g := &c.Gates[gi]
		vals[g.Out] = evalGate(c, g, gi, f, vals)
	}
}

// evalGate computes the effective output value of one gate under fault f.
func evalGate(c *netlist.Circuit, g *netlist.Gate, gi netlist.GateID, f *fault.Fault, vals []logic.Val) logic.Val {
	if v, ok := f.StuckNode(g.Out); ok {
		return v
	}
	var buf [8]logic.Val
	in := buf[:0]
	if len(g.In) > len(buf) {
		in = make([]logic.Val, 0, len(g.In))
	}
	for pi, id := range g.In {
		in = append(in, f.SeenBy(gi, int32(pi), id, vals[id]))
	}
	return logic.Eval(g.Op, in)
}

// initialStateInto writes the effective all-X initial state under fault f.
func initialStateInto(c *netlist.Circuit, f *fault.Fault, st []logic.Val) {
	for i, ff := range c.FFs {
		st[i] = f.Observed(ff.Q, ff.Init)
	}
}

// initialState returns the effective all-X initial state under fault f.
func initialState(c *netlist.Circuit, f *fault.Fault) []logic.Val {
	st := make([]logic.Val, c.NumFFs())
	initialStateInto(c, f, st)
	return st
}

// nextStateInto extracts the effective next state from frame values.
func nextStateInto(c *netlist.Circuit, f *fault.Fault, vals, st []logic.Val) {
	for i, ff := range c.FFs {
		// vals[ff.D] is already effective; the latched value becomes the
		// next present state, observed through any stem fault on Q.
		st[i] = f.Observed(ff.Q, vals[ff.D])
	}
}

// nextState extracts the effective next state from frame values.
func nextState(c *netlist.Circuit, f *fault.Fault, vals []logic.Val) []logic.Val {
	st := make([]logic.Val, c.NumFFs())
	nextStateInto(c, f, vals, st)
	return st
}

// outputsInto extracts the observed primary outputs from frame values.
func outputsInto(c *netlist.Circuit, vals, out []logic.Val) {
	for i, id := range c.Outputs {
		out[i] = vals[id]
	}
}

// outputsOf extracts the observed primary outputs from frame values.
func outputsOf(c *netlist.Circuit, vals []logic.Val) []logic.Val {
	out := make([]logic.Val, c.NumOutputs())
	outputsInto(c, vals, out)
	return out
}

// Run simulates the test sequence on the machine with fault f (nil for
// fault-free), returning the trace. keepNodes controls whether per-frame
// node values are retained (needed by the implication engine).
func (s *Simulator) Run(T Sequence, f *fault.Fault, keepNodes bool) (*Trace, error) {
	c := s.c
	if f == nil {
		f = &noFault
	}
	tr := &Trace{
		States:  make([][]logic.Val, 0, len(T)+1),
		Outputs: make([][]logic.Val, 0, len(T)),
	}
	if keepNodes {
		tr.Nodes = make([][]logic.Val, 0, len(T))
	}
	state := initialState(c, f)
	tr.States = append(tr.States, state)
	for u, pat := range T {
		if len(pat) != c.NumInputs() {
			return nil, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), c.NumInputs())
		}
		EvalFrame(c, pat, state, f, s.vals)
		s.stats.FullFrames++
		tr.Outputs = append(tr.Outputs, outputsOf(c, s.vals))
		if keepNodes {
			frame := make([]logic.Val, len(s.vals))
			copy(frame, s.vals)
			tr.Nodes = append(tr.Nodes, frame)
		}
		state = nextState(c, f, s.vals)
		tr.States = append(tr.States, state)
	}
	return tr, nil
}

// FaultFree simulates the fault-free machine.
func (s *Simulator) FaultFree(T Sequence) (*Trace, error) {
	return s.Run(T, nil, false)
}

// Detection identifies a single-observation-time detection: a time frame
// and output where the fault-free response is binary and the faulty
// response is the opposite binary value.
type Detection struct {
	Time   int
	Output int
}

// FirstDetection returns the earliest detection of bad against good, if any.
func FirstDetection(good, bad *Trace) (Detection, bool) {
	for u := 0; u < len(good.Outputs) && u < len(bad.Outputs); u++ {
		g, b := good.Outputs[u], bad.Outputs[u]
		for j := range g {
			if g[j].IsBinary() && b[j].IsBinary() && g[j] != b[j] {
				return Detection{Time: u, Output: j}, true
			}
		}
	}
	return Detection{}, false
}

// FaultResult summarizes conventional serial simulation of one fault.
type FaultResult struct {
	Fault    fault.Fault
	Detected bool
	At       Detection
}

// RunFaults serially simulates every fault in the list against the
// fault-free trace good, dropping each fault at its first detection.
func (s *Simulator) RunFaults(T Sequence, good *Trace, faults []fault.Fault) ([]FaultResult, error) {
	results := make([]FaultResult, len(faults))
	for i, f := range faults {
		_, at, detected, err := s.RunFault(T, good, f, false)
		if err != nil {
			return nil, err
		}
		results[i] = FaultResult{Fault: f, Detected: detected, At: at}
	}
	return results, nil
}

// RunFault simulates one fault against the fault-free trace good, using
// event-driven propagation when good retains node values. Simulation
// stops at the first detection (the fault is dropped); the returned trace
// is then partial and detected is true. When no detection occurs, the
// complete faulty trace is returned; keepNodes controls whether it
// retains per-frame node values (needed by the MOT implication engine).
func (s *Simulator) RunFault(T Sequence, good *Trace, f fault.Fault, keepNodes bool) (tr *Trace, at Detection, detected bool, err error) {
	c := s.c
	tr = &Trace{
		States:  make([][]logic.Val, 0, len(T)+1),
		Outputs: make([][]logic.Val, 0, len(T)),
	}
	if keepNodes {
		tr.Nodes = make([][]logic.Val, 0, len(T))
	}
	tr.States = append(tr.States, initialState(c, &f))
	for u, pat := range T {
		if len(pat) != c.NumInputs() {
			return nil, Detection{}, false, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), c.NumInputs())
		}
		s.evalFaultyFrame(pat, tr.States[u], good, u, &f)
		tr.Outputs = append(tr.Outputs, outputsOf(c, s.vals))
		if keepNodes {
			frame := make([]logic.Val, len(s.vals))
			copy(frame, s.vals)
			tr.Nodes = append(tr.Nodes, frame)
		}
		tr.States = append(tr.States, nextState(c, &f, s.vals))
		g := good.Outputs[u]
		for j, id := range c.Outputs {
			b := s.vals[id]
			if g[j].IsBinary() && b.IsBinary() && g[j] != b {
				return tr, Detection{Time: u, Output: j}, true, nil
			}
		}
	}
	return tr, Detection{}, false, nil
}

// RunFaultInto is RunFault writing into a preallocated trace (see
// NewTrace), so steady-state fault simulation performs no per-fault
// allocation. tr's row storage is reused: the trace contents are valid
// only until the next RunFaultInto call with the same trace. tr must have
// been built by NewTrace for at least len(T) frames, with node storage
// when keepNodes is set.
func (s *Simulator) RunFaultInto(tr *Trace, T Sequence, good *Trace, f fault.Fault, keepNodes bool) (at Detection, detected bool, err error) {
	c := s.c
	if len(tr.allStates) < len(T)+1 || (keepNodes && len(tr.allNodes) < len(T)) {
		return Detection{}, false, fmt.Errorf("seqsim: trace not preallocated for %d frames (keepNodes=%v)",
			len(T), keepNodes)
	}
	tr.States = tr.allStates[:1]
	tr.Outputs = tr.allOutputs[:0]
	tr.Nodes = nil
	if keepNodes {
		tr.Nodes = tr.allNodes[:0]
	}
	initialStateInto(c, &f, tr.States[0])
	for u, pat := range T {
		if len(pat) != c.NumInputs() {
			return Detection{}, false, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), c.NumInputs())
		}
		s.evalFaultyFrame(pat, tr.States[u], good, u, &f)
		tr.Outputs = tr.allOutputs[:u+1]
		outputsInto(c, s.vals, tr.Outputs[u])
		if keepNodes {
			tr.Nodes = tr.allNodes[:u+1]
			copy(tr.Nodes[u], s.vals)
		}
		tr.States = tr.allStates[:u+2]
		nextStateInto(c, &f, s.vals, tr.States[u+1])
		g := good.Outputs[u]
		for j, id := range c.Outputs {
			b := s.vals[id]
			if g[j].IsBinary() && b.IsBinary() && g[j] != b {
				return Detection{Time: u, Output: j}, true, nil
			}
		}
	}
	return Detection{}, false, nil
}

// evalFaultyFrame computes the faulty frame u values into s.vals given the
// effective faulty present state ps. With the full-pass evaluator this is
// EvalFrame; otherwise the faulty values are derived from the fault-free
// frame by event-driven propagation of differences (the present-state
// differences and the fault site).
func (s *Simulator) evalFaultyFrame(pat Pattern, ps []logic.Val, good *Trace, u int, f *fault.Fault) {
	if s.useFull || good.Nodes == nil {
		EvalFrame(s.c, pat, ps, f, s.vals)
		s.stats.FullFrames++
		return
	}
	s.evalFrameDelta(pat, ps, good.Nodes[u], f)
}

// FrameDelta computes the faulty values of one frame from a fault-free
// baseline of the same frame, by copying the baseline and event-driven
// propagation of the differences (the present-state differences and the
// fault site). The returned slice is the simulator's scratch buffer,
// valid until the next call.
func (s *Simulator) FrameDelta(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) []logic.Val {
	if f == nil {
		f = &noFault
	}
	s.evalFrameDelta(pat, ps, goodVals, f)
	return s.vals
}

// evalFrameDelta computes faulty frame values by copying the fault-free
// frame and propagating only the gates whose inputs differ. This is the
// classic single-fault-propagation speedup: activity in a faulty frame is
// typically confined to a small cone.
func (s *Simulator) evalFrameDelta(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) {
	c := s.c
	copy(s.vals, goodVals)
	// Seed: primary inputs (stem faults there), present-state differences,
	// the fault site itself.
	for i, id := range c.Inputs {
		s.touch(id, f.Observed(id, pat[i]))
	}
	for i, ff := range c.FFs {
		s.touch(ff.Q, f.Observed(ff.Q, ps[i]))
	}
	if f.Node != netlist.NoNode {
		if f.IsStem() {
			if v, ok := f.StuckNode(f.Node); ok {
				s.touch(f.Node, v)
			}
			// The driver of a stuck node must never overwrite it; it is
			// simply never re-evaluated into the node (see below).
		} else {
			s.push(f.Gate)
		}
	}
	for lvl := int32(1); lvl <= c.MaxLevel; lvl++ {
		q := s.levelQ[lvl]
		s.levelQ[lvl] = q[:0]
		s.stats.DeltaGateEvals += int64(len(q))
		for _, gi := range q {
			s.dirty[gi] = false
			g := &c.Gates[gi]
			v := evalGate(c, g, gi, f, s.vals)
			s.touch(g.Out, v)
		}
	}
	s.stats.DeltaFrames++
}

// push enqueues a gate for delta evaluation once. A method rather than a
// closure inside evalFrameDelta: closures capturing s would escape and
// allocate on every faulty frame.
func (s *Simulator) push(g netlist.GateID) {
	if !s.dirty[g] {
		s.dirty[g] = true
		lvl := s.c.Gates[g].Level
		s.levelQ[lvl] = append(s.levelQ[lvl], g)
	}
}

// touch writes a node value and, when it changed, enqueues its fanout.
func (s *Simulator) touch(id netlist.NodeID, v logic.Val) {
	if s.vals[id] == v {
		return
	}
	s.vals[id] = v
	for _, pin := range s.c.Nodes[id].Fanouts {
		s.push(pin.Gate)
	}
}
