// Package seqsim implements conventional three-valued simulation of
// synchronous sequential circuits: fault-free simulation, serial stuck-at
// fault simulation with fault dropping, and detection checking under the
// single observation time approach.
//
// Simulation starts from the all-unspecified (X) initial state and applies
// one input pattern per time frame, exactly as in the fault simulators the
// paper builds on [1]. All evaluation runs on the compiled circuit IR
// (internal/cir); faulty simulation is confined to the fault's active
// cone — the sequential fanout closure of the fault site — so each faulty
// frame seeds and checks only the state variables and outputs the fault
// can influence.
package seqsim

import (
	"fmt"

	"repro/internal/cir"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/netlist"
)

// Pattern is one input vector: one value per primary input, in the
// circuit's input order.
type Pattern []logic.Val

// Sequence is a test sequence: Sequence[u] is the pattern applied at time
// frame u.
type Sequence []Pattern

// ParseSequence parses one pattern string per element, e.g. {"1011", "0x10"}.
func ParseSequence(lines []string) (Sequence, error) {
	seq := make(Sequence, len(lines))
	for i, s := range lines {
		p, err := logic.ParseVals(s)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		seq[i] = p
	}
	return seq, nil
}

// Trace records the simulation history of one machine (fault-free or
// faulty) over a test sequence of length L.
type Trace struct {
	// States[u] holds the effective present-state values at time u, for
	// u in [0, L]. States[0] is the initial state; States[L] is the state
	// after the final pattern.
	States [][]logic.Val
	// Outputs[u] holds the observed primary-output values at time u, for
	// u in [0, L-1].
	Outputs [][]logic.Val
	// Nodes[u] holds every node's effective value in frame u, for u in
	// [0, L-1]. Nil unless the simulation was asked to keep node values.
	Nodes [][]logic.Val

	// Preallocated row storage for RunFaultInto (nil on traces built by
	// Run/RunFault). States/Outputs/Nodes above are truncated views of
	// these rows; the backing arrays are reused across calls.
	allStates  [][]logic.Val
	allOutputs [][]logic.Val
	allNodes   [][]logic.Val
}

// makeRows carves n rows of width w out of one flat slab.
func makeRows(n, w int) [][]logic.Val {
	flat := make([]logic.Val, n*w)
	rows := make([][]logic.Val, n)
	for i := range rows {
		rows[i] = flat[i*w : (i+1)*w : (i+1)*w]
	}
	return rows
}

// NewTrace preallocates a trace for RunFaultInto: row storage for an
// L-frame simulation of c, reused across calls instead of allocated per
// fault. keepNodes must match the RunFaultInto calls it will serve.
func NewTrace(c *netlist.Circuit, L int, keepNodes bool) *Trace {
	tr := &Trace{
		allStates:  makeRows(L+1, c.NumFFs()),
		allOutputs: makeRows(L, c.NumOutputs()),
	}
	if keepNodes {
		tr.allNodes = makeRows(L, c.NumNodes())
	}
	return tr
}

// Len returns the number of simulated time frames.
func (t *Trace) Len() int { return len(t.Outputs) }

// MemSize estimates the trace's resident bytes for cache budgeting
// (one byte per logic value, counting the preallocated backing rows
// where present so reusable traces account their full footprint).
func (t *Trace) MemSize() int64 {
	var n int64
	rows := func(rr [][]logic.Val) {
		for _, r := range rr {
			n += int64(len(r))
		}
	}
	if t.allStates != nil {
		rows(t.allStates)
		rows(t.allOutputs)
		rows(t.allNodes)
	} else {
		rows(t.States)
		rows(t.Outputs)
		rows(t.Nodes)
	}
	return n
}

// SimStats counts the work a Simulator performed: time frames by
// evaluation mode, gate evaluations on the sparse paths, and node value
// changes (events). The counters are plain fields maintained by the
// simulator's single goroutine; merge per-worker copies with Merge.
type SimStats struct {
	// DeltaFrames counts faulty frames evaluated by the level-order
	// copy-and-propagate evaluator; EventFrames counts frames evaluated
	// by the event-driven sparse-delta evaluator (no baseline copy);
	// FullFrames counts frames where every gate was evaluated (fault-free
	// runs, the full-pass evaluator, and faulty frames without a
	// baseline). The two sparse modes are mutually exclusive per frame
	// (Config.EventSim selects one), visit the same gates, and change the
	// same nodes — only the frame counters differ between them.
	DeltaFrames int64 `json:"delta_frames"`
	EventFrames int64 `json:"event_frames"`
	FullFrames  int64 `json:"full_frames"`
	// DeltaGateEvals/EventGateEvals count gate evaluations performed by
	// the respective sparse frames — the activity the
	// single-fault-propagation speedup leaves.
	DeltaGateEvals int64 `json:"delta_gate_evals"`
	EventGateEvals int64 `json:"event_gate_evals"`
	// Events counts node value changes across all sparse frames (both
	// modes): the divergence the sparse evaluators actually track. It is
	// identical whichever evaluator runs.
	Events int64 `json:"events"`
}

// Merge adds other into s.
func (s *SimStats) Merge(other SimStats) {
	s.DeltaFrames += other.DeltaFrames
	s.EventFrames += other.EventFrames
	s.FullFrames += other.FullFrames
	s.DeltaGateEvals += other.DeltaGateEvals
	s.EventGateEvals += other.EventGateEvals
	s.Events += other.Events
}

// Simulator runs three-valued simulation on one circuit. It is not safe
// for concurrent use; create one per goroutine (the compiled circuit
// behind it is shared read-only).
type Simulator struct {
	cc *cir.CC
	ev *cir.Evaluator

	// scratch buffer reused across frames
	vals []logic.Val

	// delta-evaluation worklist state (the level-order evaluator)
	dirty   []bool
	levelQ  [][]netlist.GateID
	useFull bool

	// event-driven sparse-delta evaluator state. eventSim selects it for
	// faulty frames (the default); the level-order path above is the
	// retained cross-check twin. eev is created on first use;
	// frameSparse reports that the most recent faulty frame lives in
	// eev's overlay instead of s.vals.
	eventSim    bool
	eev         *cir.EventEval
	frameSparse bool

	// Optional per-frame distribution sinks for the event path (events
	// and gates visited per sparse frame); nil skips observation. The
	// batches keep the per-frame hot path free of atomics — callers
	// flush residuals via FlushFrameHists before reading the shared
	// histograms.
	histEvents *metrics.HistBatch
	histGates  *metrics.HistBatch

	// cone is the active cone of the fault most recently passed to
	// RunFault/RunFaultInto (unused by the full-pass evaluator), a
	// shared immutable cone from the compiled circuit's per-site cache.
	// coneFault/coneValid memoize the site it was looked up for: the MOT
	// pipeline re-runs the same fault many times (step0, portfolio
	// retries), so even the cache lookup is skipped on repeats.
	cone      *cir.Cone
	coneFault fault.Fault
	coneValid bool

	stats SimStats
}

// Stats returns the work counters accumulated since construction or the
// last ResetStats.
func (s *Simulator) Stats() SimStats { return s.stats }

// ResetStats zeroes the work counters.
func (s *Simulator) ResetStats() { s.stats = SimStats{} }

// New returns a Simulator for the circuit using event-driven (delta) frame
// evaluation confined to the fault's active cone for faulty frames. The
// compiled IR is obtained from the process-wide cache (cir.For).
func New(c *netlist.Circuit) *Simulator {
	return NewCompiled(cir.For(c))
}

// NewCompiled returns a Simulator running on an already-compiled circuit,
// sharing cc read-only with any other evaluator.
func NewCompiled(cc *cir.CC) *Simulator {
	return &Simulator{
		cc:       cc,
		ev:       cc.NewEvaluator(),
		vals:     make([]logic.Val, cc.NumNodes()),
		dirty:    make([]bool, cc.NumGates()),
		levelQ:   make([][]netlist.GateID, cc.MaxLevel+1),
		cone:     cc.ConeOf(&cir.NoFault),
		eventSim: true,
	}
}

// SetEventSim selects the evaluator for sparse faulty frames: the
// event-driven sparse-delta evaluator (on, the default) or the retained
// level-order copy-and-propagate twin (off). Results are byte-identical
// either way; the switch exists for cross-checking and timing.
func (s *Simulator) SetEventSim(on bool) { s.eventSim = on }

// SetFrameHists installs per-frame distribution sinks for the event
// path: events (node value changes) and gates visited per sparse frame.
// Pass nils to disable observation. Any residual batched observations
// for previously installed sinks are flushed first.
func (s *Simulator) SetFrameHists(events, gates *metrics.Histogram) {
	s.FlushFrameHists()
	s.histEvents = nil
	s.histGates = nil
	if events != nil {
		s.histEvents = events.NewBatch()
	}
	if gates != nil {
		s.histGates = gates.NewBatch()
	}
}

// FlushFrameHists pushes batched per-frame observations into the shared
// histograms installed by SetFrameHists. Call it before reading those
// histograms (end of a run, or a worker finishing its share).
func (s *Simulator) FlushFrameHists() {
	if s.histEvents != nil {
		s.histEvents.Flush()
	}
	if s.histGates != nil {
		s.histGates.Flush()
	}
}

// ensureEEV lazily builds the event evaluator (full-pass and
// level-order-only simulators never pay for it).
func (s *Simulator) ensureEEV() *cir.EventEval {
	if s.eev == nil {
		s.eev = s.cc.NewEventEval()
	}
	return s.eev
}

// NewFullPass returns a Simulator that evaluates every gate in every
// faulty frame with no cone restriction (the straightforward reference
// evaluator). Results are identical to New; only performance differs.
func NewFullPass(c *netlist.Circuit) *Simulator {
	s := New(c)
	s.useFull = true
	return s
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.cc.Net }

// Compiled returns the compiled IR the simulator runs on.
func (s *Simulator) Compiled() *cir.CC { return s.cc }

// ConeSize returns the number of gates in the active cone prepared by the
// most recent RunFault/RunFaultInto call (0 before the first call and for
// the full-pass evaluator).
func (s *Simulator) ConeSize() int { return s.cone.Size() }

// EvalFrame computes the effective value of every node for one time frame
// of circuit c: pi are the primary-input values, ps the effective
// present-state values, f the injected fault (use nil for fault-free), and
// vals the output buffer with one entry per node.
//
// "Effective" means the value readers observe: a node with a stem fault
// holds its stuck value and the value its driver would compute is
// discarded, since no reader can observe it.
//
// The free function compiles (or re-uses the cached compile of) c and
// allocates a small evaluator per call; hot paths should hold a Simulator
// and use its EvalFrame method instead.
func EvalFrame(c *netlist.Circuit, pi Pattern, ps []logic.Val, f *fault.Fault, vals []logic.Val) {
	cir.For(c).NewEvaluator().EvalFrame(pi, ps, f, vals)
}

// EvalFrame is the free EvalFrame on the simulator's compiled circuit,
// reusing its gather scratch and performing no allocation. It does not
// touch the work counters. The serial resimulation of expanded
// sequences goes through here: an expanded sequence specifies arbitrary
// state variables, so the frame cannot be confined to the fault's
// active cone alone (the bit-parallel path instead confines itself to
// the cir.Region closure of the fault site plus the assigned state
// variables).
func (s *Simulator) EvalFrame(pi Pattern, ps []logic.Val, f *fault.Fault, vals []logic.Val) {
	s.ev.EvalFrame(pi, ps, f, vals)
}

// initialStateInto writes the effective all-X initial state under fault f.
func initialStateInto(cc *cir.CC, f *fault.Fault, st []logic.Val) {
	for i, q := range cc.FFQ {
		st[i] = f.Observed(q, cc.FFInit[i])
	}
}

// initialState returns the effective all-X initial state under fault f.
func initialState(cc *cir.CC, f *fault.Fault) []logic.Val {
	st := make([]logic.Val, cc.NumFFs())
	initialStateInto(cc, f, st)
	return st
}

// nextStateInto extracts the effective next state from frame values.
func nextStateInto(cc *cir.CC, f *fault.Fault, vals, st []logic.Val) {
	for i, d := range cc.FFD {
		// vals[d] is already effective; the latched value becomes the
		// next present state, observed through any stem fault on Q.
		st[i] = f.Observed(cc.FFQ[i], vals[d])
	}
}

// nextState extracts the effective next state from frame values.
func nextState(cc *cir.CC, f *fault.Fault, vals []logic.Val) []logic.Val {
	st := make([]logic.Val, cc.NumFFs())
	nextStateInto(cc, f, vals, st)
	return st
}

// outputsInto extracts the observed primary outputs from frame values.
func outputsInto(cc *cir.CC, vals, out []logic.Val) {
	for i, id := range cc.Outputs {
		out[i] = vals[id]
	}
}

// outputsOf extracts the observed primary outputs from frame values.
func outputsOf(cc *cir.CC, vals []logic.Val) []logic.Val {
	out := make([]logic.Val, cc.NumOutputs())
	outputsInto(cc, vals, out)
	return out
}

// Run simulates the test sequence on the machine with fault f (nil for
// fault-free), returning the trace. keepNodes controls whether per-frame
// node values are retained (needed by the implication engine).
func (s *Simulator) Run(T Sequence, f *fault.Fault, keepNodes bool) (*Trace, error) {
	cc := s.cc
	if f == nil {
		f = &cir.NoFault
	}
	tr := &Trace{
		States:  make([][]logic.Val, 0, len(T)+1),
		Outputs: make([][]logic.Val, 0, len(T)),
	}
	if keepNodes {
		tr.Nodes = make([][]logic.Val, 0, len(T))
	}
	state := initialState(cc, f)
	tr.States = append(tr.States, state)
	for u, pat := range T {
		if len(pat) != cc.NumInputs() {
			return nil, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		s.ev.EvalFrame(pat, state, f, s.vals)
		s.stats.FullFrames++
		tr.Outputs = append(tr.Outputs, outputsOf(cc, s.vals))
		if keepNodes {
			frame := make([]logic.Val, len(s.vals))
			copy(frame, s.vals)
			tr.Nodes = append(tr.Nodes, frame)
		}
		state = nextState(cc, f, s.vals)
		tr.States = append(tr.States, state)
	}
	return tr, nil
}

// FaultFree simulates the fault-free machine.
func (s *Simulator) FaultFree(T Sequence) (*Trace, error) {
	return s.Run(T, nil, false)
}

// Detection identifies a single-observation-time detection: a time frame
// and output where the fault-free response is binary and the faulty
// response is the opposite binary value.
type Detection struct {
	Time   int
	Output int
}

// FirstDetection returns the earliest detection of bad against good, if any.
func FirstDetection(good, bad *Trace) (Detection, bool) {
	for u := 0; u < len(good.Outputs) && u < len(bad.Outputs); u++ {
		g, b := good.Outputs[u], bad.Outputs[u]
		for j := range g {
			if g[j].IsBinary() && b[j].IsBinary() && g[j] != b[j] {
				return Detection{Time: u, Output: j}, true
			}
		}
	}
	return Detection{}, false
}

// FaultResult summarizes conventional serial simulation of one fault.
type FaultResult struct {
	Fault    fault.Fault
	Detected bool
	At       Detection
}

// RunFaults serially simulates every fault in the list against the
// fault-free trace good, dropping each fault at its first detection.
func (s *Simulator) RunFaults(T Sequence, good *Trace, faults []fault.Fault) ([]FaultResult, error) {
	results := make([]FaultResult, len(faults))
	for i, f := range faults {
		_, at, detected, err := s.RunFault(T, good, f, false)
		if err != nil {
			return nil, err
		}
		results[i] = FaultResult{Fault: f, Detected: detected, At: at}
	}
	return results, nil
}

// prepareCone fills the active cone for f unless this is the full-pass
// (cone-free reference) evaluator. It reports whether the cone is in use.
func (s *Simulator) prepareCone(f *fault.Fault) bool {
	if s.useFull {
		return false
	}
	// The cone depends only on the fault site, so stuck-at-0 and
	// stuck-at-1 of the same site (adjacent in fault lists) share it.
	if s.coneValid && f.Node == s.coneFault.Node && f.Gate == s.coneFault.Gate {
		return true
	}
	s.cone = s.cc.ConeOf(f)
	s.coneFault, s.coneValid = *f, true
	return true
}

// checkDetection scans frame-u outputs in s.vals against the fault-free
// response. With an active cone only the cone's outputs are scanned —
// outputs outside the sequential fanout closure of the fault site cannot
// differ from the fault-free machine. Cone outputs are in ascending
// position order, so the first detection found is the same (Time, Output)
// the full scan would report.
func (s *Simulator) checkDetection(good *Trace, u int, coneActive bool) (Detection, bool) {
	g := good.Outputs[u]
	if s.frameSparse {
		for _, j := range s.cone.Outs {
			b := s.eev.Read(s.cc.Outputs[j])
			if g[j].IsBinary() && b.IsBinary() && g[j] != b {
				return Detection{Time: u, Output: int(j)}, true
			}
		}
		return Detection{}, false
	}
	if coneActive {
		for _, j := range s.cone.Outs {
			b := s.vals[s.cc.Outputs[j]]
			if g[j].IsBinary() && b.IsBinary() && g[j] != b {
				return Detection{Time: u, Output: int(j)}, true
			}
		}
		return Detection{}, false
	}
	for j, id := range s.cc.Outputs {
		b := s.vals[id]
		if g[j].IsBinary() && b.IsBinary() && g[j] != b {
			return Detection{Time: u, Output: j}, true
		}
	}
	return Detection{}, false
}

// RunFault simulates one fault against the fault-free trace good, using
// event-driven propagation confined to the fault's active cone when good
// retains node values. Simulation stops at the first detection (the fault
// is dropped); the returned trace is then partial and detected is true.
// When no detection occurs, the complete faulty trace is returned;
// keepNodes controls whether it retains per-frame node values (needed by
// the MOT implication engine).
func (s *Simulator) RunFault(T Sequence, good *Trace, f fault.Fault, keepNodes bool) (tr *Trace, at Detection, detected bool, err error) {
	cc := s.cc
	tr = &Trace{
		States:  make([][]logic.Val, 0, len(T)+1),
		Outputs: make([][]logic.Val, 0, len(T)),
	}
	if keepNodes {
		tr.Nodes = make([][]logic.Val, 0, len(T))
	}
	coneActive := s.prepareCone(&f)
	tr.States = append(tr.States, initialState(cc, &f))
	for u, pat := range T {
		if len(pat) != cc.NumInputs() {
			return nil, Detection{}, false, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		s.evalFaultyFrame(pat, tr.States[u], good, u, &f)
		out := make([]logic.Val, cc.NumOutputs())
		s.frameOutputsInto(good, u, out)
		tr.Outputs = append(tr.Outputs, out)
		if keepNodes {
			frame := make([]logic.Val, cc.NumNodes())
			s.frameNodesInto(good, u, frame)
			tr.Nodes = append(tr.Nodes, frame)
		}
		st := make([]logic.Val, cc.NumFFs())
		s.frameNextStateInto(good, u, &f, st)
		tr.States = append(tr.States, st)
		if d, ok := s.checkDetection(good, u, coneActive); ok {
			return tr, d, true, nil
		}
	}
	return tr, Detection{}, false, nil
}

// RunFaultInto is RunFault writing into a preallocated trace (see
// NewTrace), so steady-state fault simulation performs no per-fault
// allocation. tr's row storage is reused: the trace contents are valid
// only until the next RunFaultInto call with the same trace. tr must have
// been built by NewTrace for at least len(T) frames, with node storage
// when keepNodes is set.
func (s *Simulator) RunFaultInto(tr *Trace, T Sequence, good *Trace, f fault.Fault, keepNodes bool) (at Detection, detected bool, err error) {
	cc := s.cc
	if len(tr.allStates) < len(T)+1 || (keepNodes && len(tr.allNodes) < len(T)) {
		return Detection{}, false, fmt.Errorf("seqsim: trace not preallocated for %d frames (keepNodes=%v)",
			len(T), keepNodes)
	}
	tr.States = tr.allStates[:1]
	tr.Outputs = tr.allOutputs[:0]
	tr.Nodes = nil
	if keepNodes {
		tr.Nodes = tr.allNodes[:0]
	}
	coneActive := s.prepareCone(&f)
	initialStateInto(cc, &f, tr.States[0])
	for u, pat := range T {
		if len(pat) != cc.NumInputs() {
			return Detection{}, false, fmt.Errorf("seqsim: pattern %d has %d values, circuit has %d inputs",
				u, len(pat), cc.NumInputs())
		}
		s.evalFaultyFrame(pat, tr.States[u], good, u, &f)
		tr.Outputs = tr.allOutputs[:u+1]
		s.frameOutputsInto(good, u, tr.Outputs[u])
		if keepNodes {
			tr.Nodes = tr.allNodes[:u+1]
			s.frameNodesInto(good, u, tr.Nodes[u])
		}
		tr.States = tr.allStates[:u+2]
		s.frameNextStateInto(good, u, &f, tr.States[u+1])
		if d, ok := s.checkDetection(good, u, coneActive); ok {
			return d, true, nil
		}
	}
	return Detection{}, false, nil
}

// evalFaultyFrame computes the faulty frame u values into s.vals given the
// effective faulty present state ps. With the full-pass evaluator this is
// a full EvalFrame; otherwise the faulty values are derived from the
// fault-free frame by event-driven propagation of differences seeded from
// the active cone (the cone's present-state differences and the fault
// site).
func (s *Simulator) evalFaultyFrame(pat Pattern, ps []logic.Val, good *Trace, u int, f *fault.Fault) {
	s.frameSparse = false
	if s.useFull || good.Nodes == nil {
		s.ev.EvalFrame(pat, ps, f, s.vals)
		s.stats.FullFrames++
		return
	}
	if s.eventSim {
		s.evalFrameEventCone(ps, good.Nodes[u], f)
		s.frameSparse = true
		return
	}
	s.evalFrameDeltaCone(pat, ps, good.Nodes[u], f)
}

// evalFrameEventCone is the event-driven twin of evalFrameDeltaCone:
// the faulty frame is evaluated as a sparse overlay over the fault-free
// frame, seeded from the active cone's present-state differences and
// the fault site, with no whole-circuit copy. The frame's values stay
// in the overlay (frameSparse); the read phase patches them over the
// fault-free rows on demand.
func (s *Simulator) evalFrameEventCone(ps []logic.Val, goodVals []logic.Val, f *fault.Fault) {
	cc := s.cc
	eev := s.ensureEEV()
	eev.BeginFrame(goodVals, s.cone.Sched())
	for _, i := range s.cone.FFs {
		q := cc.FFQ[i]
		eev.Set(q, f.Observed(q, ps[i]))
	}
	s.seedFaultSiteEvent(eev, f)
	s.finishEventFrame(eev, f)
}

// seedFaultSiteEvent seeds the event queue with the fault site,
// mirroring seedFaultSite on the level-order path.
func (s *Simulator) seedFaultSiteEvent(eev *cir.EventEval, f *fault.Fault) {
	if f.Node == netlist.NoNode {
		return
	}
	if f.IsStem() {
		if v, ok := f.StuckNode(f.Node); ok {
			eev.Set(f.Node, v)
		}
	} else {
		eev.Enqueue(f.Gate)
	}
}

// finishEventFrame drains the event queue and accounts the frame.
func (s *Simulator) finishEventFrame(eev *cir.EventEval, f *fault.Fault) {
	ge := int64(eev.Drain(f))
	nEv := int64(len(eev.Touched()))
	s.stats.EventFrames++
	s.stats.EventGateEvals += ge
	s.stats.Events += nEv
	if s.histEvents != nil {
		s.histEvents.Observe(nEv)
	}
	if s.histGates != nil {
		s.histGates.Observe(ge)
	}
}

// frameOutputsInto writes the faulty frame u's observed outputs into
// out. A sparse frame is read as the fault-free output row patched at
// the cone's output positions — the only outputs that can differ.
func (s *Simulator) frameOutputsInto(good *Trace, u int, out []logic.Val) {
	if !s.frameSparse {
		outputsInto(s.cc, s.vals, out)
		return
	}
	copy(out, good.Outputs[u])
	for _, j := range s.cone.Outs {
		out[j] = s.eev.Read(s.cc.Outputs[j])
	}
}

// frameNextStateInto writes the faulty frame u's next state into st. A
// sparse frame is read as the fault-free next state patched at the
// cone's flip-flops: a flip-flop outside the cone has its D node
// outside the cone (a cone D node pulls its Q node — hence the
// flip-flop — into the cone), and a stem fault on a Q node puts that
// flip-flop in the cone, so every divergent or fault-observed state
// variable is covered by cone.FFs.
func (s *Simulator) frameNextStateInto(good *Trace, u int, f *fault.Fault, st []logic.Val) {
	if !s.frameSparse {
		nextStateInto(s.cc, f, s.vals, st)
		return
	}
	cc := s.cc
	copy(st, good.States[u+1])
	for _, i := range s.cone.FFs {
		st[i] = f.Observed(cc.FFQ[i], s.eev.Read(cc.FFD[i]))
	}
}

// frameNodesInto writes the faulty frame u's dense node values into
// row: a baseline copy patched with the overlay for a sparse frame
// (one memmove instead of the level-order path's copy-then-recopy).
func (s *Simulator) frameNodesInto(good *Trace, u int, row []logic.Val) {
	if !s.frameSparse {
		copy(row, s.vals)
		return
	}
	copy(row, good.Nodes[u])
	s.eev.MaterializeInto(row)
}

// FrameDelta computes the faulty values of one frame from a fault-free
// baseline of the same frame, by copying the baseline and event-driven
// propagation of the differences (the present-state differences and the
// fault site). The returned slice is the simulator's scratch buffer,
// valid until the next call.
//
// Unlike the RunFault path, FrameDelta seeds every primary input and
// state variable: callers pass externally evolved states that may differ
// from the baseline anywhere, so the active-cone invariant (differences
// only inside the fault's sequential fanout closure) does not hold here.
func (s *Simulator) FrameDelta(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) []logic.Val {
	if f == nil {
		f = &cir.NoFault
	}
	if s.eventSim {
		s.evalFrameEventFull(pat, ps, goodVals, f)
	} else {
		s.evalFrameDelta(pat, ps, goodVals, f)
	}
	return s.vals
}

// evalFrameEventFull is the event-driven twin of evalFrameDelta: full
// (every input, every state variable, fault site) seeding over the
// whole-circuit schedule, materialized densely into s.vals to keep
// FrameDelta's contract.
func (s *Simulator) evalFrameEventFull(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) {
	cc := s.cc
	eev := s.ensureEEV()
	eev.BeginFrame(goodVals, cc.FullSched())
	for i, id := range cc.Inputs {
		eev.Set(id, f.Observed(id, pat[i]))
	}
	for i, q := range cc.FFQ {
		eev.Set(q, f.Observed(q, ps[i]))
	}
	s.seedFaultSiteEvent(eev, f)
	s.finishEventFrame(eev, f)
	copy(s.vals, goodVals)
	eev.MaterializeInto(s.vals)
	s.frameSparse = false
}

// EvalFrameSparse evaluates one faulty frame against a dense baseline
// row of the same fault (base must hold the node values of a frame
// simulated under the same input pattern and the same fault — e.g. a
// retained step-0 bad-trace row), seeding only the present-state
// lines: input and fault-site seeds are no-ops against such a baseline.
// The frame's values stay sparse; read them through the returned event
// evaluator, which is valid until the next frame evaluated on this
// simulator. The caller owns interpretation of f == nil (treated as
// fault-free).
func (s *Simulator) EvalFrameSparse(ps []logic.Val, base []logic.Val, f *fault.Fault) *cir.EventEval {
	if f == nil {
		f = &cir.NoFault
	}
	cc := s.cc
	eev := s.ensureEEV()
	eev.BeginFrame(base, cc.FullSched())
	for i, q := range cc.FFQ {
		eev.Set(q, f.Observed(q, ps[i]))
	}
	s.finishEventFrame(eev, f)
	return eev
}

// evalFrameDelta computes faulty frame values by copying the fault-free
// frame and propagating only the gates whose inputs differ, with full
// (every input, every state variable) seeding.
func (s *Simulator) evalFrameDelta(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) {
	cc := s.cc
	copy(s.vals, goodVals)
	// Seed: primary inputs (stem faults there), present-state differences,
	// the fault site itself.
	for i, id := range cc.Inputs {
		s.touch(id, f.Observed(id, pat[i]))
	}
	for i, q := range cc.FFQ {
		s.touch(q, f.Observed(q, ps[i]))
	}
	s.seedFaultSite(f)
	s.drain(f)
}

// evalFrameDeltaCone is evalFrameDelta seeded from the active cone: only
// the cone's flip-flops can carry a faulty present-state difference, and
// the pattern applied to the faulty machine is the one the baseline was
// simulated with, so non-cone seeds are no-ops by construction and are
// skipped entirely. This is the classic single-fault-propagation speedup
// restricted further to the fault's sequential fanout closure.
func (s *Simulator) evalFrameDeltaCone(pat Pattern, ps []logic.Val, goodVals []logic.Val, f *fault.Fault) {
	cc := s.cc
	copy(s.vals, goodVals)
	for _, i := range s.cone.FFs {
		q := cc.FFQ[i]
		s.touch(q, f.Observed(q, ps[i]))
	}
	s.seedFaultSite(f)
	s.drain(f)
}

// seedFaultSite seeds the delta worklist with the fault site: a stem
// fault forces its node's stuck value; a branch fault re-evaluates the
// one gate that reads the stuck pin.
func (s *Simulator) seedFaultSite(f *fault.Fault) {
	if f.Node == netlist.NoNode {
		return
	}
	if f.IsStem() {
		if v, ok := f.StuckNode(f.Node); ok {
			s.touch(f.Node, v)
		}
		// The driver of a stuck node must never overwrite it; it is
		// simply never re-evaluated into the node.
	} else {
		s.push(f.Gate)
	}
}

// drain evaluates the queued gates level by level, propagating changes.
func (s *Simulator) drain(f *fault.Fault) {
	cc := s.cc
	for lvl := int32(1); lvl <= cc.MaxLevel; lvl++ {
		q := s.levelQ[lvl]
		s.levelQ[lvl] = q[:0]
		s.stats.DeltaGateEvals += int64(len(q))
		for _, gi := range q {
			s.dirty[gi] = false
			s.touch(cc.GOut[gi], s.ev.EvalGate(gi, f, s.vals))
		}
	}
	s.stats.DeltaFrames++
}

// push enqueues a gate for delta evaluation once. A method rather than a
// closure inside the drain loop: closures capturing s would escape and
// allocate on every faulty frame.
func (s *Simulator) push(g netlist.GateID) {
	if !s.dirty[g] {
		s.dirty[g] = true
		lvl := s.cc.Level[g]
		s.levelQ[lvl] = append(s.levelQ[lvl], g)
	}
}

// touch writes a node value and, when it changed, enqueues its fanout.
func (s *Simulator) touch(id netlist.NodeID, v logic.Val) {
	if s.vals[id] == v {
		return
	}
	s.vals[id] = v
	s.stats.Events++
	cc := s.cc
	for k := cc.FanoutStart[id]; k < cc.FanoutStart[id+1]; k++ {
		s.push(cc.FanoutGate[k])
	}
}
