package seqsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// randomCircuitWide is randomCircuit with gate arities up to 4, so the
// packed base-3 LUT paths for 3- and 4-input gates (evalLUT3/evalLUT4)
// see property coverage alongside the 1- and 2-input fast paths. It
// uses its own rng so the existing randomCircuit-based tests keep their
// historical draws.
func randomCircuitWide(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("randwide")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not && op != logic.Buf {
			n = 2 + rng.Intn(3)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	for i := 0; i < 3 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

// compareTraces asserts two traces agree on every stored row.
func compareTraces(t *testing.T, tag string, a, b *Trace) {
	t.Helper()
	for u := range a.States {
		for j := range a.States[u] {
			if a.States[u][j] != b.States[u][j] {
				t.Fatalf("%s: state[%d][%d] event=%v level=%v", tag, u, j, a.States[u][j], b.States[u][j])
			}
		}
	}
	for u := range a.Outputs {
		for j := range a.Outputs[u] {
			if a.Outputs[u][j] != b.Outputs[u][j] {
				t.Fatalf("%s: output[%d][%d] event=%v level=%v", tag, u, j, a.Outputs[u][j], b.Outputs[u][j])
			}
		}
	}
	if (a.Nodes == nil) != (b.Nodes == nil) {
		t.Fatalf("%s: node rows kept on one trace only", tag)
	}
	for u := range a.Nodes {
		for n := range a.Nodes[u] {
			if a.Nodes[u][n] != b.Nodes[u][n] {
				t.Fatalf("%s: node[%d][%d] event=%v level=%v", tag, u, n, a.Nodes[u][n], b.Nodes[u][n])
			}
		}
	}
}

// TestEventSimMatchesLevelOrder is the evaluator-twin property test:
// the event-driven sparse-delta evaluator and the retained level-order
// copy-and-propagate path must produce byte-identical traces (states,
// outputs and per-node rows), identical detections, and — because the
// level path is change-driven too — identical gate-visit and event
// counts, for random circuits, faults and sequences including 3- and
// 4-input gates.
func TestEventSimMatchesLevelOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		c, err := randomCircuitWide(rng, 3, 4, 12+rng.Intn(30))
		if err != nil {
			continue
		}
		T := randomSequence(rng, c.NumInputs(), 2+rng.Intn(5))
		ev := New(c)
		lv := New(c)
		lv.SetEventSim(false)
		good, err := ev.Run(T, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.List(c)
		for k := 0; k < 8; k++ {
			f := faults[rng.Intn(len(faults))]
			ev.ResetStats()
			lv.ResetStats()
			trEv, atEv, detEv, err := ev.RunFault(T, good, f, true)
			if err != nil {
				t.Fatal(err)
			}
			trLv, atLv, detLv, err := lv.RunFault(T, good, f, true)
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("trial %d fault %s", trial, f.Name(c))
			if detEv != detLv || atEv != atLv {
				t.Fatalf("%s: detection event=(%v,%+v) level=(%v,%+v)", tag, detEv, atEv, detLv, atLv)
			}
			compareTraces(t, tag, trEv, trLv)

			se, sl := ev.Stats(), lv.Stats()
			if se.DeltaFrames != 0 || sl.EventFrames != 0 {
				t.Fatalf("%s: evaluators crossed paths: event=%+v level=%+v", tag, se, sl)
			}
			if se.EventFrames != sl.DeltaFrames || se.EventGateEvals != sl.DeltaGateEvals ||
				se.Events != sl.Events || se.FullFrames != sl.FullFrames {
				t.Fatalf("%s: counter parity broken:\n  event: %+v\n  level: %+v", tag, se, sl)
			}
		}
	}
}

// TestEventSimFrameDeltaMatches checks the exported FrameDelta entry
// point: with the event evaluator on it must reproduce the level-order
// result and the full re-evaluation exactly, for random frames, faults
// and divergent present states.
func TestEventSimFrameDeltaMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 30; trial++ {
		c, err := randomCircuitWide(rng, 3, 4, 12+rng.Intn(24))
		if err != nil {
			continue
		}
		ev := New(c)
		lv := New(c)
		lv.SetEventSim(false)
		pat := make(Pattern, c.NumInputs())
		for i := range pat {
			pat[i] = logic.Val(rng.Intn(3))
		}
		goodPS := make([]logic.Val, c.NumFFs())
		badPS := make([]logic.Val, c.NumFFs())
		for i := range goodPS {
			goodPS[i] = logic.Val(rng.Intn(3))
			badPS[i] = logic.Val(rng.Intn(3))
		}
		goodVals := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, goodPS, nil, goodVals)

		faults := fault.List(c)
		f := faults[rng.Intn(len(faults))]
		want := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, badPS, &f, want)
		gotEv := ev.FrameDelta(pat, badPS, goodVals, &f)
		gotLv := lv.FrameDelta(pat, badPS, goodVals, &f)
		for n := range want {
			if gotEv[n] != want[n] || gotLv[n] != want[n] {
				t.Fatalf("trial %d fault %s: node %s event=%v level=%v full=%v",
					trial, f.Name(c), c.NodeName(netlist.NodeID(n)), gotEv[n], gotLv[n], want[n])
			}
		}
		// Fault-free frames must pass through unchanged too.
		gotEv = ev.FrameDelta(pat, goodPS, goodVals, nil)
		for n := range goodVals {
			if gotEv[n] != goodVals[n] {
				t.Fatalf("trial %d: fault-free event delta diverged at node %d", trial, n)
			}
		}
	}
}

// eventFuzzBench mixes arities 1-4 over reconvergent FF fanout so the
// fuzzer exercises every packed-LUT width and the cone boundary.
const eventFuzzBench = `
INPUT(a)
INPUT(b)
OUTPUT(o1)
OUTPUT(o2)
q1 = DFF(d1)
q2 = DFF(d2)
n1 = NOT(q1)
w3 = AND(a, b, q1)
w4 = NOR(a, b, q1, q2)
d1 = XOR(n1, w4)
d2 = OR(w3, q2)
o1 = NAND(w3, w4, d1, d2)
o2 = XNOR(q1, q2)
`

// FuzzEventSimFrameDelta decodes the fuzz input as a frame (pattern
// bits, present-state values, fault pick) and asserts the event-driven
// FrameDelta agrees with the level-order twin and with a full
// re-evaluation.
func FuzzEventSimFrameDelta(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{9, 0, 1, 2, 0, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		c := mustParse(t, "eventfuzz", eventFuzzBench)
		ev := New(c)
		lv := New(c)
		lv.SetEventSim(false)
		at := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		pat := make(Pattern, c.NumInputs())
		for i := range pat {
			pat[i] = logic.Val(at(i) % 3)
		}
		goodPS := make([]logic.Val, c.NumFFs())
		badPS := make([]logic.Val, c.NumFFs())
		for i := range goodPS {
			goodPS[i] = logic.Val(at(len(pat)+i) % 3)
			badPS[i] = logic.Val(at(len(pat)+len(goodPS)+i) % 3)
		}
		goodVals := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, goodPS, nil, goodVals)
		faults := fault.List(c)
		fl := faults[int(at(len(pat)+2*len(goodPS)))%len(faults)]
		want := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, badPS, &fl, want)
		gotEv := ev.FrameDelta(pat, badPS, goodVals, &fl)
		gotLv := lv.FrameDelta(pat, badPS, goodVals, &fl)
		for n := range want {
			if gotEv[n] != want[n] || gotLv[n] != want[n] {
				t.Fatalf("fault %s: node %s event=%v level=%v full=%v",
					fl.Name(c), c.NodeName(netlist.NodeID(n)), gotEv[n], gotLv[n], want[n])
			}
		}
	})
}
