package seqsim

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestFrameDeltaMatchesEvalFrame checks the exported single-frame delta
// evaluator against the full evaluator for random frames and faults.
func TestFrameDeltaMatchesEvalFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		c, err := randomCircuit(rng, 3, 4, 12+rng.Intn(20))
		if err != nil {
			continue
		}
		s := New(c)
		pat := make(Pattern, c.NumInputs())
		for i := range pat {
			pat[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		goodPS := make([]logic.Val, c.NumFFs())
		badPS := make([]logic.Val, c.NumFFs())
		for i := range goodPS {
			goodPS[i] = logic.Val(rng.Intn(3))
			badPS[i] = logic.Val(rng.Intn(3))
		}
		goodVals := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, goodPS, nil, goodVals)

		faults := fault.List(c)
		f := faults[rng.Intn(len(faults))]
		want := make([]logic.Val, c.NumNodes())
		EvalFrame(c, pat, badPS, &f, want)
		got := s.FrameDelta(pat, badPS, goodVals, &f)
		for n := range want {
			if got[n] != want[n] {
				t.Fatalf("trial %d fault %s: node %s delta=%v full=%v",
					trial, f.Name(c), c.NodeName(netlist.NodeID(n)), got[n], want[n])
			}
		}
		// Fault-free delta path (nil fault).
		got = s.FrameDelta(pat, goodPS, goodVals, nil)
		for n := range goodVals {
			if got[n] != goodVals[n] {
				t.Fatalf("trial %d: fault-free delta diverged at node %d", trial, n)
			}
		}
	}
}
