package seqsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// counterBench is a 1-bit toggle with enable: q' = q XOR en, out = q.
const counterBench = `
INPUT(en)
OUTPUT(obs)
q = DFF(d)
d = XOR(q, en)
obs = BUFF(q)
`

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustSeq(t *testing.T, lines ...string) Sequence {
	t.Helper()
	seq, err := ParseSequence(lines)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestParseSequence(t *testing.T) {
	seq, err := ParseSequence([]string{"10x", "011"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[0][2] != logic.X || seq[1][0] != logic.Zero {
		t.Fatal("sequence parsed wrong")
	}
	if _, err := ParseSequence([]string{"1?0"}); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestFaultFreeToggleStaysX(t *testing.T) {
	// With unknown initial state, q stays X no matter the input.
	c := mustParse(t, "ctr", counterBench)
	s := New(c)
	tr, err := s.FaultFree(mustSeq(t, "1", "0", "1"))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		if tr.Outputs[u][0] != logic.X {
			t.Errorf("output at %d = %v, want x", u, tr.Outputs[u][0])
		}
	}
	if tr.Len() != 3 || len(tr.States) != 4 {
		t.Error("trace lengths wrong")
	}
}

// resetBench has a synchronizing input: r=0 forces q to 0.
const resetBench = `
INPUT(r)
INPUT(x)
OUTPUT(obs)
q = DFF(d)
d = AND(r, t)
t = XOR(q, x)
obs = BUFF(q)
`

func TestFaultFreeSynchronizes(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	tr, err := s.FaultFree(mustSeq(t, "00", "11", "10"))
	if err != nil {
		t.Fatal(err)
	}
	// After r=0 at time 0, q=0 at time 1; then d = AND(1, XOR(0,1)) = 1,
	// so q=1 at time 2.
	if tr.States[1][0] != logic.Zero {
		t.Errorf("state[1] = %v, want 0", tr.States[1][0])
	}
	if tr.States[2][0] != logic.One {
		t.Errorf("state[2] = %v, want 1", tr.States[2][0])
	}
	if tr.Outputs[1][0] != logic.Zero || tr.Outputs[2][0] != logic.One {
		t.Errorf("outputs = %v %v, want 0 1", tr.Outputs[1][0], tr.Outputs[2][0])
	}
}

func TestKeepNodes(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	tr, err := s.Run(mustSeq(t, "00", "11"), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 2 {
		t.Fatalf("Nodes frames = %d, want 2", len(tr.Nodes))
	}
	d, _ := c.NodeByName("d")
	if tr.Nodes[0][d] != logic.Zero {
		t.Errorf("node d at time 0 = %v, want 0", tr.Nodes[0][d])
	}
}

func TestPatternWidthChecked(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	if _, err := s.FaultFree(mustSeq(t, "0")); err == nil {
		t.Error("narrow pattern accepted")
	}
	good, _ := s.FaultFree(mustSeq(t, "00"))
	if _, err := s.RunFaults(mustSeq(t, "0"), good, fault.List(c)); err == nil {
		t.Error("narrow pattern accepted by RunFaults")
	}
}

func TestStemFaultDetected(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	T := mustSeq(t, "00", "10", "10")
	good, err := s.FaultFree(T)
	if err != nil {
		t.Fatal(err)
	}
	// Fault: d stuck-at-1. Fault-free: q becomes 0 at time 1 and obs=0.
	// Faulty: q is 1 from time 1 on, obs=1. Detected at time 1.
	d, _ := c.NodeByName("d")
	f := fault.Fault{Node: d, Gate: netlist.NoGate, Stuck: logic.One}
	bad, err := s.Run(T, &f, false)
	if err != nil {
		t.Fatal(err)
	}
	det, ok := FirstDetection(good, bad)
	if !ok {
		t.Fatal("fault not detected")
	}
	if det.Time != 1 || det.Output != 0 {
		t.Errorf("detection at %+v, want time 1 output 0", det)
	}
}

func TestStuckOutputNodeObserved(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	T := mustSeq(t, "00", "10")
	good, _ := s.FaultFree(T)
	obs, _ := c.NodeByName("obs")
	f := fault.Fault{Node: obs, Gate: netlist.NoGate, Stuck: logic.One}
	bad, _ := s.Run(T, &f, false)
	if det, ok := FirstDetection(good, bad); !ok || det.Time != 1 {
		t.Fatalf("obs/SA1 detection = %v %v, want time 1", det, ok)
	}
}

func TestStuckStateNodeEffective(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	q, _ := c.NodeByName("q")
	f := fault.Fault{Node: q, Gate: netlist.NoGate, Stuck: logic.One}
	s := New(c)
	tr, err := s.Run(mustSeq(t, "00", "00"), &f, false)
	if err != nil {
		t.Fatal(err)
	}
	// The stuck state node is effectively 1 at every time unit, including
	// the initial state.
	for u, st := range tr.States {
		if st[0] != logic.One {
			t.Errorf("state[%d] = %v, want 1 (stuck)", u, st[0])
		}
	}
	if tr.Outputs[0][0] != logic.One {
		t.Error("stuck state not observed at output")
	}
}

func TestBranchFaultLocal(t *testing.T) {
	// y1 = AND(a,b), y2 = AND(a,c): branch fault on a->y1 must not
	// disturb y2.
	c := mustParse(t, "fan", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
y1 = AND(a, b)
y2 = AND(a, c)
`)
	y1, _ := c.NodeByName("y1")
	a, _ := c.NodeByName("a")
	g1 := c.Nodes[y1].Driver
	f := fault.Fault{Node: a, Gate: g1, Pin: 0, Stuck: logic.Zero}
	s := New(c)
	tr, err := s.Run(mustSeq(t, "111"), &f, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Outputs[0][0] != logic.Zero {
		t.Errorf("y1 = %v, want 0 (faulty)", tr.Outputs[0][0])
	}
	if tr.Outputs[0][1] != logic.One {
		t.Errorf("y2 = %v, want 1 (unaffected)", tr.Outputs[0][1])
	}
}

func TestRunFaultsMatchesFirstDetection(t *testing.T) {
	c := mustParse(t, "rst", resetBench)
	s := New(c)
	T := mustSeq(t, "00", "11", "10", "01")
	good, err := s.Run(T, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.List(c)
	results, err := s.RunFaults(T, good, faults)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		bad, err := s.Run(T, &f, false)
		if err != nil {
			t.Fatal(err)
		}
		det, ok := FirstDetection(good, bad)
		if results[i].Detected != ok {
			t.Errorf("fault %s: RunFaults=%v, reference=%v", f.Name(c), results[i].Detected, ok)
		}
		if ok && results[i].At != det {
			t.Errorf("fault %s: detection %+v, reference %+v", f.Name(c), results[i].At, det)
		}
	}
}

// randomCircuit builds a random sequential circuit for property tests.
func randomCircuit(rng *rand.Rand, nPI, nFF, nGates int) (*netlist.Circuit, error) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < nFF; i++ {
		pool = append(pool, b.FlipFlop(fmt.Sprintf("q%d", i), b.Signal(fmt.Sprintf("d%d", i))))
	}
	ops := []logic.Op{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		n := 1
		if op != logic.Not && op != logic.Buf {
			n = 2 + rng.Intn(2)
		}
		ins := make([]netlist.NodeID, n)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		var name string
		if i < nFF {
			name = fmt.Sprintf("d%d", i)
		} else {
			name = fmt.Sprintf("g%d", i)
		}
		pool = append(pool, b.Gate(op, name, ins...))
	}
	// Last few gates become outputs.
	for i := 0; i < 3 && i < nGates-nFF; i++ {
		b.Output(fmt.Sprintf("g%d", nGates-1-i))
	}
	return b.Build()
}

func randomSequence(rng *rand.Rand, width, length int) Sequence {
	T := make(Sequence, length)
	for u := range T {
		p := make(Pattern, width)
		for i := range p {
			p[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		T[u] = p
	}
	return T
}

// TestDeltaMatchesFullPass is the central property test: the event-driven
// faulty-frame evaluator must agree with the full-pass evaluator on every
// output of every frame, for random circuits, faults and sequences.
func TestDeltaMatchesFullPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nGates := 10 + rng.Intn(40)
		nFF := 4
		if nGates < nFF {
			continue
		}
		c, err := randomCircuit(rng, 3, nFF, nGates)
		if err != nil {
			// Random wiring can produce no gates after FF Ds; skip.
			continue
		}
		T := randomSequence(rng, c.NumInputs(), 6)
		fast := New(c)
		slow := NewFullPass(c)
		good, err := fast.Run(T, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.List(c)
		// Sample a handful of faults per circuit.
		for k := 0; k < 12; k++ {
			f := faults[rng.Intn(len(faults))]
			rFast, err := fast.RunFaults(T, good, []fault.Fault{f})
			if err != nil {
				t.Fatal(err)
			}
			rSlow, err := slow.RunFaults(T, good, []fault.Fault{f})
			if err != nil {
				t.Fatal(err)
			}
			if rFast[0].Detected != rSlow[0].Detected || (rFast[0].Detected && rFast[0].At != rSlow[0].At) {
				t.Fatalf("trial %d fault %s: delta %+v, full %+v",
					trial, f.Name(c), rFast[0], rSlow[0])
			}
			// Also compare complete traces.
			trFast, err := fast.Run(T, &f, false)
			if err != nil {
				t.Fatal(err)
			}
			trSlow, err := slow.Run(T, &f, false)
			if err != nil {
				t.Fatal(err)
			}
			for u := range trFast.Outputs {
				for j := range trFast.Outputs[u] {
					if trFast.Outputs[u][j] != trSlow.Outputs[u][j] {
						t.Fatalf("trace mismatch at time %d output %d", u, j)
					}
				}
			}
		}
	}
}

// TestMonotoneRefinement checks the simulation-level monotonicity
// property: specifying an initial-state X can only refine outputs, never
// contradict them. This underpins the soundness of state expansion.
func TestMonotoneRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		c, err := randomCircuit(rng, 3, 4, 12+rng.Intn(20))
		if err != nil {
			continue
		}
		T := randomSequence(rng, c.NumInputs(), 5)
		s := New(c)
		base, err := s.FaultFree(T)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a random full binary initial state and resimulate by hand.
		st := make([]logic.Val, c.NumFFs())
		for i := range st {
			st[i] = logic.FromBool(rng.Intn(2) == 1)
		}
		vals := make([]logic.Val, c.NumNodes())
		for u := range T {
			EvalFrame(c, T[u], st, nil, vals)
			for j, id := range c.Outputs {
				b := base.Outputs[u][j]
				if b.IsBinary() && vals[id] != b {
					t.Fatalf("trial %d: binary output changed under refinement at t=%d", trial, u)
				}
			}
			next := make([]logic.Val, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]
			}
			st = next
		}
	}
}

func TestFirstDetectionNone(t *testing.T) {
	c := mustParse(t, "ctr", counterBench)
	s := New(c)
	T := mustSeq(t, "1", "0")
	good, _ := s.FaultFree(T)
	if _, ok := FirstDetection(good, good); ok {
		t.Error("detection against itself")
	}
}
