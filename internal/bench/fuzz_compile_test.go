package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cir"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

// FuzzBuildCircuit drives arbitrary .bench text through the parser, the
// netlist builder and the compiled-IR flattener: any circuit the builder
// accepts must compile without panicking, and the compiled arrays must
// round-trip the netlist's counts and per-gate structure. Compile (not
// the process-wide For cache) keeps the fuzz corpus from growing the
// cache without bound.
func FuzzBuildCircuit(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n")
	f.Add(circuits.S27Bench)
	f.Add("q = DFF(q)\nOUTPUT(q)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nd = XOR(a, q)\nq = DFF(d)\ny = OR(b, q)\n")
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString("fuzz", src)
		if err != nil {
			return
		}
		cc := cir.Compile(c)
		if cc.NumGates() != c.NumGates() || cc.NumNodes() != c.NumNodes() ||
			cc.NumInputs() != c.NumInputs() || cc.NumOutputs() != c.NumOutputs() ||
			cc.NumFFs() != c.NumFFs() {
			t.Fatalf("compiled counts (%d g, %d n, %d i, %d o, %d ff) differ from netlist (%d g, %d n, %d i, %d o, %d ff)",
				cc.NumGates(), cc.NumNodes(), cc.NumInputs(), cc.NumOutputs(), cc.NumFFs(),
				c.NumGates(), c.NumNodes(), c.NumInputs(), c.NumOutputs(), c.NumFFs())
		}
		total := 0
		for gi := range c.Gates {
			g := &c.Gates[gi]
			fanin := cc.FaninOf(netlist.GateID(gi))
			if len(fanin) != len(g.In) {
				t.Fatalf("gate %d: compiled fanin width %d, netlist %d", gi, len(fanin), len(g.In))
			}
			total += len(g.In)
		}
		if len(cc.Fanin) != total || len(cc.FanoutGate) != total {
			t.Fatalf("CSR sizes (%d fanin, %d fanout) differ from total pin count %d",
				len(cc.Fanin), len(cc.FanoutGate), total)
		}
	})
}
