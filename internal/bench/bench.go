// Package bench reads and writes circuits in the ISCAS-89 ".bench"
// textual netlist format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G11 = NOR(G5, G9)
//
// Signal names may be referenced before definition. Gate names accepted
// are AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR, DFF, and the
// constants CONST0/GND and CONST1/VDD.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ops maps bench gate names to logic operators.
var ops = map[string]logic.Op{
	"AND":    logic.And,
	"NAND":   logic.Nand,
	"OR":     logic.Or,
	"NOR":    logic.Nor,
	"NOT":    logic.Not,
	"INV":    logic.Not,
	"BUF":    logic.Buf,
	"BUFF":   logic.Buf,
	"XOR":    logic.Xor,
	"XNOR":   logic.Xnor,
	"CONST0": logic.Const0,
	"GND":    logic.Const0,
	"CONST1": logic.Const1,
	"VDD":    logic.Const1,
}

// opNames maps operators back to canonical bench names.
var opNames = map[logic.Op]string{
	logic.And:    "AND",
	logic.Nand:   "NAND",
	logic.Or:     "OR",
	logic.Nor:    "NOR",
	logic.Not:    "NOT",
	logic.Buf:    "BUFF",
	logic.Xor:    "XOR",
	logic.Xnor:   "XNOR",
	logic.Const0: "CONST0",
	logic.Const1: "CONST1",
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

// Parse reads a .bench netlist from r and compiles it into a circuit with
// the given name.
func Parse(name string, r io.Reader) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	type dff struct {
		q, d string
		line int
	}
	var dffs []dff
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT"):
			arg, err := parseDecl(line, "INPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			b.Input(arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT"):
			arg, err := parseDecl(line, "OUTPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			b.Output(arg)
		default:
			lhs, op, args, err := parseAssign(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			if op == "DFF" {
				if len(args) != 1 {
					return nil, &ParseError{lineNo, fmt.Sprintf("DFF takes 1 input, got %d", len(args))}
				}
				dffs = append(dffs, dff{q: lhs, d: args[0], line: lineNo})
				continue
			}
			lop, ok := ops[op]
			if !ok {
				return nil, &ParseError{lineNo, fmt.Sprintf("unknown gate type %q", op)}
			}
			b.GateNamed(lop, lhs, args...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	for _, f := range dffs {
		b.FlipFlop(f.q, b.Signal(f.d))
	}
	return b.Build()
}

// parseDecl parses "KEYWORD(name)".
func parseDecl(line, kw string) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s declaration %q", kw, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" || strings.ContainsAny(arg, "(), \t") {
		return "", fmt.Errorf("malformed %s name %q", kw, arg)
	}
	return arg, nil
}

// parseAssign parses "lhs = OP(a, b, ...)".
func parseAssign(line string) (lhs, op string, args []string, err error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return "", "", nil, fmt.Errorf("expected assignment, got %q", line)
	}
	lhs = strings.TrimSpace(line[:eq])
	if lhs == "" || strings.ContainsAny(lhs, "(), \t") {
		return "", "", nil, fmt.Errorf("malformed signal name %q", lhs)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.ToUpper(strings.TrimSpace(rhs[:open]))
	inner := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
	if inner == "" {
		if op == "CONST0" || op == "CONST1" || op == "GND" || op == "VDD" {
			return lhs, op, nil, nil
		}
		return "", "", nil, fmt.Errorf("gate %q has no inputs", lhs)
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" || strings.ContainsAny(a, "() \t") {
			return "", "", nil, fmt.Errorf("malformed input name %q in %q", a, line)
		}
		args = append(args, a)
	}
	return lhs, op, args, nil
}

// ParseString parses a .bench netlist held in a string.
func ParseString(name, text string) (*netlist.Circuit, error) {
	return Parse(name, strings.NewReader(text))
}

// Write renders the circuit in .bench format. The output parses back into
// an equivalent circuit (same nodes, gates, inputs, outputs, flip-flops).
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Stats())
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.NodeName(id))
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.NodeName(id))
	}
	fmt.Fprintln(bw)
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.NodeName(ff.Q), c.NodeName(ff.D))
	}
	// Gates in a stable, human-friendly order: by level, then by name.
	order := make([]netlist.GateID, len(c.Order))
	copy(order, c.Order)
	sort.SliceStable(order, func(i, j int) bool {
		gi, gj := &c.Gates[order[i]], &c.Gates[order[j]]
		if gi.Level != gj.Level {
			return gi.Level < gj.Level
		}
		return c.NodeName(gi.Out) < c.NodeName(gj.Out)
	})
	for _, g := range order {
		gate := &c.Gates[g]
		names := make([]string, len(gate.In))
		for i, in := range gate.In {
			names[i] = c.NodeName(in)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.NodeName(gate.Out), opNames[gate.Op], strings.Join(names, ", "))
	}
	return bw.Flush()
}

// Format renders the circuit in .bench format as a string.
func Format(c *netlist.Circuit) string {
	var sb strings.Builder
	// strings.Builder never fails.
	_ = Write(&sb, c)
	return sb.String()
}
