package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/seqsim"
	"repro/internal/tgen"
)

// TestGeneratedRoundTripBehavior is the strongest round-trip property:
// synthetic circuits written to .bench and re-parsed must be behaviorally
// identical (same outputs and states over a random sequence), not merely
// structurally similar.
func TestGeneratedRoundTripBehavior(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := circuits.GenParams{
			Name: "rt", Inputs: 5, Outputs: 3, FFs: 6, FreeFFs: 1,
			Gates: 60, Seed: seed,
		}
		orig, err := circuits.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := bench.ParseString("rt", bench.Format(orig))
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v", seed, err)
		}
		T := tgen.Random(orig.NumInputs(), 12, seed)
		so := seqsim.New(orig)
		sb := seqsim.New(back)
		to, err := so.FaultFree(T)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := sb.FaultFree(T)
		if err != nil {
			t.Fatal(err)
		}
		for u := range T {
			if logic.FormatVals(to.Outputs[u]) != logic.FormatVals(tb.Outputs[u]) {
				t.Fatalf("seed %d: outputs diverge at time %d: %s vs %s",
					seed, u, logic.FormatVals(to.Outputs[u]), logic.FormatVals(tb.Outputs[u]))
			}
		}
		// States may be ordered differently only if FF declaration order
		// changed; Write preserves FF order, so compare directly.
		final := len(T)
		if logic.FormatVals(to.States[final]) != logic.FormatVals(tb.States[final]) {
			t.Fatalf("seed %d: final states diverge", seed)
		}
	}
}

func TestS27GoldenFormat(t *testing.T) {
	// The formatted s27 netlist must contain each of its gates exactly
	// once and parse back to 10 gates and 3 flip-flops.
	c := circuits.S27()
	text := bench.Format(c)
	for _, line := range []string{
		"G10 = NOR(G14, G11)",
		"G11 = NOR(G5, G9)",
		"G13 = NAND(G2, G12)",
		"G5 = DFF(G10)",
		"G6 = DFF(G11)",
		"G7 = DFF(G13)",
	} {
		if n := strings.Count(text, line); n != 1 {
			t.Errorf("line %q appears %d times", line, n)
		}
	}
	back, err := bench.ParseString("s27", text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != 10 || back.NumFFs() != 3 {
		t.Fatal("golden s27 reparse changed structure")
	}
}

// FuzzParse exercises the .bench parser on arbitrary input: it must never
// panic, and any accepted circuit must be well-formed enough to format
// and re-parse.
func FuzzParse(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n")
	f.Add(circuits.S27Bench)
	f.Add("q = DFF(q)\nOUTPUT(q)\n")
	f.Add("# only a comment\n")
	f.Add("INPUT(a)\ny = FROB(a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = AND(a,\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ParseString("fuzz", src)
		if err != nil {
			return
		}
		back, err := bench.ParseString("fuzz", bench.Format(c))
		if err != nil {
			t.Fatalf("accepted circuit failed round trip: %v", err)
		}
		if back.NumGates() != c.NumGates() || back.NumFFs() != c.NumFFs() {
			t.Fatal("round trip changed structure")
		}
	})
}
