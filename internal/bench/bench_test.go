package bench

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

const toyBench = `
# a toy circuit
INPUT(a)
INPUT(b)
OUTPUT(n1)

q = DFF(d)
n1 = AND(a, q)
d = OR(n1, b)
`

func TestParseToy(t *testing.T) {
	c, err := ParseString("toy", toyBench)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 || c.NumFFs() != 1 || c.NumGates() != 2 {
		t.Fatalf("wrong counts: %v", c.Stats())
	}
	n1, ok := c.NodeByName("n1")
	if !ok {
		t.Fatal("n1 missing")
	}
	if c.Gates[c.Nodes[n1].Driver].Op != logic.And {
		t.Error("n1 should be AND")
	}
}

func TestParseForwardReference(t *testing.T) {
	// d referenced by the DFF before it is defined; n1 referenced by
	// OUTPUT before its gate appears.
	src := `
OUTPUT(y)
q = DFF(y)
INPUT(a)
y = NAND(a, q)
`
	c, err := ParseString("fwd", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if c.NumGates() != 1 || c.NumFFs() != 1 {
		t.Fatal("wrong structure")
	}
}

func TestParseAllGateTypes(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(t8)
t0 = AND(a, b)
t1 = NAND(a, b)
t2 = OR(a, b)
t3 = NOR(a, b)
t4 = XOR(a, b)
t5 = XNOR(a, b)
t6 = NOT(a)
t7 = BUFF(b)
c0 = CONST0()
c1 = VDD()
t8 = AND(t0, t1, t2, t3, t4, t5, t6, t7, c0, c1)
`
	c, err := ParseString("all", src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	wantOps := map[string]logic.Op{
		"t0": logic.And, "t1": logic.Nand, "t2": logic.Or, "t3": logic.Nor,
		"t4": logic.Xor, "t5": logic.Xnor, "t6": logic.Not, "t7": logic.Buf,
		"c0": logic.Const0, "c1": logic.Const1,
	}
	for name, op := range wantOps {
		id, ok := c.NodeByName(name)
		if !ok {
			t.Fatalf("node %s missing", name)
		}
		if got := c.Gates[c.Nodes[id].Driver].Op; got != op {
			t.Errorf("%s: op = %v, want %v", name, got, op)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n"
	if _, err := ParseString("ci", src); err != nil {
		t.Fatalf("lower-case gate name rejected: %v", err)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = BUFF(a)\n\n"
	if _, err := ParseString("cmt", src); err != nil {
		t.Fatalf("comments mishandled: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"badDecl", "INPUT a\n", "malformed"},
		{"badDeclName", "INPUT(a b)\n", "malformed"},
		{"noAssign", "INPUT(a)\nfoo bar\n", "assignment"},
		{"badGate", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n", "unknown gate"},
		{"dffArity", "INPUT(a)\nq = DFF(a, a)\nOUTPUT(q)\n", "DFF takes 1"},
		{"emptyInputs", "INPUT(a)\ny = AND()\nOUTPUT(y)\n", "no inputs"},
		{"badLHS", "INPUT(a)\ny z = AND(a)\nOUTPUT(y)\n", "malformed signal"},
		{"badArg", "INPUT(a)\ny = AND(a, )\nOUTPUT(y)\n", "malformed input"},
		{"noParen", "INPUT(a)\ny = AND a\nOUTPUT(y)\n", "malformed gate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.name, tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("ln", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

// equivalent reports whether two circuits have the same structure modulo
// node/gate ordering.
func equivalent(a, b *netlist.Circuit) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() ||
		a.NumFFs() != b.NumFFs() || a.NumGates() != b.NumGates() {
		return false
	}
	for i, id := range a.Inputs {
		if a.NodeName(id) != b.NodeName(b.Inputs[i]) {
			return false
		}
	}
	for i, id := range a.Outputs {
		if a.NodeName(id) != b.NodeName(b.Outputs[i]) {
			return false
		}
	}
	for i, ff := range a.FFs {
		if a.NodeName(ff.Q) != b.NodeName(b.FFs[i].Q) || a.NodeName(ff.D) != b.NodeName(b.FFs[i].D) {
			return false
		}
	}
	for gi := range a.Gates {
		g := &a.Gates[gi]
		out := a.NodeName(g.Out)
		id, ok := b.NodeByName(out)
		if !ok || b.Nodes[id].Driver == netlist.NoGate {
			return false
		}
		h := &b.Gates[b.Nodes[id].Driver]
		if h.Op != g.Op || len(h.In) != len(g.In) {
			return false
		}
		for i := range g.In {
			if a.NodeName(g.In[i]) != b.NodeName(h.In[i]) {
				return false
			}
		}
	}
	return true
}

func TestWriteParseRoundTrip(t *testing.T) {
	c, err := ParseString("toy", toyBench)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Format(c)
	c2, err := ParseString("toy", text)
	if err != nil {
		t.Fatalf("re-parse of written netlist failed: %v\n%s", err, text)
	}
	if !equivalent(c, c2) {
		t.Fatalf("round trip changed circuit:\n%s", text)
	}
}

func TestWriteConstants(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\nc = CONST1()\ny = AND(a, c)\n"
	c, err := ParseString("k", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Format(c)
	if !strings.Contains(text, "CONST1()") {
		t.Fatalf("written netlist lacks constant: %s", text)
	}
	c2, err := ParseString("k", text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !equivalent(c, c2) {
		t.Fatal("constant round trip changed circuit")
	}
}
