# Verify recipe from ROADMAP.md. `make verify` is the full gate:
# build + tests + vet + race tests over the parallel, prescreen and
# pooled-frame paths.

GO ?= go

# Test names covering code that runs concurrently or reuses pooled state:
# RunParallel scheduling, the bit-parallel prescreen, the trail/pool
# cross-checks (pools must be per-worker, never shared), the bit-parallel
# resimulation cross-checks (per-worker regions and lane scratch), the
# event-driven evaluator cross-checks (per-worker EventEval scratch and
# shared schedules), the shared compiled-IR reads in internal/cir,
# metric registry scrapes under concurrent writers, the serve run
# registry, the cross-run LRU cache under concurrent submitters, the
# xtrace span buffers (per-worker writers merging into one tracer while
# exports/scrapes read it), the rolling-window SLO aggregators
# (lock-free Observe racing slot rotation and scrapes), and histogram
# exemplar slots (CAS writers racing exposition reads).
RACE_PATTERN := Parallel|Prescreen|Pooled|CrossCheck|Server|Span|Event|Window|Exemplar
RACE_PKGS    := ./internal/core ./internal/bitsim ./internal/cir ./internal/seqsim ./internal/metrics ./internal/serve ./internal/cache ./internal/xtrace

.PHONY: build test vet race verify bench bench-lite bench-collect benchdiff trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -run '$(RACE_PATTERN)' $(RACE_PKGS)

verify: build test vet race

# Whole-list MOT benchmarks (Table 2 circuits) with allocation stats.
bench:
	$(GO) test -run xxx -bench 'Table2|Prescreen|ResimBitParallel' -benchmem -benchtime 2x -count 3 .

# Quick sg298-only slice of the whole-list benchmarks — the CI-sized
# regression probe. Combine with benchdiff:
#   make bench-lite | tee benchdiff.out
#   go run ./cmd/benchdiff -baseline BENCH_PR9.json benchdiff.out
bench-lite:
	$(GO) test -run xxx -bench 'Table2_sg298|LiveOverhead|ResimBitParallel' -benchmem -benchtime 2x -count 3 .

# Sample span trace of a fully sampled sg298 run, loadable in
# ui.perfetto.dev or chrome://tracing. CI uploads it as an artifact.
trace:
	$(GO) run ./cmd/motfsim -circuit sg298 -random 144 -workers 4 -span-trace sg298.trace.json -span-sample 1

# Pair-collection and implication micro-benchmarks: pooled/trail path
# against the retained allocate-per-pair reference.
bench-collect:
	$(GO) test -run xxx -bench 'CollectPairs|SimulateList' -benchmem ./internal/core
	$(GO) test -run xxx -bench 'Imply' -benchmem ./internal/implic

# Fresh whole-list bench run compared against a recorded baseline; fails
# on any median slowdown beyond 10%. With no BENCH_BASELINE, benchdiff
# picks the newest BENCH_*.json; set BENCH_BASELINE=BENCH_PR2.json (etc.)
# to compare against a specific PR.
BENCH_BASELINE ?=
benchdiff:
	$(GO) test -run xxx -bench 'Table2|Prescreen|ResimBitParallel' -benchmem -benchtime 2x -count 3 . | tee benchdiff.out
	$(GO) run ./cmd/benchdiff $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) benchdiff.out
