// Command motatpg generates deterministic test sequences (PODEM over a
// bounded time-frame expansion) for a circuit's stuck-at faults, grades
// the result, and optionally writes the sequence to a vector file.
//
//	motatpg -circuit s27 -frames 10 -backtracks 300
//	motatpg -bench d.bench -o tests.vec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		benchPath  = flag.String("bench", "", "ISCAS-89 .bench netlist file")
		builtin    = flag.String("circuit", "", "built-in circuit name")
		frames     = flag.Int("frames", 8, "time-frame expansion bound")
		backtracks = flag.Int("backtracks", 400, "PODEM backtrack limit per fault")
		out        = flag.String("o", "", "write the concatenated sequence to this vector file")
		list       = flag.Bool("list", false, "list per-fault generation results")
		random     = flag.Int("random-phase", 64, "random patterns graded before the deterministic phase (0 disables)")
		seed       = flag.Int64("seed", 1, "random-phase seed")
	)
	flag.Parse()
	if err := run(*benchPath, *builtin, *frames, *backtracks, *random, *seed, *out, *list); err != nil {
		fmt.Fprintln(os.Stderr, "motatpg:", err)
		os.Exit(1)
	}
}

func run(benchPath, builtin string, frames, backtracks, random int, seed int64, out string, list bool) error {
	var (
		c   *motsim.Circuit
		err error
	)
	switch {
	case benchPath != "":
		c, err = motsim.LoadBench(benchPath)
	case builtin != "":
		c, err = motsim.BuiltinCircuit(builtin)
	default:
		return fmt.Errorf("need -bench FILE or -circuit NAME")
	}
	if err != nil {
		return err
	}
	faults := motsim.CollapsedFaults(c)
	cfg := motsim.ATPGConfig{
		MaxFrames: frames, MaxBacktracks: backtracks,
		RandomPhase: random, RandomSeed: seed,
	}
	results, T, summary, err := motsim.GenerateTests(c, faults, cfg)
	if err != nil {
		return err
	}
	if list {
		for _, r := range results {
			extra := ""
			if r.Status.String() == "generated" {
				extra = fmt.Sprintf(" (%d frames)", len(r.Test))
			}
			fmt.Printf("%-28s %s%s\n", r.Fault.Name(c), r.Status, extra)
		}
	}
	fmt.Printf("%s: %d faults\n", c.Name, summary.Total)
	fmt.Printf("  random phase:  %d detected (%d patterns)\n", summary.RandomDetected, random)
	fmt.Printf("  deterministic: %d generated\n", summary.Generated)
	fmt.Printf("  aborted:       %d\n", summary.Aborted)
	fmt.Printf("  untestable:    %d (within %d frames)\n", summary.Untestable, frames)
	fmt.Printf("  sequence:      %d patterns\n", len(T))

	// Grade the concatenated sequence with bit-parallel conventional
	// simulation.
	if len(T) > 0 {
		graded, err := motsim.Conventional(c, T, faults)
		if err != nil {
			return err
		}
		detected := 0
		for _, r := range graded {
			if r.Detected {
				detected++
			}
		}
		fmt.Printf("  graded coverage of the concatenated sequence: %d / %d (%.1f%%)\n",
			detected, len(faults), 100*float64(detected)/float64(len(faults)))
	}
	if out != "" && len(T) > 0 {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := motsim.WriteVectors(f, T); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
