package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunS27(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.vec")
	if err := run("", "s27", 8, 150, 32, 1, out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "patterns") {
		t.Error("vector file header missing")
	}
}

func TestRunRejects(t *testing.T) {
	if run("", "", 8, 100, 0, 1, "", false) == nil {
		t.Error("no circuit accepted")
	}
	if run("", "bogus", 8, 100, 0, 1, "", false) == nil {
		t.Error("unknown circuit accepted")
	}
	if run("", "s27", 0, 100, 0, 1, "", false) == nil {
		t.Error("invalid frame bound accepted")
	}
}
