package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/profiling"
)

// opts builds the baseline test options: s27, a 16-pattern random
// sequence, serial execution.
func opts() runOptions {
	return runOptions{
		builtin:   "s27",
		randomLen: 16,
		seed:      7,
		method:    "proposed",
		nstates:   64,
		workers:   1,
		prescreen: true,
		metrics:   true,
	}
}

func TestRunMethods(t *testing.T) {
	for _, method := range []string{"conventional", "lowcomplexity", "baseline", "proposed"} {
		for _, prescreen := range []bool{true, false} {
			o := opts()
			o.method = method
			o.prescreen = prescreen
			o.out = &bytes.Buffer{}
			if err := run(o); err != nil {
				t.Errorf("method %s (prescreen=%v): %v", method, prescreen, err)
			}
		}
	}
}

// TestRunMetricsAddr runs with the telemetry sidecar enabled; the run
// must succeed and shut the sidecar down cleanly. (The exposition
// itself is covered by the serve package tests.)
func TestRunMetricsAddr(t *testing.T) {
	o := opts()
	o.metricsAddr = "127.0.0.1:0"
	o.out = &bytes.Buffer{}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// A bad address must fail before simulating anything.
	o = opts()
	o.metricsAddr = "127.0.0.1:-1"
	o.out = &bytes.Buffer{}
	if run(o) == nil {
		t.Error("invalid metrics address accepted")
	}
}

func TestRunRejects(t *testing.T) {
	mod := func(f func(*runOptions)) runOptions {
		o := opts()
		o.randomLen = 8
		o.seed = 1
		o.out = &bytes.Buffer{}
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    runOptions
	}{
		{"noCircuit", mod(func(o *runOptions) { o.builtin = "" })},
		{"bothCircuits", mod(func(o *runOptions) { o.benchPath = "x.bench" })},
		{"unknownCircuit", mod(func(o *runOptions) { o.builtin = "bogus" })},
		{"noSequence", mod(func(o *runOptions) { o.randomLen = 0 })},
		{"badMethod", mod(func(o *runOptions) { o.method = "frob" })},
		{"zeroWorkers", mod(func(o *runOptions) { o.workers = 0 })},
		{"negativeWorkers", mod(func(o *runOptions) { o.workers = -4 })},
		{"timingsWithoutMetrics", mod(func(o *runOptions) { o.metrics = false; o.traceTimings = true })},
	}
	for _, tc := range cases {
		if run(tc.o) == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestRunWithVectorsAndList(t *testing.T) {
	dir := t.TempDir()
	vec := filepath.Join(dir, "t.vec")
	if err := os.WriteFile(vec, []byte("1011\n0110\n1111\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.vecPath = vec
	o.randomLen = 0
	o.seed = 1
	o.full = true
	o.list = true
	o.out = &bytes.Buffer{}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsOnly(t *testing.T) {
	o := opts()
	o.randomLen = 0
	o.stats = true
	o.out = &bytes.Buffer{}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedy(t *testing.T) {
	o := opts()
	o.greedy = true
	o.seed = 3
	o.method = "baseline"
	o.nstates = 16
	o.out = &bytes.Buffer{}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bench")
	c, err := motsim.BuiltinCircuit("s27")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := motsim.WriteBench(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := opts()
	o.builtin = ""
	o.benchPath = path
	o.randomLen = 8
	o.seed = 1
	o.method = "conventional"
	o.out = &bytes.Buffer{}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunJSON checks the -json report: valid JSON with the per-stage
// breakdown and histograms for an MOT method, and the compact schema for
// the conventional fast path.
func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	o := opts()
	o.jsonOut = true
	o.out = &buf
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"circuit", "stages", "histograms", "coverage"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}

	buf.Reset()
	o.method = "conventional"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	rep = nil
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("conventional -json output not valid JSON: %v", err)
	}
	if rep["method"] != "conventional" {
		t.Errorf("conventional report method = %v", rep["method"])
	}
}

// TestRunConeOrder checks -cone-order: the reordered run must report
// exactly the same summary counts as the default order (detection is
// per fault, so ordering cannot change it), differing only in the
// per-fault listing order.
func TestRunConeOrder(t *testing.T) {
	summary := func(coneOrder bool) map[string]any {
		var buf bytes.Buffer
		o := opts()
		o.coneOrder = coneOrder
		o.jsonOut = true
		o.out = &buf
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain, ordered := summary(false), summary(true)
	for _, key := range []string{"faults", "detected_total", "detected_conventional", "detected_mot", "coverage"} {
		if plain[key] != ordered[key] {
			t.Errorf("%s: default order %v != cone order %v", key, plain[key], ordered[key])
		}
	}
}

// TestRunTraceAndProfiles drives a run with the JSONL trace and all
// three profilers enabled, checking every artifact lands on disk.
func TestRunTraceAndProfiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := opts()
	o.workers = 4
	o.tracePath = filepath.Join(dir, "trace.jsonl")
	o.jsonOut = true
	o.prof = profiling.Options{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		ExecTrace:  filepath.Join(dir, "exec.out"),
	}
	o.out = &buf
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	c, _ := motsim.BuiltinCircuit("s27")
	if want := len(motsim.CollapsedFaults(c)); len(lines) != want {
		t.Errorf("trace has %d lines, want %d", len(lines), want)
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line not valid JSON: %v\n%s", err, line)
		}
	}
	for _, p := range []string{o.prof.CPUProfile, o.prof.MemProfile, o.prof.ExecTrace} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestRunSpanTrace runs with -span-trace at full sampling and checks
// the output validates as Chrome trace-event JSON with the expected
// span kinds.
func TestRunSpanTrace(t *testing.T) {
	var buf bytes.Buffer
	o := opts()
	o.workers = 2
	o.spanTracePath = filepath.Join(t.TempDir(), "spans.trace.json")
	o.spanSample = 1
	o.out = &buf
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.spanTracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("span trace is not valid Chrome trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"run s27", "prescreen", "mot", "fault"} {
		if !names[want] {
			t.Errorf("span trace missing %q events", want)
		}
	}

	// An out-of-range rate is rejected by config validation.
	o = opts()
	o.spanTracePath = filepath.Join(t.TempDir(), "never.json")
	o.spanSample = -1
	o.out = &bytes.Buffer{}
	if err := run(o); err == nil {
		t.Error("out-of-range -span-sample accepted")
	}
}

func TestDumpVCD(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.vcd")
	if err := dumpVCD("", "s27", "", 8, 1, out, "G11/SA1"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) == 0 {
		t.Fatal("VCD not written")
	}
	if err := dumpVCD("", "s27", "", 0, 1, out, ""); err == nil {
		t.Error("VCD without sequence accepted")
	}
	if err := dumpVCD("", "s27", "", 4, 1, out, "nope/SA9"); err == nil {
		t.Error("unknown fault accepted")
	}
}
