package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestRunMethods(t *testing.T) {
	for _, method := range []string{"conventional", "lowcomplexity", "baseline", "proposed"} {
		for _, prescreen := range []bool{true, false} {
			if err := run("", "s27", "", 16, false, 7, method, 64, false, false, false, 1, prescreen); err != nil {
				t.Errorf("method %s (prescreen=%v): %v", method, prescreen, err)
			}
		}
	}
}

func TestRunRejects(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"noCircuit", func() error { return run("", "", "", 8, false, 1, "proposed", 64, false, false, false, 1, true) }},
		{"bothCircuits", func() error { return run("x.bench", "s27", "", 8, false, 1, "proposed", 64, false, false, false, 1, true) }},
		{"unknownCircuit", func() error { return run("", "bogus", "", 8, false, 1, "proposed", 64, false, false, false, 1, true) }},
		{"noSequence", func() error { return run("", "s27", "", 0, false, 1, "proposed", 64, false, false, false, 1, true) }},
		{"badMethod", func() error { return run("", "s27", "", 8, false, 1, "frob", 64, false, false, false, 1, true) }},
		{"zeroWorkers", func() error { return run("", "s27", "", 8, false, 1, "proposed", 64, false, false, false, 0, true) }},
		{"negativeWorkers", func() error { return run("", "s27", "", 8, false, 1, "proposed", 64, false, false, false, -4, true) }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestRunWithVectorsAndList(t *testing.T) {
	dir := t.TempDir()
	vec := filepath.Join(dir, "t.vec")
	if err := os.WriteFile(vec, []byte("1011\n0110\n1111\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "s27", vec, 0, false, 1, "proposed", 64, true, true, false, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsOnly(t *testing.T) {
	if err := run("", "s27", "", 0, false, 1, "proposed", 64, false, false, true, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedy(t *testing.T) {
	if err := run("", "s27", "", 16, true, 3, "baseline", 16, false, false, false, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bench")
	c, err := motsim.BuiltinCircuit("s27")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := motsim.WriteBench(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, "", "", 8, false, 1, "conventional", 64, false, false, false, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestDumpVCD(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.vcd")
	if err := dumpVCD("", "s27", "", 8, 1, out, "G11/SA1"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) == 0 {
		t.Fatal("VCD not written")
	}
	if err := dumpVCD("", "s27", "", 0, 1, out, ""); err == nil {
		t.Error("VCD without sequence accepted")
	}
	if err := dumpVCD("", "s27", "", 4, 1, out, "nope/SA9"); err == nil {
		t.Error("unknown fault accepted")
	}
}
