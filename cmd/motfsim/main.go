// Command motfsim is the fault simulator CLI: it loads a circuit (a
// .bench file or a built-in), obtains a test sequence (a vector file, a
// seeded random sequence, or the greedy generator), and reports per-fault
// and summary results for the selected method.
//
//	motfsim -circuit s27 -random 64 -seed 7
//	motfsim -bench design.bench -vectors t.vec -method baseline
//	motfsim -circuit sg298 -random 64 -method proposed -list
//
// Methods: conventional (three-valued serial simulation only),
// lowcomplexity (implication-based identification only, after [6]), baseline
// (state expansion of [4]), proposed (state expansion with backward
// implications — the paper's procedure, default).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "ISCAS-89 .bench netlist file")
		builtin   = flag.String("circuit", "", "built-in circuit name (s27, intro, fig4, table1, sg208...)")
		vecPath   = flag.String("vectors", "", "test sequence file (one pattern per line)")
		randomLen = flag.Int("random", 0, "generate a random test sequence of this length")
		greedy    = flag.Bool("greedy", false, "generate a greedy coverage-directed sequence")
		seed      = flag.Int64("seed", 1, "seed for sequence generation")
		method    = flag.String("method", "proposed", "conventional, lowcomplexity, baseline, or proposed")
		nstates   = flag.Int("nstates", 64, "expansion budget N_STATES")
		full      = flag.Bool("full-faults", false, "use the uncollapsed fault list")
		list      = flag.Bool("list", false, "list per-fault outcomes")
		stats     = flag.Bool("stats", false, "print circuit statistics and exit")
		workers   = flag.Int("workers", runtime.NumCPU(), "fault-simulation worker goroutines (must be positive)")
		prescreen = flag.Bool("prescreen", true, "bit-parallel conventional prescreen before the per-fault MOT pipeline")
		vcdPath   = flag.String("vcd", "", "dump a waveform (VCD) of the simulation to this file")
		vcdFault  = flag.String("vcd-fault", "", "fault to inject in the VCD dump (default fault-free); use names as printed by -list")
	)
	flag.Parse()
	if *vcdPath != "" {
		if err := dumpVCD(*benchPath, *builtin, *vecPath, *randomLen, *seed, *vcdPath, *vcdFault); err != nil {
			fmt.Fprintln(os.Stderr, "motfsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*benchPath, *builtin, *vecPath, *randomLen, *greedy, *seed, *method, *nstates, *full, *list, *stats, *workers, *prescreen); err != nil {
		fmt.Fprintln(os.Stderr, "motfsim:", err)
		os.Exit(1)
	}
}

// dumpVCD writes a waveform of one machine's simulation.
func dumpVCD(benchPath, builtin, vecPath string, randomLen int, seed int64, vcdPath, faultName string) error {
	c, err := loadCircuit(benchPath, builtin)
	if err != nil {
		return err
	}
	var T motsim.Sequence
	switch {
	case vecPath != "":
		if T, err = motsim.ReadVectorsFile(vecPath); err != nil {
			return err
		}
	case randomLen > 0:
		T = motsim.RandomSequence(c, randomLen, seed)
	default:
		return fmt.Errorf("need -vectors FILE or -random N for the VCD dump")
	}
	var flt *motsim.Fault
	if faultName != "" {
		f, err := motsim.FaultByName(c, motsim.Faults(c), faultName)
		if err != nil {
			return err
		}
		flt = &f
	}
	tr, err := motsim.Simulate(c, T, flt, true)
	if err != nil {
		return err
	}
	out, err := os.Create(vcdPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := motsim.WriteVCD(out, c, T, tr, true); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d frames, %d signals)\n", vcdPath, len(T), c.NumNodes())
	return nil
}

// loadCircuit resolves the -bench / -circuit selection.
func loadCircuit(benchPath, builtin string) (*motsim.Circuit, error) {
	switch {
	case benchPath != "" && builtin != "":
		return nil, fmt.Errorf("use either -bench or -circuit, not both")
	case benchPath != "":
		return motsim.LoadBench(benchPath)
	case builtin != "":
		c, err := motsim.BuiltinCircuit(builtin)
		if err != nil {
			return nil, fmt.Errorf("%w (known: %v)", err, motsim.BuiltinNames())
		}
		return c, nil
	}
	return nil, fmt.Errorf("need -bench FILE or -circuit NAME")
}

func run(benchPath, builtin, vecPath string, randomLen int, greedy bool, seed int64,
	method string, nstates int, full, list, stats bool, workers int, prescreen bool) error {

	// A non-positive worker count used to reach RunParallel and silently
	// degrade to serial execution; reject it outright.
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	c, err := loadCircuit(benchPath, builtin)
	if err != nil {
		return err
	}
	if stats {
		fmt.Println(c.Stats())
		return nil
	}

	faults := motsim.CollapsedFaults(c)
	if full {
		faults = motsim.Faults(c)
	}

	var T motsim.Sequence
	switch {
	case vecPath != "":
		if T, err = motsim.ReadVectorsFile(vecPath); err != nil {
			return err
		}
	case greedy:
		gcfg := motsim.DefaultGreedyConfig()
		gcfg.Seed = seed
		if randomLen > 0 {
			gcfg.MaxLen = randomLen
		}
		if T, err = motsim.GreedySequence(c, faults, gcfg); err != nil {
			return err
		}
		fmt.Printf("greedy sequence: %d patterns\n", len(T))
	case randomLen > 0:
		T = motsim.RandomSequence(c, randomLen, seed)
	default:
		return fmt.Errorf("need -vectors FILE, -random N, or -greedy")
	}

	if method == "conventional" {
		// Fast path: bit-parallel conventional simulation, 63 machines at
		// a time.
		results, err := motsim.Conventional(c, T, faults)
		if err != nil {
			return err
		}
		detected := 0
		for _, r := range results {
			if r.Detected {
				detected++
			}
			if list {
				verdict := "undetected"
				if r.Detected {
					verdict = fmt.Sprintf("detected at t=%d output=%d", r.At.Time, r.At.Output)
				}
				fmt.Printf("%-28s %s\n", r.Fault.Name(c), verdict)
			}
		}
		fmt.Printf("%s: %d faults, %d patterns, method=conventional (bit-parallel)\n", c.Name, len(faults), len(T))
		fmt.Printf("  total detected: %d / %d (%.1f%%)\n",
			detected, len(faults), 100*float64(detected)/float64(max(1, len(faults))))
		return nil
	}

	var cfg motsim.Config
	switch method {
	case "proposed":
		cfg = motsim.DefaultConfig()
	case "baseline":
		cfg = motsim.BaselineConfig()
	case "lowcomplexity":
		// Implication-based identification only, after the approach of
		// the paper's reference [6]: no state expansion.
		cfg = motsim.DefaultConfig()
		cfg.IdentificationOnly = true
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	cfg.NStates = max(1, nstates)
	cfg.Prescreen = prescreen

	sim, err := motsim.New(c, T, cfg)
	if err != nil {
		return err
	}
	res, err := sim.RunParallel(faults, workers, nil)
	if err != nil {
		return err
	}
	if list {
		for _, o := range res.Outcomes {
			fmt.Printf("%-28s %s\n", o.Fault.Name(c), o.Outcome)
		}
	}
	fmt.Printf("%s: %d faults, %d patterns, method=%s\n", c.Name, res.Total, len(T), method)
	if cfg.Prescreen {
		fmt.Printf("  prescreen: %d bit-parallel passes dropped %d faults in %s (MOT stage %s)\n",
			res.Stages.PrescreenPasses, res.Stages.PrescreenDropped,
			res.Stages.PrescreenTime.Round(time.Microsecond),
			res.Stages.MOTTime.Round(time.Microsecond))
	}
	fmt.Printf("  detected conventionally: %d\n", res.Conv)
	fmt.Printf("  detected by MOT beyond conventional: %d (%d by identification alone)\n", res.MOT, res.Identified)
	fmt.Printf("  undetected faults pruned by condition (C): %d\n", res.PrunedConditionC)
	fmt.Printf("  sequence-duplicating expansions: %d\n", res.Expansions)
	det, conf, extra := res.AvgCounters()
	fmt.Printf("  avg counters over MOT-detected: detect=%.2f conf=%.2f extra=%.2f\n", det, conf, extra)
	fmt.Printf("  total detected: %d / %d (%.1f%%)\n",
		res.Detected(), res.Total, 100*float64(res.Detected())/float64(max(1, res.Total)))
	return nil
}
