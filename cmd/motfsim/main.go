// Command motfsim is the fault simulator CLI: it loads a circuit (a
// .bench file or a built-in), obtains a test sequence (a vector file, a
// seeded random sequence, or the greedy generator), and reports per-fault
// and summary results for the selected method.
//
//	motfsim -circuit s27 -random 64 -seed 7
//	motfsim -bench design.bench -vectors t.vec -method baseline
//	motfsim -circuit sg298 -random 64 -method proposed -list
//
// Methods: conventional (three-valued serial simulation only),
// lowcomplexity (implication-based identification only, after [6]), baseline
// (state expansion of [4]), proposed (state expansion with backward
// implications — the paper's procedure, default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/serve"
)

// runOptions collects everything the fault-simulation entry point needs;
// main fills it from flags, tests construct it directly.
type runOptions struct {
	benchPath, builtin string
	vecPath            string
	randomLen          int
	greedy             bool
	seed               int64
	method             string
	nstates            int
	full, list, stats  bool
	workers            int
	prescreen          bool
	bpResim            bool
	eventSim           bool
	coneOrder          bool
	metrics            bool
	jsonOut            bool
	tracePath          string
	traceTimings       bool
	spanTracePath      string
	spanSample         float64
	progress           bool
	metricsAddr        string
	prof               profiling.Options
	out                io.Writer // summary destination; nil means os.Stdout
}

func main() {
	var o runOptions
	flag.StringVar(&o.benchPath, "bench", "", "ISCAS-89 .bench netlist file")
	flag.StringVar(&o.builtin, "circuit", "", "built-in circuit name (s27, intro, fig4, table1, sg208...)")
	flag.StringVar(&o.vecPath, "vectors", "", "test sequence file (one pattern per line)")
	flag.IntVar(&o.randomLen, "random", 0, "generate a random test sequence of this length")
	flag.BoolVar(&o.greedy, "greedy", false, "generate a greedy coverage-directed sequence")
	flag.Int64Var(&o.seed, "seed", 1, "seed for sequence generation")
	flag.StringVar(&o.method, "method", "proposed", "conventional, lowcomplexity, baseline, or proposed")
	flag.IntVar(&o.nstates, "nstates", 64, "expansion budget N_STATES")
	flag.BoolVar(&o.full, "full-faults", false, "use the uncollapsed fault list")
	flag.BoolVar(&o.list, "list", false, "list per-fault outcomes")
	flag.BoolVar(&o.stats, "stats", false, "print circuit statistics and exit")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "fault-simulation worker goroutines (must be positive)")
	flag.BoolVar(&o.prescreen, "prescreen", true, "bit-parallel conventional prescreen before the per-fault MOT pipeline")
	flag.BoolVar(&o.bpResim, "bp-resim", true, "bit-parallel expanded-sequence resimulation (one 256-lane pass per expansion)")
	flag.BoolVar(&o.eventSim, "event-sim", true, "event-driven sparse-delta faulty-frame evaluation (off: level-order copy-and-propagate)")
	flag.BoolVar(&o.coneOrder, "cone-order", false, "simulate faults in cone-locality order (deterministic; groups overlapping active cones)")
	flag.BoolVar(&o.metrics, "metrics", true, "collect the per-stage breakdown and per-fault histograms")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the run summary as JSON instead of text")
	flag.StringVar(&o.tracePath, "trace", "", "write a per-fault JSONL trace to this file")
	flag.BoolVar(&o.traceTimings, "trace-timings", false, "add per-fault stage times to the trace (nondeterministic; requires -metrics)")
	flag.StringVar(&o.spanTracePath, "span-trace", "", "write a hierarchical span trace (Chrome trace-event JSON, for ui.perfetto.dev) to this file")
	flag.Float64Var(&o.spanSample, "span-sample", 0, "per-fault span sampling rate in [0,1] for -span-trace; 0 means the default 0.05")
	flag.BoolVar(&o.progress, "progress", false, "print a progress line with rate and ETA to stderr")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live Prometheus metrics, /healthz and pprof on this address during the run")
	flag.StringVar(&o.prof.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.prof.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	flag.StringVar(&o.prof.ExecTrace, "exectrace", "", "write a runtime execution trace to this file")
	vcdPath := flag.String("vcd", "", "dump a waveform (VCD) of the simulation to this file")
	vcdFault := flag.String("vcd-fault", "", "fault to inject in the VCD dump (default fault-free); use names as printed by -list")
	flag.Parse()
	if *vcdPath != "" {
		if err := dumpVCD(o.benchPath, o.builtin, o.vecPath, o.randomLen, o.seed, *vcdPath, *vcdFault); err != nil {
			fmt.Fprintln(os.Stderr, "motfsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "motfsim:", err)
		os.Exit(1)
	}
}

// dumpVCD writes a waveform of one machine's simulation.
func dumpVCD(benchPath, builtin, vecPath string, randomLen int, seed int64, vcdPath, faultName string) error {
	c, err := loadCircuit(benchPath, builtin)
	if err != nil {
		return err
	}
	var T motsim.Sequence
	switch {
	case vecPath != "":
		if T, err = motsim.ReadVectorsFile(vecPath); err != nil {
			return err
		}
	case randomLen > 0:
		T = motsim.RandomSequence(c, randomLen, seed)
	default:
		return fmt.Errorf("need -vectors FILE or -random N for the VCD dump")
	}
	var flt *motsim.Fault
	if faultName != "" {
		f, err := motsim.FaultByName(c, motsim.Faults(c), faultName)
		if err != nil {
			return err
		}
		flt = &f
	}
	tr, err := motsim.Simulate(c, T, flt, true)
	if err != nil {
		return err
	}
	out, err := os.Create(vcdPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := motsim.WriteVCD(out, c, T, tr, true); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d frames, %d signals)\n", vcdPath, len(T), c.NumNodes())
	return nil
}

// loadCircuit resolves the -bench / -circuit selection.
func loadCircuit(benchPath, builtin string) (*motsim.Circuit, error) {
	switch {
	case benchPath != "" && builtin != "":
		return nil, fmt.Errorf("use either -bench or -circuit, not both")
	case benchPath != "":
		return motsim.LoadBench(benchPath)
	case builtin != "":
		c, err := motsim.BuiltinCircuit(builtin)
		if err != nil {
			return nil, fmt.Errorf("%w (known: %v)", err, motsim.BuiltinNames())
		}
		return c, nil
	}
	return nil, fmt.Errorf("need -bench FILE or -circuit NAME")
}

// conventionalReport is the -json schema of the bit-parallel
// conventional fast path (the MOT methods use report.RunReport).
type conventionalReport struct {
	Circuit   string  `json:"circuit"`
	Method    string  `json:"method"`
	Faults    int     `json:"faults"`
	Patterns  int     `json:"patterns"`
	Detected  int     `json:"detected_total"`
	Coverage  float64 `json:"coverage"`
	ElapsedNS int64   `json:"elapsed_ns"`
}

func run(o runOptions) error {
	out := o.out
	if out == nil {
		out = os.Stdout
	}
	// A non-positive worker count used to reach RunParallel and silently
	// degrade to serial execution; reject it outright.
	if o.workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", o.workers)
	}
	c, err := loadCircuit(o.benchPath, o.builtin)
	if err != nil {
		return err
	}
	if o.stats {
		fmt.Fprintln(out, c.Stats())
		return nil
	}

	faults := motsim.CollapsedFaults(c)
	if o.full {
		faults = motsim.Faults(c)
	}
	if o.coneOrder {
		motsim.SortFaultsByCone(c, faults)
	}

	var T motsim.Sequence
	switch {
	case o.vecPath != "":
		if T, err = motsim.ReadVectorsFile(o.vecPath); err != nil {
			return err
		}
	case o.greedy:
		gcfg := motsim.DefaultGreedyConfig()
		gcfg.Seed = o.seed
		if o.randomLen > 0 {
			gcfg.MaxLen = o.randomLen
		}
		if T, err = motsim.GreedySequence(c, faults, gcfg); err != nil {
			return err
		}
		if !o.jsonOut {
			fmt.Fprintf(out, "greedy sequence: %d patterns\n", len(T))
		}
	case o.randomLen > 0:
		T = motsim.RandomSequence(c, o.randomLen, o.seed)
	default:
		return fmt.Errorf("need -vectors FILE, -random N, or -greedy")
	}

	o.prof.SpanTrace = o.spanTracePath
	prof, err := profiling.Start(o.prof)
	if err != nil {
		return err
	}
	defer prof.Stop()

	if o.method == "conventional" {
		// Fast path: bit-parallel conventional simulation, 63 machines at
		// a time.
		start := time.Now()
		results, err := motsim.Conventional(c, T, faults)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		detected := 0
		for _, r := range results {
			if r.Detected {
				detected++
			}
			if o.list && !o.jsonOut {
				verdict := "undetected"
				if r.Detected {
					verdict = fmt.Sprintf("detected at t=%d output=%d", r.At.Time, r.At.Output)
				}
				fmt.Fprintf(out, "%-28s %s\n", r.Fault.Name(c), verdict)
			}
		}
		if o.jsonOut {
			rep := conventionalReport{
				Circuit: c.Name, Method: "conventional",
				Faults: len(faults), Patterns: len(T),
				Detected:  detected,
				Coverage:  float64(detected) / float64(max(1, len(faults))),
				ElapsedNS: int64(elapsed),
			}
			return writeJSON(out, rep)
		}
		fmt.Fprintf(out, "%s: %d faults, %d patterns, method=conventional (bit-parallel)\n", c.Name, len(faults), len(T))
		fmt.Fprintf(out, "  total detected: %d / %d (%.1f%%)\n",
			detected, len(faults), 100*float64(detected)/float64(max(1, len(faults))))
		return nil
	}

	var cfg motsim.Config
	switch o.method {
	case "proposed":
		cfg = motsim.DefaultConfig()
	case "baseline":
		cfg = motsim.BaselineConfig()
	case "lowcomplexity":
		// Implication-based identification only, after the approach of
		// the paper's reference [6]: no state expansion.
		cfg = motsim.DefaultConfig()
		cfg.IdentificationOnly = true
	default:
		return fmt.Errorf("unknown method %q", o.method)
	}
	cfg.NStates = max(1, o.nstates)
	cfg.Prescreen = o.prescreen
	cfg.BitParallelResim = o.bpResim
	cfg.EventSim = o.eventSim
	cfg.Metrics = o.metrics
	cfg.TraceTimings = o.traceTimings
	if o.spanTracePath != "" {
		// The span trace rides the profiling session: the tracer is bound
		// here, the file is written once at prof.Stop.
		tracer := motsim.NewTracer(motsim.TracerOptions{})
		cfg.Tracer = tracer
		cfg.TraceSampleRate = o.spanSample
		prof.SetSpanWriter(tracer.WriteChromeTrace)
	}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	if o.metricsAddr != "" {
		reg, live := serve.NewRunTelemetry("motfsim")
		cfg.Live = live
		stop, err := serve.StartMetricsServer(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
	}

	sim, err := motsim.New(c, T, cfg)
	if err != nil {
		return err
	}
	var progressCB func(done, total int)
	var prog *report.Progress
	if o.progress {
		prog = report.NewProgress(os.Stderr, "faults")
		progressCB = prog.Update
	}
	start := time.Now()
	res, err := sim.RunParallel(faults, o.workers, progressCB)
	if prog != nil {
		prog.Done()
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := prof.Stop(); err != nil {
		return err
	}
	if o.jsonOut {
		return writeJSON(out, report.NewRunReport(res, o.method, len(T), o.workers, elapsed))
	}
	if o.list {
		for _, oc := range res.Outcomes {
			fmt.Fprintf(out, "%-28s %s\n", oc.Fault.Name(c), oc.Outcome)
		}
	}
	fmt.Fprintf(out, "%s: %d faults, %d patterns, method=%s\n", c.Name, res.Total, len(T), o.method)
	if cfg.Prescreen {
		fmt.Fprintf(out, "  prescreen: %d bit-parallel passes dropped %d faults in %s (MOT stage %s)\n",
			res.Stages.PrescreenPasses, res.Stages.PrescreenDropped,
			res.Stages.PrescreenTime.Round(time.Microsecond),
			res.Stages.MOTTime.Round(time.Microsecond))
	}
	if cfg.BitParallelResim && res.Stages.ResimVectorPasses > 0 {
		fmt.Fprintf(out, "  resim: %d vector passes over %d frames (%d serial fallbacks)\n",
			res.Stages.ResimVectorPasses, res.Stages.ResimVectorFrames,
			res.Stages.ResimSerialFallbacks)
	}
	fmt.Fprintf(out, "  detected conventionally: %d\n", res.Conv)
	fmt.Fprintf(out, "  detected by MOT beyond conventional: %d (%d by identification alone)\n", res.MOT, res.Identified)
	fmt.Fprintf(out, "  undetected faults pruned by condition (C): %d\n", res.PrunedConditionC)
	fmt.Fprintf(out, "  sequence-duplicating expansions: %d\n", res.Expansions)
	det, conf, extra := res.AvgCounters()
	fmt.Fprintf(out, "  avg counters over MOT-detected: detect=%.2f conf=%.2f extra=%.2f\n", det, conf, extra)
	fmt.Fprintf(out, "  total detected: %d / %d (%.1f%%)\n",
		res.Detected(), res.Total, 100*float64(res.Detected())/float64(max(1, res.Total)))
	if o.metrics {
		fmt.Fprint(out, report.FormatRunStats(res))
	}
	return nil
}

// writeJSON marshals v as indented JSON to out.
func writeJSON(out io.Writer, v any) error {
	var (
		data []byte
		err  error
	)
	if r, ok := v.(report.RunReport); ok {
		data, err = r.JSON()
	} else {
		data, err = json.MarshalIndent(v, "", "  ")
		data = append(data, '\n')
	}
	if err != nil {
		return err
	}
	_, err = out.Write(data)
	return err
}
