// Command expolint validates a metrics exposition against the text
// grammar — Prometheus text format 0.0.4 by default, OpenMetrics 1.0
// with -openmetrics. It reads from a file argument or stdin and exits
// nonzero listing every violation, so CI can scrape both content
// negotiations of /metrics and gate on grammar drift:
//
//	curl -s localhost:8080/metrics | expolint
//	curl -s -H 'Accept: application/openmetrics-text' localhost:8080/metrics | expolint -openmetrics
//
// Checked per line: metric/label name charsets, label-value quoting and
// escapes, numeric sample values, HELP/TYPE comment shape and known
// types, metadata preceding the family's samples, and duplicate
// metadata. OpenMetrics mode additionally requires the "# EOF"
// terminator (and nothing after it), restricts exemplars to counter
// and histogram-bucket samples, and checks exemplar syntax; in
// Prometheus mode an exemplar suffix is itself a violation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	openMetrics := flag.Bool("openmetrics", false, "validate against OpenMetrics 1.0 instead of Prometheus text 0.0.4")
	flag.Parse()
	in := os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "expolint: at most one exposition file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "expolint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	problems, err := lint(in, *openMetrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expolint:", err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Printf("%s:%s\n", name, p)
	}
	if len(problems) > 0 {
		fmt.Printf("%d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("ok")
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true, "unknown": true,
}

// lint scans one exposition and returns every grammar violation as a
// "line:N: message" string. The error return is for I/O only.
func lint(r io.Reader, openMetrics bool) ([]string, error) {
	var problems []string
	bad := func(n int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%d: %s", n, fmt.Sprintf(format, args...)))
	}

	// Family metadata seen so far: name -> declared type, plus which
	// families already emitted samples (metadata must come first).
	types := make(map[string]string)
	helped := make(map[string]bool)
	sampled := make(map[string]bool)
	sawEOF, afterEOF := false, false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if sawEOF {
			if !afterEOF {
				bad(n, "content after # EOF terminator")
				afterEOF = true // report once
			}
			continue
		}
		switch {
		case line == "":
			if openMetrics {
				bad(n, "blank line (OpenMetrics forbids them)")
			}
		case line == "# EOF":
			if openMetrics {
				sawEOF = true
			}
			// In Prometheus format "# EOF" is just a comment.
		case strings.HasPrefix(line, "# HELP "):
			name, ok := lintMetadata(line[len("# HELP "):], n, bad)
			if ok {
				if helped[name] {
					bad(n, "duplicate # HELP for %s", name)
				}
				helped[name] = true
				if sampled[name] {
					bad(n, "# HELP for %s after its samples", name)
				}
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, ok := lintMetadata(line[len("# TYPE "):], n, bad)
			if ok {
				rest := strings.TrimSpace(line[len("# TYPE ")+len(name):])
				if !validTypes[rest] {
					bad(n, "unknown type %q for %s", rest, name)
				}
				if _, dup := types[name]; dup {
					bad(n, "duplicate # TYPE for %s", name)
				}
				types[name] = rest
				if sampled[name] {
					bad(n, "# TYPE for %s after its samples", name)
				}
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are fine in the Prometheus format;
			// OpenMetrics only defines HELP, TYPE, UNIT and EOF.
			if openMetrics && !strings.HasPrefix(line, "# UNIT ") {
				bad(n, "free-form comment (OpenMetrics allows only HELP/TYPE/UNIT/EOF)")
			}
		default:
			name := lintSample(line, n, openMetrics, types, bad)
			if name != "" {
				sampled[familyOf(name)] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if openMetrics && !sawEOF {
		bad(n, "missing # EOF terminator")
	}
	return problems, nil
}

// lintMetadata validates the metric name of a HELP/TYPE comment body
// and returns it.
func lintMetadata(body string, n int, bad func(int, string, ...any)) (string, bool) {
	name, _, found := strings.Cut(body, " ")
	if !found || name == "" {
		bad(n, "metadata comment without a metric name")
		return "", false
	}
	if !validMetricName(name) {
		bad(n, "invalid metric name %q", name)
		return name, false
	}
	return name, true
}

// familyOf strips the histogram/summary per-series suffixes so samples
// map back to the family their # TYPE declared.
func familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_total", "_created"} {
		if f, ok := strings.CutSuffix(name, suffix); ok && f != "" {
			return f
		}
	}
	return name
}

// lintSample validates one sample line and returns its metric name (""
// when the line is too broken to have one).
func lintSample(line string, n int, openMetrics bool, types map[string]string, bad func(int, string, ...any)) string {
	rest := line
	name := rest
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name = rest[:i]
	}
	if !validMetricName(name) {
		bad(n, "invalid metric name %q", name)
		return ""
	}
	rest = rest[len(name):]
	if strings.HasPrefix(rest, "{") {
		body, after, ok := cutLabels(rest)
		if !ok {
			bad(n, "unterminated label set in %q", line)
			return name
		}
		lintLabels(body, n, bad)
		rest = after
	}
	rest = strings.TrimLeft(rest, " ")

	// Value, then optional timestamp, then (OpenMetrics) optional
	// exemplar introduced by " # ".
	sample, exemplar, hasEx := strings.Cut(rest, " # ")
	fields := strings.Fields(sample)
	if len(fields) == 0 {
		bad(n, "sample %s has no value", name)
		return name
	}
	if !validSampleValue(fields[0]) {
		bad(n, "sample %s has non-numeric value %q", name, fields[0])
	}
	if len(fields) > 1 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			bad(n, "sample %s has malformed timestamp %q", name, fields[1])
		}
	}
	if len(fields) > 2 {
		bad(n, "sample %s has trailing garbage %q", name, strings.Join(fields[2:], " "))
	}
	if hasEx {
		if !openMetrics {
			bad(n, "exemplar on %s (Prometheus text format has no exemplars)", name)
			return name
		}
		family := familyOf(name)
		ftype := types[family]
		allowed := (ftype == "histogram" && strings.HasSuffix(name, "_bucket")) ||
			(ftype == "counter" && strings.HasSuffix(name, "_total"))
		if !allowed {
			bad(n, "exemplar on %s (only counter _total and histogram _bucket samples may carry one)", name)
		}
		lintExemplar(exemplar, name, n, bad)
	}
	return name
}

// lintExemplar validates the "{labels} value [timestamp]" tail after
// the " # " separator.
func lintExemplar(ex, name string, n int, bad func(int, string, ...any)) {
	if !strings.HasPrefix(ex, "{") {
		bad(n, "exemplar on %s missing label set", name)
		return
	}
	body, after, ok := cutLabels(ex)
	if !ok {
		bad(n, "exemplar on %s has unterminated labels", name)
		return
	}
	lintLabels(body, n, bad)
	fields := strings.Fields(after)
	if len(fields) == 0 || len(fields) > 2 {
		bad(n, "exemplar on %s needs a value and at most a timestamp", name)
		return
	}
	for _, f := range fields {
		if !validSampleValue(f) {
			bad(n, "exemplar on %s has non-numeric field %q", name, f)
		}
	}
}

// cutLabels splits a "{...}rest" string at the first unquoted '}',
// honoring escapes inside quoted label values.
func cutLabels(s string) (body, rest string, ok bool) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return s[1:i], s[i+1:], true
		}
	}
	return "", "", false
}

// lintLabels validates a comma-separated name="value" list.
func lintLabels(body string, n int, bad func(int, string, ...any)) {
	if strings.TrimSpace(body) == "" {
		return // {} is legal
	}
	for _, pair := range splitLabelPairs(body) {
		name, val, found := strings.Cut(pair, "=")
		if !found {
			bad(n, "label %q is not name=\"value\"", pair)
			continue
		}
		if !validLabelName(name) {
			bad(n, "invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			bad(n, "label %s value %q is not quoted", name, val)
			continue
		}
		if !validEscapes(val[1 : len(val)-1]) {
			bad(n, "label %s value %s has an invalid escape", name, val)
		}
	}
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(body string) []string {
	var pairs []string
	inQuote, start := false, 0
	for i := 0; i < len(body); i++ {
		switch {
		case inQuote && body[i] == '\\':
			i++
		case body[i] == '"':
			inQuote = !inQuote
		case !inQuote && body[i] == ',':
			pairs = append(pairs, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		pairs = append(pairs, body[start:])
	}
	return pairs
}

// validEscapes accepts only the exposition escapes \\, \" and \n.
func validEscapes(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) {
			return false
		}
		switch s[i+1] {
		case '\\', '"', 'n':
			i++
		default:
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validSampleValue accepts Go float syntax plus the exposition
// spellings +Inf, -Inf and NaN.
func validSampleValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
