package main

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// cleanExposition is grammatically valid in both formats except for
// the missing # EOF (OpenMetrics only).
const cleanExposition = `# HELP reqs_total Total requests.
# TYPE reqs_total counter
reqs_total 42
# HELP lat_seconds Request latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 40
lat_seconds_bucket{le="+Inf"} 42
lat_seconds_sum 3.5
lat_seconds_count 42
temp{site="lab",unit="C"} -3.25
`

func lintString(t *testing.T, in string, openMetrics bool) []string {
	t.Helper()
	problems, err := lint(strings.NewReader(in), openMetrics)
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

func TestLintCleanPrometheus(t *testing.T) {
	if p := lintString(t, cleanExposition, false); len(p) != 0 {
		t.Errorf("clean exposition flagged: %v", p)
	}
}

func TestLintOpenMetricsEOF(t *testing.T) {
	p := lintString(t, cleanExposition, true)
	if len(p) != 1 || !strings.Contains(p[0], "missing # EOF") {
		t.Errorf("EOF-less OpenMetrics = %v, want the one missing-EOF problem", p)
	}
	if p := lintString(t, cleanExposition+"# EOF\n", true); len(p) != 0 {
		t.Errorf("terminated OpenMetrics flagged: %v", p)
	}
	p = lintString(t, cleanExposition+"# EOF\nstray 1\n", true)
	if len(p) != 1 || !strings.Contains(p[0], "after # EOF") {
		t.Errorf("content after EOF = %v", p)
	}
}

func TestLintExemplarRules(t *testing.T) {
	withEx := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="+Inf"} 2 # {fault="g17/saf0",span_id="00deadbeef001122"} 0.5
lat_seconds_sum 1
lat_seconds_count 2
# EOF
`
	if p := lintString(t, withEx, true); len(p) != 0 {
		t.Errorf("legal exemplar flagged: %v", p)
	}
	// The same line is a violation under the Prometheus grammar.
	p := lintString(t, withEx, false)
	if len(p) != 1 || !strings.Contains(p[0], "no exemplars") {
		t.Errorf("Prometheus-mode exemplar = %v", p)
	}
	// Gauges may not carry exemplars even in OpenMetrics.
	onGauge := "# TYPE temp gauge\ntemp 3 # {x=\"y\"} 3\n# EOF\n"
	p = lintString(t, onGauge, true)
	if len(p) != 1 || !strings.Contains(p[0], "may carry one") {
		t.Errorf("gauge exemplar = %v", p)
	}
}

func TestLintViolations(t *testing.T) {
	cases := map[string]string{
		"bad-metric-name":   "1up 3\n",
		"bad-label-name":    `m{0x="v"} 3` + "\n",
		"unquoted-value":    `m{l=v} 3` + "\n",
		"bad-escape":        `m{l="a\q"} 3` + "\n",
		"unterminated":      `m{l="v" 3` + "\n",
		"no-value":          "m\n",
		"non-numeric":       "m hello\n",
		"bad-timestamp":     "m 3 yesterday\n",
		"trailing-garbage":  "m 3 4 5\n",
		"unknown-type":      "# TYPE m thermometer\n",
		"dup-type":          "# TYPE m gauge\n# TYPE m gauge\nm 1\n",
		"metadata-after":    "m 1\n# TYPE m gauge\n",
		"nameless-metadata": "# HELP \n",
	}
	for label, in := range cases {
		if p := lintString(t, in, false); len(p) == 0 {
			t.Errorf("%s: %q passed the lint", label, in)
		}
	}
	// Special values and empty label sets are legal.
	for _, in := range []string{"m +Inf\n", "m -Inf\n", "m NaN\n", "m{} 1\n", "m 3 1700000000\n"} {
		if p := lintString(t, in, false); len(p) != 0 {
			t.Errorf("legal line %q flagged: %v", in, p)
		}
	}
}

// TestLintRealRegistry lints what internal/metrics actually writes in
// both negotiation modes — the same guarantee the CI smoke job checks
// against a running motserve.
func TestLintRealRegistry(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("expolint_reqs_total", "Requests.")
	c.Add(2)
	h := r.Histogram("expolint_lat_ns", "Latency.", 100, 1000)
	h.Observe(50)
	h.SetExemplar(50, metrics.Label{Key: "fault", Val: `g17"quoted"/saf0`})
	r.GaugeFunc("expolint_depth", "Depth.", func() float64 { return 3 })

	var prom strings.Builder
	r.WritePrometheus(&prom)
	if p := lintString(t, prom.String(), false); len(p) != 0 {
		t.Errorf("WritePrometheus output flagged: %v\n%s", p, prom.String())
	}

	var om strings.Builder
	r.WriteOpenMetrics(&om)
	if p := lintString(t, om.String(), true); len(p) != 0 {
		t.Errorf("WriteOpenMetrics output flagged: %v\n%s", p, om.String())
	}
}
