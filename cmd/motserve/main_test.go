package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and releases it for the server.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// submitAndWait posts one run and polls it to completion, returning the
// final status body.
func submitAndWait(t *testing.T, base string, deadline time.Time) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"circuit":"s27","random":16}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST /runs = %d, id %q", resp.StatusCode, st.ID)
	}

	for {
		resp, err := http.Get(base + "/runs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch cur["status"] {
		case "done":
			return cur
		case "failed", "canceled":
			t.Fatalf("run ended %q", cur["status"])
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSubmitAndShutdown boots the real server, submits the same
// run twice (the repeat must hit the cross-run cache), scrapes
// /metrics, and shuts down via SIGTERM.
func TestServeSubmitAndShutdown(t *testing.T) {
	addr := freeAddr(t)
	errCh := make(chan error, 1)
	go func() { errCh <- run(addr, 8, 2, 64, true, 10*time.Second, 1, 256) }()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	submitAndWait(t, base, deadline)
	warm := submitAndWait(t, base, deadline)
	cacheInfo, _ := warm["cache"].(map[string]any)
	if cacheInfo == nil || cacheInfo["circuit_hit"] != true || cacheInfo["trace_hit"] != true {
		t.Errorf("repeat submission did not hit the cache: %v", warm["cache"])
	}

	// The span endpoints are live too (the server runs at sampling 1).
	for _, path := range []string{"/runs/" + fmt.Sprint(warm["id"]) + "/trace", "/debug/events"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if body := readAll(t, resp); resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s = %d, %d bytes", path, resp.StatusCode, len(body))
		}
	}

	mResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, mResp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "motserve_runs_done_total 2") {
		t.Errorf("metrics missing completed runs:\n%.500s", sb.String())
	}
	if !strings.Contains(sb.String(), "motserve_cache_hits_total 2") {
		t.Errorf("metrics missing cache hits:\n%.500s", sb.String())
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestRunBadAddress asserts startup errors surface instead of hanging.
func TestRunBadAddress(t *testing.T) {
	if err := run("127.0.0.1:-7", 1, 1, 0, false, time.Second, 0, 0); err == nil {
		t.Fatal("invalid address accepted")
	}
	if err := run("127.0.0.1:0", 1, 1, 0, false, time.Second, 1.5, 0); err == nil {
		t.Fatal("out-of-range -trace-sample accepted")
	}
}
