// Command motserve runs the MOT fault simulator as a long-running HTTP
// service: submit runs, watch them live, scrape Prometheus metrics.
//
//	motserve -addr :8080
//
// Endpoints:
//
//	POST   /runs              submit a run (JSON body, see serve.RunRequest)
//	GET    /runs              list runs
//	GET    /runs/{id}         status, stage breakdown, partial counts
//	DELETE /runs/{id}         cancel a run
//	GET    /runs/{id}/events  Server-Sent Events stream (progress, trace)
//	GET    /runs/{id}/trace   span trace (Chrome trace-event JSON, for ui.perfetto.dev)
//	GET    /metrics           Prometheus text exposition
//	GET    /healthz           liveness probe
//	GET    /debug/events      span flight recorder (recent spans as JSONL; ?n= bounds)
//	GET    /debug/pprof/      runtime profiles
//
// Example session:
//
//	curl -s -X POST localhost:8080/runs -d '{"circuit":"sg298","random":96}'
//	curl -s localhost:8080/runs/r0001
//	curl -s localhost:8080/metrics | grep motserve_faults_done_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxRuns  = flag.Int("max-runs", 64, "maximum registered runs (finished runs stay registered)")
		maxConc  = flag.Int("max-concurrent", max(1, runtime.NumCPU()/2), "runs executing simultaneously; further submissions queue")
		cacheMiB = flag.Int64("cache-size", 256, "cross-run cache budget in MiB (compiled circuits and fault-free traces); 0 disables")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight runs")
		traceSmp = flag.Float64("trace-sample", 0, "default per-fault span sampling rate in [0,1] for run tracers; 0 means 0.05 (requests may override)")
		flightN  = flag.Int("flight-recorder", 4096, "size of the span flight recorder behind /debug/events")
	)
	flag.Parse()
	if err := run(*addr, *maxRuns, *maxConc, *cacheMiB, *logJSON, *drainFor, *traceSmp, *flightN); err != nil {
		fmt.Fprintln(os.Stderr, "motserve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxRuns, maxConc int, cacheMiB int64, logJSON bool, drainFor time.Duration, traceSample float64, flightRecorder int) error {
	if traceSample < 0 || traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0, 1], got %g", traceSample)
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	// The flag speaks MiB with 0 = off; the Config speaks bytes with
	// negative = off (its zero value selects the default budget).
	cacheBytes := cacheMiB << 20
	if cacheMiB <= 0 {
		cacheBytes = -1
	}
	s := serve.NewServer(serve.Config{
		MaxConcurrent:  maxConc,
		MaxRuns:        maxRuns,
		CacheBytes:     cacheBytes,
		Logger:         log,
		TraceSample:    traceSample,
		FlightRecorder: flightRecorder,
	})
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", addr, "max_concurrent", maxConc, "max_runs", maxRuns, "cache_mib", cacheMiB)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down", "drain", drainFor)
	shutCtx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	// Stop accepting connections first, then cancel and drain the runs.
	err := httpSrv.Shutdown(shutCtx)
	if closeErr := s.Close(shutCtx); closeErr != nil && err == nil {
		err = closeErr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if err == nil {
		log.Info("shutdown complete")
	}
	return err
}
