package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// tables runs run() against sg208 and returns the table output.
func tables(t *testing.T, table string, csv bool, workers int, prescreen bool) string {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(&out, &errw, table, "sg208", 0, csv, true, false, true, "sg298", workers, prescreen)
	if err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestRunRejects(t *testing.T) {
	cases := []struct {
		name  string
		err   func() error
		usage bool
	}{
		{"zeroWorkers", func() error {
			return run(&bytes.Buffer{}, &bytes.Buffer{}, "2", "sg208", 0, false, true, false, false, "sg298", 0, true)
		}, true},
		{"negativeWorkers", func() error {
			return run(&bytes.Buffer{}, &bytes.Buffer{}, "2", "sg208", 0, false, true, false, false, "sg298", -4, true)
		}, true},
		{"unknownTable", func() error {
			return run(&bytes.Buffer{}, &bytes.Buffer{}, "5", "", 0, false, true, false, false, "sg298", 1, true)
		}, true},
		{"unknownCircuit", func() error {
			return run(&bytes.Buffer{}, &bytes.Buffer{}, "2", "bogus", 0, false, true, false, false, "sg298", 1, true)
		}, false},
		{"unknownHITECCircuit", func() error {
			return run(&bytes.Buffer{}, &bytes.Buffer{}, "hitec", "", 0, false, true, false, false, "bogus", 1, true)
		}, false},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if got := errors.As(err, &usageError{}); got != tc.usage {
			t.Errorf("%s: usageError = %v, want %v (err: %v)", tc.name, got, tc.usage, err)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := tables(t, "2", false, 1, true)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "sg208") {
		t.Fatalf("unexpected table 2 output:\n%s", out)
	}
	if !strings.Contains(out, "shape:") {
		t.Fatalf("missing shape check line:\n%s", out)
	}
}

func TestRunTable3CSV(t *testing.T) {
	out := tables(t, "3", true, 2, true)
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "sg208") {
		t.Fatalf("unexpected table 3 output:\n%s", out)
	}
}

// TestRunPrescreenInvariant asserts the emitted tables are identical with
// the prescreen on and off, and across worker counts: the flags change
// scheduling, never results.
func TestRunPrescreenInvariant(t *testing.T) {
	base := tables(t, "2", true, 1, true)
	for _, tc := range []struct {
		workers   int
		prescreen bool
	}{{1, false}, {4, true}, {4, false}} {
		got := tables(t, "2", true, tc.workers, tc.prescreen)
		if got != base {
			t.Errorf("workers=%d prescreen=%v: output differs:\n%s\n-- want --\n%s",
				tc.workers, tc.prescreen, got, base)
		}
	}
}

func TestRunVerboseProgress(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(&out, &errw, "2", "sg208", 0, true, true, false, true, "sg298", 2, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "sg208") {
		t.Fatalf("verbose run wrote no progress: %q", errw.String())
	}
}

func TestRunHITEC(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy sequence generation in -short mode")
	}
	var out, errw bytes.Buffer
	if err := run(&out, &errw, "hitec", "", 0, false, true, false, false, "sg298", 2, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sg298") || !strings.Contains(out.String(), "conventional:") {
		t.Fatalf("unexpected hitec output:\n%s", out.String())
	}
}
