package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profiling"
)

// baseOpts returns options targeting sg208 with buffered output.
func baseOpts(table string) runOptions {
	return runOptions{
		table:        table,
		circuits:     "sg208",
		paper:        true,
		hitecCircuit: "sg298",
		workers:      1,
		prescreen:    true,
		out:          &bytes.Buffer{},
		errw:         &bytes.Buffer{},
	}
}

// tables runs run() against sg208 and returns the table output.
func tables(t *testing.T, table string, csv bool, workers int, prescreen bool) string {
	t.Helper()
	var out bytes.Buffer
	o := baseOpts(table)
	o.csv = csv
	o.workers = workers
	o.prescreen = prescreen
	o.skipNA = false
	o.verbose = true
	o.out = &out
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestRunRejects(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*runOptions)
		usage bool
	}{
		{"zeroWorkers", func(o *runOptions) { o.workers = 0 }, true},
		{"negativeWorkers", func(o *runOptions) { o.workers = -4 }, true},
		{"unknownTable", func(o *runOptions) { o.table = "5" }, true},
		{"unknownCircuit", func(o *runOptions) { o.circuits = "bogus" }, false},
		{"unknownHITECCircuit", func(o *runOptions) { o.table = "hitec"; o.hitecCircuit = "bogus" }, false},
	}
	for _, tc := range cases {
		o := baseOpts("2")
		tc.mod(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if got := errors.As(err, &usageError{}); got != tc.usage {
			t.Errorf("%s: usageError = %v, want %v (err: %v)", tc.name, got, tc.usage, err)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := tables(t, "2", false, 1, true)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "sg208") {
		t.Fatalf("unexpected table 2 output:\n%s", out)
	}
	if !strings.Contains(out, "shape:") {
		t.Fatalf("missing shape check line:\n%s", out)
	}
}

// TestRunMetricsAddr runs one table with the telemetry sidecar bound to
// an ephemeral port; the run must succeed and shut it down cleanly.
func TestRunMetricsAddr(t *testing.T) {
	o := baseOpts("2")
	o.metricsAddr = "127.0.0.1:0"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o = baseOpts("2")
	o.metricsAddr = "127.0.0.1:-1"
	if run(o) == nil {
		t.Error("invalid metrics address accepted")
	}
}

// TestRunSpanTrace generates Table 2 with span tracing on and checks a
// valid Chrome trace lands at the -span-trace path.
func TestRunSpanTrace(t *testing.T) {
	o := baseOpts("2")
	o.prof.SpanTrace = filepath.Join(t.TempDir(), "suite.trace.json")
	o.spanSample = 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.prof.SpanTrace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("span trace is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) < 10 {
		t.Fatalf("suspiciously small suite trace: %d events", len(doc.TraceEvents))
	}

	o = baseOpts("2")
	o.prof.SpanTrace = filepath.Join(t.TempDir(), "never.json")
	o.spanSample = 2
	if err := run(o); err == nil || !errors.As(err, &usageError{}) {
		t.Errorf("out-of-range -span-sample: err = %v, want usage error", err)
	}
}

func TestRunTable3CSV(t *testing.T) {
	out := tables(t, "3", true, 2, true)
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "sg208") {
		t.Fatalf("unexpected table 3 output:\n%s", out)
	}
}

// TestRunPrescreenInvariant asserts the emitted tables are identical with
// the prescreen on and off, and across worker counts: the flags change
// scheduling, never results.
func TestRunPrescreenInvariant(t *testing.T) {
	base := tables(t, "2", true, 1, true)
	for _, tc := range []struct {
		workers   int
		prescreen bool
	}{{1, false}, {4, true}, {4, false}} {
		got := tables(t, "2", true, tc.workers, tc.prescreen)
		if got != base {
			t.Errorf("workers=%d prescreen=%v: output differs:\n%s\n-- want --\n%s",
				tc.workers, tc.prescreen, got, base)
		}
	}
}

func TestRunVerboseProgress(t *testing.T) {
	var out, errw bytes.Buffer
	o := baseOpts("2")
	o.csv = true
	o.workers = 2
	o.verbose = true
	o.out = &out
	o.errw = &errw
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "sg208") {
		t.Fatalf("verbose run wrote no progress: %q", errw.String())
	}
}

// TestRunJSON drives -json with profiling enabled and checks the report
// carries the table rows, the per-circuit stage breakdowns and the
// profile artifacts.
func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	o := baseOpts("2")
	o.jsonOut = true
	o.workers = 2
	o.out = &out
	o.prof = profiling.Options{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		ExecTrace:  filepath.Join(dir, "exec.out"),
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out.String())
	}
	for _, key := range []string{"table2", "shape", "circuits"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	circuits, ok := rep["circuits"].([]any)
	if !ok || len(circuits) != 1 {
		t.Fatalf("circuits not a 1-element array:\n%s", out.String())
	}
	cr := circuits[0].(map[string]any)
	prop, ok := cr["proposed"].(map[string]any)
	if !ok {
		t.Fatalf("circuit report missing proposed run:\n%s", out.String())
	}
	for _, key := range []string{"stages", "histograms", "coverage"} {
		if _, ok := prop[key]; !ok {
			t.Errorf("proposed run report missing %q", key)
		}
	}
	if _, ok := cr["baseline"]; !ok {
		t.Error("circuit report missing baseline run")
	}
	for _, p := range []string{o.prof.CPUProfile, o.prof.MemProfile, o.prof.ExecTrace} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunHITEC(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy sequence generation in -short mode")
	}
	var out bytes.Buffer
	o := baseOpts("hitec")
	o.circuits = ""
	o.workers = 2
	o.out = &out
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sg298") || !strings.Contains(out.String(), "conventional:") {
		t.Fatalf("unexpected hitec output:\n%s", out.String())
	}
}
