// Command mottables regenerates the paper's evaluation tables on the
// synthetic benchmark suite:
//
//	mottables -table 2            # Table 2: detected fault counts
//	mottables -table 3            # Table 3: backward-implication counters
//	mottables -table hitec        # closing deterministic-sequence result
//	mottables -table all          # everything
//
// Useful flags: -circuits sg208,sg298 restricts the suite; -nstates
// overrides the expansion budget; -csv switches to CSV output; -paper
// appends the published values in brackets; -v prints progress.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to regenerate: 2, 3, hitec, all")
		circuits = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		nstates  = flag.Int("nstates", 0, "override the N_STATES expansion budget (default 64)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		paper    = flag.Bool("paper", true, "append published values in brackets (text mode)")
		skipNA   = flag.Bool("skip-na-baseline", false, "skip the [4] baseline on scaled circuits (paper reports NA there)")
		verbose  = flag.Bool("v", false, "print per-circuit progress")
		hitecOn   = flag.String("hitec-circuit", "sg5378", "suite circuit for the deterministic-sequence experiment")
		workers   = flag.Int("workers", runtime.NumCPU(), "fault-simulation worker goroutines (must be positive)")
		prescreen = flag.Bool("prescreen", true, "bit-parallel conventional prescreen before the per-fault MOT pipeline")
	)
	flag.Parse()
	if *workers < 1 {
		// A non-positive count used to reach RunParallel and silently run
		// serially; reject it like any other invalid flag value.
		fmt.Fprintf(os.Stderr, "mottables: -workers must be at least 1, got %d\n", *workers)
		os.Exit(2)
	}

	var names []string
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	opts := experiments.Options{
		NStates:            *nstates,
		SkipBaselineScaled: *skipNA,
		Workers:            *workers,
		DisablePrescreen:   !*prescreen,
	}
	if *verbose {
		last := ""
		opts.Progress = func(circuit string, done, total int) {
			if circuit != last || done == total || done%500 == 0 {
				fmt.Fprintf(os.Stderr, "\r%-10s %6d/%d faults", circuit, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
				last = circuit
			}
		}
	}

	wantTables := *table == "2" || *table == "3" || *table == "all"
	wantHITEC := *table == "hitec" || *table == "all"
	if !wantTables && !wantHITEC {
		fmt.Fprintf(os.Stderr, "mottables: unknown table %q (want 2, 3, hitec or all)\n", *table)
		os.Exit(2)
	}

	if wantTables {
		runs, err := experiments.RunSuite(names, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mottables:", err)
			os.Exit(1)
		}
		if *table == "2" || *table == "all" {
			rows := experiments.Table2Rows(runs)
			fmt.Println("Table 2: detected faults using random patterns (measured[paper])")
			if *csv {
				fmt.Print(report.CSVTable2(rows))
			} else {
				fmt.Print(report.FormatTable2(rows, *paper))
			}
			chk := report.CheckShape(rows)
			fmt.Printf("shape: ordering(conv<=base<=prop) holds=%v, circuits with MOT extras=%d/%d, strict backward-implication wins=%d\n\n",
				chk.OrderingHolds, chk.CircuitsWithMOT, len(rows), chk.StrictWins)
			for _, note := range chk.Notes {
				fmt.Println("  !", note)
			}
		}
		if *table == "3" || *table == "all" {
			rows := experiments.Table3Rows(runs)
			fmt.Println("Table 3: effectiveness of backward implications (averages over MOT-detected faults)")
			if *csv {
				fmt.Print(report.CSVTable3(rows))
			} else {
				fmt.Print(report.FormatTable3(rows, *paper))
			}
			fmt.Println()
		}
	}

	if wantHITEC {
		res, err := experiments.RunHITECStyle(*hitecOn, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mottables:", err)
			os.Exit(1)
		}
		fmt.Printf("Deterministic (greedy, HITEC-style) sequence on %s: %d patterns\n", res.Circuit, res.SeqLen)
		fmt.Printf("  conventional: %d detected\n", res.Proposed.Conv)
		fmt.Printf("  proposed:     +%d extra (paper: s5378 +14 with HITEC)\n", res.Proposed.MOT)
		fmt.Printf("  baseline [4]: +%d extra (paper: s5378 +12 with HITEC)\n", res.Baseline.MOT)
	}
}
