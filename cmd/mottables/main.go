// Command mottables regenerates the paper's evaluation tables on the
// synthetic benchmark suite:
//
//	mottables -table 2            # Table 2: detected fault counts
//	mottables -table 3            # Table 3: backward-implication counters
//	mottables -table hitec        # closing deterministic-sequence result
//	mottables -table all          # everything
//
// Useful flags: -circuits sg208,sg298 restricts the suite; -nstates
// overrides the expansion budget; -csv switches to CSV output; -paper
// appends the published values in brackets; -v prints progress.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

// usageError marks invalid flag values; main reports them with exit
// status 2 like flag-parse failures, runtime errors with status 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	var (
		table     = flag.String("table", "all", "which table to regenerate: 2, 3, hitec, all")
		circuits  = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		nstates   = flag.Int("nstates", 0, "override the N_STATES expansion budget (default 64)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		paper     = flag.Bool("paper", true, "append published values in brackets (text mode)")
		skipNA    = flag.Bool("skip-na-baseline", false, "skip the [4] baseline on scaled circuits (paper reports NA there)")
		verbose   = flag.Bool("v", false, "print per-circuit progress")
		hitecOn   = flag.String("hitec-circuit", "sg5378", "suite circuit for the deterministic-sequence experiment")
		workers   = flag.Int("workers", runtime.NumCPU(), "fault-simulation worker goroutines (must be positive)")
		prescreen = flag.Bool("prescreen", true, "bit-parallel conventional prescreen before the per-fault MOT pipeline")
	)
	flag.Parse()
	err := run(os.Stdout, os.Stderr, *table, *circuits, *nstates, *csv, *paper,
		*skipNA, *verbose, *hitecOn, *workers, *prescreen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mottables:", err)
		if errors.As(err, &usageError{}) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run executes the table generation, writing tables to out and progress to
// errw. It is main without the process plumbing so tests can drive it.
func run(out, errw io.Writer, table, circuitList string, nstates int, csv, paper,
	skipNA, verbose bool, hitecCircuit string, workers int, prescreen bool) error {
	if workers < 1 {
		// A non-positive count used to reach RunParallel and silently run
		// serially; reject it like any other invalid flag value.
		return usageError{fmt.Sprintf("-workers must be at least 1, got %d", workers)}
	}
	wantTables := table == "2" || table == "3" || table == "all"
	wantHITEC := table == "hitec" || table == "all"
	if !wantTables && !wantHITEC {
		return usageError{fmt.Sprintf("unknown table %q (want 2, 3, hitec or all)", table)}
	}

	var names []string
	if circuitList != "" {
		names = strings.Split(circuitList, ",")
	}
	opts := experiments.Options{
		NStates:            nstates,
		SkipBaselineScaled: skipNA,
		Workers:            workers,
		DisablePrescreen:   !prescreen,
	}
	if verbose {
		last := ""
		opts.Progress = func(circuit string, done, total int) {
			if circuit != last || done == total || done%500 == 0 {
				fmt.Fprintf(errw, "\r%-10s %6d/%d faults", circuit, done, total)
				if done == total {
					fmt.Fprintln(errw)
				}
				last = circuit
			}
		}
	}

	if wantTables {
		runs, err := experiments.RunSuite(names, opts)
		if err != nil {
			return err
		}
		if table == "2" || table == "all" {
			rows := experiments.Table2Rows(runs)
			fmt.Fprintln(out, "Table 2: detected faults using random patterns (measured[paper])")
			if csv {
				fmt.Fprint(out, report.CSVTable2(rows))
			} else {
				fmt.Fprint(out, report.FormatTable2(rows, paper))
			}
			chk := report.CheckShape(rows)
			fmt.Fprintf(out, "shape: ordering(conv<=base<=prop) holds=%v, circuits with MOT extras=%d/%d, strict backward-implication wins=%d\n\n",
				chk.OrderingHolds, chk.CircuitsWithMOT, len(rows), chk.StrictWins)
			for _, note := range chk.Notes {
				fmt.Fprintln(out, "  !", note)
			}
		}
		if table == "3" || table == "all" {
			rows := experiments.Table3Rows(runs)
			fmt.Fprintln(out, "Table 3: effectiveness of backward implications (averages over MOT-detected faults)")
			if csv {
				fmt.Fprint(out, report.CSVTable3(rows))
			} else {
				fmt.Fprint(out, report.FormatTable3(rows, paper))
			}
			fmt.Fprintln(out)
		}
	}

	if wantHITEC {
		res, err := experiments.RunHITECStyle(hitecCircuit, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Deterministic (greedy, HITEC-style) sequence on %s: %d patterns\n", res.Circuit, res.SeqLen)
		fmt.Fprintf(out, "  conventional: %d detected\n", res.Proposed.Conv)
		fmt.Fprintf(out, "  proposed:     +%d extra (paper: s5378 +14 with HITEC)\n", res.Proposed.MOT)
		fmt.Fprintf(out, "  baseline [4]: +%d extra (paper: s5378 +12 with HITEC)\n", res.Baseline.MOT)
	}
	return nil
}
