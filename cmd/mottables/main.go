// Command mottables regenerates the paper's evaluation tables on the
// synthetic benchmark suite:
//
//	mottables -table 2            # Table 2: detected fault counts
//	mottables -table 3            # Table 3: backward-implication counters
//	mottables -table hitec        # closing deterministic-sequence result
//	mottables -table all          # everything
//
// Useful flags: -circuits sg208,sg298 restricts the suite; -nstates
// overrides the expansion budget; -csv switches to CSV output; -json
// emits a machine-readable report with per-circuit stage breakdowns;
// -paper appends the published values in brackets; -v prints progress.
// Profiling: -cpuprofile/-memprofile/-exectrace write pprof and
// runtime/trace artifacts covering the whole suite run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/xtrace"
)

// usageError marks invalid flag values; main reports them with exit
// status 2 like flag-parse failures, runtime errors with status 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// runOptions collects everything run needs; main fills it from flags,
// tests construct it directly.
type runOptions struct {
	table        string
	circuits     string
	nstates      int
	csv          bool
	jsonOut      bool
	paper        bool
	skipNA       bool
	verbose      bool
	hitecCircuit string
	workers      int
	prescreen    bool
	bpResim      bool
	eventSim     bool
	metricsAddr  string
	spanSample   float64
	prof         profiling.Options

	out  io.Writer // table output (nil: os.Stdout)
	errw io.Writer // progress output (nil: os.Stderr)
}

func main() {
	var o runOptions
	flag.StringVar(&o.table, "table", "all", "which table to regenerate: 2, 3, hitec, all")
	flag.StringVar(&o.circuits, "circuits", "", "comma-separated circuit names (default: whole suite)")
	flag.IntVar(&o.nstates, "nstates", 0, "override the N_STATES expansion budget (default 64)")
	flag.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned text")
	flag.BoolVar(&o.jsonOut, "json", false, "emit a machine-readable JSON report instead of text tables")
	flag.BoolVar(&o.paper, "paper", true, "append published values in brackets (text mode)")
	flag.BoolVar(&o.skipNA, "skip-na-baseline", false, "skip the [4] baseline on scaled circuits (paper reports NA there)")
	flag.BoolVar(&o.verbose, "v", false, "print per-circuit progress")
	flag.StringVar(&o.hitecCircuit, "hitec-circuit", "sg5378", "suite circuit for the deterministic-sequence experiment")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "fault-simulation worker goroutines (must be positive)")
	flag.BoolVar(&o.prescreen, "prescreen", true, "bit-parallel conventional prescreen before the per-fault MOT pipeline")
	flag.BoolVar(&o.bpResim, "bp-resim", true, "bit-parallel expanded-sequence resimulation (one 256-lane pass per expansion)")
	flag.BoolVar(&o.eventSim, "event-sim", true, "event-driven sparse-delta faulty-frame evaluation (off: level-order copy-and-propagate)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live Prometheus metrics, /healthz and pprof on this address during the suite run")
	flag.StringVar(&o.prof.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.prof.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	flag.StringVar(&o.prof.ExecTrace, "exectrace", "", "write a runtime execution trace to this file")
	flag.StringVar(&o.prof.SpanTrace, "span-trace", "", "write a hierarchical span trace of the suite run (Chrome trace-event JSON, for ui.perfetto.dev) to this file")
	flag.Float64Var(&o.spanSample, "span-sample", 0, "per-fault span sampling rate in [0,1] for -span-trace; 0 means the default 0.05")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mottables:", err)
		if errors.As(err, &usageError{}) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// suiteReport is the -json schema: the table rows plus one full
// per-circuit run report (stage breakdown, pool gauges, histograms) for
// each procedure that ran.
type suiteReport struct {
	Table2   []report.Table2Row `json:"table2,omitempty"`
	Table3   []report.Table3Row `json:"table3,omitempty"`
	Shape    *report.ShapeCheck `json:"shape,omitempty"`
	Circuits []circuitReport    `json:"circuits,omitempty"`
	HITEC    *hitecReport       `json:"hitec,omitempty"`
}

type circuitReport struct {
	Circuit  string            `json:"circuit"`
	Proposed report.RunReport  `json:"proposed"`
	Baseline *report.RunReport `json:"baseline,omitempty"`
}

type hitecReport struct {
	Circuit  string           `json:"circuit"`
	SeqLen   int              `json:"seq_len"`
	Proposed report.RunReport `json:"proposed"`
	Baseline report.RunReport `json:"baseline"`
}

// wallTime approximates a run's wall-clock time from its coarse stage
// timers; experiments does not time whole runs itself.
func wallTime(res *core.Result) time.Duration {
	return res.Stages.PrescreenTime + res.Stages.MOTTime
}

// circuitRunReport converts one suite circuit run into its JSON view.
func circuitRunReport(r *experiments.CircuitRun, workers int) circuitReport {
	cr := circuitReport{
		Circuit:  r.Entry.Name,
		Proposed: report.NewRunReport(r.Proposed, "proposed", len(r.T), workers, wallTime(r.Proposed)),
	}
	if r.Baseline != nil {
		b := report.NewRunReport(r.Baseline, "baseline", len(r.T), workers, wallTime(r.Baseline))
		cr.Baseline = &b
	}
	return cr
}

// run executes the table generation. It is main without the process
// plumbing so tests can drive it.
func run(o runOptions) error {
	if o.out == nil {
		o.out = os.Stdout
	}
	if o.errw == nil {
		o.errw = os.Stderr
	}
	if o.workers < 1 {
		// A non-positive count used to reach RunParallel and silently run
		// serially; reject it like any other invalid flag value.
		return usageError{fmt.Sprintf("-workers must be at least 1, got %d", o.workers)}
	}
	wantTables := o.table == "2" || o.table == "3" || o.table == "all"
	wantHITEC := o.table == "hitec" || o.table == "all"
	if !wantTables && !wantHITEC {
		return usageError{fmt.Sprintf("unknown table %q (want 2, 3, hitec or all)", o.table)}
	}

	prof, err := profiling.Start(o.prof)
	if err != nil {
		return err
	}
	defer prof.Stop()
	var tracer *xtrace.Tracer
	if o.prof.SpanTrace != "" {
		if o.spanSample < 0 || o.spanSample > 1 {
			return usageError{fmt.Sprintf("-span-sample must be in [0, 1], got %g", o.spanSample)}
		}
		tracer = xtrace.New(xtrace.Options{})
		prof.SetSpanWriter(tracer.WriteChromeTrace)
	}

	var names []string
	if o.circuits != "" {
		names = strings.Split(o.circuits, ",")
	}
	opts := experiments.Options{
		NStates:                 o.nstates,
		SkipBaselineScaled:      o.skipNA,
		Workers:                 o.workers,
		DisablePrescreen:        !o.prescreen,
		DisableBitParallelResim: !o.bpResim,
		DisableEventSim:         !o.eventSim,
		Tracer:                  tracer,
		TraceSampleRate:         o.spanSample,
	}
	if o.metricsAddr != "" {
		reg, live := serve.NewRunTelemetry("mottables")
		opts.Live = live
		stop, err := serve.StartMetricsServer(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
	}
	if o.verbose {
		last := ""
		opts.Progress = func(circuit string, done, total int) {
			if circuit != last || done == total || done%500 == 0 {
				fmt.Fprintf(o.errw, "\r%-10s %6d/%d faults", circuit, done, total)
				if done == total {
					fmt.Fprintln(o.errw)
				}
				last = circuit
			}
		}
	}

	var rep suiteReport
	if wantTables {
		runs, err := experiments.RunSuite(names, opts)
		if err != nil {
			return err
		}
		if o.jsonOut {
			for _, r := range runs {
				rep.Circuits = append(rep.Circuits, circuitRunReport(r, o.workers))
			}
		}
		if o.table == "2" || o.table == "all" {
			rows := experiments.Table2Rows(runs)
			chk := report.CheckShape(rows)
			if o.jsonOut {
				rep.Table2 = rows
				rep.Shape = &chk
			} else {
				fmt.Fprintln(o.out, "Table 2: detected faults using random patterns (measured[paper])")
				if o.csv {
					fmt.Fprint(o.out, report.CSVTable2(rows))
				} else {
					fmt.Fprint(o.out, report.FormatTable2(rows, o.paper))
				}
				fmt.Fprintf(o.out, "shape: ordering(conv<=base<=prop) holds=%v, circuits with MOT extras=%d/%d, strict backward-implication wins=%d\n\n",
					chk.OrderingHolds, chk.CircuitsWithMOT, len(rows), chk.StrictWins)
				for _, note := range chk.Notes {
					fmt.Fprintln(o.out, "  !", note)
				}
			}
		}
		if o.table == "3" || o.table == "all" {
			rows := experiments.Table3Rows(runs)
			if o.jsonOut {
				rep.Table3 = rows
			} else {
				fmt.Fprintln(o.out, "Table 3: effectiveness of backward implications (averages over MOT-detected faults)")
				if o.csv {
					fmt.Fprint(o.out, report.CSVTable3(rows))
				} else {
					fmt.Fprint(o.out, report.FormatTable3(rows, o.paper))
				}
				fmt.Fprintln(o.out)
			}
		}
	}

	if wantHITEC {
		res, err := experiments.RunHITECStyle(o.hitecCircuit, opts)
		if err != nil {
			return err
		}
		if o.jsonOut {
			rep.HITEC = &hitecReport{
				Circuit:  res.Circuit,
				SeqLen:   res.SeqLen,
				Proposed: report.NewRunReport(res.Proposed, "proposed", res.SeqLen, 1, wallTime(res.Proposed)),
				Baseline: report.NewRunReport(res.Baseline, "baseline", res.SeqLen, 1, wallTime(res.Baseline)),
			}
		} else {
			fmt.Fprintf(o.out, "Deterministic (greedy, HITEC-style) sequence on %s: %d patterns\n", res.Circuit, res.SeqLen)
			fmt.Fprintf(o.out, "  conventional: %d detected\n", res.Proposed.Conv)
			fmt.Fprintf(o.out, "  proposed:     +%d extra (paper: s5378 +14 with HITEC)\n", res.Proposed.MOT)
			fmt.Fprintf(o.out, "  baseline [4]: +%d extra (paper: s5378 +12 with HITEC)\n", res.Baseline.MOT)
		}
	}

	if o.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := o.out.Write(data); err != nil {
			return err
		}
	}
	return prof.Stop()
}
