// Command motgen emits workloads: built-in or synthetic circuits in
// .bench format, and test-sequence files.
//
//	motgen -circuit sg298 -o sg298.bench
//	motgen -synth -inputs 8 -outputs 4 -ffs 12 -free-ffs 2 -gates 150 -seed 9 -o c.bench
//	motgen -circuit s27 -random 64 -seed 3 -o s27.vec
//	motgen -circuit s27 -dot -o s27.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		builtin = flag.String("circuit", "", "built-in circuit name")
		synth   = flag.Bool("synth", false, "generate a synthetic circuit")
		inputs  = flag.Int("inputs", 8, "synthetic: primary inputs")
		outputs = flag.Int("outputs", 4, "synthetic: primary outputs")
		ffs     = flag.Int("ffs", 8, "synthetic: flip-flops")
		freeFFs = flag.Int("free-ffs", 1, "synthetic: parity-feedback flip-flops")
		gates   = flag.Int("gates", 100, "synthetic: cloud gates")
		seed    = flag.Int64("seed", 1, "generation seed")
		random  = flag.Int("random", 0, "emit a random test sequence of this length instead of the netlist")
		dot     = flag.Bool("dot", false, "emit Graphviz dot instead of .bench")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*builtin, *synth, *inputs, *outputs, *ffs, *freeFFs, *gates, *seed, *random, *dot, *out); err != nil {
		fmt.Fprintln(os.Stderr, "motgen:", err)
		os.Exit(1)
	}
}

func run(builtin string, synth bool, inputs, outputs, ffs, freeFFs, gates int,
	seed int64, random int, dot bool, out string) error {

	var (
		c   *motsim.Circuit
		err error
	)
	switch {
	case builtin != "" && synth:
		return fmt.Errorf("use either -circuit or -synth, not both")
	case builtin != "":
		if c, err = motsim.BuiltinCircuit(builtin); err != nil {
			return fmt.Errorf("%w (known: %v)", err, motsim.BuiltinNames())
		}
	case synth:
		c, err = motsim.Generate(motsim.GenParams{
			Name:   fmt.Sprintf("synth%d", seed),
			Inputs: inputs, Outputs: outputs,
			FFs: ffs, FreeFFs: freeFFs,
			Gates: gates, Seed: seed,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -circuit NAME or -synth")
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case random > 0:
		return motsim.WriteVectors(w, motsim.RandomSequence(c, random, seed))
	case dot:
		_, err := fmt.Fprint(w, c.DOT())
		return err
	default:
		return motsim.WriteBench(w, c)
	}
}
