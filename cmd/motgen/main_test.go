package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.bench")
	if err := run("s27", false, 0, 0, 0, 0, 0, 1, 0, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || !strings.Contains(string(data), "DFF") {
		t.Fatalf("bench output wrong: %v", err)
	}
}

func TestRunSynth(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.bench")
	if err := run("", true, 6, 3, 5, 1, 60, 9, 0, false, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "INPUT(i0)") {
		t.Error("synthetic netlist missing inputs")
	}
}

func TestRunVectors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.vec")
	if err := run("s27", false, 0, 0, 0, 0, 0, 3, 12, false, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "# 12 patterns") {
		t.Errorf("vector output wrong: %s", data)
	}
}

func TestRunDOT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.dot")
	if err := run("fig4", false, 0, 0, 0, 0, 0, 1, 0, true, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "digraph") {
		t.Error("dot output wrong")
	}
}

func TestRunRejects(t *testing.T) {
	if run("", false, 0, 0, 0, 0, 0, 1, 0, false, "") == nil {
		t.Error("no circuit accepted")
	}
	if run("s27", true, 1, 1, 1, 0, 9, 1, 0, false, "") == nil {
		t.Error("both -circuit and -synth accepted")
	}
	if run("bogus", false, 0, 0, 0, 0, 0, 1, 0, false, "") == nil {
		t.Error("unknown circuit accepted")
	}
	if run("", true, 0, 0, 0, 0, 0, 1, 0, false, "") == nil {
		t.Error("invalid synth params accepted")
	}
}
